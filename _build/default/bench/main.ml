(* Benchmark harness: regenerates every table and figure of the paper.

   Default mode runs each experiment at the configured scale and prints the
   same rows/series the paper reports, followed by a headline summary of
   paper-claim vs measured. `--bechamel` instead times the computational
   kernels behind each experiment (one Bechamel test per table/figure). *)

module E = Braid_sim.Experiments
module S = Braid_sim.Suite

let usage () =
  print_endline
    "usage: main.exe [--scale N] [--only id[,id...]] [--list] [--bechamel]\n\
     Experiments (paper tables and figures):";
  List.iter (fun (id, _) -> Printf.printf "  %s\n" id) E.all

let parse_args () =
  let scale = ref S.default_scale in
  let only = ref [] in
  let bechamel = ref false in
  let list = ref false in
  let rec go = function
    | [] -> ()
    | "--scale" :: n :: rest ->
        scale := int_of_string n;
        go rest
    | "--only" :: ids :: rest ->
        only := String.split_on_char ',' ids;
        go rest
    | "--quick" :: rest ->
        scale := 4000;
        go rest
    | "--bechamel" :: rest ->
        bechamel := true;
        go rest
    | "--list" :: rest ->
        list := true;
        go rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ();
        exit 1
  in
  go (List.tl (Array.to_list Sys.argv));
  (!scale, !only, !bechamel, !list)

let selected only =
  match only with
  | [] -> E.all
  | ids ->
      List.map
        (fun id ->
          match List.assoc_opt id E.all with
          | Some f -> (id, f)
          | None ->
              Printf.eprintf "unknown experiment id %s\n" id;
              exit 1)
        ids

let run_experiments ~scale only =
  let outcomes =
    List.map
      (fun (id, f) ->
        let t0 = Sys.time () in
        let o = f ~scale in
        Printf.printf "==================================================================\n";
        Printf.printf "%s — %s\n" o.E.id o.E.title;
        Printf.printf "paper: %s\n" o.E.paper_expectation;
        Printf.printf "------------------------------------------------------------------\n";
        print_string o.E.rendered;
        Printf.printf "(%s took %.1fs)\n\n%!" id (Sys.time () -. t0);
        o)
      (selected only)
  in
  Printf.printf "==================================================================\n";
  Printf.printf "Headline summary (measured)\n";
  Printf.printf "------------------------------------------------------------------\n";
  List.iter
    (fun o ->
      let cells =
        String.concat "  "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%.3f" k v) o.E.headline)
      in
      Printf.printf "%-18s %s\n" o.E.id cells)
    outcomes

(* Bechamel timing of each experiment's computational kernel at a small,
   fixed scale: how long regenerating that table/figure costs. *)
let run_bechamel () =
  let open Bechamel in
  let scale = 2000 in
  let tests =
    List.map
      (fun (id, f) ->
        Test.make ~name:id (Staged.stage (fun () -> ignore (f ~scale))))
      E.all
  in
  let test = Test.make_grouped ~name:"experiments" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results

let () =
  let scale, only, bechamel, list = parse_args () in
  if list then usage ()
  else if bechamel then run_bechamel ()
  else run_experiments ~scale only
