examples/braid_inspect.ml: Array Braid_core Braid_isa Braid_workload Disasm Encode List Printf Program Render Sys
