examples/braid_inspect.mli:
