examples/custom_kernel.ml: Asm Braid_core Braid_isa Braid_uarch Braid_workload Disasm Emulator Int64 List Op Option Printf Program Reg String
