examples/exception_demo.ml: Array Braid_core Braid_isa Braid_uarch Braid_workload Disasm Emulator Int64 List Op Option Printf Reg Trace
