examples/exception_demo.mli:
