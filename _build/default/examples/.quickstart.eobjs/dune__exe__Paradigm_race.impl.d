examples/paradigm_race.ml: Array Braid_core Braid_isa Braid_uarch Braid_workload Emulator List Option Printf Render Sys
