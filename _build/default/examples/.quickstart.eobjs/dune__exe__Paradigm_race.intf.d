examples/paradigm_race.mli:
