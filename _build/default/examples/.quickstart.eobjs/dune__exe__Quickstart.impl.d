examples/quickstart.ml: Braid_core Braid_isa Braid_uarch Braid_workload Emulator Int64 List Option Printf Program
