examples/quickstart.mli:
