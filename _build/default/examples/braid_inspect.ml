(* Braid inspection: the Fig 2 view. Compile a workload with the braid pass
   and print a basic block braid by braid, with internal/external operands
   and the braid statistics tables.

     dune exec examples/braid_inspect.exe [benchmark] [block]
*)

open Braid_isa
module C = Braid_core
module W = Braid_workload

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gcc" in
  let block_id = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else -1 in
  let profile = W.Spec.find name in
  let program, _ = W.Spec.generate profile ~seed:1 ~scale:8_000 in
  let rep = C.Transform.run program in
  let braided = rep.C.Transform.program in

  (* Pick the most interesting block by default: the one with the most
     multi-instruction braids. *)
  let stats = C.Braid_stats.of_program braided in
  let score bid =
    List.length
      (List.filter
         (fun (b : C.Braid_stats.braid_info) ->
           b.C.Braid_stats.block_id = bid && not b.C.Braid_stats.is_single)
         stats.C.Braid_stats.braids)
  in
  let chosen =
    if block_id >= 0 then block_id
    else
      let best = ref 0 in
      for bid = 0 to Program.num_blocks braided - 1 do
        if score bid > score !best then best := bid
      done;
      !best
  in

  Printf.printf "%s, block %d, braid by braid (S-bit boundaries):\n\n" name chosen;
  print_string (Disasm.block_with_braids braided chosen);

  Printf.printf "\nper-braid detail for block %d:\n" chosen;
  List.iter
    (fun (b : C.Braid_stats.braid_info) ->
      if b.C.Braid_stats.block_id = chosen then
        Printf.printf
          "  braid %3d: size %2d, depth %2d, width %.2f, %d internal values, \
           %d external inputs, %d external outputs%s\n"
          b.C.Braid_stats.braid_id b.C.Braid_stats.size b.C.Braid_stats.depth
          b.C.Braid_stats.width b.C.Braid_stats.internals b.C.Braid_stats.ext_inputs
          b.C.Braid_stats.ext_outputs
          (if b.C.Braid_stats.is_single then "  (single-instruction)" else ""))
    stats.C.Braid_stats.braids;

  let s = C.Braid_stats.summarize stats in
  Printf.printf "\nwhole program (Tables 1-3 view):\n";
  Printf.printf "  braids per block:        %.2f (%.2f excluding singles)\n"
    s.C.Braid_stats.braids_per_block s.C.Braid_stats.braids_per_block_multi;
  Printf.printf "  braid size / width:      %.2f / %.2f (excl. singles)\n"
    s.C.Braid_stats.avg_size_multi s.C.Braid_stats.avg_width_multi;
  Printf.printf "  internals / in / out:    %.2f / %.2f / %.2f (excl. singles)\n"
    s.C.Braid_stats.avg_internals_multi s.C.Braid_stats.avg_ext_inputs_multi
    s.C.Braid_stats.avg_ext_outputs_multi;
  Printf.printf "  single-instruction:      %s of instructions\n"
    (Render.pct s.C.Braid_stats.single_instr_fraction);

  (* Show the braid ISA encoding of the first few instructions (Fig 3). *)
  Printf.printf "\nbraid ISA encoding of block %d (S/T/I/E bits, Fig 3):\n" chosen;
  let b = braided.Program.blocks.(chosen) in
  Array.iteri
    (fun k ins ->
      if k < 8 then
        Printf.printf "  %016Lx  %s\n" (Encode.encode ins) (Disasm.instr ins))
    b.Program.instrs
