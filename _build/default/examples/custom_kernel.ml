(* Bringing your own workload: build a kernel with the Build DSL (or write
   assembly), braid it, and see where the braids land.

   The kernel here is a small complex-number multiply-accumulate loop:
     acc += a[i] * b[i]   over complex values stored as (re, im) pairs —
   a dataflow shape with two clear braids per iteration (the real and
   imaginary products) plus the loop control braid.

     dune exec examples/custom_kernel.exe
*)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module B = Braid_workload.Build

let build () =
  let b = B.create () in
  let n = 64 in
  let bits v = Int64.bits_of_float v in
  let a, ra, _ = B.alloc_array b ~words:(2 * n) ~init:(fun k -> bits (0.5 +. (0.01 *. float_of_int k))) in
  let bb, rb, _ = B.alloc_array b ~words:(2 * n) ~init:(fun k -> bits (1.5 -. (0.01 *. float_of_int k))) in
  let out, ro, _ = B.alloc_array b ~words:2 ~init:(fun _ -> 0L) in
  let acc_re = B.const b Reg.Cfp 0L in
  let acc_im = B.const b Reg.Cfp 0L in
  B.counted_loop b ~count:n (fun b i ->
      let off = B.int_reg b in
      B.emit b (Op.Ibini (Op.Shl, off, i, 4));
      (* (re, im) pair: 16 bytes *)
      let aaddr = B.int_reg b in
      B.emit b (Op.Ibin (Op.Add, aaddr, a, off));
      let baddr = B.int_reg b in
      B.emit b (Op.Ibin (Op.Add, baddr, bb, off));
      let load base off region =
        let r = B.fp_reg b in
        B.emit b (Op.Load (r, base, off, region));
        r
      in
      let ar = load aaddr 0 ra and ai = load aaddr 8 ra in
      let br = load baddr 0 rb and bi = load baddr 8 rb in
      let mul x y =
        let r = B.fp_reg b in
        B.emit b (Op.Fbin (Op.Fmul, r, x, y));
        r
      in
      (* re += ar*br - ai*bi;  im += ar*bi + ai*br *)
      let rr = mul ar br and ii = mul ai bi in
      let re = B.fp_reg b in
      B.emit b (Op.Fbin (Op.Fsub, re, rr, ii));
      B.emit b (Op.Fbin (Op.Fadd, acc_re, acc_re, re));
      let ri = mul ar bi and ir = mul ai br in
      let im = B.fp_reg b in
      B.emit b (Op.Fbin (Op.Fadd, im, ri, ir));
      B.emit b (Op.Fbin (Op.Fadd, acc_im, acc_im, im)));
  B.emit b (Op.Store (acc_re, out, 0, ro));
  B.emit b (Op.Store (acc_im, out, 8, ro));
  B.finish b

let () =
  let program, init_mem = build () in
  Printf.printf "custom kernel: complex dot product, %d static instructions\n\n"
    (Program.num_static_instrs program);

  (* braid it *)
  let rep = C.Transform.run program in
  Printf.printf "braid view of the loop body:\n%s\n"
    (Disasm.block_with_braids rep.C.Transform.program 1);

  (* the binary survives a trip through the assembler *)
  let asm_text = Disasm.program_asm rep.C.Transform.program in
  let reparsed = Asm.parse asm_text in
  let fp prog =
    Emulator.memory_fingerprint
      (Emulator.run ~trace:false ~init_mem prog).Emulator.state
  in
  assert (Int64.equal (fp rep.C.Transform.program) (fp reparsed));
  Printf.printf "assembler round trip: ok (%d lines of asm)\n\n"
    (List.length (String.split_on_char '\n' asm_text));

  (* race the machines *)
  let conv = (C.Transform.conventional program).C.Extalloc.program in
  let trace prog = Option.get (Emulator.run ~init_mem prog).Emulator.trace in
  let warm = List.map fst init_mem in
  let ooo = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide (trace conv) in
  let braid =
    U.Pipeline.run ~warm_data:warm U.Config.braid_8wide (trace rep.C.Transform.program)
  in
  Printf.printf "out-of-order: %4d cycles (IPC %.2f)\n" ooo.U.Pipeline.cycles ooo.U.Pipeline.ipc;
  Printf.printf "braid:        %4d cycles (IPC %.2f) — %.0f%% of OoO at 1/%.0f the complexity\n"
    braid.U.Pipeline.cycles braid.U.Pipeline.ipc
    (100.0 *. float_of_int ooo.U.Pipeline.cycles /. float_of_int braid.U.Pipeline.cycles)
    (U.Complexity.relative
       (U.Complexity.of_config U.Config.ooo_8wide)
       (U.Complexity.of_config U.Config.braid_8wide))
