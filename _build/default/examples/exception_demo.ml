(* Exception handling in the braid microarchitecture (paper §3.4).

   A workload is laced with floating-point divides, one of which divides by
   zero. Architecturally the emulator records the fault; microarchitecturally
   the braid pipeline serialises — state rolls back to the last checkpoint,
   the machine drains into a single-BEU in-order mode, the handler runs, and
   execution resumes. The demo shows the fault surfacing in the trace and
   the cycle cost of the serialisation against a fault-free run.

     dune exec examples/exception_demo.exe
*)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module B = Braid_workload.Build

let build ~poison =
  let b = B.create () in
  let data, rd, _ =
    B.alloc_array b ~words:64
      ~init:(fun k ->
        (* element 40 is zero in the poisoned variant: 2.0 / data[40] faults *)
        if poison && k = 40 then 0L else Int64.bits_of_float (1.0 +. float_of_int k))
  in
  let out, ro, _ = B.alloc_array b ~words:64 ~init:(fun _ -> 0L) in
  let two = B.const b Reg.Cfp 2L in
  B.counted_loop b ~count:64 (fun b i ->
      let off = B.int_reg b in
      B.emit b (Op.Ibini (Op.Shl, off, i, 3));
      let addr = B.int_reg b in
      B.emit b (Op.Ibin (Op.Add, addr, data, off));
      let v = B.fp_reg b in
      B.emit b (Op.Load (v, addr, 0, rd));
      let q = B.fp_reg b in
      B.emit b (Op.Fbin (Op.Fdiv, q, two, v));
      let oaddr = B.int_reg b in
      B.emit b (Op.Ibin (Op.Add, oaddr, out, off));
      B.emit b (Op.Store (q, oaddr, 0, ro)));
  B.finish b

let run ~poison =
  let program, init_mem = build ~poison in
  let braided = (C.Transform.run program).C.Transform.program in
  let out = Emulator.run ~init_mem braided in
  let trace = Option.get out.Emulator.trace in
  let result = U.Pipeline.run ~warm_data:(List.map fst init_mem) U.Config.braid_8wide trace in
  (out, result)

let () =
  let clean_arch, clean = run ~poison:false in
  let fault_arch, faulty = run ~poison:true in
  ignore clean_arch;

  Printf.printf "fault-free run : %4d cycles, %d faults\n" clean.U.Pipeline.cycles
    clean.U.Pipeline.faults;
  Printf.printf "poisoned run   : %4d cycles, %d fault(s)\n\n" faulty.U.Pipeline.cycles
    faulty.U.Pipeline.faults;

  (* Architectural view: the faulting divide wrote zero and execution
     continued — the handler's repair, per the paper's checkpoint model. *)
  let t = Option.get fault_arch.Emulator.trace in
  Array.iter
    (fun (e : Trace.event) ->
      if e.Trace.faulting then
        Printf.printf
          "fault at uid %d (pc %#x): %s — pipeline drains to the checkpoint,\n\
           all BEUs but one disable, the handler runs in-order, then normal\n\
           mode resumes (paper §3.4)\n\n"
          e.Trace.uid e.Trace.pc
          (Disasm.instr e.Trace.instr))
    t.Trace.events;

  Printf.printf "serialisation cost: %d extra cycles (%.1f%%)\n"
    (faulty.U.Pipeline.cycles - clean.U.Pipeline.cycles)
    (100.0
    *. float_of_int (faulty.U.Pipeline.cycles - clean.U.Pipeline.cycles)
    /. float_of_int clean.U.Pipeline.cycles);
  Printf.printf
    "internal register state needs no checkpointing: braid-internal values\n\
     are dead at every braid boundary, so checkpoints carry external state only.\n"
