(* Paradigm race: the Fig 13 experiment on one benchmark. All four
   execution paradigms at 4-, 8- and 16-wide, as ASCII bar charts.

     dune exec examples/paradigm_race.exe [benchmark]
*)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module W = Braid_workload

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "swim" in
  let profile = W.Spec.find name in
  let program, init_mem = W.Spec.generate profile ~seed:1 ~scale:12_000 in
  let conventional = (C.Transform.conventional program).C.Extalloc.program in
  let braided = (C.Transform.run program).C.Transform.program in
  let trace prog = Option.get (Emulator.run ~max_steps:600_000 ~init_mem prog).Emulator.trace in
  let conv_trace = trace conventional and braid_trace = trace braided in
  let warm = List.map fst init_mem in

  Printf.printf "%s — %s\n%!" name profile.W.Spec.description;
  let base =
    U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide conv_trace
  in
  Printf.printf "baseline: 8-wide out-of-order, %d cycles, IPC %.2f\n\n%!"
    base.U.Pipeline.cycles base.U.Pipeline.ipc;

  List.iter
    (fun width ->
      let at cfg = U.Config.scale_width cfg width in
      let run cfg tr = U.Pipeline.run ~warm_data:warm cfg tr in
      let io = run (at U.Config.in_order_8wide) conv_trace in
      let dep = run (at U.Config.dep_steer_8wide) conv_trace in
      let braid = run (at U.Config.braid_8wide) braid_trace in
      let ooo = run (at U.Config.ooo_8wide) conv_trace in
      let norm r = U.Pipeline.speedup base r in
      print_string
        (Render.bar_chart
           ~title:(Printf.sprintf "%d-wide (relative to 8-wide out-of-order)" width)
           [
             ("in-order", norm io);
             ("dep-steer", norm dep);
             ("braid", norm braid);
             ("out-of-order", norm ooo);
           ]);
      Printf.printf "  braid reaches %.1f%% of the %d-wide out-of-order design\n\n"
        (100.0 *. float_of_int ooo.U.Pipeline.cycles /. float_of_int braid.U.Pipeline.cycles)
        width)
    [ 4; 8; 16 ]
