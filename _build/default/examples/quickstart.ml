(* Quickstart: generate a workload, run the braid compiler pass, and race
   the braid microarchitecture against a conventional out-of-order core.

     dune exec examples/quickstart.exe
*)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module W = Braid_workload

let () =
  (* 1. A workload: the gcc stand-in, ~10k dynamic instructions. *)
  let profile = W.Spec.find "gcc" in
  let program, init_mem = W.Spec.generate profile ~seed:1 ~scale:10_000 in
  Printf.printf "workload: %s — %s\n" profile.W.Spec.name profile.W.Spec.description;
  Printf.printf "  %d blocks, %d static instructions\n\n"
    (Program.num_blocks program)
    (Program.num_static_instrs program);

  (* 2. Compile twice: conventional allocation, and the braid pass. *)
  let conventional = C.Transform.conventional program in
  let braid = C.Transform.run program in
  Printf.printf "braid pass: %d braids, %d working-set splits, %d ordering splits\n"
    braid.C.Transform.braids braid.C.Transform.splits_working_set
    braid.C.Transform.splits_ordering;
  let stats =
    C.Braid_stats.summarize (C.Braid_stats.of_program braid.C.Transform.program)
  in
  Printf.printf
    "  %.1f braids/block, avg size %.1f, width %.2f, %.1f internal values per braid\n\n"
    stats.C.Braid_stats.braids_per_block stats.C.Braid_stats.avg_size_multi
    stats.C.Braid_stats.avg_width_multi stats.C.Braid_stats.avg_internals_multi;

  (* 3. Execute both binaries and check they compute the same thing. *)
  let run prog = Emulator.run ~max_steps:400_000 ~init_mem prog in
  let conv_out = run conventional.C.Extalloc.program in
  let braid_out = run braid.C.Transform.program in
  assert (
    Int64.equal
      (Emulator.memory_fingerprint conv_out.Emulator.state)
      (Emulator.memory_fingerprint braid_out.Emulator.state));
  Printf.printf "both binaries compute identical results (%d dynamic instructions)\n\n"
    conv_out.Emulator.dynamic_count;

  (* 4. Time them on their machines. *)
  let warm = List.map fst init_mem in
  let trace out = Option.get out.Emulator.trace in
  let ooo = U.Pipeline.run ~warm_data:warm U.Config.ooo_8wide (trace conv_out) in
  let br = U.Pipeline.run ~warm_data:warm U.Config.braid_8wide (trace braid_out) in
  Printf.printf "8-wide out-of-order: %6d cycles  (IPC %.2f)\n" ooo.U.Pipeline.cycles
    ooo.U.Pipeline.ipc;
  Printf.printf "braid (8 BEUs):      %6d cycles  (IPC %.2f)\n" br.U.Pipeline.cycles
    br.U.Pipeline.ipc;
  Printf.printf "braid achieves %.1f%% of out-of-order performance\n"
    (100.0 *. float_of_int ooo.U.Pipeline.cycles /. float_of_int br.U.Pipeline.cycles)
