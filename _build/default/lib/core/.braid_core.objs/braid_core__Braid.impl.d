lib/core/braid.ml: Array Hashtbl Instr List Op Program Reg Regset Union_find
