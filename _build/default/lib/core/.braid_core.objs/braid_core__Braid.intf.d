lib/core/braid.mli: Program Regset
