lib/core/braid_stats.ml: Array Hashtbl Instr List Op Option Program Reg Regset Trace
