lib/core/braid_stats.mli: Program Trace
