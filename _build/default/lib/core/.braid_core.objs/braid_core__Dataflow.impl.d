lib/core/dataflow.ml: Array Instr List Op Option Program Regset
