lib/core/dataflow.mli: Program Regset
