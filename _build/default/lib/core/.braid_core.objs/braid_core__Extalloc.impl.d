lib/core/extalloc.ml: Array Dataflow Emulator Hashtbl Instr List Op Option Program Reg Regset
