lib/core/extalloc.mli: Program
