lib/core/regset.ml: List Reg Stdlib
