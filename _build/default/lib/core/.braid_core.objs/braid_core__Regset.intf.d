lib/core/regset.mli: Reg Stdlib
