lib/core/transform.ml: Array Braid Dataflow Extalloc Hashtbl Instr List Op Program Reg Regset
