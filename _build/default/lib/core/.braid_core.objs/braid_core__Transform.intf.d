lib/core/transform.mli: Extalloc Program
