lib/core/value_stats.ml: Array Hashtbl Histogram Instr List Reg Regset Trace
