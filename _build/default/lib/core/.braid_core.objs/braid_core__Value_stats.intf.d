lib/core/value_stats.mli: Histogram Trace
