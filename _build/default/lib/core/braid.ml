type analysis = {
  ids : int array;
  count : int;
  order : int array;
  internal : bool array;
  internal_and_external : bool array;
  splits_working_set : int;
  splits_ordering : int;
}

let tracked_defs ins = List.filter Regset.tracked (Instr.defs ins)
let tracked_uses ins = List.filter Regset.tracked (Instr.uses ins)

(* For each instruction, the reaching in-block definition of each use. *)
let reaching_defs (b : Program.block) =
  let last_def : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.mapi
    (fun i ins ->
      let rs =
        List.filter_map (fun r -> Hashtbl.find_opt last_def r) (tracked_uses ins)
      in
      List.iter (fun r -> Hashtbl.replace last_def r i) (tracked_defs ins);
      rs)
    b.Program.instrs

let consumers (b : Program.block) =
  let n = Array.length b.Program.instrs in
  let cons = Array.make n [] in
  let reach = reaching_defs b in
  Array.iteri
    (fun i defs -> List.iter (fun d -> cons.(d) <- i :: cons.(d)) defs)
    reach;
  ignore n;
  Array.map List.rev cons

let renumber_by_first_appearance ids =
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun id ->
      match Hashtbl.find_opt mapping id with
      | Some d -> d
      | None ->
          let d = !next in
          incr next;
          Hashtbl.add mapping id d;
          d)
    ids

let identify (b : Program.block) =
  let n = Array.length b.Program.instrs in
  let uf = Union_find.create (max n 1) in
  let reach = reaching_defs b in
  Array.iteri (fun i defs -> List.iter (fun d -> Union_find.union uf i d) defs) reach;
  let roots = Array.init n (fun i -> Union_find.find uf i) in
  let ids = renumber_by_first_appearance roots in
  let count = Array.fold_left (fun acc id -> max acc (id + 1)) 0 ids in
  (ids, count)

(* --- splitting machinery ------------------------------------------------ *)

(* Members of braid [bid] at original index >= [j] move to a fresh id. *)
let split_at ids j =
  let bid = ids.(j) in
  let fresh = Array.fold_left max 0 ids + 1 in
  for k = j to Array.length ids - 1 do
    if ids.(k) = bid then ids.(k) <- fresh
  done

let members ids bid =
  let out = ref [] in
  Array.iteri (fun i id -> if id = bid then out := i :: !out) ids;
  List.rev !out

(* Last definitions per register in the block: the defs whose values can be
   live out. *)
let last_defs (b : Program.block) =
  let tbl : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i ins -> List.iter (fun r -> Hashtbl.replace tbl r i) (tracked_defs ins))
    b.Program.instrs;
  tbl

(* Classification of each instruction's defined value given the current
   braid partition: (internal, internal_and_external). An instruction with
   no tracked defs is (false, false). *)
let classify (b : Program.block) ids cons live_out =
  let n = Array.length b.Program.instrs in
  let lasts = last_defs b in
  let internal = Array.make n false in
  let both = Array.make n false in
  (* A conditional move reads its own destination: its value, and the value
     it conditionally overwrites, must share one register. The single
     destination field cannot name an internal and an external home at
     once, so both stay external. *)
  let is_cmov i =
    match b.Program.instrs.(i).Instr.op with Op.Cmov _ -> true | _ -> false
  in
  let pinned_by_cmov i d =
    List.exists
      (fun c ->
        match b.Program.instrs.(c).Instr.op with
        | Op.Cmov (_, dst, _, _) -> Reg.equal dst d
        | _ -> false)
      cons.(i)
  in
  for i = 0 to n - 1 do
    match tracked_defs b.Program.instrs.(i) with
    | [] -> ()
    | _ :: _ when is_cmov i -> ()
    | d :: _ when pinned_by_cmov i d -> ()
    | d :: _ ->
        let in_braid, elsewhere =
          List.partition (fun c -> ids.(c) = ids.(i)) cons.(i)
        in
        let live_out_def =
          Regset.Set.mem d live_out && Hashtbl.find_opt lasts d = Some i
        in
        let external_need = elsewhere <> [] || live_out_def in
        if not external_need then internal.(i) <- true
        else if in_braid <> [] then begin
          internal.(i) <- true;
          both.(i) <- true
        end
  done;
  (internal, both)

(* Working-set check for one braid: first member index at which the count
   of live internal values would exceed [max_internal], if any. The value
   defined at a member is live from that member to its last in-braid
   consumer. *)
let working_set_overflow (b : Program.block) ids cons internal ~max_internal bid =
  let mem = members ids bid in
  match mem with
  | [] | [ _ ] -> None
  | _ ->
      (* last in-braid consumer per defining member *)
      let last_use = Hashtbl.create 8 in
      List.iter
        (fun i ->
          if internal.(i) then begin
            let in_braid = List.filter (fun c -> ids.(c) = bid) cons.(i) in
            let last = List.fold_left max i in_braid in
            Hashtbl.replace last_use i last
          end)
        mem;
      let live = ref [] in
      let overflow = ref None in
      List.iter
        (fun t ->
          if !overflow = None then begin
            live := List.filter (fun (_, lu) -> lu >= t) !live;
            if internal.(t) && tracked_defs b.Program.instrs.(t) <> [] then begin
              let lu = try Hashtbl.find last_use t with Not_found -> t in
              live := (t, lu) :: !live;
              if List.length !live > max_internal then overflow := Some t
            end
          end)
        mem;
      !overflow

(* --- ordering hazards --------------------------------------------------- *)

let mem_region op =
  match op with
  | Op.Load (_, _, _, rg) | Op.Store (_, _, _, rg) -> Some rg
  | _ -> None

let may_alias op1 op2 =
  match (mem_region op1, mem_region op2) with
  | Some r1, Some r2 ->
      r1 = Op.region_unknown || r2 = Op.region_unknown || r1 = r2
  | _ -> false

(* Pairs (i, j), i < j, whose original order must survive reordering. *)
let hazard_pairs (b : Program.block) =
  let n = Array.length b.Program.instrs in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    let oi = b.Program.instrs.(i).Instr.op in
    let di = Regset.of_list (tracked_defs b.Program.instrs.(i)) in
    let ui = Regset.of_list (tracked_uses b.Program.instrs.(i)) in
    for j = i + 1 to n - 1 do
      let oj = b.Program.instrs.(j).Instr.op in
      let dj = Regset.of_list (tracked_defs b.Program.instrs.(j)) in
      let mem_hazard =
        (Op.is_store oi || Op.is_store oj) && may_alias oi oj
      in
      let war = not (Regset.Set.is_empty (Regset.Set.inter ui dj)) in
      let waw = not (Regset.Set.is_empty (Regset.Set.inter di dj)) in
      if mem_hazard || war || waw then pairs := (i, j) :: !pairs
    done
  done;
  !pairs

(* Terminator braid: the braid of the final control-transfer instruction. *)
let terminator_braid (b : Program.block) ids =
  let n = Array.length b.Program.instrs in
  if n = 0 then None
  else
    match b.Program.instrs.(n - 1).Instr.op with
    | Op.Branch _ | Op.Jump _ | Op.Halt -> Some ids.(n - 1)
    | _ -> None

(* Emission order: braids by (terminator-last, first-member), members in
   original order within each braid. *)
let emission_order (b : Program.block) ids =
  let n = Array.length ids in
  let term = terminator_braid b ids in
  let first = Hashtbl.create 16 in
  Array.iteri
    (fun i id -> if not (Hashtbl.mem first id) then Hashtbl.add first id i)
    ids;
  let bids = Hashtbl.fold (fun id _ acc -> id :: acc) first [] in
  let key id =
    let is_term = if Some id = term then 1 else 0 in
    (is_term, Hashtbl.find first id)
  in
  let sorted = List.sort (fun a bq -> compare (key a) (key bq)) bids in
  let order = Array.make n 0 in
  let k = ref 0 in
  List.iter
    (fun id ->
      List.iter
        (fun i ->
          order.(!k) <- i;
          incr k)
        (members ids id))
    sorted;
  order

let analyze ?(max_internal = Reg.num_internal) ~live_out (b : Program.block) =
  let n = Array.length b.Program.instrs in
  let cons = consumers b in
  let ids, _ = identify b in
  let ids = Array.copy ids in
  let splits_ws = ref 0 and splits_ord = ref 0 in
  (* Phase 1: working-set splits. *)
  let rec ws_fix () =
    let internal, _ = classify b ids cons live_out in
    let bids = List.sort_uniq compare (Array.to_list ids) in
    let overflow =
      List.find_map
        (fun bid ->
          working_set_overflow b ids cons internal ~max_internal bid)
        bids
    in
    match overflow with
    | Some t ->
        split_at ids t;
        incr splits_ws;
        ws_fix ()
    | None -> ()
  in
  if n > 0 then ws_fix ();
  (* Phase 2: ordering-hazard splits. *)
  let hazards = if n > 0 then hazard_pairs b else [] in
  let rec ord_fix budget =
    if budget = 0 then failwith "Braid.analyze: ordering fixpoint diverged";
    let order = emission_order b ids in
    let pos = Array.make n 0 in
    Array.iteri (fun p i -> pos.(i) <- p) order;
    let violation =
      List.find_opt (fun (i, j) -> ids.(i) <> ids.(j) && pos.(i) > pos.(j)) hazards
    in
    match violation with
    | None -> order
    | Some (i, j) ->
        let term = terminator_braid b ids in
        (* If the earlier instruction sits in the forced-last terminator
           braid, splitting the later braid can never help: peel the
           earlier instruction's prefix out of the terminator braid
           instead. Otherwise split the later braid at the violation,
           which guarantees its sub-braid starts after [i]. *)
        (if Some ids.(i) = term then
           match List.find_opt (fun m -> m > i) (members ids ids.(i)) with
           | Some k -> split_at ids k
           | None -> assert false (* the terminator itself is a later member *)
         else split_at ids j);
        incr splits_ord;
        ord_fix (budget - 1)
  in
  let order = if n > 0 then ord_fix (4 * n * n + 16) else [||] in
  (* Renumber ids densely in emission order. *)
  let ids =
    let mapping = Hashtbl.create 16 in
    let next = ref 0 in
    Array.iter
      (fun i ->
        if not (Hashtbl.mem mapping ids.(i)) then begin
          Hashtbl.add mapping ids.(i) !next;
          incr next
        end)
      order;
    Array.map (fun id -> Hashtbl.find mapping id) ids
  in
  let count = Array.fold_left (fun acc id -> max acc (id + 1)) 0 ids in
  let internal, both = classify b ids cons live_out in
  {
    ids;
    count = (if n = 0 then 0 else count);
    order;
    internal;
    internal_and_external = both;
    splits_working_set = !splits_ws;
    splits_ordering = !splits_ord;
  }
