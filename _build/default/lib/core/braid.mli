(** Braid identification and block-level braid scheduling.

    A braid is a connected component of the basic block's def-use graph at
    value granularity (each use links to its reaching in-block definition).
    This module identifies braids, splits them to respect the internal
    register working-set bound (8, per the paper) and ordering hazards
    introduced by rearrangement, and decides the emission order in which
    the instructions of each braid are consecutive, with the braid holding
    the block terminator last (so branch offsets are unchanged, §3.1).

    Rearranging braids may reorder memory operations and architectural
    register redefinitions across braids; any pair whose original order
    must be preserved (may-alias store/load pairs, WAR, WAW) and is
    violated by the braid order causes the offending braid to be split at
    the violation, exactly the paper's "broken into two braids at the
    location of the memory ordering violation". *)

type analysis = {
  ids : int array;
      (** braid id per instruction (original index), dense, numbered in
          emission order *)
  count : int;
  order : int array;
      (** emission order: original instruction indices, braid by braid *)
  internal : bool array;
      (** per original instruction: its defined value is braid-internal
          (all consumers inside the braid and not live past the block) *)
  internal_and_external : bool array;
      (** per original instruction: value consumed inside the braid but
          also needed externally (the I+E destination case) *)
  splits_working_set : int;  (** braids split by the working-set bound *)
  splits_ordering : int;  (** braids split to preserve ordering hazards *)
}

val consumers : Program.block -> int list array
(** [consumers b] maps each instruction index to the indices of in-block
    instructions consuming a value it defines (reaching-definition based,
    original order). *)

val identify : Program.block -> int array * int
(** Raw connected components, before any splitting: braid id per
    instruction (dense, in order of first appearance) and the count. *)

val analyze :
  ?max_internal:int -> live_out:Regset.Set.t -> Program.block -> analysis
(** Full block analysis: identify, split for the internal working-set
    bound ([max_internal], default {!Reg.num_internal}), order with the
    terminator braid last, and split until all ordering hazards are
    preserved. [live_out] is the block's liveness exit set. *)
