type braid_info = {
  block_id : int;
  braid_id : int;
  size : int;
  depth : int;
  width : float;
  internals : int;
  ext_inputs : int;
  ext_outputs : int;
  is_single : bool;
  is_branch_or_nop_single : bool;
}

type t = {
  braids : braid_info list;
  blocks : int;
}

(* Longest dataflow path within one braid, following reaching-definition
   edges restricted to braid members. [members] are original indices in
   block order; [reach] maps an instruction index to its in-block
   producers. *)
let braid_depth members reach ids bid =
  let depth = Hashtbl.create 8 in
  List.fold_left
    (fun acc i ->
      let producers = List.filter (fun d -> ids.(d) = bid) reach.(i) in
      let d =
        1
        + List.fold_left
            (fun m p -> max m (try Hashtbl.find depth p with Not_found -> 0))
            0 producers
      in
      Hashtbl.replace depth i d;
      max acc d)
    1 members

let block_braids (b : Program.block) =
  let n = Array.length b.Program.instrs in
  if n = 0 then []
  else begin
    let ids = Array.map (fun ins -> ins.Instr.annot.Instr.braid_id) b.Program.instrs in
    (* in-block producers per instruction, over the final (allocated)
       code: (register, producer index) pairs per use *)
    let last_def : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
    let reach_pairs =
      Array.mapi
        (fun i ins ->
          let prods =
            List.filter_map
              (fun r ->
                if Regset.tracked r then
                  Option.map (fun d -> (r, d)) (Hashtbl.find_opt last_def r)
                else None)
              (Instr.uses ins)
          in
          List.iter
            (fun r -> if Regset.tracked r then Hashtbl.replace last_def r i)
            (Instr.defs ins);
          prods)
        b.Program.instrs
    in
    let reach = Array.map (List.map snd) reach_pairs in
    let bids = List.sort_uniq compare (Array.to_list ids) in
    List.map
      (fun bid ->
        let members = ref [] in
        Array.iteri (fun i id -> if id = bid then members := i :: !members) ids;
        let members = List.rev !members in
        let size = List.length members in
        let depth = braid_depth members reach ids bid in
        let internals =
          List.length
            (List.filter
               (fun i ->
                 List.exists
                   (fun (r : Reg.t) -> r.Reg.space = Reg.Intern)
                   (Op.defs b.Program.instrs.(i).Instr.op))
               members)
        in
        let ext_inputs =
          (* distinct external registers read by the braid whose reaching
             producer is outside the braid (or outside the block) *)
          let inputs = ref Regset.Set.empty in
          List.iter
            (fun i ->
              List.iter
                (fun (r : Reg.t) ->
                  if Regset.tracked r && r.Reg.space = Reg.Ext then
                    let produced_in_braid =
                      List.exists
                        (fun (r', d) -> Reg.equal r r' && ids.(d) = bid)
                        reach_pairs.(i)
                    in
                    if not produced_in_braid then inputs := Regset.Set.add r !inputs)
                (Instr.uses b.Program.instrs.(i)))
            members;
          Regset.Set.cardinal !inputs
        in
        let ext_outputs =
          List.length
            (List.filter
               (fun i -> Instr.writes_external b.Program.instrs.(i))
               members)
        in
        let is_single = size = 1 in
        let is_branch_or_nop_single =
          is_single
          &&
          match members with
          | [ i ] -> (
              match b.Program.instrs.(i).Instr.op with
              | Op.Branch _ | Op.Jump _ | Op.Nop | Op.Halt -> true
              | _ -> false)
          | _ -> false
        in
        {
          block_id = b.Program.id;
          braid_id = bid;
          size;
          depth;
          width = float_of_int size /. float_of_int (max 1 depth);
          internals;
          ext_inputs;
          ext_outputs;
          is_single;
          is_branch_or_nop_single;
        })
      bids
  end

let of_program p =
  let braids = ref [] and blocks = ref 0 in
  Array.iter
    (fun (b : Program.block) ->
      if Array.length b.Program.instrs > 0 then begin
        incr blocks;
        braids := block_braids b @ !braids
      end)
    p.Program.blocks;
  { braids = List.rev !braids; blocks = !blocks }

type summary = {
  braids_per_block : float;
  braids_per_block_multi : float;
  avg_size : float;
  avg_size_multi : float;
  avg_width : float;
  avg_width_multi : float;
  avg_internals : float;
  avg_internals_multi : float;
  avg_ext_inputs : float;
  avg_ext_inputs_multi : float;
  avg_ext_outputs : float;
  avg_ext_outputs_multi : float;
  single_instr_fraction : float;
  single_branch_nop_fraction : float;
}

let favg f xs =
  match xs with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc x -> acc +. f x) 0.0 xs
      /. float_of_int (List.length xs)

type dynamic = {
  instances : int;
  dyn_braids_per_block : float;
  dyn_avg_size : float;
  dyn_avg_size_multi : float;
  dyn_single_fraction : float;
}

let dynamic_of_trace (trace : Trace.t) =
  let instances = ref 0 in
  let block_visits = ref 0 in
  let singles = ref 0 in
  let multi_instrs = ref 0 and multi_instances = ref 0 in
  let cur_size = ref 0 in
  let last_block = ref (-1) in
  let close_instance () =
    if !cur_size = 1 then incr singles
    else if !cur_size > 1 then begin
      incr multi_instances;
      multi_instrs := !multi_instrs + !cur_size
    end;
    cur_size := 0
  in
  Array.iter
    (fun (e : Trace.event) ->
      if e.Trace.block_id <> !last_block || e.Trace.offset = 0 then begin
        last_block := e.Trace.block_id;
        incr block_visits
      end;
      if e.Trace.braid_start then begin
        close_instance ();
        incr instances
      end;
      incr cur_size)
    trace.Trace.events;
  close_instance ();
  let n = Array.length trace.Trace.events in
  let fi = float_of_int in
  {
    instances = !instances;
    dyn_braids_per_block = fi !instances /. fi (max 1 !block_visits);
    dyn_avg_size = fi n /. fi (max 1 !instances);
    dyn_avg_size_multi = fi !multi_instrs /. fi (max 1 !multi_instances);
    dyn_single_fraction = fi !singles /. fi (max 1 n);
  }

let summarize t =
  let all = t.braids in
  let multi = List.filter (fun b -> not b.is_single) all in
  let singles = List.filter (fun b -> b.is_single) all in
  let instrs = List.fold_left (fun acc b -> acc + b.size) 0 all in
  let blocks = float_of_int (max 1 t.blocks) in
  {
    braids_per_block = float_of_int (List.length all) /. blocks;
    braids_per_block_multi = float_of_int (List.length multi) /. blocks;
    avg_size = favg (fun b -> float_of_int b.size) all;
    avg_size_multi = favg (fun b -> float_of_int b.size) multi;
    avg_width = favg (fun b -> b.width) all;
    avg_width_multi = favg (fun b -> b.width) multi;
    avg_internals = favg (fun b -> float_of_int b.internals) all;
    avg_internals_multi = favg (fun b -> float_of_int b.internals) multi;
    avg_ext_inputs = favg (fun b -> float_of_int b.ext_inputs) all;
    avg_ext_inputs_multi = favg (fun b -> float_of_int b.ext_inputs) multi;
    avg_ext_outputs = favg (fun b -> float_of_int b.ext_outputs) all;
    avg_ext_outputs_multi = favg (fun b -> float_of_int b.ext_outputs) multi;
    single_instr_fraction =
      (if instrs = 0 then 0.0
       else float_of_int (List.length singles) /. float_of_int instrs);
    single_branch_nop_fraction =
      (match singles with
      | [] -> 0.0
      | _ ->
          float_of_int
            (List.length (List.filter (fun b -> b.is_branch_or_nop_single) singles))
          /. float_of_int (List.length singles));
  }
