(** Static braid statistics over a braid-annotated program: the data behind
    Tables 1, 2 and 3 of the paper.

    Size is the instruction count of a braid; width is size divided by the
    length of the braid's longest internal dataflow path; internals count
    values written to the internal register file; external inputs are
    distinct values read from outside the braid; external outputs are
    values published to the external register file. *)

type braid_info = {
  block_id : int;
  braid_id : int;
  size : int;
  depth : int;  (** longest dataflow path, in instructions *)
  width : float;  (** size / depth *)
  internals : int;
  ext_inputs : int;
  ext_outputs : int;
  is_single : bool;
  is_branch_or_nop_single : bool;
      (** single-instruction braid that is a branch, jump or nop *)
}

type t = {
  braids : braid_info list;
  blocks : int;  (** non-empty blocks *)
}

val of_program : Program.t -> t

type summary = {
  braids_per_block : float;  (** including single-instruction braids *)
  braids_per_block_multi : float;  (** excluding them *)
  avg_size : float;
  avg_size_multi : float;
  avg_width : float;
  avg_width_multi : float;
  avg_internals : float;
  avg_internals_multi : float;
  avg_ext_inputs : float;
  avg_ext_inputs_multi : float;
  avg_ext_outputs : float;
  avg_ext_outputs_multi : float;
  single_instr_fraction : float;
      (** fraction of all static instructions that are single-instruction
          braids (the paper reports ~20%) *)
  single_branch_nop_fraction : float;
      (** fraction of single-instruction braids that are branches or nops
          (the paper reports ~56%) *)
}

val summarize : t -> summary
(** The [_multi] aggregates exclude single-instruction braids, matching the
    starred numbers of Tables 1–3. Averages over an empty selection are
    0. *)

type dynamic = {
  instances : int;  (** dynamic braid instances executed *)
  dyn_braids_per_block : float;  (** instances per dynamic block visit *)
  dyn_avg_size : float;  (** instructions per instance *)
  dyn_avg_size_multi : float;  (** excluding single-instruction instances *)
  dyn_single_fraction : float;
      (** fraction of dynamic instructions that are single-instruction
          braids *)
}

val dynamic_of_trace : Trace.t -> dynamic
(** Execution-weighted braid statistics: hot braids count as often as they
    run. Instance boundaries are the S bits of the executed stream. *)
