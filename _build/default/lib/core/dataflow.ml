type t = {
  live_in : Regset.Set.t array;
  live_out : Regset.Set.t array;
}

let successors p bid =
  let b = p.Program.blocks.(bid) in
  let n = Array.length b.Program.instrs in
  let explicit =
    if n = 0 then []
    else
      match b.Program.instrs.(n - 1).Instr.op with
      | Op.Branch (_, _, l) -> [ l ]
      | Op.Jump l -> [ l ]
      | Op.Halt -> []
      | _ -> []
  in
  let halts =
    n > 0 &&
    (match b.Program.instrs.(n - 1).Instr.op with
     | Op.Halt | Op.Jump _ -> true
     | _ -> false)
  in
  let fall = if halts then [] else Option.to_list b.Program.fallthrough in
  explicit @ fall

let block_uses_defs (b : Program.block) =
  let uses = ref Regset.Set.empty and defs = ref Regset.Set.empty in
  Array.iter
    (fun ins ->
      List.iter
        (fun r ->
          if Regset.tracked r && not (Regset.Set.mem r !defs) then
            uses := Regset.Set.add r !uses)
        (Instr.uses ins);
      List.iter
        (fun r -> if Regset.tracked r then defs := Regset.Set.add r !defs)
        (Instr.defs ins))
    b.Program.instrs;
  (!uses, !defs)

let liveness p =
  let n = Program.num_blocks p in
  let use = Array.make n Regset.Set.empty in
  let def = Array.make n Regset.Set.empty in
  for i = 0 to n - 1 do
    let u, d = block_uses_defs p.Program.blocks.(i) in
    use.(i) <- u;
    def.(i) <- d
  done;
  let live_in = Array.make n Regset.Set.empty in
  let live_out = Array.make n Regset.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Regset.Set.union acc live_in.(s))
          Regset.Set.empty (successors p i)
      in
      let inn = Regset.Set.union use.(i) (Regset.Set.diff out def.(i)) in
      if not (Regset.Set.equal out live_out.(i)) then begin
        live_out.(i) <- out;
        changed := true
      end;
      if not (Regset.Set.equal inn live_in.(i)) then begin
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_at_exit t ~block_id = t.live_out.(block_id)
