(** Global liveness analysis over programs.

    Backward may-liveness with the standard fixpoint over the CFG. The
    braid pass uses [live_out] to decide which values a basic block must
    publish to the external register file; the register allocators use the
    per-block sets to build live intervals. *)

type t = {
  live_in : Regset.Set.t array;  (** indexed by block id *)
  live_out : Regset.Set.t array;
}

val successors : Program.t -> int -> int list
(** Static CFG successors of a block (branch target and/or fallthrough). *)

val block_uses_defs : Program.block -> Regset.Set.t * Regset.Set.t
(** [(upward_exposed_uses, defs)] of a block. *)

val liveness : Program.t -> t

val live_at_exit : t -> block_id:int -> Regset.Set.t
(** Convenience accessor for [live_out.(block_id)]. *)
