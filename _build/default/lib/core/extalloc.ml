type result = {
  program : Program.t;
  spilled : int;
  spill_loads : int;
  spill_stores : int;
}

let usable_per_class = 28
let scratch_indices = [| 28; 29; 30 |]

type location = Assigned of Reg.t | Spilled of int (* slot index *)

type interval = { v : Reg.t; start : int; finish : int }

let intervals p (live : Dataflow.t) =
  let tbl : (Reg.t, int * int) Hashtbl.t = Hashtbl.create 64 in
  let touch v pos =
    match Hashtbl.find_opt tbl v with
    | None -> Hashtbl.replace tbl v (pos, pos)
    | Some (lo, hi) -> Hashtbl.replace tbl v (min lo pos, max hi pos)
  in
  let base = ref 0 in
  Array.iteri
    (fun bid (b : Program.block) ->
      let len = Array.length b.Program.instrs in
      let bstart = !base and bend = !base + max 0 (len - 1) in
      Regset.Set.iter
        (fun r -> if r.Reg.space = Reg.Virt then touch r bstart)
        live.Dataflow.live_in.(bid);
      Regset.Set.iter
        (fun r -> if r.Reg.space = Reg.Virt then touch r bend)
        live.Dataflow.live_out.(bid);
      Array.iteri
        (fun i ins ->
          let pos = !base + i in
          List.iter
            (fun (r : Reg.t) -> if r.Reg.space = Reg.Virt then touch r pos)
            (Instr.uses ins @ Instr.defs ins))
        b.Program.instrs;
      base := !base + len)
    p.Program.blocks;
  Hashtbl.fold (fun v (start, finish) acc -> { v; start; finish } :: acc) tbl []
  |> List.sort (fun a b ->
         match compare a.start b.start with 0 -> compare a.finish b.finish | c -> c)

let linear_scan ~usable ivs =
  let assignment : (Reg.t, location) Hashtbl.t = Hashtbl.create 64 in
  let free_int = ref (List.init usable (fun i -> i)) in
  let free_fp = ref (List.init usable (fun i -> i)) in
  let active = ref [] in
  (* (interval, reg index) sorted by finish *)
  let slots = ref 0 in
  let free_of cls = match cls with Reg.Cint -> free_int | Reg.Cfp -> free_fp in
  let expire start =
    let expired, alive =
      List.partition (fun (iv, _) -> iv.finish < start) !active
    in
    (* FIFO recycling: released registers go to the back of the free list,
       maximising register reuse distance — kinder to scoreboards and
       small in-flight buffers than immediate reuse. *)
    List.iter
      (fun (iv, reg) ->
        let fl = free_of iv.v.Reg.cls in
        fl := !fl @ [ reg ])
      expired;
    active := alive
  in
  let spill_slot () =
    let s = !slots in
    incr slots;
    s
  in
  List.iter
    (fun iv ->
      expire iv.start;
      let fl = free_of iv.v.Reg.cls in
      match !fl with
      | reg :: rest ->
          fl := rest;
          Hashtbl.replace assignment iv.v (Assigned (Reg.ext iv.v.Reg.cls reg));
          active := List.sort (fun (a, _) (b, _) -> compare b.finish a.finish)
              ((iv, reg) :: !active)
      | [] -> (
          (* steal from the active interval of this class ending last *)
          let same_class = List.filter (fun (a, _) -> a.v.Reg.cls = iv.v.Reg.cls) !active in
          match same_class with
          | (victim, reg) :: _ when victim.finish > iv.finish ->
              Hashtbl.replace assignment victim.v (Spilled (spill_slot ()));
              Hashtbl.replace assignment iv.v (Assigned (Reg.ext iv.v.Reg.cls reg));
              active :=
                List.sort (fun (a, _) (b, _) -> compare b.finish a.finish)
                  ((iv, reg) :: List.filter (fun (a, _) -> not (Reg.equal a.v victim.v)) !active)
          | _ -> Hashtbl.replace assignment iv.v (Spilled (spill_slot ()))))
    ivs;
  (assignment, !slots)

let slot_addr slot = Emulator.spill_base + (8 * slot)

let allocate ?(usable = usable_per_class) p =
  if usable < 1 || usable > usable_per_class then
    invalid_arg "Extalloc.allocate: usable out of range";
  let live = Dataflow.liveness p in
  let ivs = intervals p live in
  let assignment, slots = linear_scan ~usable ivs in
  let spill_loads = ref 0 and spill_stores = ref 0 in
  let rewrite_block (b : Program.block) =
    let out = ref [] in
    Array.iter
      (fun ins ->
        let virt_regs =
          List.filter (fun (r : Reg.t) -> r.Reg.space = Reg.Virt)
            (Instr.uses ins @ Instr.defs ins)
        in
        let virt_regs = List.sort_uniq Reg.compare virt_regs in
        (* scratch assignment for the spilled registers of this instr *)
        let scratch_of : (Reg.t, Reg.t) Hashtbl.t = Hashtbl.create 4 in
        let counters = Hashtbl.create 2 in
        List.iter
          (fun (r : Reg.t) ->
            match Hashtbl.find_opt assignment r with
            | Some (Spilled _) ->
                let k =
                  match Hashtbl.find_opt counters r.Reg.cls with
                  | Some k -> k
                  | None -> 0
                in
                if k >= Array.length scratch_indices then
                  failwith "Extalloc: out of spill scratch registers";
                Hashtbl.replace counters r.Reg.cls (k + 1);
                Hashtbl.replace scratch_of r (Reg.ext r.Reg.cls scratch_indices.(k))
            | Some (Assigned _) | None -> ())
          virt_regs;
        let loc (r : Reg.t) =
          if r.Reg.space <> Reg.Virt then r
          else
            match Hashtbl.find_opt assignment r with
            | Some (Assigned e) -> e
            | Some (Spilled _) -> Hashtbl.find scratch_of r
            | None ->
                (* defined but never live (dead value): park it in scratch 0 *)
                Reg.ext r.Reg.cls scratch_indices.(0)
        in
        let slot_of (r : Reg.t) =
          match Hashtbl.find_opt assignment r with
          | Some (Spilled s) -> Some s
          | _ -> None
        in
        (* reloads for spilled uses *)
        let spilled_uses =
          List.filter_map
            (fun (r : Reg.t) ->
              if r.Reg.space = Reg.Virt then
                Option.map (fun s -> (r, s)) (slot_of r)
              else None)
            (List.sort_uniq Reg.compare (Instr.uses ins))
        in
        List.iter
          (fun (r, s) ->
            incr spill_loads;
            out :=
              Instr.make (Op.Load (Hashtbl.find scratch_of r, Reg.zero, slot_addr s, Op.region_unknown))
              :: !out)
          spilled_uses;
        (* the instruction itself, renamed *)
        let op' = Op.map_regs loc ins.Instr.op in
        let annot' =
          match ins.Instr.annot.Instr.ext_dup with
          | None -> ins.Instr.annot
          | Some d -> { ins.Instr.annot with Instr.ext_dup = Some (loc d) }
        in
        out := { Instr.op = op'; annot = annot' } :: !out;
        (* spill stores for spilled defs (including ext_dup) *)
        let spilled_defs =
          List.filter_map
            (fun (r : Reg.t) ->
              if r.Reg.space = Reg.Virt then
                Option.map (fun s -> (r, s)) (slot_of r)
              else None)
            (List.sort_uniq Reg.compare (Instr.defs ins))
        in
        List.iter
          (fun (r, s) ->
            incr spill_stores;
            out :=
              Instr.make (Op.Store (Hashtbl.find scratch_of r, Reg.zero, slot_addr s, Op.region_unknown))
              :: !out)
          spilled_defs)
      b.Program.instrs;
    { b with Program.instrs = Array.of_list (List.rev !out) }
  in
  let program = Program.map_blocks rewrite_block p in
  assert (Program.max_virt_index program = -1);
  { program; spilled = slots; spill_loads = !spill_loads; spill_stores = !spill_stores }
