(** Linear-scan allocation of virtual registers onto the external
    (architectural) register set, with spilling.

    Two clients: the conventional binary maps {e every} value through this
    allocator; the braid binary first internalises braid-private values
    (see {!Transform}) and only the remaining external values reach here —
    the paper's two-pass register allocation (§3.1). The paper's prediction
    that braids reduce spill/fill code falls out: fewer simultaneously
    live external values means fewer spills.

    Three registers per class are reserved as spill scratch; integer
    register 31 stays the hard-wired zero. Spill slots live at absolute
    addresses from {!Emulator.spill_base}, addressed off the zero
    register, and are excluded from the memory-image oracle. *)

type result = {
  program : Program.t;  (** fully allocated: no virtual registers remain *)
  spilled : int;  (** number of distinct values sent to spill slots *)
  spill_loads : int;  (** static reload instructions inserted *)
  spill_stores : int;  (** static spill-store instructions inserted *)
}

val usable_per_class : int
(** Architectural registers available to the allocator per class (28). *)

val allocate : ?usable:int -> Program.t -> result
(** Replaces every virtual register with an external register (or spill
    code). [usable] (default {!usable_per_class}) restricts the
    architectural registers per class the allocator may use — the knob
    behind the paper's external-register sweeps (Fig 6): fewer registers
    mean more spill code. Existing external and internal registers pass through
    untouched. Braid annotations on existing instructions are preserved;
    inserted spill code carries no annotation (the braid transform fixes
    annotations up afterwards). *)
