(** Sets and maps over registers, shared by the dataflow passes. *)

module Set = Stdlib.Set.Make (struct
  type t = Reg.t

  let compare = Reg.compare
end)

module Map = Stdlib.Map.Make (struct
  type t = Reg.t

  let compare = Reg.compare
end)

(* Registers that participate in dataflow analysis: everything except the
   hard-wired zero. *)
let tracked (r : Reg.t) = not (Reg.is_zero r)

let of_list rs = Set.of_list (List.filter tracked rs)
