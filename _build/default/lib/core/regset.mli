(** Register sets and maps used by the dataflow passes. *)

module Set : Stdlib.Set.S with type elt = Reg.t
module Map : Stdlib.Map.S with type key = Reg.t

val tracked : Reg.t -> bool
(** Registers that participate in dataflow analysis — everything except
    the hard-wired zero register. *)

val of_list : Reg.t list -> Set.t
(** Builds a set of the tracked registers in the list. *)
