(** The braid compiler pass: from virtual-register IR to a braid-annotated,
    fully register-allocated binary.

    Pipeline (per §3.1 of the paper, as a braid-aware compiler):
    + global liveness;
    + per block: braid identification, working-set and ordering splits,
      braid-contiguous instruction scheduling with the terminator braid
      last ({!Braid.analyze});
    + internal register assignment (per braid, 8 registers);
    + destination classification: internal (I), external (E), or both —
      values consumed only inside their braid never touch the external
      register file;
    + external register allocation over the remaining values
      ({!Extalloc});
    + annotation fix-up: braid ids on spill code, S bits at braid starts.

    [conventional] is the baseline compilation of the same IR: no braid
    formation, everything through the external allocator. *)

type report = {
  program : Program.t;
  alloc : Extalloc.result;
  braids : int;  (** static braids over all blocks *)
  splits_working_set : int;
  splits_ordering : int;
}

val run : ?max_internal:int -> ?ext_usable:int -> Program.t -> report
(** The braid pass. [ext_usable] restricts the external registers per
    class available to the second allocation pass (Fig 6's compile-time
    knob). Input must be virtual-register IR (spaces [Virt]);
    output has only external and internal registers, braid annotations on
    every instruction, and correct S bits. *)

val conventional : Program.t -> Extalloc.result
(** Baseline allocation of the same IR without braid formation. *)

val run_binary : ?max_internal:int -> Program.t -> report
(** The paper's actual flow: braid formation over a {e preexisting},
    fully-allocated binary (their profiling + binary-translation tools on
    Alpha executables), in contrast to {!run}'s braid-aware compilation.
    Input must contain no virtual registers (e.g. the output of
    {!conventional}); the existing register assignment is kept and only
    braid-internal values move into the internal space. *)
