(** Union-find over dense integer indices, used to form braids as connected
    components of the in-block def-use graph. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end

let same t i j = find t i = find t j
