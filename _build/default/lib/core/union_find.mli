(** Union-find over dense integer indices with path compression and union
    by rank — the engine behind braid identification (connected components
    of the in-block def-use graph). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets, indexed [0 .. n-1]. *)

val find : t -> int -> int
(** Representative of the element's set (with path compression). *)

val union : t -> int -> int -> unit
(** Merges the two elements' sets. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)
