type t = {
  values : int;
  fanout : Histogram.t;
  lifetime : Histogram.t;
}

type live_value = { born : int; mutable reads : int; mutable last_read : int }

let of_trace (trace : Trace.t) =
  let fanout = Histogram.create () in
  let lifetime = Histogram.create () in
  let values = ref 0 in
  let live : (Reg.t, live_value) Hashtbl.t = Hashtbl.create 128 in
  let flush v =
    incr values;
    Histogram.add fanout v.reads;
    if v.reads > 0 then Histogram.add lifetime (v.last_read - v.born)
  in
  Array.iter
    (fun (e : Trace.event) ->
      List.iter
        (fun r ->
          if Regset.tracked r then
            match Hashtbl.find_opt live r with
            | Some v ->
                v.reads <- v.reads + 1;
                v.last_read <- e.Trace.uid
            | None -> ())
        (Instr.uses e.Trace.instr);
      List.iter
        (fun r ->
          if Regset.tracked r then begin
            (match Hashtbl.find_opt live r with
            | Some v ->
                flush v;
                Hashtbl.remove live r
            | None -> ());
            Hashtbl.replace live r { born = e.Trace.uid; reads = 0; last_read = e.Trace.uid }
          end)
        (Instr.defs e.Trace.instr))
    trace.Trace.events;
  Hashtbl.iter (fun _ v -> flush v) live;
  { values = !values; fanout; lifetime }

let fanout_at_most t k = Histogram.fraction_le t.fanout k

let fanout_exactly t k = Histogram.fraction_eq t.fanout k

let unused_fraction t = Histogram.fraction_eq t.fanout 0

let lifetime_at_most t k = Histogram.fraction_le t.lifetime k
