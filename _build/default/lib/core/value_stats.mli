(** Dynamic value characterisation (paper §1.1).

    A value is one dynamic definition of a register. Its fanout is the
    number of times it is read before its register is redefined; its
    lifetime is the dynamic-instruction distance from the producer to the
    last consumer. The paper's motivating numbers: ~70% of values are used
    exactly once, ~90% at most twice, ~4% never; ~80% of used values have
    a lifetime of at most 32 instructions. *)

type t = {
  values : int;  (** dynamic values produced *)
  fanout : Histogram.t;  (** reads per value (0 = produced but unused) *)
  lifetime : Histogram.t;  (** producer→last-consumer distance, used values *)
}

val of_trace : Trace.t -> t

val fanout_at_most : t -> int -> float
(** Fraction of values read at most [k] times. *)

val fanout_exactly : t -> int -> float

val unused_fraction : t -> float
(** Fraction of values never read. *)

val lifetime_at_most : t -> int -> float
(** Fraction of {e used} values whose lifetime is at most [k]. *)
