lib/isa/asm.ml: Array Instr Int64 List Op Printf Program Reg String
