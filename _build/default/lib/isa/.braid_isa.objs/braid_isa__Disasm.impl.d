lib/isa/disasm.ml: Array Buffer Format Instr Printf Program
