lib/isa/disasm.mli: Instr Program
