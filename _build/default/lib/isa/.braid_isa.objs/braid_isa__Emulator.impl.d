lib/isa/emulator.ml: Array Hashtbl Instr Int64 List Op Option Printf Program Reg Trace
