lib/isa/emulator.mli: Program Reg Trace
