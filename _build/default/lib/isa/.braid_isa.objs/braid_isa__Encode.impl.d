lib/isa/encode.ml: Array Instr Int64 List Op Printf Program Reg
