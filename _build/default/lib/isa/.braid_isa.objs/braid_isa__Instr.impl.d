lib/isa/instr.ml: Format List Op Printf Reg
