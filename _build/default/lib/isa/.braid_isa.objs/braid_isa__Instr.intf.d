lib/isa/instr.mli: Format Op Reg
