lib/isa/op.ml: Float Int64 Reg
