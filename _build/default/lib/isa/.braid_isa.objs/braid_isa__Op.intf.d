lib/isa/op.mli: Option Reg
