lib/isa/trace.ml: Array Instr Program
