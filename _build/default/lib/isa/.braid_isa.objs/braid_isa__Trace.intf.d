lib/isa/trace.mli: Instr Program
