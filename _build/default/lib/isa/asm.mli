(** Textual assembler for the reproduction ISA.

    Parses the same syntax the disassembler prints, so
    [parse (Disasm.program p)] round-trips any allocated program
    (modulo compiler-internal metadata: memory region tags and braid ids).

    Syntax, one instruction per line:

    {v
    ; comment                       (also after instructions)
    B0:                             block label (blocks must appear in order)
      fallthrough B1                explicit fall-through (default: next block)
      lda #4096, r1                 load immediate
      addq r1, r2, r3               dst last
      addqi r1, #8, r3              immediate second source
      ldq r3, 0(r1) @2              load, optional region tag
      stq r3, 8(r1)                 store
      cmovne r1, r2, r3             if r1<>0 then r3 := r2
      bne r1, B2                    conditional branch (vs zero)
      br B1
      halt
    v}

    Registers: [r0]–[r31] ([r31] = [zero]) and [f0]–[f31] architectural,
    [t0]–[t7] braid-internal, [v]/[vf]{i} virtual. A leading [S ] marks the
    braid start bit; [\[also rN\]] after an instruction sets the external
    duplicate destination (the I+E case). *)

exception Parse_error of int * string
(** (line number, message) *)

val parse : string -> Program.t
(** Raises {!Parse_error} on malformed input; the resulting program passes
    [Program.make] validation. *)

val parse_instr : string -> Instr.t
(** One instruction, without block context (branch targets allowed). *)
