let instr ins = Format.asprintf "%a" Instr.pp ins

let block p bid =
  let b = p.Program.blocks.(bid) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "B%d:\n" bid);
  Array.iteri
    (fun off ins ->
      Buffer.add_string buf
        (Printf.sprintf "  %#06x  %s\n" (Program.pc_of p ~block_id:bid ~offset:off) (instr ins)))
    b.Program.instrs;
  Buffer.contents buf

let block_with_braids p bid =
  let b = p.Program.blocks.(bid) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "B%d (%d instructions):\n" bid (Array.length b.Program.instrs));
  let current = ref (-2) in
  Array.iteri
    (fun off ins ->
      let bid_of = ins.Instr.annot.Instr.braid_id in
      if bid_of <> !current then begin
        current := bid_of;
        if bid_of >= 0 then
          Buffer.add_string buf (Printf.sprintf "  --- braid %d ---\n" bid_of)
        else Buffer.add_string buf "  --- (no braid) ---\n"
      end;
      Buffer.add_string buf
        (Printf.sprintf "  %#06x  %s\n" (Program.pc_of p ~block_id:bid ~offset:off) (instr ins)))
    b.Program.instrs;
  Buffer.contents buf

let program p =
  let buf = Buffer.create 1024 in
  for bid = 0 to Program.num_blocks p - 1 do
    Buffer.add_string buf (block p bid)
  done;
  Buffer.contents buf

let program_asm p =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun (b : Program.block) ->
      Buffer.add_string buf (Printf.sprintf "B%d:\n" b.Program.id);
      (match b.Program.fallthrough with
      | Some ft -> Buffer.add_string buf (Printf.sprintf "  fallthrough B%d\n" ft)
      | None -> ());
      Array.iter
        (fun ins -> Buffer.add_string buf (Printf.sprintf "  %s\n" (instr ins)))
        b.Program.instrs)
    p.Program.blocks;
  Buffer.contents buf
