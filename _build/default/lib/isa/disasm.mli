(** Textual listings of programs and braid structure, in the style of the
    paper's Fig 2. *)

val instr : Instr.t -> string

val block : Program.t -> int -> string
(** Listing of one basic block with addresses. *)

val block_with_braids : Program.t -> int -> string
(** Listing of one block grouped by braid, marking braid boundaries and the
    internal/external role of each operand — the Fig 2(b) view. *)

val program : Program.t -> string

val program_asm : Program.t -> string
(** Parseable listing: no addresses, explicit [fallthrough] directives —
    [Asm.parse (program_asm p)] reconstructs [p] up to memory region tags
    and braid ids (which do not survive the textual form). *)
