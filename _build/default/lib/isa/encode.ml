exception Unencodable of string

let imm_bits = 31
let imm_max = (1 lsl (imm_bits - 1)) - 1
let imm_min = -(1 lsl (imm_bits - 1))

let ibin_code = function
  | Op.Add -> 0 | Op.Sub -> 1 | Op.Mul -> 2
  | Op.And -> 3 | Op.Or -> 4 | Op.Xor -> 5 | Op.Andnot -> 6
  | Op.Shl -> 7 | Op.Shr -> 8
  | Op.Cmpeq -> 9 | Op.Cmplt -> 10 | Op.Cmple -> 11

let ibin_of_code = function
  | 0 -> Op.Add | 1 -> Op.Sub | 2 -> Op.Mul
  | 3 -> Op.And | 4 -> Op.Or | 5 -> Op.Xor | 6 -> Op.Andnot
  | 7 -> Op.Shl | 8 -> Op.Shr
  | 9 -> Op.Cmpeq | 10 -> Op.Cmplt | 11 -> Op.Cmple
  | n -> raise (Unencodable (Printf.sprintf "bad ibin code %d" n))

let fbin_code = function
  | Op.Fadd -> 0 | Op.Fsub -> 1 | Op.Fmul -> 2 | Op.Fdiv -> 3 | Op.Fcmplt -> 4

let fbin_of_code = function
  | 0 -> Op.Fadd | 1 -> Op.Fsub | 2 -> Op.Fmul | 3 -> Op.Fdiv | 4 -> Op.Fcmplt
  | n -> raise (Unencodable (Printf.sprintf "bad fbin code %d" n))

let funary_code = function Op.Fneg -> 0 | Op.Fsqrt -> 1 | Op.Cvt_if -> 2

let funary_of_code = function
  | 0 -> Op.Fneg | 1 -> Op.Fsqrt | 2 -> Op.Cvt_if
  | n -> raise (Unencodable (Printf.sprintf "bad funary code %d" n))

let cond_code = function
  | Op.Eq -> 0 | Op.Ne -> 1 | Op.Lt -> 2 | Op.Ge -> 3 | Op.Le -> 4 | Op.Gt -> 5

let cond_of_code = function
  | 0 -> Op.Eq | 1 -> Op.Ne | 2 -> Op.Lt | 3 -> Op.Ge | 4 -> Op.Le | 5 -> Op.Gt
  | n -> raise (Unencodable (Printf.sprintf "bad cond code %d" n))

(* Opcode space: 0 nop; 1..12 ibin; 13..24 ibini; 25 movi; 26..30 fbin;
   31..33 funary; 34..39 cmov; 40 load; 41 store; 42..47 branch; 48 jump;
   49 halt. *)
let opcode = function
  | Op.Nop -> 0
  | Op.Ibin (o, _, _, _) -> 1 + ibin_code o
  | Op.Ibini (o, _, _, _) -> 13 + ibin_code o
  | Op.Movi _ -> 25
  | Op.Fbin (o, _, _, _) -> 26 + fbin_code o
  | Op.Funary (o, _, _) -> 31 + funary_code o
  | Op.Cmov (c, _, _, _) -> 34 + cond_code c
  | Op.Load _ -> 40
  | Op.Store _ -> 41
  | Op.Branch (c, _, _) -> 42 + cond_code c
  | Op.Jump _ -> 48
  | Op.Halt -> 49

(* External register field: class bit (bit 5) + index. *)
let ext_reg_field (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> (match r.Reg.cls with Reg.Cint -> r.Reg.idx | Reg.Cfp -> 32 + r.Reg.idx)
  | Reg.Virt -> raise (Unencodable "virtual register")
  | Reg.Intern -> raise (Unencodable "internal register in external field")

let ext_reg_of_field f =
  if f < 32 then Reg.ext Reg.Cint f else Reg.ext Reg.Cfp (f - 32)

(* A source operand: (t_bit, field). *)
let src_field (r : Reg.t) =
  match r.Reg.space with
  | Reg.Intern -> (1, r.Reg.idx)
  | Reg.Ext | Reg.Virt -> (0, ext_reg_field r)

let src_of_field t f = if t = 1 then Reg.intern (f land 7) else ext_reg_of_field f

let check_imm v =
  if v < imm_min || v > imm_max then
    raise (Unencodable (Printf.sprintf "immediate out of range: %d" v))

let encode (ins : Instr.t) =
  let op = ins.Instr.op in
  let annot = ins.Instr.annot in
  (* Destination description: (i_bit, e_bit, ext_field, int_field). *)
  let dest =
    match Op.defs op with
    | [] -> (0, 0, 0, 0)
    | [ d ] -> (
        match d.Reg.space with
        | Reg.Intern -> (
            match annot.Instr.ext_dup with
            | None -> (1, 0, 0, d.Reg.idx)
            | Some e -> (1, 1, ext_reg_field e, d.Reg.idx))
        | Reg.Ext | Reg.Virt -> (0, 1, ext_reg_field d, 0))
    | _ -> raise (Unencodable "multi-destination operation")
  in
  let srcs =
    match op with
    | Op.Nop | Op.Movi _ | Op.Jump _ | Op.Halt -> []
    | Op.Ibin (_, _, a, b) | Op.Fbin (_, _, a, b) -> [ a; b ]
    | Op.Ibini (_, _, a, _) | Op.Funary (_, _, a) -> [ a ]
    | Op.Cmov (_, _, test, v) -> [ test; v ]
    | Op.Load (_, base, _, _) -> [ base ]
    | Op.Store (s, base, _, _) -> [ s; base ]
    | Op.Branch (_, r, _) -> [ r ]
  in
  let imm =
    match op with
    | Op.Ibini (_, _, _, i) -> check_imm i; i
    | Op.Movi (_, v) ->
        let i = Int64.to_int v in
        if not (Int64.equal (Int64.of_int i) v) then
          raise (Unencodable "movi literal exceeds 63 bits");
        check_imm i;
        i
    | Op.Load (_, _, off, _) | Op.Store (_, _, off, _) -> check_imm off; off
    | Op.Branch (_, _, l) | Op.Jump l -> check_imm l; l
    | _ -> 0
  in
  let t1, s1, t2, s2 =
    match srcs with
    | [] -> (0, 0, 0, 0)
    | [ a ] ->
        let t1, s1 = src_field a in
        (t1, s1, 0, 0)
    | [ a; b ] ->
        let t1, s1 = src_field a in
        let t2, s2 = src_field b in
        (t1, s1, t2, s2)
    | _ -> raise (Unencodable "more than two sources")
  in
  let i_bit, e_bit, dext, dint = dest in
  let ( <|< ) v n = Int64.shift_left (Int64.of_int v) n in
  let open Int64 in
  logor ((if annot.Instr.braid_start then 1 else 0) <|< 63)
  @@ logor (opcode op <|< 56)
  @@ logor (i_bit <|< 55)
  @@ logor (e_bit <|< 54)
  @@ logor (dext <|< 48)
  @@ logor (dint <|< 45)
  @@ logor (t1 <|< 44)
  @@ logor (s1 <|< 38)
  @@ logor (t2 <|< 37)
  @@ logor (s2 <|< 31)
  @@ Int64.of_int (imm land 0x7FFF_FFFF)

let field w lo width =
  Int64.to_int (Int64.logand (Int64.shift_right_logical w lo) (Int64.sub (Int64.shift_left 1L width) 1L))

let decode w =
  let s_bit = field w 63 1 = 1 in
  let opc = field w 56 7 in
  let i_bit = field w 55 1 in
  let e_bit = field w 54 1 in
  let dext = field w 48 6 in
  let dint = field w 45 3 in
  let t1 = field w 44 1 in
  let s1 = field w 38 6 in
  let t2 = field w 37 1 in
  let s2 = field w 31 6 in
  let imm_raw = field w 0 31 in
  let imm =
    if imm_raw land (1 lsl (imm_bits - 1)) <> 0 then imm_raw - (1 lsl imm_bits)
    else imm_raw
  in
  let dest () =
    if i_bit = 1 then Reg.intern dint else ext_reg_of_field dext
  in
  let ext_dup = if i_bit = 1 && e_bit = 1 then Some (ext_reg_of_field dext) else None in
  let src1 () = src_of_field t1 s1 in
  let src2 () = src_of_field t2 s2 in
  let op =
    if opc = 0 then Op.Nop
    else if opc >= 1 && opc <= 12 then Op.Ibin (ibin_of_code (opc - 1), dest (), src1 (), src2 ())
    else if opc >= 13 && opc <= 24 then Op.Ibini (ibin_of_code (opc - 13), dest (), src1 (), imm)
    else if opc = 25 then Op.Movi (dest (), Int64.of_int imm)
    else if opc >= 26 && opc <= 30 then Op.Fbin (fbin_of_code (opc - 26), dest (), src1 (), src2 ())
    else if opc >= 31 && opc <= 33 then Op.Funary (funary_of_code (opc - 31), dest (), src1 ())
    else if opc >= 34 && opc <= 39 then Op.Cmov (cond_of_code (opc - 34), dest (), src1 (), src2 ())
    else if opc = 40 then Op.Load (dest (), src1 (), imm, Op.region_unknown)
    else if opc = 41 then Op.Store (src1 (), src2 (), imm, Op.region_unknown)
    else if opc >= 42 && opc <= 47 then Op.Branch (cond_of_code (opc - 42), src1 (), imm)
    else if opc = 48 then Op.Jump imm
    else if opc = 49 then Op.Halt
    else raise (Unencodable (Printf.sprintf "bad opcode %d" opc))
  in
  let ins = Instr.make op in
  let ins = { ins with Instr.annot = { ins.Instr.annot with Instr.braid_start = s_bit; ext_dup } } in
  ins

let encode_program p =
  let out = ref [] in
  Program.iter_instrs (fun _ _ ins -> out := encode ins :: !out) p;
  Array.of_list (List.rev !out)
