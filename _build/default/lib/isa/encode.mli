(** Binary instruction encoding with the braid ISA extension bits (Fig 3).

    Each instruction packs into one 64-bit word:

    {v
    bit 63       S   braid start bit
    bits 62..56  opcode
    bit  55      I   internal destination bit
    bit  54      E   external destination bit
    bits 53..48  external destination register (class bit + 5-bit index)
    bits 47..45  internal destination register (3 bits)
    bit  44      T1  src1 temporary-operand bit (internal register file)
    bits 43..38  src1 register
    bit  37      T2  src2 temporary-operand bit
    bits 36..31  src2 register
    bits 30..0   signed immediate / offset / branch target
    v}

    Only register-allocated code encodes: virtual registers raise
    [Unencodable]. Two pieces of compiler-internal metadata do not travel
    through the binary form and are restored to defaults by [decode]: the
    braid id (becomes -1; hardware recovers braid extents from S bits) and
    the memory region tag (becomes [Op.region_unknown]). *)

exception Unencodable of string

val encode : Instr.t -> int64
(** Raises [Unencodable] on virtual registers or out-of-range immediates. *)

val decode : int64 -> Instr.t
(** Raises [Unencodable] on an invalid opcode. *)

val encode_program : Program.t -> int64 array
(** All instructions in block order. *)
