type cls = Cint | Cfp
type space = Virt | Ext | Intern

type t = { space : space; cls : cls; idx : int }

let num_ext_per_class = 32
let num_internal = 8

let virt cls idx =
  if idx < 0 then invalid_arg "Reg.virt: negative index";
  { space = Virt; cls; idx }

let ext cls idx =
  if idx < 0 || idx >= num_ext_per_class then invalid_arg "Reg.ext: index out of range";
  { space = Ext; cls; idx }

let intern idx =
  if idx < 0 || idx >= num_internal then invalid_arg "Reg.intern: index out of range";
  { space = Intern; cls = Cint; idx }

let zero = { space = Ext; cls = Cint; idx = num_ext_per_class - 1 }
let is_zero r = r.space = Ext && r.cls = Cint && r.idx = num_ext_per_class - 1

let ext_id r =
  match r.space with
  | Ext -> (match r.cls with Cint -> r.idx | Cfp -> num_ext_per_class + r.idx)
  | Virt | Intern -> invalid_arg "Reg.ext_id: not an external register"

let num_ext_ids = 2 * num_ext_per_class

let equal a b = a.space = b.space && a.cls = b.cls && a.idx = b.idx
let compare = Stdlib.compare

let to_string r =
  let prefix =
    match (r.space, r.cls) with
    | Virt, Cint -> "v"
    | Virt, Cfp -> "vf"
    | Ext, Cint -> "r"
    | Ext, Cfp -> "f"
    | Intern, _ -> "t"
  in
  if is_zero r then "zero" else prefix ^ string_of_int r.idx

let pp fmt r = Format.pp_print_string fmt (to_string r)
