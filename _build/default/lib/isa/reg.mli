(** Register identifiers.

    The reproduction ISA is Alpha-like: 32 integer + 32 floating-point
    architectural registers, with integer register 31 hard-wired to zero.
    Registers live in one of three spaces:

    - [Virt]: unbounded virtual registers used by the IR the workload
      generators emit, before any register allocation;
    - [Ext]: architectural ("external" in the paper's terms) registers,
      visible across basic blocks and allocated program-wide;
    - [Intern]: braid-internal registers (0–7), valid only between the
      first and last instruction of one braid, backed by the tiny internal
      register file of a BEU. *)

type cls = Cint | Cfp
type space = Virt | Ext | Intern

type t = { space : space; cls : cls; idx : int }

val num_ext_per_class : int
(** Architectural registers per class (32). *)

val num_internal : int
(** Internal registers per braid (8), the paper's empirically sufficient
    working-set bound. *)

val virt : cls -> int -> t
val ext : cls -> int -> t
val intern : int -> t
(** Internal registers are untyped storage; class is carried as [Cint]. *)

val zero : t
(** The hard-wired zero register, [Ext Cint 31]. *)

val is_zero : t -> bool

val ext_id : t -> int
(** Dense id of an external register for scoreboards: integer class maps to
    [0..31], floating-point to [32..63]. Raises [Invalid_argument] on
    non-external registers. *)

val num_ext_ids : int
(** Size of the [ext_id] space (64). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
