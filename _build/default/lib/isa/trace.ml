type event = {
  uid : int;
  pc : int;
  block_id : int;
  offset : int;
  instr : Instr.t;
  deps : (int * bool) array;
  addr : int;
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_jump : bool;
  taken : bool;
  next_pc : int;
  latency : int;
  writes_ext : bool;
  writes_int : bool;
  ext_src_reads : int;
  int_src_reads : int;
  braid_id : int;
  braid_start : bool;
  faulting : bool;
}

type stop_reason = Halted | Steps_exhausted

type t = {
  events : event array;
  stop : stop_reason;
  program : Program.t;
}

let length t = Array.length t.events

let num_branches t =
  Array.fold_left (fun acc e -> if e.is_cond_branch then acc + 1 else acc) 0 t.events

let branch_of e = e.is_cond_branch || e.is_jump
