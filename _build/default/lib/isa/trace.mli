(** Dynamic instruction traces.

    The timing simulators are execution-driven: the emulator runs the
    program for real and emits one [event] per retired instruction, with
    true register data dependences already resolved to producer uids
    (register renaming makes false dependences irrelevant to timing; memory
    dependences are resolved by the LSQ model from the recorded
    addresses). *)

type event = {
  uid : int;  (** dense dynamic index, starting at 0 *)
  pc : int;  (** byte address of the static instruction *)
  block_id : int;
  offset : int;  (** position within the block *)
  instr : Instr.t;
  deps : (int * bool) array;
      (** register value producers (RAW): [(uid, via_internal)], where
          [via_internal] marks values flowing through a braid-internal
          register (same BEU, never on the bypass network or external
          register file) *)
  addr : int;  (** byte address for loads/stores, -1 otherwise *)
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_jump : bool;
  taken : bool;  (** conditional branches: outcome; jumps: true *)
  next_pc : int;  (** address of the next dynamic instruction *)
  latency : int;  (** FU latency, memory time excluded *)
  writes_ext : bool;  (** allocates an external register / rename entry *)
  writes_int : bool;  (** writes a braid-internal register *)
  ext_src_reads : int;  (** external register file reads requested *)
  int_src_reads : int;
  braid_id : int;
  braid_start : bool;
  faulting : bool;  (** arithmetic fault occurred (exception-mode trigger) *)
}

type stop_reason = Halted | Steps_exhausted

type t = {
  events : event array;
  stop : stop_reason;
  program : Program.t;
}

val length : t -> int

val num_branches : t -> int
(** Conditional branches only. *)

val branch_of : event -> bool
(** [is_cond_branch || is_jump]. *)
