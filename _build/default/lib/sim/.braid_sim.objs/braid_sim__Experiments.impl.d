lib/sim/experiments.ml: Array Braid_core Braid_uarch Braid_workload Emulator Instr List Op Option Printf Render String Suite Trace
