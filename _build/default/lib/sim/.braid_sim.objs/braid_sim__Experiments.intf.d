lib/sim/experiments.mli:
