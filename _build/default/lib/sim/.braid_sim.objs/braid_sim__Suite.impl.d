lib/sim/suite.ml: Braid_core Braid_uarch Braid_workload Emulator Hashtbl List Printf Program Reg Sys Trace
