lib/sim/suite.mli: Braid_core Braid_uarch Braid_workload Program Trace
