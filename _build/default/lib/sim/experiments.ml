module Spec = Braid_workload.Spec
module C = Braid_core
module U = Braid_uarch

type outcome = {
  id : string;
  title : string;
  paper_expectation : string;
  rendered : string;
  headline : (string * float) list;
}

let benches ~scale = List.map (fun p -> Suite.prepare ~scale p) Spec.all

let named name cfg = { cfg with U.Config.name }

let is_fp (p : Suite.prepared) = p.Suite.profile.Spec.cls = Spec.Fp_bench

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* A per-benchmark table of float series with int/fp/overall average rows. *)
let norm_table ~title ~cols rows =
  let avg_row label filter =
    let sel = List.filter_map (fun (p, vs) -> if filter p then Some vs else None) rows in
    match sel with
    | [] -> None
    | _ ->
        let n = List.length cols in
        let avgs =
          List.init n (fun i -> mean (List.map (fun vs -> List.nth vs i) sel))
        in
        Some (label, avgs)
  in
  let body =
    List.map
      (fun ((p : Suite.prepared), vs) -> (p.Suite.profile.Spec.name, vs))
      rows
  in
  let tail =
    List.filter_map
      (fun x -> x)
      [
        avg_row "int avg" (fun p -> not (is_fp p));
        avg_row "fp avg" is_fp;
        avg_row "average" (fun _ -> true);
      ]
  in
  let table = Render.grouped_series ~title ~series_names:cols ~rows:(body @ tail) in
  (* the paper presents these as bar charts: chart the average row *)
  let chart =
    match List.assoc_opt "average" tail with
    | Some avgs when List.for_all (fun v -> v >= 0.0) avgs ->
        Render.bar_chart ~title:"(averages)" (List.combine cols avgs)
    | Some _ | None -> ""
  in
  table ^ chart

let overall_avg cols rows col =
  let idx =
    match List.find_index (String.equal col) cols with
    | Some i -> i
    | None -> invalid_arg "overall_avg: unknown column"
  in
  mean (List.map (fun (_, vs) -> List.nth vs idx) rows)

(* ---------------------------------------------------------------- *)
(* §1.1: value fanout and lifetime                                   *)
(* ---------------------------------------------------------------- *)

let fanout_lifetime ~scale =
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let vs = C.Value_stats.of_trace p.Suite.conv_trace in
        ( p,
          [
            C.Value_stats.fanout_exactly vs 1 *. 100.0;
            C.Value_stats.fanout_at_most vs 2 *. 100.0;
            C.Value_stats.unused_fraction vs *. 100.0;
            C.Value_stats.lifetime_at_most vs 32 *. 100.0;
          ] ))
      (benches ~scale)
  in
  let cols = [ "used-once%"; "used<=2x%"; "unused%"; "life<=32%" ] in
  let rendered =
    norm_table ~title:"Value fanout and lifetime (dynamic, conventional binaries)"
      ~cols rows
  in
  {
    id = "fanout-lifetime";
    title = "Value fanout and lifetime (paper §1.1)";
    paper_expectation =
      "~70% of values used once, ~90% used at most twice, ~4% unused; \
       ~80% of values live <=32 instructions";
    rendered;
    headline =
      [
        ("used-once%", overall_avg cols rows "used-once%");
        ("used<=2x%", overall_avg cols rows "used<=2x%");
        ("unused%", overall_avg cols rows "unused%");
        ("life<=32%", overall_avg cols rows "life<=32%");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Workload characterisation: dynamic instruction mix                *)
(* ---------------------------------------------------------------- *)

let instruction_mix ~scale =
  let cols = [ "loads%"; "stores%"; "branches%"; "fp%"; "int-alu%" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let t = p.Suite.conv_trace in
        let n = float_of_int (max 1 (Trace.length t)) in
        let count f =
          100.0
          *. float_of_int
               (Array.fold_left
                  (fun acc e -> if f e then acc + 1 else acc)
                  0 t.Trace.events)
          /. n
        in
        ( p,
          [
            count (fun e -> e.Trace.is_load);
            count (fun e -> e.Trace.is_store);
            count Trace.branch_of;
            count (fun e -> Op.is_fp e.Trace.instr.Instr.op);
            count (fun (e : Trace.event) ->
                match e.Trace.instr.Instr.op with
                | Op.Ibin _ | Op.Ibini _ | Op.Movi _ | Op.Cmov _ -> true
                | _ -> false);
          ] ))
      (benches ~scale)
  in
  {
    id = "instruction-mix";
    title = "Workload characterisation: dynamic instruction mix of the 26 stand-ins";
    paper_expectation =
      "SPEC-like mixes: ~20-30% memory operations, ~10% branches on the \
       integer side, substantial FP compute on the floating-point side";
    rendered = norm_table ~title:"Dynamic instruction mix (%)" ~cols rows;
    headline =
      [
        ("loads%", overall_avg cols rows "loads%");
        ("branches%", overall_avg cols rows "branches%");
        ("fp%", overall_avg cols rows "fp%");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Tables 1-3: static braid statistics                               *)
(* ---------------------------------------------------------------- *)

let braid_summaries ~scale =
  List.map
    (fun (p : Suite.prepared) ->
      ( p,
        C.Braid_stats.summarize
          (C.Braid_stats.of_program p.Suite.braid.C.Transform.program) ))
    (benches ~scale)

let table1 ~scale =
  let data = braid_summaries ~scale in
  let cols = [ "braids/block"; "excl-singles" ] in
  let rows =
    List.map
      (fun (p, (s : C.Braid_stats.summary)) ->
        (p, [ s.C.Braid_stats.braids_per_block; s.C.Braid_stats.braids_per_block_multi ]))
      data
  in
  let singles = mean (List.map (fun (_, s) -> s.C.Braid_stats.single_instr_fraction *. 100.) data) in
  let branchy = mean (List.map (fun (_, s) -> s.C.Braid_stats.single_branch_nop_fraction *. 100.) data) in
  {
    id = "table1";
    title = "Table 1: braids per basic block";
    paper_expectation =
      "int 2.8 / fp 3.8 braids per block; 1.1 / 1.5 excluding single-instruction \
       braids; 20% of instructions are single-instruction braids, 56% of those \
       branches/nops";
    rendered =
      norm_table ~title:"Braids per basic block (static)" ~cols rows
      ^ Printf.sprintf
          "\nsingle-instruction braids: %.1f%% of all instructions; %.1f%% of them \
           are branches/jumps/nops\n"
          singles branchy;
    headline =
      [
        ("braids/block", overall_avg cols rows "braids/block");
        ("excl-singles", overall_avg cols rows "excl-singles");
        ("single-instr%", singles);
        ("single-branch%", branchy);
      ];
  }

let table2 ~scale =
  let data = braid_summaries ~scale in
  let cols = [ "size"; "size*"; "width"; "width*" ] in
  let rows =
    List.map
      (fun (p, (s : C.Braid_stats.summary)) ->
        ( p,
          [
            s.C.Braid_stats.avg_size; s.C.Braid_stats.avg_size_multi;
            s.C.Braid_stats.avg_width; s.C.Braid_stats.avg_width_multi;
          ] ))
      data
  in
  {
    id = "table2";
    title = "Table 2: braid size and width (* = excluding single-instruction braids)";
    paper_expectation =
      "size 2.5 int / 3.6 fp (4.7 / 7.6 excl. singles); width ~1.1 for both";
    rendered = norm_table ~title:"Braid size and width (static)" ~cols rows;
    headline =
      [
        ("size", overall_avg cols rows "size");
        ("size-excl-singles", overall_avg cols rows "size*");
        ("width-excl-singles", overall_avg cols rows "width*");
      ];
  }

let table3 ~scale =
  let data = braid_summaries ~scale in
  let cols = [ "internals"; "int*"; "ext-in"; "in*"; "ext-out"; "out*" ] in
  let rows =
    List.map
      (fun (p, (s : C.Braid_stats.summary)) ->
        ( p,
          [
            s.C.Braid_stats.avg_internals; s.C.Braid_stats.avg_internals_multi;
            s.C.Braid_stats.avg_ext_inputs; s.C.Braid_stats.avg_ext_inputs_multi;
            s.C.Braid_stats.avg_ext_outputs; s.C.Braid_stats.avg_ext_outputs_multi;
          ] ))
      data
  in
  {
    id = "table3";
    title = "Table 3: braid internals, external inputs and outputs (* = excl. singles)";
    paper_expectation =
      "internals 1.7 int / 3.0 fp (4.0 / 7.5 excl.); ext inputs 1.7 / 2.2; \
       ext outputs 0.7 / 0.8";
    rendered = norm_table ~title:"Braid dependencies (static)" ~cols rows;
    headline =
      [
        ("internals-excl", overall_avg cols rows "int*");
        ("ext-in-excl", overall_avg cols rows "in*");
        ("ext-out-excl", overall_avg cols rows "out*");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 1: potential of wider issue (perfect front end)               *)
(* ---------------------------------------------------------------- *)

let fig1 ~scale =
  let cols = [ "8w/4w"; "16w/4w" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let run w =
          let cfg =
            U.Config.perfect_frontend (U.Config.scale_width U.Config.ooo_8wide w)
          in
          Suite.run_conv p (named (Printf.sprintf "ooo-perfect-%dw" w) cfg)
        in
        let r4 = run 4 and r8 = run 8 and r16 = run 16 in
        (p, [ U.Pipeline.speedup r4 r8; U.Pipeline.speedup r4 r16 ]))
      (benches ~scale)
  in
  {
    id = "fig1";
    title = "Fig 1: potential performance of 8/16-wide over 4-wide OoO (perfect BP+caches)";
    paper_expectation = "average speedups 1.44x (8-wide) and 1.83x (16-wide)";
    rendered = norm_table ~title:"Speedup over 4-wide conventional OoO, perfect front end" ~cols rows;
    headline =
      [
        ("8w/4w", overall_avg cols rows "8w/4w");
        ("16w/4w", overall_avg cols rows "16w/4w");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 5: OoO sensitivity to register count                          *)
(* ---------------------------------------------------------------- *)

let fig5 ~scale =
  let counts = [ 8; 16; 32; 64; 256 ] in
  let cols = List.map string_of_int counts in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let run n =
          Suite.run_conv p
            (named (Printf.sprintf "ooo-regs-%d" n)
               { U.Config.ooo_8wide with U.Config.ext_regs = n })
        in
        let base = run 256 in
        (p, List.map (fun n -> U.Pipeline.speedup base (run n)) counts))
      (benches ~scale)
  in
  {
    id = "fig5";
    title = "Fig 5: conventional OoO performance vs register count (normalised to 256)";
    paper_expectation = "32 registers lose ~8%, 16 registers lose ~21%";
    rendered = norm_table ~title:"OoO normalised performance vs registers" ~cols rows;
    headline =
      [
        ("regs-32", overall_avg cols rows "32");
        ("regs-16", overall_avg cols rows "16");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 6: braid sensitivity to external register count               *)
(* ---------------------------------------------------------------- *)

let fig6 ~scale =
  let counts = [ 1; 2; 4; 8; 16; 32; 256 ] in
  let cols = List.map string_of_int counts in
  let rows =
    List.map
      (fun (profile : Spec.profile) ->
        let run n =
          let p =
            Suite.prepare ~scale
              ~ext_usable:(min n C.Extalloc.usable_per_class) profile
          in
          ( p,
            Suite.run_braid p
              (named (Printf.sprintf "braid-extregs-%d" n)
                 { U.Config.braid_8wide with U.Config.ext_regs = n }) )
        in
        let p, base = run 256 in
        let vals =
          List.map
            (fun n ->
              let _, r = run n in
              float_of_int base.U.Pipeline.cycles /. float_of_int r.U.Pipeline.cycles)
            counts
        in
        (p, vals))
      Spec.all
  in
  {
    id = "fig6";
    title = "Fig 6: braid performance vs external register count (normalised to 256)";
    paper_expectation = "flat until 4 external registers; 8 entries match 256";
    rendered = norm_table ~title:"Braid normalised performance vs external registers" ~cols rows;
    headline =
      [
        ("extregs-8", overall_avg cols rows "8");
        ("extregs-4", overall_avg cols rows "4");
        ("extregs-2", overall_avg cols rows "2");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 7: external register file ports                               *)
(* ---------------------------------------------------------------- *)

let fig7 ~scale =
  let ports = [ (4, 2); (6, 3); (8, 4); (16, 8) ] in
  let cols = List.map (fun (r, w) -> Printf.sprintf "%dr%dw" r w) ports in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let run (r, w) =
          Suite.run_braid p
            (named (Printf.sprintf "braid-ports-%d-%d" r w)
               { U.Config.braid_8wide with U.Config.rf_read_ports = r; rf_write_ports = w })
        in
        let base = run (16, 8) in
        (p, List.map (fun pw -> U.Pipeline.speedup base (run pw)) ports))
      (benches ~scale)
  in
  {
    id = "fig7";
    title = "Fig 7: braid performance vs external RF ports (normalised to 16r/8w)";
    paper_expectation = "6r/3w within 0.5% of the full port count";
    rendered = norm_table ~title:"Braid normalised performance vs RF ports" ~cols rows;
    headline = [ ("6r3w", overall_avg cols rows "6r3w"); ("4r2w", overall_avg cols rows "4r2w") ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 8: bypass paths                                               *)
(* ---------------------------------------------------------------- *)

let fig8 ~scale =
  let paths = [ 1; 2; 4; 8 ] in
  let cols = List.map string_of_int paths in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let run n =
          Suite.run_braid p
            (named (Printf.sprintf "braid-bypass-%d" n)
               { U.Config.braid_8wide with U.Config.bypass_per_cycle = n })
        in
        let base =
          Suite.run_braid p
            (named "braid-bypass-full"
               { U.Config.braid_8wide with U.Config.bypass_per_cycle = 64 })
        in
        (p, List.map (fun n -> U.Pipeline.speedup base (run n)) paths))
      (benches ~scale)
  in
  {
    id = "fig8";
    title = "Fig 8: braid performance vs bypass paths per cycle (normalised to full bypass)";
    paper_expectation = "2 bypass values per cycle within 1% of a full network";
    rendered = norm_table ~title:"Braid normalised performance vs bypass paths" ~cols rows;
    headline = [ ("bypass-2", overall_avg cols rows "2"); ("bypass-1", overall_avg cols rows "1") ];
  }

(* ---------------------------------------------------------------- *)
(* Figs 9-12: execution-core parameters (normalised to 8-wide OoO)   *)
(* ---------------------------------------------------------------- *)

let braid_sweep ~scale ~id ~title ~expect ~cols ~configs =
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_conv p U.Config.ooo_8wide in
        (p, List.map (fun cfg -> U.Pipeline.speedup base (Suite.run_braid p cfg)) configs))
      (benches ~scale)
  in
  {
    id;
    title;
    paper_expectation = expect;
    rendered = norm_table ~title ~cols rows;
    headline =
      List.map2 (fun c _ -> ("cfg-" ^ c, overall_avg cols rows c)) cols configs;
  }

let fig9 ~scale =
  let counts = [ 1; 2; 4; 8; 16 ] in
  braid_sweep ~scale ~id:"fig9"
    ~title:"Fig 9: braid performance vs number of BEUs (normalised to 8-wide OoO)"
    ~expect:"rising with BEU count: more ready braids than BEUs; 8 BEUs near OoO"
    ~cols:(List.map string_of_int counts)
    ~configs:
      (List.map
         (fun n ->
           named (Printf.sprintf "braid-beus-%d" n)
             { U.Config.braid_8wide with U.Config.clusters = n })
         counts)

let fig10 ~scale =
  let sizes = [ 4; 8; 16; 32; 64 ] in
  braid_sweep ~scale ~id:"fig10"
    ~title:"Fig 10: braid performance vs FIFO queue entries (normalised to 8-wide OoO)"
    ~expect:"32 entries capture almost all performance (99% of braids are <=32 instructions)"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           named (Printf.sprintf "braid-fifo-%d" n)
             { U.Config.braid_8wide with U.Config.cluster_entries = n })
         sizes)

let fig11 ~scale =
  let sizes = [ 1; 2; 4; 8 ] in
  braid_sweep ~scale ~id:"fig11"
    ~title:"Fig 11: braid performance vs FIFO scheduling window (normalised to 8-wide OoO)"
    ~expect:"steep rise from 1 to 2, plateau beyond: ready instructions sit at the head"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           named (Printf.sprintf "braid-window-%d" n)
             { U.Config.braid_8wide with U.Config.sched_window = n })
         sizes)

let fig12 ~scale =
  let sizes = [ 1; 2; 4; 8 ] in
  braid_sweep ~scale ~id:"fig12"
    ~title:"Fig 12: braid performance vs window size = FUs per BEU (normalised to 8-wide OoO)"
    ~expect:"same trend as Fig 11: braid ILP is ~2, more FUs do not help"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           named (Printf.sprintf "braid-winfu-%d" n)
             { U.Config.braid_8wide with U.Config.sched_window = n; fus_per_cluster = n })
         sizes)

(* ---------------------------------------------------------------- *)
(* Fig 13: the four paradigms at 4/8/16-wide                         *)
(* ---------------------------------------------------------------- *)

let fig13 ~scale =
  let widths = [ 4; 8; 16 ] in
  let cols =
    List.concat_map
      (fun w ->
        List.map (fun k -> Printf.sprintf "%s-%d" k w) [ "io"; "dep"; "braid"; "ooo" ])
      widths
  in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_conv p U.Config.ooo_8wide in
        let vals =
          List.concat_map
            (fun w ->
              let scale_of cfg = U.Config.scale_width cfg w in
              let io = Suite.run_conv p (scale_of U.Config.in_order_8wide) in
              let dep = Suite.run_conv p (scale_of U.Config.dep_steer_8wide) in
              let braid = Suite.run_braid p (scale_of U.Config.braid_8wide) in
              let ooo = Suite.run_conv p (scale_of U.Config.ooo_8wide) in
              List.map (U.Pipeline.speedup base) [ io; dep; braid; ooo ])
            widths
        in
        (p, vals))
      (benches ~scale)
  in
  let braid8 = overall_avg cols rows "braid-8" in
  let ooo8 = overall_avg cols rows "ooo-8" in
  let braid16 = overall_avg cols rows "braid-16" in
  let ooo16 = overall_avg cols rows "ooo-16" in
  let braid4 = overall_avg cols rows "braid-4" in
  let ooo4 = overall_avg cols rows "ooo-4" in
  {
    id = "fig13";
    title =
      "Fig 13: in-order / dependence-steering / braid / OoO at 4, 8, 16-wide \
       (normalised to 8-wide OoO)";
    paper_expectation =
      "braid within ~9% of 8-wide OoO; significant gains remain at wider widths; \
       the braid-OoO gap closes as width grows";
    rendered = norm_table ~title:"Normalised performance, four paradigms x three widths" ~cols rows;
    headline =
      [
        ("braid8/ooo8", braid8 /. ooo8);
        ("braid4/ooo4", braid4 /. ooo4);
        ("braid16/ooo16", braid16 /. ooo16);
        ("io8/ooo8", overall_avg cols rows "io-8" /. ooo8);
        ("dep8/ooo8", overall_avg cols rows "dep-8" /. ooo8);
      ];
  }

(* ---------------------------------------------------------------- *)
(* Fig 14: equal functional-unit resources                           *)
(* ---------------------------------------------------------------- *)

let fig14 ~scale =
  let cols = [ "4beu-2fu"; "8beu-1fu" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_braid p U.Config.braid_8wide in
        let a =
          Suite.run_braid p
            (named "braid-4x2"
               { U.Config.braid_8wide with U.Config.clusters = 4; fus_per_cluster = 2 })
        in
        let b =
          Suite.run_braid p
            (named "braid-8x1"
               { U.Config.braid_8wide with U.Config.clusters = 8; fus_per_cluster = 1 })
        in
        (p, [ U.Pipeline.speedup base a; U.Pipeline.speedup base b ]))
      (benches ~scale)
  in
  {
    id = "fig14";
    title = "Fig 14: equal FU budget — 4 BEUx2FU vs 8 BEUx1FU (normalised to 8 BEUx2FU)";
    paper_expectation = "more BEUs with fewer FUs each beats fewer, wider BEUs";
    rendered = norm_table ~title:"Braid normalised performance at 8 total FUs" ~cols rows;
    headline =
      [
        ("4beu-2fu", overall_avg cols rows "4beu-2fu");
        ("8beu-1fu", overall_avg cols rows "8beu-1fu");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

let pipeline_ablation ~scale =
  let cols = [ "penalty-23"; "penalty-19" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let deep =
          Suite.run_braid p
            (named "braid-deep"
               { U.Config.braid_8wide with U.Config.misprediction_penalty = 23 })
        in
        let short = Suite.run_braid p U.Config.braid_8wide in
        (p, [ 1.0; U.Pipeline.speedup deep short ]))
      (benches ~scale)
  in
  let gain = (overall_avg cols rows "penalty-19" -. 1.0) *. 100.0 in
  {
    id = "pipeline-ablation";
    title = "§5.1 ablation: gain from the 4-stage-shorter braid pipeline (19 vs 23-cycle penalty)";
    paper_expectation = "the shorter pipeline is worth ~2.19% on average";
    rendered =
      norm_table ~title:"Braid speedup from the shorter pipeline" ~cols rows
      ^ Printf.sprintf "\naverage gain from shorter pipeline: %.2f%%\n" gain;
    headline = [ ("gain%", gain) ];
  }

let split_ablation ~scale =
  (* the internal register file has 8 entries, so thresholds above 8 are
     not encodable; sweep below it *)
  let thresholds = [ 2; 4; 6; 8 ] in
  let cols = List.map (fun t -> Printf.sprintf "wset-%d" t) thresholds in
  let rows =
    List.map
      (fun (profile : Spec.profile) ->
        let runs =
          List.map
            (fun t ->
              let p = Suite.prepare ~scale ~max_internal:t profile in
              let r =
                Suite.run_braid p
                  (named (Printf.sprintf "braid-wset-%d" t) U.Config.braid_8wide)
              in
              (p, r))
            thresholds
        in
        let _, base = List.nth runs 3 (* threshold 8 *) in
        let p0, _ = List.hd runs in
        (p0, List.map (fun (_, r) -> U.Pipeline.speedup base r) runs))
      Spec.all
  in
  let split_frac =
    List.map
      (fun (profile : Spec.profile) ->
        let p = Suite.prepare ~scale ~max_internal:8 profile in
        float_of_int p.Suite.braid.C.Transform.splits_working_set
        /. float_of_int (max 1 p.Suite.braid.C.Transform.braids))
      Spec.all
  in
  {
    id = "split-ablation";
    title = "Ablation: internal working-set threshold (braids split when internals exceed it)";
    paper_expectation =
      "8 internal registers suffice; splitting at 8 affects ~2% of braids";
    rendered =
      norm_table ~title:"Braid performance vs working-set threshold (normalised to 8)" ~cols rows
      ^ Printf.sprintf "\nbraids split at threshold 8: %.2f%% (average)\n"
          (100.0 *. mean split_frac);
    headline =
      [
        ("split%@8", 100.0 *. mean split_frac);
        ("wset-4", overall_avg cols rows "wset-4");
        ("wset-2", overall_avg cols rows "wset-2");
      ];
  }

let spill_ablation ~scale =
  let budgets = [ 4; 8; 16; 28 ] in
  let cols =
    List.concat_map
      (fun b -> [ Printf.sprintf "conv@%d" b; Printf.sprintf "braid@%d" b ])
      budgets
  in
  let rows =
    List.map
      (fun (profile : Spec.profile) ->
        let vals =
          List.concat_map
            (fun budget ->
              let virtual_ir, _ = Spec.generate profile ~seed:1 ~scale in
              let conv = C.Extalloc.allocate ~usable:budget virtual_ir in
              let braid = C.Transform.run ~ext_usable:budget virtual_ir in
              [
                float_of_int
                  (conv.C.Extalloc.spill_loads + conv.C.Extalloc.spill_stores);
                float_of_int
                  (braid.C.Transform.alloc.C.Extalloc.spill_loads
                  + braid.C.Transform.alloc.C.Extalloc.spill_stores);
              ])
            budgets
        in
        let p = Suite.prepare ~scale profile in
        (p, vals))
      Spec.all
  in
  {
    id = "spill-ablation";
    title =
      "§5.2 ablation: static spill instructions, conventional vs braid compilation, \
       per register budget";
    paper_expectation =
      "braid register management reduces spill/fill code (fewer external values \
       competing for registers)";
    rendered = norm_table ~title:"Static spill instructions (loads+stores)" ~cols rows;
    headline =
      [
        ("conv@8", overall_avg cols rows "conv@8");
        ("braid@8", overall_avg cols rows "braid@8");
      ];
  }

(* ---------------------------------------------------------------- *)
(* §5.1: complexity and switching-activity comparison                *)
(* ---------------------------------------------------------------- *)

let complexity_table ~scale =
  let configs =
    [ U.Config.in_order_8wide; U.Config.dep_steer_8wide; U.Config.braid_8wide;
      U.Config.ooo_8wide ]
  in
  let static =
    Render.table
      ~header:[ "config"; "RF area"; "scheduler"; "bypass"; "total"; "rename ports"; "wakeup/result" ]
      ~rows:
        (List.map
           (fun cfg ->
             let c = U.Complexity.of_config cfg in
             [
               cfg.U.Config.name;
               Printf.sprintf "%.0f" c.U.Complexity.rf_area;
               Printf.sprintf "%.0f" c.U.Complexity.scheduler_area;
               Printf.sprintf "%.0f" c.U.Complexity.bypass_area;
               Printf.sprintf "%.0f" c.U.Complexity.total;
               Printf.sprintf "%.0f" c.U.Complexity.rename_ports;
               Printf.sprintf "%.0f" c.U.Complexity.wakeup_broadcast_per_result;
             ])
           configs)
  in
  (* dynamic per-instruction activity, averaged over the suite *)
  let dynamic which run_of cfg =
    let es =
      List.map
        (fun (p : Suite.prepared) ->
          U.Complexity.energy_of_run cfg (run_of p cfg))
        (benches ~scale)
    in
    let avg f = mean (List.map f es) in
    [
      which;
      Printf.sprintf "%.2f" (avg (fun e -> e.U.Complexity.ext_rf_accesses_per_instr));
      Printf.sprintf "%.2f" (avg (fun e -> e.U.Complexity.int_rf_accesses_per_instr));
      Printf.sprintf "%.2f" (avg (fun e -> e.U.Complexity.bypass_values_per_instr));
      Printf.sprintf "%.0f" (avg (fun e -> e.U.Complexity.broadcast_work_per_instr));
    ]
  in
  let activity =
    Render.table
      ~header:[ "config"; "ext RF acc/instr"; "int RF acc/instr"; "bypass/instr"; "wakeup work/instr" ]
      ~rows:
        [
          dynamic "ooo-8" Suite.run_conv U.Config.ooo_8wide;
          dynamic "braid-8" Suite.run_braid U.Config.braid_8wide;
        ]
  in
  let ooo_c = U.Complexity.of_config U.Config.ooo_8wide in
  let braid_c = U.Complexity.of_config U.Config.braid_8wide in
  let io_c = U.Complexity.of_config U.Config.in_order_8wide in
  {
    id = "complexity-table";
    title = "§5.1: static complexity indices and per-instruction switching activity";
    paper_expectation =
      "braid avoids large associative structures: tiny external RF, FIFO \
       schedulers without tag broadcast, 1-level bypass — complexity close to \
       in-order, far from out-of-order";
    rendered = "Static area/complexity indices\n" ^ static ^ "\nDynamic activity (suite average)\n" ^ activity;
    headline =
      [
        ("ooo/braid-total", U.Complexity.relative ooo_c braid_c);
        ("braid/inorder-total", U.Complexity.relative braid_c io_c);
      ];
  }

(* ---------------------------------------------------------------- *)
(* §5.1: out-of-order scheduling inside the BEU                      *)
(* ---------------------------------------------------------------- *)

let beu_ooo_ablation ~scale =
  let cols = [ "fifo-window-2"; "ooo-in-beu" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_braid p U.Config.braid_8wide in
        let oooed =
          Suite.run_braid p
            (named "braid-ooo-beu"
               { U.Config.braid_8wide with U.Config.beu_out_of_order = true })
        in
        (p, [ 1.0; U.Pipeline.speedup base oooed ]))
      (benches ~scale)
  in
  let gain = (overall_avg cols rows "ooo-in-beu" -. 1.0) *. 100.0 in
  {
    id = "beu-ooo-ablation";
    title = "§5.1 ablation: out-of-order selection inside each BEU (vs 2-entry FIFO window)";
    paper_expectation =
      "considered and rejected: braids are narrow, so an out-of-order BEU \
       scheduler buys almost nothing for its complexity";
    rendered =
      norm_table ~title:"Braid speedup from an OoO scheduler in the BEU" ~cols rows
      ^ Printf.sprintf "\naverage gain: %.2f%%\n" gain;
    headline = [ ("gain%", gain) ];
  }

(* ---------------------------------------------------------------- *)
(* §5.2: clustering BEUs                                             *)
(* ---------------------------------------------------------------- *)

let clustering_ablation ~scale =
  let variants =
    [ ("flat", 0, 0); ("2x4+2cyc", 4, 2); ("4x2+2cyc", 2, 2); ("2x4+4cyc", 4, 4) ]
  in
  let cols = List.map (fun (n, _, _) -> n) variants in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_braid p U.Config.braid_8wide in
        ( p,
          List.map
            (fun (n, size, lat) ->
              let r =
                Suite.run_braid p
                  (named ("braid-clu-" ^ n)
                     {
                       U.Config.braid_8wide with
                       U.Config.beu_cluster_size = size;
                       inter_cluster_latency = lat;
                     })
              in
              U.Pipeline.speedup base r)
            variants ))
      (benches ~scale)
  in
  {
    id = "clustering-ablation";
    title = "§5.2: clustered BEUs — inter-cluster values pay extra latency";
    paper_expectation =
      "clustering is orthogonal: fast intra-cluster communication preserves \
       most performance while easing wiring";
    rendered = norm_table ~title:"Braid performance under BEU clustering (normalised to flat)" ~cols rows;
    headline =
      [
        ("2x4+2cyc", overall_avg cols rows "2x4+2cyc");
        ("2x4+4cyc", overall_avg cols rows "2x4+4cyc");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Binary translation vs braid-aware compilation (§3.1 methodology)  *)
(* ---------------------------------------------------------------- *)

let binary_translation ~scale =
  let cols = [ "compiled"; "translated" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_conv p U.Config.ooo_8wide in
        let compiled = Suite.run_braid p U.Config.braid_8wide in
        (* braid the already-allocated conventional binary, as the paper's
           profiling + binary-translation tools did *)
        let translated_prog =
          (C.Transform.run_binary p.Suite.conventional.C.Extalloc.program)
            .C.Transform.program
        in
        let out =
          Emulator.run ~max_steps:(50 * scale) ~init_mem:p.Suite.init_mem
            translated_prog
        in
        let translated =
          U.Pipeline.run ~warm_data:p.Suite.warm_data
            (named "braid-translated" U.Config.braid_8wide)
            (Option.get out.Emulator.trace)
        in
        (p, [ U.Pipeline.speedup base compiled; U.Pipeline.speedup base translated ]))
      (benches ~scale)
  in
  {
    id = "binary-translation";
    title =
      "Methodology ablation: braid-aware compilation vs binary translation of a \
       preexisting binary (both normalised to 8-wide OoO)";
    paper_expectation =
      "the paper braided preexisting Alpha binaries and notes a braid-aware \
       compiler would do better (more internal values, no translation \
       artifacts)";
    rendered =
      norm_table ~title:"Braid performance: compiled vs translated binary" ~cols rows;
    headline =
      [
        ("compiled", overall_avg cols rows "compiled");
        ("translated", overall_avg cols rows "translated");
      ];
  }

(* ---------------------------------------------------------------- *)
(* §3.4: checkpoints — braid checkpoints are small, so equal storage *)
(* buys more of them                                                 *)
(* ---------------------------------------------------------------- *)

let checkpoint_ablation ~scale =
  let counts = [ 1; 2; 4; 8; 16 ] in
  let cols =
    List.concat_map
      (fun n -> [ Printf.sprintf "ooo@%d" n; Printf.sprintf "braid@%d" n ])
      counts
  in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let ooo_base = Suite.run_conv p U.Config.ooo_8wide in
        let braid_base = Suite.run_braid p U.Config.braid_8wide in
        let vals =
          List.concat_map
            (fun n ->
              let ooo =
                Suite.run_conv p
                  (named (Printf.sprintf "ooo-ckpt-%d" n)
                     { U.Config.ooo_8wide with U.Config.max_unresolved_branches = n })
              in
              let braid =
                Suite.run_braid p
                  (named (Printf.sprintf "braid-ckpt-%d" n)
                     { U.Config.braid_8wide with U.Config.max_unresolved_branches = n })
              in
              [ U.Pipeline.speedup ooo_base ooo; U.Pipeline.speedup braid_base braid ])
            counts
        in
        (p, vals))
      (benches ~scale)
  in
  (* equal checkpoint storage: a conventional checkpoint snapshots a
     256-entry map, a braid checkpoint the 8-entry external file and no
     internal state (§3.4) — call it 8x more checkpoints per byte *)
  let note =
    "\nequal-storage reading: compare ooo@2 against braid@16 — a braid \
     checkpoint carries ~1/8 the state (8-entry external file, no internal \
     values), so the same budget buys 8x more checkpoints.\n"
  in
  {
    id = "checkpoint-ablation";
    title = "§3.4 ablation: performance vs checkpoint count (unresolved branches in flight)";
    paper_expectation =
      "checkpoints require less state in the braid machine: internal values \
       are dead at braid boundaries and never checkpointed";
    rendered =
      norm_table
        ~title:"Performance vs checkpoint count (each normalised to its own unlimited machine)"
        ~cols rows
      ^ note;
    headline =
      [
        ("ooo@2", overall_avg cols rows "ooo@2");
        ("braid@2", overall_avg cols rows "braid@2");
        ("braid@16", overall_avg cols rows "braid@16");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Predictor ablation: Table 4's perceptron vs a gshare baseline     *)
(* ---------------------------------------------------------------- *)

let predictor_ablation ~scale =
  let cols = [ "gshare-perf"; "gshare-mpki"; "perceptron-mpki" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let perceptron = Suite.run_braid p U.Config.braid_8wide in
        let gshare =
          Suite.run_braid p
            (named "braid-gshare"
               { U.Config.braid_8wide with U.Config.predictor = U.Config.Gshare })
        in
        let mpki (r : U.Pipeline.result) =
          1000.0 *. float_of_int r.U.Pipeline.branch_mispredicts
          /. float_of_int r.U.Pipeline.instructions
        in
        (p, [ U.Pipeline.speedup perceptron gshare; mpki gshare; mpki perceptron ]))
      (benches ~scale)
  in
  {
    id = "predictor-ablation";
    title = "Predictor ablation: perceptron (Table 4) vs gshare on the braid machine";
    paper_expectation =
      "the aggressive front end matters: the perceptron's long history should \
       beat a gshare baseline";
    rendered =
      norm_table ~title:"Gshare performance relative to perceptron, and MPKI" ~cols rows;
    headline =
      [
        ("gshare-relative", overall_avg cols rows "gshare-perf");
        ("gshare-mpki", overall_avg cols rows "gshare-mpki");
        ("perceptron-mpki", overall_avg cols rows "perceptron-mpki");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Static vs dynamic braid statistics                                *)
(* ---------------------------------------------------------------- *)

let dynamic_braids ~scale =
  let cols = [ "static-b/blk"; "dyn-b/blk"; "static-size"; "dyn-size"; "dyn-single%" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let s =
          C.Braid_stats.summarize
            (C.Braid_stats.of_program p.Suite.braid.C.Transform.program)
        in
        let d = C.Braid_stats.dynamic_of_trace p.Suite.braid_trace in
        ( p,
          [
            s.C.Braid_stats.braids_per_block;
            d.C.Braid_stats.dyn_braids_per_block;
            s.C.Braid_stats.avg_size;
            d.C.Braid_stats.dyn_avg_size;
            d.C.Braid_stats.dyn_single_fraction *. 100.0;
          ] ))
      (benches ~scale)
  in
  {
    id = "dynamic-braids";
    title = "Static vs execution-weighted braid statistics";
    paper_expectation =
      "hot inner blocks dominate execution, so dynamic braids are slightly \
       larger and block occupancy higher than the static averages of Tables 1-2";
    rendered = norm_table ~title:"Braid statistics, static and dynamic" ~cols rows;
    headline =
      [
        ("dyn-braids/block", overall_avg cols rows "dyn-b/blk");
        ("dyn-size", overall_avg cols rows "dyn-size");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Front-end fidelity: wrong-path fetch pollution and a finite BTB    *)
(* ---------------------------------------------------------------- *)

let frontend_ablation ~scale =
  let cols = [ "baseline"; "wrong-path"; "btb-512"; "btb-64" ] in
  let rows =
    List.map
      (fun (p : Suite.prepared) ->
        let base = Suite.run_braid p U.Config.braid_8wide in
        let variant name f = Suite.run_braid p (named name (f U.Config.braid_8wide)) in
        let wp =
          variant "braid-wrongpath" (fun c ->
              { c with U.Config.model_wrong_path_fetch = true })
        in
        let btb n =
          variant (Printf.sprintf "braid-btb%d" n) (fun c ->
              { c with U.Config.btb_entries = n })
        in
        ( p,
          [
            1.0;
            U.Pipeline.speedup base wp;
            U.Pipeline.speedup base (btb 512);
            U.Pipeline.speedup base (btb 64);
          ] ))
      (benches ~scale)
  in
  {
    id = "frontend-ablation";
    title =
      "Front-end fidelity ablation: wrong-path I-cache pollution and finite BTBs \
       (braid machine, normalised to the default front end)";
    paper_expectation =
      "the default model treats wrong-path work as a pure bubble and targets \
       as perfect; these options bound how much that flatters the results";
    rendered = norm_table ~title:"Braid performance under front-end fidelity options" ~cols rows;
    headline =
      [
        ("wrong-path", overall_avg cols rows "wrong-path");
        ("btb-512", overall_avg cols rows "btb-512");
        ("btb-64", overall_avg cols rows "btb-64");
      ];
  }

(* ---------------------------------------------------------------- *)
(* Seed robustness: the headline result across workload seeds        *)
(* ---------------------------------------------------------------- *)

let seed_robustness ~scale =
  let seeds = [ 1; 2; 3 ] in
  let cols = List.map (fun s -> Printf.sprintf "seed-%d" s) seeds in
  let rows =
    List.map
      (fun (profile : Spec.profile) ->
        let vals =
          List.map
            (fun seed ->
              let p = Suite.prepare ~seed ~scale profile in
              let ooo = Suite.run_conv p U.Config.ooo_8wide in
              let braid = Suite.run_braid p U.Config.braid_8wide in
              U.Pipeline.speedup ooo braid)
            seeds
        in
        let p = Suite.prepare ~seed:1 ~scale profile in
        (p, vals))
      Spec.all
  in
  let per_seed = List.map (fun c -> overall_avg cols rows c) cols in
  let spread = List.fold_left max 0.0 per_seed -. List.fold_left min 2.0 per_seed in
  {
    id = "seed-robustness";
    title =
      "Robustness: braid/OoO performance ratio across three workload-generation seeds";
    paper_expectation =
      "the headline ratio should be a property of the workload shapes, not \
       of one particular random instance";
    rendered =
      norm_table ~title:"braid-8 relative to ooo-8, per seed" ~cols rows
      ^ Printf.sprintf "\nspread of the suite average across seeds: %.3f\n" spread;
    headline =
      List.map2 (fun c v -> (c, v)) cols per_seed @ [ ("spread", spread) ];
  }

let all : (string * (scale:int -> outcome)) list =
  [
    ("fanout-lifetime", fanout_lifetime);
    ("instruction-mix", instruction_mix);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("pipeline-ablation", pipeline_ablation);
    ("split-ablation", split_ablation);
    ("spill-ablation", spill_ablation);
    ("complexity-table", complexity_table);
    ("beu-ooo-ablation", beu_ooo_ablation);
    ("clustering-ablation", clustering_ablation);
    ("binary-translation", binary_translation);
    ("checkpoint-ablation", checkpoint_ablation);
    ("predictor-ablation", predictor_ablation);
    ("dynamic-braids", dynamic_braids);
    ("frontend-ablation", frontend_ablation);
    ("seed-robustness", seed_robustness);
  ]

let find id ~scale =
  match List.assoc_opt id all with
  | Some f -> f ~scale
  | None -> raise Not_found
