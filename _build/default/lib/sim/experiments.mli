(** One experiment per table and figure of the paper's evaluation, plus the
    ablations DESIGN.md calls out. Each experiment renders the same rows or
    series the paper reports (normalised performance per benchmark with
    int/fp/overall averages) as plain text.

    Experiments share prepared benchmarks and memoised simulation runs
    through {!Suite}, so running the whole set costs each distinct
    (configuration, benchmark) simulation once. *)

type outcome = {
  id : string;  (** e.g. "fig13" *)
  title : string;
  paper_expectation : string;
      (** the claim from the paper this experiment checks, for
          EXPERIMENTS.md *)
  rendered : string;  (** ready-to-print text *)
  headline : (string * float) list;
      (** headline numbers (label, value) for the summary table *)
}

val all : (string * (scale:int -> outcome)) list
(** Every experiment, in paper order: stats, tables 1–3, figs 1 and 5–14,
    and the ablations. Ids are unique. *)

val find : string -> scale:int -> outcome
(** Run one experiment by id. Raises [Not_found] for unknown ids. *)
