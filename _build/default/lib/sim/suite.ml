type prepared = {
  profile : Braid_workload.Spec.profile;
  init_mem : (int * int64) list;
  warm_data : int list;
  virtual_ir : Program.t;
  conventional : Braid_core.Extalloc.result;
  braid : Braid_core.Transform.report;
  conv_trace : Trace.t;
  braid_trace : Trace.t;
}

let default_scale =
  match Sys.getenv_opt "BRAID_SCALE" with
  | Some s -> (try max 1000 (int_of_string s) with Failure _ -> 12_000)
  | None -> 12_000

let prepare_cache : (string, prepared) Hashtbl.t = Hashtbl.create 64

let trace_of ~init_mem ~scale program =
  let out = Emulator.run ~max_steps:(50 * scale) ~trace:true ~init_mem program in
  match out.Emulator.trace with Some t -> t | None -> assert false

let prepare ?(seed = 1) ?(scale = default_scale)
    ?(max_internal = Reg.num_internal) ?(ext_usable = Braid_core.Extalloc.usable_per_class)
    (profile : Braid_workload.Spec.profile) =
  let key =
    Printf.sprintf "%s/%d/%d/%d/%d" profile.Braid_workload.Spec.name seed scale
      max_internal ext_usable
  in
  match Hashtbl.find_opt prepare_cache key with
  | Some p -> p
  | None ->
      let virtual_ir, init_mem =
        Braid_workload.Spec.generate profile ~seed ~scale
      in
      let conventional = Braid_core.Transform.conventional virtual_ir in
      let braid =
        Braid_core.Transform.run ~max_internal ~ext_usable:(min ext_usable Braid_core.Extalloc.usable_per_class)
          virtual_ir
      in
      let p =
        {
          profile;
          init_mem;
          warm_data = List.map fst init_mem;
          virtual_ir;
          conventional;
          braid;
          conv_trace =
            trace_of ~init_mem ~scale conventional.Braid_core.Extalloc.program;
          braid_trace =
            trace_of ~init_mem ~scale braid.Braid_core.Transform.program;
        }
      in
      Hashtbl.add prepare_cache key p;
      p

let run_cache : (string, Braid_uarch.Pipeline.result) Hashtbl.t = Hashtbl.create 256

let run_on ~label trace p (cfg : Braid_uarch.Config.t) =
  let key =
    Printf.sprintf "%s/%s/%s/%d" cfg.Braid_uarch.Config.name
      p.profile.Braid_workload.Spec.name label (Trace.length trace)
  in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let r = Braid_uarch.Pipeline.run ~warm_data:p.warm_data cfg trace in
      Hashtbl.add run_cache key r;
      r

let run_conv p cfg = run_on ~label:"conv" p.conv_trace p cfg
let run_braid p cfg = run_on ~label:"braid" p.braid_trace p cfg
