lib/uarch/complexity.ml: Config Machine Pipeline Printf
