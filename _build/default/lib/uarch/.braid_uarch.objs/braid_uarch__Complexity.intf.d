lib/uarch/complexity.mli: Config Pipeline
