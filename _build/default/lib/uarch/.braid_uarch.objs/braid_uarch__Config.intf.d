lib/uarch/config.mli:
