lib/uarch/exec_core.ml: Array Config List Machine Ring Trace
