lib/uarch/exec_core.mli: Machine
