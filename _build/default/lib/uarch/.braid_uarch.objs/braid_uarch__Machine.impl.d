lib/uarch/machine.ml: Array Cache Config Hashtbl List Predictor Trace
