lib/uarch/machine.mli: Cache Config Predictor Trace
