lib/uarch/pipeline.ml: Array Cache Config Exec_core Hashtbl Instr List Machine Op Option Predictor Printf Program Ring Trace
