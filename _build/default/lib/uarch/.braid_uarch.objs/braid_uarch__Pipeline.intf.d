lib/uarch/pipeline.mli: Config Machine Trace
