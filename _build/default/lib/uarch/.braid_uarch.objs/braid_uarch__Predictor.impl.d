lib/uarch/predictor.ml: Array Config
