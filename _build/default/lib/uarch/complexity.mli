(** Static complexity estimates for the structures §5.1 discusses.

    These are first-order area/energy indices of the classic
    complexity-effective literature, not circuit models:

    - register files grow with entries × (ports)² — doubling ports doubles
      both bit-lines and word-lines (Farkas et al.; Zyuban & Kogge);
    - CAM-based schedulers pay a tag broadcast across every window entry
      per issued result; FIFO schedulers compare only their head window;
    - bypass networks grow with (drivers × consumers) per level, i.e.
      quadratically in the value-per-cycle bandwidth at each level;
    - the rename table ports scale with rename bandwidth.

    The absolute unit is arbitrary; ratios between configurations are the
    meaningful output (the paper's "almost in-order complexity" claim made
    quantitative). *)

type t = {
  rf_area : float;
      (** external RF + (braid) internal RFs: Σ entries × (r+w)² *)
  scheduler_area : float;
      (** window entries weighted by CAM cost (full broadcast) or FIFO
          cost (head-window comparators only) *)
  bypass_area : float;  (** levels × (values per cycle)² × width *)
  rename_ports : float;  (** rename-table access ports *)
  wakeup_broadcast_per_result : float;
      (** window entries a completing result's tag must be compared
          against *)
  total : float;  (** sum of the area indices *)
}

val of_config : Config.t -> t

val relative : t -> t -> float
(** [relative a b] = [a.total /. b.total]. *)

val describe : Config.t -> string
(** Human-readable breakdown. *)

type energy_proxy = {
  ext_rf_accesses_per_instr : float;
  int_rf_accesses_per_instr : float;
  bypass_values_per_instr : float;
  broadcast_work_per_instr : float;
      (** completing results × window entries scanned, per instruction *)
}

val energy_of_run : Config.t -> Pipeline.result -> energy_proxy
(** Dynamic activity of a finished run, normalised per instruction —
    the §5.1 switching-activity argument. *)
