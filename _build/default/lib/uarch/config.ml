type core_kind = In_order | Dep_steer | Ooo | Braid_exec

type predictor_kind = Perceptron | Gshare | Perfect_prediction

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type memory = {
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  memory_latency : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

type t = {
  name : string;
  kind : core_kind;
  fetch_width : int;
  max_branches_per_cycle : int;
  fetch_buffer : int;
  predictor : predictor_kind;
  misprediction_penalty : int;
  alloc_width : int;
  rename_src_width : int;
  rename_dst_width : int;
  commit_width : int;
  ext_regs : int;
  inflight : int;
  clusters : int;
  cluster_entries : int;
  sched_window : int;
  fus_per_cluster : int;
  rf_read_ports : int;
  rf_write_ports : int;
  bypass_per_cycle : int;
  mem : memory;
  lsq_entries : int;
  (* braid-core variants (§5.1 / §5.2) *)
  beu_out_of_order : bool;
  beu_cluster_size : int;
  inter_cluster_latency : int;
  max_unresolved_branches : int;  (* checkpoint count; 0 = unlimited *)
  (* front-end fidelity options *)
  model_wrong_path_fetch : bool;  (* pollute the I-cache down the wrong path *)
  btb_entries : int;  (* 0 = perfect target prediction *)
}

let default_memory =
  {
    l1i = { size_bytes = 64 * 1024; ways = 4; line_bytes = 64; latency = 3 };
    l1d = { size_bytes = 64 * 1024; ways = 2; line_bytes = 64; latency = 3 };
    l2 = { size_bytes = 1024 * 1024; ways = 8; line_bytes = 64; latency = 6 };
    memory_latency = 400;
    perfect_icache = false;
    perfect_dcache = false;
  }

let ooo_8wide =
  {
    name = "ooo-8";
    kind = Ooo;
    fetch_width = 8;
    max_branches_per_cycle = 3;
    fetch_buffer = 32;
    predictor = Perceptron;
    misprediction_penalty = 23;
    alloc_width = 8;
    rename_src_width = 16;
    rename_dst_width = 8;
    commit_width = 8;
    ext_regs = 256;
    inflight = 256;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 32 (* full window: out-of-order select *);
    fus_per_cluster = 1;
    rf_read_ports = 16;
    rf_write_ports = 8;
    bypass_per_cycle = 8;
    mem = default_memory;
    lsq_entries = 64;
    beu_out_of_order = false;
    beu_cluster_size = 0;
    inter_cluster_latency = 2;
    max_unresolved_branches = 0;
    model_wrong_path_fetch = false;
    btb_entries = 0;
  }

let braid_8wide =
  {
    name = "braid-8";
    kind = Braid_exec;
    fetch_width = 8;
    max_branches_per_cycle = 3;
    fetch_buffer = 32;
    predictor = Perceptron;
    misprediction_penalty = 19;
    (* instruction throughput matches the fetch width; Table 4's "4
       operands" is the external-destination allocation bandwidth
       (rename_dst_width) — internal destinations allocate nothing *)
    alloc_width = 8;
    rename_src_width = 8;
    rename_dst_width = 4;
    commit_width = 8;
    ext_regs = 8;
    inflight = 256;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 2;
    fus_per_cluster = 2;
    rf_read_ports = 6;
    rf_write_ports = 3;
    bypass_per_cycle = 2;
    mem = default_memory;
    lsq_entries = 64;
    beu_out_of_order = false;
    beu_cluster_size = 0;
    inter_cluster_latency = 2;
    max_unresolved_branches = 0;
    model_wrong_path_fetch = false;
    btb_entries = 0;
  }

let in_order_8wide =
  {
    ooo_8wide with
    name = "in-order-8";
    kind = In_order;
    clusters = 1;
    cluster_entries = 64;
    sched_window = 8;
    fus_per_cluster = 8;
    misprediction_penalty = 19;
    (* in-order issue keeps values briefly in flight: the architectural
       file plus a small completion buffer, not a 256-entry rename file *)
    ext_regs = 64;
  }

let dep_steer_8wide =
  {
    ooo_8wide with
    name = "dep-steer-8";
    kind = Dep_steer;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 1;
    fus_per_cluster = 1;
    (* only the scheduler is simplified; rename and the register file stay
       conventional, so the pipeline keeps the conventional depth *)
    misprediction_penalty = 23;
  }

let scale_width cfg w =
  if w <= 0 then invalid_arg "Config.scale_width";
  let ratio_num = w and ratio_den = 8 in
  let scale x = max 1 (x * ratio_num / ratio_den) in
  {
    cfg with
    name = Printf.sprintf "%s@%dw" (List.hd (String.split_on_char '@' cfg.name)) w;
    fetch_width = w;
    alloc_width = scale cfg.alloc_width;
    rename_src_width = scale cfg.rename_src_width;
    rename_dst_width = scale cfg.rename_dst_width;
    commit_width = w;
    clusters = scale cfg.clusters;
    fus_per_cluster = cfg.fus_per_cluster;
    rf_read_ports = scale cfg.rf_read_ports;
    rf_write_ports = scale cfg.rf_write_ports;
    bypass_per_cycle = scale cfg.bypass_per_cycle;
    inflight = scale cfg.inflight;
    lsq_entries = scale cfg.lsq_entries;
    fetch_buffer = scale cfg.fetch_buffer;
  }

let perfect_frontend cfg =
  {
    cfg with
    predictor = Perfect_prediction;
    mem = { cfg.mem with perfect_icache = true; perfect_dcache = true };
  }
