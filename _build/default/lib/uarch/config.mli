(** Simulator configurations (paper Table 4).

    One record drives the whole pipeline; the presets below are the paper's
    default 8-wide out-of-order and braid machines plus the in-order and
    dependence-steering baselines. Sensitivity experiments (Figs 5–12)
    start from a preset and override one field. *)

type core_kind =
  | In_order  (** one in-order issue queue *)
  | Dep_steer  (** Palacharla-style dependence-steered FIFOs *)
  | Ooo  (** distributed out-of-order schedulers *)
  | Braid_exec  (** braid execution units *)

type predictor_kind =
  | Perceptron  (** Table 4: 512-entry weight table, 64-bit history *)
  | Gshare  (** comparison predictor: 4K 2-bit counters, 12-bit history *)
  | Perfect_prediction  (** the Fig 1 limit study *)

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type memory = {
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  memory_latency : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

type t = {
  name : string;
  kind : core_kind;
  (* front end *)
  fetch_width : int;
  max_branches_per_cycle : int;
  fetch_buffer : int;
  predictor : predictor_kind;
  misprediction_penalty : int;
  (* allocate / rename *)
  alloc_width : int;
  rename_src_width : int;
  rename_dst_width : int;
  commit_width : int;
  ext_regs : int;  (** rename free-list size (external register file) *)
  inflight : int;  (** checkpoint/ROB-equivalent in-flight bound *)
  (* execution core *)
  clusters : int;  (** schedulers / FIFOs / BEUs *)
  cluster_entries : int;  (** entries per scheduler/FIFO *)
  sched_window : int;  (** FIFO scheduling window (braid, dep, in-order) *)
  fus_per_cluster : int;
  (* register file and bypass *)
  rf_read_ports : int;
  rf_write_ports : int;
  bypass_per_cycle : int;
  (* memory *)
  mem : memory;
  lsq_entries : int;
  (* braid-core variants *)
  beu_out_of_order : bool;
      (** §5.1: replace each BEU's FIFO window with full out-of-order
          selection over its queue (the considered-and-rejected design) *)
  beu_cluster_size : int;
      (** §5.2: group BEUs into clusters of this size (0 = unclustered);
          external values crossing clusters pay extra latency *)
  inter_cluster_latency : int;
  max_unresolved_branches : int;
      (** checkpoint count (§3.4): unresolved conditional branches in
          flight; dispatch stalls beyond it. 0 = unlimited. Braid
          checkpoints are far smaller (the 8-entry external file, no
          internal values), so equal checkpoint storage affords the braid
          machine several times more of them. *)
  model_wrong_path_fetch : bool;
      (** fetch down the mispredicted path while a redirect is pending,
          polluting the I-cache (default off: wrong-path work is a pure
          bubble, as DESIGN.md documents) *)
  btb_entries : int;
      (** finite branch-target buffer; a taken transfer missing in the BTB
          costs a one-cycle fetch bubble. 0 = perfect targets. *)
}

val default_memory : memory

val ooo_8wide : t
(** Table 4 "Out-of-Order Parameters": 8-wide, 8×32 schedulers, 256
    registers, 16r/8w, 8 bypass values/cycle, 23-cycle penalty. *)

val braid_8wide : t
(** Table 4 "Braid Parameters": 8 BEUs with 32-entry FIFOs, 2-entry
    windows, 2 FUs each; 8-entry external RF with 6r/3w; 2 bypass
    values/cycle; 19-cycle penalty. *)

val in_order_8wide : t
val dep_steer_8wide : t

val scale_width : t -> int -> t
(** [scale_width cfg w] rescales a preset to issue width [w] (4, 8 or 16):
    fetch/alloc/commit widths, cluster count and rename bandwidth scale
    proportionally; per-cluster shape is preserved. *)

val perfect_frontend : t -> t
(** Perfect branch prediction and perfect caches (Fig 1's machine). *)
