lib/util/bitvec.mli:
