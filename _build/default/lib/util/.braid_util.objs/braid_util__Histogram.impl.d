lib/util/histogram.ml: Int Map
