lib/util/histogram.mli:
