lib/util/prng.mli:
