lib/util/render.ml: Array List Printf String
