lib/util/render.mli:
