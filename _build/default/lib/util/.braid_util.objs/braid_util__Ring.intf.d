lib/util/ring.mli:
