lib/util/stats.mli:
