type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitvec: index out of range"

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i / 8)) in
  Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.bits (i / 8)) in
  Bytes.set t.bits (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xFF))

let get t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let assign t i v = if v then set t i else clear t i

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let set_all t =
  for i = 0 to t.n - 1 do
    set t i
  done

let popcount t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if get t i then incr c
  done;
  !c

let copy t = { bits = Bytes.copy t.bits; n = t.n }

let first_clear t =
  let rec go i = if i >= t.n then None else if get t i then go (i + 1) else Some i in
  go 0

let fold_set f t acc =
  let acc = ref acc in
  for i = 0 to t.n - 1 do
    if get t i then acc := f i !acc
  done;
  !acc

let to_string t = String.init t.n (fun i -> if get t i then '1' else '0')
