(** Fixed-width mutable bit vector.

    Models the busy-bit vector of the braid microarchitecture (one bit per
    external register) and other small presence sets. *)

type t

val create : int -> t
(** [create n] is an [n]-bit vector, all clear. [n] must be non-negative. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool
val assign : t -> int -> bool -> unit
val set_all : t -> unit
val clear_all : t -> unit
val popcount : t -> int
val copy : t -> t

val first_clear : t -> int option
(** Index of the lowest clear bit, if any. *)

val fold_set : (int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
(** Folds over the indices of set bits, ascending. *)

val to_string : t -> string
(** MSB-last textual form, e.g. ["10110000"] for an 8-bit vector. *)
