module Imap = Map.Make (Int)

type t = { mutable counts : int Imap.t; mutable total : int; mutable sum : int }

let create () = { counts = Imap.empty; total = 0; sum = 0 }

let add_many t v n =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  if n > 0 then begin
    t.counts <-
      Imap.update v (function None -> Some n | Some c -> Some (c + n)) t.counts;
    t.total <- t.total + n;
    t.sum <- t.sum + (v * n)
  end

let add t v = add_many t v 1
let count t = t.total
let count_eq t v = match Imap.find_opt v t.counts with None -> 0 | Some c -> c

let count_le t v =
  Imap.fold (fun k c acc -> if k <= v then acc + c else acc) t.counts 0

let fraction_eq t v =
  if t.total = 0 then 0.0 else float_of_int (count_eq t v) /. float_of_int t.total

let fraction_le t v =
  if t.total = 0 then 0.0 else float_of_int (count_le t v) /. float_of_int t.total

let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total
let max_value t = Imap.fold (fun k _ acc -> max k acc) t.counts 0
let iter f t = Imap.iter f t.counts

let merge a b =
  let t = create () in
  iter (fun v n -> add_many t v n) a;
  iter (fun v n -> add_many t v n) b;
  t
