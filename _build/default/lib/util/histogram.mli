(** Integer-valued histogram with unbounded support.

    Used for the value fanout and lifetime characterisations (§1.1 of the
    paper) and the braid size/width distributions. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** [add t v] counts one observation of value [v] (must be >= 0). *)

val add_many : t -> int -> int -> unit
(** [add_many t v n] counts [n] observations of [v]. *)

val count : t -> int
(** Total number of observations. *)

val count_eq : t -> int -> int
(** Observations exactly equal to [v]. *)

val count_le : t -> int -> int
(** Observations less than or equal to [v]. *)

val fraction_eq : t -> int -> float
(** [count_eq] over [count]; 0. when empty. *)

val fraction_le : t -> int -> float
(** [count_le] over [count]; 0. when empty. *)

val mean : t -> float
(** Mean observed value; 0. when empty. *)

val max_value : t -> int
(** Largest observed value; 0 when empty. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] calls [f value count] for each observed value, ascending. *)

val merge : t -> t -> t
(** Pointwise sum of two histograms (inputs unchanged). *)
