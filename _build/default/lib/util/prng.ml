type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* FNV-1a 64-bit over the label, so human-readable names give stable seeds. *)
let of_string name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  create !h

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  assert (total > 0.0);
  let target = float t total in
  let rec go i acc =
    if i = Array.length choices - 1 then snd choices.(i)
    else
      let w, v = choices.(i) in
      if acc +. w > target then v else go (i + 1) (acc +. w)
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  let rec go n = if chance t p then n else go (n + 1) in
  go 1
