(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is exactly reproducible from a named seed. The generator is
    splitmix64 (Steele, Lea & Flood 2014): tiny state, excellent statistical
    quality for simulation workloads, and trivially splittable. *)

type t
(** A mutable generator. Generators are cheap; create one per independent
    stream rather than sharing a global. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val of_string : string -> t
(** [of_string name] derives a generator from an arbitrary label (e.g. a
    benchmark name) via a FNV-1a hash of the label. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves independently. *)

val split : t -> t
(** [split t] draws a fresh seed from [t] and returns an independent
    generator, advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] selects a uniform element. [arr] must be non-empty. *)

val pick_weighted : t -> (float * 'a) array -> 'a
(** [pick_weighted t choices] selects an element with probability
    proportional to its weight. Weights must be non-negative with a positive
    sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] draws from a geometric distribution with success
    probability [p] (support starting at 1): the number of trials up to and
    including the first success. Requires [0 < p <= 1]. *)
