let float_cell v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)

let pad s width = s ^ String.make (max 0 (width - String.length s)) ' '

let table ~header ~rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then invalid_arg "Render.table: ragged row")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let render_row row =
    String.concat "  " (List.mapi (fun i cell -> pad cell widths.(i)) row)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: rule :: body) @ [ "" ])

let bar_chart ~title ?(unit_label = "") ?(width = 50) items =
  List.iter
    (fun (_, v) ->
      if v < 0.0 then invalid_arg "Render.bar_chart: negative value")
    items;
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0.0 items in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
  in
  let bar v =
    let n =
      if max_v <= 0.0 then 0
      else int_of_float (v /. max_v *. float_of_int width +. 0.5)
    in
    String.make n '#'
  in
  let lines =
    List.map
      (fun (l, v) ->
        Printf.sprintf "  %s  %8.3f%s  %s" (pad l label_w) v unit_label (bar v))
      items
  in
  String.concat "\n" ((title :: lines) @ [ "" ])

let grouped_series ~title ~series_names ~rows =
  let header = "" :: series_names in
  let body =
    List.map (fun (label, vals) -> label :: List.map float_cell vals) rows
  in
  title ^ "\n" ^ table ~header ~rows:body
