(** Plain-text rendering of tables and bar charts.

    The bench harness reproduces each of the paper's tables and figures as
    text; this module owns the formatting so every experiment prints with a
    consistent look. *)

val table : header:string list -> rows:string list list -> string
(** Column-aligned table with a rule under the header. All rows must have
    the same arity as the header. *)

val bar_chart :
  title:string ->
  ?unit_label:string ->
  ?width:int ->
  (string * float) list ->
  string
(** Horizontal ASCII bar chart, one bar per (label, value). [width] is the
    length of the longest bar in characters (default 50). Values must be
    non-negative. *)

val grouped_series :
  title:string ->
  series_names:string list ->
  rows:(string * float list) list ->
  string
(** Numeric table for multi-series figures (e.g. one column per
    configuration, one row per benchmark). *)

val float_cell : float -> string
(** Canonical numeric formatting used in tables (3 decimal places). *)

val pct : float -> string
(** [pct 0.912] is ["91.2%"]. *)
