type 'a t = {
  buf : 'a option array;
  mutable head : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf

let slot t i = (t.head + i) mod Array.length t.buf

let push t x =
  if is_full t then failwith "Ring.push: full";
  t.buf.(slot t t.len) <- Some x;
  t.len <- t.len + 1

let unwrap = function Some x -> x | None -> assert false

let pop t =
  if is_empty t then failwith "Ring.pop: empty";
  let x = unwrap t.buf.(t.head) in
  t.buf.(t.head) <- None;
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  x

let peek t =
  if is_empty t then failwith "Ring.peek: empty";
  unwrap t.buf.(t.head)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  unwrap t.buf.(slot t i)

let remove_at t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.remove_at: index out of range";
  let x = unwrap t.buf.(slot t i) in
  for j = i to t.len - 2 do
    t.buf.(slot t j) <- t.buf.(slot t (j + 1))
  done;
  t.buf.(slot t (t.len - 1)) <- None;
  t.len <- t.len - 1;
  x

let iter f t =
  for i = 0 to t.len - 1 do
    f (unwrap t.buf.(slot t i))
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unwrap t.buf.(slot t i))
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p (unwrap t.buf.(slot t i)) || go (i + 1)) in
  go 0

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
