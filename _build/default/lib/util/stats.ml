let require_nonempty name n =
  if n = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty "Stats.mean" (Array.length xs);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let mean_list xs =
  require_nonempty "Stats.mean_list" (List.length xs);
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  require_nonempty "Stats.geomean" (Array.length xs);
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input"
        else acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (Array.length xs))

let stddev xs =
  require_nonempty "Stats.stddev" (Array.length xs);
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (Array.length xs)
  in
  sqrt var

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  require_nonempty "Stats.median" (Array.length xs);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  require_nonempty "Stats.percentile" (Array.length xs);
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else min (n - 1) (rank - 1) in
  ys.(idx)

let minimum xs =
  require_nonempty "Stats.minimum" (Array.length xs);
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" (Array.length xs);
  Array.fold_left max xs.(0) xs

let weighted_mean pairs =
  let wsum = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if wsum <= 0.0 then invalid_arg "Stats.weighted_mean: weights sum <= 0";
  Array.fold_left (fun acc (w, v) -> acc +. (w *. v)) 0.0 pairs /. wsum

let ratio a b = if b = 0.0 then invalid_arg "Stats.ratio: zero divisor" else a /. b

module Running = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let min t =
    require_nonempty "Stats.Running.min" t.count;
    t.min_v

  let max t =
    require_nonempty "Stats.Running.max" t.count;
    t.max_v
end
