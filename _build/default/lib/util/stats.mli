(** Small statistics toolkit used by the characterisation passes and the
    simulation reports. All functions are total over their stated domains
    and raise [Invalid_argument] on empty input where a value is required. *)

val mean : float array -> float
(** Arithmetic mean. Raises on empty input. *)

val mean_list : float list -> float
(** Arithmetic mean of a list. Raises on empty input. *)

val geomean : float array -> float
(** Geometric mean; all inputs must be positive. Raises on empty input. *)

val stddev : float array -> float
(** Population standard deviation. Raises on empty input. *)

val median : float array -> float
(** Median (average of middle two for even lengths). Does not mutate the
    argument. Raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], nearest-rank on a sorted copy.
    Raises on empty input. *)

val minimum : float array -> float
val maximum : float array -> float

val weighted_mean : (float * float) array -> float
(** [weighted_mean pairs] where each pair is [(weight, value)]; weights must
    sum to a positive value. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], raising [Invalid_argument] when [b = 0.]. *)

module Running : sig
  (** Single-pass accumulator for count / mean / min / max / sum. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float (** 0. when empty. *)

  val min : t -> float (** Raises on empty accumulator. *)

  val max : t -> float (** Raises on empty accumulator. *)
end
