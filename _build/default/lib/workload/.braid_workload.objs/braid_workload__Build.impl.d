lib/workload/build.ml: Array Instr Int64 List Op Printf Program Reg
