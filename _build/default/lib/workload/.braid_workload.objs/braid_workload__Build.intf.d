lib/workload/build.mli: Op Program Reg
