lib/workload/kernels.ml: Array Build Int64 Op Prng Reg
