lib/workload/kernels.mli: Build Prng
