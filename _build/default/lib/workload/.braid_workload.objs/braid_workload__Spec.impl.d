lib/workload/spec.ml: Build Float Kernels List Printf Prng
