lib/workload/spec.mli: Program
