type block_state = {
  mutable instrs : Op.t list;  (* reversed *)
  mutable fallthrough : int option;
  mutable closed : bool;  (* terminated or switched away from *)
  mutable populated : bool;  (* has ever been current *)
}

type t = {
  mutable blocks : block_state array;
  mutable nblocks : int;
  mutable current : int option;
  mutable next_virt_int : int;
  mutable next_virt_fp : int;
  mutable next_region : int;
  mutable next_addr : int;
  mutable init_mem : (int * int64) list;
}

let fresh_block_state () =
  { instrs = []; fallthrough = None; closed = false; populated = false }

let create () =
  let t =
    {
      blocks = Array.init 16 (fun _ -> fresh_block_state ());
      nblocks = 0;
      current = None;
      next_virt_int = 0;
      next_virt_fp = 0;
      next_region = 0;
      next_addr = 0x1000;
      init_mem = [];
    }
  in
  (* Entry block. *)
  t.nblocks <- 1;
  t.current <- Some 0;
  t.blocks.(0).populated <- true;
  t

let int_reg t =
  let r = Reg.virt Reg.Cint t.next_virt_int in
  t.next_virt_int <- t.next_virt_int + 1;
  r

let fp_reg t =
  let r = Reg.virt Reg.Cfp t.next_virt_fp in
  t.next_virt_fp <- t.next_virt_fp + 1;
  r

let cur t =
  match t.current with
  | Some i -> t.blocks.(i)
  | None -> failwith "Build: no current block (after a terminator)"

let emit t op =
  (match op with
  | Op.Branch _ | Op.Jump _ | Op.Halt ->
      invalid_arg "Build.emit: use branch/jump/halt for terminators"
  | _ -> ());
  let b = cur t in
  b.instrs <- op :: b.instrs

let const t cls v =
  match cls with
  | Reg.Cint ->
      let r = int_reg t in
      emit t (Op.Movi (r, v));
      r
  | Reg.Cfp ->
      let tmp = int_reg t in
      emit t (Op.Movi (tmp, v));
      let r = fp_reg t in
      emit t (Op.Funary (Op.Cvt_if, r, tmp));
      r

let alloc_array t ~words ~init =
  if words <= 0 then invalid_arg "Build.alloc_array: words must be positive";
  let base_addr = t.next_addr in
  t.next_addr <- t.next_addr + (8 * words) + 64 (* guard gap *);
  let region = t.next_region in
  t.next_region <- t.next_region + 1;
  for i = 0 to words - 1 do
    let v = init i in
    if not (Int64.equal v 0L) then
      t.init_mem <- (base_addr + (8 * i), v) :: t.init_mem
  done;
  let base = int_reg t in
  emit t (Op.Movi (base, Int64.of_int base_addr));
  (base, region, base_addr)

let grow t =
  if t.nblocks = Array.length t.blocks then begin
    let bigger = Array.init (2 * t.nblocks) (fun _ -> fresh_block_state ()) in
    Array.blit t.blocks 0 bigger 0 t.nblocks;
    t.blocks <- bigger
  end

let new_block t =
  grow t;
  let l = t.nblocks in
  t.nblocks <- l + 1;
  l

let switch_to t l =
  (match t.current with
  | Some i ->
      failwith
        (Printf.sprintf "Build.switch_to: block %d still open (terminate it first)" i)
  | None -> ());
  let b = t.blocks.(l) in
  if b.populated then failwith "Build.switch_to: block already populated";
  b.populated <- true;
  t.current <- Some l

let terminate t ?fallthrough op =
  let b = cur t in
  (match op with Some o -> b.instrs <- o :: b.instrs | None -> ());
  b.fallthrough <- fallthrough;
  b.closed <- true;
  t.current <- None

let branch t cond reg ~taken ~fall =
  terminate t ~fallthrough:fall (Some (Op.Branch (cond, reg, taken)))

let jump t l = terminate t (Some (Op.Jump l))
let halt t = terminate t (Some Op.Halt)

let enter_block t =
  let l = new_block t in
  terminate t ~fallthrough:l None;
  switch_to t l;
  l

let counted_loop t ~count body =
  if count <= 0 then invalid_arg "Build.counted_loop: count must be positive";
  let i = int_reg t in
  emit t (Op.Movi (i, 0L));
  let body_l = new_block t in
  terminate t ~fallthrough:body_l None;
  switch_to t body_l;
  body t i;
  emit t (Op.Ibini (Op.Add, i, i, 1));
  let bound = int_reg t in
  emit t (Op.Movi (bound, Int64.of_int count));
  let cmp = int_reg t in
  emit t (Op.Ibin (Op.Cmplt, cmp, i, bound));
  let exit_l = new_block t in
  branch t Op.Ne cmp ~taken:body_l ~fall:exit_l;
  switch_to t exit_l

let if_diamond t cond reg ~then_ ~else_ =
  let then_l = new_block t in
  let else_l = new_block t in
  let join_l = new_block t in
  branch t cond reg ~taken:then_l ~fall:else_l;
  switch_to t else_l;
  else_ t;
  jump t join_l;
  switch_to t then_l;
  then_ t;
  terminate t ~fallthrough:join_l None;
  switch_to t join_l

let while_pos t ~fuel ~cond_reg body =
  if fuel <= 0 then invalid_arg "Build.while_pos: fuel must be positive";
  let c = int_reg t in
  emit t (Op.Movi (c, 0L));
  let body_l = new_block t in
  terminate t ~fallthrough:body_l None;
  switch_to t body_l;
  body t;
  emit t (Op.Ibini (Op.Add, c, c, 1));
  let cond = cond_reg t in
  let nz = int_reg t in
  emit t (Op.Ibini (Op.Cmpeq, nz, cond, 0));
  let nz2 = int_reg t in
  emit t (Op.Ibini (Op.Cmpeq, nz2, nz, 0));
  (* nz2 = (cond <> 0) *)
  let bound = int_reg t in
  emit t (Op.Movi (bound, Int64.of_int fuel));
  let under = int_reg t in
  emit t (Op.Ibin (Op.Cmplt, under, c, bound));
  let cont = int_reg t in
  emit t (Op.Ibin (Op.And, cont, nz2, under));
  let exit_l = new_block t in
  branch t Op.Ne cont ~taken:body_l ~fall:exit_l;
  switch_to t exit_l

let finish t =
  (match t.current with Some _ -> halt t | None -> ());
  let blocks =
    List.init t.nblocks (fun i ->
        let b = t.blocks.(i) in
        if not b.closed then
          failwith (Printf.sprintf "Build.finish: block %d never terminated" i);
        {
          Program.id = i;
          instrs =
            Array.of_list (List.rev_map (fun op -> Instr.make op) b.instrs);
          fallthrough = b.fallthrough;
        })
  in
  (Program.make blocks ~entry:0, List.rev t.init_mem)
