(** Imperative builder for virtual-register programs.

    Workload generators use this DSL to assemble structured control flow
    (counted loops, if-diamonds, data-bounded loops) out of basic blocks,
    with fresh virtual registers and region-tagged memory. The result is
    the virtual IR consumed by both register allocators. *)

type t

val create : unit -> t

val int_reg : t -> Reg.t
(** Fresh integer-class virtual register. *)

val fp_reg : t -> Reg.t
(** Fresh floating-point-class virtual register. *)

val alloc_array : t -> words:int -> init:(int -> int64) -> Reg.t * int * int
(** [alloc_array t ~words ~init] reserves a fresh memory region of [words]
    64-bit words, records its initial contents, emits a [Movi] loading the
    base byte address into a fresh register in the current block, and
    returns [(base_reg, region_tag, base_addr)]. *)

val emit : t -> Op.t -> unit
(** Appends a non-control-transfer operation to the current block. *)

val const : t -> Reg.cls -> int64 -> Reg.t
(** Emits a [Movi] (through [Cvt_if] for floats) and returns the fresh
    register holding the constant. *)

val new_block : t -> Op.label
(** Creates an empty block (not yet current). *)

val switch_to : t -> Op.label -> unit
(** Makes [label] the current block for subsequent [emit]s. Each block may
    be populated only once. *)

val enter_block : t -> Op.label
(** [new_block] + terminate current block by falling through to it +
    [switch_to] it. *)

val branch : t -> Op.cond -> Reg.t -> taken:Op.label -> fall:Op.label -> unit
(** Terminates the current block with a conditional branch; leaves no
    current block. *)

val jump : t -> Op.label -> unit
val halt : t -> unit

val counted_loop : t -> count:int -> (t -> Reg.t -> unit) -> unit
(** [counted_loop t ~count body] runs [body t i] with induction register
    [i] counting [0 .. count-1]; the loop-back branch terminates whatever
    block [body] leaves current. After the call the builder sits in the
    fresh exit block. [count] must be positive. *)

val if_diamond :
  t -> Op.cond -> Reg.t -> then_:(t -> unit) -> else_:(t -> unit) -> unit
(** Two-armed diamond; afterwards the builder sits in the join block. *)

val while_pos : t -> fuel:int -> cond_reg:(t -> Reg.t) -> (t -> unit) -> unit
(** Data-bounded loop with a fuel bound guaranteeing termination:
    iterates while [cond_reg] evaluates non-zero and fewer than [fuel]
    iterations have run. *)

val finish : t -> Program.t * (int * int64) list
(** Terminates the current block with [Halt] if one is open, and returns
    the program (entry = block 0) plus the initial memory image. *)
