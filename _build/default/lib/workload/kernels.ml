type ctx = { b : Build.t; rng : Prng.t }

let fbits = Int64.bits_of_float

(* addr = base + (i << 3) *)
let elem_addr b base i =
  let off = Build.int_reg b in
  Build.emit b (Op.Ibini (Op.Shl, off, i, 3));
  let addr = Build.int_reg b in
  Build.emit b (Op.Ibin (Op.Add, addr, base, off));
  addr

let load_elem b ~cls ~base ~region i =
  let addr = elem_addr b base i in
  let dst = match cls with Reg.Cint -> Build.int_reg b | Reg.Cfp -> Build.fp_reg b in
  Build.emit b (Op.Load (dst, addr, 0, region));
  dst

let rand_fp rng lo hi = fbits (lo +. Prng.float rng (hi -. lo))

let unroll_factor = 4

let streaming { b; rng } ~len ~passes =
  (* unrolled by 4: one address computation per array per iteration, four
     independent multiply-add lanes — streaming FP code has wide ILP and
     large basic blocks *)
  let len = max unroll_factor (len / unroll_factor * unroll_factor) in
  let groups = len / unroll_factor in
  let a, ra, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 1.0 2.0) in
  let bb, rb, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 0.5 1.5) in
  let c, rc, _ = Build.alloc_array b ~words:len ~init:(fun _ -> 0L) in
  let s = Build.const b Reg.Cfp 3L in
  Build.counted_loop b ~count:passes (fun b _p ->
      Build.counted_loop b ~count:groups (fun b g ->
          let goff = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shl, goff, g, 5));
          let aaddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, aaddr, a, goff));
          let baddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, baddr, bb, goff));
          let caddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, caddr, c, goff));
          for j = 0 to unroll_factor - 1 do
            let va = Build.fp_reg b in
            Build.emit b (Op.Load (va, aaddr, 8 * j, ra));
            let vb = Build.fp_reg b in
            Build.emit b (Op.Load (vb, baddr, 8 * j, rb));
            let prod = Build.fp_reg b in
            Build.emit b (Op.Fbin (Op.Fmul, prod, va, s));
            let sum = Build.fp_reg b in
            Build.emit b (Op.Fbin (Op.Fadd, sum, prod, vb));
            Build.emit b (Op.Store (sum, caddr, 8 * j, rc))
          done))

let stencil { b; rng } ~len ~passes ~depth =
  (* unrolled by 2: two independent deep chains per iteration *)
  let len = max 2 (len / 2 * 2) in
  let groups = len / 2 in
  let src, rs, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 0.9 1.1) in
  let dst, rd, _ = Build.alloc_array b ~words:len ~init:(fun _ -> 0L) in
  let coef_mul = Build.const b Reg.Cfp 1L in
  let coef_add = Build.const b Reg.Cfp 2L in
  (* One lane: a braid of size ~depth made of two interleaved dependent
     chains merged at the end — width ~1.5–2, the mgrid shape (size 13.2,
     width 1.4 in the paper's Table 2). *)
  let lane b saddr daddr off =
    let v0 = Build.fp_reg b in
    Build.emit b (Op.Load (v0, saddr, off, rs));
    let v = ref v0 and w = ref v0 in
    let half = max 1 (depth / 2) in
    for d = 0 to half - 1 do
      let op = if d mod 2 = 0 then Op.Fmul else Op.Fadd in
      let coef = if d mod 2 = 0 then coef_mul else coef_add in
      let nv = Build.fp_reg b in
      Build.emit b (Op.Fbin (op, nv, !v, coef));
      v := nv;
      let nw = Build.fp_reg b in
      Build.emit b (Op.Fbin (op, nw, !w, coef));
      w := nw
    done;
    let merged = Build.fp_reg b in
    Build.emit b (Op.Fbin (Op.Fadd, merged, !v, !w));
    Build.emit b (Op.Store (merged, daddr, off, rd))
  in
  Build.counted_loop b ~count:passes (fun b _p ->
      Build.counted_loop b ~count:groups (fun b g ->
          let goff = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shl, goff, g, 4));
          let saddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, saddr, src, goff));
          let daddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, daddr, dst, goff));
          lane b saddr daddr 0;
          lane b saddr daddr 8))

let reduction { b; rng } ~len ~passes =
  (* two accumulators, unrolled by 2: halves the loop-carried FP-add
     serialisation, as any compiled dot product would *)
  let len = max 2 (len / 2 * 2) in
  let groups = len / 2 in
  let a, ra, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 0.0 1.0) in
  let c, rc, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 0.0 1.0) in
  let out, ro, _ = Build.alloc_array b ~words:passes ~init:(fun _ -> 0L) in
  Build.counted_loop b ~count:passes (fun b p ->
      let acc0 = Build.const b Reg.Cfp 0L in
      let acc1 = Build.const b Reg.Cfp 0L in
      Build.counted_loop b ~count:groups (fun b g ->
          let goff = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shl, goff, g, 4));
          let aaddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, aaddr, a, goff));
          let caddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, caddr, c, goff));
          let mac acc off =
            let va = Build.fp_reg b in
            Build.emit b (Op.Load (va, aaddr, off, ra));
            let vc = Build.fp_reg b in
            Build.emit b (Op.Load (vc, caddr, off, rc));
            let prod = Build.fp_reg b in
            Build.emit b (Op.Fbin (Op.Fmul, prod, va, vc));
            Build.emit b (Op.Fbin (Op.Fadd, acc, acc, prod))
          in
          mac acc0 0;
          mac acc1 8);
      Build.emit b (Op.Fbin (Op.Fadd, acc0, acc0, acc1));
      let addr = elem_addr b out p in
      Build.emit b (Op.Store (acc0, addr, 0, ro)))

let pointer_chase { b; rng } ~nodes ~steps =
  (* A random ring: node i holds the byte offset of its successor. *)
  let perm = Array.init nodes (fun i -> i) in
  Prng.shuffle rng perm;
  let succ = Array.make nodes 0 in
  for k = 0 to nodes - 1 do
    succ.(perm.(k)) <- perm.((k + 1) mod nodes)
  done;
  let next, rn, _ =
    Build.alloc_array b ~words:nodes ~init:(fun i -> Int64.of_int (8 * succ.(i)))
  in
  let pay, rp, _ =
    (* payload parity is biased so the chase's data-dependent branch is
       mostly predictable, like real pointer code *)
    Build.alloc_array b ~words:nodes
      ~init:(fun _ ->
        let v = Prng.int rng 1000 in
        let v = if Prng.chance rng 0.88 then v lor 1 else v land lnot 1 in
        Int64.of_int v)
  in
  let out, ro, _ = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  let off = Build.const b Reg.Cint 0L in
  let acc = Build.const b Reg.Cint 0L in
  Build.counted_loop b ~count:steps (fun b _ ->
      let addr = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, addr, next, off));
      (* The serial load: off := mem[next + off]. *)
      Build.emit b (Op.Load (off, addr, 0, rn));
      let paddr = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, paddr, pay, off));
      let v = Build.int_reg b in
      Build.emit b (Op.Load (v, paddr, 0, rp));
      Build.emit b (Op.Ibin (Op.Xor, acc, acc, v));
      let t = Build.int_reg b in
      Build.emit b (Op.Ibini (Op.And, t, v, 1));
      Build.if_diamond b Op.Ne t
        ~then_:(fun b -> Build.emit b (Op.Ibini (Op.Add, acc, acc, 3)))
        ~else_:(fun b -> Build.emit b (Op.Ibini (Op.Xor, acc, acc, 5))));
  Build.emit b (Op.Store (acc, out, 0, ro))

let hash_mix { b; rng } ~len ~passes =
  let data, rd, _ =
    Build.alloc_array b ~words:len
      ~init:(fun _ -> Int64.of_int (Prng.int rng 1_000_000))
  in
  let table, rt, _ =
    Build.alloc_array b ~words:256
      ~init:(fun _ -> Int64.of_int (Prng.int rng 1_000_000))
  in
  let h = Build.const b Reg.Cint 0x9E37L in
  Build.counted_loop b ~count:passes (fun b _ ->
      Build.counted_loop b ~count:len (fun b i ->
          let v = load_elem b ~cls:Reg.Cint ~base:data ~region:rd i in
          Build.emit b (Op.Ibin (Op.Xor, h, h, v));
          Build.emit b (Op.Ibini (Op.Mul, h, h, 0x5bd1e99));
          let t = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shr, t, h, 15));
          Build.emit b (Op.Ibin (Op.Xor, h, h, t));
          let idx = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.And, idx, h, 255));
          let ioff = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shl, ioff, idx, 3));
          let taddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, taddr, table, ioff));
          let tv = Build.int_reg b in
          Build.emit b (Op.Load (tv, taddr, 0, rt));
          Build.emit b (Op.Ibin (Op.Add, h, h, tv));
          (* a checksum candidate computed for a path not taken here: a
             produced-but-unused value (the paper's ~4%, §1.1) *)
          let dead = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Andnot, dead, tv, v));
          Build.emit b (Op.Store (h, taddr, 0, rt))))

let branchy { b; rng } ~len ~passes ~bias =
  let data, rd, _ =
    Build.alloc_array b ~words:len
      ~init:(fun _ ->
        let mag = Int64.of_int (1 + Prng.int rng 100) in
        if Prng.chance rng bias then Int64.neg mag else mag)
  in
  let out, ro, _ = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  let acc = Build.const b Reg.Cint 0L in
  Build.counted_loop b ~count:passes (fun b _ ->
      Build.counted_loop b ~count:len (fun b i ->
          let v = load_elem b ~cls:Reg.Cint ~base:data ~region:rd i in
          Build.if_diamond b Op.Lt v
            ~then_:(fun b ->
              Build.emit b (Op.Ibin (Op.Sub, acc, acc, v));
              let t = Build.int_reg b in
              Build.emit b (Op.Ibini (Op.Shl, t, acc, 1));
              Build.emit b (Op.Ibin (Op.Xor, acc, acc, t)))
            ~else_:(fun b ->
              Build.emit b (Op.Ibin (Op.Add, acc, acc, v));
              (* dead value: a bound check whose result this path ignores *)
              let dead = Build.int_reg b in
              Build.emit b (Op.Ibini (Op.Cmplt, dead, v, 50));
              Build.emit b (Op.Ibini (Op.Add, acc, acc, 7)))));
  Build.emit b (Op.Store (acc, out, 0, ro))

let bitscan { b; rng } ~len ~passes =
  (* The paper's Fig 2: x = new[i] &~ old[i]; flags via cmov. *)
  let rand_bits () = Prng.next_int64 rng in
  let nw, r1, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_bits ()) in
  let old, r2, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_bits ()) in
  let sg, r3, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_bits ()) in
  let out, ro, _ = Build.alloc_array b ~words:2 ~init:(fun _ -> 0L) in
  let one = Build.const b Reg.Cint 1L in
  let consider = Build.const b Reg.Cint 0L in
  let must = Build.const b Reg.Cint 0L in
  Build.counted_loop b ~count:passes (fun b _ ->
      Build.counted_loop b ~count:len (fun b i ->
          let x1 = load_elem b ~cls:Reg.Cint ~base:nw ~region:r1 i in
          let x2 = load_elem b ~cls:Reg.Cint ~base:old ~region:r2 i in
          let x3 = load_elem b ~cls:Reg.Cint ~base:sg ~region:r3 i in
          let x = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Andnot, x, x1, x2));
          Build.emit b (Op.Cmov (Op.Ne, consider, x, one));
          let t = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.And, t, x, x3));
          Build.emit b (Op.Cmov (Op.Ne, must, t, one));
          Build.emit b (Op.Cmov (Op.Ne, consider, t, one))));
  Build.emit b (Op.Store (consider, out, 0, ro));
  Build.emit b (Op.Store (must, out, 8, ro))

let matrix { b; rng } ~n =
  let words = n * n in
  let a, ra, _ = Build.alloc_array b ~words ~init:(fun _ -> rand_fp rng 0.0 1.0) in
  let bm, rb, _ = Build.alloc_array b ~words ~init:(fun _ -> rand_fp rng 0.0 1.0) in
  let c, rc, _ = Build.alloc_array b ~words ~init:(fun _ -> 0L) in
  let nreg = Build.const b Reg.Cint (Int64.of_int n) in
  Build.counted_loop b ~count:n (fun b i ->
      Build.counted_loop b ~count:n (fun b j ->
          let acc = Build.const b Reg.Cfp 0L in
          Build.counted_loop b ~count:n (fun b k ->
              let t1 = Build.int_reg b in
              Build.emit b (Op.Ibin (Op.Mul, t1, i, nreg));
              let t2 = Build.int_reg b in
              Build.emit b (Op.Ibin (Op.Add, t2, t1, k));
              let va = load_elem b ~cls:Reg.Cfp ~base:a ~region:ra t2 in
              let t3 = Build.int_reg b in
              Build.emit b (Op.Ibin (Op.Mul, t3, k, nreg));
              let t4 = Build.int_reg b in
              Build.emit b (Op.Ibin (Op.Add, t4, t3, j));
              let vb = load_elem b ~cls:Reg.Cfp ~base:bm ~region:rb t4 in
              let prod = Build.fp_reg b in
              Build.emit b (Op.Fbin (Op.Fmul, prod, va, vb));
              Build.emit b (Op.Fbin (Op.Fadd, acc, acc, prod)));
          let t1 = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Mul, t1, i, nreg));
          let t2 = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, t2, t1, j));
          let addr = elem_addr b c t2 in
          Build.emit b (Op.Store (acc, addr, 0, rc))))

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let butterfly { b; rng } ~len ~passes =
  (* radix-4 butterfly stage: 8 loads feed a dense cross-combination with
     a wide internal working set (~10 simultaneously live values) before 8
     stores — the braid shape that exercises the paper's working-set
     splitting rule (§3.1). *)
  let len = max 8 (len / 8 * 8) in
  let groups = len / 8 in
  let src, rs, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 0.5 1.5) in
  let dst, rd, _ = Build.alloc_array b ~words:len ~init:(fun _ -> 0L) in
  Build.counted_loop b ~count:passes (fun b _p ->
      Build.counted_loop b ~count:groups (fun b g ->
          let goff = Build.int_reg b in
          Build.emit b (Op.Ibini (Op.Shl, goff, g, 6));
          let saddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, saddr, src, goff));
          let daddr = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Add, daddr, dst, goff));
          let v =
            Array.init 8 (fun j ->
                let r = Build.fp_reg b in
                Build.emit b (Op.Load (r, saddr, 8 * j, rs));
                r)
          in
          let comb op a c =
            let r = Build.fp_reg b in
            Build.emit b (Op.Fbin (op, r, a, c));
            r
          in
          (* first stage: pairwise sums and differences *)
          let s = Array.init 4 (fun j -> comb Op.Fadd v.(2 * j) v.((2 * j) + 1)) in
          let d = Array.init 4 (fun j -> comb Op.Fsub v.(2 * j) v.((2 * j) + 1)) in
          (* second stage: cross combinations *)
          let out =
            [|
              comb Op.Fadd s.(0) s.(2); comb Op.Fsub s.(0) s.(2);
              comb Op.Fadd s.(1) s.(3); comb Op.Fsub s.(1) s.(3);
              comb Op.Fadd d.(0) d.(2); comb Op.Fsub d.(0) d.(2);
              comb Op.Fadd d.(1) d.(3); comb Op.Fsub d.(1) d.(3);
            |]
          in
          Array.iteri
            (fun j r -> Build.emit b (Op.Store (r, daddr, 8 * j, rd)))
            out))

let gather { b; rng } ~len ~visits =
  (* Footprint ([len], rounded up to a power of two) is independent of the
     work done ([visits]); the visit index wraps with a mask. *)
  let len = pow2_at_least len 16 in
  let idx, ri, _ =
    Build.alloc_array b ~words:len
      ~init:(fun _ -> Int64.of_int (8 * Prng.int rng len))
  in
  let values, rv, _ =
    Build.alloc_array b ~words:len
      ~init:(fun _ -> Int64.of_int (Prng.int rng 1_000_000))
  in
  let out, ro, _ = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  let acc = Build.const b Reg.Cint 0L in
  Build.counted_loop b ~count:visits (fun b i ->
      let masked = Build.int_reg b in
      Build.emit b (Op.Ibini (Op.And, masked, i, len - 1));
      let off = load_elem b ~cls:Reg.Cint ~base:idx ~region:ri masked in
      let vaddr = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, vaddr, values, off));
      let v = Build.int_reg b in
      Build.emit b (Op.Load (v, vaddr, 0, rv));
      Build.emit b (Op.Ibin (Op.Add, acc, acc, v)));
  Build.emit b (Op.Store (acc, out, 0, ro))

let divsqrt { b; rng } ~len ~passes =
  let data, rd, _ = Build.alloc_array b ~words:len ~init:(fun _ -> rand_fp rng 1.0 2.0) in
  let out, ro, _ = Build.alloc_array b ~words:len ~init:(fun _ -> 0L) in
  let s = Build.const b Reg.Cfp 2L in
  Build.counted_loop b ~count:passes (fun b _ ->
      Build.counted_loop b ~count:len (fun b i ->
          let v = load_elem b ~cls:Reg.Cfp ~base:data ~region:rd i in
          let q = Build.fp_reg b in
          Build.emit b (Op.Fbin (Op.Fdiv, q, s, v));
          let r = Build.fp_reg b in
          Build.emit b (Op.Funary (Op.Fsqrt, r, q));
          let addr = elem_addr b out i in
          Build.emit b (Op.Store (r, addr, 0, ro))))

let cmov_select { b; rng } ~len ~passes =
  let cost, rc, _ =
    Build.alloc_array b ~words:len
      ~init:(fun _ -> Int64.of_int (1 + Prng.int rng 1_000_000))
  in
  let out, ro, _ = Build.alloc_array b ~words:2 ~init:(fun _ -> 0L) in
  Build.counted_loop b ~count:passes (fun b _ ->
      let best = Build.const b Reg.Cint 0x3FFFFFFFL in
      let besti = Build.const b Reg.Cint (-1L) in
      Build.counted_loop b ~count:len (fun b i ->
          let v = load_elem b ~cls:Reg.Cint ~base:cost ~region:rc i in
          let t = Build.int_reg b in
          Build.emit b (Op.Ibin (Op.Cmplt, t, v, best));
          Build.emit b (Op.Cmov (Op.Ne, best, t, v));
          Build.emit b (Op.Cmov (Op.Ne, besti, t, i)));
      Build.emit b (Op.Store (best, out, 0, ro));
      Build.emit b (Op.Store (besti, out, 8, ro)))

let cost = function
  | `Streaming -> 13
  | `Stencil depth -> depth + 10
  | `Reduction -> 12
  | `Pointer_chase -> 16
  | `Hash_mix -> 16
  | `Branchy -> 13
  | `Bitscan -> 17
  | `Matrix -> 18
  | `Gather -> 12
  | `Divsqrt -> 12
  | `Cmov_select -> 12
  | `Butterfly -> 5 (* per element visited; 8 elements per group of ~38 ops *)
