(** Kernel library for the synthetic SPEC CPU2000 stand-ins.

    Each kernel appends a self-contained piece of code (its own arrays, its
    own loops) to the builder and leaves the builder in a fresh block. The
    kernels are chosen to span the dataflow shapes the paper characterises:
    short independent braids (streaming), deep chains (stencil, pointer
    chase), wide fanout-1 integer mixing (hash), control-dense code
    (branchy, bitscan — the paper's Fig 2 gcc kernel), and FP-heavy code
    with long latencies (matrix, divsqrt).

    The [iters] hint of [cost] tells generators how many dynamic
    instructions one call contributes, so benchmark builders can size trip
    counts to a target trace length. *)

type ctx = { b : Build.t; rng : Prng.t }

val streaming : ctx -> len:int -> passes:int -> unit
(** [c\[i\] = a\[i\] *. s +. b\[i\]] — independent short FP braids. *)

val stencil : ctx -> len:int -> passes:int -> depth:int -> unit
(** Per-element dependent FP chain of length [depth] — large, narrow
    braids (mgrid-like when [depth] is large). *)

val reduction : ctx -> len:int -> passes:int -> unit
(** FP dot-product accumulation — one loop-carried chain. *)

val pointer_chase : ctx -> nodes:int -> steps:int -> unit
(** Linked-ring walk with a data-dependent exit test — mcf-like. *)

val hash_mix : ctx -> len:int -> passes:int -> unit
(** Integer mixing with xor/mul/shift plus table stores — gzip/bzip2. *)

val branchy : ctx -> len:int -> passes:int -> bias:float -> unit
(** If-diamonds on loaded data; [bias] is the fraction of elements taking
    the then-arm (0.5 = unpredictable). *)

val bitscan : ctx -> len:int -> passes:int -> unit
(** The paper's Fig 2 kernel: andnot/and/cmov flag computation over three
    bitsets. *)

val matrix : ctx -> n:int -> unit
(** n×n×n FP multiply-accumulate nest. *)

val butterfly : ctx -> len:int -> passes:int -> unit
(** Radix-4 FFT-style butterfly stage: 8 loads, dense cross-combination
    (~10 simultaneously live values), 8 stores — wide braids that exercise
    the working-set splitting rule. *)

val gather : ctx -> len:int -> visits:int -> unit
(** Index-array-driven loads over a footprint of [len] words (rounded up to
    a power of two), visiting [visits] elements — sparse/database access. *)

val divsqrt : ctx -> len:int -> passes:int -> unit
(** FP divide and square-root chains — long-latency pressure. *)

val cmov_select : ctx -> len:int -> passes:int -> unit
(** Compare/cmov minimum-select — twolf/vpr placement loops. *)

val cost :
  [ `Streaming | `Stencil of int | `Reduction | `Pointer_chase | `Hash_mix
  | `Branchy | `Bitscan | `Matrix | `Gather | `Divsqrt | `Cmov_select
  | `Butterfly ] ->
  int
(** Approximate dynamic instructions per inner-element visit, used by
    generators to size loops. *)
