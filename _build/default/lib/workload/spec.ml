type cls = Int_bench | Fp_bench

type profile = {
  name : string;
  cls : cls;
  description : string;
  mix : (float * piece) list;
}

and piece =
  | Streaming of { len : int }
  | Stencil of { len : int; depth : int }
  | Reduction of { len : int }
  | Chase of { nodes : int }
  | Hash of { len : int }
  | Branchy of { len : int; bias : float }
  | Bitscan of { len : int }
  | Matrix
  | Gather of { len : int }
  | Divsqrt of { len : int }
  | Cmov of { len : int }
  | Butterfly of { len : int }

let ib name description mix = { name; cls = Int_bench; description; mix }
let fb name description mix = { name; cls = Fp_bench; description; mix }

let integer =
  [
    ib "bzip2" "block-sort compression: hashing, tables, data-dependent branches"
      [ (0.5, Hash { len = 128 }); (0.3, Gather { len = 512 });
        (0.2, Branchy { len = 64; bias = 0.15 }) ];
    ib "crafty" "chess: bitboard scans, hashing, search branches"
      [ (0.4, Bitscan { len = 64 }); (0.3, Hash { len = 128 });
        (0.3, Branchy { len = 64; bias = 0.15 }) ];
    ib "eon" "ray tracing in C++: regular loops, selects, some streaming"
      [ (0.4, Branchy { len = 64; bias = 0.08 }); (0.3, Streaming { len = 64 });
        (0.3, Cmov { len = 64 }) ];
    ib "gap" "group theory: list/hash manipulation"
      [ (0.4, Hash { len = 128 }); (0.3, Branchy { len = 64; bias = 0.18 });
        (0.3, Gather { len = 256 }) ];
    ib "gcc" "compiler: dense control flow, bitset life analysis (Fig 2)"
      [ (0.4, Bitscan { len = 48 }); (0.4, Branchy { len = 48; bias = 0.15 });
        (0.2, Hash { len = 64 }) ];
    ib "gzip" "LZ77 compression: integer mixing and table updates"
      [ (0.6, Hash { len = 128 }); (0.2, Branchy { len = 64; bias = 0.12 });
        (0.2, Gather { len = 256 }) ];
    ib "mcf" "network simplex: pointer chasing over a large footprint"
      [ (0.7, Chase { nodes = 16384 }); (0.3, Gather { len = 4096 }) ];
    ib "parser" "NL parsing: linked structures and unpredictable branches"
      [ (0.4, Branchy { len = 64; bias = 0.15 }); (0.3, Chase { nodes = 2048 });
        (0.3, Hash { len = 64 }) ];
    ib "perlbmk" "interpreter: hash tables, dispatch-like branches"
      [ (0.4, Hash { len = 128 }); (0.4, Branchy { len = 64; bias = 0.18 });
        (0.2, Gather { len = 512 }) ];
    ib "twolf" "place & route: min-select loops with cmov"
      [ (0.4, Cmov { len = 128 }); (0.3, Branchy { len = 64; bias = 0.15 });
        (0.3, Gather { len = 512 }) ];
    ib "vortex" "OO database: indexed lookups"
      [ (0.5, Gather { len = 1024 }); (0.3, Branchy { len = 64; bias = 0.08 });
        (0.2, Hash { len = 128 }) ];
    ib "vpr" "FPGA place & route: selects plus pointer structures"
      [ (0.4, Cmov { len = 128 }); (0.3, Branchy { len = 64; bias = 0.15 });
        (0.3, Chase { nodes = 1024 }) ];
  ]

let floating =
  [
    fb "ammp" "molecular dynamics: neighbour lists plus FP streaming"
      [ (0.3, Chase { nodes = 4096 }); (0.4, Streaming { len = 512 });
        (0.3, Divsqrt { len = 64 }) ];
    fb "applu" "PDE solver: medium stencil chains"
      [ (0.5, Stencil { len = 128; depth = 6 }); (0.3, Streaming { len = 256 });
        (0.2, Reduction { len = 128 }) ];
    fb "apsi" "weather: stencil plus dense kernels"
      [ (0.4, Stencil { len = 128; depth = 4 }); (0.3, Streaming { len = 256 });
        (0.2, Matrix); (0.1, Butterfly { len = 64 }) ];
    fb "art" "neural net: large gathers and reductions"
      [ (0.4, Gather { len = 8192 }); (0.4, Reduction { len = 1024 });
        (0.2, Streaming { len = 512 }) ];
    fb "equake" "seismic FEM: sparse gathers into stencil updates"
      [ (0.4, Gather { len = 4096 }); (0.4, Stencil { len = 128; depth = 4 });
        (0.2, Reduction { len = 256 }) ];
    fb "facerec" "face recognition: dense linear algebra"
      [ (0.5, Matrix); (0.3, Reduction { len = 512 }); (0.2, Streaming { len = 256 }) ];
    fb "fma3d" "crash simulation: divide/sqrt chains and streaming"
      [ (0.4, Divsqrt { len = 128 }); (0.4, Streaming { len = 256 });
        (0.2, Branchy { len = 64; bias = 0.1 }) ];
    fb "galgel" "fluid dynamics: dense kernels plus spectral butterflies"
      [ (0.4, Matrix); (0.3, Streaming { len = 256 }); (0.3, Butterfly { len = 128 }) ];
    fb "lucas" "primality FFT: butterflies, long FP chains, some division"
      [ (0.4, Stencil { len = 128; depth = 8 }); (0.3, Butterfly { len = 128 });
        (0.3, Divsqrt { len = 64 }) ];
    fb "mesa" "3D rasteriser: selects and streaming"
      [ (0.3, Cmov { len = 128 }); (0.4, Streaming { len = 256 });
        (0.3, Branchy { len = 64; bias = 0.1 }) ];
    fb "mgrid" "multigrid: the deepest stencil chains (largest braids)"
      [ (0.8, Stencil { len = 128; depth = 14 }); (0.2, Reduction { len = 256 }) ];
    fb "sixtrack" "accelerator tracking: dense kernels plus div/sqrt"
      [ (0.4, Matrix); (0.3, Divsqrt { len = 64 });
        (0.3, Stencil { len = 128; depth = 4 }) ];
    fb "swim" "shallow water: wide streaming stencils"
      [ (0.5, Stencil { len = 512; depth = 5 }); (0.5, Streaming { len = 512 }) ];
    fb "wupwise" "lattice QCD: small dense blocks and reductions"
      [ (0.4, Matrix); (0.3, Reduction { len = 256 }); (0.3, Streaming { len = 256 }) ];
  ]

let all = integer @ floating

let find name = List.find (fun p -> p.name = name) all

let cost_of = function
  | Streaming _ -> Kernels.cost `Streaming
  | Stencil { depth; _ } -> Kernels.cost (`Stencil depth)
  | Reduction _ -> Kernels.cost `Reduction
  | Chase _ -> Kernels.cost `Pointer_chase
  | Hash _ -> Kernels.cost `Hash_mix
  | Branchy _ -> Kernels.cost `Branchy
  | Bitscan _ -> Kernels.cost `Bitscan
  | Matrix -> Kernels.cost `Matrix
  | Gather _ -> Kernels.cost `Gather
  | Divsqrt _ -> Kernels.cost `Divsqrt
  | Cmov _ -> Kernels.cost `Cmov_select
  | Butterfly _ -> Kernels.cost `Butterfly

let emit_piece ctx piece ~target =
  let per = cost_of piece in
  let passes_for len = max 1 (target / (per * len)) in
  match piece with
  | Streaming { len } -> Kernels.streaming ctx ~len ~passes:(passes_for len)
  | Stencil { len; depth } -> Kernels.stencil ctx ~len ~passes:(passes_for len) ~depth
  | Reduction { len } -> Kernels.reduction ctx ~len ~passes:(passes_for len)
  | Chase { nodes } -> Kernels.pointer_chase ctx ~nodes ~steps:(max 1 (target / per))
  | Hash { len } -> Kernels.hash_mix ctx ~len ~passes:(passes_for len)
  | Branchy { len; bias } -> Kernels.branchy ctx ~len ~passes:(passes_for len) ~bias
  | Bitscan { len } -> Kernels.bitscan ctx ~len ~passes:(passes_for len)
  | Matrix ->
      let n =
        let cube = float_of_int (max 1 target) /. float_of_int per in
        let n = int_of_float (Float.cbrt cube) in
        min 24 (max 4 n)
      in
      Kernels.matrix ctx ~n
  | Gather { len } -> Kernels.gather ctx ~len ~visits:(max 1 (target / per))
  | Divsqrt { len } -> Kernels.divsqrt ctx ~len ~passes:(passes_for len)
  | Cmov { len } -> Kernels.cmov_select ctx ~len ~passes:(passes_for len)
  | Butterfly { len } -> Kernels.butterfly ctx ~len ~passes:(passes_for len)

let generate profile ~seed ~scale =
  if scale <= 0 then invalid_arg "Spec.generate: scale must be positive";
  let rng = Prng.of_string (Printf.sprintf "%s:%d" profile.name seed) in
  let b = Build.create () in
  let ctx = { Kernels.b; rng } in
  List.iter
    (fun (frac, piece) ->
      let target = int_of_float (frac *. float_of_int scale) in
      if target > 0 then emit_piece ctx piece ~target)
    profile.mix;
  Build.finish b
