(** Synthetic stand-ins for the SPEC CPU2000 benchmark suite.

    Each profile composes the kernels of {!Kernels} in proportions chosen to
    echo the published character of the corresponding benchmark: mcf is a
    cache-hostile pointer chase, mgrid is deep FP stencil chains (the
    paper's largest braids), gzip/bzip2 are integer mixing with table
    traffic, twolf/vpr are cmov-heavy select loops, and so on. Programs are
    real, terminating, executable code; [scale] targets the dynamic
    instruction count of one run. *)

type cls = Int_bench | Fp_bench

type profile = {
  name : string;
  cls : cls;
  description : string;
  mix : (float * piece) list;  (** fraction of [scale] spent in each piece *)
}

and piece =
  | Streaming of { len : int }
  | Stencil of { len : int; depth : int }
  | Reduction of { len : int }
  | Chase of { nodes : int }
  | Hash of { len : int }
  | Branchy of { len : int; bias : float }
  | Bitscan of { len : int }
  | Matrix
  | Gather of { len : int }
  | Divsqrt of { len : int }
  | Cmov of { len : int }
  | Butterfly of { len : int }

val all : profile list
(** The 26 programs in paper order: 12 integer then 14 floating-point. *)

val integer : profile list
val floating : profile list

val find : string -> profile
(** Lookup by name. Raises [Not_found]. *)

val generate : profile -> seed:int -> scale:int -> Program.t * (int * int64) list
(** Builds the program and its initial memory image. Deterministic in
    [(profile, seed, scale)]. [scale] is an approximate target for the
    dynamic instruction count (actual length is within roughly a factor of
    two). *)
