test/t_braid.ml: Alcotest Array Braid_core Braid_workload Format Hashtbl Instr Int64 List Op Program QCheck QCheck_alcotest Reg String
