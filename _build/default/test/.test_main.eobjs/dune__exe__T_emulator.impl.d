test/t_emulator.ml: Alcotest Array Emulator Fmt Instr Int64 List Op Option Program Reg Trace
