test/t_extensions.ml: Alcotest Asm Astring_contains Braid_core Braid_sim Braid_uarch Braid_workload Disasm Emulator Fmt Instr Int64 List Op Option Program QCheck QCheck_alcotest Reg Trace
