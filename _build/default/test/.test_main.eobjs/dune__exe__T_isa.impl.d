test/t_isa.ml: Alcotest Encode Fmt Format Hashtbl Instr Int64 List Op QCheck QCheck_alcotest Reg
