test/t_prng.ml: Alcotest Array Int64 Prng QCheck QCheck_alcotest
