test/t_properties.ml: Alcotest Array Braid_core Braid_sim Braid_uarch Braid_workload Emulator Encode Histogram Instr Int64 List Op Option Printf Program QCheck QCheck_alcotest Reg Trace
