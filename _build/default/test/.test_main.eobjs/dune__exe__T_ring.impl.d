test/t_ring.ml: Alcotest Bitvec Gen List QCheck QCheck_alcotest Ring
