test/t_roundtrip.ml: Alcotest Asm Braid_uarch Disasm Instr List Op Option Printf QCheck QCheck_alcotest Reg T_isa
