test/t_stats.ml: Alcotest Array Gen Histogram List QCheck QCheck_alcotest Stats
