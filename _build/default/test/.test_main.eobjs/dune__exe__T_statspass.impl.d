test/t_statspass.ml: Alcotest Array Astring_contains Braid_core Braid_sim Braid_workload Emulator Instr List Op Option Program Reg Render String
