test/t_timing.ml: Alcotest Array Braid_core Braid_uarch Braid_workload Emulator Instr Int64 Op Option Printf Program Reg
