test/t_transform.ml: Alcotest Array Braid_core Braid_workload Emulator Fmt Hashtbl Instr Int64 Lazy List Op Printf Program QCheck QCheck_alcotest Reg Trace
