test/t_uarch.ml: Alcotest Braid_core Braid_uarch Braid_workload Emulator List Op Option Printf Prng QCheck QCheck_alcotest Reg Trace
