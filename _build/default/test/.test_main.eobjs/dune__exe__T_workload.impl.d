test/t_workload.ml: Alcotest Braid_workload Emulator Fmt Instr Int64 List Op Printf Program QCheck QCheck_alcotest Reg Trace
