test/test_main.ml: Alcotest T_braid T_emulator T_extensions T_isa T_prng T_properties T_ring T_roundtrip T_stats T_statspass T_timing T_transform T_uarch T_workload
