(* Tests for the braid compiler core: liveness, identification, splitting,
   ordering, and the Fig 2 example. *)

module C = Braid_core

let r n = Reg.ext Reg.Cint n
let v n = Reg.virt Reg.Cint n
let i op = Instr.make op

let block id ?fallthrough instrs =
  { Program.id; instrs = Array.of_list instrs; fallthrough }

(* --- Dataflow --- *)

let regset = Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (String.concat "," (List.map Reg.to_string (C.Regset.Set.elements s))))
    C.Regset.Set.equal

let test_successors () =
  let p =
    Program.make
      [
        block 0 ~fallthrough:1 [ i (Op.Branch (Op.Eq, r 0, 2)) ];
        block 1 [ i (Op.Jump 0) ];
        block 2 [ i Op.Halt ];
      ]
      ~entry:0
  in
  Alcotest.(check (list int)) "branch" [ 2; 1 ] (C.Dataflow.successors p 0);
  Alcotest.(check (list int)) "jump" [ 0 ] (C.Dataflow.successors p 1);
  Alcotest.(check (list int)) "halt" [] (C.Dataflow.successors p 2)

let test_liveness_diamond () =
  (* B0: def v0, branch; B1: use v0 def v1; B2: def v1; B3: use v1, halt *)
  let p =
    Program.make
      [
        block 0 ~fallthrough:1 [ i (Op.Movi (v 0, 1L)); i (Op.Branch (Op.Gt, v 0, 2)) ];
        block 1 ~fallthrough:3 [ i (Op.Ibini (Op.Add, v 1, v 0, 1)) ];
        block 2 ~fallthrough:3 [ i (Op.Movi (v 1, 9L)) ];
        block 3 [ i (Op.Ibini (Op.Add, v 2, v 1, 0)); i Op.Halt ];
      ]
      ~entry:0
  in
  let live = C.Dataflow.liveness p in
  Alcotest.check regset "v0 live into B1" (C.Regset.Set.singleton (v 0))
    live.C.Dataflow.live_in.(1);
  Alcotest.check regset "nothing live into B2" C.Regset.Set.empty
    live.C.Dataflow.live_in.(2);
  Alcotest.check regset "v1 live into B3" (C.Regset.Set.singleton (v 1))
    live.C.Dataflow.live_in.(3);
  Alcotest.check regset "v1 live out of B1" (C.Regset.Set.singleton (v 1))
    live.C.Dataflow.live_out.(1)

let test_liveness_loop () =
  (* loop-carried value must stay live around the back edge *)
  let p =
    Program.make
      [
        block 0 ~fallthrough:1 [ i (Op.Movi (v 0, 0L)) ];
        block 1 ~fallthrough:2
          [
            i (Op.Ibini (Op.Add, v 0, v 0, 1));
            i (Op.Ibini (Op.Cmplt, v 1, v 0, 10));
            i (Op.Branch (Op.Ne, v 1, 1));
          ];
        block 2 [ i (Op.Store (v 0, Reg.zero, 0x1000, 0)); i Op.Halt ];
      ]
      ~entry:0
  in
  let live = C.Dataflow.liveness p in
  Alcotest.(check bool) "v0 live around back edge" true
    (C.Regset.Set.mem (v 0) live.C.Dataflow.live_out.(1));
  Alcotest.(check bool) "v0 live into loop" true
    (C.Regset.Set.mem (v 0) live.C.Dataflow.live_in.(1))

(* --- Fig 2: the gcc life-analysis block --- *)

(* Mirror of the paper's Fig 2(b) basic block, written with virtual
   registers: three braids — the bitset computation (with the branch), the
   induction-variable increment, and a standalone lda. *)
let fig2_block () =
  let a0 = v 0 and a1 = v 1 and t8 = v 2 and t4 = v 3 and t5 = v 4 and t9 = v 5 in
  let t0 = v 10 and t1 = v 11 and t2 = v 12 and t3 = v 13 and t6 = v 14 and t7 = v 15 in
  block 0 ~fallthrough:1
    [
      i (Op.Ibin (Op.Add, t0, a1, t4));
      (* addq a1, t4, t0 *)
      i (Op.Ibin (Op.Add, t1, a0, t4));
      (* addq a0, t4, t1 *)
      i (Op.Ibin (Op.Add, t2, t8, t4));
      (* addq t8, t4, t2 *)
      i (Op.Load (t3, t0, 0, 0));
      (* ldl t3, 0(t0) *)
      i (Op.Ibini (Op.Add, t5, t5, 1));
      (* addl t5, #1, t5 *)
      i (Op.Load (t0, t1, 0, 0));
      (* ldl t0, 0(t1) *)
      i (Op.Ibin (Op.Cmpeq, t7, t9, t5));
      (* cmpeq t9, t5, t7 *)
      i (Op.Load (t1, t2, 0, 0));
      (* ldl t1, 0(t2) *)
      i (Op.Ibini (Op.Add, t4, t4, 4));
      (* lda t4, 4(t4) *)
      i (Op.Ibin (Op.Andnot, t0, t3, t0));
      (* andnot t3, t0, t0 *)
      i (Op.Ibin (Op.And, t1, t0, t1));
      (* and t0, t1, t1 *)
      i (Op.Ibini (Op.And, t1, t1, 15));
      (* zapnot t1, #15, t1 *)
      i (Op.Cmov (Op.Ne, t6, t0, v 20));
      (* cmovne t0, #1, t6 — the "1" modelled as a live-in register *)
      i (Op.Branch (Op.Ne, t1, 1));
      (* bne t1 *)
    ]

let test_fig2_identification () =
  let b = fig2_block () in
  let ids, count = C.Braid.identify b in
  (* The lda (index 8) redefines t4 read by the address adds: its braid is
     its own going forward. The cmpeq/addl pair and the main bitset chain
     form the others. *)
  Alcotest.(check bool) "several braids" true (count >= 3);
  (* the three address adds and the three loads are connected *)
  Alcotest.(check int) "addq a1 with its ldl" ids.(0) ids.(3);
  Alcotest.(check int) "addq a0 with its ldl" ids.(1) ids.(5);
  Alcotest.(check int) "addq t8 with its ldl" ids.(2) ids.(7);
  Alcotest.(check int) "andnot joins loads" ids.(9) ids.(3);
  Alcotest.(check int) "branch joins bitset braid" ids.(13) ids.(11);
  (* the induction increment chain is a separate braid *)
  Alcotest.(check bool) "increment separate from bitset" true (ids.(4) <> ids.(0));
  Alcotest.(check int) "cmpeq joins increment" ids.(6) ids.(4);
  (* the lda is separate from both *)
  Alcotest.(check bool) "lda separate" true (ids.(8) <> ids.(0) && ids.(8) <> ids.(4))

let test_fig2_analysis_order () =
  let b = fig2_block () in
  let a = C.Braid.analyze ~live_out:C.Regset.Set.empty b in
  let n = Array.length b.Program.instrs in
  (* order is a permutation *)
  let sorted = Array.copy a.C.Braid.order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "order is a permutation" (Array.init n (fun k -> k)) sorted;
  (* braids are contiguous in emission order *)
  let seen = Hashtbl.create 8 in
  let last = ref (-1) in
  Array.iter
    (fun orig ->
      let id = a.C.Braid.ids.(orig) in
      if id <> !last then begin
        Alcotest.(check bool) "braid ids contiguous" false (Hashtbl.mem seen id);
        Hashtbl.add seen id ();
        last := id
      end)
    a.C.Braid.order;
  (* the branch stays last *)
  Alcotest.(check int) "terminator last" (n - 1) a.C.Braid.order.(n - 1);
  (* within a braid, original order is preserved *)
  let pos = Array.make n 0 in
  Array.iteri (fun p orig -> pos.(orig) <- p) a.C.Braid.order;
  for x = 0 to n - 1 do
    for y = x + 1 to n - 1 do
      if a.C.Braid.ids.(x) = a.C.Braid.ids.(y) then
        Alcotest.(check bool) "intra-braid order kept" true (pos.(x) < pos.(y))
    done
  done

let test_consumers () =
  let b =
    block 0 ~fallthrough:1
      [ i (Op.Movi (v 0, 1L)); i (Op.Ibini (Op.Add, v 1, v 0, 1)); i (Op.Ibin (Op.Add, v 2, v 0, v 1)) ]
  in
  let cons = C.Braid.consumers b in
  Alcotest.(check (list int)) "movi consumers" [ 1; 2 ] cons.(0);
  Alcotest.(check (list int)) "add consumers" [ 2 ] cons.(1);
  Alcotest.(check (list int)) "last has none" [] cons.(2)

(* --- working-set splitting --- *)

let wide_block ~live:k =
  (* k values all defined up front, all consumed by a final chain: the
     internal working set peaks at k *)
  let defs = List.init k (fun j -> i (Op.Movi (v j, Int64.of_int j))) in
  let combine =
    List.init (k - 1) (fun j ->
        i (Op.Ibin (Op.Add, v (100 + j + 1), (if j = 0 then v 0 else v (100 + j)), v (j + 1))))
  in
  block 0 ~fallthrough:1 (defs @ combine)

let test_working_set_split () =
  let b = wide_block ~live:12 in
  let a = C.Braid.analyze ~max_internal:8 ~live_out:C.Regset.Set.empty b in
  Alcotest.(check bool) "split happened" true (a.C.Braid.splits_working_set > 0);
  (* verify the bound holds per braid: walk each braid's members counting
     live internals exactly as the allocator does *)
  let cons = C.Braid.consumers b in
  for bid = 0 to a.C.Braid.count - 1 do
    let members =
      List.filter (fun x -> a.C.Braid.ids.(x) = bid)
        (List.init (Array.length a.C.Braid.ids) (fun x -> x))
    in
    let live = ref [] in
    List.iter
      (fun t ->
        live := List.filter (fun (_, lu) -> lu >= t) !live;
        if a.C.Braid.internal.(t) then begin
          let in_braid = List.filter (fun c -> a.C.Braid.ids.(c) = bid) cons.(t) in
          let lu = List.fold_left max t in_braid in
          live := (t, lu) :: !live;
          Alcotest.(check bool) "working set bounded" true (List.length !live <= 8)
        end)
      members
  done

let test_no_split_when_narrow () =
  let b = wide_block ~live:4 in
  let a = C.Braid.analyze ~max_internal:8 ~live_out:C.Regset.Set.empty b in
  Alcotest.(check int) "no split" 0 a.C.Braid.splits_working_set

(* --- ordering hazards --- *)

let test_memory_order_preserved () =
  (* braid A: store to region 0 late in the block; braid B: load from
     region 0 earlier. Reordering B's braid after A's would be fine, but
     A's store must never move before B's load if A starts earlier. *)
  let b =
    block 0 ~fallthrough:1
      [
        i (Op.Movi (v 0, 0x1000L));
        i (Op.Movi (v 1, 42L));
        i (Op.Store (v 1, v 0, 0, 0));
        (* braid with first instr at 0 *)
        i (Op.Movi (v 2, 0x1000L));
        i (Op.Load (v 3, v 2, 0, 0));
        (* may-alias load, originally after the store *)
        i (Op.Store (v 3, v 2, 8, 1));
      ]
  in
  let a = C.Braid.analyze ~live_out:C.Regset.Set.empty b in
  let pos = Array.make (Array.length a.C.Braid.order) 0 in
  Array.iteri (fun p orig -> pos.(orig) <- p) a.C.Braid.order;
  Alcotest.(check bool) "store before may-alias load" true (pos.(2) < pos.(4))

let qcheck_hazards_preserved =
  (* random blocks built from the workload generators: every may-alias
     memory pair, WAR and WAW pair keeps its original order *)
  QCheck.Test.make ~name:"ordering hazards preserved on generated blocks" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile = List.nth Braid_workload.Spec.all (seed mod 26) in
      let prog, _ = Braid_workload.Spec.generate profile ~seed ~scale:1500 in
      let live = C.Dataflow.liveness prog in
      Array.for_all
        (fun (b : Program.block) ->
          let a =
            C.Braid.analyze ~live_out:live.C.Dataflow.live_out.(b.Program.id) b
          in
          let n = Array.length b.Program.instrs in
          let pos = Array.make n 0 in
          Array.iteri (fun p orig -> pos.(orig) <- p) a.C.Braid.order;
          let ok = ref true in
          for x = 0 to n - 1 do
            for y = x + 1 to n - 1 do
              let ox = b.Program.instrs.(x).Instr.op
              and oy = b.Program.instrs.(y).Instr.op in
              let mem_pair =
                Op.is_mem ox && Op.is_mem oy
                && (Op.is_store ox || Op.is_store oy)
              in
              let regs l = List.filter (fun r -> not (Reg.is_zero r)) l in
              let war =
                List.exists
                  (fun r -> List.exists (Reg.equal r) (regs (Op.defs oy)))
                  (regs (Op.uses (b.Program.instrs.(x)).Instr.op))
              in
              let waw =
                List.exists
                  (fun r -> List.exists (Reg.equal r) (regs (Op.defs oy)))
                  (regs (Op.defs ox))
              in
              if (mem_pair || war || waw) && pos.(x) > pos.(y) then
                (* memory pairs in provably distinct regions may reorder *)
                let distinct_regions =
                  match (ox, oy) with
                  | Op.Load (_, _, _, r1), Op.Store (_, _, _, r2)
                  | Op.Store (_, _, _, r1), Op.Load (_, _, _, r2)
                  | Op.Store (_, _, _, r1), Op.Store (_, _, _, r2) ->
                      r1 <> Op.region_unknown && r2 <> Op.region_unknown && r1 <> r2
                  | _ -> false
                in
                if not (distinct_regions && not war && not waw) then ok := false
            done
          done;
          !ok)
        prog.Program.blocks)

let suite =
  ( "braid-core",
    [
      Alcotest.test_case "successors" `Quick test_successors;
      Alcotest.test_case "liveness diamond" `Quick test_liveness_diamond;
      Alcotest.test_case "liveness loop" `Quick test_liveness_loop;
      Alcotest.test_case "fig2 identification" `Quick test_fig2_identification;
      Alcotest.test_case "fig2 analysis order" `Quick test_fig2_analysis_order;
      Alcotest.test_case "consumers" `Quick test_consumers;
      Alcotest.test_case "working-set split" `Quick test_working_set_split;
      Alcotest.test_case "no split when narrow" `Quick test_no_split_when_narrow;
      Alcotest.test_case "memory order preserved" `Quick test_memory_order_preserved;
      QCheck_alcotest.to_alcotest qcheck_hazards_preserved;
    ] )
