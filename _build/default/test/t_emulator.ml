(* Tests for Program validation and the functional emulator. *)

let r n = Reg.ext Reg.Cint n
let f n = Reg.ext Reg.Cfp n
let i op = Instr.make op

let block id ?fallthrough instrs =
  { Program.id; instrs = Array.of_list instrs; fallthrough }

let straight_line instrs =
  Program.make [ block 0 (instrs @ [ i Op.Halt ]) ] ~entry:0

(* --- Program validation --- *)

let invalid prog_thunk =
  try
    ignore (prog_thunk ());
    false
  with Invalid_argument _ -> true

let test_program_validation () =
  Alcotest.(check bool) "no blocks" true (invalid (fun () -> Program.make [] ~entry:0));
  Alcotest.(check bool) "bad entry" true
    (invalid (fun () -> Program.make [ block 0 [ i Op.Halt ] ] ~entry:3));
  Alcotest.(check bool) "bad branch target" true
    (invalid (fun () ->
         Program.make [ block 0 ~fallthrough:0 [ i (Op.Branch (Op.Eq, r 0, 9)) ] ] ~entry:0));
  Alcotest.(check bool) "transfer must be terminal" true
    (invalid (fun () ->
         Program.make [ block 0 [ i (Op.Jump 0); i Op.Halt ] ] ~entry:0));
  Alcotest.(check bool) "missing fallthrough" true
    (invalid (fun () -> Program.make [ block 0 [ i Op.Nop ] ] ~entry:0));
  Alcotest.(check bool) "dense ids required" true
    (invalid (fun () -> Program.make [ block 1 [ i Op.Halt ] ] ~entry:0))

let test_program_addresses () =
  let p =
    Program.make
      [ block 0 ~fallthrough:1 [ i Op.Nop; i Op.Nop ]; block 1 [ i Op.Halt ] ]
      ~entry:0
  in
  Alcotest.(check int) "static count" 3 (Program.num_static_instrs p);
  Alcotest.(check int) "block 1 base" 2 (Program.block_base p 1);
  Alcotest.(check int) "pc" 8 (Program.pc_of p ~block_id:1 ~offset:0);
  Alcotest.(check int) "pc offset" 4 (Program.pc_of p ~block_id:0 ~offset:1)

let test_max_virt () =
  let p = straight_line [ i (Op.Movi (Reg.virt Reg.Cint 7, 1L)) ] in
  Alcotest.(check int) "max virt" 7 (Program.max_virt_index p);
  let q = straight_line [ i (Op.Movi (r 0, 1L)) ] in
  Alcotest.(check int) "no virt" (-1) (Program.max_virt_index q)

(* --- Emulator: arithmetic and memory --- *)

let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_emulator_arith () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 6L));
        i (Op.Movi (r 2, 7L));
        i (Op.Ibin (Op.Mul, r 3, r 1, r 2));
        i (Op.Ibini (Op.Add, r 3, r 3, 100));
      ]
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "6*7+100" 142L (Emulator.read_ext out.Emulator.state (r 3));
  Alcotest.(check bool) "halted" true (out.Emulator.stop = Trace.Halted)

let test_emulator_zero_reg () =
  let p =
    straight_line
      [ i (Op.Movi (Reg.zero, 55L)); i (Op.Ibini (Op.Add, r 1, Reg.zero, 3)) ]
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "zero ignores writes" 3L (Emulator.read_ext out.Emulator.state (r 1))

let test_emulator_memory () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 0x1000L));
        i (Op.Movi (r 2, 99L));
        i (Op.Store (r 2, r 1, 8, 0));
        i (Op.Load (r 3, r 1, 8, 0));
      ]
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "load sees store" 99L (Emulator.read_ext out.Emulator.state (r 3));
  Alcotest.(check i64) "memory word" 99L (Emulator.read_mem out.Emulator.state 0x1008);
  Alcotest.(check int) "store count" 1 out.Emulator.store_count

let test_emulator_init_mem () =
  let p = straight_line [ i (Op.Movi (r 1, 0x2000L)); i (Op.Load (r 2, r 1, 0, 0)) ] in
  let out = Emulator.run ~init_mem:[ (0x2000, 123L) ] p in
  Alcotest.(check i64) "init memory visible" 123L (Emulator.read_ext out.Emulator.state (r 2))

let test_emulator_loop () =
  (* sum 1..10 with a backward branch *)
  let body =
    block 1 ~fallthrough:2
      [
        i (Op.Ibin (Op.Add, r 3, r 3, r 1));
        i (Op.Ibini (Op.Add, r 1, r 1, 1));
        i (Op.Ibini (Op.Cmple, r 4, r 1, 10));
        i (Op.Branch (Op.Ne, r 4, 1));
      ]
  in
  let p =
    Program.make
      [ block 0 ~fallthrough:1 [ i (Op.Movi (r 1, 1L)) ]; body; block 2 [ i Op.Halt ] ]
      ~entry:0
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "sum 1..10" 55L (Emulator.read_ext out.Emulator.state (r 3))

let test_emulator_cmov () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 5L));
        i (Op.Movi (r 2, 10L));
        i (Op.Movi (r 3, 0L));
        i (Op.Cmov (Op.Ne, r 2, r 1, r 3));
        (* r1 <> 0, so r2 := r3 = 0 *)
        i (Op.Cmov (Op.Eq, r 1, r 2, r 3));
        (* r2 = 0 now... test reg is r2? no: test is second arg *)
      ]
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "cmov taken" 0L (Emulator.read_ext out.Emulator.state (r 2))

let test_emulator_cmov_not_taken () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 0L));
        i (Op.Movi (r 2, 10L));
        i (Op.Movi (r 3, 42L));
        i (Op.Cmov (Op.Ne, r 2, r 1, r 3));
        (* r1 = 0: r2 keeps 10 *)
      ]
  in
  let out = Emulator.run p in
  Alcotest.(check i64) "cmov not taken" 10L (Emulator.read_ext out.Emulator.state (r 2))

let test_emulator_fp () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 9L));
        i (Op.Funary (Op.Cvt_if, f 1, r 1));
        i (Op.Funary (Op.Fsqrt, f 2, f 1));
        i (Op.Fbin (Op.Fmul, f 3, f 2, f 2));
      ]
  in
  let out = Emulator.run p in
  let v = Int64.float_of_bits (Emulator.read_ext out.Emulator.state (f 3)) in
  Alcotest.(check (float 1e-9)) "sqrt(9)^2" 9.0 v

let test_emulator_fault_continues () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 4L));
        i (Op.Funary (Op.Cvt_if, f 1, r 1));
        i (Op.Movi (r 2, 0L));
        i (Op.Funary (Op.Cvt_if, f 2, r 2));
        i (Op.Fbin (Op.Fdiv, f 3, f 1, f 2));
        (* divide by zero *)
        i (Op.Movi (r 5, 77L));
      ]
  in
  let out = Emulator.run p in
  Alcotest.(check bool) "continued to halt" true (out.Emulator.stop = Trace.Halted);
  Alcotest.(check i64) "faulting dest zeroed" 0L (Emulator.read_ext out.Emulator.state (f 3));
  Alcotest.(check i64) "later work ran" 77L (Emulator.read_ext out.Emulator.state (r 5));
  match out.Emulator.trace with
  | Some t ->
      let faults = Array.to_list t.Trace.events |> List.filter (fun e -> e.Trace.faulting) in
      Alcotest.(check int) "one fault event" 1 (List.length faults)
  | None -> Alcotest.fail "trace expected"

let test_emulator_max_steps () =
  let p =
    Program.make [ block 0 [ i (Op.Jump 0) ] ] ~entry:0
  in
  let out = Emulator.run ~max_steps:50 p in
  Alcotest.(check bool) "steps exhausted" true (out.Emulator.stop = Trace.Steps_exhausted);
  Alcotest.(check int) "exactly 50" 50 out.Emulator.dynamic_count

let test_emulator_unaligned () =
  let p = straight_line [ i (Op.Movi (r 1, 3L)); i (Op.Load (r 2, r 1, 0, 0)) ] in
  Alcotest.(check bool) "unaligned fails" true
    (try
       ignore (Emulator.run p);
       false
     with Failure _ -> true)

(* --- trace structure --- *)

let test_trace_deps () =
  let p =
    straight_line
      [
        i (Op.Movi (r 1, 1L));
        (* uid 0 *)
        i (Op.Movi (r 2, 2L));
        (* uid 1 *)
        i (Op.Ibin (Op.Add, r 3, r 1, r 2));
        (* uid 2: deps on 0 and 1 *)
        i (Op.Ibin (Op.Add, r 3, r 3, r 1));
        (* uid 3: deps on 2 and 0 *)
      ]
  in
  let out = Emulator.run p in
  let t = Option.get out.Emulator.trace in
  let deps u = Array.to_list t.Trace.events.(u).Trace.deps |> List.map fst in
  Alcotest.(check (list int)) "add deps" [ 0; 1 ] (deps 2);
  Alcotest.(check (list int)) "chained deps" [ 0; 2 ] (deps 3)

let test_trace_branch_fields () =
  let body =
    block 1 ~fallthrough:2
      [ i (Op.Ibini (Op.Add, r 1, r 1, 1)); i (Op.Ibini (Op.Cmplt, r 2, r 1, 3));
        i (Op.Branch (Op.Ne, r 2, 1)) ]
  in
  let p =
    Program.make
      [ block 0 ~fallthrough:1 [ i (Op.Movi (r 1, 0L)) ]; body; block 2 [ i Op.Halt ] ]
      ~entry:0
  in
  let t = Option.get (Emulator.run p).Emulator.trace in
  let branches =
    Array.to_list t.Trace.events |> List.filter (fun e -> e.Trace.is_cond_branch)
  in
  Alcotest.(check int) "three dynamic branches" 3 (List.length branches);
  let takens = List.map (fun e -> e.Trace.taken) branches in
  Alcotest.(check (list bool)) "taken, taken, not-taken" [ true; true; false ] takens;
  (* next_pc of a taken branch is the target block start *)
  let first = List.hd branches in
  Alcotest.(check int) "taken next_pc" (Program.pc_of p ~block_id:1 ~offset:0)
    first.Trace.next_pc

let test_memory_image_and_fingerprint () =
  let store addr v = [ i (Op.Movi (r 1, Int64.of_int addr)); i (Op.Movi (r 2, v)); i (Op.Store (r 2, r 1, 0, 0)) ] in
  let p1 = straight_line (store 0x1000 5L @ store Emulator.spill_base 9L) in
  let out1 = Emulator.run p1 in
  Alcotest.(check (list (pair int i64))) "image excludes spill region"
    [ (0x1000, 5L) ]
    (Emulator.memory_image out1.Emulator.state);
  let p2 = straight_line (store 0x1000 5L) in
  let out2 = Emulator.run p2 in
  Alcotest.(check i64) "fingerprints equal for equal images"
    (Emulator.memory_fingerprint out1.Emulator.state)
    (Emulator.memory_fingerprint out2.Emulator.state);
  let p3 = straight_line (store 0x1000 6L) in
  let out3 = Emulator.run p3 in
  Alcotest.(check bool) "different image, different fingerprint" false
    (Int64.equal
       (Emulator.memory_fingerprint out1.Emulator.state)
       (Emulator.memory_fingerprint out3.Emulator.state))

let suite =
  ( "program-emulator",
    [
      Alcotest.test_case "program validation" `Quick test_program_validation;
      Alcotest.test_case "program addresses" `Quick test_program_addresses;
      Alcotest.test_case "max virt index" `Quick test_max_virt;
      Alcotest.test_case "arithmetic" `Quick test_emulator_arith;
      Alcotest.test_case "zero register" `Quick test_emulator_zero_reg;
      Alcotest.test_case "memory" `Quick test_emulator_memory;
      Alcotest.test_case "init memory" `Quick test_emulator_init_mem;
      Alcotest.test_case "loop" `Quick test_emulator_loop;
      Alcotest.test_case "cmov taken" `Quick test_emulator_cmov;
      Alcotest.test_case "cmov not taken" `Quick test_emulator_cmov_not_taken;
      Alcotest.test_case "floating point" `Quick test_emulator_fp;
      Alcotest.test_case "fault continues" `Quick test_emulator_fault_continues;
      Alcotest.test_case "max steps" `Quick test_emulator_max_steps;
      Alcotest.test_case "unaligned access" `Quick test_emulator_unaligned;
      Alcotest.test_case "trace deps" `Quick test_trace_deps;
      Alcotest.test_case "trace branch fields" `Quick test_trace_branch_fields;
      Alcotest.test_case "memory image & fingerprint" `Quick test_memory_image_and_fingerprint;
    ] )
