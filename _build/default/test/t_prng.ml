(* Tests for Braid_util.Prng. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 b) then incr same
  done;
  check_bool "streams differ" true (!same < 2)

let test_of_string_stable () =
  let a = Prng.of_string "gcc:1" and b = Prng.of_string "gcc:1" in
  Alcotest.(check int64) "label-derived seeds stable" (Prng.next_int64 a) (Prng.next_int64 b);
  let c = Prng.of_string "gcc:2" in
  check_bool "different labels differ" false
    (Int64.equal (Prng.next_int64 (Prng.of_string "gcc:1")) (Prng.next_int64 c))

let test_split_independent () =
  let a = Prng.create 7L in
  let b = Prng.split a in
  let x = Prng.next_int64 a and y = Prng.next_int64 b in
  check_bool "split streams differ" false (Int64.equal x y)

let test_copy () =
  let a = Prng.create 9L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Prng.next_int64 a) (Prng.next_int64 b)

let test_int_range () =
  let rng = Prng.create 3L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17)
  done

let test_int_in_range () =
  let rng = Prng.create 4L in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    check_bool "int_in inclusive range" true (v >= -5 && v <= 5)
  done

let test_int_covers () =
  let rng = Prng.create 5L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int rng 4) <- true
  done;
  check_bool "all buckets hit" true (Array.for_all (fun x -> x) seen)

let test_chance_extremes () =
  let rng = Prng.create 6L in
  check_bool "p=0 never" false (Prng.chance rng 0.0);
  check_bool "p=1 always" true (Prng.chance rng 1.0)

let test_chance_bias () =
  let rng = Prng.create 8L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.chance rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000.0 in
  check_bool "bias near 0.3" true (p > 0.26 && p < 0.34)

let test_float_range () =
  let rng = Prng.create 10L in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check_bool "float in range" true (v >= 0.0 && v < 2.5)
  done

let test_pick () =
  let rng = Prng.create 11L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    check_bool "pick member" true (Array.mem (Prng.pick rng arr) arr)
  done

let test_pick_weighted () =
  let rng = Prng.create 12L in
  let hits = ref 0 in
  for _ = 1 to 5000 do
    if Prng.pick_weighted rng [| (9.0, `Heavy); (1.0, `Light) |] = `Heavy then incr hits
  done;
  let p = float_of_int !hits /. 5000.0 in
  check_bool "weights respected" true (p > 0.85 && p < 0.95)

let test_shuffle_permutation () =
  let rng = Prng.create 13L in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_geometric () =
  let rng = Prng.create 14L in
  let total = ref 0 in
  for _ = 1 to 2000 do
    let v = Prng.geometric rng 0.5 in
    check_bool "geometric >= 1" true (v >= 1);
    total := !total + v
  done;
  let m = float_of_int !total /. 2000.0 in
  check_bool "geometric mean near 2" true (m > 1.8 && m < 2.2)

let qcheck_int_bound =
  QCheck.Test.make ~name:"prng int always within bound" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let qcheck_int_in_bound =
  QCheck.Test.make ~name:"prng int_in always within bounds" ~count:500
    QCheck.(triple int64 (int_range (-100) 100) (int_range 0 200))
    (fun (seed, lo, span) ->
      let rng = Prng.create seed in
      let v = Prng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "different seeds" `Quick test_different_seeds;
      Alcotest.test_case "of_string stable" `Quick test_of_string_stable;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "copy" `Quick test_copy;
      Alcotest.test_case "int range" `Quick test_int_range;
      Alcotest.test_case "int_in range" `Quick test_int_in_range;
      Alcotest.test_case "int covers buckets" `Quick test_int_covers;
      Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
      Alcotest.test_case "chance bias" `Quick test_chance_bias;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "pick" `Quick test_pick;
      Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "geometric" `Quick test_geometric;
      QCheck_alcotest.to_alcotest qcheck_int_bound;
      QCheck_alcotest.to_alcotest qcheck_int_in_bound;
    ] )

let () = ignore check_int
