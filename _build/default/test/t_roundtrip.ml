(* Cross-module round-trip properties: the disassembler's textual form is
   exactly the assembler's input language, for every operation shape; and
   configuration constructors keep their invariants. *)

module U = Braid_uarch

let r n = Reg.ext Reg.Cint n
let f n = Reg.ext Reg.Cfp n
let t n = Reg.intern n

(* --- every mnemonic prints and reparses -------------------------------- *)

let all_shapes =
  [
    Op.Nop;
    Op.Halt;
    Op.Jump 3;
    Op.Movi (r 1, 42L);
    Op.Movi (t 2, -7L);
    Op.Ibin (Op.Add, r 1, r 2, r 3);
    Op.Ibin (Op.Sub, t 0, r 2, t 1);
    Op.Ibin (Op.Mul, r 1, r 2, r 3);
    Op.Ibin (Op.And, r 1, r 2, r 3);
    Op.Ibin (Op.Or, r 1, r 2, r 3);
    Op.Ibin (Op.Xor, r 1, r 2, r 3);
    Op.Ibin (Op.Andnot, r 1, r 2, r 3);
    Op.Ibin (Op.Shl, r 1, r 2, r 3);
    Op.Ibin (Op.Shr, r 1, r 2, r 3);
    Op.Ibin (Op.Cmpeq, r 1, r 2, r 3);
    Op.Ibin (Op.Cmplt, r 1, r 2, r 3);
    Op.Ibin (Op.Cmple, r 1, r 2, r 3);
    Op.Ibini (Op.Add, r 1, r 2, 9);
    Op.Ibini (Op.Shl, t 3, r 2, 3);
    Op.Ibini (Op.Cmplt, r 1, r 2, -5);
    Op.Fbin (Op.Fadd, f 1, f 2, f 3);
    Op.Fbin (Op.Fsub, f 1, f 2, f 3);
    Op.Fbin (Op.Fmul, f 1, f 2, f 3);
    Op.Fbin (Op.Fdiv, f 1, f 2, f 3);
    Op.Fbin (Op.Fcmplt, f 1, f 2, f 3);
    Op.Funary (Op.Fneg, f 1, f 2);
    Op.Funary (Op.Fsqrt, f 1, f 2);
    Op.Funary (Op.Cvt_if, f 1, r 2);
    Op.Cmov (Op.Eq, r 1, r 2, r 3);
    Op.Cmov (Op.Ne, r 1, r 2, r 3);
    Op.Cmov (Op.Lt, r 1, r 2, r 3);
    Op.Cmov (Op.Ge, r 1, r 2, r 3);
    Op.Cmov (Op.Le, r 1, r 2, r 3);
    Op.Cmov (Op.Gt, r 1, r 2, r 3);
    Op.Load (r 1, r 2, 16, 4);
    Op.Load (f 1, r 2, -8, Op.region_unknown);
    Op.Load (t 5, r 2, 0, 0);
    Op.Store (r 1, r 2, 24, 2);
    Op.Store (f 1, r 2, 0, Op.region_unknown);
    Op.Branch (Op.Eq, r 1, 2);
    Op.Branch (Op.Ne, t 1, 0);
    Op.Branch (Op.Lt, r 1, 2);
    Op.Branch (Op.Ge, r 1, 2);
    Op.Branch (Op.Le, r 1, 2);
    Op.Branch (Op.Gt, r 1, 2);
  ]

(* Memory region tags are compiler metadata and do not survive text. *)
let strip_region = function
  | Op.Load (d, b, off, _) -> Op.Load (d, b, off, Op.region_unknown)
  | Op.Store (s, b, off, _) -> Op.Store (s, b, off, Op.region_unknown)
  | op -> op

let test_every_shape_roundtrips () =
  List.iter
    (fun op ->
      let printed = Disasm.instr (Instr.make op) in
      let reparsed = Asm.parse_instr printed in
      Alcotest.(check bool)
        (Printf.sprintf "%S survives print/parse" printed)
        true
        (strip_region reparsed.Instr.op = strip_region op))
    all_shapes

let qcheck_print_parse =
  (* reuse t_isa's generator over random well-formed instructions *)
  QCheck.Test.make ~name:"random instructions survive print/parse" ~count:1000
    T_isa.arb_instr
    (fun ins ->
      let reparsed = Asm.parse_instr (Disasm.instr ins) in
      strip_region reparsed.Instr.op = strip_region ins.Instr.op
      && reparsed.Instr.annot.Instr.braid_start = ins.Instr.annot.Instr.braid_start
      && Option.equal Reg.equal reparsed.Instr.annot.Instr.ext_dup
           ins.Instr.annot.Instr.ext_dup)

(* --- configuration invariants ------------------------------------------- *)

let test_scale_width_invariants () =
  List.iter
    (fun cfg ->
      List.iter
        (fun w ->
          let scaled = U.Config.scale_width cfg w in
          Alcotest.(check int) "fetch width" w scaled.U.Config.fetch_width;
          Alcotest.(check int) "commit width" w scaled.U.Config.commit_width;
          Alcotest.(check bool) "positive clusters" true (scaled.U.Config.clusters >= 1);
          Alcotest.(check bool) "per-cluster shape preserved" true
            (scaled.U.Config.fus_per_cluster = cfg.U.Config.fus_per_cluster);
          Alcotest.(check bool) "name distinct per width" true
            (scaled.U.Config.name <> cfg.U.Config.name || w = 8))
        [ 4; 16 ])
    [ U.Config.ooo_8wide; U.Config.braid_8wide; U.Config.in_order_8wide;
      U.Config.dep_steer_8wide ]

let test_scale_width_idempotent_name () =
  let once = U.Config.scale_width U.Config.ooo_8wide 4 in
  let twice = U.Config.scale_width once 16 in
  Alcotest.(check string) "no name accretion" "ooo-8@16w" twice.U.Config.name

let test_perfect_frontend () =
  let p = U.Config.perfect_frontend U.Config.ooo_8wide in
  Alcotest.(check bool) "predictor perfect" true
    (p.U.Config.predictor = U.Config.Perfect_prediction);
  Alcotest.(check bool) "caches perfect" true
    (p.U.Config.mem.U.Config.perfect_icache && p.U.Config.mem.U.Config.perfect_dcache)

let test_table4_fidelity () =
  (* the presets must stay faithful to the paper's Table 4 *)
  let o = U.Config.ooo_8wide and b = U.Config.braid_8wide in
  Alcotest.(check int) "ooo penalty 23" 23 o.U.Config.misprediction_penalty;
  Alcotest.(check int) "braid penalty 19" 19 b.U.Config.misprediction_penalty;
  Alcotest.(check int) "ooo 8 schedulers" 8 o.U.Config.clusters;
  Alcotest.(check int) "32-entry schedulers" 32 o.U.Config.cluster_entries;
  Alcotest.(check int) "ooo 256 registers" 256 o.U.Config.ext_regs;
  Alcotest.(check (pair int int)) "ooo 16r8w" (16, 8)
    (o.U.Config.rf_read_ports, o.U.Config.rf_write_ports);
  Alcotest.(check int) "8 BEUs" 8 b.U.Config.clusters;
  Alcotest.(check int) "32-entry FIFOs" 32 b.U.Config.cluster_entries;
  Alcotest.(check int) "2-entry window" 2 b.U.Config.sched_window;
  Alcotest.(check int) "2 FUs per BEU" 2 b.U.Config.fus_per_cluster;
  Alcotest.(check int) "8-entry external RF" 8 b.U.Config.ext_regs;
  Alcotest.(check (pair int int)) "braid 6r3w" (6, 3)
    (b.U.Config.rf_read_ports, b.U.Config.rf_write_ports);
  Alcotest.(check int) "braid 2 bypass values" 2 b.U.Config.bypass_per_cycle;
  Alcotest.(check int) "400-cycle memory" 400 o.U.Config.mem.U.Config.memory_latency

let suite =
  ( "roundtrip-config",
    [
      Alcotest.test_case "every op shape round-trips" `Quick test_every_shape_roundtrips;
      QCheck_alcotest.to_alcotest qcheck_print_parse;
      Alcotest.test_case "scale_width invariants" `Quick test_scale_width_invariants;
      Alcotest.test_case "scale_width name" `Quick test_scale_width_idempotent_name;
      Alcotest.test_case "perfect frontend" `Quick test_perfect_frontend;
      Alcotest.test_case "Table 4 fidelity" `Quick test_table4_fidelity;
    ] )
