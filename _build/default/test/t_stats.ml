(* Tests for Braid_util.Stats and Histogram. *)

let feq = Alcotest.(check (float 1e-9))
let feq_loose = Alcotest.(check (float 1e-6))

let test_mean () =
  feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  feq "mean single" 5.0 (Stats.mean [| 5.0 |]);
  feq "mean list" 2.5 (Stats.mean_list [ 2.0; 3.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let test_geomean () =
  feq_loose "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |]);
  feq_loose "geomean of equal" 3.0 (Stats.geomean [| 3.0; 3.0; 3.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive input") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stddev () =
  feq_loose "stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]);
  feq "stddev constant" 0.0 (Stats.stddev [| 3.0; 3.0 |])

let test_median () =
  feq "odd median" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  feq "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  let arr = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median arr);
  Alcotest.(check (array (float 0.0))) "input unchanged" [| 3.0; 1.0; 2.0 |] arr

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  feq "p50" 50.0 (Stats.percentile xs 50.0);
  feq "p100" 100.0 (Stats.percentile xs 100.0);
  feq "p0" 1.0 (Stats.percentile xs 0.0)

let test_min_max () =
  feq "min" (-3.0) (Stats.minimum [| 2.0; -3.0; 7.0 |]);
  feq "max" 7.0 (Stats.maximum [| 2.0; -3.0; 7.0 |])

let test_weighted_mean () =
  feq "weighted" 3.0 (Stats.weighted_mean [| (1.0, 1.0); (1.0, 5.0) |]);
  feq "skewed" 5.0 (Stats.weighted_mean [| (0.0, 1.0); (2.0, 5.0) |])

let test_ratio () =
  feq "ratio" 2.0 (Stats.ratio 4.0 2.0);
  Alcotest.check_raises "zero divisor" (Invalid_argument "Stats.ratio: zero divisor")
    (fun () -> ignore (Stats.ratio 1.0 0.0))

let test_running () =
  let r = Stats.Running.create () in
  feq "empty mean" 0.0 (Stats.Running.mean r);
  Stats.Running.add r 2.0;
  Stats.Running.add r 4.0;
  Alcotest.(check int) "count" 2 (Stats.Running.count r);
  feq "sum" 6.0 (Stats.Running.sum r);
  feq "mean" 3.0 (Stats.Running.mean r);
  feq "min" 2.0 (Stats.Running.min r);
  feq "max" 4.0 (Stats.Running.max r)

let test_histogram_counts () =
  let h = Histogram.create () in
  Histogram.add h 1;
  Histogram.add h 1;
  Histogram.add h 3;
  Alcotest.(check int) "total" 3 (Histogram.count h);
  Alcotest.(check int) "eq 1" 2 (Histogram.count_eq h 1);
  Alcotest.(check int) "le 2" 2 (Histogram.count_le h 2);
  feq "fraction eq" (2.0 /. 3.0) (Histogram.fraction_eq h 1);
  feq "fraction le" 1.0 (Histogram.fraction_le h 3);
  feq_loose "mean" (5.0 /. 3.0) (Histogram.mean h);
  Alcotest.(check int) "max" 3 (Histogram.max_value h)

let test_histogram_add_many () =
  let h = Histogram.create () in
  Histogram.add_many h 2 5;
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "eq" 5 (Histogram.count_eq h 2)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1;
  Histogram.add b 1;
  Histogram.add b 2;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged total" 3 (Histogram.count m);
  Alcotest.(check int) "merged eq 1" 2 (Histogram.count_eq m 1);
  Alcotest.(check int) "a untouched" 1 (Histogram.count a)

let test_histogram_empty () =
  let h = Histogram.create () in
  feq "fraction of empty" 0.0 (Histogram.fraction_le h 10);
  feq "mean of empty" 0.0 (Histogram.mean h)

let qcheck_median_bounds =
  QCheck.Test.make ~name:"median within min..max" ~count:300
    QCheck.(array_of_size (Gen.int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Stats.median xs in
      m >= Stats.minimum xs && m <= Stats.maximum xs)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:300
    QCheck.(
      pair
        (array_of_size (Gen.int_range 1 40) (float_range (-1e6) 1e6))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi)

let qcheck_histogram_fraction =
  QCheck.Test.make ~name:"histogram fractions in [0,1] and monotone" ~count:300
    QCheck.(small_list (int_range 0 50))
    (fun vs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) vs;
      let f10 = Histogram.fraction_le h 10 and f20 = Histogram.fraction_le h 20 in
      f10 >= 0.0 && f10 <= 1.0 && f10 <= f20)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "mean empty" `Quick test_mean_empty;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "median" `Quick test_median;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "min max" `Quick test_min_max;
      Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
      Alcotest.test_case "ratio" `Quick test_ratio;
      Alcotest.test_case "running" `Quick test_running;
      Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
      Alcotest.test_case "histogram add_many" `Quick test_histogram_add_many;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
      QCheck_alcotest.to_alcotest qcheck_median_bounds;
      QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
      QCheck_alcotest.to_alcotest qcheck_histogram_fraction;
    ] )
