(* Timing microtests: small handcrafted programs whose cycle behaviour is
   predictable enough to pin down individual mechanisms — LSQ forwarding,
   port contention, bypass capacity, in-order head blocking, and I-cache
   pressure. *)

module C = Braid_core
module U = Braid_uarch
module B = Braid_workload.Build

let r n = Reg.ext Reg.Cint n
let i op = Instr.make op

let block id ?fallthrough instrs =
  { Program.id; instrs = Array.of_list instrs; fallthrough }

let run_prog ?(cfg = U.Config.ooo_8wide) ?(init_mem = []) prog =
  let out = Emulator.run ~init_mem prog in
  U.Pipeline.run cfg (Option.get out.Emulator.trace)

(* --- LSQ: store-to-load forwarding beats the cache ---------------------- *)

let forwarding_program ~same_addr =
  let load_off = if same_addr then 0 else 512 in
  Program.make
    [
      block 0
        [
          i (Op.Movi (r 1, 0x1000L));
          i (Op.Movi (r 2, 7L));
          i (Op.Store (r 2, r 1, 0, 0));
          i (Op.Load (r 3, r 1, load_off, 0));
          i (Op.Ibini (Op.Add, r 4, r 3, 1));
          i Op.Halt;
        ];
    ]
    ~entry:0

let test_forwarding_faster_than_cache () =
  (* make the cache path slow by keeping the D-cache cold *)
  let fwd = run_prog (forwarding_program ~same_addr:true) in
  let cold = run_prog (forwarding_program ~same_addr:false) in
  Alcotest.(check bool)
    (Printf.sprintf "forwarded %d < cold cache %d cycles" fwd.U.Pipeline.cycles
       cold.U.Pipeline.cycles)
    true
    (fwd.U.Pipeline.cycles < cold.U.Pipeline.cycles)

let test_load_waits_for_conflicting_store () =
  (* a load to the same address cannot complete before the store's data
     is ready: put a multiply chain in front of the store data *)
  let prog =
    Program.make
      [
        block 0
          [
            i (Op.Movi (r 1, 0x1000L));
            i (Op.Movi (r 2, 3L));
            i (Op.Ibin (Op.Mul, r 2, r 2, r 2));
            i (Op.Ibin (Op.Mul, r 2, r 2, r 2));
            i (Op.Ibin (Op.Mul, r 2, r 2, r 2));
            i (Op.Store (r 2, r 1, 0, 0));
            i (Op.Load (r 3, r 1, 0, 0));
            i Op.Halt;
          ];
      ]
      ~entry:0
  in
  let out = Emulator.run prog in
  Alcotest.(check bool) "load saw the store's value" true
    (Int64.equal 6561L (Emulator.read_ext out.Emulator.state (r 3)));
  let res = run_prog prog in
  (* three dependent multiplies at 3 cycles each bound the whole run *)
  Alcotest.(check bool) "cycles include the multiply chain" true
    (res.U.Pipeline.cycles >= 9)

(* --- read-port contention ---------------------------------------------- *)

let port_hungry_program () =
  (* eight independent two-source adds per "wave": with 16 read ports they
     can all issue together; with 2 they trickle out *)
  let b = B.create () in
  let srcs = Array.init 8 (fun k -> B.const b Reg.Cint (Int64.of_int k)) in
  for _ = 1 to 12 do
    for k = 0 to 7 do
      let d = B.int_reg b in
      B.emit b (Op.Ibin (Op.Add, d, srcs.(k), srcs.((k + 1) mod 8)))
    done
  done;
  B.finish b

let test_read_ports_bind () =
  let prog, init_mem = port_hungry_program () in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let run ports =
    run_prog
      ~cfg:
        { U.Config.ooo_8wide with
          U.Config.name = Printf.sprintf "ooo-rp%d" ports;
          rf_read_ports = ports }
      ~init_mem conv
  in
  let wide = run 16 and narrow = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2 ports (%d cycles) slower than 16 (%d)" narrow.U.Pipeline.cycles
       wide.U.Pipeline.cycles)
    true
    (narrow.U.Pipeline.cycles > wide.U.Pipeline.cycles)

let dependent_pairs_program () =
  (* producer/consumer pairs: consumers read results that, without bypass,
     only become visible after a register-file write *)
  let b = B.create () in
  for k = 0 to 31 do
    let x = B.const b Reg.Cint (Int64.of_int k) in
    let y = B.int_reg b in
    B.emit b (Op.Ibini (Op.Add, y, x, 1));
    let z = B.int_reg b in
    B.emit b (Op.Ibini (Op.Add, z, y, 1))
  done;
  B.finish b

let test_write_ports_bind () =
  (* write ports matter to consumers once the bypass cannot carry the
     value: visibility is writeback + 1 *)
  let prog, init_mem = dependent_pairs_program () in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let run ports =
    run_prog
      ~cfg:
        { U.Config.ooo_8wide with
          U.Config.name = Printf.sprintf "ooo-wp%d" ports;
          rf_write_ports = ports;
          bypass_per_cycle = 0 }
      ~init_mem conv
  in
  Alcotest.(check bool) "1 write port slower than 8 (no bypass)" true
    ((run 1).U.Pipeline.cycles > (run 8).U.Pipeline.cycles)

let test_bypass_capacity_matters () =
  (* dependent pairs: consumer wants the producer's value immediately; with
     no bypass it must wait for writeback *)
  let b = B.create () in
  for k = 0 to 31 do
    let x = B.const b Reg.Cint (Int64.of_int k) in
    let y = B.int_reg b in
    B.emit b (Op.Ibini (Op.Add, y, x, 1))
  done;
  let prog, init_mem = B.finish b in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let run n =
    run_prog
      ~cfg:
        { U.Config.ooo_8wide with
          U.Config.name = Printf.sprintf "ooo-by%d" n;
          bypass_per_cycle = n }
      ~init_mem conv
  in
  Alcotest.(check bool) "no bypass is slower" true
    ((run 0).U.Pipeline.cycles >= (run 8).U.Pipeline.cycles)

(* --- in-order head blocking --------------------------------------------- *)

let test_in_order_head_blocks () =
  (* two independent multiply chains: the OoO core overlaps them, the
     in-order core executes the second only after the first drains past
     its head (commit is in-order on both, so only overlapped *latency*
     distinguishes the cores) *)
  let b = B.create () in
  let x = B.const b Reg.Cint 3L in
  let y = B.const b Reg.Cint 5L in
  for _ = 1 to 12 do
    B.emit b (Op.Ibin (Op.Mul, x, x, x))
  done;
  for _ = 1 to 12 do
    B.emit b (Op.Ibin (Op.Mul, y, y, y))
  done;
  let prog, init_mem = B.finish b in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let io = run_prog ~cfg:U.Config.in_order_8wide ~init_mem conv in
  let oo = run_prog ~cfg:U.Config.ooo_8wide ~init_mem conv in
  Alcotest.(check bool)
    (Printf.sprintf "ooo (%d) beats in-order (%d) under a head block"
       oo.U.Pipeline.cycles io.U.Pipeline.cycles)
    true
    (oo.U.Pipeline.cycles < io.U.Pipeline.cycles)

(* --- braid distribute: single free BEU serialises braids ----------------- *)

let test_one_beu_serialises () =
  let prog, init_mem =
    Braid_workload.Spec.generate (Braid_workload.Spec.find "swim") ~seed:1 ~scale:1500
  in
  let braided = (C.Transform.run prog).C.Transform.program in
  let out = Emulator.run ~init_mem braided in
  let trace = Option.get out.Emulator.trace in
  let run n =
    U.Pipeline.run
      { U.Config.braid_8wide with
        U.Config.name = Printf.sprintf "braid-n%d" n;
        clusters = n }
      trace
  in
  let one = run 1 and eight = run 8 in
  Alcotest.(check bool) "one BEU at least 2x slower than eight" true
    (one.U.Pipeline.cycles > 2 * eight.U.Pipeline.cycles)

(* --- I-cache pressure ----------------------------------------------------- *)

let test_icache_pressure () =
  (* a straight-line program bigger than the 64KB L1I: the first pass
     must miss even after warm-up filled what fits *)
  let b = B.create () in
  let x = B.const b Reg.Cint 1L in
  for _ = 1 to 20_000 do
    B.emit b (Op.Ibini (Op.Add, x, x, 1))
  done;
  let prog, init_mem = B.finish b in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let res = run_prog ~init_mem conv in
  Alcotest.(check bool)
    (Printf.sprintf "L1I misses occur (%d)" res.U.Pipeline.l1i_misses)
    true
    (res.U.Pipeline.l1i_misses > 0)

(* --- fetch width bounds throughput --------------------------------------- *)

let test_fetch_width_bounds () =
  let b = B.create () in
  for k = 0 to 255 do
    let d = B.int_reg b in
    B.emit b (Op.Movi (d, Int64.of_int k))
  done;
  let prog, init_mem = B.finish b in
  let conv = (C.Transform.conventional prog).C.Extalloc.program in
  let run w =
    run_prog ~cfg:(U.Config.scale_width U.Config.ooo_8wide w) ~init_mem conv
  in
  let narrow = run 4 and wide = run 16 in
  Alcotest.(check bool) "4-wide slower than 16-wide on independent code" true
    (narrow.U.Pipeline.cycles > wide.U.Pipeline.cycles);
  (* 257 instructions at 4/cycle need at least 64 fetch cycles *)
  Alcotest.(check bool) "width lower bound respected" true
    (narrow.U.Pipeline.cycles >= 64)

let suite =
  ( "timing",
    [
      Alcotest.test_case "store-to-load forwarding" `Quick test_forwarding_faster_than_cache;
      Alcotest.test_case "load waits for store data" `Quick test_load_waits_for_conflicting_store;
      Alcotest.test_case "read ports bind" `Quick test_read_ports_bind;
      Alcotest.test_case "write ports bind" `Quick test_write_ports_bind;
      Alcotest.test_case "bypass capacity" `Quick test_bypass_capacity_matters;
      Alcotest.test_case "in-order head block" `Quick test_in_order_head_blocks;
      Alcotest.test_case "one BEU serialises" `Quick test_one_beu_serialises;
      Alcotest.test_case "icache pressure" `Quick test_icache_pressure;
      Alcotest.test_case "fetch width bounds" `Quick test_fetch_width_bounds;
    ] )
