(* Tests for register allocation and the whole braid transformation,
   including the central behaviour-preservation properties. *)

module C = Braid_core
module Spec = Braid_workload.Spec

let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let fingerprint ?(init_mem = []) prog =
  let out = Emulator.run ~max_steps:200_000 ~trace:false ~init_mem prog in
  Alcotest.(check bool) "halts" true (out.Emulator.stop = Trace.Halted);
  Emulator.memory_fingerprint out.Emulator.state

(* --- Extalloc --- *)

let test_extalloc_removes_virt () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, _ = Spec.generate p ~seed:1 ~scale:1500 in
      let res = C.Extalloc.allocate prog in
      Alcotest.(check int) (p.Spec.name ^ " no virtual registers") (-1)
        (Program.max_virt_index res.C.Extalloc.program))
    [ Spec.find "gcc"; Spec.find "swim"; Spec.find "mcf" ]

let test_extalloc_preserves_semantics () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, init_mem = Spec.generate p ~seed:2 ~scale:1500 in
      Alcotest.(check i64)
        (p.Spec.name ^ " conventional binary equivalent")
        (fingerprint ~init_mem prog)
        (fingerprint ~init_mem (C.Extalloc.allocate prog).C.Extalloc.program))
    Spec.all

let test_extalloc_spills_under_pressure () =
  let prog, init_mem = Spec.generate (Spec.find "mgrid") ~seed:1 ~scale:1500 in
  let tight = C.Extalloc.allocate ~usable:2 prog in
  Alcotest.(check bool) "spills happen with 2 registers" true
    (tight.C.Extalloc.spilled > 0);
  Alcotest.(check i64) "spilled binary still equivalent"
    (fingerprint ~init_mem prog)
    (fingerprint ~init_mem tight.C.Extalloc.program)

let test_extalloc_usable_range () =
  let prog, _ = Spec.generate (Spec.find "gcc") ~seed:1 ~scale:1000 in
  Alcotest.(check bool) "usable=0 rejected" true
    (try
       ignore (C.Extalloc.allocate ~usable:0 prog);
       false
     with Invalid_argument _ -> true)

let qcheck_extalloc_equivalence =
  QCheck.Test.make ~name:"conventional allocation preserves behaviour" ~count:25
    QCheck.(pair (int_range 0 25) (int_range 0 500))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let res = C.Extalloc.allocate prog in
      let fp pr =
        Emulator.memory_fingerprint
          (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
      in
      Int64.equal (fp prog) (fp res.C.Extalloc.program))

(* --- Transform: the braid pass --- *)

let test_transform_preserves_semantics () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, init_mem = Spec.generate p ~seed:4 ~scale:1500 in
      let rep = C.Transform.run prog in
      Alcotest.(check i64)
        (p.Spec.name ^ " braid binary equivalent")
        (fingerprint ~init_mem prog)
        (fingerprint ~init_mem rep.C.Transform.program))
    Spec.all

let qcheck_transform_equivalence =
  QCheck.Test.make ~name:"braid transformation preserves behaviour" ~count:40
    QCheck.(pair (int_range 0 25) (int_range 0 1000))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1200 in
      let rep = C.Transform.run prog in
      let fp pr =
        Emulator.memory_fingerprint
          (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
      in
      Int64.equal (fp prog) (fp rep.C.Transform.program))

let qcheck_transform_tight_registers =
  QCheck.Test.make
    ~name:"braid transformation equivalent under tight register budgets" ~count:20
    QCheck.(triple (int_range 0 25) (int_range 0 200) (int_range 1 6))
    (fun (pidx, seed, usable) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1000 in
      let rep = C.Transform.run ~ext_usable:usable prog in
      let fp pr =
        Emulator.memory_fingerprint
          (Emulator.run ~max_steps:100_000 ~trace:false ~init_mem pr).Emulator.state
      in
      Int64.equal (fp prog) (fp rep.C.Transform.program))

let braided_programs =
  lazy
    (List.map
       (fun (p : Spec.profile) ->
         let prog, _ = Spec.generate p ~seed:1 ~scale:1500 in
         (p.Spec.name, C.Transform.run prog))
       Spec.all)

let for_all_braided check =
  List.iter
    (fun (name, rep) -> check name rep.C.Transform.program)
    (Lazy.force braided_programs)

let test_annotations_complete () =
  for_all_braided (fun name prog ->
      Program.iter_instrs
        (fun _ _ ins ->
          Alcotest.(check bool) (name ^ " braid id assigned") true
            (ins.Instr.annot.Instr.braid_id >= 0))
        prog)

let test_s_bits_match_id_transitions () =
  for_all_braided (fun name prog ->
      Array.iter
        (fun (b : Program.block) ->
          Array.iteri
            (fun k ins ->
              let expected =
                k = 0
                || ins.Instr.annot.Instr.braid_id
                   <> b.Program.instrs.(k - 1).Instr.annot.Instr.braid_id
              in
              Alcotest.(check bool) (name ^ " S bit") expected
                ins.Instr.annot.Instr.braid_start)
            b.Program.instrs)
        prog.Program.blocks)

let test_braids_contiguous_within_block () =
  for_all_braided (fun name prog ->
      Array.iter
        (fun (b : Program.block) ->
          let seen = Hashtbl.create 8 in
          let last = ref min_int in
          Array.iter
            (fun ins ->
              let id = ins.Instr.annot.Instr.braid_id in
              if id <> !last then begin
                Alcotest.(check bool) (name ^ " braids contiguous") false
                  (Hashtbl.mem seen id);
                Hashtbl.add seen id ();
                last := id
              end)
            b.Program.instrs)
        prog.Program.blocks)

let test_no_internal_values_cross_blocks () =
  for_all_braided (fun name prog ->
      let live = C.Dataflow.liveness prog in
      Array.iteri
        (fun bid _ ->
          C.Regset.Set.iter
            (fun (r : Reg.t) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s no internal live into block %d" name bid)
                false
                (r.Reg.space = Reg.Intern))
            live.C.Dataflow.live_in.(bid))
        prog.Program.blocks)

let test_internal_regs_within_bound () =
  for_all_braided (fun name prog ->
      Program.iter_instrs
        (fun _ _ ins ->
          List.iter
            (fun (r : Reg.t) ->
              if r.Reg.space = Reg.Intern then
                Alcotest.(check bool) (name ^ " internal index < 8") true
                  (r.Reg.idx < Reg.num_internal))
            (Instr.defs ins @ Instr.uses ins))
        prog)

let test_internal_values_stay_in_braid () =
  (* a use of internal register tN must resolve to a definition of tN
     earlier in the same braid, within the same block *)
  for_all_braided (fun name prog ->
      Array.iter
        (fun (b : Program.block) ->
          let current_defs = Hashtbl.create 8 in
          let current_braid = ref (-1) in
          Array.iter
            (fun ins ->
              let id = ins.Instr.annot.Instr.braid_id in
              if id <> !current_braid then begin
                Hashtbl.reset current_defs;
                current_braid := id
              end;
              List.iter
                (fun (r : Reg.t) ->
                  if r.Reg.space = Reg.Intern then
                    Alcotest.(check bool)
                      (name ^ " internal use has in-braid producer") true
                      (Hashtbl.mem current_defs r.Reg.idx))
                (Instr.uses ins);
              List.iter
                (fun (r : Reg.t) ->
                  if r.Reg.space = Reg.Intern then
                    Hashtbl.replace current_defs r.Reg.idx ())
                (Instr.defs ins))
            b.Program.instrs)
        prog.Program.blocks)

let test_terminators_stay_last () =
  for_all_braided (fun name prog ->
      Array.iter
        (fun (b : Program.block) ->
          Array.iteri
            (fun k ins ->
              match ins.Instr.op with
              | Op.Branch _ | Op.Jump _ | Op.Halt ->
                  Alcotest.(check int) (name ^ " terminator terminal")
                    (Array.length b.Program.instrs - 1)
                    k
              | _ -> ())
            b.Program.instrs)
        prog.Program.blocks)

let test_dynamic_length_reasonable () =
  (* braid scheduling must not blow up code size: dynamic length within a
     few percent of the conventional binary (spill code only) *)
  List.iter
    (fun (p : Spec.profile) ->
      let prog, init_mem = Spec.generate p ~seed:1 ~scale:1500 in
      let dyn pr =
        (Emulator.run ~max_steps:200_000 ~trace:false ~init_mem pr).Emulator.dynamic_count
      in
      let conv = dyn (C.Extalloc.allocate prog).C.Extalloc.program in
      let braid = dyn (C.Transform.run prog).C.Transform.program in
      Alcotest.(check bool)
        (Printf.sprintf "%s dyn length close (conv %d vs braid %d)" p.Spec.name conv braid)
        true
        (float_of_int braid < 1.10 *. float_of_int conv))
    [ Spec.find "gcc"; Spec.find "mgrid"; Spec.find "vpr"; Spec.find "lucas" ]

let test_split_counts_small () =
  let total_braids = ref 0 and total_splits = ref 0 in
  List.iter
    (fun (p : Spec.profile) ->
      let prog, _ = Spec.generate p ~seed:1 ~scale:1500 in
      let rep = C.Transform.run prog in
      total_braids := !total_braids + rep.C.Transform.braids;
      total_splits :=
        !total_splits + rep.C.Transform.splits_working_set
        + rep.C.Transform.splits_ordering)
    Spec.all;
  let frac = float_of_int !total_splits /. float_of_int !total_braids in
  Alcotest.(check bool)
    (Printf.sprintf "splits are rare (%.2f%%)" (100. *. frac))
    true (frac < 0.08)

let suite =
  ( "transform",
    [
      Alcotest.test_case "extalloc removes virtuals" `Quick test_extalloc_removes_virt;
      Alcotest.test_case "extalloc preserves semantics" `Slow test_extalloc_preserves_semantics;
      Alcotest.test_case "extalloc spills under pressure" `Quick test_extalloc_spills_under_pressure;
      Alcotest.test_case "extalloc usable range" `Quick test_extalloc_usable_range;
      QCheck_alcotest.to_alcotest qcheck_extalloc_equivalence;
      Alcotest.test_case "transform preserves semantics" `Slow test_transform_preserves_semantics;
      QCheck_alcotest.to_alcotest qcheck_transform_equivalence;
      QCheck_alcotest.to_alcotest qcheck_transform_tight_registers;
      Alcotest.test_case "annotations complete" `Quick test_annotations_complete;
      Alcotest.test_case "S bits match transitions" `Quick test_s_bits_match_id_transitions;
      Alcotest.test_case "braids contiguous" `Quick test_braids_contiguous_within_block;
      Alcotest.test_case "internals never cross blocks" `Quick test_no_internal_values_cross_blocks;
      Alcotest.test_case "internal register bound" `Quick test_internal_regs_within_bound;
      Alcotest.test_case "internal values stay in braid" `Quick test_internal_values_stay_in_braid;
      Alcotest.test_case "terminators stay last" `Quick test_terminators_stay_last;
      Alcotest.test_case "dynamic length reasonable" `Quick test_dynamic_length_reasonable;
      Alcotest.test_case "split counts small" `Quick test_split_counts_small;
    ] )
