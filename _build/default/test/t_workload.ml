(* Tests for the program builder DSL and the 26 benchmark generators. *)

let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal
module Build = Braid_workload.Build
module Spec = Braid_workload.Spec
module Kernels = Braid_workload.Kernels

(* --- Build DSL --- *)

let test_counted_loop () =
  let b = Build.create () in
  let out, _, _ = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  let acc = Build.const b Reg.Cint 0L in
  Build.counted_loop b ~count:7 (fun b _i -> Build.emit b (Op.Ibini (Op.Add, acc, acc, 1)));
  Build.emit b (Op.Store (acc, out, 0, 0));
  let prog, init_mem = Build.finish b in
  let outcome = Emulator.run ~init_mem prog in
  Alcotest.(check bool) "halts" true (outcome.Emulator.stop = Trace.Halted);
  let base =
    (* the array base is the first allocation: find it from the store *)
    Emulator.memory_image outcome.Emulator.state
  in
  match base with
  | [ (_, v) ] -> Alcotest.(check i64) "loop ran 7 times" 7L v
  | _ -> Alcotest.fail "expected exactly one stored word"

let test_loop_induction_values () =
  let b = Build.create () in
  let arr, region, base = Build.alloc_array b ~words:5 ~init:(fun _ -> 0L) in
  Build.counted_loop b ~count:5 (fun b iv ->
      let off = Build.int_reg b in
      Build.emit b (Op.Ibini (Op.Shl, off, iv, 3));
      let addr = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, addr, arr, off));
      Build.emit b (Op.Store (iv, addr, 0, region)));
  let prog, init_mem = Build.finish b in
  let outcome = Emulator.run ~init_mem prog in
  for k = 1 to 4 do
    Alcotest.(check i64)
      (Printf.sprintf "arr[%d] = %d" k k)
      (Int64.of_int k)
      (Emulator.read_mem outcome.Emulator.state (base + (8 * k)))
  done

let test_if_diamond_both_arms () =
  let run_with v =
    let b = Build.create () in
    let out, region, base = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
    let x = Build.const b Reg.Cint v in
    Build.if_diamond b Op.Gt x
      ~then_:(fun b ->
        let c = Build.const b Reg.Cint 111L in
        Build.emit b (Op.Store (c, out, 0, region)))
      ~else_:(fun b ->
        let c = Build.const b Reg.Cint 222L in
        Build.emit b (Op.Store (c, out, 0, region)));
    let prog, init_mem = Build.finish b in
    let outcome = Emulator.run ~init_mem prog in
    Emulator.read_mem outcome.Emulator.state base
  in
  Alcotest.(check i64) "then arm" 111L (run_with 5L);
  Alcotest.(check i64) "else arm" 222L (run_with (-5L))

let test_while_pos_fuel () =
  (* condition always true: the fuel bound must still terminate the loop *)
  let b = Build.create () in
  let count = Build.const b Reg.Cint 0L in
  Build.while_pos b ~fuel:13
    ~cond_reg:(fun b -> Build.const b Reg.Cint 1L)
    (fun b -> Build.emit b (Op.Ibini (Op.Add, count, count, 1)));
  let out, region, base = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  Build.emit b (Op.Store (count, out, 0, region));
  let prog, init_mem = Build.finish b in
  let outcome = Emulator.run ~init_mem prog in
  Alcotest.(check bool) "halts" true (outcome.Emulator.stop = Trace.Halted);
  Alcotest.(check i64) "fuel bound respected" 13L
    (Emulator.read_mem outcome.Emulator.state base)

let test_alloc_array_init () =
  let b = Build.create () in
  let _, _, base = Build.alloc_array b ~words:3 ~init:(fun k -> Int64.of_int (10 * k)) in
  let prog, init_mem = Build.finish b in
  Alcotest.(check bool) "zero entries omitted" true
    (not (List.mem_assoc base init_mem));
  Alcotest.(check i64) "init values recorded" 20L (List.assoc (base + 16) init_mem);
  ignore prog

let test_regions_distinct () =
  let b = Build.create () in
  let _, ra, base_a = Build.alloc_array b ~words:4 ~init:(fun _ -> 0L) in
  let _, rb, base_b = Build.alloc_array b ~words:4 ~init:(fun _ -> 0L) in
  Alcotest.(check bool) "distinct regions" true (ra <> rb);
  Alcotest.(check bool) "non-overlapping addresses" true
    (base_b >= base_a + (8 * 4));
  ignore (Build.finish b)

let test_terminator_discipline () =
  let b = Build.create () in
  Alcotest.(check bool) "emit rejects terminators" true
    (try
       Build.emit b Op.Halt;
       false
     with Invalid_argument _ -> true)

(* --- the 26 SPEC stand-ins --- *)

let test_all_profiles_listed () =
  Alcotest.(check int) "26 programs" 26 (List.length Spec.all);
  Alcotest.(check int) "12 integer" 12 (List.length Spec.integer);
  Alcotest.(check int) "14 floating-point" 14 (List.length Spec.floating)

let test_find () =
  Alcotest.(check string) "find gcc" "gcc" (Spec.find "gcc").Spec.name;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Spec.find "nosuch");
       false
     with Not_found -> true)

let test_all_generate_and_halt () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, init_mem = Spec.generate p ~seed:3 ~scale:3000 in
      let out = Emulator.run ~max_steps:200_000 ~trace:false ~init_mem prog in
      Alcotest.(check bool) (p.Spec.name ^ " halts") true (out.Emulator.stop = Trace.Halted);
      Alcotest.(check bool)
        (p.Spec.name ^ " length near scale")
        true
        (out.Emulator.dynamic_count > 1000 && out.Emulator.dynamic_count < 40_000))
    Spec.all

let test_generation_deterministic () =
  let p = Spec.find "swim" in
  let run () =
    let prog, init_mem = Spec.generate p ~seed:11 ~scale:2000 in
    Emulator.memory_fingerprint (Emulator.run ~init_mem prog).Emulator.state
  in
  Alcotest.(check i64) "same seed same result" (run ()) (run ())

let test_seeds_differ () =
  let p = Spec.find "gzip" in
  let fp seed =
    let prog, init_mem = Spec.generate p ~seed ~scale:2000 in
    Emulator.memory_fingerprint (Emulator.run ~init_mem prog).Emulator.state
  in
  Alcotest.(check bool) "different seeds differ" false (Int64.equal (fp 1) (fp 2))

let test_scale_scales () =
  let p = Spec.find "gcc" in
  let dyn scale =
    let prog, init_mem = Spec.generate p ~seed:1 ~scale in
    (Emulator.run ~max_steps:400_000 ~trace:false ~init_mem prog).Emulator.dynamic_count
  in
  let small = dyn 2000 and big = dyn 16_000 in
  Alcotest.(check bool) "bigger scale, longer run" true (big > 3 * small)

let test_fp_benchmarks_use_fp () =
  List.iter
    (fun (p : Spec.profile) ->
      let prog, _ = Spec.generate p ~seed:1 ~scale:2000 in
      let fp_ops = ref 0 in
      Program.iter_instrs
        (fun _ _ ins -> if Op.is_fp ins.Instr.op then incr fp_ops)
        prog;
      if p.Spec.cls = Spec.Fp_bench then
        Alcotest.(check bool) (p.Spec.name ^ " has fp ops") true (!fp_ops > 0))
    Spec.all

let qcheck_generators_valid =
  QCheck.Test.make ~name:"random (profile, seed) generates valid halting programs"
    ~count:40
    QCheck.(pair (int_range 0 25) (int_range 0 1000))
    (fun (pidx, seed) ->
      let p = List.nth Spec.all pidx in
      let prog, init_mem = Spec.generate p ~seed ~scale:1500 in
      (* Program.make already validated structure; run to completion *)
      let out = Emulator.run ~max_steps:100_000 ~trace:false ~init_mem prog in
      out.Emulator.stop = Trace.Halted)

let suite =
  ( "workload",
    [
      Alcotest.test_case "counted loop" `Quick test_counted_loop;
      Alcotest.test_case "loop induction values" `Quick test_loop_induction_values;
      Alcotest.test_case "if diamond" `Quick test_if_diamond_both_arms;
      Alcotest.test_case "while_pos fuel" `Quick test_while_pos_fuel;
      Alcotest.test_case "alloc_array init" `Quick test_alloc_array_init;
      Alcotest.test_case "regions distinct" `Quick test_regions_distinct;
      Alcotest.test_case "terminator discipline" `Quick test_terminator_discipline;
      Alcotest.test_case "26 profiles" `Quick test_all_profiles_listed;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "all generate and halt" `Slow test_all_generate_and_halt;
      Alcotest.test_case "deterministic" `Quick test_generation_deterministic;
      Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
      Alcotest.test_case "scale scales" `Quick test_scale_scales;
      Alcotest.test_case "fp benchmarks use fp" `Quick test_fp_benchmarks_use_fp;
      QCheck_alcotest.to_alcotest qcheck_generators_valid;
    ] )
