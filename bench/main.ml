(* Benchmark harness: regenerates every table and figure of the paper.

   Default mode fans each experiment's per-benchmark simulation jobs out
   across a domain pool (--jobs), prints the same rows/series the paper
   reports, then a headline summary of paper-claim vs measured. Tables go to
   stdout and are byte-identical for every --jobs value; timing/telemetry
   goes to stderr. `--json FILE` additionally serializes the typed results.
   `--bechamel` instead times the computational kernels behind each
   experiment (one Bechamel test per table/figure). *)

module E = Braid_sim.Experiments
module S = Braid_sim.Suite
module Runner = Braid_sim.Runner
module Report = Braid_sim.Report

let list_experiments () =
  print_endline "Experiments (paper tables and figures):";
  List.iter (fun (e : E.t) -> Printf.printf "  %s\n" e.E.id) E.all

let selected only =
  match only with
  | [] -> E.all
  | ids ->
      List.map
        (fun id ->
          try E.find id
          with Not_found ->
            Printf.eprintf "unknown experiment id %s\n" id;
            exit 1)
        ids

let run_experiments ~scale ~jobs ~json only =
  let ctx = S.create_ctx () in
  let exps = selected only in
  let t0 = Unix.gettimeofday () in
  let results = Runner.run_experiments ~ctx ~jobs ~scale exps in
  let wall = Unix.gettimeofday () -. t0 in
  (* --json - claims stdout for the document; keep it valid JSON *)
  let quiet = json = Some "-" in
  List.iter
    (fun ((r : E.result), (st : Runner.stats)) ->
      if not quiet then begin
        print_string (Report.render_full r);
        print_newline ()
      end;
      Printf.eprintf "(%s: %.1fs of job time)\n%!" r.E.id st.Runner.wall_s)
    results;
  if not quiet then
    print_string (Report.headline_summary (List.map fst results));
  Printf.eprintf "(total: %.1fs wall-clock, %d jobs, %d domains recommended)\n%!"
    wall jobs
    (Runner.default_jobs ());
  Option.iter
    (fun file ->
      try
        Report.write_json ~file ~scale ~jobs
          (List.map (fun (r, st) -> (r, Some st)) results)
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write JSON: %s\n" msg;
        exit 1)
    json

(* Bechamel timing of each experiment's computational kernel at a small,
   fixed scale: how long regenerating that table/figure costs. Each run gets
   a fresh memoisation context so the cost measured is the real one. *)
let run_bechamel () =
  let open Bechamel in
  let scale = 2000 in
  let tests =
    List.map
      (fun (e : E.t) ->
        Test.make ~name:e.E.id
          (Staged.stage (fun () ->
               let ctx = Braid_sim.Suite.create_ctx () in
               ignore (E.run ctx ~scale e))))
      E.all
  in
  let test = Test.make_grouped ~name:"experiments" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results

(* --- command line --- *)

let scale_arg =
  let doc = "Target dynamic instruction count of each benchmark run." in
  Cmdliner.Arg.(value & opt int S.default_scale & info [ "scale" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Shorthand for --scale 4000." in
  Cmdliner.Arg.(value & flag & info [ "quick" ] ~doc)

let only_arg =
  let doc = "Comma-separated experiment ids to run (default: all)." in
  Cmdliner.Arg.(value & opt (list string) [] & info [ "only" ] ~docv:"IDS" ~doc)

let list_arg =
  let doc = "List experiment ids and exit." in
  Cmdliner.Arg.(value & flag & info [ "list" ] ~doc)

let bechamel_arg =
  let doc = "Time each experiment kernel with Bechamel instead of printing results." in
  Cmdliner.Arg.(value & flag & info [ "bechamel" ] ~doc)

(* --jobs must be a positive integer; 0/negative is a usage error *)
let positive_int : int Cmdliner.Arg.conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s is not a positive integer" s))
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Simulation jobs to run in parallel (one domain each); must be positive. \
     1 runs serially on the calling domain; the default is \
     Domain.recommended_domain_count. Output is identical for every value."
  in
  Cmdliner.Arg.(
    value
    & opt positive_int (Runner.default_jobs ())
    & info [ "jobs" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Serialize typed results and per-job telemetry to $(docv) (- for stdout)." in
  Cmdliner.Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let main scale quick only list bechamel jobs json =
  let scale = if quick then 4000 else scale in
  if list then list_experiments ()
  else if bechamel then run_bechamel ()
  else run_experiments ~scale ~jobs ~json only

let () =
  let info =
    Cmdliner.Cmd.info "bench" ~version:"1.0.0"
      ~doc:"Regenerate every table and figure of the paper's evaluation."
  in
  let term =
    Cmdliner.Term.(
      const main $ scale_arg $ quick_arg $ only_arg $ list_arg $ bechamel_arg
      $ jobs_arg $ json_arg)
  in
  exit (Cmdliner.Cmd.eval (Cmdliner.Cmd.v info term))
