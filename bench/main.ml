(* Benchmark harness: regenerates every table and figure of the paper.

   Default mode fans each experiment's per-benchmark simulation jobs out
   across a domain pool (--jobs), prints the same rows/series the paper
   reports, then a headline summary of paper-claim vs measured. Tables go to
   stdout and are byte-identical for every --jobs value; timing/telemetry
   goes to stderr. `--json FILE` additionally serializes the typed results.
   `--bechamel` instead times the computational kernels behind each
   experiment (one Bechamel test per table/figure). *)

module E = Braid_sim.Experiments
module S = Braid_sim.Suite
module Runner = Braid_sim.Runner
module Report = Braid_sim.Report
module Perf = Braid_sim.Perf
module Cli = Braid_cli.Cli_common

let list_experiments () =
  print_endline "Experiments (paper tables and figures):";
  List.iter (fun (e : E.t) -> Printf.printf "  %s\n" e.E.id) E.all

let selected only =
  (* ids were already validated by Cli_common.experiment_id_conv *)
  match only with [] -> E.all | ids -> List.map E.find ids

let run_experiments ~scale ~jobs ~json only =
  let ctx = S.create_ctx () in
  let exps = selected only in
  let t0 = Unix.gettimeofday () in
  let results = Runner.run_experiments ~ctx ~jobs ~scale exps in
  let wall = Unix.gettimeofday () -. t0 in
  (* --json - claims stdout for the document; keep it valid JSON *)
  let quiet = json = Some "-" in
  List.iter
    (fun ((r : E.result), (st : Runner.stats)) ->
      if not quiet then begin
        print_string (Report.render_full r);
        print_newline ()
      end;
      Printf.eprintf "(%s: %.1fs of job time)\n%!" r.E.id st.Runner.wall_s)
    results;
  if not quiet then
    print_string (Report.headline_summary (List.map fst results));
  Printf.eprintf "(total: %.1fs wall-clock, %d jobs, %d domains recommended)\n%!"
    wall jobs
    (Runner.default_jobs ());
  Option.iter
    (fun file ->
      try
        Report.write_json ~file ~scale ~jobs
          (List.map (fun (r, st) -> (r, Some st)) results)
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write JSON: %s\n" msg;
        exit 1)
    json

(* Simulator-throughput mode: time repeated timing-model runs on a fixed
   benchmark subset per core model and write the BENCH_*.json trajectory
   point (see Braid_sim.Perf). *)
let run_perf ~scale ~reps ~out ~baseline ~benches =
  (* names were already validated by Cli_common.bench_name_conv *)
  let benches = if benches = [] then Perf.default_benches else benches in
  let baseline =
    Option.map
      (fun file ->
        try Perf.load_baseline file
        with Sys_error msg | Failure msg ->
          Printf.eprintf "bench: cannot load baseline: %s\n" msg;
          exit 1)
      baseline
  in
  let ctx = S.create_ctx () in
  let entries = Perf.measure ctx ~scale ~reps ~benches in
  print_string (Perf.render entries);
  (try Perf.write_json ?baseline ~file:out ~scale ~reps entries
   with Sys_error msg ->
     Printf.eprintf "bench: cannot write %s: %s\n" out msg;
     exit 1);
  if out <> "-" then Printf.eprintf "(wrote %s)\n%!" out

(* Bechamel timing of each experiment's computational kernel at a small,
   fixed scale: how long regenerating that table/figure costs. Each run gets
   a fresh memoisation context so the cost measured is the real one. *)
let run_bechamel () =
  let open Bechamel in
  let scale = 2000 in
  let tests =
    List.map
      (fun (e : E.t) ->
        Test.make ~name:e.E.id
          (Staged.stage (fun () ->
               let ctx = Braid_sim.Suite.create_ctx () in
               ignore (E.run ctx ~scale e))))
      E.all
  in
  (* micro-kernels of the hot-path utilities behind the timing model *)
  let util_tests =
    [
      Test.make ~name:"util/calq-wheel"
        (Staged.stage (fun () ->
             let q = Braid_util.Calq.create ~horizon:512 in
             for c = 0 to 20_000 do
               Braid_util.Calq.add q (c + 3) c;
               Braid_util.Calq.add q (c + 400) c;
               Braid_util.Calq.drain q c ignore
             done));
      (* the CMP hot loop: two pipelines lock-stepped over the shared,
         coherent L2 — directory lookups ride the L1-miss path, so this
         tracks the coherence machinery's overhead across PRs *)
      Test.make ~name:"cmp/2-core-rate"
        (Staged.stage (fun () ->
             let ctx = Braid_sim.Suite.create_ctx () in
             let cfg = Braid_uarch.Config.braid_8wide in
             let cmp =
               Braid_uarch.Config.Cmp.make ~cores:2
                 ~workloads:[ "gzip"; "crafty" ] ()
             in
             ignore (Braid_cmp.Cmp_bench.run ctx ~seed:1 ~scale:2000 ~cfg cmp)));
      Test.make ~name:"util/paged-mem"
        (Staged.stage (fun () ->
             let m = Braid_util.Paged_mem.create () in
             for i = 0 to 20_000 do
               let addr = (i * 8) land 0xFFFF8 in
               Braid_util.Paged_mem.store m addr (Int64.of_int i);
               ignore (Braid_util.Paged_mem.load m addr)
             done));
    ]
  in
  let test =
    Test.make_grouped ~name:"experiments" (tests @ util_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        tbl)
    results

(* --- command line --- *)

let scale_arg = Cli.scale_arg ~default:S.default_scale

let quick_arg =
  let doc = "Shorthand for --scale 4000." in
  Cmdliner.Arg.(value & flag & info [ "quick" ] ~doc)

let only_arg = Cli.only_arg

let list_arg =
  let doc = "List experiment ids and exit." in
  Cmdliner.Arg.(value & flag & info [ "list" ] ~doc)

let bechamel_arg =
  let doc = "Time each experiment kernel with Bechamel instead of printing results." in
  Cmdliner.Arg.(value & flag & info [ "bechamel" ] ~doc)

let perf_arg =
  let doc =
    "Simulator-throughput mode: time --reps repeated timing-model runs of a \
     fixed benchmark subset on each core model and write simulated cycles \
     per second to --out (the BENCH_*.json trajectory format)."
  in
  Cmdliner.Arg.(value & flag & info [ "perf" ] ~doc)

let reps_arg = Cli.reps_arg ~default:5

let out_arg =
  let doc = "Output file for --perf mode (- for stdout)." in
  Cmdliner.Arg.(
    value & opt string "BENCH_sim.json" & info [ "out" ] ~docv:"FILE" ~doc)

let baseline_arg =
  let doc =
    "A previous --perf output to compare against: each entry of the new \
     file gains a speedup_vs_baseline ratio (new / old simulated \
     cycles per second)."
  in
  Cmdliner.Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let benches_arg =
  let doc =
    "Comma-separated benchmark names for --perf mode: workload names or \
     $(b,rv:FIXTURE) frontend entries (default: a fixed 6-benchmark \
     subset plus rv:fib and rv:crc32)."
  in
  (* bench_name_conv plus the rv: fixture namespace *)
  let perf_bench_conv : string Cmdliner.Arg.conv =
    let parse s =
      if Perf.is_rv s then
        let fixture = String.sub s 3 (String.length s - 3) in
        if Braid_rv.Fixtures.find fixture <> None then Ok s
        else
          Error
            (`Msg
               (Printf.sprintf "unknown rv fixture %S; valid names: %s" fixture
                  (String.concat ", " Braid_rv.Fixtures.names)))
      else
        match Cmdliner.Arg.conv_parser Cli.bench_name_conv s with
        | Ok (_ : string) -> Ok s
        | Error _ as e -> e
    in
    Cmdliner.Arg.conv ~docv:"BENCH" (parse, Format.pp_print_string)
  in
  Cmdliner.Arg.(
    value & opt (list perf_bench_conv) [] & info [ "benches" ] ~docv:"NAMES" ~doc)

let jobs_arg = Cli.jobs_arg ~default:(Runner.default_jobs ())

let json_arg =
  Cli.json_file_arg
    ~doc:"Serialize typed results and per-job telemetry to $(docv) (- for stdout)."

let main scale quick only list bechamel perf reps out baseline benches jobs json =
  let scale = if quick then 4000 else scale in
  if list then list_experiments ()
  else if bechamel then run_bechamel ()
  else if perf then run_perf ~scale ~reps ~out ~baseline ~benches
  else run_experiments ~scale ~jobs ~json only

let () =
  let info =
    Cmdliner.Cmd.info "bench" ~version:"1.0.0"
      ~doc:"Regenerate every table and figure of the paper's evaluation."
  in
  let term =
    Cmdliner.Term.(
      const main $ scale_arg $ quick_arg $ only_arg $ list_arg $ bechamel_arg
      $ perf_arg $ reps_arg $ out_arg $ baseline_arg $ benches_arg
      $ jobs_arg $ json_arg)
  in
  exit (Cmdliner.Cmd.eval (Cmdliner.Cmd.v info term))
