(* braidsim: command-line front end for the braid reproduction.

   Subcommands: list, stats, inspect, run, trace, experiment, sweep,
   disasm, complexity, fuzz, rv, serve, client.

   Every simulation subcommand builds a typed Braid_api.Request.t (see
   bin/ops.ml) and either executes it in-process (the one-shot path) or
   ships it to a `braidsim serve` daemon (`braidsim client ...`). Both
   paths run the same Braid_api.Exec engine and the same Ops.deliver
   renderer, so their output is byte-identical by construction. *)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module W = Braid_workload
module Cli = Braid_cli.Cli_common
module Api = Braid_api

let scale_arg = Ops.scale_arg
let seed_arg = Cli.seed_arg
let bench_arg = Cli.bench_arg

(* --- list --- *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %-5s %s\n" "name" "class" "description";
    List.iter
      (fun (p : W.Spec.profile) ->
        Printf.printf "%-10s %-5s %s\n" p.W.Spec.name
          (match p.W.Spec.cls with W.Spec.Int_bench -> "int" | W.Spec.Fp_bench -> "fp")
          p.W.Spec.description)
      W.Spec.all
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "list" ~doc:"List the 26 benchmark programs.")
    Cmdliner.Term.(const run $ const ())

(* --- stats --- *)

let stats_cmd =
  let run (profile : W.Spec.profile) seed scale =
    let program, init_mem = W.Spec.generate profile ~seed ~scale in
    let rep = C.Transform.run program in
    let stats = C.Braid_stats.summarize (C.Braid_stats.of_program rep.C.Transform.program) in
    Printf.printf "%s (%s)\n\n" profile.W.Spec.name profile.W.Spec.description;
    Printf.printf "static: %d blocks, %d instructions, %d braids\n"
      (Program.num_blocks program)
      (Program.num_static_instrs rep.C.Transform.program)
      rep.C.Transform.braids;
    Printf.printf "splits: %d working-set, %d ordering; spills: %d values\n\n"
      rep.C.Transform.splits_working_set rep.C.Transform.splits_ordering
      rep.C.Transform.alloc.C.Extalloc.spilled;
    Printf.printf "Table 1  braids/block          %.2f (%.2f excl. singles)\n"
      stats.C.Braid_stats.braids_per_block stats.C.Braid_stats.braids_per_block_multi;
    Printf.printf "Table 2  size / width          %.2f / %.2f (excl. singles)\n"
      stats.C.Braid_stats.avg_size_multi stats.C.Braid_stats.avg_width_multi;
    Printf.printf "Table 3  internals / in / out  %.2f / %.2f / %.2f (excl. singles)\n\n"
      stats.C.Braid_stats.avg_internals_multi stats.C.Braid_stats.avg_ext_inputs_multi
      stats.C.Braid_stats.avg_ext_outputs_multi;
    let out = Emulator.run ~max_steps:(50 * scale) ~init_mem rep.C.Transform.program in
    let vs = C.Value_stats.of_trace (Option.get out.Emulator.trace) in
    Printf.printf "§1.1     values used once      %s\n"
      (Render.pct (C.Value_stats.fanout_exactly vs 1));
    Printf.printf "         used at most twice    %s\n"
      (Render.pct (C.Value_stats.fanout_at_most vs 2));
    Printf.printf "         produced unused       %s\n"
      (Render.pct (C.Value_stats.unused_fraction vs));
    Printf.printf "         lifetime <= 32        %s\n"
      (Render.pct (C.Value_stats.lifetime_at_most vs 32))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "stats"
       ~doc:"Braid and value statistics for one benchmark (Tables 1-3, §1.1).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg)

(* --- inspect --- *)

let inspect_cmd =
  let block_arg =
    Cmdliner.Arg.(value & opt int 1 & info [ "block" ] ~docv:"ID" ~doc:"Block to print.")
  in
  let run (profile : W.Spec.profile) seed scale block =
    let program, _ = W.Spec.generate profile ~seed ~scale in
    let rep = C.Transform.run program in
    print_string (Disasm.block_with_braids rep.C.Transform.program block)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "inspect" ~doc:"Disassemble one block braid by braid (Fig 2 view).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg $ block_arg)

(* --- disasm --- *)

let disasm_cmd =
  let braided_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "braided" ] ~doc:"Disassemble the braid binary instead of the conventional one.")
  in
  let run (profile : W.Spec.profile) seed scale braided =
    let program, _ = W.Spec.generate profile ~seed ~scale in
    let binary =
      if braided then (C.Transform.run program).C.Transform.program
      else (C.Transform.conventional program).C.Extalloc.program
    in
    print_string (Disasm.program_asm binary)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "disasm"
       ~doc:
         "Emit a benchmark's binary as parseable assembly (re-assemble it \
          with the Asm module).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg $ braided_arg)

(* --- complexity --- *)

let complexity_cmd =
  let run () =
    List.iter
      (fun cfg -> print_endline (U.Complexity.describe cfg))
      U.Config.presets;
    let ooo = U.Complexity.of_config U.Config.ooo_8wide in
    let braid = U.Complexity.of_config U.Config.braid_8wide in
    let io = U.Complexity.of_config U.Config.in_order_8wide in
    Printf.printf
      "\nbraid total complexity is %.1fx the in-order design and 1/%.0f of the \
       out-of-order design\n"
      (U.Complexity.relative braid io)
      (U.Complexity.relative ooo braid)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "complexity"
       ~doc:"Static complexity indices of the five machines (§5.1).")
    Cmdliner.Term.(const run $ const ())

(* --- the one-shot simulation subcommands --- *)

let one_shot = function
  | Ops.Immediate f -> f ()
  | Ops.Call (request, out) -> (
      match Api.Exec.exec (Api.Exec.one_shot_env ()) request with
      | Ok payload -> Ops.deliver out payload
      | Error msg -> Ops.fail msg)

let run_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "run" ~doc:"Simulate one benchmark on one machine configuration.")
    Cmdliner.Term.(const one_shot $ Ops.run_term)

let trace_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "trace"
       ~doc:
         "Trace one benchmark run: ASCII pipeline timeline (F=fetch \
          D=dispatch I=issue X=complete C=commit), optional Chrome \
          trace_event export and counter dump.")
    Cmdliner.Term.(const one_shot $ Ops.trace_term)

let experiment_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiment"
       ~doc:
         "Run one or more of the paper's tables/figures, optionally in \
          parallel across domains.")
    Cmdliner.Term.(const one_shot $ Ops.experiment_term)

let sweep_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sweep"
       ~doc:
         "Design-space exploration: expand a preset and typed axes into a \
          validated configuration grid, simulate every (config, benchmark) \
          point across the domain pool with a persistent result cache, and \
          report the IPC-vs-complexity Pareto frontier.")
    Cmdliner.Term.(const one_shot $ Ops.sweep_term)

let rv_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "rv"
       ~doc:
         "Run a real RV32IM program through the braid pass: decode, \
          translate to the internal IR, simulate on the timing cores, and \
          optionally check the frontend differential oracle.")
    Cmdliner.Term.(const one_shot $ Ops.rv_term)

let cmp_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "cmp"
       ~doc:
         "Multicore (CMP) rate-mode simulation: N copies of one machine \
          over private L1s and a shared, MSI-coherent L2, reporting \
          per-core slowdown vs solo, aggregate IPC, weighted speedup and \
          coherence traffic.")
    Cmdliner.Term.(const one_shot $ Ops.cmp_term)

let fuzz_cmd =
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs through the emulator and \
          the timing cores, comparing committed state (plus optional \
          invariant monitoring).")
    Cmdliner.Term.(const one_shot $ Ops.fuzz_term)

(* --- serve / client --- *)

let socket_arg =
  Cmdliner.Arg.(
    value
    & opt string Ops.default_socket
    & info [ "socket" ] ~docv:"ADDR"
        ~doc:
          "Server endpoint: a Unix socket path, or $(b,host:port) for TCP.")

let parse_addr spec =
  match Api.Addr.of_spec spec with Ok a -> a | Error m -> Ops.fail m

(* One request over one connection; progress frames go to stderr so
   stdout stays byte-identical to the one-shot path. *)
let client_call ~spec ~progress request out =
  let addr = parse_addr spec in
  match Api.Client.connect addr with
  | Error msg -> Ops.fail msg
  | Ok conn ->
      let on_progress =
        if progress then
          Some
            (fun ~completed ~total ~label ->
              Printf.eprintf "[%d/%d] %s\n%!" completed total label)
        else None
      in
      let result = Api.Client.request ?on_progress conn request in
      Api.Client.close conn;
      (match result with
      | Ok payload -> Ops.deliver out payload
      | Error msg -> Ops.fail msg)

let client_group =
  let progress_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print per-job progress frames to stderr as they stream in.")
  in
  let dispatch spec progress = function
    | Ops.Immediate f -> f ()
    | Ops.Call (request, out) -> client_call ~spec ~progress request out
  in
  let op name ~doc term =
    Cmdliner.Cmd.v
      (Cmdliner.Cmd.info name ~doc)
      Cmdliner.Term.(const dispatch $ socket_arg $ progress_arg $ term)
  in
  let control name ~doc request =
    Cmdliner.Cmd.v
      (Cmdliner.Cmd.info name ~doc)
      Cmdliner.Term.(
        const (fun spec ->
            client_call ~spec ~progress:false request Ops.no_output)
        $ socket_arg)
  in
  let cancel_cmd =
    let id_arg =
      Cmdliner.Arg.(
        required
        & pos 0 (some int) None
        & info [] ~docv:"ID" ~doc:"Server-assigned request id to withdraw.")
    in
    Cmdliner.Cmd.v
      (Cmdliner.Cmd.info "cancel" ~doc:"Withdraw a still-queued request.")
      Cmdliner.Term.(
        const (fun spec id ->
            client_call ~spec ~progress:false
              (Api.Request.Cancel { request_id = id })
              Ops.no_output)
        $ socket_arg $ id_arg)
  in
  Cmdliner.Cmd.group
    (Cmdliner.Cmd.info "client"
       ~doc:
         "Run simulation requests against a braidsim serve daemon. Every \
          op takes the same arguments as its one-shot counterpart and \
          prints the same bytes; only the executor differs.")
    [
      op "run" ~doc:"Simulate one benchmark on the server." Ops.run_term;
      op "trace" ~doc:"Trace one benchmark run on the server." Ops.trace_term;
      op "experiment" ~doc:"Run paper experiments on the server."
        Ops.experiment_term;
      op "sweep"
        ~doc:
          "Design-space sweep on the server (warm points answer straight \
           from its cache and memoised traces)."
        Ops.sweep_term;
      op "fuzz" ~doc:"Differential fuzzing on the server." Ops.fuzz_term;
      op "rv" ~doc:"Run an RV32IM program on the server." Ops.rv_term;
      op "cmp" ~doc:"Multicore rate-mode CMP simulation on the server."
        Ops.cmp_term;
      control "status" ~doc:"Print daemon status and counters."
        Api.Request.Status;
      control "shutdown"
        ~doc:"Gracefully stop the daemon (drains queued requests first)."
        Api.Request.Shutdown;
      cancel_cmd;
    ]

let serve_cmd =
  let jobs_arg = Cli.jobs_arg ~default:1 in
  let queue_arg =
    Cmdliner.Arg.(
      value
      & opt Cli.positive_int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: requests past it are refused, never \
             silently dropped.")
  in
  let status_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "status" ]
          ~doc:
            "Do not start a server; query the one at --socket and print \
             its status (shorthand for `braidsim client status`).")
  in
  let run spec jobs queue status =
    if status then
      client_call ~spec ~progress:false Api.Request.Status Ops.no_output
    else
      let addr = parse_addr spec in
      match Api.Server.create { Api.Server.addr; jobs; max_queue = queue } with
      | Error msg -> Ops.fail msg
      | Ok server ->
          (* Ctrl-C / TERM drain like a Shutdown request instead of
             killing in-flight jobs. *)
          let graceful = Sys.Signal_handle (fun _ -> Api.Server.stop server) in
          Sys.set_signal Sys.sigint graceful;
          Sys.set_signal Sys.sigterm graceful;
          Printf.printf "braidsim serve: listening on %s (jobs %d, queue %d)\n%!"
            (Api.Addr.to_string addr) jobs queue;
          Api.Server.run server
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "serve"
       ~doc:
         "Long-lived simulation daemon: accepts braidsim-api/1 requests \
          from braidsim client over a Unix or TCP socket, multiplexes \
          them onto one domain pool with per-client fairness, and answers \
          warm sweep points from its cache without simulating.")
    Cmdliner.Term.(const run $ socket_arg $ jobs_arg $ queue_arg $ status_arg)

let () =
  let info =
    Cmdliner.Cmd.info "braidsim" ~version:"1.0.0"
      ~doc:
        "Braid microarchitecture reproduction (Tseng & Patt, ISCA 2008): \
         compiler pass, cycle-level simulator, and the paper's experiments."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info
          [ list_cmd; stats_cmd; inspect_cmd; run_cmd; trace_cmd;
            experiment_cmd; sweep_cmd; cmp_cmd; disasm_cmd; complexity_cmd;
            fuzz_cmd; rv_cmd; serve_cmd; client_group ]))
