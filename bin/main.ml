(* braidsim: command-line front end for the braid reproduction.

   Subcommands: list, stats, inspect, run, trace, experiment, sweep. *)

open Braid_isa
module C = Braid_core
module U = Braid_uarch
module W = Braid_workload
module Obs = Braid_obs
module Cli = Braid_cli.Cli_common
module Dse = Braid_dse

(* the one shared CLI vocabulary (lib/cli): core/preset selection built on
   Config.kind_of_string, benchmark-name validation, --seed/--scale/--jobs *)
let scale_arg = Cli.scale_arg ~default:12_000
let seed_arg = Cli.seed_arg
let bench_arg = Cli.bench_arg
let positive_int = Cli.positive_int
let core_arg = Cli.core_arg

let width_arg =
  Cmdliner.Arg.(
    value & opt int 8 & info [ "width" ] ~docv:"W" ~doc:"Issue width (4, 8 or 16).")

(* shared by run and trace: generate, compile for the chosen core, emulate,
   and time the resulting trace on the configured machine *)
let simulate ~(profile : W.Spec.profile) ~seed ~scale ~core ~width ~obs =
  let program, init_mem = W.Spec.generate profile ~seed ~scale in
  let cfg = U.Config.preset_of_kind core in
  let binary =
    match core with
    | U.Config.Braid_exec -> (C.Transform.run program).C.Transform.program
    | U.Config.In_order | U.Config.Dep_steer | U.Config.Ooo ->
        (C.Transform.conventional program).C.Extalloc.program
  in
  let cfg = if width = 8 then cfg else U.Config.scale_width cfg width in
  let out = Emulator.run ~max_steps:(50 * scale) ~init_mem binary in
  let trace = Option.get out.Emulator.trace in
  let r = U.Pipeline.run ~obs ~warm_data:(List.map fst init_mem) cfg trace in
  (r, trace)

(* --- list --- *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %-5s %s\n" "name" "class" "description";
    List.iter
      (fun (p : W.Spec.profile) ->
        Printf.printf "%-10s %-5s %s\n" p.W.Spec.name
          (match p.W.Spec.cls with W.Spec.Int_bench -> "int" | W.Spec.Fp_bench -> "fp")
          p.W.Spec.description)
      W.Spec.all
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "list" ~doc:"List the 26 benchmark programs.")
    Cmdliner.Term.(const run $ const ())

(* --- stats --- *)

let stats_cmd =
  let run (profile : W.Spec.profile) seed scale =
    let program, init_mem = W.Spec.generate profile ~seed ~scale in
    let rep = C.Transform.run program in
    let stats = C.Braid_stats.summarize (C.Braid_stats.of_program rep.C.Transform.program) in
    Printf.printf "%s (%s)\n\n" profile.W.Spec.name profile.W.Spec.description;
    Printf.printf "static: %d blocks, %d instructions, %d braids\n"
      (Program.num_blocks program)
      (Program.num_static_instrs rep.C.Transform.program)
      rep.C.Transform.braids;
    Printf.printf "splits: %d working-set, %d ordering; spills: %d values\n\n"
      rep.C.Transform.splits_working_set rep.C.Transform.splits_ordering
      rep.C.Transform.alloc.C.Extalloc.spilled;
    Printf.printf "Table 1  braids/block          %.2f (%.2f excl. singles)\n"
      stats.C.Braid_stats.braids_per_block stats.C.Braid_stats.braids_per_block_multi;
    Printf.printf "Table 2  size / width          %.2f / %.2f (excl. singles)\n"
      stats.C.Braid_stats.avg_size_multi stats.C.Braid_stats.avg_width_multi;
    Printf.printf "Table 3  internals / in / out  %.2f / %.2f / %.2f (excl. singles)\n\n"
      stats.C.Braid_stats.avg_internals_multi stats.C.Braid_stats.avg_ext_inputs_multi
      stats.C.Braid_stats.avg_ext_outputs_multi;
    let out = Emulator.run ~max_steps:(50 * scale) ~init_mem rep.C.Transform.program in
    let vs = C.Value_stats.of_trace (Option.get out.Emulator.trace) in
    Printf.printf "§1.1     values used once      %s\n"
      (Render.pct (C.Value_stats.fanout_exactly vs 1));
    Printf.printf "         used at most twice    %s\n"
      (Render.pct (C.Value_stats.fanout_at_most vs 2));
    Printf.printf "         produced unused       %s\n"
      (Render.pct (C.Value_stats.unused_fraction vs));
    Printf.printf "         lifetime <= 32        %s\n"
      (Render.pct (C.Value_stats.lifetime_at_most vs 32))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "stats"
       ~doc:"Braid and value statistics for one benchmark (Tables 1-3, §1.1).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg)

(* --- inspect --- *)

let inspect_cmd =
  let block_arg =
    Cmdliner.Arg.(value & opt int 1 & info [ "block" ] ~docv:"ID" ~doc:"Block to print.")
  in
  let run (profile : W.Spec.profile) seed scale block =
    let program, _ = W.Spec.generate profile ~seed ~scale in
    let rep = C.Transform.run program in
    print_string (Disasm.block_with_braids rep.C.Transform.program block)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "inspect" ~doc:"Disassemble one block braid by braid (Fig 2 view).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg $ block_arg)

(* --- run --- *)

let run_cmd =
  let run (profile : W.Spec.profile) seed scale core width =
    let r, _ =
      simulate ~profile ~seed ~scale ~core ~width ~obs:Obs.Sink.disabled
    in
    Printf.printf "%s on %s\n" profile.W.Spec.name r.U.Pipeline.config_name;
    Printf.printf "  instructions        %d\n" r.U.Pipeline.instructions;
    Printf.printf "  cycles              %d\n" r.U.Pipeline.cycles;
    Printf.printf "  IPC                 %.3f\n" r.U.Pipeline.ipc;
    Printf.printf "  branch mispredicts  %d / %d lookups\n" r.U.Pipeline.branch_mispredicts
      r.U.Pipeline.branch_lookups;
    Printf.printf "  L1I/L1D/L2 misses   %d / %d / %d\n" r.U.Pipeline.l1i_misses
      r.U.Pipeline.l1d_misses r.U.Pipeline.l2_misses;
    Printf.printf "  reg dispatch stalls %d\n" r.U.Pipeline.dispatch_stall_regs;
    Printf.printf "  stalls (cycles)     redirect %d, icache %d, core %d, front-end %d\n"
      r.U.Pipeline.stalls.U.Pipeline.fetch_redirect
      r.U.Pipeline.stalls.U.Pipeline.fetch_icache
      r.U.Pipeline.stalls.U.Pipeline.dispatch_core
      r.U.Pipeline.stalls.U.Pipeline.dispatch_frontend;
    Printf.printf "  avg core occupancy  %.1f instructions\n" r.U.Pipeline.avg_occupancy;
    let a = r.U.Pipeline.activity in
    Printf.printf "  RF accesses         %d external, %d internal; %d bypassed values\n"
      (a.U.Machine.ext_rf_reads + a.U.Machine.ext_rf_writes)
      (a.U.Machine.int_rf_reads + a.U.Machine.int_rf_writes)
      a.U.Machine.bypass_values
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "run" ~doc:"Simulate one benchmark on one machine configuration.")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg $ core_arg $ width_arg)

(* --- trace --- *)

let trace_cmd =
  let from_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"CYCLE" ~doc:"First cycle of the timeline window.")
  in
  let cycles_arg =
    Cmdliner.Arg.(
      value & opt int 64
      & info [ "cycles" ] ~docv:"N" ~doc:"Width of the timeline window in cycles.")
  in
  let chrome_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the retained events as Chrome trace_event JSON to \
             $(docv) (load it in chrome://tracing or ui.perfetto.dev). The \
             document is parsed back before writing; a malformed export is \
             an error.")
  in
  let counters_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:"Dump the run's counter registry after the timeline.")
  in
  let buffer_arg =
    Cmdliner.Arg.(
      value
      & opt positive_int Obs.Tracer.default_capacity
      & info [ "buffer" ] ~docv:"N"
          ~doc:
            "Tracer ring-buffer capacity (events). When a run overflows it, \
             the oldest events are dropped and the retained window is the \
             end of the run.")
  in
  let run (profile : W.Spec.profile) seed scale core width from_cycle cycles
      chrome counters buffer =
    let obs = Obs.Sink.create () in
    let tracer = Obs.Tracer.create ~capacity:buffer () in
    Obs.Sink.attach_tracer obs tracer;
    let r, trace = simulate ~profile ~seed ~scale ~core ~width ~obs in
    let events = Obs.Tracer.events tracer in
    let label uid = Disasm.instr trace.Trace.events.(uid).Trace.instr in
    let chrome_label uid = Printf.sprintf "%d %s" uid (label uid) in
    Printf.printf "%s on %s: %d instructions, %d cycles, IPC %.3f\n"
      profile.W.Spec.name r.U.Pipeline.config_name r.U.Pipeline.instructions
      r.U.Pipeline.cycles r.U.Pipeline.ipc;
    Printf.printf "tracer: %d events retained, %d dropped (buffer %d)\n\n"
      (Obs.Tracer.length tracer)
      (Obs.Tracer.dropped tracer)
      (Obs.Tracer.capacity tracer);
    (match Obs.Timeline.render ~from_cycle ~cycles ~label events with
    | "" ->
        Printf.printf
          "no instruction activity in cycles [%d, %d) — try --from/--cycles \
           (run length %d cycles)\n"
          from_cycle (from_cycle + cycles) r.U.Pipeline.cycles
    | diagram -> print_string diagram);
    Option.iter
      (fun file ->
        let doc = Obs.Chrome.export ~label:chrome_label tracer in
        (* self-check with the same parser the test suite uses: the CI
           smoke step relies on a non-zero exit for a malformed export *)
        (match Obs.Json.parse doc with
        | Ok _ -> ()
        | Error msg ->
            Printf.eprintf "braidsim: internal error: Chrome export is not valid JSON: %s\n" msg;
            exit 1);
        (if file = "-" then print_string doc
         else
           let oc = open_out file in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc doc));
        let tracks =
          List.sort_uniq compare (List.map Obs.Tracer.track_of events)
        in
        if file <> "-" then
          Printf.printf "\nwrote %s: %d events on %d tracks (validated)\n" file
            (List.length events) (List.length tracks))
      chrome;
    if counters then begin
      print_newline ();
      List.iter
        (fun (name, v) ->
          match v with
          | Obs.Counters.Count n -> Printf.printf "%-26s %d\n" name n
          | Obs.Counters.Hist { counts; observations; sum; _ } ->
              Printf.printf "%-26s n=%d sum=%d buckets=[%s]\n" name
                observations sum
                (String.concat ";"
                   (Array.to_list (Array.map string_of_int counts))))
        (Obs.Counters.snapshot (Obs.Sink.counters obs))
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "trace"
       ~doc:
         "Trace one benchmark run: ASCII pipeline timeline (F=fetch \
          D=dispatch I=issue X=complete C=commit), optional Chrome \
          trace_event export and counter dump.")
    Cmdliner.Term.(
      const run $ bench_arg $ seed_arg $ scale_arg $ core_arg $ width_arg
      $ from_arg $ cycles_arg $ chrome_arg $ counters_arg $ buffer_arg)

(* --- experiment --- *)

let experiment_cmd =
  let module E = Braid_sim.Experiments in
  let id_arg =
    Cmdliner.Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:
            "Experiment id (e.g. fig13); `braidsim experiment list` to \
             enumerate. Omitted: run all (or the --only subset).")
  in
  let only_arg =
    Cmdliner.Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated experiment ids to run.")
  in
  let jobs_arg =
    Cmdliner.Arg.(
      value
      & opt positive_int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Simulation jobs to run in parallel (one domain each); must be \
             positive. Output is identical for every value.")
  in
  let json_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Serialize the typed results and per-job telemetry to $(docv) (- for stdout).")
  in
  let counters_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:
            "Append per-benchmark observability counters (one braid 8-wide \
             run per benchmark) to the report, and a \"counters\" object to \
             --json output.")
  in
  let run id only jobs json counters scale =
    if id = Some "list" then
      List.iter (fun (e : E.t) -> print_endline e.E.id) E.all
    else begin
      let ids = (match id with Some i -> [ i ] | None -> []) @ only in
      let exps =
        match ids with
        | [] -> E.all
        | ids ->
            List.map
              (fun id ->
                try E.find id
                with Not_found ->
                  Printf.eprintf "unknown experiment %s\n" id;
                  exit 1)
              ids
      in
      let ctx = Braid_sim.Suite.create_ctx () in
      let results =
        Braid_sim.Runner.run_experiments ~ctx ~jobs ~scale exps
      in
      let counters =
        if counters then Some (E.counters_report ctx ~scale) else None
      in
      (* --json - claims stdout for the document; keep it valid JSON *)
      if json <> Some "-" then begin
        List.iter
          (fun (r, _) ->
            print_string (Braid_sim.Report.render_full r);
            print_newline ())
          results;
        Option.iter
          (fun cs -> print_string (Braid_sim.Report.render_counters cs))
          counters
      end;
      Option.iter
        (fun file ->
          try
            Braid_sim.Report.write_json ?counters ~file ~scale ~jobs
              (List.map (fun (r, st) -> (r, Some st)) results)
          with Sys_error msg ->
            Printf.eprintf "braidsim: cannot write JSON: %s\n" msg;
            exit 1)
        json
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiment"
       ~doc:
         "Run one or more of the paper's tables/figures, optionally in \
          parallel across domains.")
    Cmdliner.Term.(
      const run $ id_arg $ only_arg $ jobs_arg $ json_arg $ counters_arg
      $ scale_arg)

(* --- sweep --- *)

let sweep_cmd =
  let axis_conv : Dse.Axis.t Cmdliner.Arg.conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Dse.Axis.of_spec s) in
    Cmdliner.Arg.conv ~docv:"FIELD=V1,V2,..." (parse, Dse.Axis.pp)
  in
  let axes_arg =
    Cmdliner.Arg.(
      value
      & opt_all axis_conv []
      & info [ "axis" ] ~docv:"FIELD=V1,V2,..."
          ~doc:
            "A sweep axis: a sweepable Config field and its values \
             (repeatable). `braidsim sweep --list-fields` enumerates the \
             fields.")
  in
  let mode_arg =
    Cmdliner.Arg.(
      value
      & opt
          (enum
             [ ("cartesian", Dse.Grid.Cartesian);
               ("one-at-a-time", Dse.Grid.One_at_a_time) ])
          Dse.Grid.Cartesian
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Grid expansion: $(b,cartesian) (every combination) or \
             $(b,one-at-a-time) (the preset plus each single-field \
             deviation, the shape of Figs 5-12).")
  in
  let benches_arg =
    Cmdliner.Arg.(
      value
      & opt (list Cli.bench_name_conv) []
      & info [ "benches" ] ~docv:"NAMES"
          ~doc:"Comma-separated benchmark subset (default: all 26).")
  in
  let cache_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: every simulation lands in \
             $(docv) and is reused by any later sweep that reaches the \
             same (config, trace) point, so interrupted sweeps resume \
             with zero recomputation.")
  in
  let resume_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted sweep from --cache-dir (reusing cached \
             results is also the default whenever --cache-dir is given; \
             this flag only asserts the intent and errors without a cache \
             directory).")
  in
  let json_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the braidsim-sweep/1 document to $(docv) (- for stdout).")
  in
  let list_fields_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "list-fields" ] ~doc:"List the sweepable config fields and exit.")
  in
  let run preset axes mode benches cache resume json list_fields seed scale jobs
      =
    if list_fields then
      List.iter print_endline U.Config.sweepable_fields
    else begin
      if resume && cache = None then begin
        Printf.eprintf "braidsim: --resume requires --cache-dir\n";
        exit 1
      end;
      let cache =
        Option.map
          (fun d ->
            match Dse.Cache.open_dir d with
            | Ok c -> c
            | Error msg ->
                Printf.eprintf "braidsim: %s\n" msg;
                exit 1)
          cache
      in
      let benches =
        match benches with
        | [] -> W.Spec.all
        | names -> List.map W.Spec.find names
      in
      match Dse.Grid.expand ~base:preset ~mode axes with
      | Error msg ->
          Printf.eprintf "braidsim: invalid sweep grid: %s\n" msg;
          exit 1
      | Ok points ->
          let ctx = Braid_sim.Suite.create_ctx () in
          let obs = Obs.Sink.create () in
          let outcome =
            Dse.Sweep.run ~obs ?cache ~ctx ~jobs ~seed ~scale ~benches points
          in
          (* --json - claims stdout for the document; keep it valid JSON *)
          if json <> Some "-" then print_string (Dse.Frontier.render outcome);
          Option.iter
            (fun file ->
              let doc =
                Dse.Frontier.to_json ~preset ~mode ~axes ~seed ~scale outcome
              in
              if file = "-" then print_string doc
              else
                try
                  let oc = open_out file in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> output_string oc doc)
                with Sys_error msg ->
                  Printf.eprintf "braidsim: cannot write JSON: %s\n" msg;
                  exit 1)
            json
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sweep"
       ~doc:
         "Design-space exploration: expand a preset and typed axes into a \
          validated configuration grid, simulate every (config, benchmark) \
          point across the domain pool with a persistent result cache, and \
          report the IPC-vs-complexity Pareto frontier.")
    Cmdliner.Term.(
      const run $ Cli.preset_arg $ axes_arg $ mode_arg $ benches_arg
      $ cache_arg $ resume_arg $ json_arg $ list_fields_arg $ seed_arg
      $ scale_arg $ Cli.jobs_arg ~default:1)

(* --- disasm --- *)

let disasm_cmd =
  let braided_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "braided" ] ~doc:"Disassemble the braid binary instead of the conventional one.")
  in
  let run (profile : W.Spec.profile) seed scale braided =
    let program, _ = W.Spec.generate profile ~seed ~scale in
    let binary =
      if braided then (C.Transform.run program).C.Transform.program
      else (C.Transform.conventional program).C.Extalloc.program
    in
    print_string (Disasm.program_asm binary)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "disasm"
       ~doc:
         "Emit a benchmark's binary as parseable assembly (re-assemble it \
          with the Asm module).")
    Cmdliner.Term.(const run $ bench_arg $ seed_arg $ scale_arg $ braided_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let count_arg =
    Cmdliner.Arg.(
      value & opt positive_int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of random cases to check.")
  in
  let index_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "index" ] ~docv:"I"
          ~doc:
            "First case index. Reproduce a printed failure exactly with \
             $(b,--seed S --index I --count 1).")
  in
  let core_opt_arg =
    Cmdliner.Arg.(
      value & opt (some Cli.core_kind_conv) None
      & info [ "core" ] ~docv:"CORE"
          ~doc:
            "Restrict the differential oracle to one core (default: \
             in-order, ooo and braid).")
  in
  let shrink_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily reduce each failing case to a minimal fragment list.")
  in
  let invariants_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Also check microarchitectural invariants (commit order, \
             register-file occupancy, bypass legality, S/T/I/E bits) on \
             every run.")
  in
  let run count seed index core shrink invariants =
    let module Ck = Braid_check in
    let cores =
      match core with None -> Ck.Oracle.default_cores | Some k -> [ k ]
    in
    let outcome =
      Ck.Fuzz.run ~invariants ~shrink ~cores ~first_index:index ~count ~seed ()
    in
    let core_names =
      String.concat "," (List.map U.Config.kind_to_string cores)
    in
    if outcome.Ck.Fuzz.failures = [] then
      Printf.printf
        "fuzz: %d case(s) on [%s], seed %d: 0 divergences, 0 invariant \
         violations%s\n"
        outcome.Ck.Fuzz.tested core_names seed
        (if invariants then "" else " (monitor off)")
    else begin
      Printf.printf "fuzz: %d of %d case(s) FAILED on [%s], seed %d\n"
        (List.length outcome.Ck.Fuzz.failures)
        outcome.Ck.Fuzz.tested core_names seed;
      List.iter
        (fun (f : Ck.Fuzz.failure) ->
          Printf.printf "\ncase %s\n%s"
            (Ck.Gen.describe f.Ck.Fuzz.case)
            (Ck.Oracle.render f.Ck.Fuzz.report);
          match f.Ck.Fuzz.shrunk with
          | None -> ()
          | Some (reduced, rep) ->
              Printf.printf "shrunk to %s\n%s"
                (Ck.Gen.describe reduced)
                (Ck.Oracle.render rep);
              let program, _ = Ck.Gen.build reduced in
              Printf.printf "reproducer (virtual IR):\n%s" (Disasm.program program))
        outcome.Ck.Fuzz.failures;
      Stdlib.exit 1
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs through the emulator and \
          the timing cores, comparing committed state (plus optional \
          invariant monitoring).")
    Cmdliner.Term.(
      const run $ count_arg $ seed_arg $ index_arg $ core_opt_arg $ shrink_arg
      $ invariants_arg)

(* --- complexity --- *)

let complexity_cmd =
  let run () =
    List.iter
      (fun cfg -> print_endline (U.Complexity.describe cfg))
      [ U.Config.in_order_8wide; U.Config.dep_steer_8wide; U.Config.braid_8wide;
        U.Config.ooo_8wide ];
    let ooo = U.Complexity.of_config U.Config.ooo_8wide in
    let braid = U.Complexity.of_config U.Config.braid_8wide in
    let io = U.Complexity.of_config U.Config.in_order_8wide in
    Printf.printf
      "\nbraid total complexity is %.1fx the in-order design and 1/%.0f of the \
       out-of-order design\n"
      (U.Complexity.relative braid io)
      (U.Complexity.relative ooo braid)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "complexity"
       ~doc:"Static complexity indices of the four machines (§5.1).")
    Cmdliner.Term.(const run $ const ())

let () =
  let info =
    Cmdliner.Cmd.info "braidsim" ~version:"1.0.0"
      ~doc:
        "Braid microarchitecture reproduction (Tseng & Patt, ISCA 2008): \
         compiler pass, cycle-level simulator, and the paper's experiments."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info
          [ list_cmd; stats_cmd; inspect_cmd; run_cmd; trace_cmd;
            experiment_cmd; sweep_cmd; disasm_cmd; complexity_cmd; fuzz_cmd ]))
