(* Shared between the one-shot subcommands and `braidsim client`: each
   simulation capability is a cmdliner term that builds a typed
   Braid_api.Request.t plus the local output options (where to put JSON
   documents), and one [deliver] renders the typed response payload with
   the exact bytes the historical inline implementations printed. Running
   a request locally or through a daemon differs only in who executes it. *)

module U = Braid_uarch
module W = Braid_workload
module Obs = Braid_obs
module Dse = Braid_dse
module E = Braid_sim.Experiments
module Cli = Braid_cli.Cli_common
module Api = Braid_api

type output = {
  o_json : string option;  (* experiment/sweep document destination *)
  o_chrome : string option;  (* trace Chrome-export destination *)
}

let no_output = { o_json = None; o_chrome = None }

type action =
  | Immediate of (unit -> unit)  (* purely local: listings, usage errors *)
  | Call of Api.Request.t * output

let fail msg =
  Printf.eprintf "braidsim: %s\n" msg;
  exit 1

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "braidsim.sock"

(* --- shared argument vocabulary --- *)

let scale_arg = Cli.scale_arg ~default:12_000

let width_arg =
  Cmdliner.Arg.(
    value & opt int 8 & info [ "width" ] ~docv:"W" ~doc:"Issue width (4, 8 or 16).")

(* --- sampling --- *)

(* Giving any --sample-* detail flag turns sampling on by itself; the
   bare --sample flag selects the defaults. Absent: full simulation. *)
let sample_term ~with_verify =
  let d = Braid_sample.Spec.default in
  let on_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Sampled simulation: fast-forward through the compiled \
             emulator, cluster the interval profile and simulate only \
             weighted representative intervals in detail. Orders of \
             magnitude faster at large --scale, at a small bounded IPC \
             error.")
  in
  let interval_arg =
    Cmdliner.Arg.(
      value
      & opt (some Cli.positive_int) None
      & info [ "sample-interval" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Instructions per profiling interval (default %d; implies \
                $(b,--sample))."
               d.Braid_sample.Spec.interval))
  in
  let k_arg =
    Cmdliner.Arg.(
      value
      & opt (some Cli.positive_int) None
      & info [ "sample-k" ] ~docv:"K"
          ~doc:
            (Printf.sprintf
               "Representative (cluster) budget (default %d; implies \
                $(b,--sample)). Raise it for very long runs."
               d.Braid_sample.Spec.max_k))
  in
  let warmup_arg =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "sample-warmup" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Detailed warm-up instructions simulated (but not counted) \
                before each interval (default %d; implies $(b,--sample))."
               d.Braid_sample.Spec.warmup))
  in
  let seed_arg =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "sample-seed" ] ~docv:"S"
          ~doc:
            (Printf.sprintf
               "Clustering seed (default %d; implies $(b,--sample)). Equal \
                seeds give identical interval choices."
               d.Braid_sample.Spec.seed))
  in
  let verify_term =
    if with_verify then
      Cmdliner.Arg.(
        value & flag
        & info [ "sample-verify" ]
            ~doc:
              "Also run the full simulation and report the sampled IPC's \
               relative error against it (implies $(b,--sample)).")
    else Cmdliner.Term.const false
  in
  let make on interval k warmup sseed verify =
    if
      not
        (on || verify || interval <> None || k <> None || warmup <> None
       || sseed <> None)
    then None
    else
      Some
        {
          Api.Request.sm_interval =
            Option.value interval ~default:d.Braid_sample.Spec.interval;
          sm_max_k = Option.value k ~default:d.Braid_sample.Spec.max_k;
          sm_warmup = Option.value warmup ~default:d.Braid_sample.Spec.warmup;
          sm_seed = Option.value sseed ~default:d.Braid_sample.Spec.seed;
          sm_verify = verify;
        }
  in
  Cmdliner.Term.(
    const make $ on_arg $ interval_arg $ k_arg $ warmup_arg $ seed_arg
    $ verify_term)

(* --- run --- *)

let run_term =
  let make (profile : W.Spec.profile) seed scale core width sample =
    Call
      ( Api.Request.Run
          {
            r_bench = profile.W.Spec.name;
            r_seed = seed;
            r_scale = scale;
            r_core = core;
            r_width = width;
            r_sample = sample;
          },
        no_output )
  in
  Cmdliner.Term.(
    const make $ Cli.bench_arg $ Cli.seed_arg $ scale_arg $ Cli.core_arg
    $ width_arg $ sample_term ~with_verify:true)

(* --- trace --- *)

let trace_term =
  let from_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "from" ] ~docv:"CYCLE" ~doc:"First cycle of the timeline window.")
  in
  let cycles_arg =
    Cmdliner.Arg.(
      value & opt int 64
      & info [ "cycles" ] ~docv:"N" ~doc:"Width of the timeline window in cycles.")
  in
  let chrome_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the retained events as Chrome trace_event JSON to \
             $(docv) (load it in chrome://tracing or ui.perfetto.dev). The \
             document is parsed back before writing; a malformed export is \
             an error.")
  in
  let counters_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:"Dump the run's counter registry after the timeline.")
  in
  let buffer_arg =
    Cmdliner.Arg.(
      value
      & opt Cli.positive_int Obs.Tracer.default_capacity
      & info [ "buffer" ] ~docv:"N"
          ~doc:
            "Tracer ring-buffer capacity (events). When a run overflows it, \
             the oldest events are dropped and the retained window is the \
             end of the run.")
  in
  let make (profile : W.Spec.profile) seed scale core width from_cycle cycles
      chrome counters buffer =
    Call
      ( Api.Request.Trace
          {
            t_bench = profile.W.Spec.name;
            t_seed = seed;
            t_scale = scale;
            t_core = core;
            t_width = width;
            t_from = from_cycle;
            t_cycles = cycles;
            t_buffer = buffer;
            t_chrome = chrome <> None;
            t_counters = counters;
          },
        { no_output with o_chrome = chrome } )
  in
  Cmdliner.Term.(
    const make $ Cli.bench_arg $ Cli.seed_arg $ scale_arg $ Cli.core_arg
    $ width_arg $ from_arg $ cycles_arg $ chrome_arg $ counters_arg
    $ buffer_arg)

(* --- experiment --- *)

let experiment_term =
  let id_arg =
    Cmdliner.Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:
            "Experiment id (e.g. fig13); `braidsim experiment list` to \
             enumerate. Omitted: run all (or the --only subset).")
  in
  let jobs_arg = Cli.jobs_arg ~default:1 in
  let json_arg =
    Cli.json_file_arg
      ~doc:"Serialize the typed results to $(docv) (- for stdout)."
  in
  let counters_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:
            "Append per-benchmark observability counters (one braid 8-wide \
             run per benchmark) to the report, and a \"counters\" object to \
             --json output.")
  in
  let make id only jobs json counters scale sample =
    if id = Some "list" then
      Immediate (fun () -> List.iter (fun (e : E.t) -> print_endline e.E.id) E.all)
    else
      let ids = (match id with Some i -> [ i ] | None -> []) @ only in
      Call
        ( Api.Request.Experiment
            {
              e_ids = ids;
              e_scale = scale;
              e_jobs = jobs;
              e_counters = counters;
              e_sample = sample;
            },
          { no_output with o_json = json } )
  in
  Cmdliner.Term.(
    const make $ id_arg $ Cli.only_arg $ jobs_arg $ json_arg $ counters_arg
    $ scale_arg $ sample_term ~with_verify:false)

(* --- sweep --- *)

let sweep_term =
  (* validate at parse time (a typo is a usage error) but keep the spec
     string: axes travel over the wire in Axis.of_spec form *)
  let axis_spec_conv : string Cmdliner.Arg.conv =
    let parse s =
      match Dse.Axis.of_spec s with
      | Ok (_ : Dse.Axis.t) -> Ok s
      | Error m -> Error (`Msg m)
    in
    Cmdliner.Arg.conv ~docv:"FIELD=V1,V2,..." (parse, Format.pp_print_string)
  in
  let axes_arg =
    Cmdliner.Arg.(
      value
      & opt_all axis_spec_conv []
      & info [ "axis" ] ~docv:"FIELD=V1,V2,..."
          ~doc:
            "A sweep axis: a sweepable Config field and its values \
             (repeatable). `braidsim sweep --list-fields` enumerates the \
             fields.")
  in
  let mode_arg =
    Cmdliner.Arg.(
      value
      & opt
          (enum
             [ ("cartesian", Dse.Grid.Cartesian);
               ("one-at-a-time", Dse.Grid.One_at_a_time) ])
          Dse.Grid.Cartesian
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Grid expansion: $(b,cartesian) (every combination) or \
             $(b,one-at-a-time) (the preset plus each single-field \
             deviation, the shape of Figs 5-12).")
  in
  let benches_arg =
    Cmdliner.Arg.(
      value
      & opt (list Cli.bench_name_conv) []
      & info [ "benches" ] ~docv:"NAMES"
          ~doc:"Comma-separated benchmark subset (default: all 26).")
  in
  let cache_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: every simulation lands in \
             $(docv) and is reused by any later sweep that reaches the \
             same (config, trace) point, so interrupted sweeps resume \
             with zero recomputation. With `client`, the path is resolved \
             on the server.")
  in
  let resume_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume an interrupted sweep from --cache-dir (reusing cached \
             results is also the default whenever --cache-dir is given; \
             this flag only asserts the intent and errors without a cache \
             directory).")
  in
  let json_arg =
    Cli.json_file_arg
      ~doc:"Write the braidsim-sweep/1 document to $(docv) (- for stdout)."
  in
  let list_fields_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "list-fields" ] ~doc:"List the sweepable config fields and exit.")
  in
  let make (preset : U.Config.t) axes mode benches cache resume json
      list_fields seed scale jobs sample =
    if list_fields then
      Immediate (fun () -> List.iter print_endline U.Config.sweepable_fields)
    else if resume && cache = None then
      Immediate (fun () -> fail "--resume requires --cache-dir")
    else
      Call
        ( Api.Request.Sweep
            {
              s_preset = preset.U.Config.kind;
              s_axes = axes;
              s_mode = mode;
              s_benches = benches;
              s_seed = seed;
              s_scale = scale;
              s_jobs = jobs;
              s_cache_dir = cache;
              s_sample = sample;
            },
          { no_output with o_json = json } )
  in
  Cmdliner.Term.(
    const make $ Cli.preset_arg $ axes_arg $ mode_arg $ benches_arg
    $ cache_arg $ resume_arg $ json_arg $ list_fields_arg $ Cli.seed_arg
    $ scale_arg $ Cli.jobs_arg ~default:1 $ sample_term ~with_verify:false)

(* --- fuzz --- *)

let fuzz_term =
  let count_arg =
    Cmdliner.Arg.(
      value & opt Cli.positive_int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of random cases to check.")
  in
  let index_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "index" ] ~docv:"I"
          ~doc:
            "First case index. Reproduce a printed failure exactly with \
             $(b,--seed S --index I --count 1).")
  in
  let core_opt_arg =
    Cmdliner.Arg.(
      value & opt (some Cli.core_kind_conv) None
      & info [ "core" ] ~docv:"CORE"
          ~doc:
            "Restrict the differential oracle to one core (default: \
             in-order, ooo and braid).")
  in
  let shrink_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily reduce each failing case to a minimal fragment list.")
  in
  let invariants_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "invariants" ]
          ~doc:
            "Also check microarchitectural invariants (commit order, \
             register-file occupancy, bypass legality, S/T/I/E bits) on \
             every run.")
  in
  let make count seed index core shrink invariants =
    Call
      ( Api.Request.Fuzz
          {
            f_count = count;
            f_seed = seed;
            f_index = index;
            f_cores = Option.to_list core;
            f_invariants = invariants;
            f_shrink = shrink;
          },
        no_output )
  in
  Cmdliner.Term.(
    const make $ count_arg $ Cli.seed_arg $ index_arg $ core_opt_arg
    $ shrink_arg $ invariants_arg)

(* --- cmp --- *)

let cmp_term =
  let benches_arg =
    Cmdliner.Arg.(
      non_empty
      & pos_all Cli.bench_name_conv []
      & info [] ~docv:"BENCH"
          ~doc:
            "Benchmark(s) to run, assigned to cores round-robin: one name \
             runs the same program on every core (homogeneous rate mode), \
             several make a multi-programmed mix.")
  in
  let cores_arg =
    Cmdliner.Arg.(
      value
      & opt Cli.positive_int 2
      & info [ "cores" ] ~docv:"N"
          ~doc:"Core count (1-64). Every core runs the same --core machine.")
  in
  let l2_kb_arg =
    Cmdliner.Arg.(
      value
      & opt (some Cli.positive_int) None
      & info [ "l2-kb" ] ~docv:"KB"
          ~doc:
            "Shared L2 capacity in KB (solo geometry otherwise scaled by \
             the core count).")
  in
  let counters_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:
            "Dump the observability counter registry after the summary; \
             each core's counters are namespaced core0., core1., ... and \
             the shared hierarchy's l2.*/coh.* are unprefixed.")
  in
  let make benches cores core width seed scale l2_kb counters =
    Call
      ( Api.Request.Cmp
          {
            c_benches = benches;
            c_cores = cores;
            c_seed = seed;
            c_scale = scale;
            c_core = core;
            c_width = width;
            c_l2 =
              Option.map
                (fun kb ->
                  let g = U.Config.default_memory.U.Config.l2 in
                  { g with U.Config.size_bytes = kb * 1024 })
                l2_kb;
            c_counters = counters;
          },
        no_output )
  in
  Cmdliner.Term.(
    const make $ benches_arg $ cores_arg $ Cli.core_arg $ width_arg
    $ Cli.seed_arg $ scale_arg $ l2_kb_arg $ counters_arg)

(* --- payload delivery --- *)

let write_file_or_stdout file doc =
  if file = "-" then print_string doc
  else
    try
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc doc)
    with Sys_error msg -> fail (Printf.sprintf "cannot write JSON: %s" msg)

(* --- rv --- *)

let read_binary_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* FILE is resolved client-side; only the canonical hex text travels over
   the wire, so one-shot and served runs see the identical image. *)
let load_rv_image spec =
  let prefix = "fixture:" in
  let plen = String.length prefix in
  if String.length spec > plen && String.sub spec 0 plen = prefix then
    let name = String.sub spec plen (String.length spec - plen) in
    match Braid_rv.Fixtures.image name with
    | Some img -> Ok img
    | None ->
        Error
          (Printf.sprintf "unknown fixture %S (have: %s)" name
             (String.concat ", " Braid_rv.Fixtures.names))
  else
    match read_binary_file spec with
    | Error msg -> Error msg
    | Ok bytes ->
        let name = Filename.remove_extension (Filename.basename spec) in
        if Filename.check_suffix spec ".s" || Filename.check_suffix spec ".S"
        then
          Result.map_error Braid_rv.Rv_asm.error_to_string
            (Braid_rv.Rv_asm.parse ~name bytes)
        else
          Result.map_error Braid_rv.Image.error_to_string
            (Braid_rv.Image.of_source ~name bytes)

let rv_term =
  let file_arg =
    Cmdliner.Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "An RV32IM program: assembly ($(b,.s)), a braid-rv/1 hex image, \
             an ELF32 executable or a flat binary (sniffed), or \
             $(b,fixture:NAME) for a built-in fixture.")
  in
  let cores_arg =
    Cmdliner.Arg.(
      value
      & opt_all Cli.core_kind_conv []
      & info [ "core" ] ~docv:"CORE"
          ~doc:
            "Core(s) to time the translated program on (repeatable; \
             default: in-order, ooo and braid).")
  in
  let oracle_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Also run the frontend differential oracle: the RV reference \
             emulator against the translated IR, then both compilers and \
             every core. Exits 1 on divergence.")
  in
  let hex_out_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "hex-out" ] ~docv:"FILE"
          ~doc:
            "Do not simulate; write the loaded image as canonical \
             braid-rv/1 hex text to $(docv) (- for stdout). This is how \
             the committed examples/rv/ images are produced.")
  in
  let list_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "list-fixtures" ] ~doc:"List the built-in fixtures and exit.")
  in
  let make file cores oracle hex_out list_fixtures =
    if list_fixtures then
      Immediate (fun () -> List.iter print_endline Braid_rv.Fixtures.names)
    else
      match file with
      | None -> Immediate (fun () -> fail "missing FILE (or fixture:NAME)")
      | Some spec -> (
          match load_rv_image spec with
          | Error msg -> Immediate (fun () -> fail msg)
          | Ok img -> (
              match hex_out with
              | Some out ->
                  Immediate
                    (fun () ->
                      write_file_or_stdout out (Braid_rv.Image.to_hex img))
              | None ->
                  Call
                    ( Api.Request.Rv
                        {
                          v_hex = Braid_rv.Image.to_hex img;
                          v_cores = cores;
                          v_oracle = oracle;
                        },
                      no_output )))
  in
  Cmdliner.Term.(
    const make $ file_arg $ cores_arg $ oracle_arg $ hex_out_arg $ list_arg)

let render_status (st : Api.Response.status) =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "pool jobs  %d\n" st.Api.Response.pool_jobs;
  pf "queue      %d / %d\n" st.Api.Response.queue_depth
    st.Api.Response.max_queue;
  pf "active     %s\n"
    (match st.Api.Response.active with
    | None -> "idle"
    | Some (id, op) -> Printf.sprintf "#%d %s" id op);
  pf "served     %d (failed %d, cancelled %d)\n" st.Api.Response.served
    st.Api.Response.failed st.Api.Response.cancelled;
  if st.Api.Response.counters <> [] then begin
    pf "counters:\n";
    List.iter
      (fun (name, c) -> pf "  %-24s %d\n" name c)
      st.Api.Response.counters
  end;
  Buffer.contents b

(* Render a terminal payload exactly as the historical inline
   implementations printed it. [exit 1] on fuzz failures is preserved. *)
let deliver out (payload : Api.Response.payload) =
  match payload with
  | Api.Response.Run_done { text; _ } -> print_string text
  | Api.Response.Experiment_done { text; doc }
  | Api.Response.Sweep_done { text; doc; _ } ->
      (* --json - claims stdout for the document; keep it valid JSON *)
      if out.o_json <> Some "-" then print_string text;
      Option.iter (fun file -> write_file_or_stdout file doc) out.o_json
  | Api.Response.Trace_done { text; counters_text; chrome } ->
      print_string text;
      (match (chrome, out.o_chrome) with
      | Some c, Some file ->
          if file = "-" then print_string c.Api.Response.c_doc
          else begin
            write_file_or_stdout file c.Api.Response.c_doc;
            Printf.printf "\nwrote %s: %d events on %d tracks (validated)\n"
              file c.Api.Response.c_events c.Api.Response.c_tracks
          end
      | _, _ -> ());
      Option.iter print_string counters_text
  | Api.Response.Fuzz_done { text; failures; _ } ->
      print_string text;
      if failures > 0 then exit 1
  | Api.Response.Cmp_done { text; counters_text; _ } ->
      print_string text;
      Option.iter print_string counters_text
  | Api.Response.Rv_done { text; oracle_ok; _ } ->
      print_string text;
      if oracle_ok = Some false then exit 1
  | Api.Response.Status_report st -> print_string (render_status st)
  | Api.Response.Cancelled { cancelled_id } ->
      Printf.printf "cancelled request %d\n" cancelled_id
  | Api.Response.Shutdown_ack ->
      print_endline "shutdown acknowledged: server is draining"
