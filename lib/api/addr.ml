(* Server endpoints: a Unix-domain socket path (the default — private to
   the user, no port bookkeeping) or a TCP host:port for remote use. *)

type t = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let of_spec spec =
  (* host:port when the suffix parses as a port; otherwise a socket path.
     Paths with colons are rare enough that an explicit ./ prefix (which
     never parses as host:port thanks to the non-numeric suffix check
     below failing only on all-digit suffixes) covers them. *)
  match String.rindex_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
      let suffix = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt suffix with
      | Some port when port > 0 && port < 65536 ->
          Ok (Tcp (String.sub spec 0 i, port))
      | Some port -> Error (Printf.sprintf "port %d out of range" port)
      | None -> Ok (Unix_sock spec))
  | _ -> Ok (Unix_sock spec)

let resolve host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> Ok ai.Unix.ai_addr

let sockaddr = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> resolve host port

let listen ?(backlog = 16) t =
  match sockaddr t with
  | Error e -> Error e
  | Ok sa -> (
      (match t with
      | Unix_sock path when Sys.file_exists path ->
          (* A stale socket from an unclean exit; binding over it needs the
             name free. A live daemon would still hold it open — probing
             with connect is racy either way, so favour restartability. *)
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      let domain = Unix.domain_of_sockaddr sa in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      try
        if domain <> Unix.PF_UNIX then
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd sa;
        Unix.listen fd backlog;
        Ok fd
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot listen on %s: %s" (to_string t)
             (Unix.error_message err)))

let connect t =
  match sockaddr t with
  | Error e -> Error e
  | Ok sa -> (
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd sa;
        Ok fd
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot connect to %s: %s" (to_string t)
             (Unix.error_message err)))

let cleanup = function
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
