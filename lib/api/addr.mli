(** Server endpoints: a Unix-domain socket path (the default) or a TCP
    [host:port]. One spec syntax serves both: a spec whose suffix parses as
    a port is TCP, anything else is a socket path. *)

type t = Unix_sock of string | Tcp of string * int

val to_string : t -> string

val of_spec : string -> (t, string) result
(** ["host:8437"] is TCP; ["/tmp/braidsim.sock"] (no port suffix) is a
    Unix socket. *)

val listen : ?backlog:int -> t -> (Unix.file_descr, string) result
(** Bound, listening socket. A stale Unix-socket file is unlinked first so
    a daemon that died uncleanly can be restarted. *)

val connect : t -> (Unix.file_descr, string) result

val cleanup : t -> unit
(** Unlink a Unix-socket path; no-op for TCP. *)
