(* Bounded admission with per-client round-robin fairness.

   One FIFO per client plus a rotation of client ids: [pop] serves the
   front client's oldest request and moves that client to the back of the
   rotation, so a client that floods the queue cannot starve the others —
   between any two requests of one client, every other waiting client is
   served once. Not thread-safe: the daemon guards it with its state
   mutex. *)

type 'a t = {
  max : int;
  queues : (int, 'a Queue.t) Hashtbl.t;
  rotation : int Queue.t;  (* clients with pending work, service order *)
  mutable depth : int;
}

let create ~max =
  if max <= 0 then invalid_arg "Admission.create: max must be positive";
  { max; queues = Hashtbl.create 8; rotation = Queue.create (); depth = 0 }

let depth t = t.depth
let capacity t = t.max

let push t ~client x =
  if t.depth >= t.max then false
  else begin
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add t.queues client q;
          q
    in
    if Queue.is_empty q then Queue.add client t.rotation;
    Queue.add x q;
    t.depth <- t.depth + 1;
    true
  end

let rec pop t =
  if Queue.is_empty t.rotation then None
  else
    let client = Queue.pop t.rotation in
    match Hashtbl.find_opt t.queues client with
    | None -> pop t
    | Some q when Queue.is_empty q -> pop t
    | Some q ->
        let x = Queue.pop q in
        t.depth <- t.depth - 1;
        if not (Queue.is_empty q) then Queue.add client t.rotation;
        Some x

(* Remove the first element matching [p] without disturbing the service
   order of anything else: rebuild the owning client's FIFO. *)
let cancel t p =
  let found = ref None in
  Hashtbl.iter
    (fun client q ->
      if !found = None then begin
        let keep = Queue.create () in
        Queue.iter
          (fun x ->
            if !found = None && p x then found := Some (client, x)
            else Queue.add x keep)
          q;
        match !found with
        | Some (c, _) when c = client ->
            Queue.clear q;
            Queue.transfer keep q;
            t.depth <- t.depth - 1;
            if Queue.is_empty q then begin
              (* drop the client from the rotation: it has nothing pending *)
              let rot = Queue.create () in
              Queue.iter (fun c' -> if c' <> client then Queue.add c' rot) t.rotation;
              Queue.clear t.rotation;
              Queue.transfer rot t.rotation
            end
        | _ -> ()
      end)
    t.queues;
  Option.map snd !found
