(** Bounded request admission with per-client round-robin fairness.

    One FIFO per client plus a service rotation: {!pop} always serves the
    least-recently-served client that has pending work, so no client can
    starve another no matter how many requests it floods in. The total
    depth is bounded; {!push} past the bound is refused (the daemon turns
    that into an admission error, never silent loss).

    Not thread-safe — the daemon guards it with its state mutex. *)

type 'a t

val create : max:int -> 'a t
(** Raises [Invalid_argument] on a non-positive bound. *)

val push : 'a t -> client:int -> 'a -> bool
(** [false] when the queue is at capacity (the element is not admitted). *)

val pop : 'a t -> 'a option
(** Next element in round-robin-across-clients, FIFO-within-client order. *)

val cancel : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first queued element matching the predicate;
    service order of everything else is unchanged. *)

val depth : 'a t -> int
val capacity : 'a t -> int
