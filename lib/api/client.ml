(* Blocking client for the braidsim serve protocol. One request in flight
   per connection: [request] writes the frame, relays progress frames to
   the callback, and returns the terminal frame. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  match Addr.connect addr with
  | Error e -> Error e
  | Ok fd ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let request ?on_progress t req =
  match Wire.write t.oc (Request.to_json req) with
  | exception Sys_error e -> Error (Printf.sprintf "connection lost: %s" e)
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "connection lost: %s" (Unix.error_message err))
  | () ->
      let rec wait () =
        match Wire.read t.ic with
        | Error err -> Error (Wire.error_to_string err)
        | Ok payload -> (
            match Response.of_json payload with
            | Error e -> Error (Printf.sprintf "malformed response: %s" e)
            | Ok (Response.Progress { completed; total; label; _ }) ->
                Option.iter
                  (fun f -> f ~completed ~total ~label)
                  on_progress;
                wait ()
            | Ok (Response.Done { payload; _ }) -> Ok payload
            | Ok (Response.Failed { message; _ }) -> Error message)
      in
      wait ()
