(** Blocking client for the [braidsim serve] protocol.

    One request in flight per connection: {!request} sends the frame,
    relays any progress frames to [on_progress], and returns the terminal
    frame — the payload on [Done], the server's message on [Failed].
    Protocol-level problems (connection loss, truncated frames, foreign
    schema versions) also come back as [Error]. *)

type t

val connect : Addr.t -> (t, string) result
val close : t -> unit

val request :
  ?on_progress:(completed:int -> total:int -> label:string -> unit) ->
  t ->
  Request.t ->
  (Response.payload, string) result
