module C = Braid_core
module U = Braid_uarch
module W = Braid_workload
module Obs = Braid_obs
module Sim = Braid_sim
module Dse = Braid_dse
module Ck = Braid_check
module Rv = Braid_rv
module E = Sim.Experiments

type env = {
  ctx : Sim.Suite.ctx;
  obs : Obs.Sink.t;
  max_jobs : int option;
}

let one_shot_env () =
  { ctx = Sim.Suite.create_ctx (); obs = Obs.Sink.disabled; max_jobs = None }

let ( let* ) = Result.bind

let effective_jobs env requested =
  match env.max_jobs with
  | None -> requested
  | Some cap -> max 1 (min requested cap)

let find_bench name =
  match W.Spec.find name with
  | p -> Ok p
  | exception Not_found -> Error (Printf.sprintf "unknown benchmark %S" name)

let positive what n =
  if n > 0 then Ok n else Error (Printf.sprintf "%s must be positive (got %d)" what n)

let check_width w =
  if List.mem w [ 4; 8; 16 ] then Ok w
  else Error (Printf.sprintf "width must be 4, 8 or 16 (got %d)" w)

let spec_of_sample (s : Request.sample) =
  Braid_sample.Spec.validate
    {
      Braid_sample.Spec.interval = s.Request.sm_interval;
      max_k = s.Request.sm_max_k;
      warmup = s.Request.sm_warmup;
      seed = s.Request.sm_seed;
    }

(* a sampling request swaps the execution context, nothing else: every
   downstream consumer sees ordinary (extrapolated) pipeline results *)
let ctx_for env sample =
  match sample with
  | None -> Ok env.ctx
  | Some sm ->
      let* spec = spec_of_sample sm in
      Ok (Sim.Suite.create_ctx ~sample:spec ())

let binary_for core program =
  match core with
  | U.Config.Braid_exec | U.Config.Cgooo ->
      (C.Transform.run program).C.Transform.program
  | U.Config.In_order | U.Config.Dep_steer | U.Config.Ooo ->
      (C.Transform.conventional program).C.Extalloc.program

(* Shared by run and trace: generate, compile for the chosen core, emulate,
   and time the resulting trace on the configured machine. This is the
   computation the one-shot CLI historically ran inline. *)
let simulate ~(profile : W.Spec.profile) ~seed ~scale ~core ~width ~obs =
  let program, init_mem = W.Spec.generate profile ~seed ~scale in
  let cfg = U.Config.preset_of_kind core in
  let binary = binary_for core program in
  let cfg = if width = 8 then cfg else U.Config.scale_width cfg width in
  let out = Emulator.run ~max_steps:(50 * scale) ~init_mem binary in
  let trace = Option.get out.Emulator.trace in
  let r = U.Pipeline.run ~obs ~warm_data:(List.map fst init_mem) cfg trace in
  (r, trace)

(* Wire a Runner/Sweep on_done hook to the caller's progress stream. The
   hook fires on worker domains: count and emission happen under one
   mutex so the stream of completion counts a client observes is strictly
   monotonic — an atomic counter alone lets two domains reorder between
   taking their count and emitting their frame. *)
let counted_progress progress ~total =
  match progress with
  | None -> None
  | Some f ->
      let completed = ref 0 in
      let m = Mutex.create () in
      Some
        (fun _i label ->
          Mutex.lock m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock m)
            (fun () ->
              incr completed;
              f ~completed:!completed ~total ~label))

(* --- run --- *)

let pp_result b (res : U.Pipeline.result) =
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "  instructions        %d\n" res.U.Pipeline.instructions;
  pf "  cycles              %d\n" res.U.Pipeline.cycles;
  pf "  IPC                 %.3f\n" res.U.Pipeline.ipc;
  pf "  branch mispredicts  %d / %d lookups\n" res.U.Pipeline.branch_mispredicts
    res.U.Pipeline.branch_lookups;
  pf "  L1I/L1D/L2 misses   %d / %d / %d\n" res.U.Pipeline.l1i_misses
    res.U.Pipeline.l1d_misses res.U.Pipeline.l2_misses;
  pf "  reg dispatch stalls %d\n" res.U.Pipeline.dispatch_stall_regs;
  pf "  stalls (cycles)     redirect %d, icache %d, core %d, front-end %d\n"
    res.U.Pipeline.stalls.U.Pipeline.fetch_redirect
    res.U.Pipeline.stalls.U.Pipeline.fetch_icache
    res.U.Pipeline.stalls.U.Pipeline.dispatch_core
    res.U.Pipeline.stalls.U.Pipeline.dispatch_frontend;
  pf "  avg core occupancy  %.1f instructions\n" res.U.Pipeline.avg_occupancy;
  let a = res.U.Pipeline.activity in
  pf "  RF accesses         %d external, %d internal; %d bypassed values\n"
    (a.U.Machine.ext_rf_reads + a.U.Machine.ext_rf_writes)
    (a.U.Machine.int_rf_reads + a.U.Machine.int_rf_writes)
    a.U.Machine.bypass_values

let exec_run (r : Request.run) =
  let* profile = find_bench r.Request.r_bench in
  let* scale = positive "scale" r.Request.r_scale in
  let* width = check_width r.Request.r_width in
  let seed = r.Request.r_seed and core = r.Request.r_core in
  match r.Request.r_sample with
  | None ->
      let res, _ =
        simulate ~profile ~seed ~scale ~core ~width ~obs:Obs.Sink.disabled
      in
      let b = Buffer.create 1024 in
      Printf.ksprintf (Buffer.add_string b) "%s on %s\n" profile.W.Spec.name
        res.U.Pipeline.config_name;
      pp_result b res;
      Ok (Response.Run_done { text = Buffer.contents b; sampled = None })
  | Some sm ->
      let* spec = spec_of_sample sm in
      let program, init_mem = W.Spec.generate profile ~seed ~scale in
      let cfg = U.Config.preset_of_kind core in
      let cfg = if width = 8 then cfg else U.Config.scale_width cfg width in
      let t =
        Braid_sample.Driver.run ~init_mem
          ~warm_data:(List.map fst init_mem)
          ~max_steps:(50 * scale) ~spec cfg (binary_for core program)
      in
      let res = t.Braid_sample.Driver.result in
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "%s on %s (sampled: %s)\n" profile.W.Spec.name
        res.U.Pipeline.config_name
        (Braid_sample.Spec.to_string spec);
      pp_result b res;
      let reps = List.length t.Braid_sample.Driver.reps in
      pf "  sampled             %d of %d intervals simulated\n" reps
        t.Braid_sample.Driver.num_intervals;
      let sp_error =
        if not sm.Request.sm_verify then None
        else begin
          let full, _ =
            simulate ~profile ~seed ~scale ~core ~width ~obs:Obs.Sink.disabled
          in
          let e = Braid_sample.Driver.error_vs ~full t in
          pf "  full-simulation IPC %.3f (sampled error %.2f%%)\n"
            full.U.Pipeline.ipc (100.0 *. e);
          Some e
        end
      in
      Ok
        (Response.Run_done
           {
             text = Buffer.contents b;
             sampled =
               Some
                 {
                   Response.sp_reps = reps;
                   sp_intervals = t.Braid_sample.Driver.num_intervals;
                   sp_ipc = t.Braid_sample.Driver.ipc;
                   sp_error;
                 };
           })

(* --- experiment --- *)

let exec_experiment ?progress env (e : Request.experiment) =
  let* scale = positive "scale" e.Request.e_scale in
  let* jobs = positive "jobs" e.Request.e_jobs in
  let* exps =
    List.fold_left
      (fun acc id ->
        let* acc = acc in
        match E.find id with
        | exp -> Ok (exp :: acc)
        | exception Not_found ->
            Error (Printf.sprintf "unknown experiment %S" id))
      (Ok []) e.Request.e_ids
    |> Result.map List.rev
  in
  let exps = match exps with [] -> E.all | exps -> exps in
  let* ctx = ctx_for env e.Request.e_sample in
  let on_done =
    counted_progress progress ~total:(Sim.Runner.experiment_job_count exps)
  in
  let results =
    Sim.Runner.run_experiments ?on_done ~ctx ~jobs:(effective_jobs env jobs)
      ~scale exps
  in
  let counters =
    if e.Request.e_counters then Some (E.counters_report ctx ~scale) else None
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun (r, _) ->
      Buffer.add_string b (Sim.Report.render_full r);
      Buffer.add_char b '\n')
    results;
  Option.iter
    (fun cs -> Buffer.add_string b (Sim.Report.render_counters cs))
    counters;
  (* The served document is deterministic — per-job wall-clock telemetry
     is omitted (unlike the bench harness's own --json), so a client and
     the one-shot CLI produce byte-identical files. The "jobs" field
     records the *requested* parallelism: output never depends on it. *)
  let doc =
    Sim.Report.to_json ?counters ~scale ~jobs
      (List.map (fun (r, _) -> (r, None)) results)
  in
  Ok (Response.Experiment_done { text = Buffer.contents b; doc })

(* --- sweep --- *)

let exec_sweep ?progress env (s : Request.sweep) =
  let* scale = positive "scale" s.Request.s_scale in
  let* jobs = positive "jobs" s.Request.s_jobs in
  let* axes =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* a = Dse.Axis.of_spec spec in
        Ok (a :: acc))
      (Ok []) s.Request.s_axes
    |> Result.map List.rev
  in
  let* benches =
    match s.Request.s_benches with
    | [] -> Ok W.Spec.all
    | names ->
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            let* p = find_bench n in
            Ok (p :: acc))
          (Ok []) names
        |> Result.map List.rev
  in
  let* cache =
    match s.Request.s_cache_dir with
    | None -> Ok None
    | Some d -> Result.map Option.some (Dse.Cache.open_dir d)
  in
  let preset = U.Config.preset_of_kind s.Request.s_preset in
  let* points =
    Result.map_error
      (Printf.sprintf "invalid sweep grid: %s")
      (Dse.Grid.expand ~base:preset ~mode:s.Request.s_mode axes)
  in
  let* ctx = ctx_for env s.Request.s_sample in
  let on_done = counted_progress progress ~total:(Dse.Sweep.job_count ~benches points) in
  let outcome =
    Dse.Sweep.run ~obs:env.obs ?cache ?on_done ~ctx
      ~jobs:(effective_jobs env jobs) ~seed:s.Request.s_seed ~scale ~benches
      points
  in
  let text = Dse.Frontier.render outcome in
  let doc =
    Dse.Frontier.to_json ~preset ~mode:s.Request.s_mode ~axes
      ~seed:s.Request.s_seed ~scale outcome
  in
  Ok
    (Response.Sweep_done
       {
         text;
         doc;
         simulated = outcome.Dse.Sweep.stats.Dse.Sweep.simulated;
         cache_hits = outcome.Dse.Sweep.stats.Dse.Sweep.cache_hits;
       })

(* Dump a live sink's counter registry, one name per line — shared by
   trace --counters and cmp --counters (where the per-core "core<i>."
   prefixes keep the cores apart). *)
let render_counter_registry obs =
  let cb = Buffer.create 1024 in
  Buffer.add_char cb '\n';
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Counters.Count n ->
          Buffer.add_string cb (Printf.sprintf "%-26s %d\n" name n)
      | Obs.Counters.Hist { counts; observations; sum; _ } ->
          Buffer.add_string cb
            (Printf.sprintf "%-26s n=%d sum=%d buckets=[%s]\n" name
               observations sum
               (String.concat ";"
                  (Array.to_list (Array.map string_of_int counts)))))
    (Obs.Counters.snapshot (Obs.Sink.counters obs));
  Buffer.contents cb

(* --- trace --- *)

let exec_trace (t : Request.trace) =
  let* profile = find_bench t.Request.t_bench in
  let* scale = positive "scale" t.Request.t_scale in
  let* width = check_width t.Request.t_width in
  let* buffer = positive "buffer" t.Request.t_buffer in
  let obs = Obs.Sink.create () in
  let tracer = Obs.Tracer.create ~capacity:buffer () in
  Obs.Sink.attach_tracer obs tracer;
  let r, trace =
    simulate ~profile ~seed:t.Request.t_seed ~scale ~core:t.Request.t_core
      ~width ~obs
  in
  let events = Obs.Tracer.events tracer in
  let label uid = Disasm.instr trace.Trace.events.(uid).Trace.instr in
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%s on %s: %d instructions, %d cycles, IPC %.3f\n" profile.W.Spec.name
    r.U.Pipeline.config_name r.U.Pipeline.instructions r.U.Pipeline.cycles
    r.U.Pipeline.ipc;
  pf "tracer: %d events retained, %d dropped (buffer %d)\n\n"
    (Obs.Tracer.length tracer)
    (Obs.Tracer.dropped tracer)
    (Obs.Tracer.capacity tracer);
  let from_cycle = t.Request.t_from and cycles = t.Request.t_cycles in
  (match Obs.Timeline.render ~from_cycle ~cycles ~label events with
  | "" ->
      pf
        "no instruction activity in cycles [%d, %d) — try --from/--cycles \
         (run length %d cycles)\n"
        from_cycle (from_cycle + cycles) r.U.Pipeline.cycles
  | diagram -> Buffer.add_string b diagram);
  let* chrome =
    if not t.Request.t_chrome then Ok None
    else
      let chrome_label uid = Printf.sprintf "%d %s" uid (label uid) in
      let doc = Obs.Chrome.export ~label:chrome_label tracer in
      (* self-check with the same parser the test suite uses *)
      match Json.parse doc with
      | Error msg ->
          Error
            (Printf.sprintf "internal error: Chrome export is not valid JSON: %s"
               msg)
      | Ok _ ->
          let tracks =
            List.sort_uniq compare (List.map Obs.Tracer.track_of events)
          in
          Ok
            (Some
               {
                 Response.c_doc = doc;
                 c_events = List.length events;
                 c_tracks = List.length tracks;
               })
  in
  let counters_text =
    if not t.Request.t_counters then None else Some (render_counter_registry obs)
  in
  Ok (Response.Trace_done { text = Buffer.contents b; counters_text; chrome })

(* --- fuzz --- *)

let exec_fuzz (f : Request.fuzz) =
  let* count = positive "count" f.Request.f_count in
  let cores =
    match f.Request.f_cores with [] -> Ck.Oracle.default_cores | cs -> cs
  in
  let outcome =
    Ck.Fuzz.run ~invariants:f.Request.f_invariants ~shrink:f.Request.f_shrink
      ~cores ~first_index:f.Request.f_index ~count ~seed:f.Request.f_seed ()
  in
  let core_names = String.concat "," (List.map U.Config.Core_kind.to_string cores) in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let failures = List.length outcome.Ck.Fuzz.failures in
  if outcome.Ck.Fuzz.failures = [] then
    pf
      "fuzz: %d case(s) on [%s], seed %d: 0 divergences, 0 invariant \
       violations%s\n"
      outcome.Ck.Fuzz.tested core_names f.Request.f_seed
      (if f.Request.f_invariants then "" else " (monitor off)")
  else begin
    pf "fuzz: %d of %d case(s) FAILED on [%s], seed %d\n" failures
      outcome.Ck.Fuzz.tested core_names f.Request.f_seed;
    List.iter
      (fun (fl : Ck.Fuzz.failure) ->
        pf "\ncase %s\n%s"
          (Ck.Gen.describe fl.Ck.Fuzz.case)
          (Ck.Oracle.render fl.Ck.Fuzz.report);
        match fl.Ck.Fuzz.shrunk with
        | None -> ()
        | Some (reduced, rep) ->
            pf "shrunk to %s\n%s" (Ck.Gen.describe reduced)
              (Ck.Oracle.render rep);
            let program, _ = Ck.Gen.build reduced in
            pf "reproducer (virtual IR):\n%s" (Disasm.program program))
      outcome.Ck.Fuzz.failures
  end;
  Ok
    (Response.Fuzz_done
       { text = Buffer.contents b; tested = outcome.Ck.Fuzz.tested; failures })

(* --- rv --- *)

let exec_rv (v : Request.rv) =
  let* img =
    Result.map_error
      (fun e -> "rv image: " ^ Rv.Image.error_to_string e)
      (Rv.Image.of_hex v.Request.v_hex)
  in
  let* t =
    Result.map_error
      (fun e -> "rv translate: " ^ Rv.Translate.error_to_string e)
      (Rv.Translate.run img)
  in
  let cores =
    match v.Request.v_cores with [] -> Ck.Oracle.default_cores | cs -> cs
  in
  let rv = Rv.Emu.run img in
  let program = t.Rv.Translate.program and init_mem = t.Rv.Translate.init_mem in
  let ir = Emulator.run ~trace:false ~init_mem program in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%s: %d bytes, %d reachable rv instructions -> %d IR instructions\n"
    img.Rv.Image.name (Rv.Image.size img) t.Rv.Translate.rv_count
    t.Rv.Translate.ir_count;
  pf "reference: %s after %d instructions\n"
    (Rv.Emu.stop_to_string rv.Rv.Emu.stop)
    rv.Rv.Emu.steps;
  if rv.Rv.Emu.output <> "" then pf "output: %s\n" (String.escaped rv.Rv.Emu.output);
  pf "translated: %d IR instructions retired\n" ir.Emulator.dynamic_count;
  (* Same compile/emulate/simulate chain as [simulate], with the program
     coming from the RV frontend instead of a workload generator. *)
  List.iter
    (fun core ->
      let cfg = U.Config.preset_of_kind core in
      let out = Emulator.run ~init_mem (binary_for core program) in
      let trace = Option.get out.Emulator.trace in
      let r =
        U.Pipeline.run ~obs:Obs.Sink.disabled
          ~warm_data:(List.map fst init_mem) cfg trace
      in
      pf "  %-24s %8d cycles, IPC %.3f\n" r.U.Pipeline.config_name
        r.U.Pipeline.cycles r.U.Pipeline.ipc)
    cores;
  let* oracle_ok =
    if not v.Request.v_oracle then Ok None
    else
      match Ck.Rv_oracle.check ~cores img with
      | Error e -> Error ("rv oracle: " ^ Rv.Translate.error_to_string e)
      | Ok rep ->
          let agree = Ck.Rv_oracle.ok rep in
          if agree then
            pf "oracle: ok — reference, translated and all cores agree\n"
          else Buffer.add_string b (Ck.Rv_oracle.render rep);
          Ok (Some agree)
  in
  Ok
    (Response.Rv_done
       {
         text = Buffer.contents b;
         output = rv.Rv.Emu.output;
         exit_code =
           (match rv.Rv.Emu.stop with Rv.Emu.Exited c -> Some c | _ -> None);
         rv_dynamic = rv.Rv.Emu.steps;
         ir_dynamic = ir.Emulator.dynamic_count;
         oracle_ok;
       })

(* --- cmp --- *)

let exec_cmp env (c : Request.cmp) =
  let* scale = positive "scale" c.Request.c_scale in
  let* width = check_width c.Request.c_width in
  let* () =
    if c.Request.c_benches = [] then Error "at least one benchmark is required"
    else Ok ()
  in
  let* (_ : W.Spec.profile list) =
    List.fold_left
      (fun acc n ->
        let* acc = acc in
        let* p = find_bench n in
        Ok (p :: acc))
      (Ok []) c.Request.c_benches
  in
  let cfg = U.Config.preset_of_kind c.Request.c_core in
  let cfg = if width = 8 then cfg else U.Config.scale_width cfg width in
  let* cmp =
    U.Config.Cmp.validate
      (U.Config.Cmp.make ~l2:c.Request.c_l2 ~cores:c.Request.c_cores
         ~workloads:c.Request.c_benches ())
  in
  let obs = if c.Request.c_counters then Obs.Sink.create () else Obs.Sink.disabled in
  (* the env's suite ctx memoises preparations, so a daemon serves
     repeats from warm traces while producing the one-shot bytes *)
  let r =
    Braid_cmp.Cmp_bench.run ~obs env.ctx ~seed:c.Request.c_seed ~scale ~cfg cmp
  in
  let* () =
    match r.Braid_cmp.Cmp.violations with
    | [] -> Ok ()
    | vs ->
        Error
          (Printf.sprintf "internal error: coherence violation: %s"
             (String.concat "; " vs))
  in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cmp: %d cores of %s, shared %dKB L2 (rate mode)\n"
    cmp.U.Config.Cmp.cores cfg.U.Config.name
    (cmp.U.Config.Cmp.l2.U.Config.size_bytes / 1024);
  pf "  %-4s %-10s %10s %13s %6s %8s\n" "core" "bench" "cycles" "instructions"
    "IPC" "slowdown";
  List.iter
    (fun (cr : Braid_cmp.Cmp.core_result) ->
      pf "  %-4d %-10s %10d %13d %6.3f %8.3f\n" cr.Braid_cmp.Cmp.core_id
        cr.Braid_cmp.Cmp.bench cr.Braid_cmp.Cmp.result.U.Core.cycles
        cr.Braid_cmp.Cmp.result.U.Core.instructions
        cr.Braid_cmp.Cmp.result.U.Core.ipc cr.Braid_cmp.Cmp.slowdown)
    r.Braid_cmp.Cmp.cores;
  pf "  aggregate IPC       %.3f\n" r.Braid_cmp.Cmp.aggregate_ipc;
  pf "  weighted speedup    %.3f\n" r.Braid_cmp.Cmp.weighted_speedup;
  pf "  global cycles       %d\n" r.Braid_cmp.Cmp.cycles;
  pf "  shared L2           %d hits, %d misses\n" r.Braid_cmp.Cmp.l2_hits
    r.Braid_cmp.Cmp.l2_misses;
  let coh = r.Braid_cmp.Cmp.coherence in
  pf "  coherence           %d invalidations, %d downgrades, %d writebacks, %d remote hits\n"
    coh.U.Mem_hier.invalidations coh.U.Mem_hier.downgrades
    coh.U.Mem_hier.writebacks coh.U.Mem_hier.remote_hits;
  let counters_text =
    if not c.Request.c_counters then None else Some (render_counter_registry obs)
  in
  Ok
    (Response.Cmp_done
       {
         text = Buffer.contents b;
         aggregate_ipc = r.Braid_cmp.Cmp.aggregate_ipc;
         weighted_speedup = r.Braid_cmp.Cmp.weighted_speedup;
         cycles = r.Braid_cmp.Cmp.cycles;
         invalidations = coh.U.Mem_hier.invalidations;
         downgrades = coh.U.Mem_hier.downgrades;
         writebacks = coh.U.Mem_hier.writebacks;
         remote_hits = coh.U.Mem_hier.remote_hits;
         counters_text;
       })

(* --- dispatch --- *)

let exec ?progress env request =
  (* a raising job (or any internal bug) rejects this request only: the
     daemon's executor loop and every other queued request stay alive *)
  try
    match request with
    | Request.Run r -> exec_run r
    | Request.Experiment e -> exec_experiment ?progress env e
    | Request.Sweep s -> exec_sweep ?progress env s
    | Request.Trace t -> exec_trace t
    | Request.Fuzz f -> exec_fuzz f
    | Request.Rv v -> exec_rv v
    | Request.Cmp c -> exec_cmp env c
    | Request.Status | Request.Cancel _ | Request.Shutdown ->
        Error
          (Printf.sprintf "op %S is only served by a running daemon"
             (Request.op_name request))
  with
  | Sim.Runner.Job_failed { label; error } ->
      Error (Printf.sprintf "job %s failed: %s" label (Printexc.to_string error))
  | e -> Error ("internal error: " ^ Printexc.to_string e)
