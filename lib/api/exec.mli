(** Request execution: the one engine behind both the one-shot CLI and the
    daemon dispatcher. Every simulation capability (run / experiment /
    sweep / trace / fuzz) is a total function from a typed {!Request.t} to
    a typed {!Response.payload} — invalid inputs, failed jobs and internal
    errors all come back as [Error] messages, never exceptions, so one bad
    request can never take a daemon down. *)

type env = {
  ctx : Braid_sim.Suite.ctx;
      (** shared memoisation context: a daemon keeps one for its whole
          lifetime, so anything warm (prepared traces, simulation results)
          is reused across requests and clients *)
  obs : Braid_obs.Sink.t;
      (** the daemon's counter registry ([dse.simulations],
          [dse.cache_hits], ...); {!Braid_obs.Sink.disabled} one-shot *)
  max_jobs : int option;
      (** cap on per-request domain-pool width; the requested value is
          still what documents record, since output never depends on it *)
}

val one_shot_env : unit -> env
(** Fresh context, disabled sink, no jobs cap — the one-shot CLI's
    environment. *)

val exec :
  ?progress:(completed:int -> total:int -> label:string -> unit) ->
  env ->
  Request.t ->
  (Response.payload, string) result
(** Execute one request. [progress] streams per-job completions for
    experiment and sweep requests; it fires on worker domains, so it must
    be domain-safe. [Status]/[Cancel]/[Shutdown] are daemon control ops
    and come back as [Error] here. *)
