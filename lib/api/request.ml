module Config = Braid_uarch.Config

let schema = "braidsim-api/1"

type sample = {
  sm_interval : int;
  sm_max_k : int;
  sm_warmup : int;
  sm_seed : int;
  sm_verify : bool;  (** run-only: also run full simulation and report error *)
}

type run = {
  r_bench : string;
  r_seed : int;
  r_scale : int;
  r_core : Config.core_kind;
  r_width : int;
  r_sample : sample option;
}

type experiment = {
  e_ids : string list;  (** empty: every experiment *)
  e_scale : int;
  e_jobs : int;
  e_counters : bool;
  e_sample : sample option;
}

type sweep = {
  s_preset : Config.core_kind;
  s_axes : string list;  (** [Axis.of_spec] forms, e.g. ["ext_regs=8,16"] *)
  s_mode : Braid_dse.Grid.mode;
  s_benches : string list;  (** empty: all 26 *)
  s_seed : int;
  s_scale : int;
  s_jobs : int;
  s_cache_dir : string option;  (** server-side path *)
  s_sample : sample option;
}

type trace = {
  t_bench : string;
  t_seed : int;
  t_scale : int;
  t_core : Config.core_kind;
  t_width : int;
  t_from : int;
  t_cycles : int;
  t_buffer : int;
  t_chrome : bool;  (** also return the Chrome trace_event document *)
  t_counters : bool;
}

type fuzz = {
  f_count : int;
  f_seed : int;
  f_index : int;
  f_cores : Config.core_kind list;  (** empty: the default oracle trio *)
  f_invariants : bool;
  f_shrink : bool;
}

type rv = {
  v_hex : string;  (** braid-rv/1 hex text of the image *)
  v_cores : Config.core_kind list;  (** empty: the default oracle trio *)
  v_oracle : bool;
}

type cmp = {
  c_benches : string list;  (* assigned to cores round-robin; non-empty *)
  c_cores : int;
  c_seed : int;
  c_scale : int;
  c_core : Config.core_kind;
  c_width : int;
  c_l2 : Config.cache_geometry option;  (* shared L2; None: scaled default *)
  c_counters : bool;
}

type t =
  | Run of run
  | Experiment of experiment
  | Sweep of sweep
  | Trace of trace
  | Fuzz of fuzz
  | Rv of rv
  | Cmp of cmp
  | Status
  | Cancel of { request_id : int }
  | Shutdown

let op_name = function
  | Run _ -> "run"
  | Experiment _ -> "experiment"
  | Sweep _ -> "sweep"
  | Trace _ -> "trace"
  | Fuzz _ -> "fuzz"
  | Rv _ -> "rv"
  | Cmp _ -> "cmp"
  | Status -> "status"
  | Cancel _ -> "cancel"
  | Shutdown -> "shutdown"

(* --- JSON --- *)

let num n = Json.Num (float_of_int n)
let strs xs = Json.Arr (List.map (fun s -> Json.Str s) xs)
let core k = Json.Str (Config.Core_kind.to_string k)

(* an absent "sample" object means full simulation, so pre-sampling
   clients produce and parse the same documents as before *)
let sample_fields = function
  | None -> []
  | Some s ->
      [
        ( "sample",
          Json.Obj
            [
              ("interval", num s.sm_interval); ("max_k", num s.sm_max_k);
              ("warmup", num s.sm_warmup); ("seed", num s.sm_seed);
              ("verify", Json.Bool s.sm_verify);
            ] );
      ]

let to_tree t =
  let fields =
    match t with
    | Run r ->
        [
          ("bench", Json.Str r.r_bench); ("seed", num r.r_seed);
          ("scale", num r.r_scale); ("core", core r.r_core);
          ("width", num r.r_width);
        ]
        @ sample_fields r.r_sample
    | Experiment e ->
        [
          ("ids", strs e.e_ids); ("scale", num e.e_scale);
          ("jobs", num e.e_jobs); ("counters", Json.Bool e.e_counters);
        ]
        @ sample_fields e.e_sample
    | Sweep s ->
        [
          ("preset", core s.s_preset); ("axes", strs s.s_axes);
          ("mode", Json.Str (Braid_dse.Grid.mode_to_string s.s_mode));
          ("benches", strs s.s_benches); ("seed", num s.s_seed);
          ("scale", num s.s_scale); ("jobs", num s.s_jobs);
        ]
        @ (match s.s_cache_dir with
          | None -> []
          | Some d -> [ ("cache_dir", Json.Str d) ])
        @ sample_fields s.s_sample
    | Trace t ->
        [
          ("bench", Json.Str t.t_bench); ("seed", num t.t_seed);
          ("scale", num t.t_scale); ("core", core t.t_core);
          ("width", num t.t_width); ("from", num t.t_from);
          ("cycles", num t.t_cycles); ("buffer", num t.t_buffer);
          ("chrome", Json.Bool t.t_chrome);
          ("counters", Json.Bool t.t_counters);
        ]
    | Fuzz f ->
        [
          ("count", num f.f_count); ("seed", num f.f_seed);
          ("index", num f.f_index);
          ("cores", Json.Arr (List.map (fun k -> core k) f.f_cores));
          ("invariants", Json.Bool f.f_invariants);
          ("shrink", Json.Bool f.f_shrink);
        ]
    | Rv v ->
        [
          ("hex", Json.Str v.v_hex);
          ("cores", Json.Arr (List.map (fun k -> core k) v.v_cores));
          ("oracle", Json.Bool v.v_oracle);
        ]
    | Cmp c ->
        [
          ("benches", strs c.c_benches); ("cores", num c.c_cores);
          ("seed", num c.c_seed); ("scale", num c.c_scale);
          ("core", core c.c_core); ("width", num c.c_width);
        ]
        @ (match c.c_l2 with
          | None -> []
          | Some g ->
              [
                ( "l2",
                  Json.Obj
                    [
                      ("size_bytes", num g.Config.size_bytes);
                      ("ways", num g.Config.ways);
                      ("line_bytes", num g.Config.line_bytes);
                      ("latency", num g.Config.latency);
                    ] );
              ])
        @ [ ("counters", Json.Bool c.c_counters) ]
    | Status | Shutdown -> []
    | Cancel { request_id } -> [ ("id", num request_id) ]
  in
  Json.Obj (("schema", Json.Str schema) :: ("op", Json.Str (op_name t)) :: fields)

let to_json t = Json.to_string (to_tree t)

(* --- decoding --- *)

let ( let* ) = Result.bind

let field name conv doc =
  match conv name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let bool_member name doc =
  match Json.member name doc with Some (Json.Bool b) -> Some b | _ -> None

let str_list_member name doc =
  match Json.member name doc with
  | Some (Json.Arr xs) ->
      List.fold_left
        (fun acc x ->
          match (acc, x) with
          | Some acc, Json.Str s -> Some (s :: acc)
          | _ -> None)
        (Some []) xs
      |> Option.map List.rev
  | _ -> None

let core_member name doc =
  match Json.str_member name doc with
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  | Some s -> Config.Core_kind.of_string s

(* absent is fine (full simulation); a present "sample" must be complete *)
let sample_member doc =
  match Json.member "sample" doc with
  | None -> Ok None
  | Some sub ->
      let* sm_interval = field "interval" Json.int_member sub in
      let* sm_max_k = field "max_k" Json.int_member sub in
      let* sm_warmup = field "warmup" Json.int_member sub in
      let* sm_seed = field "seed" Json.int_member sub in
      let* sm_verify = field "verify" bool_member sub in
      Ok (Some { sm_interval; sm_max_k; sm_warmup; sm_seed; sm_verify })

let of_tree doc =
  match Json.str_member "schema" doc with
  | None -> Error "missing \"schema\" field"
  | Some v when v <> schema ->
      Error
        (Printf.sprintf "unsupported schema %S (this endpoint speaks %s)" v
           schema)
  | Some _ -> (
      match Json.str_member "op" doc with
      | None -> Error "missing \"op\" field"
      | Some "run" ->
          let* r_bench = field "bench" Json.str_member doc in
          let* r_seed = field "seed" Json.int_member doc in
          let* r_scale = field "scale" Json.int_member doc in
          let* r_core = core_member "core" doc in
          let* r_width = field "width" Json.int_member doc in
          let* r_sample = sample_member doc in
          Ok (Run { r_bench; r_seed; r_scale; r_core; r_width; r_sample })
      | Some "experiment" ->
          let* e_ids = field "ids" str_list_member doc in
          let* e_scale = field "scale" Json.int_member doc in
          let* e_jobs = field "jobs" Json.int_member doc in
          let* e_counters = field "counters" bool_member doc in
          let* e_sample = sample_member doc in
          Ok (Experiment { e_ids; e_scale; e_jobs; e_counters; e_sample })
      | Some "sweep" ->
          let* s_preset = core_member "preset" doc in
          let* s_axes = field "axes" str_list_member doc in
          let* mode = field "mode" Json.str_member doc in
          let* s_mode = Braid_dse.Grid.mode_of_string mode in
          let* s_benches = field "benches" str_list_member doc in
          let* s_seed = field "seed" Json.int_member doc in
          let* s_scale = field "scale" Json.int_member doc in
          let* s_jobs = field "jobs" Json.int_member doc in
          let s_cache_dir = Json.str_member "cache_dir" doc in
          let* s_sample = sample_member doc in
          Ok
            (Sweep
               { s_preset; s_axes; s_mode; s_benches; s_seed; s_scale; s_jobs;
                 s_cache_dir; s_sample })
      | Some "trace" ->
          let* t_bench = field "bench" Json.str_member doc in
          let* t_seed = field "seed" Json.int_member doc in
          let* t_scale = field "scale" Json.int_member doc in
          let* t_core = core_member "core" doc in
          let* t_width = field "width" Json.int_member doc in
          let* t_from = field "from" Json.int_member doc in
          let* t_cycles = field "cycles" Json.int_member doc in
          let* t_buffer = field "buffer" Json.int_member doc in
          let* t_chrome = field "chrome" bool_member doc in
          let* t_counters = field "counters" bool_member doc in
          Ok
            (Trace
               { t_bench; t_seed; t_scale; t_core; t_width; t_from; t_cycles;
                 t_buffer; t_chrome; t_counters })
      | Some "fuzz" ->
          let* f_count = field "count" Json.int_member doc in
          let* f_seed = field "seed" Json.int_member doc in
          let* f_index = field "index" Json.int_member doc in
          let* names = field "cores" str_list_member doc in
          let* f_cores =
            List.fold_left
              (fun acc n ->
                let* acc = acc in
                let* k = Config.Core_kind.of_string n in
                Ok (k :: acc))
              (Ok []) names
            |> Result.map List.rev
          in
          let* f_invariants = field "invariants" bool_member doc in
          let* f_shrink = field "shrink" bool_member doc in
          Ok (Fuzz { f_count; f_seed; f_index; f_cores; f_invariants; f_shrink })
      | Some "rv" ->
          let* v_hex = field "hex" Json.str_member doc in
          let* names = field "cores" str_list_member doc in
          let* v_cores =
            List.fold_left
              (fun acc n ->
                let* acc = acc in
                let* k = Config.Core_kind.of_string n in
                Ok (k :: acc))
              (Ok []) names
            |> Result.map List.rev
          in
          let* v_oracle = field "oracle" bool_member doc in
          Ok (Rv { v_hex; v_cores; v_oracle })
      | Some "cmp" ->
          let* c_benches = field "benches" str_list_member doc in
          let* c_cores = field "cores" Json.int_member doc in
          let* c_seed = field "seed" Json.int_member doc in
          let* c_scale = field "scale" Json.int_member doc in
          let* c_core = core_member "core" doc in
          let* c_width = field "width" Json.int_member doc in
          (* absent is fine (the scaled default geometry); a present "l2"
             must be complete *)
          let* c_l2 =
            match Json.member "l2" doc with
            | None -> Ok None
            | Some sub ->
                let* size_bytes = field "size_bytes" Json.int_member sub in
                let* ways = field "ways" Json.int_member sub in
                let* line_bytes = field "line_bytes" Json.int_member sub in
                let* latency = field "latency" Json.int_member sub in
                Ok
                  (Some
                     { Config.size_bytes; ways; line_bytes; latency })
          in
          let* c_counters = field "counters" bool_member doc in
          Ok
            (Cmp
               { c_benches; c_cores; c_seed; c_scale; c_core; c_width; c_l2;
                 c_counters })
      | Some "status" -> Ok Status
      | Some "cancel" ->
          let* request_id = field "id" Json.int_member doc in
          Ok (Cancel { request_id })
      | Some "shutdown" -> Ok Shutdown
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

let of_json s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed request: %s" msg)
  | Ok doc -> of_tree doc
