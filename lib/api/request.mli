(** The typed request vocabulary of the [braidsim-api/1] protocol: one
    variant per served capability. The one-shot CLI, the [braidsim client]
    subcommand and the daemon dispatcher all build and consume this type,
    so one-shot and served execution are the same computation by
    construction.

    The JSON wire form is one object per request:
    [{"schema":"braidsim-api/1","op":"run",...}]. [of_json] rejects a
    missing or foreign schema version before looking at anything else —
    the version-policy contract documented in docs/TUTORIAL.md. *)

module Config = Braid_uarch.Config

val schema : string
(** ["braidsim-api/1"]. The version suffix bumps on any incompatible
    change to the request or response vocabulary. *)

type sample = {
  sm_interval : int;  (** {!Braid_sample.Spec.interval} *)
  sm_max_k : int;
  sm_warmup : int;
  sm_seed : int;
  sm_verify : bool;
      (** [run] only: also run the full simulation and report the sampled
          IPC's relative error against it; ignored by [experiment] and
          [sweep] *)
}
(** Sampled-simulation settings, mirroring {!Braid_sample.Spec.t}. Carried
    as an optional ["sample"] object on [run], [experiment] and [sweep];
    absent means full simulation, so pre-sampling documents keep their
    exact wire form and meaning (no schema bump). *)

type run = {
  r_bench : string;
  r_seed : int;
  r_scale : int;
  r_core : Config.core_kind;
  r_width : int;
  r_sample : sample option;
}

type experiment = {
  e_ids : string list;  (** empty: every experiment *)
  e_scale : int;
  e_jobs : int;  (** requested parallelism; a server may cap it *)
  e_counters : bool;
  e_sample : sample option;
}

type sweep = {
  s_preset : Config.core_kind;
  s_axes : string list;  (** {!Braid_dse.Axis.of_spec} forms *)
  s_mode : Braid_dse.Grid.mode;
  s_benches : string list;  (** empty: all 26 *)
  s_seed : int;
  s_scale : int;
  s_jobs : int;
  s_cache_dir : string option;  (** resolved on the server's filesystem *)
  s_sample : sample option;
}

type trace = {
  t_bench : string;
  t_seed : int;
  t_scale : int;
  t_core : Config.core_kind;
  t_width : int;
  t_from : int;
  t_cycles : int;
  t_buffer : int;
  t_chrome : bool;  (** also return the Chrome trace_event document *)
  t_counters : bool;
}

type fuzz = {
  f_count : int;
  f_seed : int;
  f_index : int;
  f_cores : Config.core_kind list;  (** empty: the default oracle trio *)
  f_invariants : bool;
  f_shrink : bool;
}

type rv = {
  v_hex : string;
      (** the image in {!Braid_rv.Image.to_hex} form — text-safe on the
          wire, and identical for a fixture no matter which side
          assembled it *)
  v_cores : Config.core_kind list;  (** empty: the default oracle trio *)
  v_oracle : bool;  (** also run the frontend differential oracle *)
}

type cmp = {
  c_benches : string list;
      (** assigned to cores round-robin
          ({!Braid_uarch.Config.Cmp.workload_of}); must be non-empty *)
  c_cores : int;  (** 1-64 *)
  c_seed : int;
  c_scale : int;
  c_core : Config.core_kind;  (** every core runs this machine *)
  c_width : int;
  c_l2 : Config.cache_geometry option;
      (** shared L2 geometry; [None]: the solo L2 with capacity scaled by
          the core count ({!Braid_uarch.Config.Cmp.default_l2}) *)
  c_counters : bool;  (** also return the namespaced counter registry *)
}

type t =
  | Run of run
  | Experiment of experiment
  | Sweep of sweep
  | Trace of trace
  | Fuzz of fuzz
  | Rv of rv
  | Cmp of cmp
      (** multi-programmed rate-mode CMP over a shared coherent L2 *)
  | Status  (** daemon introspection; answered without queueing *)
  | Cancel of { request_id : int }  (** withdraw a still-queued request *)
  | Shutdown  (** drain admitted work, then exit *)

val op_name : t -> string

val to_json : t -> string
val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}; unknown schema versions, unknown ops and
    missing or ill-typed fields are all errors naming the offender. *)
