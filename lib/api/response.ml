let schema = Request.schema

type status = {
  pool_jobs : int;
  max_queue : int;
  queue_depth : int;
  active : (int * string) option;  (** in-flight request id and op *)
  served : int;
  failed : int;
  cancelled : int;
  counters : (string * int) list;
}

type chrome = { c_doc : string; c_events : int; c_tracks : int }

type sampled = {
  sp_reps : int;  (** representative intervals actually simulated *)
  sp_intervals : int;  (** profiling intervals in the whole run *)
  sp_ipc : float;  (** the sampled IPC estimate *)
  sp_error : float option;  (** vs the full run, when verify was requested *)
}

type payload =
  | Run_done of { text : string; sampled : sampled option }
  | Experiment_done of { text : string; doc : string }
  | Sweep_done of {
      text : string;
      doc : string;
      simulated : int;
      cache_hits : int;
    }
  | Trace_done of {
      text : string;
      counters_text : string option;
      chrome : chrome option;
    }
  | Fuzz_done of { text : string; tested : int; failures : int }
  | Cmp_done of {
      text : string;
      aggregate_ipc : float;
      weighted_speedup : float;
      cycles : int;
      invalidations : int;
      downgrades : int;
      writebacks : int;
      remote_hits : int;
      counters_text : string option;
    }
  | Rv_done of {
      text : string;
      output : string;
      exit_code : int option;
      rv_dynamic : int;
      ir_dynamic : int;
      oracle_ok : bool option;  (** [None]: oracle not requested *)
    }
  | Status_report of status
  | Cancelled of { cancelled_id : int }
  | Shutdown_ack

type t =
  | Done of { id : int; payload : payload }
  | Progress of { id : int; completed : int; total : int; label : string }
  | Failed of { id : int; message : string }

(* --- JSON --- *)

let num n = Json.Num (float_of_int n)

let payload_fields = function
  | Run_done { text; sampled } ->
      [ ("result", Json.Str "run"); ("text", Json.Str text) ]
      @ (match sampled with
        | None -> []
        | Some s ->
            [
              ("sampled_reps", num s.sp_reps);
              ("sampled_intervals", num s.sp_intervals);
              ("sampled_ipc", Json.Num s.sp_ipc);
            ]
            @ (match s.sp_error with
              | None -> []
              | Some e -> [ ("sampled_error", Json.Num e) ]))
  | Experiment_done { text; doc } ->
      [
        ("result", Json.Str "experiment"); ("text", Json.Str text);
        ("doc", Json.Str doc);
      ]
  | Sweep_done { text; doc; simulated; cache_hits } ->
      [
        ("result", Json.Str "sweep"); ("text", Json.Str text);
        ("doc", Json.Str doc); ("simulated", num simulated);
        ("cache_hits", num cache_hits);
      ]
  | Trace_done { text; counters_text; chrome } ->
      [ ("result", Json.Str "trace"); ("text", Json.Str text) ]
      @ (match counters_text with
        | None -> []
        | Some c -> [ ("counters_text", Json.Str c) ])
      @ (match chrome with
        | None -> []
        | Some { c_doc; c_events; c_tracks } ->
            [
              ("chrome_doc", Json.Str c_doc); ("chrome_events", num c_events);
              ("chrome_tracks", num c_tracks);
            ])
  | Fuzz_done { text; tested; failures } ->
      [
        ("result", Json.Str "fuzz"); ("text", Json.Str text);
        ("tested", num tested); ("failures", num failures);
      ]
  | Cmp_done
      {
        text; aggregate_ipc; weighted_speedup; cycles; invalidations;
        downgrades; writebacks; remote_hits; counters_text;
      } ->
      [
        ("result", Json.Str "cmp"); ("text", Json.Str text);
        ("aggregate_ipc", Json.Num aggregate_ipc);
        ("weighted_speedup", Json.Num weighted_speedup);
        ("cycles", num cycles); ("invalidations", num invalidations);
        ("downgrades", num downgrades); ("writebacks", num writebacks);
        ("remote_hits", num remote_hits);
      ]
      @ (match counters_text with
        | None -> []
        | Some c -> [ ("counters_text", Json.Str c) ])
  | Rv_done { text; output; exit_code; rv_dynamic; ir_dynamic; oracle_ok } ->
      [
        ("result", Json.Str "rv"); ("text", Json.Str text);
        ("output", Json.Str output); ("rv_dynamic", num rv_dynamic);
        ("ir_dynamic", num ir_dynamic);
      ]
      @ (match exit_code with
        | None -> []
        | Some c -> [ ("exit_code", num c) ])
      @ (match oracle_ok with
        | None -> []
        | Some b -> [ ("oracle_ok", Json.Bool b) ])
  | Status_report s ->
      [
        ("result", Json.Str "status"); ("pool_jobs", num s.pool_jobs);
        ("max_queue", num s.max_queue); ("queue_depth", num s.queue_depth);
        ("served", num s.served); ("failed", num s.failed);
        ("cancelled", num s.cancelled);
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, num v)) s.counters) );
      ]
      @ (match s.active with
        | None -> []
        | Some (id, op) ->
            [ ("active_id", num id); ("active_op", Json.Str op) ])
  | Cancelled { cancelled_id } ->
      [ ("result", Json.Str "cancelled"); ("cancelled_id", num cancelled_id) ]
  | Shutdown_ack -> [ ("result", Json.Str "shutdown") ]

let to_tree t =
  let head = [ ("schema", Json.Str schema) ] in
  match t with
  | Done { id; payload } ->
      Json.Obj
        (head
        @ [ ("type", Json.Str "done"); ("id", num id) ]
        @ payload_fields payload)
  | Progress { id; completed; total; label } ->
      Json.Obj
        (head
        @ [
            ("type", Json.Str "progress"); ("id", num id);
            ("completed", num completed); ("total", num total);
            ("label", Json.Str label);
          ])
  | Failed { id; message } ->
      Json.Obj
        (head
        @ [
            ("type", Json.Str "error"); ("id", num id);
            ("message", Json.Str message);
          ])

let to_json t = Json.to_string (to_tree t)

let ( let* ) = Result.bind

let field name conv doc =
  match conv name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let payload_of_tree doc =
  match Json.str_member "result" doc with
  | None -> Error "missing \"result\" field"
  | Some "run" ->
      let* text = field "text" Json.str_member doc in
      let float_member name d =
        match Json.member name d with Some (Json.Num f) -> Some f | _ -> None
      in
      (* the summary is all-or-nothing: ipc present pins the rest *)
      let* sampled =
        match float_member "sampled_ipc" doc with
        | None -> Ok None
        | Some sp_ipc ->
            let* sp_reps = field "sampled_reps" Json.int_member doc in
            let* sp_intervals = field "sampled_intervals" Json.int_member doc in
            let sp_error = float_member "sampled_error" doc in
            Ok (Some { sp_reps; sp_intervals; sp_ipc; sp_error })
      in
      Ok (Run_done { text; sampled })
  | Some "experiment" ->
      let* text = field "text" Json.str_member doc in
      let* doc' = field "doc" Json.str_member doc in
      Ok (Experiment_done { text; doc = doc' })
  | Some "sweep" ->
      let* text = field "text" Json.str_member doc in
      let* doc' = field "doc" Json.str_member doc in
      let* simulated = field "simulated" Json.int_member doc in
      let* cache_hits = field "cache_hits" Json.int_member doc in
      Ok (Sweep_done { text; doc = doc'; simulated; cache_hits })
  | Some "trace" ->
      let* text = field "text" Json.str_member doc in
      let counters_text = Json.str_member "counters_text" doc in
      let chrome =
        match
          ( Json.str_member "chrome_doc" doc,
            Json.int_member "chrome_events" doc,
            Json.int_member "chrome_tracks" doc )
        with
        | Some c_doc, Some c_events, Some c_tracks ->
            Some { c_doc; c_events; c_tracks }
        | _ -> None
      in
      Ok (Trace_done { text; counters_text; chrome })
  | Some "fuzz" ->
      let* text = field "text" Json.str_member doc in
      let* tested = field "tested" Json.int_member doc in
      let* failures = field "failures" Json.int_member doc in
      Ok (Fuzz_done { text; tested; failures })
  | Some "cmp" ->
      let* text = field "text" Json.str_member doc in
      let float_member name d =
        match Json.member name d with Some (Json.Num f) -> Some f | _ -> None
      in
      let* aggregate_ipc = field "aggregate_ipc" float_member doc in
      let* weighted_speedup = field "weighted_speedup" float_member doc in
      let* cycles = field "cycles" Json.int_member doc in
      let* invalidations = field "invalidations" Json.int_member doc in
      let* downgrades = field "downgrades" Json.int_member doc in
      let* writebacks = field "writebacks" Json.int_member doc in
      let* remote_hits = field "remote_hits" Json.int_member doc in
      let counters_text = Json.str_member "counters_text" doc in
      Ok
        (Cmp_done
           {
             text; aggregate_ipc; weighted_speedup; cycles; invalidations;
             downgrades; writebacks; remote_hits; counters_text;
           })
  | Some "rv" ->
      let* text = field "text" Json.str_member doc in
      let* output = field "output" Json.str_member doc in
      let* rv_dynamic = field "rv_dynamic" Json.int_member doc in
      let* ir_dynamic = field "ir_dynamic" Json.int_member doc in
      let exit_code = Json.int_member "exit_code" doc in
      let oracle_ok =
        match Json.member "oracle_ok" doc with
        | Some (Json.Bool b) -> Some b
        | _ -> None
      in
      Ok (Rv_done { text; output; exit_code; rv_dynamic; ir_dynamic; oracle_ok })
  | Some "status" ->
      let* pool_jobs = field "pool_jobs" Json.int_member doc in
      let* max_queue = field "max_queue" Json.int_member doc in
      let* queue_depth = field "queue_depth" Json.int_member doc in
      let* served = field "served" Json.int_member doc in
      let* failed = field "failed" Json.int_member doc in
      let* cancelled = field "cancelled" Json.int_member doc in
      let* counters =
        match Json.member "counters" doc with
        | Some (Json.Obj fields) ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match v with
                | Json.Num f when Float.is_integer f ->
                    Ok ((k, int_of_float f) :: acc)
                | _ -> Error (Printf.sprintf "ill-typed counter %S" k))
              (Ok []) fields
            |> Result.map List.rev
        | _ -> Error "missing or ill-typed field \"counters\""
      in
      let active =
        match (Json.int_member "active_id" doc, Json.str_member "active_op" doc)
        with
        | Some id, Some op -> Some (id, op)
        | _ -> None
      in
      Ok
        (Status_report
           { pool_jobs; max_queue; queue_depth; active; served; failed;
             cancelled; counters })
  | Some "cancelled" ->
      let* cancelled_id = field "cancelled_id" Json.int_member doc in
      Ok (Cancelled { cancelled_id })
  | Some "shutdown" -> Ok Shutdown_ack
  | Some r -> Error (Printf.sprintf "unknown result kind %S" r)

let of_tree doc =
  match Json.str_member "schema" doc with
  | None -> Error "missing \"schema\" field"
  | Some v when v <> schema ->
      Error
        (Printf.sprintf "unsupported schema %S (this endpoint speaks %s)" v
           schema)
  | Some _ -> (
      let* id = field "id" Json.int_member doc in
      match Json.str_member "type" doc with
      | Some "done" ->
          let* payload = payload_of_tree doc in
          Ok (Done { id; payload })
      | Some "progress" ->
          let* completed = field "completed" Json.int_member doc in
          let* total = field "total" Json.int_member doc in
          let* label = field "label" Json.str_member doc in
          Ok (Progress { id; completed; total; label })
      | Some "error" ->
          let* message = field "message" Json.str_member doc in
          Ok (Failed { id; message })
      | Some ty -> Error (Printf.sprintf "unknown response type %S" ty)
      | None -> Error "missing \"type\" field")

let of_json s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed response: %s" msg)
  | Ok doc -> of_tree doc
