(** The typed response vocabulary of the [braidsim-api/1] protocol.

    A served request is answered by zero or more [Progress] frames
    followed by exactly one terminal frame ([Done] or [Failed]), all
    carrying the server-assigned request id. Payloads carry the rendered
    text (and, where the one-shot CLI would write a document, the full
    JSON document) so a client delivers byte-identical output to the
    one-shot path without re-rendering anything. *)

type status = {
  pool_jobs : int;  (** domain-pool width requests execute with *)
  max_queue : int;
  queue_depth : int;  (** admitted, not yet started *)
  active : (int * string) option;  (** in-flight request id and op *)
  served : int;  (** terminal [Done] responses sent *)
  failed : int;
  cancelled : int;
  counters : (string * int) list;
      (** the daemon's {!Braid_obs} counter registry — includes
          [dse.simulations] / [dse.cache_hits], the cache-hit-rate
          evidence *)
}

type chrome = { c_doc : string; c_events : int; c_tracks : int }

type sampled = {
  sp_reps : int;  (** representative intervals actually simulated *)
  sp_intervals : int;  (** profiling intervals in the whole run *)
  sp_ipc : float;  (** the sampled IPC estimate *)
  sp_error : float option;
      (** relative error vs a full run of the same program; present only
          when the request asked to verify *)
}
(** Machine-readable summary of a sampled [run]; carried as optional
    fields on the wire, so pre-sampling responses are unchanged. *)

type payload =
  | Run_done of { text : string; sampled : sampled option }
  | Experiment_done of { text : string; doc : string }
  | Sweep_done of {
      text : string;
      doc : string;  (** the braidsim-sweep/1 document *)
      simulated : int;
      cache_hits : int;  (** this request's {!Braid_dse.Sweep.stats} *)
    }
  | Trace_done of {
      text : string;
      counters_text : string option;
      chrome : chrome option;
    }
  | Fuzz_done of { text : string; tested : int; failures : int }
  | Cmp_done of {
      text : string;
      aggregate_ipc : float;  (** sum of per-core rate-mode IPCs *)
      weighted_speedup : float;  (** mean of per-core IPC_cmp / IPC_solo *)
      cycles : int;  (** global cycles until the last core finished *)
      invalidations : int;  (** coherence traffic (see {!Braid_uarch.Mem_hier}) *)
      downgrades : int;
      writebacks : int;
      remote_hits : int;
      counters_text : string option;
          (** the per-core-namespaced counter registry, when requested *)
    }
  | Rv_done of {
      text : string;
      output : string;  (** the reference run's HTIF putchar stream *)
      exit_code : int option;
      rv_dynamic : int;
      ir_dynamic : int;
      oracle_ok : bool option;  (** [None]: oracle not requested *)
    }
  | Status_report of status
  | Cancelled of { cancelled_id : int }
  | Shutdown_ack

type t =
  | Done of { id : int; payload : payload }
  | Progress of { id : int; completed : int; total : int; label : string }
  | Failed of { id : int; message : string }

val to_json : t -> string
val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}; unknown schema versions and malformed
    frames are errors naming the offender. *)
