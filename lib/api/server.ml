(* The braidsim daemon: accept loop + per-connection reader threads + one
   executor thread, multiplexing every client onto one Exec environment
   (one Suite context, one domain pool width, one Obs counter registry).

   Threading model (no async runtime — plain threads + one select):
   - the accept loop polls [select] with a short timeout so it notices the
     draining flag promptly;
   - each connection gets a reader thread: it parses frames, answers
     control operations (status / cancel / shutdown) inline, and admits
     simulation work into the bounded round-robin queue;
   - a single executor thread drains the queue, so at most one domain pool
     is ever live — parallelism lives inside a request, fairness between
     requests comes from the admission order;
   - progress frames fire from worker domains, so every write to a
     connection goes through its own mutex.

   Graceful shutdown drains everything already admitted (each queued
   request still gets its terminal frame), then unblocks the reader
   threads by shutting their sockets down and joins them. *)

module Obs = Braid_obs
module Sim = Braid_sim

type config = { addr : Addr.t; jobs : int; max_queue : int }

type conn = {
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wmutex : Mutex.t;  (* worker domains write progress frames *)
  c_client : int;
  mutable c_alive : bool;
}

type pending = { p_id : int; p_request : Request.t; p_conn : conn }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  env : Exec.env;
  mutex : Mutex.t;
  cond : Condition.t;  (* wakes the executor when work is admitted *)
  queue : pending Admission.t;
  mutable conns : (conn * Thread.t) list;
  mutable next_client : int;
  mutable next_id : int;
  mutable active : (int * string) option;
  mutable served : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable draining : bool;
}

let create cfg =
  if cfg.jobs <= 0 then invalid_arg "Server.create: jobs must be positive";
  match Addr.listen cfg.addr with
  | Error e -> Error e
  | Ok listen_fd ->
      let obs = Obs.Sink.create () in
      (* Pre-register the cache-effectiveness counters so a status request
         reports them (as zero) before the first sweep, and so the
         registry's name table is stable once reader threads can look. *)
      ignore (Obs.Sink.counter obs "dse.simulations");
      ignore (Obs.Sink.counter obs "dse.cache_hits");
      let env =
        { Exec.ctx = Sim.Suite.create_ctx (); obs; max_jobs = Some cfg.jobs }
      in
      Ok
        {
          cfg;
          listen_fd;
          env;
          mutex = Mutex.create ();
          cond = Condition.create ();
          queue = Admission.create ~max:cfg.max_queue;
          conns = [];
          next_client = 0;
          next_id = 0;
          active = None;
          served = 0;
          failed = 0;
          cancelled = 0;
          draining = false;
        }

(* Frame writes race between the reader thread, the executor and worker
   domains; a client that vanished mid-stream must not take the daemon (or
   the in-flight job) with it. *)
let send conn response =
  Mutex.protect conn.c_wmutex (fun () ->
      if conn.c_alive then
        match Wire.write conn.c_oc (Response.to_json response) with
        | () -> ()
        | exception Sys_error _ -> conn.c_alive <- false
        | exception Unix.Unix_error _ -> conn.c_alive <- false)

let status_snapshot t =
  let counters =
    Obs.Counters.snapshot (Obs.Sink.counters t.env.Exec.obs)
    |> List.filter_map (function
         | name, Obs.Counters.Count c -> Some (name, c)
         | _, Obs.Counters.Hist _ -> None)
  in
  {
    Response.pool_jobs = t.cfg.jobs;
    max_queue = Admission.capacity t.queue;
    queue_depth = Admission.depth t.queue;
    active = t.active;
    served = t.served;
    failed = t.failed;
    cancelled = t.cancelled;
    counters;
  }

let handle_control t conn id request =
  match request with
  | Request.Status ->
      let st = Mutex.protect t.mutex (fun () -> status_snapshot t) in
      send conn (Response.Done { id; payload = Response.Status_report st })
  | Request.Cancel { request_id } -> (
      let removed =
        Mutex.protect t.mutex (fun () ->
            match Admission.cancel t.queue (fun p -> p.p_id = request_id) with
            | Some p ->
                t.cancelled <- t.cancelled + 1;
                Some p
            | None -> None)
      in
      match removed with
      | Some p ->
          send p.p_conn
            (Response.Failed { id = p.p_id; message = "cancelled" });
          send conn
            (Response.Done
               { id; payload = Response.Cancelled { cancelled_id = request_id } })
      | None ->
          send conn
            (Response.Failed
               {
                 id;
                 message =
                   Printf.sprintf "request %d is not queued (already running, \
                                   finished, or never admitted)" request_id;
               }))
  | Request.Shutdown ->
      Mutex.protect t.mutex (fun () ->
          t.draining <- true;
          Condition.broadcast t.cond);
      send conn (Response.Done { id; payload = Response.Shutdown_ack })
  | _ -> assert false

let admit t conn id request =
  let verdict =
    Mutex.protect t.mutex (fun () ->
        if t.draining then `Draining
        else if
          Admission.push t.queue ~client:conn.c_client
            { p_id = id; p_request = request; p_conn = conn }
        then begin
          Condition.signal t.cond;
          `Admitted
        end
        else `Full (Admission.depth t.queue))
  in
  match verdict with
  | `Admitted -> ()
  | `Draining ->
      send conn
        (Response.Failed { id; message = "server is shutting down" })
  | `Full depth ->
      send conn
        (Response.Failed
           {
             id;
             message =
               Printf.sprintf "admission queue is full (%d requests queued)"
                 depth;
           })

let reader_loop t conn =
  let rec loop () =
    match Wire.read conn.c_ic with
    | Error Wire.Closed -> ()
    | Error err ->
        (* Protocol violation on this connection only: answer with id 0
           (no request was assigned one) and hang up. *)
        send conn
          (Response.Failed { id = 0; message = Wire.error_to_string err })
    | Ok payload -> (
        let id =
          Mutex.protect t.mutex (fun () ->
              t.next_id <- t.next_id + 1;
              t.next_id)
        in
        match Request.of_json payload with
        | Error message ->
            send conn (Response.Failed { id; message });
            loop ()
        | Ok ((Request.Status | Request.Cancel _ | Request.Shutdown) as req)
          ->
            handle_control t conn id req;
            loop ()
        | Ok request ->
            admit t conn id request;
            loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect conn.c_wmutex (fun () -> conn.c_alive <- false);
      close_out_noerr conn.c_oc;
      close_in_noerr conn.c_ic)
    loop

let executor_loop t =
  let rec next_pending () =
    (* called with t.mutex held *)
    match Admission.pop t.queue with
    | Some p -> Some p
    | None ->
        if t.draining then None
        else begin
          Condition.wait t.cond t.mutex;
          next_pending ()
        end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    match next_pending () with
    | None -> Mutex.unlock t.mutex
    | Some p ->
        t.active <- Some (p.p_id, Request.op_name p.p_request);
        Mutex.unlock t.mutex;
        let progress ~completed ~total ~label =
          send p.p_conn
            (Response.Progress { id = p.p_id; completed; total; label })
        in
        let result = Exec.exec ~progress t.env p.p_request in
        Mutex.protect t.mutex (fun () ->
            t.active <- None;
            match result with
            | Ok _ -> t.served <- t.served + 1
            | Error _ -> t.failed <- t.failed + 1);
        (match result with
        | Ok payload -> send p.p_conn (Response.Done { id = p.p_id; payload })
        | Error message ->
            send p.p_conn (Response.Failed { id = p.p_id; message }));
        loop ()
  in
  loop ()

let stop t =
  Mutex.protect t.mutex (fun () ->
      t.draining <- true;
      Condition.broadcast t.cond)

let draining t = Mutex.protect t.mutex (fun () -> t.draining)

let run t =
  (* A client hanging up mid-stream must surface as a write error, not a
     process-killing signal. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let executor = Thread.create executor_loop t in
  let rec accept_loop () =
    if draining t then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (_, _, _) -> accept_loop ()
          | fd, _ ->
              let conn =
                Mutex.protect t.mutex (fun () ->
                    t.next_client <- t.next_client + 1;
                    {
                      c_fd = fd;
                      c_ic = Unix.in_channel_of_descr fd;
                      c_oc = Unix.out_channel_of_descr fd;
                      c_wmutex = Mutex.create ();
                      c_client = t.next_client;
                      c_alive = true;
                    })
              in
              let thread = Thread.create (reader_loop t) conn in
              Mutex.protect t.mutex (fun () ->
                  t.conns <- (conn, thread) :: t.conns);
              accept_loop ())
  in
  accept_loop ();
  (* Draining: no new connections; everything already admitted still runs
     to its terminal frame. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Addr.cleanup t.cfg.addr;
  Thread.join executor;
  (* Unblock reader threads parked in Wire.read, then collect them. *)
  let conns = Mutex.protect t.mutex (fun () -> t.conns) in
  List.iter
    (fun (conn, _) ->
      try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns
