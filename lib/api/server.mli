(** The [braidsim serve] daemon.

    One process serves many clients over {!Addr.t}: per-connection reader
    threads parse {!Request.t} frames, control operations (status, cancel,
    shutdown) are answered inline, and simulation work goes through a
    bounded {!Admission} queue with per-client round-robin fairness. A
    single executor thread drains the queue onto the shared {!Exec.env} —
    one memoisation context and one observability registry for the
    daemon's whole lifetime, which is what makes repeated sweeps answer
    from cache without simulating.

    Shutdown (the request, or {!stop}) is graceful: admission closes,
    everything already queued still runs to its terminal frame, then
    {!run} returns. *)

type config = {
  addr : Addr.t;
  jobs : int;  (** domain-pool width requests execute with *)
  max_queue : int;  (** admission bound; pushes past it are refused *)
}

type t

val create : config -> (t, string) result
(** Binds and listens; [Error] if the endpoint cannot be bound. *)

val run : t -> unit
(** Serve until shutdown is requested, then drain and return. Blocks the
    calling thread; ignores [SIGPIPE] process-wide. *)

val stop : t -> unit
(** Request graceful shutdown from another thread (the in-process
    equivalent of a [Shutdown] request). *)
