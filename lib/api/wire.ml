(* Length-prefixed framing: a 4-byte big-endian payload length followed by
   the payload bytes (UTF-8 JSON in this protocol). The length cap keeps a
   corrupt or hostile header from making the daemon allocate gigabytes. *)

let max_frame = 64 * 1024 * 1024

type error =
  | Closed  (** clean EOF on a frame boundary *)
  | Truncated of string  (** EOF mid-header or mid-payload *)
  | Oversized of int  (** header names a length beyond {!max_frame} *)

let error_to_string = function
  | Closed -> "connection closed"
  | Truncated what -> Printf.sprintf "truncated frame (%s)" what
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n max_frame

let header_of_length n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.unsafe_to_string b

let length_of_header s =
  (Char.code s.[0] lsl 24)
  lor (Char.code s.[1] lsl 16)
  lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3]

let encode payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.encode: payload exceeds max_frame";
  header_of_length n ^ payload

(* Decode one frame from the front of [buf]: the payload and the number of
   bytes consumed. A short buffer is [Truncated] — the reader either waits
   for more bytes or, on a closed stream, rejects the frame. *)
let decode buf =
  let len = String.length buf in
  if len = 0 then Error Closed
  else if len < 4 then Error (Truncated "header")
  else
    let n = length_of_header (String.sub buf 0 4) in
    if n > max_frame then Error (Oversized n)
    else if len < 4 + n then Error (Truncated "payload")
    else Ok (String.sub buf 4 n, 4 + n)

(* --- channel IO (blocking) --- *)

let write oc payload =
  output_string oc (encode payload);
  flush oc

let really_read ic n =
  match really_input_string ic n with
  | s -> Some s
  | exception End_of_file -> None

let read ic =
  match input_char ic with
  | exception End_of_file -> Error Closed
  | c0 -> (
      match really_read ic 3 with
      | None -> Error (Truncated "header")
      | Some rest -> (
          let n = length_of_header (String.make 1 c0 ^ rest) in
          if n > max_frame then Error (Oversized n)
          else
            match really_read ic n with
            | None -> Error (Truncated "payload")
            | Some payload -> Ok payload))
