(** Length-prefixed framing for the [braidsim serve] socket protocol: each
    frame is a 4-byte big-endian payload length followed by that many
    payload bytes (one JSON document). Both directions of the protocol use
    the same framing. *)

val max_frame : int
(** Hard cap on a payload (64 MiB): a header naming more is rejected
    without allocating. *)

type error =
  | Closed  (** clean EOF on a frame boundary *)
  | Truncated of string  (** EOF mid-header or mid-payload *)
  | Oversized of int  (** header names a length beyond {!max_frame} *)

val error_to_string : error -> string

val encode : string -> string
(** Header plus payload, ready to write. Raises [Invalid_argument] past
    {!max_frame}. *)

val decode : string -> (string * int, error) result
(** Decode one frame from the front of a buffer: the payload and the
    total bytes consumed. A short buffer is [Truncated]. *)

val write : out_channel -> string -> unit
(** [encode] written and flushed. *)

val read : in_channel -> (string, error) result
(** Block until one whole frame (or EOF) arrives. *)
