module Transform = Braid_core.Transform
module Extalloc = Braid_core.Extalloc
module Config = Braid_uarch.Config
module Pipeline = Braid_uarch.Pipeline
module Debug = Braid_uarch.Debug
module Cmp = Braid_cmp.Cmp

type divergence = { core : int; kind : string; detail : string }

type report = {
  divergences : divergence list;
  cores : int;
  dynamic_count : int;  (* summed over the mix *)
}

let ok r = r.divergences = []

let max_steps = 200_000

(* A CMP fuzz case is [cores] independent solo fuzz cases sharing one L2:
   core [i] runs case [index * cores + i] of the stream, so consecutive
   indices never reuse a program and every solo case stays individually
   reproducible with the plain fuzzer. *)
let check ?(cores = 2) ?(kind = Config.Braid_exec) ~seed ~index () =
  let divs = ref [] in
  let add core k detail = divs := { core; kind = k; detail } :: !divs in
  let cfg = Config.preset_of_kind kind in
  let dynamic = ref 0 in
  let prepared =
    Array.init cores (fun i ->
        let case = Gen.generate ~seed ~index:((index * cores) + i) in
        let program, init_mem = Gen.build case in
        let binary =
          match kind with
          | Config.Braid_exec | Config.Cgooo ->
              (Transform.run program).Transform.program
          | _ -> (Transform.conventional program).Extalloc.program
        in
        let out = Emulator.run ~max_steps ~trace:true ~init_mem binary in
        if out.Emulator.stop <> Trace.Halted then
          add i "non-terminating"
            (Printf.sprintf "%s: binary did not halt within %d steps"
               (Gen.describe case) max_steps);
        dynamic := !dynamic + out.Emulator.dynamic_count;
        let trace =
          match out.Emulator.trace with Some t -> t | None -> assert false
        in
        let warm_data = List.map fst init_mem in
        (case, trace, warm_data))
  in
  if !divs <> [] then
    { divergences = List.rev !divs; cores; dynamic_count = !dynamic }
  else begin
    (* Solo runs first: the reference commit streams and the slowdown
       denominators, each over a private hierarchy. *)
    let solo =
      Array.map
        (fun (_, trace, warm_data) ->
          let dbg = Debug.create ~invariants:true cfg in
          let cycles =
            (Pipeline.run ~dbg ~warm_data cfg trace).Pipeline.cycles
          in
          (cycles, Debug.committed dbg, Debug.committed_pcs dbg))
        prepared
    in
    let workloads =
      Array.mapi
        (fun i (_case, trace, warm_data) ->
          {
            Cmp.w_bench = Printf.sprintf "fuzz-%d" ((index * cores) + i);
            w_trace = trace;
            w_warm_data = warm_data;
          })
        prepared
    in
    let dbgs = Array.init cores (fun _ -> Debug.create ~invariants:true cfg) in
    let cmp =
      Config.Cmp.make ~cores
        ~workloads:(Array.to_list (Array.map (fun w -> w.Cmp.w_bench) workloads))
        ()
    in
    let solo_cycles = Array.map (fun (c, _, _) -> c) solo in
    (match Cmp.run ~dbgs ~solo_cycles ~cfg ~cmp workloads with
    | result ->
        (* coherence-state legality: the directory scan must come back
           clean (e.g. no line with two M copies) *)
        List.iter (fun v -> add (-1) "coherence" v) result.Cmp.violations;
        Array.iteri
          (fun i dbg ->
            if Debug.violation_count dbg > 0 then
              add i "invariant"
                (Printf.sprintf "%d invariant violation(s) under contention"
                   (Debug.violation_count dbg));
            let _, solo_uids, solo_pcs = solo.(i) in
            let cmp_uids = Debug.committed dbg in
            let cmp_pcs = Debug.committed_pcs dbg in
            if Array.length cmp_uids <> Array.length solo_uids then
              add i "commit-count"
                (Printf.sprintf "CMP committed %d instructions, solo %d"
                   (Array.length cmp_uids) (Array.length solo_uids))
            else begin
              let bad = ref (-1) in
              Array.iteri
                (fun j u ->
                  if !bad < 0 && (u <> solo_uids.(j) || cmp_pcs.(j) <> solo_pcs.(j))
                  then bad := j)
                cmp_uids;
              if !bad >= 0 then
                add i "commit-stream"
                  (Printf.sprintf
                     "position %d: CMP committed uid %d pc %#x, solo uid %d \
                      pc %#x"
                     !bad
                     cmp_uids.(!bad)
                     cmp_pcs.(!bad)
                     solo_uids.(!bad)
                     solo_pcs.(!bad))
            end)
          dbgs
    | exception Pipeline.Deadlock msg -> add (-1) "deadlock" msg);
    { divergences = List.rev !divs; cores; dynamic_count = !dynamic }
  end

let render r =
  let buf = Buffer.create 128 in
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s/%s: %s\n"
           (if d.core < 0 then "shared" else Printf.sprintf "core%d" d.core)
           d.kind d.detail))
    r.divergences;
  Buffer.contents buf
