(** Differential fuzzing for the CMP: a multi-programmed mix of generated
    cases runs on {!Braid_cmp.Cmp} over the shared coherent L2, and each
    core's committed instruction stream (uids {e and} PCs) must be
    identical to the same program's solo run over a private hierarchy —
    sharing the backside may change {e timing}, never {e architecture}.

    Two monitors ride along: each core's {!Braid_uarch.Debug} invariant
    sink (commit order, register-file discipline under contention) and the
    {!Braid_uarch.Mem_hier} directory-legality scan (no line with two
    modified copies, no stale sharer claiming ownership). *)

type divergence = {
  core : int;  (** [-1]: the shared hierarchy rather than one core *)
  kind : string;
  detail : string;
}

type report = {
  divergences : divergence list;
  cores : int;
  dynamic_count : int;  (** dynamic instructions, summed over the mix *)
}

val ok : report -> bool

val check :
  ?cores:int ->
  ?kind:Braid_uarch.Config.core_kind ->
  seed:int ->
  index:int ->
  unit ->
  report
(** [check ~seed ~index ()] runs case [index] of the CMP stream named by
    [seed]: core [i] of [cores] (default 2) runs plain fuzz case
    [index * cores + i], so every constituent program is individually
    reproducible with {!Oracle.check}. All cores are the same machine
    [kind] (default [Braid_exec]) sharing the default CMP L2. *)

val render : report -> string
(** Indented divergence lines, empty when {!ok}. *)
