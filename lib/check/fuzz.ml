type failure = {
  case : Gen.case;
  report : Oracle.report;
  shrunk : (Gen.case * Oracle.report) option;
}

type outcome = { tested : int; failures : failure list }

let check_case ?invariants ?cores case =
  let program, init_mem = Gen.build case in
  Oracle.check ?invariants ?cores program ~init_mem

let run ?(invariants = true) ?(shrink = false) ?cores ?(first_index = 0)
    ?progress ~count ~seed () =
  let failures = ref [] in
  for index = first_index to first_index + count - 1 do
    (match progress with Some f -> f index | None -> ());
    let case = Gen.generate ~seed ~index in
    let report = check_case ~invariants ?cores case in
    if not (Oracle.ok report) then begin
      let shrunk =
        if shrink then begin
          let fails c = not (Oracle.ok (check_case ~invariants ?cores c)) in
          let reduced = Shrink.shrink ~fails case in
          Some (reduced, check_case ~invariants ?cores reduced)
        end
        else None
      in
      failures := { case; report; shrunk } :: !failures
    end
  done;
  { tested = count; failures = List.rev !failures }
