(** Fuzzing driver: generate, check, shrink, summarise.

    This is the library API behind [braidsim fuzz]; the test suite drives
    it directly. Each case is fully determined by [(seed, index)], so a
    failure printed as ["seed=S index=I"] reproduces with
    [run ~count:1 ~seed:S ()] after [generate ~seed:S ~index:I] — or from
    the CLI with [braidsim fuzz --seed S --index I --count 1]. *)

type failure = {
  case : Gen.case;
  report : Oracle.report;
  shrunk : (Gen.case * Oracle.report) option;
      (** present when shrinking was requested: the reduced case and the
          report the oracle produces on it *)
}

type outcome = { tested : int; failures : failure list }

val check_case :
  ?invariants:bool ->
  ?cores:Braid_uarch.Config.core_kind list ->
  Gen.case ->
  Oracle.report
(** Builds the case and runs the differential oracle on it. *)

val run :
  ?invariants:bool ->
  ?shrink:bool ->
  ?cores:Braid_uarch.Config.core_kind list ->
  ?first_index:int ->
  ?progress:(int -> unit) ->
  count:int ->
  seed:int ->
  unit ->
  outcome
(** Checks cases [first_index .. first_index + count - 1] (default from
    0) of stream [seed]. [invariants] defaults to [true]; [shrink]
    (default [false]) greedily reduces each failing case. [progress] is
    called with each index before it is checked. *)
