module Build = Braid_workload.Build
module Kernels = Braid_workload.Kernels

type kernel =
  | Streaming
  | Hash_mix
  | Branchy
  | Bitscan
  | Reduction
  | Cmov_select

type kind =
  | Kernel of kernel
  | Alias_pair
  | Branch_dense
  | Single_braids
  | Reg_pressure

type fragment = { kind : kind; fseed : int }
type case = { seed : int; index : int; fragments : fragment list }

let kinds =
  [|
    Kernel Streaming;
    Kernel Hash_mix;
    Kernel Branchy;
    Kernel Bitscan;
    Kernel Reduction;
    Kernel Cmov_select;
    Alias_pair;
    Branch_dense;
    Single_braids;
    Reg_pressure;
  |]

let generate ~seed ~index =
  let rng = Prng.of_string (Printf.sprintf "braid-fuzz-%d-%d" seed index) in
  let n = Prng.int_in rng 2 5 in
  let fragments =
    List.init n (fun _ ->
        { kind = Prng.pick rng kinds; fseed = Prng.int rng 0x3FFF_FFFF })
  in
  { seed; index; fragments }

let with_fragments case fragments = { case with fragments }

(* ------------------------------------------------------------------ *)
(* Adversarial fragments                                               *)
(* ------------------------------------------------------------------ *)

(* Store/load pairs through two pointers into one array, the second
   pointer computed at runtime and everything tagged [region_unknown]:
   the compiler's alias oracle cannot disambiguate, so the timing cores
   must order them through the in-flight store check. *)
let alias_pair (c : Kernels.ctx) =
  let b = c.b in
  let words = 8 in
  let base, _, _ =
    Build.alloc_array b ~words ~init:(fun i ->
        Int64.of_int (((i * 37) + Prng.int c.rng 64) land 0xff))
  in
  let base2 = Build.int_reg b in
  Build.emit b
    (Op.Ibini (Op.Add, base2, base, 8 * Prng.int_in c.rng 0 (words - 1)));
  for k = 1 to Prng.int_in c.rng 3 6 do
    let o1 = 8 * Prng.int_in c.rng 0 (words - 1) in
    let o2 = 8 * Prng.int_in c.rng 0 3 in
    let v = Build.int_reg b in
    Build.emit b (Op.Load (v, base, o1, Op.region_unknown));
    let v2 = Build.int_reg b in
    Build.emit b (Op.Ibini (Op.Xor, v2, v, (k * 29) land 0x7f));
    (* may alias the next iteration's load through [base] *)
    Build.emit b (Op.Store (v2, base2, o2, Op.region_unknown));
    let v3 = Build.int_reg b in
    (* may read the store just made (forwarding) or an older value *)
    Build.emit b (Op.Load (v3, base2, 8 * Prng.int_in c.rng 0 3, Op.region_unknown));
    Build.emit b (Op.Store (v3, base, 8 * ((k * 3) mod words), Op.region_unknown))
  done

let conds = [| Op.Eq; Op.Ne; Op.Lt; Op.Ge; Op.Le; Op.Gt |]

(* Stacked diamonds keyed on loaded data: branch-dense code with short,
   heavily control-separated braids. *)
let branch_dense (c : Kernels.ctx) =
  let b = c.b in
  let words = Prng.int_in c.rng 4 8 in
  let data, _, _ =
    Build.alloc_array b ~words ~init:(fun i ->
        Int64.of_int (Prng.int_in c.rng (-4) 9 + i - (words / 2)))
  in
  let out, _, _ = Build.alloc_array b ~words ~init:(fun _ -> 0L) in
  let c1 = Prng.pick c.rng conds and c2 = Prng.pick c.rng conds in
  Build.counted_loop b ~count:words (fun b i ->
      let off = Build.int_reg b in
      Build.emit b (Op.Ibini (Op.Shl, off, i, 3));
      let p = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, p, data, off));
      let x = Build.int_reg b in
      Build.emit b (Op.Load (x, p, 0, Op.region_unknown));
      let y = Build.const b Reg.Cint 0L in
      Build.if_diamond b c1 x
        ~then_:(fun b -> Build.emit b (Op.Ibini (Op.Add, y, x, 1)))
        ~else_:(fun b -> Build.emit b (Op.Ibini (Op.Sub, y, x, 1)));
      Build.if_diamond b c2 y
        ~then_:(fun b -> Build.emit b (Op.Ibini (Op.Xor, y, y, 3)))
        ~else_:(fun b -> Build.emit b (Op.Ibini (Op.And, y, y, 7)));
      let q = Build.int_reg b in
      Build.emit b (Op.Ibin (Op.Add, q, out, off));
      Build.emit b (Op.Store (y, q, 0, Op.region_unknown)))

(* Values computed in one block, stored in the next: each store has no
   in-block producer or consumer, so braid formation makes it a
   single-instruction braid (one S bit, no internal registers). *)
let single_braids (c : Kernels.ctx) =
  let b = c.b in
  let n = Prng.int_in c.rng 4 8 in
  let out, _, _ = Build.alloc_array b ~words:n ~init:(fun _ -> 0L) in
  let vals =
    Array.init n (fun i ->
        Build.const b Reg.Cint (Int64.of_int ((i * 257) + Prng.int c.rng 1024)))
  in
  ignore (Build.enter_block b);
  Array.iteri
    (fun i v -> Build.emit b (Op.Store (v, out, 8 * i, Op.region_unknown)))
    vals

(* More simultaneously live values than the 8-entry internal file in one
   block: forces working-set splits, and at dispatch keeps the external
   free list under pressure. *)
let reg_pressure (c : Kernels.ctx) =
  let b = c.b in
  let n = Prng.int_in c.rng 10 14 in
  let out, _, _ = Build.alloc_array b ~words:1 ~init:(fun _ -> 0L) in
  ignore (Build.enter_block b);
  let vs =
    Array.init n (fun i ->
        let v = Build.int_reg b in
        Build.emit b (Op.Movi (v, Int64.of_int ((i * 1103) + Prng.int c.rng 97)));
        let w = Build.int_reg b in
        Build.emit b (Op.Ibini (Op.Mul, w, v, (2 * i) + 1));
        w)
  in
  let acc = Build.const b Reg.Cint 0L in
  Array.iter (fun w -> Build.emit b (Op.Ibin (Op.Add, acc, acc, w))) vs;
  Build.emit b (Op.Store (acc, out, 0, Op.region_unknown))

let emit_fragment b { kind; fseed } =
  let c = { Kernels.b; rng = Prng.create (Int64.of_int fseed) } in
  let len = Prng.int_in c.rng 4 10 in
  match kind with
  | Kernel Streaming -> Kernels.streaming c ~len ~passes:2
  | Kernel Hash_mix -> Kernels.hash_mix c ~len ~passes:2
  | Kernel Branchy -> Kernels.branchy c ~len ~passes:2 ~bias:0.5
  | Kernel Bitscan -> Kernels.bitscan c ~len ~passes:1
  | Kernel Reduction -> Kernels.reduction c ~len ~passes:2
  | Kernel Cmov_select -> Kernels.cmov_select c ~len ~passes:2
  | Alias_pair -> alias_pair c
  | Branch_dense -> branch_dense c
  | Single_braids -> single_braids c
  | Reg_pressure -> reg_pressure c

let build case =
  let b = Build.create () in
  List.iter (emit_fragment b) case.fragments;
  Build.finish b

let kind_name = function
  | Kernel Streaming -> "kernel:streaming"
  | Kernel Hash_mix -> "kernel:hash-mix"
  | Kernel Branchy -> "kernel:branchy"
  | Kernel Bitscan -> "kernel:bitscan"
  | Kernel Reduction -> "kernel:reduction"
  | Kernel Cmov_select -> "kernel:cmov-select"
  | Alias_pair -> "alias-pair"
  | Branch_dense -> "branch-dense"
  | Single_braids -> "single-braids"
  | Reg_pressure -> "reg-pressure"

let describe case =
  Printf.sprintf "seed=%d index=%d [%s]" case.seed case.index
    (String.concat " " (List.map (fun f -> kind_name f.kind) case.fragments))

(* --- RV mode --------------------------------------------------------- *)
(* Random legal RV32IM words for the frontend self-check: decode must
   invert encode exactly, and the translator must lower or reject every
   word with a typed error — never raise. *)

module Rv = Braid_rv

let rv_insn rng : Rv.Insn.t =
  let open Rv.Insn in
  let reg () = Prng.int rng 32 in
  let imm12 () = Prng.int_in rng (-2048) 2047 in
  let alus = [| Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And |] in
  let alui_ops = [| Add; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And |] in
  let muldivs = [| Mul; Mulh; Mulhsu; Mulhu; Div; Divu; Rem; Remu |] in
  let bconds = [| Beq; Bne; Blt; Bge; Bltu; Bgeu |] in
  let load_w = [| B; H; W; Bu; Hu |] in
  let store_w = [| B; H; W |] in
  match Prng.int rng 13 with
  | 0 -> Lui (reg (), Prng.int rng (1 lsl 20))
  | 1 -> Auipc (reg (), Prng.int rng (1 lsl 20))
  | 2 -> Jal (reg (), 2 * Prng.int_in rng (-(1 lsl 19)) ((1 lsl 19) - 1))
  | 3 -> Jalr (reg (), reg (), imm12 ())
  | 4 ->
      Branch (Prng.pick rng bconds, reg (), reg (), 2 * Prng.int_in rng (-2048) 2047)
  | 5 -> Load (Prng.pick rng load_w, reg (), reg (), imm12 ())
  | 6 -> Store (Prng.pick rng store_w, reg (), reg (), imm12 ())
  | 7 ->
      let op = Prng.pick rng alui_ops in
      let imm = match op with Sll | Srl | Sra -> Prng.int rng 32 | _ -> imm12 () in
      Alui (op, reg (), reg (), imm)
  | 8 -> Alu (Prng.pick rng alus, reg (), reg (), reg ())
  | 9 -> Muldiv (Prng.pick rng muldivs, reg (), reg (), reg ())
  | 10 -> Fence
  | 11 -> Ecall
  | _ -> Ebreak

let rv_word rng = Rv.Insn.encode (rv_insn rng)

let rv_selfcheck ~seed ~count =
  let violations = ref [] in
  let add s = violations := s :: !violations in
  let ecall = Rv.Insn.encode Rv.Insn.Ecall in
  let word_bytes w =
    let b = Bytes.create 8 in
    Bytes.set_int32_le b 0 (Int32.of_int w);
    Bytes.set_int32_le b 4 (Int32.of_int ecall);
    Bytes.to_string b
  in
  let check_translate i tag w =
    (* A two-word image: the word under test, then an ecall so a lowered
       fall-through has somewhere clean to halt. *)
    match Rv.Image.of_flat ~name:"gen" (word_bytes w) with
    | Error _ -> () (* typed rejection is acceptable *)
    | Ok img -> (
        match Rv.Translate.run img with
        | Ok _ | Error _ -> ()
        | exception exn ->
            add
              (Printf.sprintf "case %d: translate raised on %s word 0x%08x: %s" i
                 tag w (Printexc.to_string exn)))
  in
  for i = 0 to count - 1 do
    let rng = Prng.of_string (Printf.sprintf "braid-rv-gen-%d-%d" seed i) in
    let insn = rv_insn rng in
    let w = Rv.Insn.encode insn in
    (match Rv.Insn.decode w with
    | Ok insn' ->
        if insn' <> insn then
          add
            (Printf.sprintf "case %d: decode(encode %s) = %s" i
               (Rv.Insn.to_string insn) (Rv.Insn.to_string insn'))
        else if Rv.Insn.encode insn' <> w then
          add
            (Printf.sprintf "case %d: re-encode of %s is 0x%08x, want 0x%08x" i
               (Rv.Insn.to_string insn')
               (Rv.Insn.encode insn')
               w)
    | Error e ->
        add
          (Printf.sprintf "case %d: legal word 0x%08x (%s) rejected: %s" i w
             (Rv.Insn.to_string insn) (Rv.Insn.error_to_string e))
    | exception exn ->
        add (Printf.sprintf "case %d: decode raised: %s" i (Printexc.to_string exn)));
    check_translate i "legal" w;
    let rw = Prng.int rng 0x10000 lor (Prng.int rng 0x10000 lsl 16) in
    (match Rv.Insn.decode rw with
    | Ok _ | Error _ -> ()
    | exception exn ->
        add
          (Printf.sprintf "case %d: decode raised on random word 0x%08x: %s" i rw
             (Printexc.to_string exn)));
    check_translate i "random" rw
  done;
  List.rev !violations
