(** Seeded random-program generator for the differential fuzzer.

    A case is a list of code fragments: kernels from
    {!Braid_workload.Kernels} (the shapes the benchmark suite exercises)
    plus adversarial fragments the workload generators never emit —
    may-alias store/load pairs through runtime-computed pointers,
    branch-dense blocks stacking diamonds on loaded data,
    single-instruction braids (stores whose operands all come from an
    earlier block), and external-register pressure well past the 8-entry
    internal working-set bound.

    Every fragment carries its own derived seed, so rebuilding any
    {e subset} of a case's fragments is deterministic — this is what makes
    the greedy shrinker sound: dropping fragment 2 does not change what
    fragments 0, 1 and 3 generate. *)

type kernel =
  | Streaming
  | Hash_mix
  | Branchy
  | Bitscan
  | Reduction
  | Cmov_select

type kind =
  | Kernel of kernel
  | Alias_pair  (** may-alias store/load pairs, region_unknown both sides *)
  | Branch_dense  (** stacked data-dependent diamonds *)
  | Single_braids  (** stores with no in-block producers: 1-instr braids *)
  | Reg_pressure  (** >8 simultaneously live values in one block *)

type fragment = { kind : kind; fseed : int }

type case = { seed : int; index : int; fragments : fragment list }

val generate : seed:int -> index:int -> case
(** Case [index] of the stream named by [seed]: 2–5 fragments with
    per-fragment seeds, all derived from
    ["braid-fuzz-<seed>-<index>"]. *)

val build : case -> Program.t * (int * int64) list
(** Assembles the case into virtual-register IR plus its initial data
    image — the same artifact {!Braid_workload.Spec.generate} produces,
    ready for {!Braid_core.Transform}. Deterministic per case. *)

val with_fragments : case -> fragment list -> case
(** The same case with a fragment subset (shrinker constructor). *)

val kind_name : kind -> string
val describe : case -> string
(** e.g. ["seed=42 index=7 [kernel:hash-mix alias-pair]"] — everything
    needed to reproduce the case. *)

(** {1 RV mode}

    Random legal RV32IM words feeding the frontend self-check. *)

val rv_insn : Prng.t -> Braid_rv.Insn.t
(** A random well-formed instruction: registers in 0–31, immediates,
    shift amounts, and branch/jump offsets within their fields. *)

val rv_word : Prng.t -> int
(** [Braid_rv.Insn.encode (rv_insn rng)]. *)

val rv_selfcheck : seed:int -> count:int -> string list
(** [count] derived cases. Each asserts that a legal word decodes back
    to exactly the instruction that produced it (and re-encodes to the
    same word), and that the translator lowers-or-rejects both that word
    and a uniformly random word with a typed error — never an
    exception. Returns violation descriptions; empty means pass. *)
