module Transform = Braid_core.Transform
module Extalloc = Braid_core.Extalloc
module Config = Braid_uarch.Config
module Pipeline = Braid_uarch.Pipeline
module Debug = Braid_uarch.Debug

type divergence = { core : string; kind : string; detail : string }

type core_report = {
  kind : Config.core_kind;
  name : string;
  cycles : int;
  violations : Debug.violation list;
  violation_count : int;
}

type report = {
  divergences : divergence list;
  cores : core_report list;
  dynamic_count : int;
}

let ok r =
  r.divergences = [] && List.for_all (fun c -> c.violation_count = 0) r.cores

let default_cores =
  [ Config.In_order; Config.Ooo; Config.Braid_exec; Config.Cgooo ]

(* Fuzz cases are a few thousand dynamic instructions; a case that runs
   this long is a generator bug worth reporting, not waiting out. *)
let max_steps = 200_000

let mem_diff expected got =
  let rec first = function
    | [], [] -> "images equal?"
    | (a, v) :: _, [] -> Printf.sprintf "missing %#x=%Ld" a v
    | [], (a, v) :: _ -> Printf.sprintf "extra %#x=%Ld" a v
    | (a1, v1) :: t1, (a2, v2) :: t2 ->
        if a1 = a2 && v1 = v2 then first (t1, t2)
        else if a1 = a2 then Printf.sprintf "%#x: expected %Ld, got %Ld" a1 v1 v2
        else if a1 < a2 then Printf.sprintf "missing %#x=%Ld" a1 v1
        else Printf.sprintf "extra %#x=%Ld" a2 v2
  in
  first (expected, got)

let ext_reg_of_id id =
  if id < Reg.num_ext_per_class then Reg.ext Reg.Cint id
  else Reg.ext Reg.Cfp (id - Reg.num_ext_per_class)

let check ?(invariants = true) ?(cores = default_cores) ?inject_commit program
    ~init_mem =
  let divs = ref [] in
  let add core kind detail = divs := { core; kind; detail } :: !divs in
  let ref_out = Emulator.run ~max_steps ~trace:false ~init_mem program in
  if ref_out.Emulator.stop <> Trace.Halted then begin
    add "reference" "non-terminating"
      (Printf.sprintf "virtual IR did not halt within %d steps" max_steps);
    {
      divergences = List.rev !divs;
      cores = [];
      dynamic_count = ref_out.Emulator.dynamic_count;
    }
  end
  else begin
    let ref_mem = Emulator.memory_image ref_out.Emulator.state in
    let conv = (Transform.conventional program).Extalloc.program in
    let braid = (Transform.run program).Transform.program in
    (* Sequential emulation of each binary: supplies the trace the cores
       run, the final architectural state the replay is compared against,
       and — against [ref_mem] — the compiler-correctness check. *)
    let emulate name prog =
      let out = Emulator.run ~max_steps ~trace:true ~init_mem prog in
      if out.Emulator.stop <> Trace.Halted then
        add name "non-terminating"
          (Printf.sprintf "binary did not halt within %d steps" max_steps);
      let mem = Emulator.memory_image out.Emulator.state in
      if out.Emulator.stop = Trace.Halted && mem <> ref_mem then
        add name "compile-memory" (mem_diff ref_mem mem);
      (out, mem)
    in
    let conv_out, conv_mem = emulate "conventional" conv in
    let braid_out, braid_mem = emulate "braid-binary" braid in
    let warm_data = List.map fst init_mem in
    let run_core kind =
      let name = Config.Core_kind.to_string kind in
      let cfg = Config.preset_of_kind kind in
      let out, bin_mem =
        match kind with
        | Config.Braid_exec | Config.Cgooo -> (braid_out, braid_mem)
        | _ -> (conv_out, conv_mem)
      in
      let trace =
        match out.Emulator.trace with Some t -> t | None -> assert false
      in
      let dbg = Debug.create ~invariants cfg in
      let cycles =
        match Pipeline.run ~dbg ~warm_data cfg trace with
        | res -> res.Pipeline.cycles
        | exception Pipeline.Deadlock msg ->
            add name "deadlock" msg;
            0
      in
      let n = Trace.length trace in
      let committed = Debug.committed dbg in
      let committed =
        match inject_commit with None -> committed | Some f -> f committed
      in
      if Array.length committed <> n then
        add name "commit-count"
          (Printf.sprintf "committed %d of %d fetched instructions"
             (Array.length committed) n)
      else begin
        (* the global commit FIFO discipline: strict fetch (trace) order *)
        let first_bad = ref (-1) in
        Array.iteri
          (fun i u -> if !first_bad < 0 && u <> i then first_bad := i)
          committed;
        if !first_bad >= 0 then
          add name "commit-order"
            (Printf.sprintf "position %d committed uid %d (expected %d)"
               !first_bad
               committed.(!first_bad)
               !first_bad);
        (* architectural replay of the committed stream *)
        if Array.for_all (fun u -> u >= 0 && u < n) committed then begin
          let events = trace.Trace.events in
          let st = Emulator.init_state ~init_mem () in
          Array.iter
            (fun u -> Emulator.exec_instr st events.(u).Trace.instr)
            committed;
          let bin_st = out.Emulator.state in
          let reg_divs = ref 0 in
          for id = 0 to Reg.num_ext_ids - 1 do
            let r = ext_reg_of_id id in
            let a = Emulator.read_ext st r
            and b = Emulator.read_ext bin_st r in
            if a <> b && !reg_divs < 4 then begin
              incr reg_divs;
              add name "regfile"
                (Printf.sprintf "%s: replay %Ld vs sequential %Ld"
                   (Reg.to_string r) a b)
            end
          done;
          let replay_mem = Emulator.memory_image st in
          if replay_mem <> bin_mem then
            add name "memory" (mem_diff bin_mem replay_mem)
        end
      end;
      {
        kind;
        name;
        cycles;
        violations = Debug.violations dbg;
        violation_count = Debug.violation_count dbg;
      }
    in
    let core_reports = List.map run_core cores in
    {
      divergences = List.rev !divs;
      cores = core_reports;
      dynamic_count = ref_out.Emulator.dynamic_count;
    }
  end

let pp_divergence fmt d =
  Format.fprintf fmt "%s/%s: %s" d.core d.kind d.detail

let render r =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "  %a\n" pp_divergence d))
    r.divergences;
  List.iter
    (fun c ->
      if c.violation_count > 0 then begin
        Buffer.add_string buf
          (Printf.sprintf "  %s: %d invariant violation(s)\n" c.name
             c.violation_count);
        List.iteri
          (fun i v ->
            if i < 8 then
              Buffer.add_string buf
                (Format.asprintf "    %a\n" Debug.pp_violation v))
          c.violations
      end)
    r.cores;
  Buffer.contents buf
