(** Differential oracle: one program, four executions, one verdict.

    The reference semantics is the emulator on the virtual IR. The oracle
    then compiles the program both ways ({!Braid_core.Transform}
    [conventional] and braid), emulates each binary sequentially, and runs
    each requested timing core over its binary's trace with a live
    {!Braid_uarch.Debug} sink. Divergences reported:

    - ["non-terminating"]: an execution failed to halt within the step
      budget;
    - ["compile-memory"]: a binary's sequential memory image differs from
      the virtual IR's (a compiler bug, caught before blaming a core);
    - ["deadlock"]: the pipeline raised {!Braid_uarch.Pipeline.Deadlock};
    - ["commit-count"] / ["commit-order"]: the core committed a different
      number of instructions than it fetched, or out of fetch order;
    - ["regfile"] / ["memory"]: replaying the committed stream
      architecturally ({!Emulator.exec_instr}) ends with different
      external registers or memory than the binary's own sequential
      emulation.

    Invariant violations observed by the debug sink are carried per core
    alongside the divergences. *)

type divergence = { core : string; kind : string; detail : string }

type core_report = {
  kind : Braid_uarch.Config.core_kind;
  name : string;
  cycles : int;
  violations : Braid_uarch.Debug.violation list;  (** first 200 *)
  violation_count : int;  (** exact total *)
}

type report = {
  divergences : divergence list;
  cores : core_report list;
  dynamic_count : int;  (** reference dynamic instruction count *)
}

val ok : report -> bool
(** No divergence and no invariant violation on any core. *)

val default_cores : Braid_uarch.Config.core_kind list
(** [inorder], [ooo], [braid]. *)

val check :
  ?invariants:bool ->
  ?cores:Braid_uarch.Config.core_kind list ->
  ?inject_commit:(int array -> int array) ->
  Program.t ->
  init_mem:(int * int64) list ->
  report
(** Runs the full differential stack on virtual-register IR.
    [invariants] (default [true]) enables the monitor's structural
    checks; commit streams are always recorded. [inject_commit] perturbs
    the observed committed-uid sequence of every core before the oracle
    examines it — a fault-injection hook proving the oracle actually
    catches commit-order bugs (see the test suite). *)

val pp_divergence : Format.formatter -> divergence -> unit
val render : report -> string
(** Multi-line human-readable summary of a failing report. *)
