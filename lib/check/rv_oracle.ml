(* Differential oracle for the RV frontend: the reference emulator on raw
   RV words against the IR emulator on the translated program, then the
   full compiler/core oracle on the same translated program. *)

module Rv = Braid_rv

type finding = { kind : string; detail : string }

type report = {
  name : string;
  rv_dynamic : int;
  ir_dynamic : int;
  output : string;
  exit_code : int option;
  findings : finding list;
  core : Oracle.report;
}

let ok r = r.findings = [] && Oracle.ok r.core

let check ?cores ?(max_steps = 1_000_000) (img : Rv.Image.t) =
  match Rv.Translate.run img with
  | Error e -> Error e
  | Ok t ->
      let rv = Rv.Emu.run ~max_steps img in
      let ir =
        Emulator.run ~max_steps:(max_steps * 16) ~trace:false t.Rv.Translate.program
          ~init_mem:t.Rv.Translate.init_mem
      in
      let findings = ref [] in
      let add kind detail = findings := { kind; detail } :: !findings in
      (match rv.Rv.Emu.stop with
      | Rv.Emu.Exited _ | Rv.Emu.Break -> ()
      | stop -> add "rv-stop" (Rv.Emu.stop_to_string stop));
      (match ir.Emulator.stop with
      | Trace.Halted -> ()
      | Trace.Steps_exhausted -> add "ir-stop" "translated run exhausted its step budget");
      for n = 1 to 31 do
        let want = rv.Rv.Emu.regs.(n) in
        let got = Rv.Translate.read_x ir.Emulator.state n in
        if want <> got then
          add "reg" (Printf.sprintf "x%d: reference 0x%08x, translated 0x%08x" n want got)
      done;
      let ir_image = Rv.Translate.rv_image_of_state ir.Emulator.state in
      if ir_image <> rv.Rv.Emu.image then begin
        (* Report the first differing address, not the whole images. *)
        let rec first_diff a b =
          match (a, b) with
          | [], [] -> None
          | (addr, v) :: _, [] -> Some (addr, Some v, None)
          | [], (addr, v) :: _ -> Some (addr, None, Some v)
          | (aa, av) :: a', (ba, bv) :: b' ->
              if aa = ba && av = bv then first_diff a' b'
              else if aa <= ba then Some (aa, Some av, List.assoc_opt aa b)
              else Some (ba, List.assoc_opt ba a, Some bv)
        in
        let show = function Some v -> Printf.sprintf "0x%08x" v | None -> "absent" in
        match first_diff ir_image rv.Rv.Emu.image with
        | None -> ()
        | Some (addr, ir_v, rv_v) ->
            add "memory"
              (Printf.sprintf "word 0x%x: reference %s, translated %s" addr (show rv_v)
                 (show ir_v))
      end;
      let core =
        Oracle.check ?cores t.Rv.Translate.program ~init_mem:t.Rv.Translate.init_mem
      in
      Ok
        {
          name = img.Rv.Image.name;
          rv_dynamic = rv.Rv.Emu.steps;
          ir_dynamic = ir.Emulator.dynamic_count;
          output = rv.Rv.Emu.output;
          exit_code =
            (match rv.Rv.Emu.stop with Rv.Emu.Exited c -> Some c | _ -> None);
          findings = List.rev !findings;
          core;
        }

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "rv-oracle %s: %s (%d rv / %d ir instructions)\n" r.name
       (if ok r then "ok" else "DIVERGED")
       r.rv_dynamic r.ir_dynamic);
  List.iter
    (fun f -> Buffer.add_string b (Printf.sprintf "  [%s] %s\n" f.kind f.detail))
    r.findings;
  if not (Oracle.ok r.core) then Buffer.add_string b (Oracle.render r.core);
  Buffer.contents b
