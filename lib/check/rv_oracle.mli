(** Differential oracle for the RV32IM frontend.

    Two independent executions of the same image — the RV reference
    emulator ({!Braid_rv.Emu}) on the raw words, and {!Emulator} on the
    translated IR — must end in the same architectural state: identical
    x1..x31 and identical memory image (compared in RV address space).
    The translated program is then handed to {!Oracle.check}, so every
    committed fixture also exercises both compilers and every timing
    core. Frontend findings:

    - ["rv-stop"] / ["ir-stop"]: an execution did not reach a clean halt
      (reference fault or fuel, IR step budget);
    - ["reg"]: a final xN differs between reference and translated runs;
    - ["memory"]: the final memory images differ. *)

type finding = { kind : string; detail : string }

type report = {
  name : string;
  rv_dynamic : int;  (** RV instructions retired by the reference *)
  ir_dynamic : int;  (** IR instructions retired by the translated run *)
  output : string;  (** HTIF putchar stream from the reference run *)
  exit_code : int option;  (** reference exit code, when it exited *)
  findings : finding list;  (** frontend-level divergences *)
  core : Oracle.report;  (** compiler + timing-core differential *)
}

val ok : report -> bool
(** No frontend finding, no core-level divergence or violation. *)

val check :
  ?cores:Braid_uarch.Config.core_kind list ->
  ?max_steps:int ->
  Braid_rv.Image.t ->
  (report, Braid_rv.Translate.error) result
(** [max_steps] bounds the reference run (default 1_000_000; the IR run
    gets 16x that to absorb lowering expansion). Returns [Error] only
    when the image does not translate. *)

val render : report -> string
(** Multi-line human-readable summary (frontend findings first, then the
    core-level report when it fails). *)
