let shrink ~fails (case : Gen.case) =
  let current = ref case in
  let progress = ref true in
  while !progress do
    progress := false;
    let frags = !current.Gen.fragments in
    let n = List.length frags in
    if n > 1 then begin
      let i = ref 0 in
      while (not !progress) && !i < n do
        let candidate =
          Gen.with_fragments !current
            (List.filteri (fun j _ -> j <> !i) frags)
        in
        if fails candidate then begin
          current := candidate;
          progress := true
        end;
        incr i
      done
    end
  done;
  !current
