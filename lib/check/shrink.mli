(** Greedy block-level shrinker over fuzz cases.

    Repeatedly tries dropping one fragment at a time (front to back),
    keeping any removal after which [fails] still holds, until no single
    removal preserves the failure. Because each fragment carries its own
    seed ({!Gen.fragment}), subsets rebuild deterministically, so the
    failure being chased is the same failure throughout. Never returns an
    empty case. *)

val shrink : fails:(Gen.case -> bool) -> Gen.case -> Gen.case
(** [fails] must hold on the input case; the result is a (possibly
    identical) sub-case on which [fails] still holds. *)
