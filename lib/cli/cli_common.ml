module Config = Braid_uarch.Config
module Spec = Braid_workload.Spec

let core_kind_conv : Config.core_kind Cmdliner.Arg.conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Config.Core_kind.of_string s) in
  let print fmt k = Format.pp_print_string fmt (Config.Core_kind.to_string k) in
  Cmdliner.Arg.conv ~docv:"CORE" (parse, print)

let core_names = String.concat ", " Config.Core_kind.names

let core_arg =
  Cmdliner.Arg.(
    value
    & opt core_kind_conv Config.Braid_exec
    & info [ "core" ] ~docv:"CORE"
        ~doc:(Printf.sprintf "Execution core: %s." core_names))

let preset_conv : Config.t Cmdliner.Arg.conv =
  let parse s =
    Result.map Config.preset_of_kind
      (Result.map_error (fun m -> `Msg m) (Config.Core_kind.of_string s))
  in
  let print fmt (c : Config.t) =
    Format.pp_print_string fmt (Config.Core_kind.to_string c.Config.kind)
  in
  Cmdliner.Arg.conv ~docv:"PRESET" (parse, print)

let preset_arg =
  Cmdliner.Arg.(
    value
    & opt preset_conv Config.braid_8wide
    & info [ "preset" ] ~docv:"PRESET"
        ~doc:
          (Printf.sprintf "Base machine preset (Table 4): %s." core_names))

let seed_arg =
  let doc = "Workload generation seed." in
  Cmdliner.Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg ~default =
  let doc = "Target dynamic instruction count of each benchmark run." in
  Cmdliner.Arg.(value & opt int default & info [ "scale" ] ~docv:"N" ~doc)

let positive_int : int Cmdliner.Arg.conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%s is not a positive integer" s))
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Cmdliner.Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg ~default =
  let doc =
    "Simulation jobs to run in parallel (one domain each); must be \
     positive. 1 runs serially on the calling domain. Output is identical \
     for every value."
  in
  Cmdliner.Arg.(value & opt positive_int default & info [ "jobs" ] ~docv:"N" ~doc)

let valid_bench_names () =
  String.concat "\n" (List.map (fun (p : Spec.profile) -> p.Spec.name) Spec.all)

let bench_conv : Spec.profile Cmdliner.Arg.conv =
  let parse s =
    match Spec.find s with
    | p -> Ok p
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown benchmark %S; valid names:\n%s" s
                (valid_bench_names ())))
  in
  let print fmt (p : Spec.profile) = Format.pp_print_string fmt p.Spec.name in
  Cmdliner.Arg.conv ~docv:"BENCH" (parse, print)

let bench_arg =
  let doc = "Benchmark name (one of the 26 SPEC CPU2000 stand-ins)." in
  Cmdliner.Arg.(
    required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH" ~doc)

let bench_name_conv : string Cmdliner.Arg.conv =
  let parse s =
    match Spec.find s with
    | (_ : Spec.profile) -> Ok s
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown benchmark %S; valid names:\n%s" s
                (valid_bench_names ())))
  in
  Cmdliner.Arg.conv ~docv:"BENCH" (parse, Format.pp_print_string)

module Exp = Braid_sim.Experiments

let experiment_id_conv : string Cmdliner.Arg.conv =
  let parse s =
    match Exp.find s with
    | (_ : Exp.t) -> Ok s
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown experiment %S; valid ids:\n%s" s
                (String.concat "\n"
                   (List.map (fun (e : Exp.t) -> e.Exp.id) Exp.all))))
  in
  Cmdliner.Arg.conv ~docv:"ID" (parse, Format.pp_print_string)

let only_arg =
  let doc = "Comma-separated experiment ids to run (default: all)." in
  Cmdliner.Arg.(
    value & opt (list experiment_id_conv) [] & info [ "only" ] ~docv:"IDS" ~doc)

let reps_arg ~default =
  let doc = "Timed repetitions per (benchmark, core) in --perf mode." in
  Cmdliner.Arg.(
    value & opt positive_int default & info [ "reps" ] ~docv:"N" ~doc)

let json_file_arg ~doc =
  Cmdliner.Arg.(
    value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
