(** Cmdliner vocabulary shared by the [braidsim] and [bench] front ends.

    Both executables historically hand-rolled their own core selection,
    benchmark-name validation and [--seed]/[--scale]/[--jobs] terms; this
    module is the single copy, built on
    {!Braid_uarch.Config.Core_kind} so the two CLIs cannot drift from
    each other or from the api/DSE/fuzz spellings. *)

val core_kind_conv : Braid_uarch.Config.core_kind Cmdliner.Arg.conv
(** Parses ["in-order"], ["dep-steer"], ["ooo"], ["braid"]; a typo is a
    usage error listing the valid spellings. *)

val core_arg : Braid_uarch.Config.core_kind Cmdliner.Term.t
(** [--core CORE], defaulting to the braid core. *)

val preset_arg : Braid_uarch.Config.t Cmdliner.Term.t
(** [--preset PRESET]: the Table 4 preset named by its core kind
    (defaults to [braid_8wide]). *)

val seed_arg : int Cmdliner.Term.t
(** [--seed SEED], default 1. *)

val scale_arg : default:int -> int Cmdliner.Term.t
(** [--scale N]: target dynamic instruction count. *)

val positive_int : int Cmdliner.Arg.conv
(** Strictly positive integers; 0/negative is a usage error. *)

val jobs_arg : default:int -> int Cmdliner.Term.t
(** [--jobs N] (positive): domain-pool width. *)

val bench_conv : Braid_workload.Spec.profile Cmdliner.Arg.conv
(** Benchmark by name; unknown names are usage errors listing the valid
    ones. *)

val bench_arg : Braid_workload.Spec.profile Cmdliner.Term.t
(** Required positional benchmark argument. *)

val bench_name_conv : string Cmdliner.Arg.conv
(** Like {!bench_conv} but yields the validated name — for
    comma-separated benchmark lists. *)

val experiment_id_conv : string Cmdliner.Arg.conv
(** Experiment id validated against {!Braid_sim.Experiments}; a typo is a
    usage error listing the valid ids. *)

val only_arg : string list Cmdliner.Term.t
(** [--only IDS]: comma-separated, validated experiment ids (default
    all). *)

val reps_arg : default:int -> int Cmdliner.Term.t
(** [--reps N] (positive): timed repetitions in perf mode. *)

val json_file_arg : doc:string -> string option Cmdliner.Term.t
(** [--json FILE] with a caller-supplied description ([-] conventionally
    means stdout). *)
