module Obs = Braid_obs
module U = Braid_uarch

(* Multi-programmed (rate-mode) CMP: N identical cores, each running its
   own program over private L1s, share one coherent L2 behind an MSI
   directory ([Mem_hier]). One global clock steps every unfinished core
   once per cycle (core 0 first — deterministic); a finished core goes
   quiet while the others keep contending for the shared L2. *)

type workload = {
  w_bench : string;
  w_trace : Trace.t;
  w_warm_data : int list;
}

type core_result = {
  core_id : int;
  bench : string;
  result : U.Core.result;  (* counters at this core's own finish cycle *)
  solo_cycles : int;
  slowdown : float;  (* cycles / solo_cycles; 1.0 = no interference *)
}

type t = {
  cores : core_result list;
  cycles : int;  (* global cycles until the last core finished *)
  instructions : int;  (* summed over cores *)
  aggregate_ipc : float;  (* sum of per-core IPCs (rate metric) *)
  weighted_speedup : float;  (* (1/N) sum of IPC_cmp / IPC_solo *)
  l2_hits : int;
  l2_misses : int;
  coherence : U.Mem_hier.coh_stats;
  violations : string list;  (* directory-legality scan at the end *)
}

let run ?(obs = Obs.Sink.disabled) ?dbgs ?solo_cycles ~(cfg : U.Config.t)
    ~(cmp : U.Config.Cmp.t) (workloads : workload array) =
  let n = Array.length workloads in
  if n = 0 then invalid_arg "Cmp.run: no workloads";
  if n <> cmp.U.Config.Cmp.cores then
    invalid_arg
      (Printf.sprintf "Cmp.run: %d workloads for %d cores" n
         cmp.U.Config.Cmp.cores);
  (match dbgs with
  | Some d when Array.length d <> n ->
      invalid_arg "Cmp.run: dbgs length must equal the core count"
  | _ -> ());
  (* Solo baselines first (private hierarchies, untouched by the CMP):
     the per-core slowdown denominator. Skipped when the caller already
     knows them (memoised suite runs). *)
  let solo =
    match solo_cycles with
    | Some c ->
        if Array.length c <> n then
          invalid_arg "Cmp.run: solo_cycles length must equal the core count";
        c
    | None ->
        Array.map
          (fun w ->
            (U.Pipeline.run ~warm_data:w.w_warm_data cfg w.w_trace)
              .U.Pipeline.cycles)
          workloads
  in
  let shared =
    U.Mem_hier.create_shared ~obs
      ~memory_latency:cfg.U.Config.mem.U.Config.memory_latency
      cmp.U.Config.Cmp.l2
  in
  (* Creation order is core order: warm-up fills interleave into the
     shared L2 deterministically. *)
  let cores =
    Array.mapi
      (fun i w ->
        let obs_i = Obs.Sink.scoped obs (Printf.sprintf "core%d." i) in
        let hier = U.Mem_hier.attach ~obs:obs_i ~core:i shared cfg.U.Config.mem in
        let dbg = Option.map (fun d -> d.(i)) dbgs in
        U.Core.create ~obs:obs_i ?dbg ~warm_data:w.w_warm_data ~hier cfg
          w.w_trace)
      workloads
  in
  let gcycle = ref 0 in
  let live = ref n in
  while !live > 0 do
    U.Mem_hier.set_now shared !gcycle;
    Array.iter
      (fun c ->
        if not (U.Core.finished c) then begin
          U.Core.step c;
          if U.Core.finished c then decr live
        end)
      cores;
    incr gcycle
  done;
  let per_core =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let r = U.Core.result c in
           {
             core_id = i;
             bench = workloads.(i).w_bench;
             result = r;
             solo_cycles = solo.(i);
             slowdown =
               float_of_int r.U.Core.cycles /. float_of_int (max 1 solo.(i));
           })
         cores)
  in
  let cycles =
    List.fold_left (fun acc c -> max acc c.result.U.Core.cycles) 0 per_core
  in
  let instructions =
    List.fold_left (fun acc c -> acc + c.result.U.Core.instructions) 0 per_core
  in
  let aggregate_ipc =
    List.fold_left (fun acc c -> acc +. c.result.U.Core.ipc) 0.0 per_core
  in
  let weighted_speedup =
    List.fold_left (fun acc c -> acc +. (1.0 /. c.slowdown)) 0.0 per_core
    /. float_of_int n
  in
  let l2_hits, l2_misses = U.Mem_hier.shared_l2_stats shared in
  {
    cores = per_core;
    cycles;
    instructions;
    aggregate_ipc;
    weighted_speedup;
    l2_hits;
    l2_misses;
    coherence = U.Mem_hier.coh_of_shared shared;
    violations = U.Mem_hier.coherence_violations shared;
  }
