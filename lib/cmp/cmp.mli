(** Multi-programmed (rate-mode) CMP over a shared, coherent L2.

    N identical cores — each a full {!Braid_uarch.Core} pipeline running
    its own program over private L1s — share one L2 behind the MSI
    directory of {!Braid_uarch.Mem_hier}. One global clock steps every
    unfinished core once per cycle (core 0 first, so runs are
    deterministic); a core that commits its whole trace goes quiet while
    the rest keep contending for the shared L2.

    Metrics follow the rate-mode convention: each core's IPC is taken at
    its {e own} finish cycle; [aggregate_ipc] sums them (throughput);
    [weighted_speedup] is the mean of per-core [IPC_cmp / IPC_solo] —
    1.0 means the shared hierarchy cost nothing, lower means
    interference. *)

type workload = {
  w_bench : string;  (** label only *)
  w_trace : Braid_isa.Trace.t;
  w_warm_data : int list;  (** initial data image (see [Pipeline.run]) *)
}

type core_result = {
  core_id : int;
  bench : string;
  result : Braid_uarch.Core.result;
      (** per-core counters, at this core's own finish cycle *)
  solo_cycles : int;  (** same workload, same config, private hierarchy *)
  slowdown : float;  (** cycles / solo_cycles; 1.0 = no interference *)
}

type t = {
  cores : core_result list;  (** in core order *)
  cycles : int;  (** global cycles until the last core finished *)
  instructions : int;  (** summed over cores *)
  aggregate_ipc : float;  (** sum of per-core IPCs (rate metric) *)
  weighted_speedup : float;  (** (1/N) × sum of IPC_cmp / IPC_solo *)
  l2_hits : int;  (** shared L2 *)
  l2_misses : int;
  coherence : Braid_uarch.Mem_hier.coh_stats;
  violations : string list;
      (** directory-legality scan after the run; must be empty *)
}

val run :
  ?obs:Braid_obs.Sink.t ->
  ?dbgs:Braid_uarch.Debug.t array ->
  ?solo_cycles:int array ->
  cfg:Braid_uarch.Config.t ->
  cmp:Braid_uarch.Config.Cmp.t ->
  workload array ->
  t
(** [run ~cfg ~cmp workloads] needs exactly [cmp.cores] workloads (the
    caller resolves [cmp.workloads] names to traces, round-robin —
    {!Braid_uarch.Config.Cmp.workload_of}).

    Solo baselines are simulated first over private hierarchies unless
    [solo_cycles] supplies them (e.g. memoised); they never touch the
    shared state. A 1-core run over the solo L2 geometry is
    cycle-identical to [Pipeline.run] — the passthrough proof the golden
    suite pins.

    With a live [obs] sink, core [i]'s counters are namespaced
    ["core<i>."] ({!Braid_obs.Sink.scoped}) while the shared backside
    registers ["l2.*"] and ["coh.*"] unprefixed; attach a tracer before
    calling to also capture coherence events.

    [dbgs] attaches one invariant monitor per core (commit-stream
    recording for the differential fuzzer).

    Raises [Invalid_argument] on a workload/core count mismatch or
    mis-sized [dbgs]/[solo_cycles]. *)
