module U = Braid_uarch
module Suite = Braid_sim.Suite
module Spec = Braid_workload.Spec

(* The default compile budget is Suite.prepare's own default — the same
   binaries `braidsim run` times, so a 1-core CMP lands on the golden
   numbers exactly. A sweep overrides it with its per-point budget
   (Sweep.ext_usable_of) so the cores axis compares like binaries with
   its solo points. *)
let resolve ?(ext_usable = Braid_core.Extalloc.usable_per_class) ctx ~seed
    ~scale ~(cfg : U.Config.t) (cmp : U.Config.Cmp.t) =
  Array.init cmp.U.Config.Cmp.cores (fun i ->
      let name = U.Config.Cmp.workload_of cmp i in
      let pr =
        match Spec.find name with
        | p -> p
        | exception Not_found ->
            invalid_arg (Printf.sprintf "Cmp_bench: unknown benchmark %S" name)
      in
      let p = Suite.prepare ctx ~seed ~scale ~ext_usable pr in
      let trace =
        match cfg.U.Config.kind with
        | U.Config.Braid_exec | U.Config.Cgooo -> p.Suite.braid_trace ()
        | U.Config.In_order | U.Config.Dep_steer | U.Config.Ooo ->
            p.Suite.conv_trace ()
      in
      { Cmp.w_bench = pr.Spec.name; w_trace = trace; w_warm_data = p.Suite.warm_data })

let run ?obs ?dbgs ?ext_usable ctx ~seed ~scale ~(cfg : U.Config.t)
    (cmp : U.Config.Cmp.t) =
  let workloads = resolve ?ext_usable ctx ~seed ~scale ~cfg cmp in
  Cmp.run ?obs ?dbgs ~cfg ~cmp workloads
