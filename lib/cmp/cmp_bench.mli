(** Benchmark-suite plumbing for CMP runs: resolve the workload names of a
    {!Braid_uarch.Config.Cmp.t} to prepared traces through a
    {!Braid_sim.Suite.ctx}, so one-shot and served executions share the
    same memoised preparations (and hence produce identical bytes). *)

val resolve :
  ?ext_usable:int ->
  Braid_sim.Suite.ctx ->
  seed:int ->
  scale:int ->
  cfg:Braid_uarch.Config.t ->
  Braid_uarch.Config.Cmp.t ->
  Cmp.workload array
(** One workload per core, round-robin over [cmp.workloads]
    ({!Braid_uarch.Config.Cmp.workload_of}); the trace is the braid
    binary's on a braid core and the conventional binary's otherwise.

    [ext_usable] is the compile-time external-register budget and
    defaults to {!Braid_core.Extalloc.usable_per_class} — the
    {!Braid_sim.Suite.prepare} default, i.e. the exact binaries
    [braidsim run] times, which is what makes a 1-core CMP reproduce the
    golden numbers. A sweep passes its per-point budget
    ({!Braid_dse.Sweep.ext_usable_of}) instead, so the cores axis
    compares like binaries with its solo points.

    Raises [Invalid_argument] on an unknown benchmark name — validate
    names first where a typed error is wanted. *)

val run :
  ?obs:Braid_obs.Sink.t ->
  ?dbgs:Braid_uarch.Debug.t array ->
  ?ext_usable:int ->
  Braid_sim.Suite.ctx ->
  seed:int ->
  scale:int ->
  cfg:Braid_uarch.Config.t ->
  Braid_uarch.Config.Cmp.t ->
  Cmp.t
(** [resolve] then {!Cmp.run}. Fully deterministic for fixed
    (seed, scale, cfg, cmp, ext_usable). *)
