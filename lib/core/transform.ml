type report = {
  program : Program.t;
  alloc : Extalloc.result;
  braids : int;
  splits_working_set : int;
  splits_ordering : int;
}

(* Reaching definition (instruction index) for register [r] at each
   instruction, as a per-instruction table. *)
let reach_tables (b : Program.block) =
  let last_def : (Reg.t, int) Hashtbl.t = Hashtbl.create 16 in
  Array.mapi
    (fun i ins ->
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun r ->
          if Regset.tracked r then
            match Hashtbl.find_opt last_def r with
            | Some d -> Hashtbl.replace tbl r d
            | None -> ())
        (Instr.uses ins);
      List.iter
        (fun r -> if Regset.tracked r then Hashtbl.replace last_def r i)
        (Instr.defs ins);
      tbl)
    b.Program.instrs

(* Assign internal register indices to internal definitions, braid by
   braid, with a linear scan over the braid's members in original order.
   Returns the index per defining instruction. The working-set splits in
   {!Braid.analyze} guarantee this never runs out of registers. *)
let assign_internals (a : Braid.analysis) cons ~max_internal =
  let n = Array.length a.Braid.ids in
  let int_reg_of = Array.make n (-1) in
  for bid = 0 to a.Braid.count - 1 do
    let mem =
      Array.to_list a.Braid.order
      |> List.filter (fun i -> a.Braid.ids.(i) = bid)
      |> List.sort compare
    in
    let free = ref (List.init max_internal (fun i -> i)) in
    let releases = ref [] in
    (* (last_use, reg) *)
    List.iter
      (fun t ->
        let still, done_ =
          List.partition (fun (lu, _) -> lu >= t) !releases
        in
        List.iter (fun (_, k) -> free := List.sort compare (k :: !free)) done_;
        releases := still;
        if a.Braid.internal.(t) then begin
          match !free with
          | [] ->
              failwith "Transform.assign_internals: working-set bound violated"
          | k :: rest ->
              free := rest;
              int_reg_of.(t) <- k;
              let in_braid =
                List.filter (fun c -> a.Braid.ids.(c) = bid) cons.(t)
              in
              let last = List.fold_left max t in_braid in
              releases := (last, k) :: !releases
        end)
      mem
  done;
  int_reg_of

let rewrite_block ~max_internal ~live_out ~braid_base (b : Program.block) =
  let a = Braid.analyze ~max_internal ~live_out b in
  let cons = Braid.consumers b in
  let reach = reach_tables b in
  let int_reg_of = assign_internals a cons ~max_internal in
  let rewrite t (ins : Instr.t) =
    let map_use (r : Reg.t) =
      (* A use reads the internal register only when its reaching
         definition is internal AND lives in the same braid; consumers in
         other braids (possible after splits, the I+E case) read the
         external copy. *)
      match Hashtbl.find_opt reach.(t) r with
      | Some d
        when a.Braid.internal.(d)
             && int_reg_of.(d) >= 0
             && a.Braid.ids.(d) = a.Braid.ids.(t) ->
          Reg.intern int_reg_of.(d)
      | Some _ | None -> r
    in
    (* Rewrite uses first. map_regs hits defs too; we re-install the def
       afterwards, so only instructions whose def register equals a use
       register need care — handled by re-installing the def. *)
    let op = ins.Instr.op in
    let defs = List.filter Regset.tracked (Op.defs op) in
    let op =
      match op with
      | Op.Ibin (o, d, x, y) -> Op.Ibin (o, d, map_use x, map_use y)
      | Op.Ibini (o, d, x, i) -> Op.Ibini (o, d, map_use x, i)
      | Op.Movi _ -> op
      | Op.Fbin (o, d, x, y) -> Op.Fbin (o, d, map_use x, map_use y)
      | Op.Funary (o, d, x) -> Op.Funary (o, d, map_use x)
      | Op.Cmov (c, d, test, v) -> Op.Cmov (c, d, map_use test, map_use v)
      | Op.Load (d, base, off, rg) -> Op.Load (d, map_use base, off, rg)
      | Op.Store (s, base, off, rg) -> Op.Store (map_use s, map_use base, off, rg)
      | Op.Branch (c, r, l) -> Op.Branch (c, map_use r, l)
      | Op.Nop | Op.Jump _ | Op.Halt -> op
    in
    (* Now the destination: rewritten structurally (never via map_regs,
       which would also clobber a same-register source that resolved to an
       external reaching definition). *)
    let set_def op nd =
      match op with
      | Op.Ibin (o, _, x, y) -> Op.Ibin (o, nd, x, y)
      | Op.Ibini (o, _, x, i) -> Op.Ibini (o, nd, x, i)
      | Op.Movi (_, v) -> Op.Movi (nd, v)
      | Op.Fbin (o, _, x, y) -> Op.Fbin (o, nd, x, y)
      | Op.Funary (o, _, x) -> Op.Funary (o, nd, x)
      | Op.Load (_, base, off, rg) -> Op.Load (nd, base, off, rg)
      | Op.Cmov _ -> assert false (* cmov destinations are never internal *)
      | Op.Nop | Op.Store _ | Op.Branch _ | Op.Jump _ | Op.Halt ->
          assert false (* no destination *)
    in
    let op, ext_dup =
      match defs with
      | [ d ] when a.Braid.internal.(t) && int_reg_of.(t) >= 0 ->
          let op = set_def op (Reg.intern int_reg_of.(t)) in
          (op, if a.Braid.internal_and_external.(t) then Some d else None)
      | _ -> (op, None)
    in
    let annot =
      {
        Instr.braid_id = braid_base + a.Braid.ids.(t);
        braid_start = false (* recomputed by the fix-up pass *);
        ext_dup;
        origin = ins.Instr.annot.Instr.origin;
      }
    in
    { Instr.op; annot }
  in
  let instrs = Array.map (fun t -> rewrite t b.Program.instrs.(t)) a.Braid.order in
  ({ b with Program.instrs }, a)

(* After external allocation inserted spill code (annot braid_id = -1),
   attach each inserted instruction to a neighbouring braid and recompute
   the S bits from braid-id transitions. *)
let fixup_annotations (b : Program.block) =
  let n = Array.length b.Program.instrs in
  let ids = Array.map (fun ins -> ins.Instr.annot.Instr.braid_id) b.Program.instrs in
  for i = 0 to n - 1 do
    if ids.(i) < 0 then begin
      let next = ref (-1) in
      (try
         for j = i + 1 to n - 1 do
           if ids.(j) >= 0 then begin
             next := ids.(j);
             raise Exit
           end
         done
       with Exit -> ());
      let prev = if i > 0 then ids.(i - 1) else -1 in
      let is_store = Op.is_store b.Program.instrs.(i).Instr.op in
      ids.(i) <-
        (if is_store && prev >= 0 then prev
         else if !next >= 0 then !next
         else if prev >= 0 then prev
         else 0)
    end
  done;
  let instrs =
    Array.mapi
      (fun i ins ->
        let start = i = 0 || ids.(i) <> ids.(i - 1) in
        {
          ins with
          Instr.annot =
            { ins.Instr.annot with Instr.braid_id = ids.(i); braid_start = start };
        })
      b.Program.instrs
  in
  { b with Program.instrs }

let run ?(max_internal = Reg.num_internal) ?ext_usable p =
  let live = Dataflow.liveness p in
  let braid_base = ref 0 in
  let splits_ws = ref 0 and splits_ord = ref 0 in
  let braids = ref 0 in
  let blocks =
    Array.map
      (fun (b : Program.block) ->
        let live_out = live.Dataflow.live_out.(b.Program.id) in
        let nb, a =
          rewrite_block ~max_internal ~live_out ~braid_base:!braid_base b
        in
        braid_base := !braid_base + a.Braid.count;
        braids := !braids + a.Braid.count;
        splits_ws := !splits_ws + a.Braid.splits_working_set;
        splits_ord := !splits_ord + a.Braid.splits_ordering;
        nb)
      p.Program.blocks
  in
  let reordered = { p with Program.blocks } in
  (* re-validate structural invariants *)
  let reordered = Program.map_blocks (fun b -> b) reordered in
  let alloc = Extalloc.allocate ?usable:ext_usable reordered in
  let program = Program.map_blocks fixup_annotations alloc.Extalloc.program in
  {
    program;
    alloc = { alloc with Extalloc.program };
    braids = !braids;
    splits_working_set = !splits_ws;
    splits_ordering = !splits_ord;
  }

let conventional p = Extalloc.allocate p

(* The paper's own methodology: braid formation over a PREEXISTING,
   already-allocated binary (their binary profiling + translation tools).
   Identification, splitting, scheduling and internal rewriting are the
   same analyses, over architectural instead of virtual registers; no
   external allocation pass runs (the binary has one), so the conditions
   of §3.1 appear exactly as the paper describes them: artifacts of
   translating code a braid-unaware compiler produced. *)
let run_binary ?(max_internal = Reg.num_internal) p =
  if Program.max_virt_index p >= 0 then
    invalid_arg "Transform.run_binary: input must be fully allocated";
  let live = Dataflow.liveness p in
  let braid_base = ref 0 in
  let splits_ws = ref 0 and splits_ord = ref 0 in
  let braids = ref 0 in
  let blocks =
    Array.map
      (fun (b : Program.block) ->
        let live_out = live.Dataflow.live_out.(b.Program.id) in
        let nb, a =
          rewrite_block ~max_internal ~live_out ~braid_base:!braid_base b
        in
        braid_base := !braid_base + a.Braid.count;
        braids := !braids + a.Braid.count;
        splits_ws := !splits_ws + a.Braid.splits_working_set;
        splits_ord := !splits_ord + a.Braid.splits_ordering;
        fixup_annotations nb)
      p.Program.blocks
  in
  let program = Program.map_blocks (fun b -> b) { p with Program.blocks } in
  {
    program;
    alloc = { Extalloc.program; spilled = 0; spill_loads = 0; spill_stores = 0 };
    braids = !braids;
    splits_working_set = !splits_ws;
    splits_ordering = !splits_ord;
  }
