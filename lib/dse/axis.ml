module Config = Braid_uarch.Config

type t = { field : string; values : string list }

(* "cores" is a pseudo-axis: not a Config field (adding one there would
   change every config digest and invalidate every sweep cache) but a
   grid-level binding that tiles the point's machine over N cores sharing
   a coherent L2 (Braid_cmp). Grid.expand parses and bounds its values. *)
let pseudo_fields = [ "cores" ]

let make ~field values =
  if
    not
      (List.mem field Config.sweepable_fields || List.mem field pseudo_fields)
  then
    Error
      (Printf.sprintf "unknown sweep axis field %S; sweepable fields: %s" field
         (String.concat ", " (Config.sweepable_fields @ pseudo_fields)))
  else if values = [] then
    Error (Printf.sprintf "axis %s: at least one value is required" field)
  else if
    List.length (List.sort_uniq String.compare values) <> List.length values
  then Error (Printf.sprintf "axis %s: duplicate values" field)
  else Ok { field; values }

let ints ~field vs = make ~field (List.map string_of_int vs)
let bools ~field vs = make ~field (List.map string_of_bool vs)

let of_spec spec =
  match String.index_opt spec '=' with
  | None ->
      Error
        (Printf.sprintf "malformed axis %S (expected FIELD=V1,V2,...)" spec)
  | Some i ->
      let field = String.trim (String.sub spec 0 i) in
      let values =
        String.sub spec (i + 1) (String.length spec - i - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      make ~field values

let to_spec a = Printf.sprintf "%s=%s" a.field (String.concat "," a.values)

let pp fmt a = Format.pp_print_string fmt (to_spec a)
