(** A typed sweep axis: one {!Braid_uarch.Config} field and the values it
    takes across the design space. Values are the canonical strings the
    {!Braid_uarch.Config.override} primitive parses, so an axis can
    address any sweepable field — integer widths, booleans, the predictor,
    even the core kind. *)

type t = private { field : string; values : string list }

val pseudo_fields : string list
(** Grid-level axes that are not {!Braid_uarch.Config} fields. Currently
    only ["cores"]: the CMP core count, carried on {!Grid.point} beside
    the per-core config (a Config field would change every digest). *)

val make : field:string -> string list -> (t, string) result
(** Rejects unknown fields (listing the sweepable ones plus
    {!pseudo_fields}), empty value lists and duplicate values. Value
    parseability is checked per grid point at expansion time
    ({!Grid.expand}). *)

val ints : field:string -> int list -> (t, string) result
val bools : field:string -> bool list -> (t, string) result

val of_spec : string -> (t, string) result
(** Parses the CLI form ["ext_regs=4,8,16,32"]. *)

val to_spec : t -> string
(** Inverse of {!of_spec}. *)

val pp : Format.formatter -> t -> unit
