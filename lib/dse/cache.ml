

let schema = "braidsim-sweep-cache/1"

type t = { dir : string }

type key = {
  config_digest : string;
  bench : string;
  seed : int;
  scale : int;
  binary : string;
  ext_usable : int;
  sampling : string;
  cores : int;
}

type cmp_extra = {
  per_core : (int * int) list;
  solo : int list;
  invalidations : int;
  downgrades : int;
  writebacks : int;
  remote_hits : int;
  l2_hits : int;
  l2_misses : int;
}

type entry = { cycles : int; instructions : int; cmp : cmp_extra option }

let rec mkdir_p dir =
  if dir = "" || dir = "/" || dir = "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let open_dir dir =
  match
    mkdir_p dir;
    Sys.is_directory dir
  with
  | true -> Ok { dir }
  | false -> Error (Printf.sprintf "cache dir %s exists and is not a directory" dir)
  | exception Sys_error msg -> Error (Printf.sprintf "cannot open cache dir: %s" msg)

let dir t = t.dir

let key_id k =
  (* content address of the whole job identity: the config digest already
     folds in every machine parameter, the rest pins the trace. A sampled
     job appends its spec digest so full and sampled results of the same
     point never alias; the full-simulation address is unchanged ([""]
     appends nothing), keeping caches from before sampling valid. A CMP
     job (cores > 1) appends its core count the same way, so solo
     addresses written before the cores axis existed stay valid too. *)
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([
             schema; k.config_digest; k.bench; string_of_int k.seed;
             string_of_int k.scale; k.binary; string_of_int k.ext_usable;
           ]
          @ (if k.sampling = "" then [] else [ k.sampling ])
          @ (if k.cores = 1 then [] else [ "cores=" ^ string_of_int k.cores ]))))

(* <dir>/<first two hex chars>/<full id>.json *)
let path t k =
  let id = key_id k in
  Filename.concat (Filename.concat t.dir (String.sub id 0 2)) (id ^ ".json")

(* CMP payloads ride in flat comma-joined strings so the entry stays one
   shallow JSON object the line parser already handles. *)
let ints_to_string xs = String.concat "," (List.map string_of_int xs)

let ints_of_string s =
  let parts = String.split_on_char ',' s in
  List.fold_left
    (fun acc p ->
      match (acc, int_of_string_opt p) with
      | Some acc, Some n -> Some (n :: acc)
      | _ -> None)
    (Some []) parts
  |> Option.map List.rev

let pairs_to_string xs =
  String.concat "," (List.map (fun (c, i) -> Printf.sprintf "%d:%d" c i) xs)

let pairs_of_string s =
  let parts = String.split_on_char ',' s in
  List.fold_left
    (fun acc p ->
      match (acc, String.split_on_char ':' p) with
      | Some acc, [ c; i ] -> (
          match (int_of_string_opt c, int_of_string_opt i) with
          | Some c, Some i -> Some ((c, i) :: acc)
          | _ -> None)
      | _ -> None)
    (Some []) parts
  |> Option.map List.rev

let entry_to_json k e =
  Json.obj_lit
    ([
       ("schema", Json.escape_string schema);
       ("config_digest", Json.escape_string k.config_digest);
       ("bench", Json.escape_string k.bench);
       ("seed", string_of_int k.seed);
       ("scale", string_of_int k.scale);
       ("binary", Json.escape_string k.binary);
       ("ext_usable", string_of_int k.ext_usable);
     ]
    @ (if k.sampling = "" then []
       else [ ("sampling", Json.escape_string k.sampling) ])
    @ (if k.cores = 1 then [] else [ ("cores", string_of_int k.cores) ])
    @ [
        ("cycles", string_of_int e.cycles);
        ("instructions", string_of_int e.instructions);
      ]
    @ (match e.cmp with
      | None -> []
      | Some x ->
          [
            ("per_core", Json.escape_string (pairs_to_string x.per_core));
            ("solo", Json.escape_string (ints_to_string x.solo));
            ( "coherence",
              Json.escape_string
                (ints_to_string
                   [ x.invalidations; x.downgrades; x.writebacks; x.remote_hits ])
            );
            ("l2", Json.escape_string (ints_to_string [ x.l2_hits; x.l2_misses ]));
          ]))
  ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A hit must re-prove its identity: the filename is a hash, so a digest
   collision or a foreign/corrupt file degrades to a miss, never to a
   wrong result. *)
let find t k =
  let p = path t k in
  if not (Sys.file_exists p) then None
  else
    match Json.parse (read_file p) with
    | Error _ -> None
    | exception Sys_error _ -> None
    | Ok doc ->
        let str name = Json.str_member name doc in
        let int name = Json.int_member name doc in
        let matches =
          str "schema" = Some schema
          && str "config_digest" = Some k.config_digest
          && str "bench" = Some k.bench
          && int "seed" = Some k.seed
          && int "scale" = Some k.scale
          && str "binary" = Some k.binary
          && int "ext_usable" = Some k.ext_usable
          (* absent means "full simulation": files written before the
             field existed keep matching full-simulation keys *)
          && Option.value (str "sampling") ~default:"" = k.sampling
          (* likewise, absent means "solo" (one core) *)
          && Option.value (int "cores") ~default:1 = k.cores
        in
        if not matches then None
        else
          let cmp =
            if k.cores = 1 then Ok None
            else
              (* a CMP hit must carry its whole payload; anything short
                 or malformed degrades to a miss *)
              match
                ( Option.bind (str "per_core") pairs_of_string,
                  Option.bind (str "solo") ints_of_string,
                  Option.bind (str "coherence") ints_of_string,
                  Option.bind (str "l2") ints_of_string )
              with
              | ( Some per_core,
                  Some solo,
                  Some [ invalidations; downgrades; writebacks; remote_hits ],
                  Some [ l2_hits; l2_misses ] )
                when List.length per_core = k.cores
                     && List.length solo = k.cores ->
                  Ok
                    (Some
                       {
                         per_core; solo; invalidations; downgrades; writebacks;
                         remote_hits; l2_hits; l2_misses;
                       })
              | _ -> Error ()
          in
          match (cmp, int "cycles", int "instructions") with
          | Ok cmp, Some cycles, Some instructions when cycles > 0 ->
              Some { cycles; instructions; cmp }
          | _ -> None

let store t k e =
  let p = path t k in
  mkdir_p (Filename.dirname p);
  (* write-then-rename: concurrent writers of the same key (two grid
     points naming one machine) both produce identical content, and a
     reader never observes a torn file *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Hashtbl.hash (Domain.self ())) (Random.bits ())
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (entry_to_json k e));
  Sys.rename tmp p
