(** Content-addressed on-disk cache of sweep simulation results.

    One JSON file per (configuration × trace) job, addressed by a digest
    of {!Braid_uarch.Config.digest} plus the trace identity (benchmark,
    seed, scale, binary flavour, compile-time external register budget).
    Layout: [<dir>/<id[0..1]>/<id>.json] with a
    ["braidsim-sweep-cache/1"] schema recording both the full key and the
    result, so a hit is verified against the key it claims to answer —
    corrupt or foreign files degrade to misses. Writes go through a
    temp-file rename, making concurrent sweeps over one directory safe.

    Interrupted sweeps therefore resume with zero recomputation, and a
    repeat of a completed sweep is pure cache reads. *)

type t

type key = {
  config_digest : string;  (** {!Braid_uarch.Config.digest} of the point *)
  bench : string;
  seed : int;
  scale : int;
  binary : string;  (** ["braid"] or ["conv"] *)
  ext_usable : int;  (** compile-time external register budget *)
  sampling : string;
      (** {!Braid_sample.Spec.digest} when the result came from sampled
          simulation, [""] for full simulation. Folded into the content
          address, so full and sampled results never alias; [""] leaves
          the address (and on-disk format) identical to pre-sampling
          caches, which therefore stay valid. *)
  cores : int;
      (** CMP core count; 1 (solo) leaves the content address and on-disk
          format identical to pre-CMP caches, which therefore stay
          valid. *)
}

type cmp_extra = {
  per_core : (int * int) list;  (** (cycles, instructions), core order *)
  solo : int list;  (** solo-baseline cycles, core order *)
  invalidations : int;  (** coherence traffic of the whole run *)
  downgrades : int;
  writebacks : int;
  remote_hits : int;
  l2_hits : int;  (** shared L2 *)
  l2_misses : int;
}
(** The extra payload of a CMP entry, enough to rebuild per-core IPCs,
    slowdowns and coherence counters from cached integers alone. *)

type entry = {
  cycles : int;  (** solo: run cycles; CMP: global cycles (last finisher) *)
  instructions : int;  (** summed over cores for CMP *)
  cmp : cmp_extra option;  (** present exactly when [key.cores > 1] *)
}

val open_dir : string -> (t, string) result
(** Creates the directory (and parents) if needed. *)

val dir : t -> string
val path : t -> key -> string

val find : t -> key -> entry option
(** [None] on absence, parse failure, schema/key mismatch or a
    non-positive cycle count. *)

val store : t -> key -> entry -> unit
(** Atomic (write + rename). Raises [Sys_error] on I/O failure. *)
