module Config = Braid_uarch.Config
module Report = Braid_sim.Report

let schema = "braidsim-sweep/1"

(* Pareto dominance over (maximise mean IPC, minimise complexity). *)
let pareto (results : Sweep.point_result list) =
  List.map
    (fun (p : Sweep.point_result) ->
      let dominated =
        List.exists
          (fun (q : Sweep.point_result) ->
            q.Sweep.mean_ipc >= p.Sweep.mean_ipc
            && q.Sweep.complexity <= p.Sweep.complexity
            && (q.Sweep.mean_ipc > p.Sweep.mean_ipc
               || q.Sweep.complexity < p.Sweep.complexity))
          results
      in
      (p, not dominated))
    results

let render (o : Sweep.outcome) =
  let flagged = pareto o.Sweep.results in
  let rows =
    List.map
      (fun ((p : Sweep.point_result), optimal) ->
        [
          p.Sweep.point.Grid.label;
          Printf.sprintf "%.0f" p.Sweep.complexity;
          Printf.sprintf "%.3f" p.Sweep.mean_ipc;
          (if optimal then "*" else "");
        ])
      flagged
  in
  let table =
    Render.table ~header:[ "point"; "complexity"; "mean IPC"; "pareto" ] ~rows
  in
  let optimal = List.length (List.filter snd flagged) in
  Printf.sprintf
    "Design-space frontier: %d points, %d Pareto-optimal (IPC vs complexity)\n%s%d simulated, %d cache hits\n"
    (List.length o.Sweep.results)
    optimal table o.Sweep.stats.Sweep.simulated o.Sweep.stats.Sweep.cache_hits

let json_of_run (r : Sweep.run) =
  Report.json_obj
    [
      ("bench", Report.json_string r.Sweep.bench);
      ("cycles", string_of_int r.Sweep.cycles);
      ("instructions", string_of_int r.Sweep.instructions);
      ("ipc", Report.json_float r.Sweep.ipc);
      ("cached", if r.Sweep.from_cache then "true" else "false");
    ]

let json_of_point ((p : Sweep.point_result), optimal) =
  Report.json_obj
    [
      ("name", Report.json_string p.Sweep.point.Grid.config.Config.name);
      ("label", Report.json_string p.Sweep.point.Grid.label);
      ( "bindings",
        Report.json_obj
          (List.map
             (fun (f, v) -> (f, Report.json_string v))
             p.Sweep.point.Grid.bindings) );
      ("digest", Report.json_string p.Sweep.digest);
      ("complexity", Report.json_float p.Sweep.complexity);
      ("mean_ipc", Report.json_float p.Sweep.mean_ipc);
      ("pareto", if optimal then "true" else "false");
      ("runs", Report.json_list json_of_run p.Sweep.runs);
    ]

let to_json ~(preset : Config.t) ~mode ~axes ~seed ~scale (o : Sweep.outcome) =
  Report.json_obj
    [
      ("schema", Report.json_string schema);
      ("preset", Report.json_string preset.Config.name);
      ("preset_digest", Report.json_string (Config.digest preset));
      ("mode", Report.json_string (Grid.mode_to_string mode));
      ( "axes",
        Report.json_list
          (fun (a : Axis.t) ->
            Report.json_obj
              [
                ("field", Report.json_string a.Axis.field);
                ("values", Report.json_list Report.json_string a.Axis.values);
              ])
          axes );
      ("seed", string_of_int seed);
      ("scale", string_of_int scale);
      ( "stats",
        Report.json_obj
          [
            ("simulated", string_of_int o.Sweep.stats.Sweep.simulated);
            ("cache_hits", string_of_int o.Sweep.stats.Sweep.cache_hits);
          ] );
      ("points", Report.json_list json_of_point (pareto o.Sweep.results));
    ]
  ^ "\n"
