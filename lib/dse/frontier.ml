module Config = Braid_uarch.Config
module Report = Braid_sim.Report

let schema = "braidsim-sweep/1"

(* Pareto dominance over (maximise mean IPC, minimise complexity). *)
let pareto (results : Sweep.point_result list) =
  List.map
    (fun (p : Sweep.point_result) ->
      let dominated =
        List.exists
          (fun (q : Sweep.point_result) ->
            q.Sweep.mean_ipc >= p.Sweep.mean_ipc
            && q.Sweep.complexity <= p.Sweep.complexity
            && (q.Sweep.mean_ipc > p.Sweep.mean_ipc
               || q.Sweep.complexity < p.Sweep.complexity))
          results
      in
      (p, not dominated))
    results

let render (o : Sweep.outcome) =
  let flagged = pareto o.Sweep.results in
  let rows =
    List.map
      (fun ((p : Sweep.point_result), optimal) ->
        [
          p.Sweep.point.Grid.label;
          Printf.sprintf "%.0f" p.Sweep.complexity;
          Printf.sprintf "%.3f" p.Sweep.mean_ipc;
          (if optimal then "*" else "");
        ])
      flagged
  in
  let table =
    Render.table ~header:[ "point"; "complexity"; "mean IPC"; "pareto" ] ~rows
  in
  let optimal = List.length (List.filter snd flagged) in
  Printf.sprintf
    "Design-space frontier: %d points, %d Pareto-optimal (IPC vs complexity)\n%s%d simulated, %d cache hits\n"
    (List.length o.Sweep.results)
    optimal table o.Sweep.stats.Sweep.simulated o.Sweep.stats.Sweep.cache_hits

let json_of_run (r : Sweep.run) =
  Json.obj_lit
    ([
       ("bench", Json.escape_string r.Sweep.bench);
       ("cycles", string_of_int r.Sweep.cycles);
       ("instructions", string_of_int r.Sweep.instructions);
       ("ipc", Json.float_lit r.Sweep.ipc);
       ("cached", if r.Sweep.from_cache then "true" else "false");
     ]
    (* CMP points append their per-core and coherence detail; solo runs
       keep the exact pre-CMP document shape *)
    @
    match r.Sweep.cmp with
    | None -> []
    | Some x ->
        [
          ( "per_core",
            Json.list_lit
              (fun (c, i) ->
                Json.obj_lit
                  [
                    ("cycles", string_of_int c);
                    ("instructions", string_of_int i);
                    ( "ipc",
                      Json.float_lit
                        (float_of_int i /. float_of_int (max 1 c)) );
                  ])
              x.Cache.per_core );
          ("solo_cycles", Json.list_lit string_of_int x.Cache.solo);
          ( "coherence",
            Json.obj_lit
              [
                ("invalidations", string_of_int x.Cache.invalidations);
                ("downgrades", string_of_int x.Cache.downgrades);
                ("writebacks", string_of_int x.Cache.writebacks);
                ("remote_hits", string_of_int x.Cache.remote_hits);
              ] );
          ("l2_hits", string_of_int x.Cache.l2_hits);
          ("l2_misses", string_of_int x.Cache.l2_misses);
        ])

let json_of_point ((p : Sweep.point_result), optimal) =
  Json.obj_lit
    [
      ("name", Json.escape_string p.Sweep.point.Grid.config.Config.name);
      ("label", Json.escape_string p.Sweep.point.Grid.label);
      ( "bindings",
        Json.obj_lit
          (List.map
             (fun (f, v) -> (f, Json.escape_string v))
             p.Sweep.point.Grid.bindings) );
      ("digest", Json.escape_string p.Sweep.digest);
      ("complexity", Json.float_lit p.Sweep.complexity);
      ("mean_ipc", Json.float_lit p.Sweep.mean_ipc);
      ("pareto", if optimal then "true" else "false");
      ("runs", Json.list_lit json_of_run p.Sweep.runs);
    ]

let to_json ~(preset : Config.t) ~mode ~axes ~seed ~scale (o : Sweep.outcome) =
  Json.obj_lit
    [
      ("schema", Json.escape_string schema);
      ("preset", Json.escape_string preset.Config.name);
      ("preset_digest", Json.escape_string (Config.digest preset));
      ("mode", Json.escape_string (Grid.mode_to_string mode));
      ( "axes",
        Json.list_lit
          (fun (a : Axis.t) ->
            Json.obj_lit
              [
                ("field", Json.escape_string a.Axis.field);
                ("values", Json.list_lit Json.escape_string a.Axis.values);
              ])
          axes );
      ("seed", string_of_int seed);
      ("scale", string_of_int scale);
      ( "stats",
        Json.obj_lit
          [
            ("simulated", string_of_int o.Sweep.stats.Sweep.simulated);
            ("cache_hits", string_of_int o.Sweep.stats.Sweep.cache_hits);
          ] );
      ("points", Json.list_lit json_of_point (pareto o.Sweep.results));
    ]
  ^ "\n"
