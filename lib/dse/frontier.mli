(** The complexity-effectiveness frontier: sweep results joined against
    the {!Braid_uarch.Complexity} static cost model — the paper's central
    claim (braid hardware sits between in-order cost and out-of-order
    performance) made explorable. *)

val pareto : Sweep.point_result list -> (Sweep.point_result * bool) list
(** Flags each point Pareto-optimal over (maximise mean IPC, minimise
    complexity index), input order preserved. *)

val render : Sweep.outcome -> string
(** Text frontier table (point, complexity, mean IPC, [*] for
    Pareto-optimal) plus the simulated / cache-hit totals. *)

val to_json :
  preset:Braid_uarch.Config.t ->
  mode:Grid.mode ->
  axes:Axis.t list ->
  seed:int ->
  scale:int ->
  Sweep.outcome ->
  string
(** The ["braidsim-sweep/1"] document: sweep identity (preset + digest,
    mode, axes, seed, scale), stats, and per-point results with
    per-benchmark cycles/instructions/IPC and cache provenance. *)
