module Config = Braid_uarch.Config

type mode = Cartesian | One_at_a_time

let mode_to_string = function
  | Cartesian -> "cartesian"
  | One_at_a_time -> "one-at-a-time"

let mode_of_string = function
  | "cartesian" -> Ok Cartesian
  | "one-at-a-time" -> Ok One_at_a_time
  | s -> Error (Printf.sprintf "unknown sweep mode %S (cartesian, one-at-a-time)" s)

type point = {
  label : string;
  bindings : (string * string) list;
  config : Config.t;
  cores : int;
}

let max_points = 100_000

let label_of = function
  | [] -> "base"
  | bindings ->
      String.concat ","
        (List.map (fun (f, v) -> Printf.sprintf "%s=%s" f v) bindings)

(* Override then validate: a point that parses but describes a nonsense
   machine (zero clusters, window wider than its queue, ...) fails the
   whole expansion before any simulation is scheduled. The "cores"
   pseudo-axis never reaches Config.override — it rides on the point. *)
let point_of ~(base : Config.t) bindings =
  let label = label_of bindings in
  let core_bindings, overrides =
    List.partition (fun (f, _) -> f = "cores") bindings
  in
  let cores =
    match core_bindings with
    | [] -> Ok 1
    | [ (_, v) ] -> (
        match int_of_string_opt v with
        | Some n when n >= 1 && n <= 64 -> Ok n
        | _ ->
            Error
              (Printf.sprintf
                 "point %s: cores must be an integer in [1, 64] (got %S)" label
                 v))
    | _ :: _ :: _ -> assert false (* duplicate fields rejected by expand *)
  in
  let name =
    match bindings with
    | [] -> base.Config.name
    | _ -> Printf.sprintf "%s+%s" base.Config.name label
  in
  match cores with
  | Error msg -> Error msg
  | Ok cores -> (
      match Config.override base overrides with
      | Error msg -> Error (Printf.sprintf "point %s: %s" label msg)
      | Ok c -> (
          match Config.validate { c with Config.name } with
          | Error msg ->
              Error (Printf.sprintf "point %s: invalid config: %s" label msg)
          | Ok config -> Ok { label; bindings; config; cores }))

let cartesian axes =
  List.fold_left
    (fun acc (a : Axis.t) ->
      List.concat_map
        (fun bindings ->
          List.map (fun v -> bindings @ [ (a.Axis.field, v) ]) a.Axis.values)
        acc)
    [ [] ] axes

let one_at_a_time axes =
  [] :: List.concat_map
          (fun (a : Axis.t) ->
            List.map (fun v -> [ (a.Axis.field, v) ]) a.Axis.values)
          axes

let expand ~base ~mode axes =
  let fields = List.map (fun (a : Axis.t) -> a.Axis.field) axes in
  if List.length (List.sort_uniq String.compare fields) <> List.length fields
  then Error "duplicate axis field"
  else
    let size =
      match mode with
      | Cartesian ->
          List.fold_left
            (fun n (a : Axis.t) -> n * List.length a.Axis.values)
            1 axes
      | One_at_a_time ->
          1 + List.fold_left (fun n (a : Axis.t) -> n + List.length a.Axis.values) 0 axes
    in
    if size > max_points then
      Error
        (Printf.sprintf "grid of %d points exceeds the %d-point limit" size
           max_points)
    else
      let binding_sets =
        match mode with
        | Cartesian -> cartesian axes
        | One_at_a_time -> one_at_a_time axes
      in
      List.fold_left
        (fun acc bindings ->
          Result.bind acc (fun points ->
              Result.map (fun p -> p :: points) (point_of ~base bindings)))
        (Ok []) binding_sets
      |> Result.map List.rev
