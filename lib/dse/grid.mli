(** Expansion of a preset plus axes into a grid of named, validated
    configuration points. *)

type mode =
  | Cartesian  (** every combination of axis values *)
  | One_at_a_time
      (** the base point plus each single-axis deviation — the shape of
          the paper's Figs 5-12 sensitivity studies *)

val mode_to_string : mode -> string

val mode_of_string : string -> (mode, string) result
(** Inverse of {!mode_to_string} — the wire form of the serve API. *)

type point = {
  label : string;  (** ["ext_regs=4,sched_window=2"], or ["base"] *)
  bindings : (string * string) list;  (** the applied overrides, axis order *)
  config : Braid_uarch.Config.t;
      (** base overridden by [bindings], renamed ["<base>+<label>"] so the
          simulation memoiser distinguishes points *)
  cores : int;
      (** the ["cores"] pseudo-axis value (1 when absent): > 1 makes this
          a rate-mode CMP point — [cores] copies of [config] over a shared
          coherent L2 ({!Braid_cmp}). Bounded to [1, 64]. *)
}

val expand :
  base:Braid_uarch.Config.t ->
  mode:mode ->
  Axis.t list ->
  (point list, string) result
(** Expands (first axis outermost), applying {!Braid_uarch.Config.override}
    and {!Braid_uarch.Config.validate} to every point: any invalid point
    fails the whole grid before a single simulation is scheduled. Also
    rejects duplicate axis fields and grids beyond 100k points. With no
    axes the grid is the validated base preset alone. *)
