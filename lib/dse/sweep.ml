module Config = Braid_uarch.Config
module Spec = Braid_workload.Spec
module Suite = Braid_sim.Suite
module Runner = Braid_sim.Runner
module Obs = Braid_obs

type run = {
  bench : string;
  cycles : int;
  instructions : int;
  ipc : float;
  from_cache : bool;
  cmp : Cache.cmp_extra option;
}

type point_result = {
  point : Grid.point;
  digest : string;
  complexity : float;
  mean_ipc : float;
  runs : run list;
}

type stats = { simulated : int; cache_hits : int }

type outcome = { results : point_result list; stats : stats }

(* The braid compiler cannot target registers the machine does not have:
   sweeping ext_regs on a braid core recompiles with the matching external
   budget, exactly as the paper's Fig 6 study does. Conventional binaries
   are always allocated against the full architectural budget. *)
let ext_usable_of (cfg : Config.t) =
  match cfg.Config.kind with
  | Config.Braid_exec | Config.Cgooo ->
      min cfg.Config.ext_regs Braid_core.Extalloc.usable_per_class
  | Config.In_order | Config.Dep_steer | Config.Ooo ->
      Braid_core.Extalloc.usable_per_class

let binary_of (cfg : Config.t) =
  match cfg.Config.kind with
  | Config.Braid_exec | Config.Cgooo -> "braid"
  | Config.In_order | Config.Dep_steer | Config.Ooo -> "conv"

let key_of ~ctx ~seed ~scale ~cores (cfg : Config.t) (pr : Spec.profile) =
  {
    Cache.config_digest = Config.digest cfg;
    bench = pr.Spec.name;
    seed;
    scale;
    binary = binary_of cfg;
    ext_usable = ext_usable_of cfg;
    (* a sampled sweep answers a different question than a full one:
       keep their cache entries apart *)
    sampling =
      (match Suite.sampling ctx with
      | None -> ""
      | Some sp -> Braid_sample.Spec.digest sp);
    cores;
  }

let simulate ~ctx ~seed ~scale (cfg : Config.t) (pr : Spec.profile) =
  let p = Suite.prepare ctx ~seed ~scale ~ext_usable:(ext_usable_of cfg) pr in
  let r =
    match cfg.Config.kind with
    | Config.Braid_exec | Config.Cgooo -> Suite.run_braid ctx p cfg
    | Config.In_order | Config.Dep_steer | Config.Ooo -> Suite.run_conv ctx p cfg
  in
  {
    Cache.cycles = r.Braid_uarch.Pipeline.cycles;
    instructions = r.Braid_uarch.Pipeline.instructions;
    cmp = None;
  }

(* A cores > 1 point is a rate-mode CMP run: [cores] copies of the
   benchmark over a shared coherent L2 (capacity scaled with the core
   count, Config.Cmp.default_l2). Always full simulation — sampling does
   not compose with a shared hierarchy. *)
let simulate_cmp ~ctx ~seed ~scale ~cores (cfg : Config.t) (pr : Spec.profile) =
  if Suite.sampling ctx <> None then
    invalid_arg "Sweep: sampled simulation does not support the cores axis";
  let cmp =
    Braid_uarch.Config.Cmp.make ~cores ~workloads:[ pr.Spec.name ] ()
  in
  let r =
    Braid_cmp.Cmp_bench.run ~ext_usable:(ext_usable_of cfg) ctx ~seed ~scale
      ~cfg cmp
  in
  let open Braid_cmp in
  let coh = r.Cmp.coherence in
  {
    Cache.cycles = r.Cmp.cycles;
    instructions = r.Cmp.instructions;
    cmp =
      Some
        {
          Cache.per_core =
            List.map
              (fun (c : Cmp.core_result) ->
                ( c.Cmp.result.Braid_uarch.Core.cycles,
                  c.Cmp.result.Braid_uarch.Core.instructions ))
              r.Cmp.cores;
          solo = List.map (fun (c : Cmp.core_result) -> c.Cmp.solo_cycles) r.Cmp.cores;
          invalidations = coh.Braid_uarch.Mem_hier.invalidations;
          downgrades = coh.Braid_uarch.Mem_hier.downgrades;
          writebacks = coh.Braid_uarch.Mem_hier.writebacks;
          remote_hits = coh.Braid_uarch.Mem_hier.remote_hits;
          l2_hits = r.Cmp.l2_hits;
          l2_misses = r.Cmp.l2_misses;
        };
  }

let job_count ~benches points = List.length points * List.length benches

let run ?(obs = Obs.Sink.disabled) ?cache ?on_done ~ctx ~jobs ~seed ~scale
    ~benches points =
  let work =
    Array.of_list
      (List.concat_map
         (fun (pt : Grid.point) ->
           List.map
             (fun (pr : Spec.profile) ->
               let label =
                 Printf.sprintf "%s/%s" pt.Grid.config.Config.name pr.Spec.name
               in
               ( label,
                 fun () ->
                   let cores = pt.Grid.cores in
                   let key = key_of ~ctx ~seed ~scale ~cores pt.Grid.config pr in
                   match Option.bind cache (fun c -> Cache.find c key) with
                   | Some e -> (e, true)
                   | None ->
                       let e =
                         if cores = 1 then
                           simulate ~ctx ~seed ~scale pt.Grid.config pr
                         else
                           simulate_cmp ~ctx ~seed ~scale ~cores pt.Grid.config
                             pr
                       in
                       Option.iter (fun c -> Cache.store c key e) cache;
                       (e, false) ))
             benches)
         points)
  in
  let out = Runner.map_jobs ?on_done ~jobs work in
  let nbench = List.length benches in
  let results =
    List.mapi
      (fun pi (pt : Grid.point) ->
        let runs =
          List.mapi
            (fun bi (pr : Spec.profile) ->
              let (e : Cache.entry), from_cache = fst out.((pi * nbench) + bi) in
              {
                bench = pr.Spec.name;
                cycles = e.Cache.cycles;
                instructions = e.Cache.instructions;
                (* recomputed from the integers so a cached and a fresh
                   result are bit-identical. Solo: same formula as
                   Pipeline. CMP: the rate metric — each core's IPC at
                   its own finish cycle, summed. *)
                ipc =
                  (match e.Cache.cmp with
                  | None ->
                      float_of_int e.Cache.instructions
                      /. float_of_int (max 1 e.Cache.cycles)
                  | Some x ->
                      List.fold_left
                        (fun acc (c, i) ->
                          acc +. (float_of_int i /. float_of_int (max 1 c)))
                        0.0 x.Cache.per_core);
                from_cache;
                cmp = e.Cache.cmp;
              })
            benches
        in
        let mean_ipc =
          List.fold_left (fun acc r -> acc +. r.ipc) 0.0 runs
          /. float_of_int (max 1 (List.length runs))
        in
        {
          point = pt;
          digest = Config.digest pt.Grid.config;
          (* a CMP point spends its per-core complexity once per core, so
             the Pareto trade-off is throughput vs total silicon *)
          complexity =
            (Braid_uarch.Complexity.of_config pt.Grid.config)
              .Braid_uarch.Complexity.total
            *. float_of_int pt.Grid.cores;
          mean_ipc;
          runs;
        })
      points
  in
  let count p =
    List.fold_left
      (fun acc pr ->
        acc + List.length (List.filter (fun r -> p r) pr.runs))
      0 results
  in
  let stats =
    { simulated = count (fun r -> not r.from_cache); cache_hits = count (fun r -> r.from_cache) }
  in
  (* fold the totals into the observability registry after the parallel
     section: registries are single-owner, so domains must not touch them *)
  Obs.Counters.add (Obs.Sink.counter obs "dse.simulations") stats.simulated;
  Obs.Counters.add (Obs.Sink.counter obs "dse.cache_hits") stats.cache_hits;
  { results; stats }
