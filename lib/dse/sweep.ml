module Config = Braid_uarch.Config
module Spec = Braid_workload.Spec
module Suite = Braid_sim.Suite
module Runner = Braid_sim.Runner
module Obs = Braid_obs

type run = {
  bench : string;
  cycles : int;
  instructions : int;
  ipc : float;
  from_cache : bool;
}

type point_result = {
  point : Grid.point;
  digest : string;
  complexity : float;
  mean_ipc : float;
  runs : run list;
}

type stats = { simulated : int; cache_hits : int }

type outcome = { results : point_result list; stats : stats }

(* The braid compiler cannot target registers the machine does not have:
   sweeping ext_regs on a braid core recompiles with the matching external
   budget, exactly as the paper's Fig 6 study does. Conventional binaries
   are always allocated against the full architectural budget. *)
let ext_usable_of (cfg : Config.t) =
  match cfg.Config.kind with
  | Config.Braid_exec ->
      min cfg.Config.ext_regs Braid_core.Extalloc.usable_per_class
  | Config.In_order | Config.Dep_steer | Config.Ooo ->
      Braid_core.Extalloc.usable_per_class

let binary_of (cfg : Config.t) =
  match cfg.Config.kind with
  | Config.Braid_exec -> "braid"
  | Config.In_order | Config.Dep_steer | Config.Ooo -> "conv"

let key_of ~ctx ~seed ~scale (cfg : Config.t) (pr : Spec.profile) =
  {
    Cache.config_digest = Config.digest cfg;
    bench = pr.Spec.name;
    seed;
    scale;
    binary = binary_of cfg;
    ext_usable = ext_usable_of cfg;
    (* a sampled sweep answers a different question than a full one:
       keep their cache entries apart *)
    sampling =
      (match Suite.sampling ctx with
      | None -> ""
      | Some sp -> Braid_sample.Spec.digest sp);
  }

let simulate ~ctx ~seed ~scale (cfg : Config.t) (pr : Spec.profile) =
  let p = Suite.prepare ctx ~seed ~scale ~ext_usable:(ext_usable_of cfg) pr in
  let r =
    match cfg.Config.kind with
    | Config.Braid_exec -> Suite.run_braid ctx p cfg
    | Config.In_order | Config.Dep_steer | Config.Ooo -> Suite.run_conv ctx p cfg
  in
  {
    Cache.cycles = r.Braid_uarch.Pipeline.cycles;
    instructions = r.Braid_uarch.Pipeline.instructions;
  }

let job_count ~benches points = List.length points * List.length benches

let run ?(obs = Obs.Sink.disabled) ?cache ?on_done ~ctx ~jobs ~seed ~scale
    ~benches points =
  let work =
    Array.of_list
      (List.concat_map
         (fun (pt : Grid.point) ->
           List.map
             (fun (pr : Spec.profile) ->
               let label =
                 Printf.sprintf "%s/%s" pt.Grid.config.Config.name pr.Spec.name
               in
               ( label,
                 fun () ->
                   let key = key_of ~ctx ~seed ~scale pt.Grid.config pr in
                   match Option.bind cache (fun c -> Cache.find c key) with
                   | Some e -> (e, true)
                   | None ->
                       let e = simulate ~ctx ~seed ~scale pt.Grid.config pr in
                       Option.iter (fun c -> Cache.store c key e) cache;
                       (e, false) ))
             benches)
         points)
  in
  let out = Runner.map_jobs ?on_done ~jobs work in
  let nbench = List.length benches in
  let results =
    List.mapi
      (fun pi (pt : Grid.point) ->
        let runs =
          List.mapi
            (fun bi (pr : Spec.profile) ->
              let (e : Cache.entry), from_cache = fst out.((pi * nbench) + bi) in
              {
                bench = pr.Spec.name;
                cycles = e.Cache.cycles;
                instructions = e.Cache.instructions;
                (* recomputed from the integers so a cached and a fresh
                   result are bit-identical (same formula as Pipeline) *)
                ipc =
                  float_of_int e.Cache.instructions
                  /. float_of_int (max 1 e.Cache.cycles);
                from_cache;
              })
            benches
        in
        let mean_ipc =
          List.fold_left (fun acc r -> acc +. r.ipc) 0.0 runs
          /. float_of_int (max 1 (List.length runs))
        in
        {
          point = pt;
          digest = Config.digest pt.Grid.config;
          complexity = (Braid_uarch.Complexity.of_config pt.Grid.config).Braid_uarch.Complexity.total;
          mean_ipc;
          runs;
        })
      points
  in
  let count p =
    List.fold_left
      (fun acc pr ->
        acc + List.length (List.filter (fun r -> p r) pr.runs))
      0 results
  in
  let stats =
    { simulated = count (fun r -> not r.from_cache); cache_hits = count (fun r -> r.from_cache) }
  in
  (* fold the totals into the observability registry after the parallel
     section: registries are single-owner, so domains must not touch them *)
  Obs.Counters.add (Obs.Sink.counter obs "dse.simulations") stats.simulated;
  Obs.Counters.add (Obs.Sink.counter obs "dse.cache_hits") stats.cache_hits;
  { results; stats }
