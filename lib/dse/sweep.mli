(** Execution of a sweep grid: every (configuration point × benchmark)
    job fans out across the {!Braid_sim.Runner} domain pool, consulting
    (and filling) an optional on-disk {!Cache} so repeated or resumed
    sweeps skip simulation entirely. Results are deterministic and
    independent of [jobs]. *)

type run = {
  bench : string;
  cycles : int;
  instructions : int;
  ipc : float;
      (** recomputed from cached integers, so cached and fresh results
          are bit-identical. Solo: instructions / cycles. CMP points
          (cores pseudo-axis > 1): the rate-mode aggregate — each core's
          IPC at its own finish cycle, summed. *)
  from_cache : bool;
  cmp : Cache.cmp_extra option;
      (** per-core cycles/instructions, solo baselines and coherence
          traffic of a CMP run; [None] on solo points *)
}

type point_result = {
  point : Grid.point;
  digest : string;  (** {!Braid_uarch.Config.digest} of the point *)
  complexity : float;
      (** {!Braid_uarch.Complexity} total static index of the point,
          multiplied by its core count: the Pareto trade-off is
          throughput vs total silicon *)
  mean_ipc : float;  (** plain mean over the swept benchmarks *)
  runs : run list;  (** one per benchmark, in the order given *)
}

type stats = { simulated : int; cache_hits : int }

type outcome = { results : point_result list; stats : stats }

val ext_usable_of : Braid_uarch.Config.t -> int
(** Compile-time external register budget a sweep job compiles with:
    [min ext_regs usable_per_class] on a braid core (the hardware cannot
    hold more — Fig 6's methodology), the full budget otherwise. *)

val job_count : benches:'a list -> 'b list -> int
(** Number of (point × benchmark) jobs {!run} will fan out — the progress
    total for an [on_done] stream. *)

val run :
  ?obs:Braid_obs.Sink.t ->
  ?cache:Cache.t ->
  ?on_done:(int -> string -> unit) ->
  ctx:Braid_sim.Suite.ctx ->
  jobs:int ->
  seed:int ->
  scale:int ->
  benches:Braid_workload.Spec.profile list ->
  Grid.point list ->
  outcome
(** With a live [obs] sink the totals land in the ["dse.simulations"] and
    ["dse.cache_hits"] counters — the hook the cache tests (and CI) use to
    prove a warm re-run performs zero pipeline runs. [on_done] streams
    per-job completion exactly as {!Braid_sim.Runner.try_map_jobs} does
    (worker-domain context: the callback must be domain-safe). *)
