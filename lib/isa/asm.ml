exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* --- lexical helpers ------------------------------------------------- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let trim = String.trim

let split_operands s =
  String.split_on_char ',' s |> List.map trim |> List.filter (fun x -> x <> "")

(* "name rest" -> (name, rest) *)
let split_mnemonic s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, trim (String.sub s (i + 1) (String.length s - i - 1)))

let parse_reg line s =
  let num prefix =
    let p = String.length prefix in
    try int_of_string (String.sub s p (String.length s - p))
    with _ -> fail line (Printf.sprintf "bad register %S" s)
  in
  if s = "zero" then Reg.zero
  else if String.length s >= 2 && s.[0] = 'v' && s.[1] = 'f' then
    Reg.virt Reg.Cfp (num "vf")
  else
    match s.[0] with
    | 'r' -> Reg.ext Reg.Cint (num "r")
    | 'f' -> Reg.ext Reg.Cfp (num "f")
    | 't' -> Reg.intern (num "t")
    | 'v' -> Reg.virt Reg.Cint (num "v")
    | _ -> fail line (Printf.sprintf "bad register %S" s)

let parse_imm line s =
  if String.length s > 0 && s.[0] = '#' then
    try Int64.of_string (String.sub s 1 (String.length s - 1))
    with _ -> fail line (Printf.sprintf "bad immediate %S" s)
  else fail line (Printf.sprintf "expected immediate, got %S" s)

let parse_label line s =
  if String.length s > 1 && s.[0] = 'B' then
    try int_of_string (String.sub s 1 (String.length s - 1))
    with _ -> fail line (Printf.sprintf "bad block label %S" s)
  else fail line (Printf.sprintf "expected block label, got %S" s)

(* "off(base) [@region]" *)
let parse_mem line s =
  let s, region =
    match String.index_opt s '@' with
    | Some i ->
        let rg =
          try int_of_string (trim (String.sub s (i + 1) (String.length s - i - 1)))
          with _ -> fail line "bad region tag"
        in
        (trim (String.sub s 0 i), rg)
    | None -> (s, Op.region_unknown)
  in
  match (String.index_opt s '(', String.index_opt s ')') with
  | Some l, Some r when l < r ->
      let off =
        try int_of_string (trim (String.sub s 0 l))
        with _ -> fail line "bad memory offset"
      in
      let base = parse_reg line (trim (String.sub s (l + 1) (r - l - 1))) in
      (base, off, region)
  | _ -> fail line (Printf.sprintf "expected off(base), got %S" s)

(* --- mnemonic tables -------------------------------------------------- *)

let ibin_table =
  [ ("addq", Op.Add); ("subq", Op.Sub); ("mulq", Op.Mul);
    ("divq", Op.Div); ("remq", Op.Rem); ("and", Op.And);
    ("bis", Op.Or); ("xor", Op.Xor); ("andnot", Op.Andnot); ("sll", Op.Shl);
    ("srl", Op.Shr); ("cmpeq", Op.Cmpeq); ("cmplt", Op.Cmplt); ("cmple", Op.Cmple) ]

let fbin_table =
  [ ("addt", Op.Fadd); ("subt", Op.Fsub); ("mult", Op.Fmul); ("divt", Op.Fdiv);
    ("cmptlt", Op.Fcmplt) ]

let funary_table = [ ("fneg", Op.Fneg); ("sqrtt", Op.Fsqrt); ("cvtqt", Op.Cvt_if) ]

let cond_table =
  [ ("eq", Op.Eq); ("ne", Op.Ne); ("lt", Op.Lt); ("ge", Op.Ge); ("le", Op.Le);
    ("gt", Op.Gt) ]

let prefixed table prefix name =
  if String.length name > String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
  then
    List.assoc_opt (String.sub name (String.length prefix)
                      (String.length name - String.length prefix))
      table
  else None

(* --- instruction parsing ---------------------------------------------- *)

let parse_instr_line line s =
  let s = trim (strip_comment s) in
  (* braid start marker *)
  let start, s =
    if String.length s > 2 && String.sub s 0 2 = "S " then (true, trim (String.sub s 2 (String.length s - 2)))
    else (false, s)
  in
  (* [also rN] suffix *)
  let s, ext_dup =
    match String.index_opt s '[' with
    | Some i when String.length s > i + 5 && String.sub s i 6 = "[also " ->
        let close =
          match String.index_from_opt s i ']' with
          | Some c -> c
          | None -> fail line "unterminated [also ...]"
        in
        let reg = parse_reg line (trim (String.sub s (i + 6) (close - i - 6))) in
        (trim (String.sub s 0 i), Some reg)
    | _ -> (s, None)
  in
  let mnemonic, rest = split_mnemonic s in
  let ops = split_operands rest in
  let op =
    match (mnemonic, ops) with
    | "nop", [] -> Op.Nop
    | "halt", [] -> Op.Halt
    | "br", [ l ] -> Op.Jump (parse_label line l)
    | "lda", [ v; d ] -> Op.Movi (parse_reg line d, parse_imm line v)
    | ("ldq" | "ldt"), [ d; mem ] ->
        let cls = if mnemonic = "ldq" then Reg.Cint else Reg.Cfp in
        let d = parse_reg line d in
        if d.Reg.space = Reg.Ext && d.Reg.cls <> cls then
          fail line "load class does not match destination register class";
        let base, off, rg = parse_mem line mem in
        Op.Load (d, base, off, rg)
    | ("stq" | "stt"), [ src; mem ] ->
        let base, off, rg = parse_mem line mem in
        Op.Store (parse_reg line src, base, off, rg)
    | _, _ -> (
        let reg = parse_reg line in
        match (prefixed cond_table "cmov" mnemonic, ops) with
        | Some c, [ test; v; d ] -> Op.Cmov (c, reg d, reg test, reg v)
        | Some _, _ -> fail line "cmov takes test, value, dst"
        | None, _ -> (
            match (prefixed cond_table "b" mnemonic, ops) with
            | Some c, [ r; l ] -> Op.Branch (c, reg r, parse_label line l)
            | Some _, _ -> fail line "branch takes reg, label"
            | None, _ -> (
                (* immediate forms end in "i" *)
                let imm_form =
                  String.length mnemonic > 1
                  && mnemonic.[String.length mnemonic - 1] = 'i'
                  && List.mem_assoc
                       (String.sub mnemonic 0 (String.length mnemonic - 1))
                       ibin_table
                in
                if imm_form then
                  let o =
                    List.assoc (String.sub mnemonic 0 (String.length mnemonic - 1)) ibin_table
                  in
                  match ops with
                  | [ a; i; d ] ->
                      Op.Ibini (o, reg d, reg a, Int64.to_int (parse_imm line i))
                  | _ -> fail line "immediate op takes src, #imm, dst"
                else
                  match (List.assoc_opt mnemonic ibin_table, ops) with
                  | Some o, [ a; b; d ] -> Op.Ibin (o, reg d, reg a, reg b)
                  | Some _, _ -> fail line "binary op takes src1, src2, dst"
                  | None, _ -> (
                      match (List.assoc_opt mnemonic fbin_table, ops) with
                      | Some o, [ a; b; d ] -> Op.Fbin (o, reg d, reg a, reg b)
                      | Some _, _ -> fail line "fp binary op takes src1, src2, dst"
                      | None, _ -> (
                          match (List.assoc_opt mnemonic funary_table, ops) with
                          | Some o, [ a; d ] -> Op.Funary (o, reg d, reg a)
                          | Some _, _ -> fail line "fp unary op takes src, dst"
                          | None, _ ->
                              fail line (Printf.sprintf "unknown mnemonic %S" mnemonic))))))
  in
  let ins = Instr.make op in
  let ins = if start then Instr.with_braid ins ~id:ins.Instr.annot.Instr.braid_id ~start:true else ins in
  match ext_dup with Some r -> Instr.with_ext_dup ins r | None -> ins

let parse_instr s = parse_instr_line 0 s

(* --- program parsing --------------------------------------------------- *)

type pending_block = {
  id : int;
  mutable instrs : Instr.t list;  (* reversed *)
  mutable fallthrough : int option;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let blocks : pending_block list ref = ref [] in
  let current : pending_block option ref = ref None in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let s = trim (strip_comment raw) in
      if s = "" then ()
      else if String.length s > 1 && s.[0] = 'B' && s.[String.length s - 1] = ':' then begin
        let id =
          try int_of_string (String.sub s 1 (String.length s - 2))
          with _ -> fail line (Printf.sprintf "bad block header %S" s)
        in
        let b = { id; instrs = []; fallthrough = None } in
        blocks := b :: !blocks;
        current := Some b
      end
      else
        match !current with
        | None -> fail line "instruction before any block header"
        | Some b ->
            let mnemonic, rest = split_mnemonic s in
            if mnemonic = "fallthrough" then
              b.fallthrough <- Some (parse_label line (trim rest))
            else b.instrs <- parse_instr_line line s :: b.instrs)
    lines;
  let blocks = List.rev !blocks in
  if blocks = [] then fail 0 "no blocks";
  let n = List.length blocks in
  let program_blocks =
    List.mapi
      (fun idx (b : pending_block) ->
        if b.id <> idx then
          fail 0 (Printf.sprintf "block B%d out of order (expected B%d)" b.id idx);
        let instrs = Array.of_list (List.rev b.instrs) in
        let fallthrough =
          match b.fallthrough with
          | Some ft -> Some ft
          | None ->
              (* implicit fall-through to the next block when one is
                 needed and exists *)
              let last = Array.length instrs - 1 in
              let needs =
                last < 0
                ||
                match instrs.(last).Instr.op with
                | Op.Jump _ | Op.Halt -> false
                | _ -> true
              in
              if needs && idx + 1 < n then Some (idx + 1) else None
        in
        { Program.id = idx; instrs; fallthrough })
      blocks
  in
  Program.make program_blocks ~entry:0
