let spill_base = 0x2000_0000

type state = {
  ext_int : int64 array;
  ext_fp : int64 array;
  intern : int64 array;
  mutable virt_int : int64 array;  (* grown on demand; unwritten = 0 *)
  mutable virt_fp : int64 array;
  mem : Braid_util.Paged_mem.t;
}

type outcome = {
  trace : Trace.t option;
  stop : Trace.stop_reason;
  dynamic_count : int;
  store_count : int;
  state : state;
}

let create_state () =
  {
    ext_int = Array.make Reg.num_ext_per_class 0L;
    ext_fp = Array.make Reg.num_ext_per_class 0L;
    intern = Array.make Reg.num_internal 0L;
    virt_int = Array.make 256 0L;
    virt_fp = Array.make 256 0L;
    mem = Braid_util.Paged_mem.create ();
  }

let grown a idx =
  let n = Array.length a in
  if idx < n then a
  else begin
    let a' = Array.make (max (2 * n) (idx + 1)) 0L in
    Array.blit a 0 a' 0 n;
    a'
  end

let read_reg st (r : Reg.t) =
  if Reg.is_zero r then 0L
  else
    match (r.space, r.cls) with
    | Reg.Ext, Reg.Cint -> st.ext_int.(r.idx)
    | Reg.Ext, Reg.Cfp -> st.ext_fp.(r.idx)
    | Reg.Intern, _ -> st.intern.(r.idx)
    | Reg.Virt, Reg.Cint ->
        if r.idx < Array.length st.virt_int then st.virt_int.(r.idx) else 0L
    | Reg.Virt, Reg.Cfp ->
        if r.idx < Array.length st.virt_fp then st.virt_fp.(r.idx) else 0L

let write_reg st (r : Reg.t) v =
  if Reg.is_zero r then ()
  else
    match (r.space, r.cls) with
    | Reg.Ext, Reg.Cint -> st.ext_int.(r.idx) <- v
    | Reg.Ext, Reg.Cfp -> st.ext_fp.(r.idx) <- v
    | Reg.Intern, _ -> st.intern.(r.idx) <- v
    | Reg.Virt, Reg.Cint ->
        st.virt_int <- grown st.virt_int r.idx;
        st.virt_int.(r.idx) <- v
    | Reg.Virt, Reg.Cfp ->
        st.virt_fp <- grown st.virt_fp r.idx;
        st.virt_fp.(r.idx) <- v

let read_mem_word st addr = Braid_util.Paged_mem.load st.mem addr

let check_aligned addr =
  if addr land 7 <> 0 then failwith (Printf.sprintf "unaligned access: %#x" addr);
  if addr < 0 then failwith (Printf.sprintf "negative address: %d" addr)

(* Result of executing one operation, before trace bookkeeping. *)
type exec_result = {
  written : (Reg.t * int64) list;
  mem_addr : int;  (* -1 if not a memory op *)
  was_store : bool;
  fault : bool;
  transfer : Op.label option;  (* Some target if a taken branch/jump *)
  halt : bool;
}

let no_effect =
  { written = []; mem_addr = -1; was_store = false; fault = false;
    transfer = None; halt = false }

let exec_op st (ins : Instr.t) : exec_result =
  let r = read_reg st in
  let as_f x = Int64.float_of_bits x in
  let of_f x = Int64.bits_of_float x in
  match ins.Instr.op with
  | Op.Nop -> no_effect
  | Op.Ibin (o, d, a, b) ->
      { no_effect with written = [ (d, Op.eval_ibin o (r a) (r b)) ] }
  | Op.Ibini (o, d, a, i) ->
      { no_effect with written = [ (d, Op.eval_ibin o (r a) (Int64.of_int i)) ] }
  | Op.Movi (d, v) -> { no_effect with written = [ (d, v) ] }
  | Op.Fbin (o, d, a, b) -> (
      match Op.eval_fbin o (as_f (r a)) (as_f (r b)) with
      | Some v -> { no_effect with written = [ (d, of_f v) ] }
      | None -> { no_effect with written = [ (d, 0L) ]; fault = true })
  | Op.Funary (o, d, a) ->
      { no_effect with written = [ (d, Op.eval_funary o (r a)) ] }
  | Op.Cmov (c, d, test, v) ->
      let value = if Op.eval_cond c (r test) then r v else r d in
      { no_effect with written = [ (d, value) ] }
  | Op.Load (d, base, off, _) ->
      let addr = Int64.to_int (r base) + off in
      check_aligned addr;
      { no_effect with written = [ (d, read_mem_word st addr) ]; mem_addr = addr }
  | Op.Store (s, base, off, _) ->
      let addr = Int64.to_int (r base) + off in
      check_aligned addr;
      Braid_util.Paged_mem.store st.mem addr (r s);
      { no_effect with mem_addr = addr; was_store = true }
  | Op.Branch (c, reg, l) ->
      if Op.eval_cond c (r reg) then { no_effect with transfer = Some l }
      else no_effect
  | Op.Jump l -> { no_effect with transfer = Some l }
  | Op.Halt -> { no_effect with halt = true }

(* Destination/value pairs of one executed instruction, with the ext_dup
   duplicate destination (I and E both set) mirrored onto the external
   copy. Shared between [run] and the oracle-facing [exec_instr]. *)
let written_of (ins : Instr.t) (res : exec_result) =
  match ins.Instr.annot.Instr.ext_dup with
  | None -> res.written
  | Some dup -> (
      match res.written with
      | [ (_, v) ] -> res.written @ [ (dup, v) ]
      | _ -> res.written)

let init_state ?(init_mem = []) () =
  let st = create_state () in
  List.iter
    (fun (addr, v) ->
      check_aligned addr;
      Braid_util.Paged_mem.store st.mem addr v)
    init_mem;
  st

let exec_instr st (ins : Instr.t) =
  let res = exec_op st ins in
  List.iter (fun (reg, v) -> write_reg st reg v) (written_of ins res)

(* Dense slot per register for the writer table: externals by [ext_id],
   then internals, then virtuals (two classes interleaved). *)
let num_fixed_slots = Reg.num_ext_ids + Reg.num_internal

let reg_slot (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> Reg.ext_id r
  | Reg.Intern -> Reg.num_ext_ids + r.Reg.idx
  | Reg.Virt ->
      num_fixed_slots + (2 * r.Reg.idx)
      + (match r.Reg.cls with Reg.Cint -> 0 | Reg.Cfp -> 1)

(* One bounded execution episode starting from an arbitrary (block, offset)
   location in an existing state. [run] starts it at the program entry with a
   fresh state; the compiled fast path (module [Compiled] below) uses it to
   trace a window from the middle of a fast-forwarded execution, so sampled
   simulation shares the interpreter's exact semantics and event layout.
   Event uids (and the dependence table) restart at 0 for each episode:
   a mid-run window is a self-contained trace whose dependences on
   pre-window producers are dropped, which is precisely what a timing model
   fed only that window must see. *)
type episode = {
  x_events : Trace.event list;  (* newest first *)
  x_stop : Trace.stop_reason;
  x_steps : int;
  x_stores : int;
  x_next : (int * int) option;  (* resume location; [None] once halted *)
}

let exec_from st program ~max_steps ~trace ~start_block ~start_offset =
  let bases = Program.base_table program in
  let pc_of blk off = 4 * (bases.(blk) + off) in
  (* last writer uid per register slot; -1 = no dynamic writer yet *)
  let last_writer =
    Array.make
      (num_fixed_slots + (2 * (Program.max_virt_index program + 1)))
      (-1)
  in
  let events = ref [] in
  let uid = ref 0 in
  let store_count = ref 0 in
  let stop = ref Trace.Steps_exhausted in
  let block = ref start_block in
  let offset = ref start_offset in
  let running = ref true in
  while !running && !uid < max_steps do
    let b = program.Program.blocks.(!block) in
    if !offset >= Array.length b.Program.instrs then begin
      (* empty tail: unconditional fallthrough *)
      match b.Program.fallthrough with
      | Some ft ->
          block := ft;
          offset := 0
      | None -> failwith "Emulator: fell off a block without fallthrough"
    end
    else begin
      let ins = b.Program.instrs.(!offset) in
      let res = exec_op st ins in
      if res.was_store then incr store_count;
      let written = written_of ins res in
      List.iter (fun (reg, v) -> write_reg st reg v) written;
      (* Determine the next dynamic location. *)
      let next_loc =
        if res.halt then None
        else
          match res.transfer with
          | Some target -> Some (target, 0)
          | None ->
              if !offset + 1 < Array.length b.Program.instrs then
                Some (!block, !offset + 1)
              else (
                match b.Program.fallthrough with
                | Some ft -> Some (ft, 0)
                | None -> failwith "Emulator: missing fallthrough")
      in
      if trace then begin
        let deps =
          List.filter_map
            (fun (reg : Reg.t) ->
              if Reg.is_zero reg then None
              else
                let w = last_writer.(reg_slot reg) in
                if w < 0 then None
                else Some (w, reg.Reg.space = Reg.Intern))
            (Instr.uses ins)
        in
        let deps = List.sort_uniq compare deps in
        let is_cond_branch =
          match ins.Instr.op with Op.Branch _ -> true | _ -> false
        in
        let is_jump = match ins.Instr.op with Op.Jump _ -> true | _ -> false in
        let taken =
          if is_cond_branch then res.transfer <> None else is_jump
        in
        let pc = pc_of !block !offset in
        let next_pc =
          match next_loc with
          | Some (nb, noff) -> pc_of nb noff
          | None -> pc
        in
        let ev =
          {
            Trace.uid = !uid;
            pc;
            block_id = !block;
            offset = !offset;
            instr = ins;
            deps = Array.of_list deps;
            addr = res.mem_addr;
            is_load = Op.is_load ins.Instr.op;
            is_store = res.was_store;
            is_cond_branch;
            is_jump;
            taken;
            next_pc;
            latency = Op.latency ins.Instr.op;
            writes_ext = Instr.writes_external ins;
            writes_int = Instr.writes_internal ins;
            ext_src_reads = Instr.reads_external_count ins;
            int_src_reads =
              List.length
                (List.filter
                   (fun (r : Reg.t) -> r.Reg.space = Reg.Intern)
                   (Instr.uses ins));
            braid_id = ins.Instr.annot.Instr.braid_id;
            braid_start = ins.Instr.annot.Instr.braid_start;
            faulting = res.fault;
          }
        in
        events := ev :: !events;
        List.iter
          (fun ((reg : Reg.t), _) ->
            if not (Reg.is_zero reg) then last_writer.(reg_slot reg) <- !uid)
          written
      end;
      incr uid;
      match next_loc with
      | None ->
          stop := Trace.Halted;
          running := false
      | Some (nb, noff) ->
          block := nb;
          offset := noff
    end
  done;
  {
    x_events = !events;
    x_stop = !stop;
    x_steps = !uid;
    x_stores = !store_count;
    x_next = (if !running then Some (!block, !offset) else None);
  }

let run ?(max_steps = 1_000_000) ?(trace = true) ?(init_mem = []) program =
  let st = init_state ~init_mem () in
  let x =
    exec_from st program ~max_steps ~trace ~start_block:program.Program.entry
      ~start_offset:0
  in
  let trace_v =
    if trace then
      Some
        {
          Trace.events = Array.of_list (List.rev x.x_events);
          stop = x.x_stop;
          program;
          warm_lines = None;
          tables = None;
        }
    else None
  in
  {
    trace = trace_v;
    stop = x.x_stop;
    dynamic_count = x.x_steps;
    store_count = x.x_stores;
    state = st;
  }

let read_ext st (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> read_reg st r
  | Reg.Virt | Reg.Intern -> invalid_arg "Emulator.read_ext: not external"

let read_mem st addr = read_mem_word st addr

let memory_image st =
  Braid_util.Paged_mem.fold_nonzero
    (fun acc addr v -> if addr < spill_base then (addr, v) :: acc else acc)
    [] st.mem
  |> List.sort compare

let memory_fingerprint st =
  List.fold_left
    (fun acc (addr, v) ->
      let acc = Int64.mul (Int64.logxor acc (Int64.of_int addr)) 0x100000001B3L in
      Int64.mul (Int64.logxor acc v) 0x100000001B3L)
    0xCBF29CE484222325L (memory_image st)

(* --- compiled fast path ------------------------------------------------- *)

module Compiled = struct
  (* All registers live in one unboxed int64 bigarray indexed by [reg_slot]
     (the zero register's slot, 31, is never written, so reads of it stay
     0); slot [nslots] is a scratch sink for writes whose destination is the
     zero register, and the slots above it hold the pre-loaded immediates of
     [Ibini] instructions, so every operand of every compiled closure is
     just a slot index. Native code reads and writes the bigarray without
     boxing, which — together with pre-resolved control-flow successors —
     is where the speedup over the allocating interpreter comes from. *)
  type regs = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

  external ba_get : regs -> int -> int64 = "%caml_ba_unsafe_ref_1"
  external ba_set : regs -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

  (* Flat instruction index = block_base + offset = pc/4, exactly the
     global instruction index [Program.base_table] defines, so flat ips and
     trace pcs interconvert for free. Two extra "trap" slots past the end
     hold closures that raise the interpreter's control-flow failures. *)
  type code = {
    program : Program.t;
    flat : Instr.t array;
    block_of : int array;  (* sized n+2; the trap slots map to block 0 *)
    offset_of : int array;
    next_ip : int array;  (* fallthrough successor (flat or trap ip) *)
    target_ip : int array;  (* branch/jump target entry ip; -1 when none *)
    block_entry : int array;  (* first executed ip when entering a block *)
    dup_slot : int array;  (* auxiliary chain slot of an ext_dup instr; -1 *)
    entry_ip : int;
    nslots : int;
    n_imm : int;
    n_dup : int;
  }

  let compile program =
    let bases = Program.base_table program in
    let n = Program.num_static_instrs program in
    let nb = Array.length program.Program.blocks in
    let trap_fell_off = n in
    let trap_missing = n + 1 in
    let entry_of b0 =
      (* chase empty blocks to the first real instruction; a cycle of empty
         blocks would make the interpreter spin without consuming steps, so
         failing fast on it diverges only for programs no generator emits *)
      let rec go b guard =
        if guard > nb then trap_fell_off
        else
          let blk = program.Program.blocks.(b) in
          if Array.length blk.Program.instrs > 0 then bases.(b)
          else
            match blk.Program.fallthrough with
            | Some ft -> go ft (guard + 1)
            | None -> trap_fell_off
      in
      go b0 0
    in
    let block_entry = Array.init nb entry_of in
    let flat = Array.make n (Instr.make Op.Halt) in
    let block_of = Array.make (n + 2) 0 in
    let offset_of = Array.make n 0 in
    let next_ip = Array.make n trap_missing in
    let target_ip = Array.make n (-1) in
    let dup_slot = Array.make n (-1) in
    let n_imm = ref 0 in
    let n_dup = ref 0 in
    Program.iter_instrs
      (fun blk off ins ->
        let ip = bases.(blk.Program.id) + off in
        flat.(ip) <- ins;
        block_of.(ip) <- blk.Program.id;
        offset_of.(ip) <- off;
        next_ip.(ip) <-
          (if off + 1 < Array.length blk.Program.instrs then ip + 1
           else
             match blk.Program.fallthrough with
             | Some ft -> block_entry.(ft)
             | None -> trap_missing);
        (match ins.Instr.annot.Instr.ext_dup with
        | Some _ when Op.defs ins.Instr.op <> [] ->
            dup_slot.(ip) <- n + 2 + !n_dup;
            incr n_dup
        | _ -> ());
        match ins.Instr.op with
        | Op.Branch (_, _, l) | Op.Jump l -> target_ip.(ip) <- block_entry.(l)
        | Op.Ibini _ -> incr n_imm
        | _ -> ())
      program;
    {
      program;
      flat;
      block_of;
      offset_of;
      next_ip;
      target_ip;
      block_entry;
      dup_slot;
      entry_ip =
        (if nb = 0 then trap_fell_off else block_entry.(program.Program.entry));
      nslots = num_fixed_slots + (2 * (Program.max_virt_index program + 1));
      n_imm = !n_imm;
      n_dup = !n_dup;
    }

  let num_blocks code = Array.length code.program.Program.blocks
  let program code = code.program

  (* One closure per static instruction, chained by direct tail calls: a
     closure takes the remaining fuel, applies the architectural effect and
     tail-calls its successor's closure with [fuel - 1]; at [fuel = 0] it
     parks the run on itself ([stop] := own ip) and unwinds by returning
     the unspent fuel. An [advance] is therefore a single closure call —
     no dispatch loop, no per-step counter traffic, no halt test.
     [alloc_imm] registers an immediate and returns its pre-loaded slot. *)
  let make_step regs mem stores scratch alloc_imm (step : (int -> int) array)
      (stop : int ref) (ins : Instr.t) ~ip ~next ~target =
    let rs (r : Reg.t) = reg_slot r in
    let ws (r : Reg.t) = if Reg.is_zero r then scratch else reg_slot r in
    let ibin (o : Op.ibin) d a b =
      match o with
      | Op.Add ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.add (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Sub ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.sub (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Mul ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.mul (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Div ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              let bv = ba_get regs b in
              ba_set regs d
                (if Int64.equal bv 0L then -1L
                 else Int64.div (ba_get regs a) bv);
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Rem ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              let av = ba_get regs a and bv = ba_get regs b in
              ba_set regs d (if Int64.equal bv 0L then av else Int64.rem av bv);
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.And ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.logand (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Or ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.logor (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Xor ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d (Int64.logxor (ba_get regs a) (ba_get regs b));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Andnot ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (Int64.logand (ba_get regs a) (Int64.lognot (ba_get regs b)));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Shl ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (Int64.shift_left (ba_get regs a)
                   (Int64.to_int (ba_get regs b) land 63));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Shr ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (Int64.shift_right_logical (ba_get regs a)
                   (Int64.to_int (ba_get regs b) land 63));
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Cmpeq ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (if Int64.equal (ba_get regs a) (ba_get regs b) then 1L
                 else 0L);
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Cmplt ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (if Int64.compare (ba_get regs a) (ba_get regs b) < 0 then 1L
                 else 0L);
              (Array.unsafe_get step next) (fuel - 1)
            end
      | Op.Cmple ->
          fun fuel ->
            if fuel = 0 then (stop := ip; 0)
            else begin
              ba_set regs d
                (if Int64.compare (ba_get regs a) (ba_get regs b) <= 0 then 1L
                 else 0L);
              (Array.unsafe_get step next) (fuel - 1)
            end
    in
    match ins.Instr.op with
    | Op.Nop ->
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else (Array.unsafe_get step next) (fuel - 1)
    | Op.Ibin (o, d, a, b) -> ibin o (ws d) (rs a) (rs b)
    | Op.Ibini (o, d, a, i) -> ibin o (ws d) (rs a) (alloc_imm (Int64.of_int i))
    | Op.Movi (d, v) ->
        let d = ws d in
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else begin
            ba_set regs d v;
            (Array.unsafe_get step next) (fuel - 1)
          end
    | Op.Fbin (o, d, a, b) -> (
        let d = ws d and a = rs a and b = rs b in
        match o with
        | Op.Fadd ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (Int64.float_of_bits (ba_get regs a)
                     +. Int64.float_of_bits (ba_get regs b)));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Fsub ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (Int64.float_of_bits (ba_get regs a)
                     -. Int64.float_of_bits (ba_get regs b)));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Fmul ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (Int64.float_of_bits (ba_get regs a)
                     *. Int64.float_of_bits (ba_get regs b)));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Fdiv ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                let bv = Int64.float_of_bits (ba_get regs b) in
                (if bv = 0.0 then ba_set regs d 0L
                 else
                   ba_set regs d
                     (Int64.bits_of_float
                        (Int64.float_of_bits (ba_get regs a) /. bv)));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Fcmplt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (if
                        Int64.float_of_bits (ba_get regs a)
                        < Int64.float_of_bits (ba_get regs b)
                      then 1.0
                      else 0.0));
                (Array.unsafe_get step next) (fuel - 1)
              end)
    | Op.Funary (o, d, a) -> (
        let d = ws d and a = rs a in
        match o with
        | Op.Fneg ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (-.Int64.float_of_bits (ba_get regs a)));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Fsqrt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float
                     (sqrt (Float.abs (Int64.float_of_bits (ba_get regs a)))));
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Cvt_if ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs d
                  (Int64.bits_of_float (Int64.to_float (ba_get regs a)));
                (Array.unsafe_get step next) (fuel - 1)
              end)
    | Op.Cmov (c, d, test, v) -> (
        let dr = rs d and dw = ws d and t = rs test and v = rs v in
        match c with
        | Op.Eq ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.equal (ba_get regs t) 0L then ba_get regs v
                   else ba_get regs dr);
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Ne ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.equal (ba_get regs t) 0L then ba_get regs dr
                   else ba_get regs v);
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Lt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.compare (ba_get regs t) 0L < 0 then ba_get regs v
                   else ba_get regs dr);
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Ge ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.compare (ba_get regs t) 0L >= 0 then ba_get regs v
                   else ba_get regs dr);
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Le ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.compare (ba_get regs t) 0L <= 0 then ba_get regs v
                   else ba_get regs dr);
                (Array.unsafe_get step next) (fuel - 1)
              end
        | Op.Gt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else begin
                ba_set regs dw
                  (if Int64.compare (ba_get regs t) 0L > 0 then ba_get regs v
                   else ba_get regs dr);
                (Array.unsafe_get step next) (fuel - 1)
              end)
    | Op.Load (d, base, off, _) ->
        (* page-cache hit test inlined: without cross-module inlining a
           call per access costs more than the access itself *)
        let d = ws d and b = rs base in
        let cidx, cpage = Braid_util.Paged_mem.cache_arrays mem in
        let cmask = Braid_util.Paged_mem.cache_slots - 1 in
        let wmask = Braid_util.Paged_mem.words_per_page - 1 in
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else begin
            let addr = Int64.to_int (ba_get regs b) + off in
            check_aligned addr;
            let pidx = addr lsr 12 in
            let p =
              if Array.unsafe_get cidx (pidx land cmask) = pidx then
                Array.unsafe_get cpage (pidx land cmask)
              else Braid_util.Paged_mem.page_for_load mem addr
            in
            ba_set regs d
              (Braid_util.Paged_mem.page_get p ((addr lsr 3) land wmask));
            (Array.unsafe_get step next) (fuel - 1)
          end
    | Op.Store (s, base, off, _) ->
        let s = rs s and b = rs base in
        let cidx, cpage = Braid_util.Paged_mem.cache_arrays mem in
        let cmask = Braid_util.Paged_mem.cache_slots - 1 in
        let wmask = Braid_util.Paged_mem.words_per_page - 1 in
        let zp = Braid_util.Paged_mem.zero_page in
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else begin
            let addr = Int64.to_int (ba_get regs b) + off in
            check_aligned addr;
            let pidx = addr lsr 12 in
            let p =
              if Array.unsafe_get cidx (pidx land cmask) = pidx then
                Array.unsafe_get cpage (pidx land cmask)
              else zp
            in
            let p =
              if p != zp then p else Braid_util.Paged_mem.page_for_store mem addr
            in
            Braid_util.Paged_mem.page_set p
              ((addr lsr 3) land wmask)
              (ba_get regs s);
            incr stores;
            (Array.unsafe_get step next) (fuel - 1)
          end
    | Op.Branch (c, r, _) -> (
        let s = rs r in
        match c with
        | Op.Eq ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.equal (ba_get regs s) 0L then target else next))
                  (fuel - 1)
        | Op.Ne ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.equal (ba_get regs s) 0L then next else target))
                  (fuel - 1)
        | Op.Lt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.compare (ba_get regs s) 0L < 0 then target
                    else next))
                  (fuel - 1)
        | Op.Ge ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.compare (ba_get regs s) 0L >= 0 then target
                    else next))
                  (fuel - 1)
        | Op.Le ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.compare (ba_get regs s) 0L <= 0 then target
                    else next))
                  (fuel - 1)
        | Op.Gt ->
            fun fuel ->
              if fuel = 0 then (stop := ip; 0)
              else
                (Array.unsafe_get step
                   (if Int64.compare (ba_get regs s) 0L > 0 then target
                    else next))
                  (fuel - 1))
    | Op.Jump _ ->
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else (Array.unsafe_get step target) (fuel - 1)
    | Op.Halt ->
        fun fuel ->
          if fuel = 0 then (stop := ip; 0)
          else begin
            stop := -1;
            fuel - 1
          end

  type run = {
    code : code;
    regs : regs;
    mem : Braid_util.Paged_mem.t;
    step : (int -> int) array;
    stop : int ref;  (* where the chain parked: next ip, or -1 after Halt *)
    mutable ip : int;  (* next instruction to execute; -1 once halted *)
    mutable steps : int;
    stores : int ref;
  }

  let start ?(init_mem = []) ?image code =
    let n = Array.length code.flat in
    let regs =
      Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
        (code.nslots + 1 + code.n_imm)
    in
    Bigarray.Array1.fill regs 0L;
    let mem = Braid_util.Paged_mem.create () in
    (match image with
    | Some snap -> Braid_util.Paged_mem.restore mem snap
    | None -> ());
    List.iter
      (fun (addr, v) ->
        check_aligned addr;
        Braid_util.Paged_mem.store mem addr v)
      init_mem;
    let stores = ref 0 in
    let stop = ref 0 in
    let next_imm = ref (code.nslots + 1) in
    let alloc_imm v =
      let s = !next_imm in
      incr next_imm;
      ba_set regs s v;
      s
    in
    let step = Array.make (n + 2 + code.n_dup) (fun (_ : int) -> 0) in
    let scratch = code.nslots in
    for ip = 0 to n - 1 do
      let aux = code.dup_slot.(ip) in
      let next = if aux >= 0 then aux else code.next_ip.(ip) in
      step.(ip) <-
        make_step regs mem stores scratch alloc_imm step stop code.flat.(ip)
          ~ip ~next ~target:code.target_ip.(ip);
      if aux >= 0 then begin
        (* the (I and E) duplicate destination reads back the just-written
           primary slot, which written_of mirrors in the interpreter; the
           copy lives in an auxiliary chain slot that consumes no fuel, so
           the main closure and the copy together count as one step *)
        let ins = code.flat.(ip) in
        match (ins.Instr.annot.Instr.ext_dup, Op.defs ins.Instr.op) with
        | Some du, d :: _ ->
            let slot r = if Reg.is_zero r then scratch else reg_slot r in
            let ds = slot du and dp = slot d in
            let real_next = code.next_ip.(ip) in
            step.(aux) <-
              (fun fuel ->
                ba_set regs ds (ba_get regs dp);
                (Array.unsafe_get step real_next) fuel)
        | _ -> assert false
      end
    done;
    step.(n) <-
      (fun fuel ->
        if fuel = 0 then (stop := n; 0)
        else failwith "Emulator: fell off a block without fallthrough");
    step.(n + 1) <-
      (fun fuel ->
        if fuel = 0 then (stop := n + 1; 0)
        else failwith "Emulator: missing fallthrough");
    { code; regs; mem; step; stop; ip = code.entry_ip; steps = 0; stores }

  let advance run ~fuel =
    if fuel < 0 then invalid_arg "Compiled.advance: negative fuel";
    if run.ip < 0 || fuel = 0 then 0
    else begin
      let rem = (Array.unsafe_get run.step run.ip) fuel in
      let n = fuel - rem in
      run.ip <- !(run.stop);
      run.steps <- run.steps + n;
      n
    end

  (* Single-stepping through the chain ([fuel = 1] executes exactly one
     instruction and parks on the successor) costs roughly twice the fast
     path, which the once-per-program profiling pass can afford. *)
  let advance_bbv run ~fuel ~counts =
    if fuel < 0 then invalid_arg "Compiled.advance_bbv: negative fuel";
    let step = run.step and block_of = run.code.block_of and stop = run.stop in
    let ip = ref run.ip in
    let n = ref 0 in
    while !n < fuel && !ip >= 0 do
      let b = Array.unsafe_get block_of !ip in
      counts.(b) <- counts.(b) + 1;
      ignore ((Array.unsafe_get step !ip) 1 : int);
      ip := !stop;
      incr n
    done;
    run.ip <- !ip;
    run.steps <- run.steps + !n;
    !n

  let halted run = run.ip < 0
  let steps run = run.steps
  let store_count run = !(run.stores)

  (* An architectural [state] view of the run: register arrays are copied,
     memory is shared by reference. *)
  let state_of run =
    let regs = run.regs in
    let max_virt = Program.max_virt_index run.code.program in
    {
      ext_int =
        Array.init Reg.num_ext_per_class (fun i ->
            ba_get regs (reg_slot (Reg.ext Reg.Cint i)));
      ext_fp =
        Array.init Reg.num_ext_per_class (fun i ->
            ba_get regs (reg_slot (Reg.ext Reg.Cfp i)));
      intern =
        Array.init Reg.num_internal (fun i ->
            ba_get regs (reg_slot (Reg.intern i)));
      virt_int =
        Array.init (max_virt + 1) (fun i ->
            ba_get regs (num_fixed_slots + (2 * i)));
      virt_fp =
        Array.init (max_virt + 1) (fun i ->
            ba_get regs (num_fixed_slots + (2 * i) + 1));
      mem = run.mem;
    }

  let absorb run (st : state) =
    let regs = run.regs in
    for i = 0 to Reg.num_ext_per_class - 1 do
      (* slot 31 is the zero register: the interpreter never writes
         st.ext_int.(31), so this writes back its invariant 0 *)
      ba_set regs (reg_slot (Reg.ext Reg.Cint i)) st.ext_int.(i);
      ba_set regs (reg_slot (Reg.ext Reg.Cfp i)) st.ext_fp.(i)
    done;
    for i = 0 to Reg.num_internal - 1 do
      ba_set regs (reg_slot (Reg.intern i)) st.intern.(i)
    done;
    for i = 0 to Program.max_virt_index run.code.program do
      ba_set regs
        (num_fixed_slots + (2 * i))
        (read_reg st (Reg.virt Reg.Cint i));
      ba_set regs
        (num_fixed_slots + (2 * i) + 1)
        (read_reg st (Reg.virt Reg.Cfp i))
    done

  let trace_window run ~max_steps =
    let code = run.code in
    (* a run parked on a trap slot raises the interpreter's failure now *)
    if run.ip >= Array.length code.flat then
      ignore (run.step.(run.ip) 1 : int);
    if run.ip < 0 then
      {
        Trace.events = [||];
        stop = Trace.Halted;
        program = code.program;
        warm_lines = None;
        tables = None;
      }
    else begin
      let st = state_of run in
      let x =
        exec_from st code.program ~max_steps ~trace:true
          ~start_block:code.block_of.(run.ip)
          ~start_offset:code.offset_of.(run.ip)
      in
      absorb run st;
      run.steps <- run.steps + x.x_steps;
      run.stores := !(run.stores) + x.x_stores;
      run.ip <-
        (match x.x_next with
        | None -> -1
        | Some (b, off) ->
            if off = 0 then code.block_entry.(b)
            else (Program.base_table code.program).(b) + off);
      let events = Array.of_list (List.rev x.x_events) in
      (* A window may open mid-braid; the braid core only accepts an
         instruction stream whose first braid event claims a BEU, so the
         leading event is promoted to a braid start — the tail of the
         cut-off braid instance is timed as a (short) instance of its
         own. *)
      if Array.length events > 0 then begin
        let e0 = events.(0) in
        if e0.Trace.braid_id >= 0 && not e0.Trace.braid_start then
          events.(0) <- { e0 with Trace.braid_start = true }
      end;
      {
        Trace.events;
        stop = x.x_stop;
        program = code.program;
        warm_lines = None;
        tables = None;
      }
    end

  type snapshot = {
    s_regs : int64 array;
    s_mem : Braid_util.Paged_mem.snapshot;
    s_ip : int;
    s_steps : int;
    s_stores : int;
  }

  let snapshot run =
    {
      s_regs = Array.init (Bigarray.Array1.dim run.regs) (ba_get run.regs);
      s_mem = Braid_util.Paged_mem.snapshot run.mem;
      s_ip = run.ip;
      s_steps = run.steps;
      s_stores = !(run.stores);
    }

  let restore run snap =
    if Array.length snap.s_regs <> Bigarray.Array1.dim run.regs then
      invalid_arg "Compiled.restore: snapshot from a different program";
    Array.iteri (ba_set run.regs) snap.s_regs;
    Braid_util.Paged_mem.restore run.mem snap.s_mem;
    run.ip <- snap.s_ip;
    run.steps <- snap.s_steps;
    run.stores := snap.s_stores

  let state = state_of

  let execute ?(max_steps = 1_000_000) ?(init_mem = []) program =
    let run = start ~init_mem (compile program) in
    let (_ : int) = advance run ~fuel:max_steps in
    {
      trace = None;
      stop = (if run.ip < 0 then Trace.Halted else Trace.Steps_exhausted);
      dynamic_count = run.steps;
      store_count = !(run.stores);
      state = state_of run;
    }
end
