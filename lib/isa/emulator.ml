let spill_base = 0x2000_0000

type state = {
  ext_int : int64 array;
  ext_fp : int64 array;
  intern : int64 array;
  mutable virt_int : int64 array;  (* grown on demand; unwritten = 0 *)
  mutable virt_fp : int64 array;
  mem : Braid_util.Paged_mem.t;
}

type outcome = {
  trace : Trace.t option;
  stop : Trace.stop_reason;
  dynamic_count : int;
  store_count : int;
  state : state;
}

let create_state () =
  {
    ext_int = Array.make Reg.num_ext_per_class 0L;
    ext_fp = Array.make Reg.num_ext_per_class 0L;
    intern = Array.make Reg.num_internal 0L;
    virt_int = Array.make 256 0L;
    virt_fp = Array.make 256 0L;
    mem = Braid_util.Paged_mem.create ();
  }

let grown a idx =
  let n = Array.length a in
  if idx < n then a
  else begin
    let a' = Array.make (max (2 * n) (idx + 1)) 0L in
    Array.blit a 0 a' 0 n;
    a'
  end

let read_reg st (r : Reg.t) =
  if Reg.is_zero r then 0L
  else
    match (r.space, r.cls) with
    | Reg.Ext, Reg.Cint -> st.ext_int.(r.idx)
    | Reg.Ext, Reg.Cfp -> st.ext_fp.(r.idx)
    | Reg.Intern, _ -> st.intern.(r.idx)
    | Reg.Virt, Reg.Cint ->
        if r.idx < Array.length st.virt_int then st.virt_int.(r.idx) else 0L
    | Reg.Virt, Reg.Cfp ->
        if r.idx < Array.length st.virt_fp then st.virt_fp.(r.idx) else 0L

let write_reg st (r : Reg.t) v =
  if Reg.is_zero r then ()
  else
    match (r.space, r.cls) with
    | Reg.Ext, Reg.Cint -> st.ext_int.(r.idx) <- v
    | Reg.Ext, Reg.Cfp -> st.ext_fp.(r.idx) <- v
    | Reg.Intern, _ -> st.intern.(r.idx) <- v
    | Reg.Virt, Reg.Cint ->
        st.virt_int <- grown st.virt_int r.idx;
        st.virt_int.(r.idx) <- v
    | Reg.Virt, Reg.Cfp ->
        st.virt_fp <- grown st.virt_fp r.idx;
        st.virt_fp.(r.idx) <- v

let read_mem_word st addr = Braid_util.Paged_mem.load st.mem addr

let check_aligned addr =
  if addr land 7 <> 0 then failwith (Printf.sprintf "unaligned access: %#x" addr);
  if addr < 0 then failwith (Printf.sprintf "negative address: %d" addr)

(* Result of executing one operation, before trace bookkeeping. *)
type exec_result = {
  written : (Reg.t * int64) list;
  mem_addr : int;  (* -1 if not a memory op *)
  was_store : bool;
  fault : bool;
  transfer : Op.label option;  (* Some target if a taken branch/jump *)
  halt : bool;
}

let no_effect =
  { written = []; mem_addr = -1; was_store = false; fault = false;
    transfer = None; halt = false }

let exec_op st (ins : Instr.t) : exec_result =
  let r = read_reg st in
  let as_f x = Int64.float_of_bits x in
  let of_f x = Int64.bits_of_float x in
  match ins.Instr.op with
  | Op.Nop -> no_effect
  | Op.Ibin (o, d, a, b) ->
      { no_effect with written = [ (d, Op.eval_ibin o (r a) (r b)) ] }
  | Op.Ibini (o, d, a, i) ->
      { no_effect with written = [ (d, Op.eval_ibin o (r a) (Int64.of_int i)) ] }
  | Op.Movi (d, v) -> { no_effect with written = [ (d, v) ] }
  | Op.Fbin (o, d, a, b) -> (
      match Op.eval_fbin o (as_f (r a)) (as_f (r b)) with
      | Some v -> { no_effect with written = [ (d, of_f v) ] }
      | None -> { no_effect with written = [ (d, 0L) ]; fault = true })
  | Op.Funary (o, d, a) ->
      { no_effect with written = [ (d, Op.eval_funary o (r a)) ] }
  | Op.Cmov (c, d, test, v) ->
      let value = if Op.eval_cond c (r test) then r v else r d in
      { no_effect with written = [ (d, value) ] }
  | Op.Load (d, base, off, _) ->
      let addr = Int64.to_int (r base) + off in
      check_aligned addr;
      { no_effect with written = [ (d, read_mem_word st addr) ]; mem_addr = addr }
  | Op.Store (s, base, off, _) ->
      let addr = Int64.to_int (r base) + off in
      check_aligned addr;
      Braid_util.Paged_mem.store st.mem addr (r s);
      { no_effect with mem_addr = addr; was_store = true }
  | Op.Branch (c, reg, l) ->
      if Op.eval_cond c (r reg) then { no_effect with transfer = Some l }
      else no_effect
  | Op.Jump l -> { no_effect with transfer = Some l }
  | Op.Halt -> { no_effect with halt = true }

(* Destination/value pairs of one executed instruction, with the ext_dup
   duplicate destination (I and E both set) mirrored onto the external
   copy. Shared between [run] and the oracle-facing [exec_instr]. *)
let written_of (ins : Instr.t) (res : exec_result) =
  match ins.Instr.annot.Instr.ext_dup with
  | None -> res.written
  | Some dup -> (
      match res.written with
      | [ (_, v) ] -> res.written @ [ (dup, v) ]
      | _ -> res.written)

let init_state ?(init_mem = []) () =
  let st = create_state () in
  List.iter
    (fun (addr, v) ->
      check_aligned addr;
      Braid_util.Paged_mem.store st.mem addr v)
    init_mem;
  st

let exec_instr st (ins : Instr.t) =
  let res = exec_op st ins in
  List.iter (fun (reg, v) -> write_reg st reg v) (written_of ins res)

(* Dense slot per register for the writer table: externals by [ext_id],
   then internals, then virtuals (two classes interleaved). *)
let num_fixed_slots = Reg.num_ext_ids + Reg.num_internal

let reg_slot (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> Reg.ext_id r
  | Reg.Intern -> Reg.num_ext_ids + r.Reg.idx
  | Reg.Virt ->
      num_fixed_slots + (2 * r.Reg.idx)
      + (match r.Reg.cls with Reg.Cint -> 0 | Reg.Cfp -> 1)

let run ?(max_steps = 1_000_000) ?(trace = true) ?(init_mem = []) program =
  let st = init_state ~init_mem () in
  let bases = Program.base_table program in
  let pc_of blk off = 4 * (bases.(blk) + off) in
  (* last writer uid per register slot; -1 = no dynamic writer yet *)
  let last_writer =
    Array.make
      (num_fixed_slots + (2 * (Program.max_virt_index program + 1)))
      (-1)
  in
  let events = ref [] in
  let uid = ref 0 in
  let store_count = ref 0 in
  let stop = ref Trace.Steps_exhausted in
  let block = ref program.Program.entry in
  let offset = ref 0 in
  let running = ref true in
  while !running && !uid < max_steps do
    let b = program.Program.blocks.(!block) in
    if !offset >= Array.length b.Program.instrs then begin
      (* empty tail: unconditional fallthrough *)
      match b.Program.fallthrough with
      | Some ft ->
          block := ft;
          offset := 0
      | None -> failwith "Emulator: fell off a block without fallthrough"
    end
    else begin
      let ins = b.Program.instrs.(!offset) in
      let res = exec_op st ins in
      if res.was_store then incr store_count;
      let written = written_of ins res in
      List.iter (fun (reg, v) -> write_reg st reg v) written;
      (* Determine the next dynamic location. *)
      let next_loc =
        if res.halt then None
        else
          match res.transfer with
          | Some target -> Some (target, 0)
          | None ->
              if !offset + 1 < Array.length b.Program.instrs then
                Some (!block, !offset + 1)
              else (
                match b.Program.fallthrough with
                | Some ft -> Some (ft, 0)
                | None -> failwith "Emulator: missing fallthrough")
      in
      if trace then begin
        let deps =
          List.filter_map
            (fun (reg : Reg.t) ->
              if Reg.is_zero reg then None
              else
                let w = last_writer.(reg_slot reg) in
                if w < 0 then None
                else Some (w, reg.Reg.space = Reg.Intern))
            (Instr.uses ins)
        in
        let deps = List.sort_uniq compare deps in
        let is_cond_branch =
          match ins.Instr.op with Op.Branch _ -> true | _ -> false
        in
        let is_jump = match ins.Instr.op with Op.Jump _ -> true | _ -> false in
        let taken =
          if is_cond_branch then res.transfer <> None else is_jump
        in
        let pc = pc_of !block !offset in
        let next_pc =
          match next_loc with
          | Some (nb, noff) -> pc_of nb noff
          | None -> pc
        in
        let ev =
          {
            Trace.uid = !uid;
            pc;
            block_id = !block;
            offset = !offset;
            instr = ins;
            deps = Array.of_list deps;
            addr = res.mem_addr;
            is_load = Op.is_load ins.Instr.op;
            is_store = res.was_store;
            is_cond_branch;
            is_jump;
            taken;
            next_pc;
            latency = Op.latency ins.Instr.op;
            writes_ext = Instr.writes_external ins;
            writes_int = Instr.writes_internal ins;
            ext_src_reads = Instr.reads_external_count ins;
            int_src_reads =
              List.length
                (List.filter
                   (fun (r : Reg.t) -> r.Reg.space = Reg.Intern)
                   (Instr.uses ins));
            braid_id = ins.Instr.annot.Instr.braid_id;
            braid_start = ins.Instr.annot.Instr.braid_start;
            faulting = res.fault;
          }
        in
        events := ev :: !events;
        List.iter
          (fun ((reg : Reg.t), _) ->
            if not (Reg.is_zero reg) then last_writer.(reg_slot reg) <- !uid)
          written
      end;
      incr uid;
      match next_loc with
      | None ->
          stop := Trace.Halted;
          running := false
      | Some (nb, noff) ->
          block := nb;
          offset := noff
    end
  done;
  let trace_v =
    if trace then
      Some
        {
          Trace.events = Array.of_list (List.rev !events);
          stop = !stop;
          program;
          warm_lines = None;
          tables = None;
        }
    else None
  in
  {
    trace = trace_v;
    stop = !stop;
    dynamic_count = !uid;
    store_count = !store_count;
    state = st;
  }

let read_ext st (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> read_reg st r
  | Reg.Virt | Reg.Intern -> invalid_arg "Emulator.read_ext: not external"

let read_mem st addr = read_mem_word st addr

let memory_image st =
  Braid_util.Paged_mem.fold_nonzero
    (fun acc addr v -> if addr < spill_base then (addr, v) :: acc else acc)
    [] st.mem
  |> List.sort compare

let memory_fingerprint st =
  List.fold_left
    (fun acc (addr, v) ->
      let acc = Int64.mul (Int64.logxor acc (Int64.of_int addr)) 0x100000001B3L in
      Int64.mul (Int64.logxor acc v) 0x100000001B3L)
    0xCBF29CE484222325L (memory_image st)
