(** Functional (architectural) execution of programs.

    The emulator is the semantic oracle of the repository: it defines what a
    program computes, supplies branch outcomes and memory addresses to the
    timing models, and is the reference against which the braid
    transformation is proven behaviour-preserving.

    Memory is a sparse word-addressed store of 64-bit values; addresses are
    byte addresses and must be 8-byte aligned. Addresses at or above
    [spill_base] are reserved for compiler-inserted spill code and are
    excluded from [memory_image] so that differently-allocated binaries of
    the same source remain comparable. *)

type state

val spill_base : int
(** Start of the spill address region (0x2000_0000; chosen to keep
    zero-register-based spill addressing within the immediate field). *)

type outcome = {
  trace : Trace.t option;  (** present when tracing was requested *)
  stop : Trace.stop_reason;
  dynamic_count : int;
  store_count : int;
  state : state;
}

val run :
  ?max_steps:int ->
  ?trace:bool ->
  ?init_mem:(int * int64) list ->
  Program.t ->
  outcome
(** Executes from the entry block. [max_steps] bounds the dynamic
    instruction count (default 1_000_000). When [trace] is true (default),
    the outcome carries the full dynamic trace. Arithmetic faults
    (FP divide by zero) write zero to the destination, mark the event as
    [faulting], and continue — the microarchitectural exception-mode cost is
    modeled by the timing simulators, not here. *)

val init_state : ?init_mem:(int * int64) list -> unit -> state
(** A fresh architectural state (all registers zero) with the given data
    image stored. This is the state [run] starts from; the differential
    oracle uses it to replay committed instruction streams. *)

val exec_instr : state -> Instr.t -> unit
(** Applies the architectural effect of one instruction to [state]:
    register writes (including the [ext_dup] duplicate destination) and
    memory stores. Control flow and [Halt] are ignored — the caller owns
    the instruction sequence. Replaying a core's committed stream through
    this and comparing registers/memory against a sequential {!run} is the
    differential oracle's register-file check. *)

val read_ext : state -> Reg.t -> int64
(** Final architectural register value. Raises on non-external registers. *)

val read_reg : state -> Reg.t -> int64
(** Final value of any register (virtual, external or internal; zero reads
    0). Virtual reads are what the RV frontend's differential oracle
    compares against the reference emulator's architectural registers. *)

val read_mem : state -> int -> int64
(** Final memory word at a byte address (0 if never written). *)

val memory_image : state -> (int * int64) list
(** Sorted (address, value) pairs of all written words below [spill_base]
    with non-zero final values: the canonical observable result of a run. *)

val memory_fingerprint : state -> int64
(** Order-independent-free hash of [memory_image]; equal fingerprints for
    equal images. Used by equivalence property tests. *)

(** Compiled fast-forward execution.

    [compile] pre-decodes a program into a flat array of per-instruction
    closures over an unboxed register file, resolving every control-flow
    successor to a flat instruction index; [advance] then executes without
    per-instruction decoding, dispatch or allocation — byte-identical in
    all architectural observables (registers, memory, dynamic/store counts,
    stop reason, failure messages) to the interpreted {!run}, at an order
    of magnitude higher instruction throughput. This is the fast-forward
    engine of sampled simulation: [advance_bbv] additionally accumulates
    per-basic-block execution counts for interval profiling, and
    [trace_window] hands control to the interpreter's tracer for a bounded
    window starting at the run's current position (sharing its state), so
    a measured window carries exactly the events a full trace would. *)
module Compiled : sig
  type code
  (** A pre-decoded program; reusable across many runs. *)

  type run
  (** One execution in progress: registers, memory, position, counters. *)

  val compile : Program.t -> code

  val start :
    ?init_mem:(int * int64) list ->
    ?image:Braid_util.Paged_mem.snapshot ->
    code ->
    run
  (** A fresh run at the program entry with all registers zero and the
      given data image stored. [image] restores a pre-built memory
      snapshot by page blits before [init_mem] is applied — repeated runs
      over the same data image (the perf harness, the sampling driver)
      amortise the per-word image walk this way. *)

  val advance : run -> fuel:int -> int
  (** Execute at most [fuel] instructions; returns how many ran (less than
      [fuel] only when the program halts, the halting instruction
      included, as in {!run}). *)

  val advance_bbv : run -> fuel:int -> counts:int array -> int
  (** [advance], additionally incrementing [counts.(b)] for every
      instruction executed in block [b]. [counts] must have at least
      {!num_blocks} entries. *)

  val trace_window : run -> max_steps:int -> Trace.t
  (** Run up to [max_steps] instructions through the interpreter's tracer
      from the current position, advancing the run. The window is a
      self-contained trace: event uids restart at 0 and dependences on
      pre-window producers are dropped (a timing model fed only the window
      sees exactly this). Its [stop] is [Halted] iff the program ended
      inside the window. *)

  val halted : run -> bool
  val steps : run -> int
  (** Dynamic instructions executed so far (including a final [Halt]). *)

  val store_count : run -> int
  val num_blocks : code -> int
  val program : code -> Program.t

  val state : run -> state
  (** Architectural view of the run: registers are copied out, memory is
      shared by reference with the live run. *)

  type snapshot

  val snapshot : run -> snapshot
  (** Deep copy of the full architectural state plus position/counters. *)

  val restore : run -> snapshot -> unit
  (** Rewind the run to a snapshot taken from the same [start]. *)

  val execute :
    ?max_steps:int -> ?init_mem:(int * int64) list -> Program.t -> outcome
  (** Whole-program compiled run; the outcome (with [trace = None]) is
      byte-identical to [run ~trace:false] in every observable. *)
end
