(** Functional (architectural) execution of programs.

    The emulator is the semantic oracle of the repository: it defines what a
    program computes, supplies branch outcomes and memory addresses to the
    timing models, and is the reference against which the braid
    transformation is proven behaviour-preserving.

    Memory is a sparse word-addressed store of 64-bit values; addresses are
    byte addresses and must be 8-byte aligned. Addresses at or above
    [spill_base] are reserved for compiler-inserted spill code and are
    excluded from [memory_image] so that differently-allocated binaries of
    the same source remain comparable. *)

type state

val spill_base : int
(** Start of the spill address region (0x2000_0000; chosen to keep
    zero-register-based spill addressing within the immediate field). *)

type outcome = {
  trace : Trace.t option;  (** present when tracing was requested *)
  stop : Trace.stop_reason;
  dynamic_count : int;
  store_count : int;
  state : state;
}

val run :
  ?max_steps:int ->
  ?trace:bool ->
  ?init_mem:(int * int64) list ->
  Program.t ->
  outcome
(** Executes from the entry block. [max_steps] bounds the dynamic
    instruction count (default 1_000_000). When [trace] is true (default),
    the outcome carries the full dynamic trace. Arithmetic faults
    (FP divide by zero) write zero to the destination, mark the event as
    [faulting], and continue — the microarchitectural exception-mode cost is
    modeled by the timing simulators, not here. *)

val init_state : ?init_mem:(int * int64) list -> unit -> state
(** A fresh architectural state (all registers zero) with the given data
    image stored. This is the state [run] starts from; the differential
    oracle uses it to replay committed instruction streams. *)

val exec_instr : state -> Instr.t -> unit
(** Applies the architectural effect of one instruction to [state]:
    register writes (including the [ext_dup] duplicate destination) and
    memory stores. Control flow and [Halt] are ignored — the caller owns
    the instruction sequence. Replaying a core's committed stream through
    this and comparing registers/memory against a sequential {!run} is the
    differential oracle's register-file check. *)

val read_ext : state -> Reg.t -> int64
(** Final architectural register value. Raises on non-external registers. *)

val read_reg : state -> Reg.t -> int64
(** Final value of any register (virtual, external or internal; zero reads
    0). Virtual reads are what the RV frontend's differential oracle
    compares against the reference emulator's architectural registers. *)

val read_mem : state -> int -> int64
(** Final memory word at a byte address (0 if never written). *)

val memory_image : state -> (int * int64) list
(** Sorted (address, value) pairs of all written words below [spill_base]
    with non-zero final values: the canonical observable result of a run. *)

val memory_fingerprint : state -> int64
(** Order-independent-free hash of [memory_image]; equal fingerprints for
    equal images. Used by equivalence property tests. *)
