exception Unencodable of string

let imm_bits = 31
let imm_max = (1 lsl (imm_bits - 1)) - 1
let imm_min = -(1 lsl (imm_bits - 1))

let ibin_code = function
  | Op.Add -> 0 | Op.Sub -> 1 | Op.Mul -> 2 | Op.Div -> 3 | Op.Rem -> 4
  | Op.And -> 5 | Op.Or -> 6 | Op.Xor -> 7 | Op.Andnot -> 8
  | Op.Shl -> 9 | Op.Shr -> 10
  | Op.Cmpeq -> 11 | Op.Cmplt -> 12 | Op.Cmple -> 13

let ibin_of_code = function
  | 0 -> Op.Add | 1 -> Op.Sub | 2 -> Op.Mul | 3 -> Op.Div | 4 -> Op.Rem
  | 5 -> Op.And | 6 -> Op.Or | 7 -> Op.Xor | 8 -> Op.Andnot
  | 9 -> Op.Shl | 10 -> Op.Shr
  | 11 -> Op.Cmpeq | 12 -> Op.Cmplt | 13 -> Op.Cmple
  | n -> raise (Unencodable (Printf.sprintf "bad ibin code %d" n))

let fbin_code = function
  | Op.Fadd -> 0 | Op.Fsub -> 1 | Op.Fmul -> 2 | Op.Fdiv -> 3 | Op.Fcmplt -> 4

let fbin_of_code = function
  | 0 -> Op.Fadd | 1 -> Op.Fsub | 2 -> Op.Fmul | 3 -> Op.Fdiv | 4 -> Op.Fcmplt
  | n -> raise (Unencodable (Printf.sprintf "bad fbin code %d" n))

let funary_code = function Op.Fneg -> 0 | Op.Fsqrt -> 1 | Op.Cvt_if -> 2

let funary_of_code = function
  | 0 -> Op.Fneg | 1 -> Op.Fsqrt | 2 -> Op.Cvt_if
  | n -> raise (Unencodable (Printf.sprintf "bad funary code %d" n))

let cond_code = function
  | Op.Eq -> 0 | Op.Ne -> 1 | Op.Lt -> 2 | Op.Ge -> 3 | Op.Le -> 4 | Op.Gt -> 5

let cond_of_code = function
  | 0 -> Op.Eq | 1 -> Op.Ne | 2 -> Op.Lt | 3 -> Op.Ge | 4 -> Op.Le | 5 -> Op.Gt
  | n -> raise (Unencodable (Printf.sprintf "bad cond code %d" n))

(* Opcode space: 0 nop; 1..14 ibin; 15..28 ibini; 29 movi; 30..34 fbin;
   35..37 funary; 38..43 cmov; 44 load; 45 store; 46..51 branch; 52 jump;
   53 halt. *)
let opcode = function
  | Op.Nop -> 0
  | Op.Ibin (o, _, _, _) -> 1 + ibin_code o
  | Op.Ibini (o, _, _, _) -> 15 + ibin_code o
  | Op.Movi _ -> 29
  | Op.Fbin (o, _, _, _) -> 30 + fbin_code o
  | Op.Funary (o, _, _) -> 35 + funary_code o
  | Op.Cmov (c, _, _, _) -> 38 + cond_code c
  | Op.Load _ -> 44
  | Op.Store _ -> 45
  | Op.Branch (c, _, _) -> 46 + cond_code c
  | Op.Jump _ -> 52
  | Op.Halt -> 53

(* External register field: class bit (bit 5) + index. *)
let ext_reg_field (r : Reg.t) =
  match r.Reg.space with
  | Reg.Ext -> (match r.Reg.cls with Reg.Cint -> r.Reg.idx | Reg.Cfp -> 32 + r.Reg.idx)
  | Reg.Virt -> raise (Unencodable "virtual register")
  | Reg.Intern -> raise (Unencodable "internal register in external field")

let ext_reg_of_field f =
  if f < 32 then Reg.ext Reg.Cint f else Reg.ext Reg.Cfp (f - 32)

(* A source operand: (t_bit, field). *)
let src_field (r : Reg.t) =
  match r.Reg.space with
  | Reg.Intern -> (1, r.Reg.idx)
  | Reg.Ext | Reg.Virt -> (0, ext_reg_field r)

let src_of_field t f = if t = 1 then Reg.intern (f land 7) else ext_reg_of_field f

let check_imm v =
  if v < imm_min || v > imm_max then
    raise (Unencodable (Printf.sprintf "immediate out of range: %d" v))

let encode (ins : Instr.t) =
  let op = ins.Instr.op in
  let annot = ins.Instr.annot in
  (* Destination description: (i_bit, e_bit, ext_field, int_field). *)
  let dest =
    match Op.defs op with
    | [] -> (0, 0, 0, 0)
    | [ d ] -> (
        match d.Reg.space with
        | Reg.Intern -> (
            match annot.Instr.ext_dup with
            | None -> (1, 0, 0, d.Reg.idx)
            | Some e -> (1, 1, ext_reg_field e, d.Reg.idx))
        | Reg.Ext | Reg.Virt -> (0, 1, ext_reg_field d, 0))
    | _ -> raise (Unencodable "multi-destination operation")
  in
  let srcs =
    match op with
    | Op.Nop | Op.Movi _ | Op.Jump _ | Op.Halt -> []
    | Op.Ibin (_, _, a, b) | Op.Fbin (_, _, a, b) -> [ a; b ]
    | Op.Ibini (_, _, a, _) | Op.Funary (_, _, a) -> [ a ]
    | Op.Cmov (_, _, test, v) -> [ test; v ]
    | Op.Load (_, base, _, _) -> [ base ]
    | Op.Store (s, base, _, _) -> [ s; base ]
    | Op.Branch (_, r, _) -> [ r ]
  in
  let imm =
    match op with
    | Op.Ibini (_, _, _, i) -> check_imm i; i
    | Op.Movi (_, v) ->
        let i = Int64.to_int v in
        if not (Int64.equal (Int64.of_int i) v) then
          raise (Unencodable "movi literal exceeds 63 bits");
        check_imm i;
        i
    | Op.Load (_, _, off, _) | Op.Store (_, _, off, _) -> check_imm off; off
    | Op.Branch (_, _, l) | Op.Jump l -> check_imm l; l
    | _ -> 0
  in
  let t1, s1, t2, s2 =
    match srcs with
    | [] -> (0, 0, 0, 0)
    | [ a ] ->
        let t1, s1 = src_field a in
        (t1, s1, 0, 0)
    | [ a; b ] ->
        let t1, s1 = src_field a in
        let t2, s2 = src_field b in
        (t1, s1, t2, s2)
    | _ -> raise (Unencodable "more than two sources")
  in
  let i_bit, e_bit, dext, dint = dest in
  let ( <|< ) v n = Int64.shift_left (Int64.of_int v) n in
  let open Int64 in
  logor ((if annot.Instr.braid_start then 1 else 0) <|< 63)
  @@ logor (opcode op <|< 56)
  @@ logor (i_bit <|< 55)
  @@ logor (e_bit <|< 54)
  @@ logor (dext <|< 48)
  @@ logor (dint <|< 45)
  @@ logor (t1 <|< 44)
  @@ logor (s1 <|< 38)
  @@ logor (t2 <|< 37)
  @@ logor (s2 <|< 31)
  @@ Int64.of_int (imm land 0x7FFF_FFFF)

let field w lo width =
  Int64.to_int (Int64.logand (Int64.shift_right_logical w lo) (Int64.sub (Int64.shift_left 1L width) 1L))

let decode w =
  let s_bit = field w 63 1 = 1 in
  let opc = field w 56 7 in
  let i_bit = field w 55 1 in
  let e_bit = field w 54 1 in
  let dext = field w 48 6 in
  let dint = field w 45 3 in
  let t1 = field w 44 1 in
  let s1 = field w 38 6 in
  let t2 = field w 37 1 in
  let s2 = field w 31 6 in
  let imm_raw = field w 0 31 in
  let imm =
    if imm_raw land (1 lsl (imm_bits - 1)) <> 0 then imm_raw - (1 lsl imm_bits)
    else imm_raw
  in
  let dest () =
    if i_bit = 1 then Reg.intern dint else ext_reg_of_field dext
  in
  let ext_dup = if i_bit = 1 && e_bit = 1 then Some (ext_reg_of_field dext) else None in
  let src1 () = src_of_field t1 s1 in
  let src2 () = src_of_field t2 s2 in
  let op =
    if opc = 0 then Op.Nop
    else if opc >= 1 && opc <= 14 then Op.Ibin (ibin_of_code (opc - 1), dest (), src1 (), src2 ())
    else if opc >= 15 && opc <= 28 then Op.Ibini (ibin_of_code (opc - 15), dest (), src1 (), imm)
    else if opc = 29 then Op.Movi (dest (), Int64.of_int imm)
    else if opc >= 30 && opc <= 34 then Op.Fbin (fbin_of_code (opc - 30), dest (), src1 (), src2 ())
    else if opc >= 35 && opc <= 37 then Op.Funary (funary_of_code (opc - 35), dest (), src1 ())
    else if opc >= 38 && opc <= 43 then Op.Cmov (cond_of_code (opc - 38), dest (), src1 (), src2 ())
    else if opc = 44 then Op.Load (dest (), src1 (), imm, Op.region_unknown)
    else if opc = 45 then Op.Store (src1 (), src2 (), imm, Op.region_unknown)
    else if opc >= 46 && opc <= 51 then Op.Branch (cond_of_code (opc - 46), src1 (), imm)
    else if opc = 52 then Op.Jump imm
    else if opc = 53 then Op.Halt
    else raise (Unencodable (Printf.sprintf "bad opcode %d" opc))
  in
  let ins = Instr.make op in
  let ins = { ins with Instr.annot = { ins.Instr.annot with Instr.braid_start = s_bit; ext_dup } } in
  ins

let encode_program p =
  let out = ref [] in
  Program.iter_instrs (fun _ _ ins -> out := encode ins :: !out) p;
  Array.of_list (List.rev !out)
