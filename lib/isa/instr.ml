type annot = {
  braid_id : int;
  braid_start : bool;
  ext_dup : Reg.t option;
  origin : string option;
}

type t = { op : Op.t; annot : annot }

let no_annot = { braid_id = -1; braid_start = false; ext_dup = None; origin = None }
let make op = { op; annot = no_annot }

let with_origin t s = { t with annot = { t.annot with origin = Some s } }

let with_braid t ~id ~start =
  { t with annot = { t.annot with braid_id = id; braid_start = start } }

let with_ext_dup t r =
  (match r.Reg.space with
  | Reg.Ext | Reg.Virt -> ()
  | Reg.Intern -> invalid_arg "Instr.with_ext_dup: internal register");
  { t with annot = { t.annot with ext_dup = Some r } }

let defs t =
  let base = Op.defs t.op in
  match t.annot.ext_dup with None -> base | Some r -> base @ [ r ]

let uses t = Op.uses t.op

let writes_internal t =
  List.exists (fun r -> r.Reg.space = Reg.Intern) (Op.defs t.op)

let writes_external t =
  List.exists
    (fun r -> (r.Reg.space = Reg.Ext && not (Reg.is_zero r)) || r.Reg.space = Reg.Virt)
    (defs t)

let reads_external_count t =
  List.length
    (List.filter
       (fun r ->
         (r.Reg.space = Reg.Ext && not (Reg.is_zero r)) || r.Reg.space = Reg.Virt)
       (uses t))

let pp fmt t =
  let reg = Reg.to_string in
  let body =
    match t.op with
    | Op.Nop -> "nop"
    | Op.Ibin (_, d, a, b) ->
        Printf.sprintf "%s %s, %s, %s" (Op.mnemonic t.op) (reg a) (reg b) (reg d)
    | Op.Ibini (_, d, a, i) ->
        Printf.sprintf "%s %s, #%d, %s" (Op.mnemonic t.op) (reg a) i (reg d)
    | Op.Movi (d, v) -> Printf.sprintf "lda #%Ld, %s" v (reg d)
    | Op.Fbin (_, d, a, b) ->
        Printf.sprintf "%s %s, %s, %s" (Op.mnemonic t.op) (reg a) (reg b) (reg d)
    | Op.Funary (_, d, a) ->
        Printf.sprintf "%s %s, %s" (Op.mnemonic t.op) (reg a) (reg d)
    | Op.Cmov (_, d, test, v) ->
        Printf.sprintf "%s %s, %s, %s" (Op.mnemonic t.op) (reg test) (reg v) (reg d)
    | Op.Load (d, b, off, _) ->
        Printf.sprintf "%s %s, %d(%s)" (Op.mnemonic t.op) (reg d) off (reg b)
    | Op.Store (s, b, off, _) ->
        Printf.sprintf "%s %s, %d(%s)" (Op.mnemonic t.op) (reg s) off (reg b)
    | Op.Branch (_, r, l) -> Printf.sprintf "%s %s, B%d" (Op.mnemonic t.op) (reg r) l
    | Op.Jump l -> Printf.sprintf "br B%d" l
    | Op.Halt -> "halt"
  in
  let dup =
    match t.annot.ext_dup with
    | None -> ""
    | Some r -> Printf.sprintf " [also %s]" (reg r)
  in
  let s = if t.annot.braid_start then "S " else "  " in
  let bid = if t.annot.braid_id >= 0 then Printf.sprintf " ;b%d" t.annot.braid_id else "" in
  let org =
    match t.annot.origin with
    | None -> ""
    | Some o -> Printf.sprintf " ;<%s>" o
  in
  Format.fprintf fmt "%s%s%s%s%s" s body dup bid org
