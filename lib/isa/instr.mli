(** Instructions: an operation plus the braid ISA annotation bits.

    The paper extends each instruction encoding with a braid start bit (S),
    a temporary-operand bit (T) per source (internal vs external register
    file), and internal/external destination bits (I/E). In this IR the T
    bits are implied by the register spaces of the operands; the annotation
    carries the S bit, the braid identifier the compiler assigned, and the
    optional duplicate external destination used when a value is both
    consumed inside the braid and live beyond it (I and E both set). *)

type annot = {
  braid_id : int;  (** -1 before braid formation *)
  braid_start : bool;  (** the S bit *)
  ext_dup : Reg.t option;
      (** secondary external destination when the primary destination is an
          internal register but the value is also external (I and E set) *)
  origin : string option;
      (** provenance note for translated code (e.g. the originating RV32IM
          pc and mnemonic); printed as a trailing comment by [pp] and the
          disassembler, never encoded *)
}

type t = { op : Op.t; annot : annot }

val no_annot : annot
(** [braid_id = -1], no start bit, no duplicate destination. *)

val make : Op.t -> t
(** Wraps an operation with [no_annot]. *)

val with_braid : t -> id:int -> start:bool -> t
val with_ext_dup : t -> Reg.t -> t

val with_origin : t -> string -> t
(** Attaches a provenance comment (see [annot.origin]). *)

val defs : t -> Reg.t list
(** Operation destinations plus the duplicate external destination. *)

val uses : t -> Reg.t list

val writes_internal : t -> bool
(** The I bit: some destination is an internal register. *)

val writes_external : t -> bool
(** The E bit: some destination is an external register (includes virtual
    registers before allocation, which are external-space by default). *)

val reads_external_count : t -> int
(** Number of source operands read from the external register file; this is
    what the rename stage and external RF read ports must process. *)

val pp : Format.formatter -> t -> unit
