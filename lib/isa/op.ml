type ibin =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Andnot
  | Shl | Shr
  | Cmpeq | Cmplt | Cmple

type fbin = Fadd | Fsub | Fmul | Fdiv | Fcmplt

type funary = Fneg | Fsqrt | Cvt_if

type cond = Eq | Ne | Lt | Ge | Le | Gt

type label = int

type t =
  | Nop
  | Ibin of ibin * Reg.t * Reg.t * Reg.t
  | Ibini of ibin * Reg.t * Reg.t * int
  | Movi of Reg.t * int64
  | Fbin of fbin * Reg.t * Reg.t * Reg.t
  | Funary of funary * Reg.t * Reg.t
  | Cmov of cond * Reg.t * Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int * int
  | Store of Reg.t * Reg.t * int * int
  | Branch of cond * Reg.t * label
  | Jump of label
  | Halt

let region_unknown = -1

let defs = function
  | Nop | Store _ | Branch _ | Jump _ | Halt -> []
  | Ibin (_, d, _, _) | Ibini (_, d, _, _) | Movi (d, _)
  | Fbin (_, d, _, _) | Funary (_, d, _) | Cmov (_, d, _, _)
  | Load (d, _, _, _) -> [ d ]

let uses = function
  | Nop | Movi _ | Jump _ | Halt -> []
  | Ibin (_, _, a, b) | Fbin (_, _, a, b) -> [ a; b ]
  | Ibini (_, _, a, _) | Funary (_, _, a) -> [ a ]
  | Cmov (_, d, test, v) -> [ test; v; d ]
  | Load (_, base, _, _) -> [ base ]
  | Store (src, base, _, _) -> [ src; base ]
  | Branch (_, r, _) -> [ r ]

let map_regs f = function
  | Nop -> Nop
  | Ibin (o, d, a, b) -> Ibin (o, f d, f a, f b)
  | Ibini (o, d, a, i) -> Ibini (o, f d, f a, i)
  | Movi (d, v) -> Movi (f d, v)
  | Fbin (o, d, a, b) -> Fbin (o, f d, f a, f b)
  | Funary (o, d, a) -> Funary (o, f d, f a)
  | Cmov (c, d, t, v) -> Cmov (c, f d, f t, f v)
  | Load (d, b, off, rg) -> Load (f d, f b, off, rg)
  | Store (s, b, off, rg) -> Store (f s, f b, off, rg)
  | Branch (c, r, l) -> Branch (c, f r, l)
  | Jump l -> Jump l
  | Halt -> Halt

let is_branch = function Branch _ | Jump _ -> true | _ -> false
let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false
let is_mem op = is_load op || is_store op
let is_fp = function Fbin _ | Funary _ -> true | _ -> false

let latency = function
  | Nop | Movi _ | Jump _ | Halt -> 1
  | Ibin (Mul, _, _, _) | Ibini (Mul, _, _, _) -> 3
  | Ibin ((Div | Rem), _, _, _) | Ibini ((Div | Rem), _, _, _) -> 12
  | Ibin _ | Ibini _ | Cmov _ | Branch _ -> 1
  | Fbin (Fdiv, _, _, _) -> 12
  | Fbin _ -> 4
  | Funary (Fsqrt, _, _) -> 16
  | Funary _ -> 2
  | Load _ -> 1 (* address generation; cache time added by the memory model *)
  | Store _ -> 1

let bool64 b = if b then 1L else 0L

let eval_ibin o a b =
  match o with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then -1L else Int64.div a b
  | Rem -> if Int64.equal b 0L then a else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Andnot -> Int64.logand a (Int64.lognot b)
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Cmpeq -> bool64 (Int64.equal a b)
  | Cmplt -> bool64 (Int64.compare a b < 0)
  | Cmple -> bool64 (Int64.compare a b <= 0)

let eval_fbin o a b =
  match o with
  | Fadd -> Some (a +. b)
  | Fsub -> Some (a -. b)
  | Fmul -> Some (a *. b)
  | Fdiv -> if b = 0.0 then None else Some (a /. b)
  | Fcmplt -> Some (if a < b then 1.0 else 0.0)

let eval_funary o bits =
  match o with
  | Fneg -> Int64.bits_of_float (-.Int64.float_of_bits bits)
  | Fsqrt -> Int64.bits_of_float (sqrt (Float.abs (Int64.float_of_bits bits)))
  | Cvt_if -> Int64.bits_of_float (Int64.to_float bits)

let eval_cond c v =
  match c with
  | Eq -> Int64.equal v 0L
  | Ne -> not (Int64.equal v 0L)
  | Lt -> Int64.compare v 0L < 0
  | Ge -> Int64.compare v 0L >= 0
  | Le -> Int64.compare v 0L <= 0
  | Gt -> Int64.compare v 0L > 0

let ibin_name = function
  | Add -> "addq" | Sub -> "subq" | Mul -> "mulq"
  | Div -> "divq" | Rem -> "remq"
  | And -> "and" | Or -> "bis" | Xor -> "xor" | Andnot -> "andnot"
  | Shl -> "sll" | Shr -> "srl"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"

let fbin_name = function
  | Fadd -> "addt" | Fsub -> "subt" | Fmul -> "mult"
  | Fdiv -> "divt" | Fcmplt -> "cmptlt"

let funary_name = function Fneg -> "fneg" | Fsqrt -> "sqrtt" | Cvt_if -> "cvtqt"

let cond_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge" | Le -> "le" | Gt -> "gt"

let mnemonic = function
  | Nop -> "nop"
  | Ibin (o, _, _, _) -> ibin_name o
  | Ibini (o, _, _, _) -> ibin_name o ^ "i"
  | Movi _ -> "lda"
  | Fbin (o, _, _, _) -> fbin_name o
  | Funary (o, _, _) -> funary_name o
  | Cmov (c, _, _, _) -> "cmov" ^ cond_name c
  | Load (d, _, _, _) -> (match d.Reg.cls with Reg.Cint -> "ldq" | Reg.Cfp -> "ldt")
  | Store (s, _, _, _) -> (match s.Reg.cls with Reg.Cint -> "stq" | Reg.Cfp -> "stt")
  | Branch (c, _, _) -> "b" ^ cond_name c
  | Jump _ -> "br"
  | Halt -> "halt"
