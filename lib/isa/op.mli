(** Operations of the reproduction ISA.

    The ISA is a small Alpha-EV6-flavoured RISC: two-source integer
    arithmetic/logic (register or immediate second source), floating-point
    arithmetic, conditional moves, loads/stores with a base register and a
    small signed offset, compare-against-zero conditional branches, an
    unconditional jump, and [Halt].

    Memory operations carry a [region] tag assigned by the workload
    generator: two accesses in different regions are guaranteed disjoint
    (the compiler's alias oracle, standing in for the paper's observation
    that most accesses are compiler-disambiguable stack traffic). Region
    [region_unknown] may alias anything. *)

type ibin =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Andnot
  | Shl | Shr
  | Cmpeq | Cmplt | Cmple
(** [Div]/[Rem] are signed truncating divide/remainder with the RISC-V
    fault-free convention: division by zero yields quotient -1 and
    remainder = dividend (no trap). Both occupy the long-latency integer
    class alongside [Mul]. *)

type fbin = Fadd | Fsub | Fmul | Fdiv | Fcmplt

type funary = Fneg | Fsqrt | Cvt_if  (** int-to-float convert *)

type cond = Eq | Ne | Lt | Ge | Le | Gt
(** Conditions test a register against zero, Alpha-style. *)

type label = int
(** Branch targets are basic-block identifiers. *)

type t =
  | Nop
  | Ibin of ibin * Reg.t * Reg.t * Reg.t        (** dst, src1, src2 *)
  | Ibini of ibin * Reg.t * Reg.t * int         (** dst, src1, imm *)
  | Movi of Reg.t * int64                       (** dst, literal *)
  | Fbin of fbin * Reg.t * Reg.t * Reg.t        (** dst, src1, src2 *)
  | Funary of funary * Reg.t * Reg.t            (** dst, src *)
  | Cmov of cond * Reg.t * Reg.t * Reg.t        (** dst, test, value: if test
                                                    satisfies cond, dst :=
                                                    value, else unchanged *)
  | Load of Reg.t * Reg.t * int * int           (** dst, base, offset, region *)
  | Store of Reg.t * Reg.t * int * int          (** src, base, offset, region *)
  | Branch of cond * Reg.t * label              (** taken target; fall-through
                                                    is the next block *)
  | Jump of label
  | Halt

val region_unknown : int
(** Region tag that may alias every other region (-1). *)

val defs : t -> Reg.t list
(** Registers written (zero register writes are still listed; the emulator
    discards them). *)

val uses : t -> Reg.t list
(** Registers read. [Cmov] reads its destination (the not-taken value). *)

val map_regs : (Reg.t -> Reg.t) -> t -> t
(** Applies a renaming to every register operand. *)

val is_branch : t -> bool
(** Conditional branches and jumps. *)

val is_mem : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_fp : t -> bool
(** Floating-point compute operation (for int/fp workload accounting). *)

val latency : t -> int
(** Execution latency in cycles, excluding memory-hierarchy time for
    loads (which is added by the cache model). *)

val eval_ibin : ibin -> int64 -> int64 -> int64
val eval_fbin : fbin -> float -> float -> float Option.t
(** [None] signals an arithmetic fault (division by zero), which the
    emulator surfaces as an exception event. [Fcmplt] returns 1.0/0.0. *)

val eval_funary : funary -> int64 -> int64
(** Operates on the raw 64-bit register image ([Cvt_if] reinterprets). *)

val eval_cond : cond -> int64 -> bool

val mnemonic : t -> string
(** Short opcode name, e.g. ["addq"], used by the disassembler. *)
