type block = {
  id : int;
  instrs : Instr.t array;
  fallthrough : int option;
}

type t = {
  blocks : block array;
  entry : int;
  mutable base_cache : int array option;
      (* lazily computed block_base table; blocks are immutable after
         [make], so filling it is idempotent (and hence benign if two
         domains race on the first call) *)
}

let validate blocks entry =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Program.make: no blocks";
  if entry < 0 || entry >= n then invalid_arg "Program.make: bad entry";
  Array.iteri
    (fun i b ->
      if b.id <> i then invalid_arg "Program.make: block ids must be dense";
      let last = Array.length b.instrs - 1 in
      Array.iteri
        (fun j ins ->
          match ins.Instr.op with
          | Op.Branch (_, _, l) | Op.Jump l ->
              if j <> last then invalid_arg "Program.make: transfer not terminal";
              if l < 0 || l >= n then invalid_arg "Program.make: bad branch target"
          | Op.Halt ->
              if j <> last then invalid_arg "Program.make: halt not terminal"
          | _ -> ())
        b.instrs;
      let terminal =
        if last < 0 then None else Some b.instrs.(last).Instr.op
      in
      let needs_fallthrough =
        match terminal with
        | Some (Op.Jump _) | Some Op.Halt -> false
        | Some (Op.Branch _) | Some _ | None -> true
      in
      (match b.fallthrough with
      | Some ft when ft < 0 || ft >= n ->
          invalid_arg "Program.make: bad fallthrough"
      | Some _ -> ()
      | None ->
          if needs_fallthrough then
            invalid_arg
              (Printf.sprintf "Program.make: block %d needs a fallthrough" i)))
    blocks

let make blocks ~entry =
  let blocks = Array.of_list blocks in
  validate blocks entry;
  { blocks; entry; base_cache = None }

let num_blocks t = Array.length t.blocks

let num_static_instrs t =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 t.blocks

let base_table t =
  match t.base_cache with
  | Some a -> a
  | None ->
      let n = Array.length t.blocks in
      let a = Array.make n 0 in
      for i = 1 to n - 1 do
        a.(i) <- a.(i - 1) + Array.length t.blocks.(i - 1).instrs
      done;
      t.base_cache <- Some a;
      a

let block_base t b = (base_table t).(b)

let pc_of t ~block_id ~offset = 4 * (block_base t block_id + offset)

let map_blocks f t =
  let blocks = Array.map f t.blocks in
  validate blocks t.entry;
  { blocks; entry = t.entry; base_cache = None }

let iter_instrs f t =
  Array.iter (fun b -> Array.iteri (fun off ins -> f b off ins) b.instrs) t.blocks

let max_virt_index t =
  let m = ref (-1) in
  iter_instrs
    (fun _ _ ins ->
      List.iter
        (fun r -> if r.Reg.space = Reg.Virt then m := max !m r.Reg.idx)
        (Instr.defs ins @ Instr.uses ins))
    t;
  !m

let pp fmt t =
  Array.iter
    (fun b ->
      Format.fprintf fmt "B%d:%s@\n" b.id
        (match b.fallthrough with
        | Some ft -> Printf.sprintf "  ; falls through to B%d" ft
        | None -> "");
      Array.iter (fun ins -> Format.fprintf fmt "  %a@\n" Instr.pp ins) b.instrs)
    t.blocks
