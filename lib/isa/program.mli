(** Programs as arrays of basic blocks.

    A block's control transfer, if any, is its final instruction: a
    conditional [Branch] falls through to [fallthrough] when not taken, a
    [Jump] always transfers, and [Halt] ends the program. A block whose last
    instruction is none of these falls through unconditionally. *)

type block = {
  id : int;  (** equals its index in [blocks] *)
  instrs : Instr.t array;
  fallthrough : int option;  (** next block when no transfer is taken *)
}

type t = {
  blocks : block array;
  entry : int;
  mutable base_cache : int array option;
      (** internal: memoised {!block_base} table; use {!make} and never
          touch this field directly *)
}

val make : block list -> entry:int -> t
(** Validates: block ids are dense and equal to their index, every branch
    target and fallthrough names an existing block, [Branch]/[Jump]/[Halt]
    appear only in terminal position, and a block either halts, jumps, or
    has a fallthrough. Raises [Invalid_argument] otherwise. *)

val num_blocks : t -> int
val num_static_instrs : t -> int

val block_base : t -> int -> int
(** [block_base t b] is the global index of the first instruction of block
    [b]; instruction addresses are [4 * (block_base + offset)]. O(1) after
    the first call — the table is memoised on the program. *)

val base_table : t -> int array
(** The whole memoised [block_base] table (index = block id). Do not
    mutate. *)

val pc_of : t -> block_id:int -> offset:int -> int
(** Byte address of an instruction, for the I-cache and predictor. *)

val map_blocks : (block -> block) -> t -> t
(** Rebuilds the program applying [f] to every block (ids must be
    preserved); re-validates. *)

val iter_instrs : (block -> int -> Instr.t -> unit) -> t -> unit
(** [iter_instrs f t] calls [f block offset instr] for every static
    instruction. *)

val max_virt_index : t -> int
(** Largest virtual-register index used, or -1 if none. *)

val pp : Format.formatter -> t -> unit
