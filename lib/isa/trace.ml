type event = {
  uid : int;
  pc : int;
  block_id : int;
  offset : int;
  instr : Instr.t;
  deps : (int * bool) array;
  addr : int;
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_jump : bool;
  taken : bool;
  next_pc : int;
  latency : int;
  writes_ext : bool;
  writes_int : bool;
  ext_src_reads : int;
  int_src_reads : int;
  braid_id : int;
  braid_start : bool;
  faulting : bool;
}

type stop_reason = Halted | Steps_exhausted

type dep_tables = {
  dep_count : int array;
  child_off : int array;
  child_uid : int array;
  child_via : Bytes.t;
  last_ext_reader : int array;
  conflict_store : int array;
}

type t = {
  events : event array;
  stop : stop_reason;
  program : Program.t;
  mutable warm_lines : int array option;  (* memo: distinct I-lines *)
  mutable tables : dep_tables option;  (* memo: {!dep_tables} *)
}

let length t = Array.length t.events

let warm_lines t =
  match t.warm_lines with
  | Some a -> a
  | None ->
      (* distinct 64-byte instruction lines in first-touch order (the
         order matters: cache warm-up replays them against LRU state) *)
      let seen = Hashtbl.create 256 in
      let acc = ref [] in
      Array.iter
        (fun e ->
          let line = e.pc land lnot 63 in
          if not (Hashtbl.mem seen line) then begin
            Hashtbl.add seen line ();
            acc := line :: !acc
          end)
        t.events;
      let a = Array.of_list (List.rev !acc) in
      t.warm_lines <- Some a;
      a

let dep_tables t =
  match t.tables with
  | Some tb -> tb
  | None ->
      let events = t.events in
      let n = Array.length events in
      let dep_count = Array.make n 0 in
      (* dependence graph in CSR form: the consumers (children) of
         producer [p] are [child_uid.(child_off.(p))
         .. child_uid.(child_off.(p+1) - 1)], tagged in [child_via] when
         the value flows through a braid-internal register *)
      let child_off = Array.make (n + 1) 0 in
      Array.iteri
        (fun i (e : event) ->
          dep_count.(i) <- Array.length e.deps;
          Array.iter (fun (p, _) -> child_off.(p + 1) <- child_off.(p + 1) + 1) e.deps)
        events;
      for i = 1 to n do
        child_off.(i) <- child_off.(i) + child_off.(i - 1)
      done;
      let total = child_off.(n) in
      let child_uid = Array.make total 0 in
      let child_via = Bytes.make total '\000' in
      let fill = Array.copy child_off in
      let last_ext_reader = Array.make n (-1) in
      (* youngest older same-address store per load, -1 = none *)
      let conflict_store = Array.make n (-1) in
      let last_store = Hashtbl.create 256 in
      Array.iteri
        (fun i (e : event) ->
          Array.iter
            (fun (p, via) ->
              let k = fill.(p) in
              child_uid.(k) <- i;
              if via then Bytes.set child_via k '\001'
              else if i > last_ext_reader.(p) then last_ext_reader.(p) <- i;
              fill.(p) <- k + 1)
            e.deps;
          if e.is_load then (
            match Hashtbl.find_opt last_store e.addr with
            | Some su -> conflict_store.(i) <- su
            | None -> ());
          if e.is_store then Hashtbl.replace last_store e.addr i)
        events;
      let tb =
        { dep_count; child_off; child_uid; child_via; last_ext_reader; conflict_store }
      in
      t.tables <- Some tb;
      tb

let num_branches t =
  Array.fold_left (fun acc e -> if e.is_cond_branch then acc + 1 else acc) 0 t.events

let branch_of e = e.is_cond_branch || e.is_jump
