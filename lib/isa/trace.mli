(** Dynamic instruction traces.

    The timing simulators are execution-driven: the emulator runs the
    program for real and emits one [event] per retired instruction, with
    true register data dependences already resolved to producer uids
    (register renaming makes false dependences irrelevant to timing; memory
    dependences are resolved by the LSQ model from the recorded
    addresses). *)

type event = {
  uid : int;  (** dense dynamic index, starting at 0 *)
  pc : int;  (** byte address of the static instruction *)
  block_id : int;
  offset : int;  (** position within the block *)
  instr : Instr.t;
  deps : (int * bool) array;
      (** register value producers (RAW): [(uid, via_internal)], where
          [via_internal] marks values flowing through a braid-internal
          register (same BEU, never on the bypass network or external
          register file) *)
  addr : int;  (** byte address for loads/stores, -1 otherwise *)
  is_load : bool;
  is_store : bool;
  is_cond_branch : bool;
  is_jump : bool;
  taken : bool;  (** conditional branches: outcome; jumps: true *)
  next_pc : int;  (** address of the next dynamic instruction *)
  latency : int;  (** FU latency, memory time excluded *)
  writes_ext : bool;  (** allocates an external register / rename entry *)
  writes_int : bool;  (** writes a braid-internal register *)
  ext_src_reads : int;  (** external register file reads requested *)
  int_src_reads : int;
  braid_id : int;
  braid_start : bool;
  faulting : bool;  (** arithmetic fault occurred (exception-mode trigger) *)
}

type stop_reason = Halted | Steps_exhausted

(** Static, trace-derived dependence tables, shared by every timing run
    over one trace (all arrays are read-only for consumers). *)
type dep_tables = {
  dep_count : int array;  (** register producers per uid *)
  child_off : int array;
      (** CSR offsets: the consumers of producer [p] are
          [child_uid.(child_off.(p)) .. child_uid.(child_off.(p+1)-1)] *)
  child_uid : int array;
  child_via : Bytes.t;  (** ['\001'] = braid-internal register edge *)
  last_ext_reader : int array;
      (** highest consumer uid reading the value externally, -1 = none *)
  conflict_store : int array;
      (** for a load: uid of the youngest older store to the same
          address, -1 = none (LSQ disambiguation is static in a trace) *)
}

type t = {
  events : event array;
  stop : stop_reason;
  program : Program.t;
  mutable warm_lines : int array option;
      (** memoised {!warm_lines} result; construct with [None] *)
  mutable tables : dep_tables option;
      (** memoised {!dep_tables} result; construct with [None] *)
}

val length : t -> int

val warm_lines : t -> int array
(** Distinct 64-byte instruction-line addresses in first-touch order,
    computed once and memoised (the trace is immutable): repeated timing
    runs over one trace — the perf harness — warm their caches without
    re-deduplicating the event stream. *)

val dep_tables : t -> dep_tables
(** The static dependence structure of the trace, computed once and
    memoised. Timing models treat every array as read-only, so repeated
    runs (the perf harness) share one copy instead of rebuilding the CSR
    graph and disambiguation table per run. *)

val num_branches : t -> int
(** Conditional branches only. *)

val branch_of : event -> bool
(** [is_cond_branch || is_jump]. *)
