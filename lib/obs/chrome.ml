module Json = Braid_util.Json

let default_label uid = Printf.sprintf "uid %d" uid

let default_track_name track =
  if track < 0 then "front-end" else Printf.sprintf "BEU %d" track

(* tids must be distinct per track; shift by one so the front end (-1)
   gets tid 0 and BEU k gets tid k+1, keeping every tid non-negative *)
let tid_of track = track + 1

let export ?(label = default_label) ?(track_name = default_track_name) tracer =
  let evs = Tracer.events tracer in
  let b = Buffer.create 65536 in
  let first = ref true in
  let emit fields =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Json.escape_string k);
        Buffer.add_char b ':';
        Buffer.add_string b v)
      fields;
    Buffer.add_char b '}'
  in
  let str s = Json.escape_string s in
  let int n = string_of_int n in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  (* thread-name metadata: one named track per BEU/FU seen in the window *)
  let tracks =
    List.sort_uniq compare (List.map Tracer.track_of evs)
  in
  List.iter
    (fun track ->
      emit
        [
          ("name", str "thread_name");
          ("ph", str "M");
          ("pid", "0");
          ("tid", int (tid_of track));
          ("args", Printf.sprintf "{\"name\":%s}" (str (track_name track)));
        ])
    tracks;
  List.iter
    (fun ev ->
      match ev with
      | Tracer.Stage { cycle; uid; stage; track } ->
          emit
            [
              ("name", str (Tracer.stage_name stage));
              ("cat", str "stage");
              ("ph", str "i");
              ("s", str "t");
              ("ts", int cycle);
              ("pid", "0");
              ("tid", int (tid_of track));
              ("args", Printf.sprintf "{\"uid\":%d}" uid);
            ]
      | Tracer.Exec { uid; track; start; dur } ->
          emit
            [
              ("name", str (label uid));
              ("cat", str "exec");
              ("ph", str "X");
              ("ts", int start);
              ("dur", int (max 1 dur));
              ("pid", "0");
              ("tid", int (tid_of track));
              ("args", Printf.sprintf "{\"uid\":%d}" uid);
            ]
      | Tracer.Stall { cycle; track; reason } ->
          emit
            [
              ("name", str ("stall: " ^ reason));
              ("cat", str "stall");
              ("ph", str "X");
              ("ts", int cycle);
              ("dur", "1");
              ("pid", "0");
              ("tid", int (tid_of track));
              ("args", Printf.sprintf "{\"reason\":%s}" (str reason));
            ]
      | Tracer.Span { name; cat; track; start; dur } ->
          emit
            [
              ("name", str name);
              ("cat", str cat);
              ("ph", str "X");
              ("ts", int start);
              ("dur", int (max 1 dur));
              ("pid", "0");
              ("tid", int (tid_of track));
              ("args", "{}");
            ])
    evs;
  Buffer.add_string b "]}\n";
  Buffer.contents b
