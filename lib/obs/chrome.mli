(** Chrome [trace_event] export of a tracer's retained window.

    The output is the JSON Object Format understood by [chrome://tracing]
    and Perfetto: one process, one named thread per track (front end plus
    one per BEU/FU), instruction execution as duration ("X") events, stage
    crossings as thread-scoped instants, stalls and cache-miss fills as
    short duration events with their reason in [args]. One simulated cycle
    maps to one microsecond of trace time. *)

val export :
  ?label:(int -> string) ->
  ?track_name:(int -> string) ->
  Tracer.t ->
  string
(** [label uid] names an instruction's execution span (default
    ["uid <n>"]); [track_name t] names a track (default ["front-end"] for
    [-1], ["BEU <t>"] otherwise). The result is a complete JSON document
    ending in a newline. *)
