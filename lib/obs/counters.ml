type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  bounds : int array;
  counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable observations : int;
  mutable sum : int;
}

type item = Counter_item of counter | Histogram_item of histogram

type t = { mutable items : item list (* newest first *) }

let create () = { items = [] }

let dummy_counter name = { c_name = name; count = 0 }

let check_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Counters.histogram %s: empty bounds" name);
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg
        (Printf.sprintf "Counters.histogram %s: bounds must be strictly ascending" name)
  done

let dummy_histogram name ~bounds =
  check_bounds name bounds;
  {
    h_name = name;
    bounds = Array.copy bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    observations = 0;
    sum = 0;
  }

let item_name = function Counter_item c -> c.c_name | Histogram_item h -> h.h_name

let counter t name =
  let rec find = function
    | [] ->
        let c = dummy_counter name in
        t.items <- Counter_item c :: t.items;
        c
    | Counter_item c :: _ when String.equal c.c_name name -> c
    | Histogram_item h :: _ when String.equal h.h_name name ->
        invalid_arg (Printf.sprintf "Counters.counter %s: registered as a histogram" name)
    | _ :: rest -> find rest
  in
  find t.items

let histogram t name ~bounds =
  let rec find = function
    | [] ->
        let h = dummy_histogram name ~bounds in
        t.items <- Histogram_item h :: t.items;
        h
    | Histogram_item h :: _ when String.equal h.h_name name ->
        if h.bounds <> bounds then
          invalid_arg
            (Printf.sprintf "Counters.histogram %s: re-registered with different bounds"
               name);
        h
    | Counter_item c :: _ when String.equal c.c_name name ->
        invalid_arg (Printf.sprintf "Counters.histogram %s: registered as a counter" name)
    | _ :: rest -> find rest
  in
  find t.items

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

let observe h v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.counts.(b) <- h.counts.(b) + 1

type value =
  | Count of int
  | Hist of { bounds : int array; counts : int array; observations : int; sum : int }

let value_of = function
  | Counter_item c -> Count c.count
  | Histogram_item h ->
      Hist
        {
          bounds = Array.copy h.bounds;
          counts = Array.copy h.counts;
          observations = h.observations;
          sum = h.sum;
        }

let snapshot t = List.rev_map (fun it -> (item_name it, value_of it)) t.items

let find t name =
  List.find_map
    (fun it -> if String.equal (item_name it) name then Some (value_of it) else None)
    t.items
