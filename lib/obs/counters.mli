(** Named monotonic counters and fixed-bucket histograms, grouped in a
    registry that snapshots to an alist in registration order.

    Handles are plain mutable records, so the hot-path cost of an update is
    one store; code that instruments a structure keeps the handle and never
    touches the registry again. A handle obtained from {!dummy_counter} /
    {!dummy_histogram} behaves identically but belongs to no registry —
    instrumented code can update it unconditionally while the observability
    sink is disabled without publishing anything. *)

type counter
type histogram

type t
(** A registry. Not thread-safe: each simulation owns its own. *)

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or returns the already-registered) counter under [name].
    Raises [Invalid_argument] if [name] is taken by a histogram. *)

val histogram : t -> string -> bounds:int array -> histogram
(** [bounds] are inclusive upper bucket bounds, strictly ascending and
    non-empty; one extra overflow bucket catches larger values. Raises
    [Invalid_argument] on invalid bounds, a name taken by a counter, or a
    re-registration with different bounds. *)

val dummy_counter : string -> counter
(** An unregistered counter: updates are accepted and discarded. *)

val dummy_histogram : string -> bounds:int array -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val observe : histogram -> int -> unit

type value =
  | Count of int
  | Hist of { bounds : int array; counts : int array; observations : int; sum : int }
      (** [counts] has one entry per bound plus the overflow bucket. *)

val snapshot : t -> (string * value) list
(** Current values, in registration order. Arrays are copies. *)

val find : t -> string -> value option
