(** A minimal self-contained JSON tree: enough to validate and inspect the
    Chrome traces and experiment documents this tree emits, without an
    external JSON dependency. Shared by the test suite, the CI smoke check
    and the [braidsim trace --chrome] self-validation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict: the whole input must be one JSON value (plus whitespace).
    The error mentions the byte offset. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val to_string : t -> string
(** Serializer (compact); [parse (to_string v)] round-trips. NaN and
    infinities serialize as [null]. *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string literal. *)
