type t = {
  is_enabled : bool;
  registry : Counters.t;
  prefix : string;  (* prepended to every counter/histogram name *)
  mutable attached : Tracer.t option;
}

let disabled =
  { is_enabled = false; registry = Counters.create (); prefix = ""; attached = None }

let create () =
  { is_enabled = true; registry = Counters.create (); prefix = ""; attached = None }

let enabled t = t.is_enabled
let counters t = t.registry

let counter t name =
  if t.is_enabled then Counters.counter t.registry (t.prefix ^ name)
  else Counters.dummy_counter name

let histogram t name ~bounds =
  if t.is_enabled then Counters.histogram t.registry (t.prefix ^ name) ~bounds
  else Counters.dummy_histogram name ~bounds

let scoped t prefix =
  if t.is_enabled then { t with prefix = t.prefix ^ prefix } else t

let attach_tracer t tr = if t.is_enabled then t.attached <- Some tr
let detach_tracer t = t.attached <- None
let tracer t = t.attached
