(** The hook the timing model talks to: a counters registry plus an
    optionally attached event tracer.

    The disabled sink ({!disabled}) is the default everywhere. It hands out
    dummy (unregistered) counter handles, so instrumentation updates them
    unconditionally — one dead store, no branch — and nothing is ever
    published; it is shared across domains but never mutated. Event
    construction is the only costly part of tracing, so call sites must
    match on {!tracer} and build events only under [Some]. *)

type t

val disabled : t
(** The shared no-op sink: counters are dummies, no tracer can attach. *)

val create : unit -> t
(** A live sink with a fresh counters registry and no tracer. *)

val enabled : t -> bool

val counters : t -> Counters.t
(** The registry. For [disabled] this is an empty registry that no handle
    ever joins. *)

val counter : t -> string -> Counters.counter
(** Registered handle on a live sink; a dummy on [disabled]. *)

val histogram : t -> string -> bounds:int array -> Counters.histogram

val scoped : t -> string -> t
(** [scoped t prefix] shares [t]'s registry (and its currently attached
    tracer) but prepends [prefix] to every counter and histogram name it
    hands out — e.g. ["core0."] namespaces one CMP core's counters
    inside the common registry. Prefixes compose. Attach any tracer
    before scoping: the scope snapshots the attachment. [disabled]
    scopes to itself. *)

val attach_tracer : t -> Tracer.t -> unit
(** No-op on [disabled]. *)

val detach_tracer : t -> unit
val tracer : t -> Tracer.t option
