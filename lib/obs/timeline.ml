type row = {
  uid : int;
  track : int;
  fetch : int;
  dispatch : int;
  issue : int;
  complete : int;
  commit : int;
}

type mut_row = {
  mutable m_track : int;
  mutable m_fetch : int;
  mutable m_dispatch : int;
  mutable m_issue : int;
  mutable m_complete : int;
  mutable m_commit : int;
}

let rows_of_events evs =
  let tbl : (int, mut_row) Hashtbl.t = Hashtbl.create 256 in
  let row uid =
    match Hashtbl.find_opt tbl uid with
    | Some r -> r
    | None ->
        let r =
          {
            m_track = -1;
            m_fetch = -1;
            m_dispatch = -1;
            m_issue = -1;
            m_complete = -1;
            m_commit = -1;
          }
        in
        Hashtbl.add tbl uid r;
        r
  in
  List.iter
    (function
      | Tracer.Stage { cycle; uid; stage; track } ->
          let r = row uid in
          if track >= 0 then r.m_track <- track;
          (match stage with
          | Tracer.Fetch -> r.m_fetch <- cycle
          | Tracer.Dispatch -> r.m_dispatch <- cycle
          | Tracer.Issue -> r.m_issue <- cycle
          | Tracer.Complete -> r.m_complete <- cycle
          | Tracer.Commit -> r.m_commit <- cycle)
      | Tracer.Exec { uid; track; start; dur } ->
          let r = row uid in
          if track >= 0 then r.m_track <- track;
          r.m_issue <- start;
          r.m_complete <- start + dur
      | Tracer.Stall _ | Tracer.Span _ -> ())
    evs;
  Hashtbl.fold
    (fun uid (r : mut_row) acc ->
      {
        uid;
        track = r.m_track;
        fetch = r.m_fetch;
        dispatch = r.m_dispatch;
        issue = r.m_issue;
        complete = r.m_complete;
        commit = r.m_commit;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.uid b.uid)

let cell r c =
  (* later stages win when two boundaries land on the same cycle *)
  if c = r.commit then 'C'
  else if c = r.complete then 'X'
  else if c = r.issue then 'I'
  else if c = r.dispatch then 'D'
  else if c = r.fetch then 'F'
  else if r.issue >= 0 && r.complete >= 0 && c > r.issue && c < r.complete then '='
  else if r.dispatch >= 0 && r.issue >= 0 && c > r.dispatch && c < r.issue then '.'
  else if r.fetch >= 0 && r.dispatch >= 0 && c > r.fetch && c < r.dispatch then '.'
  else if r.complete >= 0 && r.commit >= 0 && c > r.complete && c < r.commit then '-'
  else ' '

let in_window r lo hi =
  let stages = [ r.fetch; r.dispatch; r.issue; r.complete; r.commit ] in
  List.exists (fun c -> c >= lo && c < hi) stages
  || (* an instruction spanning the whole window *)
  (let first = List.fold_left (fun a c -> if c >= 0 then min a c else a) max_int stages in
   let last = List.fold_left max (-1) stages in
   first <> max_int && first < lo && last >= hi)

let render ?(from_cycle = 0) ?(cycles = 64) ~label evs =
  let lo = from_cycle and hi = from_cycle + max 1 cycles in
  let rows = List.filter (fun r -> in_window r lo hi) (rows_of_events evs) in
  if rows = [] then ""
  else begin
    let b = Buffer.create 4096 in
    let left_width = 38 in
    let pad s w =
      if String.length s >= w then String.sub s 0 w
      else s ^ String.make (w - String.length s) ' '
    in
    (* ruler: a tick every 10 cycles *)
    let head = Printf.sprintf "%6s %-5s %s" "uid" "beu" (pad "instruction" left_width) in
    Buffer.add_string b head;
    Buffer.add_string b "|cycle ";
    Buffer.add_string b (string_of_int lo);
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make (String.length head) ' ');
    Buffer.add_char b '|';
    for c = lo to hi - 1 do
      Buffer.add_char b (if c mod 10 = 0 then '+' else if c mod 5 = 0 then '\'' else ' ')
    done;
    Buffer.add_char b '\n';
    List.iter
      (fun r ->
        let beu = if r.track >= 0 then string_of_int r.track else "-" in
        Buffer.add_string b
          (Printf.sprintf "%6d %-5s %s|" r.uid beu (pad (label r.uid) left_width));
        for c = lo to hi - 1 do
          Buffer.add_char b (cell r c)
        done;
        Buffer.add_char b '\n')
      rows;
    Buffer.contents b
  end
