(** Konata-style ASCII pipeline diagram assembled from tracer events.

    Each instruction that has any recorded activity inside the cycle
    window gets one row; columns are cycles. Letters mark stage
    boundaries ([F]etch, [D]ispatch, [I]ssue, e[X]ecute-complete,
    [C]ommit), ['.'] fills waiting-to-issue gaps, ['='] fills execution,
    ['-'] fills the completed-but-not-committed tail. *)

type row = {
  uid : int;
  track : int;  (** BEU index, -1 when unknown/front-end only *)
  fetch : int;  (** -1 when the event fell outside the tracer window *)
  dispatch : int;
  issue : int;
  complete : int;
  commit : int;
}

val rows_of_events : Tracer.event list -> row list
(** Per-instruction stage cycles recovered from the event stream, in uid
    order. *)

val render :
  ?from_cycle:int -> ?cycles:int -> label:(int -> string) -> Tracer.event list -> string
(** The diagram for cycles [\[from_cycle, from_cycle + cycles)]. [label]
    renders the left-hand instruction column. Returns [""] when no
    instruction touches the window. *)
