type stage = Fetch | Dispatch | Issue | Complete | Commit

let stage_name = function
  | Fetch -> "fetch"
  | Dispatch -> "dispatch"
  | Issue -> "issue"
  | Complete -> "complete"
  | Commit -> "commit"

let stage_letter = function
  | Fetch -> 'F'
  | Dispatch -> 'D'
  | Issue -> 'I'
  | Complete -> 'X'
  | Commit -> 'C'

type event =
  | Stage of { cycle : int; uid : int; stage : stage; track : int }
  | Exec of { uid : int; track : int; start : int; dur : int }
  | Stall of { cycle : int; track : int; reason : string }
  | Span of { name : string; cat : string; track : int; start : int; dur : int }

type t = {
  buf : event option array;
  mutable next : int;  (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped

let record t ev =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod cap

let events t =
  let cap = Array.length t.buf in
  let start = (t.next - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod cap) with Some e -> e | None -> assert false)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0

let track_of = function
  | Stage { track; _ } | Exec { track; _ } | Stall { track; _ } | Span { track; _ } ->
      track
