(** Bounded ring buffer of typed per-cycle pipeline events.

    A tracer only exists when someone attached one to the observability
    sink, so the simulator's disabled path never constructs an event. At
    capacity the oldest events are dropped (and counted), keeping a run's
    memory bounded no matter how long it is: the buffer always holds the
    most recent window.

    Tracks identify where an event happened: [-1] is the front end
    (fetch/dispatch), [0..n-1] the BEU (or cluster/FU group) index. *)

type stage = Fetch | Dispatch | Issue | Complete | Commit

val stage_name : stage -> string
val stage_letter : stage -> char

type event =
  | Stage of { cycle : int; uid : int; stage : stage; track : int }
      (** One instruction crossed a pipeline-stage boundary. *)
  | Exec of { uid : int; track : int; start : int; dur : int }
      (** Issue-to-completion span of one instruction on one BEU/FU. *)
  | Stall of { cycle : int; track : int; reason : string }
      (** A structure refused work this cycle. *)
  | Span of { name : string; cat : string; track : int; start : int; dur : int }
      (** A multi-cycle occupancy, e.g. a cache-miss fill. *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events evicted because the buffer was full. *)

val record : t -> event -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val track_of : event -> int
