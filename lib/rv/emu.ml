type stop =
  | Exited of int
  | Break
  | Out_of_fuel
  | Fault of { pc : int; reason : string }

type outcome = {
  stop : stop;
  regs : int array;
  steps : int;
  output : string;
  image : (int * int) list;
}

let default_tohost = 0xF000
let default_max_steps = 1_000_000

let stop_to_string = function
  | Exited code -> Printf.sprintf "exited %d" code
  | Break -> "ebreak"
  | Out_of_fuel -> "step budget exhausted"
  | Fault { pc; reason } -> Printf.sprintf "fault at 0x%x: %s" pc reason

exception Trap of stop

(* Arithmetic for the interpreted engine. The compiled engine ([run_fast])
   re-states each operator inline in its generated closures — an indirect
   call per instruction costs more than the arithmetic — and the
   differential tests (fixtures, random programs) hold the two engines to
   identical outcomes, so the duplication cannot drift silently. *)
let s32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu_eval (o : Insn.alu) a b =
  match o with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Sll -> a lsl (b land 31)
  | Insn.Slt -> if s32 a < s32 b then 1 else 0
  | Insn.Sltu -> if a < b then 1 else 0
  | Insn.Xor -> a lxor b
  | Insn.Or -> a lor b
  | Insn.And -> a land b
  | Insn.Srl -> a lsr (b land 31)
  | Insn.Sra -> s32 a asr (b land 31)

let muldiv_eval (o : Insn.muldiv) a b =
  let sa = s32 a and sb = s32 b in
  match o with
  | Insn.Mul -> sa * sb
  | Insn.Mulh -> (sa * sb) asr 32
  | Insn.Mulhsu ->
      Int64.to_int
        (Int64.shift_right (Int64.mul (Int64.of_int sa) (Int64.of_int b)) 32)
  | Insn.Mulhu ->
      Int64.to_int
        (Int64.shift_right_logical
           (Int64.mul (Int64.of_int a) (Int64.of_int b))
           32)
  | Insn.Div ->
      if sb = 0 then -1
      else if sa = -0x80000000 && sb = -1 then sa
      else sa / sb
  | Insn.Divu -> if b = 0 then 0xFFFFFFFF else a / b
  | Insn.Rem ->
      if sb = 0 then sa
      else if sa = -0x80000000 && sb = -1 then 0
      else sa mod sb
  | Insn.Remu -> if b = 0 then a else a mod b

let branch_taken (c : Insn.bcond) a b =
  match c with
  | Insn.Beq -> a = b
  | Insn.Bne -> a <> b
  | Insn.Blt -> s32 a < s32 b
  | Insn.Bge -> s32 a >= s32 b
  | Insn.Bltu -> a < b
  | Insn.Bgeu -> a >= b

let run ?(max_steps = default_max_steps) ?(tohost = default_tohost)
    (img : Image.t) =
  let mem : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Image.iter_words (fun addr w -> if w <> 0 then Hashtbl.replace mem addr w) img;
  let regs = Array.make 32 0 in
  let output = Buffer.create 16 in
  let pc = ref img.Image.entry in
  let steps = ref 0 in
  let mask32 = Insn.mask32 in
  let fault reason = raise (Trap (Fault { pc = !pc; reason })) in
  let rd_word addr =
    if addr < 0 || addr >= Image.max_addr then
      fault (Printf.sprintf "address 0x%x out of range" addr)
    else match Hashtbl.find_opt mem (addr land lnot 3) with
      | Some v -> v
      | None -> 0
  in
  let wr_word addr v =
    if addr < 0 || addr >= Image.max_addr then
      fault (Printf.sprintf "address 0x%x out of range" addr);
    let v = mask32 v in
    if v = 0 then Hashtbl.remove mem addr else Hashtbl.replace mem addr v;
    if addr = tohost then
      if v land 1 = 1 then raise (Trap (Exited (v lsr 1)))
      else if v land 0xFF = 2 then
        Buffer.add_char output (Char.chr ((v lsr 8) land 0xFF))
  in
  let load w addr =
    let aligned n what =
      if addr land (n - 1) <> 0 then
        fault (Printf.sprintf "misaligned %s at 0x%x" what addr)
    in
    let word () = rd_word (addr land lnot 3) in
    let shift = (addr land 3) lsl 3 in
    match (w : Insn.width) with
    | Insn.W -> aligned 4 "lw"; word ()
    | Insn.Hu -> aligned 2 "lh"; (word () lsr shift) land 0xFFFF
    | Insn.H -> aligned 2 "lh"; mask32 (Insn.sext (word () lsr shift) 16)
    | Insn.Bu -> (word () lsr shift) land 0xFF
    | Insn.B -> mask32 (Insn.sext (word () lsr shift) 8)
  in
  let store w addr v =
    let shift = (addr land 3) lsl 3 in
    let merge bits =
      let mask = ((1 lsl bits) - 1) lsl shift in
      let old = rd_word (addr land lnot 3) in
      wr_word (addr land lnot 3)
        ((old land lnot mask) lor ((v lsl shift) land mask))
    in
    match (w : Insn.width) with
    | Insn.W ->
        if addr land 3 <> 0 then
          fault (Printf.sprintf "misaligned sw at 0x%x" addr);
        wr_word addr v
    | Insn.H ->
        if addr land 1 <> 0 then
          fault (Printf.sprintf "misaligned sh at 0x%x" addr);
        merge 16
    | Insn.B -> merge 8
    | Insn.Bu | Insn.Hu -> assert false
  in
  let decode_cache : (int, (Insn.t, Insn.error) result) Hashtbl.t =
    Hashtbl.create 256
  in
  let decode w =
    match Hashtbl.find_opt decode_cache w with
    | Some r -> r
    | None ->
        let r = Insn.decode w in
        Hashtbl.add decode_cache w r;
        r
  in
  let get r = regs.(r) in
  let set r v = if r <> 0 then regs.(r) <- mask32 v in
  let stop =
    try
      while !steps < max_steps do
        if !pc land 3 <> 0 then fault "misaligned pc";
        if not (Image.in_range img !pc) then
          fault "pc outside the loaded image";
        let word = rd_word !pc in
        let insn =
          match decode word with
          | Ok i -> i
          | Error e -> fault (Insn.error_to_string e)
        in
        incr steps;
        let next = ref (!pc + 4) in
        (match insn with
        | Insn.Lui (rd, imm) -> set rd (imm lsl 12)
        | Insn.Auipc (rd, imm) -> set rd (!pc + (imm lsl 12))
        | Insn.Jal (rd, off) ->
            set rd (!pc + 4);
            next := mask32 (!pc + off)
        | Insn.Jalr (rd, rs1, imm) ->
            let t = !pc + 4 in
            next := mask32 (get rs1 + imm) land lnot 1;
            set rd t
        | Insn.Branch (c, rs1, rs2, off) ->
            if branch_taken c (get rs1) (get rs2) then
              next := mask32 (!pc + off)
        | Insn.Load (w, rd, rs1, imm) ->
            set rd (load w (mask32 (get rs1 + imm)))
        | Insn.Store (w, rs2, rs1, imm) ->
            store w (mask32 (get rs1 + imm)) (get rs2)
        | Insn.Alui (o, rd, rs1, imm) -> set rd (alu_eval o (get rs1) (Insn.mask32 imm))
        | Insn.Alu (o, rd, rs1, rs2) -> set rd (alu_eval o (get rs1) (get rs2))
        | Insn.Muldiv (o, rd, rs1, rs2) -> set rd (muldiv_eval o (get rs1) (get rs2))
        | Insn.Fence -> ()
        | Insn.Ecall -> raise (Trap (Exited (get 10)))
        | Insn.Ebreak -> raise (Trap Break));
        pc := !next
      done;
      Out_of_fuel
    with Trap s -> s
  in
  let image =
    Hashtbl.fold (fun a v acc -> (a, v) :: acc) mem []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { stop; regs; steps = !steps; output = Buffer.contents output; image }

(* Compiled fast path: the image is pre-decoded into one closure per word,
   chained by direct tail calls exactly like [Braid_isa.Emulator.Compiled]
   — a closure takes the remaining fuel, applies the instruction and
   tail-calls its successor's closure with [fuel - 1]; at [fuel = 0] it
   unwinds by returning 0. Memory is a dense int array over the low 1 MiB
   (every fixture fits) with a hash-table spill above it, removing the
   two table lookups (fetch and decode cache) [run] pays per instruction.

   The outcome is byte-identical to [run]'s on every program: fault
   messages, fault pcs, step counts at traps, the tohost store-then-trap
   ordering, and final register/memory images all mirror the interpreted
   code paths, and writes into the image range invalidate the pre-decoded
   closure of the stored-to word so self-modifying programs re-decode
   (the interpreter re-fetches every step, so it is naturally coherent). *)
let run_fast ?(max_steps = default_max_steps) ?(tohost = default_tohost)
    (img : Image.t) =
  let base = img.Image.base in
  let len = Image.size img in
  let nwords = len lsr 2 in
  let mask32 = Insn.mask32 in
  (* covers every fixture's code, data, stack, and tohost with headroom;
     accesses above it fall back to the spill table, just slower *)
  let dense_bytes = 0x40000 in
  let dense = Array.make (dense_bytes lsr 2) 0 in
  let spill : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Image.iter_words
    (fun addr w ->
      if w <> 0 then
        if addr < dense_bytes then dense.(addr lsr 2) <- w
        else Hashtbl.replace spill addr w)
    img;
  (* slot 32 is a write sink for x0 destinations; slot 0 is never
     written, so reads of x0 stay 0 without a branch *)
  let regs = Array.make 33 0 in
  let output = Buffer.create 16 in
  (* remaining budget at the instant a trap unwound the chain; the
     trapping instruction itself has already been counted *)
  let trap_rem = ref max_steps in
  let code : (int -> int) array = Array.make (nwords + 1) (fun _ -> 0) in
  let invalidate = ref (fun (_ : int) -> ()) in
  let fault_at pc rem reason =
    trap_rem := rem;
    raise (Trap (Fault { pc; reason }))
  in
  (* [rd_word]/[wr_word] mirror [run]'s, including fault messages and the
     update-then-trap tohost ordering; callers pass word-aligned
     addresses, as there *)
  let rd_word pc rem addr =
    if addr < 0 || addr >= Image.max_addr then
      fault_at pc rem (Printf.sprintf "address 0x%x out of range" addr)
    else if addr < dense_bytes then Array.unsafe_get dense (addr lsr 2)
    else match Hashtbl.find_opt spill addr with Some v -> v | None -> 0
  in
  let tohost_sig rem v =
    if v land 1 = 1 then begin
      trap_rem := rem;
      raise (Trap (Exited (v lsr 1)))
    end
    else if v land 0xFF = 2 then
      Buffer.add_char output (Char.chr ((v lsr 8) land 0xFF))
  in
  let wr_word pc rem addr v =
    if addr < 0 || addr >= Image.max_addr then
      fault_at pc rem (Printf.sprintf "address 0x%x out of range" addr);
    let v = mask32 v in
    (if addr < dense_bytes then Array.unsafe_set dense (addr lsr 2) v
     else if v = 0 then Hashtbl.remove spill addr
     else Hashtbl.replace spill addr v);
    if addr >= base && addr < base + len then !invalidate ((addr - base) lsr 2);
    if addr = tohost then tohost_sig rem v
  in
  (* dynamic control transfer: the fuel test precedes the pc checks, as
     the interpreter's loop condition does, so exhaustion at a bad pc is
     [Out_of_fuel], not a fault *)
  let goto pc rem =
    if rem = 0 then 0
    else if pc land 3 <> 0 then fault_at pc rem "misaligned pc"
    else if pc < base || pc >= base + len then
      fault_at pc rem "pc outside the loaded image"
    else (Array.unsafe_get code ((pc - base) lsr 2)) rem
  in
  (* a statically-known transfer target resolves its pc checks now: valid
     targets chain straight into the code array, invalid ones become the
     fault the interpreter would raise when fetching there *)
  let static_succ t : int -> int =
    if t land 3 <> 0 then fun rem ->
      if rem = 0 then 0 else fault_at t rem "misaligned pc"
    else if t < base || t >= base + len then fun rem ->
      if rem = 0 then 0 else fault_at t rem "pc outside the loaded image"
    else
      let ti = (t - base) lsr 2 in
      fun rem -> (Array.unsafe_get code ti) rem
  in
  let wd rd = if rd = 0 then 32 else rd in
  let build_one idx : int -> int =
    let pc = base + (idx lsl 2) in
    let word =
      if pc < dense_bytes then dense.(pc lsr 2)
      else match Hashtbl.find_opt spill pc with Some v -> v | None -> 0
    in
    match Insn.decode word with
    | Error e ->
        (* decode faults precede the step count, so [rem] is the full
           entry fuel *)
        let msg = Insn.error_to_string e in
        fun fuel -> if fuel = 0 then 0 else fault_at pc fuel msg
    | Ok insn -> (
        let ni = idx + 1 in
        match insn with
        | Insn.Lui (rd, imm) ->
            let rd = wd rd and v = mask32 (imm lsl 12) in
            fun fuel ->
              if fuel = 0 then 0
              else begin
                Array.unsafe_set regs rd v;
                (Array.unsafe_get code ni) (fuel - 1)
              end
        | Insn.Auipc (rd, imm) ->
            let rd = wd rd and v = mask32 (pc + (imm lsl 12)) in
            fun fuel ->
              if fuel = 0 then 0
              else begin
                Array.unsafe_set regs rd v;
                (Array.unsafe_get code ni) (fuel - 1)
              end
        | Insn.Jal (rd, off) ->
            let rd = wd rd
            and ret = mask32 (pc + 4)
            and tk = static_succ (mask32 (pc + off)) in
            fun fuel ->
              if fuel = 0 then 0
              else begin
                Array.unsafe_set regs rd ret;
                tk (fuel - 1)
              end
        | Insn.Jalr (rd, rs1, imm) ->
            let rd = wd rd and ret = mask32 (pc + 4) in
            fun fuel ->
              if fuel = 0 then 0
              else begin
                (* the target reads rs1 before rd is written, as in [run] *)
                let t = mask32 (Array.unsafe_get regs rs1 + imm) land lnot 1 in
                Array.unsafe_set regs rd ret;
                goto t (fuel - 1)
              end
        | Insn.Branch (c, rs1, rs2, off) ->
            (* each condition inlined, like the ALU arms *)
            let tk = static_succ (mask32 (pc + off)) in
            (match c with
            | Insn.Beq ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if Array.unsafe_get regs rs1 = Array.unsafe_get regs rs2
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1)
            | Insn.Bne ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if Array.unsafe_get regs rs1 <> Array.unsafe_get regs rs2
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1)
            | Insn.Blt ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if
                    s32 (Array.unsafe_get regs rs1)
                    < s32 (Array.unsafe_get regs rs2)
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1)
            | Insn.Bge ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if
                    s32 (Array.unsafe_get regs rs1)
                    >= s32 (Array.unsafe_get regs rs2)
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1)
            | Insn.Bltu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if Array.unsafe_get regs rs1 < Array.unsafe_get regs rs2
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1)
            | Insn.Bgeu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else if Array.unsafe_get regs rs1 >= Array.unsafe_get regs rs2
                  then tk (fuel - 1)
                  else (Array.unsafe_get code ni) (fuel - 1))
        | Insn.Load (w, rd, rs1, imm) ->
            (* width-specialised, dense-memory hit inlined; stored words
               are always 32-bit clean, so [W] needs no re-mask (sub-word
               extracts mask as part of their shift/sign-extend) *)
            let rd = wd rd in
            (match w with
            | Insn.W ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    if addr land 3 <> 0 then
                      fault_at pc (fuel - 1)
                        (Printf.sprintf "misaligned lw at 0x%x" addr);
                    Array.unsafe_set regs rd
                      (if addr < dense_bytes then
                         Array.unsafe_get dense (addr lsr 2)
                       else rd_word pc (fuel - 1) addr);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.H ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    if addr land 1 <> 0 then
                      fault_at pc (fuel - 1)
                        (Printf.sprintf "misaligned lh at 0x%x" addr);
                    let a = addr land lnot 3 in
                    let w =
                      if a < dense_bytes then Array.unsafe_get dense (a lsr 2)
                      else rd_word pc (fuel - 1) a
                    in
                    Array.unsafe_set regs rd
                      (mask32
                         (Insn.sext (w lsr ((addr land 3) lsl 3)) 16));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Hu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    if addr land 1 <> 0 then
                      fault_at pc (fuel - 1)
                        (Printf.sprintf "misaligned lh at 0x%x" addr);
                    let a = addr land lnot 3 in
                    let w =
                      if a < dense_bytes then Array.unsafe_get dense (a lsr 2)
                      else rd_word pc (fuel - 1) a
                    in
                    Array.unsafe_set regs rd
                      ((w lsr ((addr land 3) lsl 3)) land 0xFFFF);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.B ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    let a = addr land lnot 3 in
                    let w =
                      if a < dense_bytes then Array.unsafe_get dense (a lsr 2)
                      else rd_word pc (fuel - 1) a
                    in
                    Array.unsafe_set regs rd
                      (mask32 (Insn.sext (w lsr ((addr land 3) lsl 3)) 8));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Bu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    let a = addr land lnot 3 in
                    let w =
                      if a < dense_bytes then Array.unsafe_get dense (a lsr 2)
                      else rd_word pc (fuel - 1) a
                    in
                    Array.unsafe_set regs rd
                      ((w lsr ((addr land 3) lsl 3)) land 0xFF);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end)
        | Insn.Store (w, rs2, rs1, imm) ->
            (match w with
            | Insn.W ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    if addr land 3 <> 0 then
                      fault_at pc (fuel - 1)
                        (Printf.sprintf "misaligned sw at 0x%x" addr);
                    let v = Array.unsafe_get regs rs2 in
                    (if addr < dense_bytes then begin
                       (* [wr_word]'s dense branch, with its store /
                          invalidate / tohost order preserved *)
                       Array.unsafe_set dense (addr lsr 2) v;
                       if addr >= base && addr < base + len then
                         !invalidate ((addr - base) lsr 2);
                       if addr = tohost then tohost_sig (fuel - 1) v
                     end
                     else wr_word pc (fuel - 1) addr v);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.H ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let rem = fuel - 1 in
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    if addr land 1 <> 0 then
                      fault_at pc rem
                        (Printf.sprintf "misaligned sh at 0x%x" addr);
                    let shift = (addr land 3) lsl 3 in
                    let mask = 0xFFFF lsl shift in
                    let a = addr land lnot 3 in
                    let old = rd_word pc rem a in
                    wr_word pc rem a
                      ((old land lnot mask)
                      lor ((Array.unsafe_get regs rs2 lsl shift) land mask));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.B ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    let rem = fuel - 1 in
                    let addr = mask32 (Array.unsafe_get regs rs1 + imm) in
                    let shift = (addr land 3) lsl 3 in
                    let mask = 0xFF lsl shift in
                    let a = addr land lnot 3 in
                    let old = rd_word pc rem a in
                    wr_word pc rem a
                      ((old land lnot mask)
                      lor ((Array.unsafe_get regs rs2 lsl shift) land mask));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Bu | Insn.Hu ->
                (* the decoder never emits unsigned store widths *)
                fun _ -> assert false)
        | Insn.Alui (o, rd, rs1, imm) ->
            (* operator and immediate both fold at compile time: each arm
               is [alu_eval]'s, with [b]'s masking/sign adjustment hoisted.
               Arms are written out in full — without cross-closure
               inlining, a shared [finish] helper is a call per step *)
            let rd = wd rd and b = mask32 imm in
            (match o with
            | Insn.Add ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32 (Array.unsafe_get regs rs1 + b));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sub ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32 (Array.unsafe_get regs rs1 - b));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sll ->
                let sh = b land 31 in
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32 (Array.unsafe_get regs rs1 lsl sh));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Slt ->
                let sb = s32 b in
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (if s32 (Array.unsafe_get regs rs1) < sb then 1 else 0);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sltu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (if Array.unsafe_get regs rs1 < b then 1 else 0);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Xor ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd (Array.unsafe_get regs rs1 lxor b);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Or ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd (Array.unsafe_get regs rs1 lor b);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.And ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd (Array.unsafe_get regs rs1 land b);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Srl ->
                let sh = b land 31 in
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd (Array.unsafe_get regs rs1 lsr sh);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sra ->
                let sh = b land 31 in
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32 (s32 (Array.unsafe_get regs rs1) asr sh));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end)
        | Insn.Alu (o, rd, rs1, rs2) ->
            let rd = wd rd in
            (match o with
            | Insn.Add ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32
                         (Array.unsafe_get regs rs1 + Array.unsafe_get regs rs2));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sub ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32
                         (Array.unsafe_get regs rs1 - Array.unsafe_get regs rs2));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sll ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32
                         (Array.unsafe_get regs rs1
                         lsl (Array.unsafe_get regs rs2 land 31)));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Slt ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (if
                         s32 (Array.unsafe_get regs rs1)
                         < s32 (Array.unsafe_get regs rs2)
                       then 1
                       else 0);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sltu ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (if Array.unsafe_get regs rs1 < Array.unsafe_get regs rs2
                       then 1
                       else 0);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Xor ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (Array.unsafe_get regs rs1 lxor Array.unsafe_get regs rs2);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Or ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (Array.unsafe_get regs rs1 lor Array.unsafe_get regs rs2);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.And ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (Array.unsafe_get regs rs1 land Array.unsafe_get regs rs2);
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Srl ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (Array.unsafe_get regs rs1
                      lsr (Array.unsafe_get regs rs2 land 31));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end
            | Insn.Sra ->
                fun fuel ->
                  if fuel = 0 then 0
                  else begin
                    Array.unsafe_set regs rd
                      (mask32
                         (s32 (Array.unsafe_get regs rs1)
                         asr (Array.unsafe_get regs rs2 land 31)));
                    (Array.unsafe_get code ni) (fuel - 1)
                  end)
        | Insn.Muldiv (o, rd, rs1, rs2) ->
            (* muldiv is rare enough that the shared evaluator's edge-case
               arms ([div]/[rem] overflow and by-zero) are kept in one
               place rather than inlined *)
            let rd = wd rd in
            fun fuel ->
              if fuel = 0 then 0
              else begin
                Array.unsafe_set regs rd
                  (mask32
                     (muldiv_eval o
                        (Array.unsafe_get regs rs1)
                        (Array.unsafe_get regs rs2)));
                (Array.unsafe_get code ni) (fuel - 1)
              end
        | Insn.Fence ->
            fun fuel ->
              if fuel = 0 then 0
              else (Array.unsafe_get code ni) (fuel - 1)
        | Insn.Ecall ->
            fun fuel ->
              if fuel = 0 then 0
              else begin
                trap_rem := fuel - 1;
                raise (Trap (Exited (Array.unsafe_get regs 10)))
              end
        | Insn.Ebreak ->
            fun fuel ->
              if fuel = 0 then 0
              else begin
                trap_rem := fuel - 1;
                raise (Trap Break)
              end)
  in
  for i = 0 to nwords - 1 do
    code.(i) <- build_one i
  done;
  (* running off the end of the image is the fetch fault at [base + len] *)
  code.(nwords) <-
    (fun fuel ->
      if fuel = 0 then 0
      else fault_at (base + len) fuel "pc outside the loaded image");
  invalidate :=
    (fun idx ->
      code.(idx) <-
        (fun fuel ->
          code.(idx) <- build_one idx;
          (Array.unsafe_get code idx) fuel));
  let stop, steps =
    try
      let (_ : int) = goto img.Image.entry max_steps in
      (Out_of_fuel, max_steps)
    with Trap s -> (s, max_steps - !trap_rem)
  in
  let image =
    let acc = ref (Hashtbl.fold (fun a v acc -> (a, v) :: acc) spill []) in
    for i = (dense_bytes lsr 2) - 1 downto 0 do
      let v = Array.unsafe_get dense i in
      if v <> 0 then acc := (i lsl 2, v) :: !acc
    done;
    {
      stop;
      regs = Array.sub regs 0 32;
      steps;
      output = Buffer.contents output;
      image = List.sort (fun (a, _) (b, _) -> compare a b) !acc;
    }
  in
  image
