type stop =
  | Exited of int
  | Break
  | Out_of_fuel
  | Fault of { pc : int; reason : string }

type outcome = {
  stop : stop;
  regs : int array;
  steps : int;
  output : string;
  image : (int * int) list;
}

let default_tohost = 0xF000
let default_max_steps = 1_000_000

let stop_to_string = function
  | Exited code -> Printf.sprintf "exited %d" code
  | Break -> "ebreak"
  | Out_of_fuel -> "step budget exhausted"
  | Fault { pc; reason } -> Printf.sprintf "fault at 0x%x: %s" pc reason

exception Trap of stop

let run ?(max_steps = default_max_steps) ?(tohost = default_tohost)
    (img : Image.t) =
  let mem : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Image.iter_words (fun addr w -> if w <> 0 then Hashtbl.replace mem addr w) img;
  let regs = Array.make 32 0 in
  let output = Buffer.create 16 in
  let pc = ref img.Image.entry in
  let steps = ref 0 in
  let mask32 = Insn.mask32 in
  let s32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  let fault reason = raise (Trap (Fault { pc = !pc; reason })) in
  let rd_word addr =
    if addr < 0 || addr >= Image.max_addr then
      fault (Printf.sprintf "address 0x%x out of range" addr)
    else match Hashtbl.find_opt mem (addr land lnot 3) with
      | Some v -> v
      | None -> 0
  in
  let wr_word addr v =
    if addr < 0 || addr >= Image.max_addr then
      fault (Printf.sprintf "address 0x%x out of range" addr);
    let v = mask32 v in
    if v = 0 then Hashtbl.remove mem addr else Hashtbl.replace mem addr v;
    if addr = tohost then
      if v land 1 = 1 then raise (Trap (Exited (v lsr 1)))
      else if v land 0xFF = 2 then
        Buffer.add_char output (Char.chr ((v lsr 8) land 0xFF))
  in
  let load w addr =
    let aligned n what =
      if addr land (n - 1) <> 0 then
        fault (Printf.sprintf "misaligned %s at 0x%x" what addr)
    in
    let word () = rd_word (addr land lnot 3) in
    let shift = (addr land 3) lsl 3 in
    match (w : Insn.width) with
    | Insn.W -> aligned 4 "lw"; word ()
    | Insn.Hu -> aligned 2 "lh"; (word () lsr shift) land 0xFFFF
    | Insn.H -> aligned 2 "lh"; mask32 (Insn.sext (word () lsr shift) 16)
    | Insn.Bu -> (word () lsr shift) land 0xFF
    | Insn.B -> mask32 (Insn.sext (word () lsr shift) 8)
  in
  let store w addr v =
    let shift = (addr land 3) lsl 3 in
    let merge bits =
      let mask = ((1 lsl bits) - 1) lsl shift in
      let old = rd_word (addr land lnot 3) in
      wr_word (addr land lnot 3)
        ((old land lnot mask) lor ((v lsl shift) land mask))
    in
    match (w : Insn.width) with
    | Insn.W ->
        if addr land 3 <> 0 then
          fault (Printf.sprintf "misaligned sw at 0x%x" addr);
        wr_word addr v
    | Insn.H ->
        if addr land 1 <> 0 then
          fault (Printf.sprintf "misaligned sh at 0x%x" addr);
        merge 16
    | Insn.B -> merge 8
    | Insn.Bu | Insn.Hu -> assert false
  in
  let decode_cache : (int, (Insn.t, Insn.error) result) Hashtbl.t =
    Hashtbl.create 256
  in
  let decode w =
    match Hashtbl.find_opt decode_cache w with
    | Some r -> r
    | None ->
        let r = Insn.decode w in
        Hashtbl.add decode_cache w r;
        r
  in
  let get r = regs.(r) in
  let set r v = if r <> 0 then regs.(r) <- mask32 v in
  let alu_eval (o : Insn.alu) a b =
    match o with
    | Insn.Add -> a + b
    | Insn.Sub -> a - b
    | Insn.Sll -> a lsl (b land 31)
    | Insn.Slt -> if s32 a < s32 b then 1 else 0
    | Insn.Sltu -> if a < b then 1 else 0
    | Insn.Xor -> a lxor b
    | Insn.Or -> a lor b
    | Insn.And -> a land b
    | Insn.Srl -> a lsr (b land 31)
    | Insn.Sra -> s32 a asr (b land 31)
  in
  let muldiv_eval (o : Insn.muldiv) a b =
    let sa = s32 a and sb = s32 b in
    match o with
    | Insn.Mul -> sa * sb
    | Insn.Mulh -> (sa * sb) asr 32
    | Insn.Mulhsu ->
        Int64.to_int
          (Int64.shift_right (Int64.mul (Int64.of_int sa) (Int64.of_int b)) 32)
    | Insn.Mulhu ->
        Int64.to_int
          (Int64.shift_right_logical
             (Int64.mul (Int64.of_int a) (Int64.of_int b))
             32)
    | Insn.Div ->
        if sb = 0 then -1
        else if sa = -0x80000000 && sb = -1 then sa
        else sa / sb
    | Insn.Divu -> if b = 0 then 0xFFFFFFFF else a / b
    | Insn.Rem -> if sb = 0 then sa else if sa = -0x80000000 && sb = -1 then 0 else sa mod sb
    | Insn.Remu -> if b = 0 then a else a mod b
  in
  let branch_taken (c : Insn.bcond) a b =
    match c with
    | Insn.Beq -> a = b
    | Insn.Bne -> a <> b
    | Insn.Blt -> s32 a < s32 b
    | Insn.Bge -> s32 a >= s32 b
    | Insn.Bltu -> a < b
    | Insn.Bgeu -> a >= b
  in
  let stop =
    try
      while !steps < max_steps do
        if !pc land 3 <> 0 then fault "misaligned pc";
        if not (Image.in_range img !pc) then
          fault "pc outside the loaded image";
        let word = rd_word !pc in
        let insn =
          match decode word with
          | Ok i -> i
          | Error e -> fault (Insn.error_to_string e)
        in
        incr steps;
        let next = ref (!pc + 4) in
        (match insn with
        | Insn.Lui (rd, imm) -> set rd (imm lsl 12)
        | Insn.Auipc (rd, imm) -> set rd (!pc + (imm lsl 12))
        | Insn.Jal (rd, off) ->
            set rd (!pc + 4);
            next := mask32 (!pc + off)
        | Insn.Jalr (rd, rs1, imm) ->
            let t = !pc + 4 in
            next := mask32 (get rs1 + imm) land lnot 1;
            set rd t
        | Insn.Branch (c, rs1, rs2, off) ->
            if branch_taken c (get rs1) (get rs2) then
              next := mask32 (!pc + off)
        | Insn.Load (w, rd, rs1, imm) ->
            set rd (load w (mask32 (get rs1 + imm)))
        | Insn.Store (w, rs2, rs1, imm) ->
            store w (mask32 (get rs1 + imm)) (get rs2)
        | Insn.Alui (o, rd, rs1, imm) -> set rd (alu_eval o (get rs1) (Insn.mask32 imm))
        | Insn.Alu (o, rd, rs1, rs2) -> set rd (alu_eval o (get rs1) (get rs2))
        | Insn.Muldiv (o, rd, rs1, rs2) -> set rd (muldiv_eval o (get rs1) (get rs2))
        | Insn.Fence -> ()
        | Insn.Ecall -> raise (Trap (Exited (get 10)))
        | Insn.Ebreak -> raise (Trap Break));
        pc := !next
      done;
      Out_of_fuel
    with Trap s -> s
  in
  let image =
    Hashtbl.fold (fun a v acc -> (a, v) :: acc) mem []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { stop; regs; steps = !steps; output = Buffer.contents output; image }
