(* Committed RV32IM fixture programs. The assembly here is the source of
   truth; the checked-in examples/rv/NAME.hex files are its assembled
   form, and the test suite asserts they stay in sync. Each fixture ends
   in an [ecall] with its checksum in a0, so the reference emulator and
   every translated execution halt at the same architectural point. *)

let fib =
  {|# Iterative Fibonacci: fib(0..20) tabulated, fib(20) in a0.
    .entry _start
_start:
    li   a0, 20
    li   t0, 0
    li   t1, 1
    la   t3, table
    sw   t0, 0(t3)
    sw   t1, 4(t3)
    li   t2, 2
loop:
    bgt  t2, a0, done
    add  t4, t0, t1
    mv   t0, t1
    mv   t1, t4
    slli t5, t2, 2
    add  t5, t5, t3
    sw   t4, 0(t5)
    addi t2, t2, 1
    j    loop
done:
    mv   a0, t1
    ecall
table:
    .space 128
|}

let memcpy =
  {|# Byte-wise copy of 61 bytes (odd count exercises sub-word traffic),
# then a byte checksum of the destination.
    .entry _start
_start:
    la   a0, dst
    la   a1, src
    li   a2, 61
copy:
    beqz a2, check
    lbu  t0, 0(a1)
    sb   t0, 0(a0)
    addi a1, a1, 1
    addi a0, a0, 1
    addi a2, a2, -1
    j    copy
check:
    la   a0, dst
    li   a1, 61
    li   a2, 0
sum:
    beqz a1, done
    lbu  t0, 0(a0)
    add  a2, a2, t0
    addi a0, a0, 1
    addi a1, a1, -1
    j    sum
done:
    mv   a0, a2
    ecall
src:
    .word 0x64636261, 0x68676665, 0x6c6b6a69, 0x706f6e6d
    .word 0x74737271, 0x78777675, 0x42417a79, 0x46454443
    .word 0x4a494847, 0x4e4d4c4b, 0x5251504f, 0x56555453
    .word 0x5a595857, 0x33323130, 0x37363534, 0x00003938
dst:
    .space 64
|}

let sieve =
  {|# Sieve of Eratosthenes below 100; prime count (25) in a0.
    .entry _start
_start:
    li   t0, 100
    la   t1, flags
    li   t2, 2
    li   a0, 0
outer:
    bge  t2, t0, donec
    slli t3, t2, 2
    add  t3, t3, t1
    lw   t4, 0(t3)
    bnez t4, next
    addi a0, a0, 1
    mul  t5, t2, t2
mark:
    bge  t5, t0, next
    slli t6, t5, 2
    add  t6, t6, t1
    li   s0, 1
    sw   s0, 0(t6)
    add  t5, t5, t2
    j    mark
next:
    addi t2, t2, 1
    j    outer
donec:
    ecall
flags:
    .space 400
|}

let dot =
  {|# Signed dot product of two 12-element vectors; result stored and in a0.
    .entry _start
_start:
    la   t0, xs
    la   t1, ys
    li   t2, 12
    li   a0, 0
loop:
    beqz t2, done
    lw   t3, 0(t0)
    lw   t4, 0(t1)
    mul  t5, t3, t4
    add  a0, a0, t5
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    j    loop
done:
    la   t6, out
    sw   a0, 0(t6)
    ecall
xs:
    .word 1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12
ys:
    .word 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1
out:
    .space 4
|}

let qsort =
  {|# Recursive quicksort of 12 words (stack frames, call/ret through
# jalr and the translator's dispatcher); position-weighted checksum in a0.
    .entry _start
_start:
    li   sp, 0x8000
    la   a0, arr
    la   a1, arr_end
    addi a1, a1, -4
    call qsort
    la   t0, arr
    la   t1, arr_end
    li   a0, 0
    li   t2, 1
ck:
    bgeu t0, t1, done
    lw   t3, 0(t0)
    mul  t3, t3, t2
    add  a0, a0, t3
    addi t2, t2, 1
    addi t0, t0, 4
    j    ck
done:
    ecall
qsort:
    bgeu a0, a1, qret
    addi sp, sp, -16
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    sw   s1, 8(sp)
    sw   s2, 12(sp)
    mv   s0, a0
    mv   s1, a1
    lw   t0, 0(s1)
    mv   s2, s0
    mv   t2, s0
part:
    bgeu t2, s1, partdone
    lw   t3, 0(t2)
    bge  t3, t0, noswap
    lw   t4, 0(s2)
    sw   t3, 0(s2)
    sw   t4, 0(t2)
    addi s2, s2, 4
noswap:
    addi t2, t2, 4
    j    part
partdone:
    lw   t4, 0(s2)
    sw   t0, 0(s2)
    sw   t4, 0(s1)
    mv   a0, s0
    addi a1, s2, -4
    call qsort
    addi a0, s2, 4
    mv   a1, s1
    call qsort
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    lw   s1, 8(sp)
    lw   s2, 12(sp)
    addi sp, sp, 16
qret:
    ret
arr:
    .word 9, -3, 77, 0, 14, -28, 5, 5, 1000, -999, 42, 7
arr_end:
    .space 4
|}

let crc32 =
  {|# Bitwise CRC-32 (polynomial 0xEDB88320) over 24 bytes; stored and in a0.
    .entry _start
_start:
    la   a1, msg
    li   a2, 24
    li   a0, -1
next:
    beqz a2, fin
    lbu  t0, 0(a1)
    xor  a0, a0, t0
    li   t1, 8
bit:
    beqz t1, bdone
    andi t2, a0, 1
    srli a0, a0, 1
    beqz t2, nx
    li   t3, 0xEDB88320
    xor  a0, a0, t3
nx:
    addi t1, t1, -1
    j    bit
bdone:
    addi a1, a1, 1
    addi a2, a2, -1
    j    next
fin:
    not  a0, a0
    la   t4, out
    sw   a0, 0(t4)
    ecall
msg:
    .word 0x64696172, 0x6d69732d, 0x76207372, 0x69726576
    .word 0x65687420, 0x6f772062, 0x646c726f
out:
    .space 4
|}

let hello =
  {|# HTIF-style putchar: each byte goes to tohost as (char << 8) | 2.
    .entry _start
_start:
    la   a1, msg
    li   a2, 14
    li   t1, 0xF000
put:
    beqz a2, fin
    lbu  t0, 0(a1)
    slli t0, t0, 8
    ori  t0, t0, 2
    sw   t0, 0(t1)
    addi a1, a1, 1
    addi a2, a2, -1
    j    put
fin:
    li   a0, 0
    ecall
msg:
    .word 0x6c6c6568, 0x62202c6f, 0x64696172, 0x00002173
|}

let divmix =
  {|# M-extension edge cases: INT_MIN/-1 overflow, divide by zero, the
# unsigned variants, and the three mulh flavours, all stored to memory.
    .entry _start
_start:
    la   s0, out
    li   t0, -2147483648
    li   t1, -1
    div  t2, t0, t1
    sw   t2, 0(s0)
    rem  t3, t0, t1
    sw   t3, 4(s0)
    li   t1, 0
    div  t2, t0, t1
    sw   t2, 8(s0)
    rem  t3, t0, t1
    sw   t3, 12(s0)
    li   t0, 97
    li   t1, 7
    divu t2, t0, t1
    remu t3, t0, t1
    sw   t2, 16(s0)
    sw   t3, 20(s0)
    li   t0, -50
    li   t1, 7
    div  t2, t0, t1
    rem  t3, t0, t1
    sw   t2, 24(s0)
    sw   t3, 28(s0)
    li   t0, -2
    li   t1, 3
    mulh t2, t0, t1
    mulhu t3, t0, t1
    mulhsu t4, t0, t1
    sw   t2, 32(s0)
    sw   t3, 36(s0)
    sw   t4, 40(s0)
    li   t0, -6
    li   t1, -5
    divu t2, t0, t1
    remu t3, t0, t1
    sw   t2, 44(s0)
    sw   t3, 48(s0)
    sltu a0, t1, t0
    slti a1, t0, -3
    add  a0, a0, a1
    ecall
out:
    .space 64
|}

let nbody =
  {|# Fixed-point 2-D n-body (12 bodies, 400 leapfrog-ish steps): the one
# long-running fixture (~1.5M dynamic instructions — callers must raise
# max_steps past the emulator default). All arithmetic is exact integer
# (mul/div/shifts), so the trajectory is bit-deterministic; physical
# plausibility is not a goal. Checksum: rotating mix of every position
# and velocity word in a0.
    .entry _start
_start:
    la   s0, px
    la   s1, py
    la   s2, vx
    la   s3, vy
    la   s4, ms
    li   s5, 48
    li   s6, 400
step:
    beqz s6, wrap
    li   s7, 0
ibody:
    bge  s7, s5, integ
    add  t0, s0, s7
    lw   a2, 0(t0)
    add  t0, s1, s7
    lw   a3, 0(t0)
    li   a4, 0
    li   a5, 0
    li   s8, 0
jbody:
    bge  s8, s5, jdone
    beq  s8, s7, jnext
    add  t0, s0, s8
    lw   t1, 0(t0)
    add  t0, s1, s8
    lw   t2, 0(t0)
    sub  t1, t1, a2
    sub  t2, t2, a3
    mul  t3, t1, t1
    mul  t4, t2, t2
    add  t3, t3, t4
    addi t3, t3, 16
    add  t0, s4, s8
    lw   t4, 0(t0)
    slli t4, t4, 10
    div  t4, t4, t3
    mul  t5, t4, t1
    srai t5, t5, 5
    add  a4, a4, t5
    mul  t5, t4, t2
    srai t5, t5, 5
    add  a5, a5, t5
jnext:
    addi s8, s8, 4
    j    jbody
jdone:
    add  t0, s2, s7
    lw   t1, 0(t0)
    add  t1, t1, a4
    sw   t1, 0(t0)
    add  t0, s3, s7
    lw   t1, 0(t0)
    add  t1, t1, a5
    sw   t1, 0(t0)
    addi s7, s7, 4
    j    ibody
integ:
    li   s7, 0
pos:
    bge  s7, s5, snext
    add  t0, s2, s7
    lw   t1, 0(t0)
    srai t2, t1, 4
    add  t3, s0, s7
    lw   t4, 0(t3)
    add  t4, t4, t2
    sw   t4, 0(t3)
    add  t0, s3, s7
    lw   t1, 0(t0)
    srai t2, t1, 4
    add  t3, s1, s7
    lw   t4, 0(t3)
    add  t4, t4, t2
    sw   t4, 0(t3)
    addi s7, s7, 4
    j    pos
snext:
    addi s6, s6, -1
    j    step
wrap:
    li   a0, 0
    li   s7, 0
ck:
    bge  s7, s5, fin
    add  t0, s0, s7
    lw   t1, 0(t0)
    xor  a0, a0, t1
    add  t0, s1, s7
    lw   t1, 0(t0)
    add  a0, a0, t1
    add  t0, s2, s7
    lw   t1, 0(t0)
    xor  a0, a0, t1
    add  t0, s3, s7
    lw   t1, 0(t0)
    add  a0, a0, t1
    slli t2, a0, 1
    srli t3, a0, 31
    or   a0, t2, t3
    addi s7, s7, 4
    j    ck
fin:
    ecall
px:
    .word -900, 450, 120, -64, 800, -333, 27, 610, -415, 75, -1000, 508
py:
    .word 310, -720, 44, 903, -188, 260, -555, 12, 670, -90, 401, -264
vx:
    .word 3, -2, 0, 5, -4, 1, 2, -3, 4, 0, -1, 2
vy:
    .word -1, 4, 2, -3, 0, 5, -2, 1, -4, 3, 0, -5
ms:
    .word 9, 14, 5, 20, 11, 7, 16, 3, 12, 18, 6, 10
|}

let all =
  [ ("fib", fib); ("memcpy", memcpy); ("sieve", sieve); ("dot", dot);
    ("qsort", qsort); ("crc32", crc32); ("hello", hello); ("divmix", divmix);
    ("nbody", nbody) ]

let find name = List.assoc_opt name all

let names = List.map fst all

let image name =
  match find name with
  | None -> None
  | Some src -> (
      match Rv_asm.parse ~name src with
      | Ok img -> Some img
      | Error e ->
          (* A fixture that does not assemble is a build defect, not an
             input error. *)
          invalid_arg
            (Printf.sprintf "fixture %s: %s" name (Rv_asm.error_to_string e)))
