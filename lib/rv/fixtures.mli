(** Committed RV32IM fixture programs.

    The assembly text here is the source of truth; the checked-in
    [examples/rv/NAME.hex] images are its assembled form (the test suite
    keeps them in sync). All fixtures exit through [ecall] with a
    checksum in a0. *)

val all : (string * string) list
(** (name, assembly source), in canonical order. *)

val names : string list
val find : string -> string option

val image : string -> Image.t option
(** Assembled image; [None] for unknown names. Raises [Invalid_argument]
    only if a committed fixture fails to assemble (a build defect). *)
