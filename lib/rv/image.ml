type t = { name : string; base : int; entry : int; bytes : string }

type error =
  | Truncated of string
  | Bad_magic of string
  | Bad_entry of { entry : int; reason : string }
  | Misaligned of { what : string; value : int }
  | Oversized of int
  | Malformed of { line : int; reason : string }

let error_to_string = function
  | Truncated what -> Printf.sprintf "truncated image: %s" what
  | Bad_magic what -> Printf.sprintf "bad magic: %s" what
  | Bad_entry { entry; reason } ->
      Printf.sprintf "bad entry point 0x%x: %s" entry reason
  | Misaligned { what; value } ->
      Printf.sprintf "misaligned %s 0x%x: must be 4-byte aligned" what value
  | Oversized n ->
      Printf.sprintf "image of %d bytes exceeds the %d-byte bound" n
        (1 lsl 20)
  | Malformed { line; reason } ->
      Printf.sprintf "malformed hex image, line %d: %s" line reason

let max_bytes = 1 lsl 20

(* Keep every byte address below 0x1000_0000 so the translated IR address
   (2x the RV address) stays clear of the emulator's spill region. *)
let max_addr = 0x1000_0000

let ( let* ) = Result.bind

let validate ~name ~base ~entry bytes =
  let len = String.length bytes in
  if len = 0 then Error (Truncated "empty image")
  else if len > max_bytes then Error (Oversized len)
  else if base < 0 || base + len > max_addr then
    Error (Bad_entry { entry = base; reason = "image base out of address range" })
  else if base land 3 <> 0 then Error (Misaligned { what = "base"; value = base })
  else if entry land 3 <> 0 then
    Error (Misaligned { what = "entry pc"; value = entry })
  else if entry < base || entry >= base + len then
    Error (Bad_entry { entry; reason = "outside the loaded image" })
  else
    (* Pad to a whole number of words so [word] never reads off the end. *)
    let pad = (4 - (len land 3)) land 3 in
    Ok { name; base; entry; bytes = bytes ^ String.make pad '\000' }

let of_flat ?(name = "flat") ?(base = 0) ?entry bytes =
  let entry = Option.value entry ~default:base in
  validate ~name ~base ~entry bytes

(* --- minimal ELF32 ---------------------------------------------------- *)

let u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let u32 s off =
  u16 s off lor (u16 s (off + 2) lsl 16)

let of_elf ?(name = "elf") data =
  let len = String.length data in
  let* () = if len >= 52 then Ok () else Error (Truncated "ELF header") in
  let* () =
    if String.sub data 0 4 = "\x7fELF" then Ok ()
    else Error (Bad_magic "not an ELF file")
  in
  let* () =
    if Char.code data.[4] = 1 then Ok ()
    else Error (Bad_magic "not ELFCLASS32")
  in
  let* () =
    if Char.code data.[5] = 1 then Ok ()
    else Error (Bad_magic "not little-endian")
  in
  let* () =
    if u16 data 18 = 243 then Ok ()
    else Error (Bad_magic "machine is not RISC-V (EM_RISCV = 243)")
  in
  let entry = u32 data 24 in
  let phoff = u32 data 28 in
  let phentsize = u16 data 42 in
  let phnum = u16 data 44 in
  let* () =
    if phnum > 0 && phentsize >= 32 then Ok ()
    else Error (Truncated "no program headers")
  in
  let* () =
    if phoff + (phnum * phentsize) <= len then Ok ()
    else Error (Truncated "program header table")
  in
  let segs = ref [] in
  let* () =
    let rec scan i =
      if i >= phnum then Ok ()
      else
        let ph = phoff + (i * phentsize) in
        if u32 data ph <> 1 (* PT_LOAD *) then scan (i + 1)
        else
          let p_offset = u32 data (ph + 4) in
          let p_vaddr = u32 data (ph + 8) in
          let p_filesz = u32 data (ph + 16) in
          let p_memsz = u32 data (ph + 20) in
          if p_offset + p_filesz > len then Error (Truncated "PT_LOAD segment")
          else if p_memsz > max_bytes then Error (Oversized p_memsz)
          else begin
            segs := (p_vaddr, p_offset, p_filesz, p_memsz) :: !segs;
            scan (i + 1)
          end
    in
    scan 0
  in
  let* () =
    if !segs <> [] then Ok () else Error (Truncated "no PT_LOAD segment")
  in
  let lo =
    List.fold_left (fun a (v, _, _, _) -> min a v) max_int !segs land lnot 3
  in
  let hi = List.fold_left (fun a (v, _, _, m) -> max a (v + m)) 0 !segs in
  let* () =
    if hi - lo <= max_bytes then Ok () else Error (Oversized (hi - lo))
  in
  let buf = Bytes.make (hi - lo) '\000' in
  List.iter
    (fun (v, off, filesz, _) ->
      Bytes.blit_string data off buf (v - lo) filesz)
    !segs;
  validate ~name ~base:lo ~entry (Bytes.to_string buf)

(* --- braid-rv/1 hex text ---------------------------------------------- *)

let magic = "braid-rv/1"

let of_hex ?name text =
  let lines = String.split_on_char '\n' text in
  let* first, rest =
    match lines with
    | first :: rest -> Ok (first, rest)
    | [] -> Error (Bad_magic "empty file")
  in
  let* hname =
    match String.split_on_char ' ' (String.trim first) with
    | m :: rest when m = magic ->
        Ok (match List.filter (( <> ) "") rest with n :: _ -> n | [] -> "hex")
    | _ -> Error (Bad_magic (Printf.sprintf "first line must be %S" magic))
  in
  let name = Option.value name ~default:hname in
  let buf = Buffer.create 256 in
  let base = ref 0 and entry = ref None and cursor = ref None in
  let put_word lineno v =
    let c = match !cursor with None -> !base | Some c -> c in
    let off = c - !base in
    if off < 0 then
      Error (Malformed { line = lineno; reason = "@at before image base" })
    else if off > max_bytes then Error (Oversized off)
    else begin
      while Buffer.length buf < off do Buffer.add_char buf '\000' done;
      if Buffer.length buf > off then
        Error
          (Malformed { line = lineno; reason = "words overlap earlier data" })
      else begin
        Buffer.add_char buf (Char.chr (v land 0xFF));
        Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
        Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
        cursor := Some (c + 4);
        Ok ()
      end
    end
  in
  let parse_int lineno s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | _ ->
        Error (Malformed { line = lineno; reason = "expected an address: " ^ s })
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let toks =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (( <> ) "")
        in
        let* () =
          match toks with
          | [] -> Ok ()
          | [ "@base"; v ] ->
              if Buffer.length buf > 0 then
                Error
                  (Malformed { line = lineno; reason = "@base after data" })
              else
                let* v = parse_int lineno v in
                base := v;
                Ok ()
          | [ "@entry"; v ] ->
              let* v = parse_int lineno v in
              entry := Some v;
              Ok ()
          | [ "@at"; v ] ->
              let* v = parse_int lineno v in
              cursor := Some v;
              Ok ()
          | toks ->
              let rec words = function
                | [] -> Ok ()
                | t :: ts ->
                    if String.length t = 8 then
                      match int_of_string_opt ("0x" ^ t) with
                      | Some v ->
                          let* () = put_word lineno v in
                          words ts
                      | None ->
                          Error
                            (Malformed
                               { line = lineno; reason = "bad hex word " ^ t })
                    else
                      Error
                        (Malformed
                           {
                             line = lineno;
                             reason = "expected an 8-digit hex word, got " ^ t;
                           })
              in
              words toks
        in
        go (lineno + 1) rest
  in
  let* () = go 2 rest in
  let entry = Option.value !entry ~default:!base in
  validate ~name ~base:!base ~entry (Buffer.contents buf)

let to_hex t =
  let b = Buffer.create (String.length t.bytes * 3) in
  Buffer.add_string b (Printf.sprintf "%s %s\n" magic t.name);
  Buffer.add_string b (Printf.sprintf "@base 0x%x\n" t.base);
  Buffer.add_string b (Printf.sprintf "@entry 0x%x\n" t.entry);
  let words = String.length t.bytes / 4 in
  for i = 0 to words - 1 do
    let v =
      Char.code t.bytes.[4 * i]
      lor (Char.code t.bytes.[(4 * i) + 1] lsl 8)
      lor (Char.code t.bytes.[(4 * i) + 2] lsl 16)
      lor (Char.code t.bytes.[(4 * i) + 3] lsl 24)
    in
    Buffer.add_string b (Printf.sprintf "%08x" v);
    Buffer.add_char b (if i mod 8 = 7 then '\n' else ' ')
  done;
  let s = Buffer.contents b in
  if String.length s > 0 && s.[String.length s - 1] <> '\n' then s ^ "\n"
  else s

let of_source ?name data =
  if String.length data >= 4 && String.sub data 0 4 = "\x7fELF" then
    of_elf ?name data
  else if
    String.length data >= String.length magic
    && String.sub data 0 (String.length magic) = magic
  then of_hex ?name data
  else of_flat ?name data

let size t = String.length t.bytes
let in_range t addr = addr >= t.base && addr < t.base + String.length t.bytes

let word t addr =
  if addr land 3 <> 0 then invalid_arg "Image.word: unaligned address";
  if not (in_range t addr) then 0
  else
    let o = addr - t.base in
    Char.code t.bytes.[o]
    lor (Char.code t.bytes.[o + 1] lsl 8)
    lor (Char.code t.bytes.[o + 2] lsl 16)
    lor (Char.code t.bytes.[o + 3] lsl 24)

let iter_words f t =
  let words = String.length t.bytes / 4 in
  for i = 0 to words - 1 do
    let addr = t.base + (4 * i) in
    f addr (word t addr)
  done
