(** Loaded RV32 program images.

    An image is one contiguous little-endian byte range plus an entry pc.
    Three front ends produce it: raw flat binaries, a minimal ELF32
    parser (class 32, little-endian, EM_RISCV, PT_LOAD segments only),
    and the ["braid-rv/1"] hex text format used for committed fixtures
    and for carrying programs over the serve API. Every loader returns a
    typed error — mirroring {!Braid_api.Wire}'s rejection style — rather
    than raising: truncated input, bad magic, out-of-image or misaligned
    entry, and an oversize bound ({!max_bytes}). *)

type t = private { name : string; base : int; entry : int; bytes : string }
(** [bytes] is padded to a whole number of 32-bit words; [base] and
    [entry] are 4-byte aligned, with [entry] inside the image. *)

type error =
  | Truncated of string
  | Bad_magic of string
  | Bad_entry of { entry : int; reason : string }
  | Misaligned of { what : string; value : int }
  | Oversized of int
  | Malformed of { line : int; reason : string }  (** hex-text syntax error *)

val error_to_string : error -> string

val max_bytes : int
(** Image size bound (1 MiB). *)

val max_addr : int
(** Exclusive upper bound on byte addresses (0x1000_0000): keeps the
    translated IR addresses, which are doubled, below the IR emulator's
    spill region. *)

val of_flat : ?name:string -> ?base:int -> ?entry:int -> string -> (t, error) result
(** [base] defaults to 0, [entry] to [base]. *)

val of_elf : ?name:string -> string -> (t, error) result
val of_hex : ?name:string -> string -> (t, error) result

val of_source : ?name:string -> string -> (t, error) result
(** Sniffs the format: ELF magic, ["braid-rv/1"] magic, else flat. *)

val to_hex : t -> string
(** Canonical hex-text serialisation; [of_hex (to_hex t)] reproduces [t]. *)

val size : t -> int
val in_range : t -> int -> bool
val word : t -> int -> int
(** 32-bit word at a 4-byte-aligned address; 0 outside the image. Raises
    [Invalid_argument] on unaligned addresses (callers align first). *)

val iter_words : (int -> int -> unit) -> t -> unit
(** Every word of the image, in address order, including zeros. *)
