(* Words are 32-bit RV encodings carried in native ints, range
   [0, 0xFFFF_FFFF]. *)

type alu = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type muldiv = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
type bcond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type width = B | H | W | Bu | Hu

type t =
  | Lui of int * int
  | Auipc of int * int
  | Jal of int * int
  | Jalr of int * int * int
  | Branch of bcond * int * int * int
  | Load of width * int * int * int
  | Store of width * int * int * int
  | Alui of alu * int * int * int
  | Alu of alu * int * int * int
  | Muldiv of muldiv * int * int * int
  | Fence
  | Ecall
  | Ebreak

type error =
  | Compressed of int
  | Illegal of { word : int; reason : string }

let error_to_string = function
  | Compressed w ->
      Printf.sprintf
        "compressed (RVC) encoding 0x%04x: the frontend is RV32IM only; \
         rebuild without the C extension"
        (w land 0xFFFF)
  | Illegal { word; reason } ->
      Printf.sprintf "illegal instruction 0x%08x: %s" word reason

let mask32 v = v land 0xFFFFFFFF

(* Sign-extend the low [bits] of [v]. *)
let sext v bits =
  let m = 1 lsl (bits - 1) in
  ((v land ((1 lsl bits) - 1)) lxor m) - m

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt" | Sltu -> "sltu"
  | Xor -> "xor" | Srl -> "srl" | Sra -> "sra" | Or -> "or" | And -> "and"

let muldiv_name = function
  | Mul -> "mul" | Mulh -> "mulh" | Mulhsu -> "mulhsu" | Mulhu -> "mulhu"
  | Div -> "div" | Divu -> "divu" | Rem -> "rem" | Remu -> "remu"

let bcond_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Bltu -> "bltu" | Bgeu -> "bgeu"

let load_name = function
  | B -> "lb" | H -> "lh" | W -> "lw" | Bu -> "lbu" | Hu -> "lhu"

let store_name = function
  | B -> "sb" | H -> "sh" | W -> "sw" | Bu | Hu -> assert false

let x n = "x" ^ string_of_int n

let to_string = function
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%x" (x rd) imm
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%x" (x rd) imm
  | Jal (rd, off) -> Printf.sprintf "jal %s, %d" (x rd) off
  | Jalr (rd, rs1, imm) -> Printf.sprintf "jalr %s, %s, %d" (x rd) (x rs1) imm
  | Branch (c, rs1, rs2, off) ->
      Printf.sprintf "%s %s, %s, %d" (bcond_name c) (x rs1) (x rs2) off
  | Load (w, rd, rs1, imm) ->
      Printf.sprintf "%s %s, %d(%s)" (load_name w) (x rd) imm (x rs1)
  | Store (w, rs2, rs1, imm) ->
      Printf.sprintf "%s %s, %d(%s)" (store_name w) (x rs2) imm (x rs1)
  | Alui (o, rd, rs1, imm) ->
      let suffix = match o with Sll | Srl | Sra -> "" | _ -> "i" in
      Printf.sprintf "%s%s %s, %s, %d" (alu_name o) suffix (x rd) (x rs1) imm
  | Alu (o, rd, rs1, rs2) ->
      Printf.sprintf "%s %s, %s, %s" (alu_name o) (x rd) (x rs1) (x rs2)
  | Muldiv (o, rd, rs1, rs2) ->
      Printf.sprintf "%s %s, %s, %s" (muldiv_name o) (x rd) (x rs1) (x rs2)
  | Fence -> "fence"
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"

(* --- decode ----------------------------------------------------------- *)

let decode word =
  let w = mask32 word in
  if w land 3 <> 3 then Error (Compressed w)
  else begin
    let opcode = w land 0x7F in
    let rd = (w lsr 7) land 31 in
    let funct3 = (w lsr 12) land 7 in
    let rs1 = (w lsr 15) land 31 in
    let rs2 = (w lsr 20) land 31 in
    let funct7 = (w lsr 25) land 0x7F in
    let imm_i = sext (w lsr 20) 12 in
    let imm_s = sext (((w lsr 25) lsl 5) lor rd) 12 in
    let imm_b =
      sext
        (((w lsr 31) lsl 12)
        lor (((w lsr 7) land 1) lsl 11)
        lor (((w lsr 25) land 0x3F) lsl 5)
        lor (((w lsr 8) land 0xF) lsl 1))
        13
    in
    let imm_u = (w lsr 12) land 0xFFFFF in
    let imm_j =
      sext
        (((w lsr 31) lsl 20)
        lor (((w lsr 12) land 0xFF) lsl 12)
        lor (((w lsr 20) land 1) lsl 11)
        lor (((w lsr 21) land 0x3FF) lsl 1))
        21
    in
    let illegal reason = Error (Illegal { word = w; reason }) in
    match opcode with
    | 0x37 -> Ok (Lui (rd, imm_u))
    | 0x17 -> Ok (Auipc (rd, imm_u))
    | 0x6F -> Ok (Jal (rd, imm_j))
    | 0x67 ->
        if funct3 = 0 then Ok (Jalr (rd, rs1, imm_i))
        else illegal "jalr funct3 must be 0"
    | 0x63 -> (
        let branch c = Ok (Branch (c, rs1, rs2, imm_b)) in
        match funct3 with
        | 0 -> branch Beq
        | 1 -> branch Bne
        | 4 -> branch Blt
        | 5 -> branch Bge
        | 6 -> branch Bltu
        | 7 -> branch Bgeu
        | _ -> illegal "reserved branch funct3")
    | 0x03 -> (
        let load wd = Ok (Load (wd, rd, rs1, imm_i)) in
        match funct3 with
        | 0 -> load B
        | 1 -> load H
        | 2 -> load W
        | 4 -> load Bu
        | 5 -> load Hu
        | _ -> illegal "reserved load funct3")
    | 0x23 -> (
        let store wd = Ok (Store (wd, rs2, rs1, imm_s)) in
        match funct3 with
        | 0 -> store B
        | 1 -> store H
        | 2 -> store W
        | _ -> illegal "reserved store funct3")
    | 0x13 -> (
        match funct3 with
        | 0 -> Ok (Alui (Add, rd, rs1, imm_i))
        | 2 -> Ok (Alui (Slt, rd, rs1, imm_i))
        | 3 -> Ok (Alui (Sltu, rd, rs1, imm_i))
        | 4 -> Ok (Alui (Xor, rd, rs1, imm_i))
        | 6 -> Ok (Alui (Or, rd, rs1, imm_i))
        | 7 -> Ok (Alui (And, rd, rs1, imm_i))
        | 1 ->
            if funct7 = 0 then Ok (Alui (Sll, rd, rs1, rs2))
            else illegal "slli funct7 must be 0"
        | 5 ->
            if funct7 = 0 then Ok (Alui (Srl, rd, rs1, rs2))
            else if funct7 = 0x20 then Ok (Alui (Sra, rd, rs1, rs2))
            else illegal "srli/srai funct7"
        | _ -> assert false)
    | 0x33 -> (
        if funct7 = 1 then
          let md o = Ok (Muldiv (o, rd, rs1, rs2)) in
          match funct3 with
          | 0 -> md Mul | 1 -> md Mulh | 2 -> md Mulhsu | 3 -> md Mulhu
          | 4 -> md Div | 5 -> md Divu | 6 -> md Rem | 7 -> md Remu
          | _ -> assert false
        else
          let r o = Ok (Alu (o, rd, rs1, rs2)) in
          match (funct7, funct3) with
          | 0, 0 -> r Add
          | 0x20, 0 -> r Sub
          | 0, 1 -> r Sll
          | 0, 2 -> r Slt
          | 0, 3 -> r Sltu
          | 0, 4 -> r Xor
          | 0, 5 -> r Srl
          | 0x20, 5 -> r Sra
          | 0, 6 -> r Or
          | 0, 7 -> r And
          | _ -> illegal "reserved op funct7")
    | 0x0F ->
        (* fence / fence.i: both order nothing in a sequential model. *)
        if funct3 <= 1 then Ok Fence else illegal "reserved misc-mem funct3"
    | 0x73 ->
        if w = 0x00000073 then Ok Ecall
        else if w = 0x00100073 then Ok Ebreak
        else illegal "SYSTEM encoding outside ecall/ebreak (CSRs unsupported)"
    | _ -> illegal "unknown major opcode"
  end

(* --- encode ----------------------------------------------------------- *)

let enc_r funct7 rs2 rs1 funct3 rd opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let enc_i imm rs1 funct3 rd opcode =
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let enc_s imm rs2 rs1 funct3 opcode =
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opcode

let enc_b off rs2 rs1 funct3 =
  let imm = off land 0x1FFF in
  (((imm lsr 12) land 1) lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)
  lor 0x63

let enc_u imm20 rd opcode = ((imm20 land 0xFFFFF) lsl 12) lor (rd lsl 7) lor opcode

let enc_j off rd =
  let imm = off land 0x1FFFFF in
  (((imm lsr 20) land 1) lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor 0x6F

let alu_funct3 = function
  | Add | Sub -> 0 | Sll -> 1 | Slt -> 2 | Sltu -> 3 | Xor -> 4
  | Srl | Sra -> 5 | Or -> 6 | And -> 7

let muldiv_funct3 = function
  | Mul -> 0 | Mulh -> 1 | Mulhsu -> 2 | Mulhu -> 3
  | Div -> 4 | Divu -> 5 | Rem -> 6 | Remu -> 7

let bcond_funct3 = function
  | Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let load_funct3 = function B -> 0 | H -> 1 | W -> 2 | Bu -> 4 | Hu -> 5
let store_funct3 = function B -> 0 | H -> 1 | W -> 2 | Bu | Hu -> assert false

let encode = function
  | Lui (rd, imm) -> enc_u imm rd 0x37
  | Auipc (rd, imm) -> enc_u imm rd 0x17
  | Jal (rd, off) -> enc_j off rd
  | Jalr (rd, rs1, imm) -> enc_i imm rs1 0 rd 0x67
  | Branch (c, rs1, rs2, off) -> enc_b off rs2 rs1 (bcond_funct3 c)
  | Load (w, rd, rs1, imm) -> enc_i imm rs1 (load_funct3 w) rd 0x03
  | Store (w, rs2, rs1, imm) -> enc_s imm rs2 rs1 (store_funct3 w) 0x23
  | Alui (o, rd, rs1, imm) -> (
      match o with
      | Sll -> enc_r 0 (imm land 31) rs1 1 rd 0x13
      | Srl -> enc_r 0 (imm land 31) rs1 5 rd 0x13
      | Sra -> enc_r 0x20 (imm land 31) rs1 5 rd 0x13
      | _ -> enc_i imm rs1 (alu_funct3 o) rd 0x13)
  | Alu (o, rd, rs1, rs2) ->
      let funct7 = match o with Sub | Sra -> 0x20 | _ -> 0 in
      enc_r funct7 rs2 rs1 (alu_funct3 o) rd 0x33
  | Muldiv (o, rd, rs1, rs2) -> enc_r 1 rs2 rs1 (muldiv_funct3 o) rd 0x33
  | Fence -> 0x0FF0000F
  | Ecall -> 0x00000073
  | Ebreak -> 0x00100073
