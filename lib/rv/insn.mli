(** RV32IM instruction decoding and encoding.

    Covers every RV32I base-integer encoding plus the M extension.
    Compressed (RVC) halfwords are rejected with a dedicated error, CSR
    accesses and other SYSTEM encodings beyond [ecall]/[ebreak] with a
    reasoned [Illegal]. Words are 32-bit values carried in native ints
    (range [0, 0xFFFF_FFFF]); [decode] is total — it never raises. *)

type alu = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type muldiv = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu
type bcond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type width = B | H | W | Bu | Hu
(** Load widths; stores use [B]/[H]/[W] only. *)

type t =
  | Lui of int * int  (** rd, raw 20-bit immediate *)
  | Auipc of int * int  (** rd, raw 20-bit immediate *)
  | Jal of int * int  (** rd, signed byte offset *)
  | Jalr of int * int * int  (** rd, rs1, signed 12-bit immediate *)
  | Branch of bcond * int * int * int  (** rs1, rs2, signed byte offset *)
  | Load of width * int * int * int  (** rd, rs1, signed immediate *)
  | Store of width * int * int * int  (** rs2, rs1, signed immediate *)
  | Alui of alu * int * int * int
      (** rd, rs1, immediate; for [Sll]/[Srl]/[Sra] the immediate is the
          shift amount (0–31); [Sub] never appears in immediate form *)
  | Alu of alu * int * int * int  (** rd, rs1, rs2 *)
  | Muldiv of muldiv * int * int * int  (** rd, rs1, rs2 *)
  | Fence  (** fence / fence.i: a no-op in a sequential memory model *)
  | Ecall
  | Ebreak

type error =
  | Compressed of int  (** a 16-bit RVC encoding (low two bits not 11) *)
  | Illegal of { word : int; reason : string }

val error_to_string : error -> string

val decode : int -> (t, error) result
val encode : t -> int
(** [decode (encode i)] is [Ok i] for every well-formed [i] (register
    numbers in 0–31, immediates within their fields, branch/jump offsets
    even); [encode] masks fields to their widths. *)

val to_string : t -> string
(** Standard assembly mnemonic with xN register names, e.g.
    ["addi x5, x5, -1"]. *)

val sext : int -> int -> int
(** [sext v bits]: sign-extend the low [bits] of [v]. *)

val mask32 : int -> int
