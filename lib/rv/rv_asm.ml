(* Two-pass assembler for RV32IM, mirroring lib/isa/asm.ml's style:
   mnemonic tables, typed parse errors carrying the line number, and a
   small directive set. Pseudo-instruction sizes are fixed in pass one
   ([li] from its literal, [la]/[call] always their worst case) so label
   addresses are known before encoding. *)

type error = { line : int; msg : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.msg

exception Fail of error

let fail line fmt = Printf.ksprintf (fun msg -> raise (Fail { line; msg })) fmt

let registers =
  let abi =
    [ ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4); ("t0", 5);
      ("t1", 6); ("t2", 7); ("s0", 8); ("fp", 8); ("s1", 9); ("a0", 10);
      ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14); ("a5", 15); ("a6", 16);
      ("a7", 17); ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21); ("s6", 22);
      ("s7", 23); ("s8", 24); ("s9", 25); ("s10", 26); ("s11", 27);
      ("t3", 28); ("t4", 29); ("t5", 30); ("t6", 31) ]
  in
  let xs = List.init 32 (fun i -> ("x" ^ string_of_int i, i)) in
  xs @ abi

let reg line s =
  match List.assoc_opt s registers with
  | Some r -> r
  | None -> fail line "unknown register %s" s

let alu_rrr =
  [ ("add", Insn.Add); ("sub", Insn.Sub); ("sll", Insn.Sll); ("slt", Insn.Slt);
    ("sltu", Insn.Sltu); ("xor", Insn.Xor); ("srl", Insn.Srl);
    ("sra", Insn.Sra); ("or", Insn.Or); ("and", Insn.And) ]

let alu_rri =
  [ ("addi", Insn.Add); ("slti", Insn.Slt); ("sltiu", Insn.Sltu);
    ("xori", Insn.Xor); ("ori", Insn.Or); ("andi", Insn.And);
    ("slli", Insn.Sll); ("srli", Insn.Srl); ("srai", Insn.Sra) ]

let muldiv =
  [ ("mul", Insn.Mul); ("mulh", Insn.Mulh); ("mulhsu", Insn.Mulhsu);
    ("mulhu", Insn.Mulhu); ("div", Insn.Div); ("divu", Insn.Divu);
    ("rem", Insn.Rem); ("remu", Insn.Remu) ]

let branches =
  [ ("beq", Insn.Beq); ("bne", Insn.Bne); ("blt", Insn.Blt);
    ("bge", Insn.Bge); ("bltu", Insn.Bltu); ("bgeu", Insn.Bgeu) ]

let loads =
  [ ("lb", Insn.B); ("lh", Insn.H); ("lw", Insn.W); ("lbu", Insn.Bu);
    ("lhu", Insn.Hu) ]

let stores = [ ("sb", Insn.B); ("sh", Insn.H); ("sw", Insn.W) ]

(* One source line, split into label / statement. *)
type stmt =
  | Ins of string * string list  (* mnemonic, comma-split operands *)
  | Word of int list
  | Space of int
  | Entry of string

type item = { line : int; addr : int; stmt : stmt }

let tokenize line s =
  let s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if s = "" then (None, None)
  else
    let label, rest =
      match String.index_opt s ':' with
      | Some i
        when String.for_all
               (fun c ->
                 (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9') || c = '_' || c = '.')
               (String.sub s 0 i) ->
          ( Some (String.sub s 0 i),
            String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
      | _ -> (None, s)
    in
    if rest = "" then (label, None)
    else
      let mnem, ops =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
            ( String.sub rest 0 i,
              String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
            )
      in
      let ops =
        if ops = "" then []
        else
          String.split_on_char ',' ops |> List.map String.trim
          |> List.filter (( <> ) "")
      in
      if mnem = "" then fail line "empty statement" else (label, Some (mnem, ops))

let int_lit line s =
  let s, neg =
    if String.length s > 0 && s.[0] = '-' then
      (String.sub s 1 (String.length s - 1), true)
    else (s, false)
  in
  match int_of_string_opt s with
  | Some v -> if neg then -v else v
  | None -> fail line "expected an integer, got %s" s

(* Number of 32-bit words a statement assembles to. *)
let stmt_words line (mnem : string) (ops : string list) =
  match mnem with
  | "li" -> (
      match ops with
      | [ _; imm ] ->
          let v = int_lit line imm in
          if v >= -2048 && v < 2048 then 1 else 2
      | _ -> fail line "li takes rd, imm")
  | "la" -> 2
  | _ -> 1

let parse ?(name = "asm") text =
  try
    let lines = String.split_on_char '\n' text in
    (* Pass 1: addresses and labels. *)
    let labels : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let items = ref [] in
    let addr = ref 0 in
    List.iteri
      (fun i line_text ->
        let line = i + 1 in
        let label, st = tokenize line line_text in
        Option.iter
          (fun l ->
            if Hashtbl.mem labels l then fail line "duplicate label %s" l;
            Hashtbl.replace labels l !addr)
          label;
        match st with
        | None -> ()
        | Some (".word", ops) ->
            let vals = List.map (int_lit line) ops in
            if vals = [] then fail line ".word needs at least one value";
            items := { line; addr = !addr; stmt = Word vals } :: !items;
            addr := !addr + (4 * List.length vals)
        | Some (".space", [ n ]) ->
            let n = int_lit line n in
            if n <= 0 || n land 3 <> 0 then
              fail line ".space wants a positive multiple of 4";
            items := { line; addr = !addr; stmt = Space n } :: !items;
            addr := !addr + n
        | Some (".entry", [ l ]) ->
            items := { line; addr = !addr; stmt = Entry l } :: !items
        | Some (".globl", _) | Some (".global", _) | Some (".text", _)
        | Some (".data", _) -> ()
        | Some (d, _) when String.length d > 0 && d.[0] = '.' ->
            fail line "unknown directive %s" d
        | Some (mnem, ops) ->
            items := { line; addr = !addr; stmt = Ins (mnem, ops) } :: !items;
            addr := !addr + (4 * stmt_words line mnem ops))
      lines;
    let items = List.rev !items in
    let total = !addr in
    if total = 0 then fail 1 "no code or data";
    let lookup line l =
      match Hashtbl.find_opt labels l with
      | Some a -> a
      | None -> fail line "undefined label %s" l
    in
    let value line s =
      (* A label or an integer literal. *)
      match Hashtbl.find_opt labels s with
      | Some a -> a
      | None -> int_lit line s
    in
    (* Pass 2: encode. *)
    let buf = Buffer.create (total + 16) in
    let word v =
      Buffer.add_char buf (Char.chr (v land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
      Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
    in
    let ins i = word (Insn.encode i) in
    let entry = ref None in
    let check_imm12 line v =
      if v < -2048 || v >= 2048 then fail line "immediate %d out of 12 bits" v;
      v
    in
    let check_shamt line v =
      if v < 0 || v > 31 then fail line "shift amount %d out of range" v;
      v
    in
    let branch_off line pc target =
      let off = target - pc in
      if off < -4096 || off >= 4096 || off land 1 <> 0 then
        fail line "branch offset %d out of range" off;
      off
    in
    let jal_off line pc target =
      let off = target - pc in
      if off < -(1 lsl 20) || off >= 1 lsl 20 || off land 1 <> 0 then
        fail line "jump offset %d out of range" off;
      off
    in
    let li_words rd v =
      if v >= -2048 && v < 2048 then [ Insn.Alui (Insn.Add, rd, 0, v) ]
      else begin
        let v32 = Insn.mask32 v in
        let lo = Insn.sext v32 12 in
        let hi = ((v32 - lo) lsr 12) land 0xFFFFF in
        (* always two words, matching the size fixed in pass one *)
        [ Insn.Lui (rd, hi); Insn.Alui (Insn.Add, rd, rd, lo) ]
      end
    in
    List.iter
      (fun { line; addr = pc; stmt } ->
        match stmt with
        | Word vs -> List.iter (fun v -> word (Insn.mask32 v)) vs
        | Space n -> for _ = 1 to n / 4 do word 0 done
        | Entry l -> entry := Some (lookup line l)
        | Ins (mnem, ops) -> (
            let r = reg line in
            let rrr f = match ops with
              | [ a; b; c ] -> f (r a) (r b) (r c)
              | _ -> fail line "%s takes rd, rs1, rs2" mnem
            in
            let mem_operand s =
              (* off(base) *)
              match String.index_opt s '(' with
              | Some i when s.[String.length s - 1] = ')' ->
                  let off = String.trim (String.sub s 0 i) in
                  let base = String.sub s (i + 1) (String.length s - i - 2) in
                  let off = if off = "" then 0 else int_lit line off in
                  (check_imm12 line off, r (String.trim base))
              | _ -> fail line "expected off(base), got %s" s
            in
            match (mnem, ops) with
            | _ when List.mem_assoc mnem alu_rrr ->
                rrr (fun rd rs1 rs2 ->
                    ins (Insn.Alu (List.assoc mnem alu_rrr, rd, rs1, rs2)))
            | _ when List.mem_assoc mnem muldiv ->
                rrr (fun rd rs1 rs2 ->
                    ins (Insn.Muldiv (List.assoc mnem muldiv, rd, rs1, rs2)))
            | _ when List.mem_assoc mnem alu_rri -> (
                match ops with
                | [ a; b; c ] ->
                    let o = List.assoc mnem alu_rri in
                    let v = int_lit line c in
                    let v =
                      match o with
                      | Insn.Sll | Insn.Srl | Insn.Sra -> check_shamt line v
                      | _ -> check_imm12 line v
                    in
                    ins (Insn.Alui (o, r a, r b, v))
                | _ -> fail line "%s takes rd, rs1, imm" mnem)
            | _ when List.mem_assoc mnem branches -> (
                match ops with
                | [ a; b; t ] ->
                    let off = branch_off line pc (value line t) in
                    ins (Insn.Branch (List.assoc mnem branches, r a, r b, off))
                | _ -> fail line "%s takes rs1, rs2, target" mnem)
            | _ when List.mem_assoc mnem loads -> (
                match ops with
                | [ a; m ] ->
                    let off, base = mem_operand m in
                    ins (Insn.Load (List.assoc mnem loads, r a, base, off))
                | _ -> fail line "%s takes rd, off(base)" mnem)
            | _ when List.mem_assoc mnem stores -> (
                match ops with
                | [ a; m ] ->
                    let off, base = mem_operand m in
                    ins (Insn.Store (List.assoc mnem stores, r a, base, off))
                | _ -> fail line "%s takes rs2, off(base)" mnem)
            | "lui", [ a; v ] ->
                let v = int_lit line v in
                if v < 0 || v > 0xFFFFF then fail line "lui immediate out of 20 bits";
                ins (Insn.Lui (r a, v))
            | "auipc", [ a; v ] ->
                let v = int_lit line v in
                if v < 0 || v > 0xFFFFF then
                  fail line "auipc immediate out of 20 bits";
                ins (Insn.Auipc (r a, v))
            | "jal", [ a; t ] ->
                ins (Insn.Jal (r a, jal_off line pc (value line t)))
            | "jal", [ t ] -> ins (Insn.Jal (1, jal_off line pc (value line t)))
            | "jalr", [ a; b; v ] ->
                ins (Insn.Jalr (r a, r b, check_imm12 line (int_lit line v)))
            | "jalr", [ b ] -> ins (Insn.Jalr (1, r b, 0))
            | "li", [ a; v ] -> List.iter ins (li_words (r a) (int_lit line v))
            | "la", [ a; l ] ->
                let v = Insn.mask32 (lookup line l) in
                let lo = Insn.sext v 12 in
                let hi = ((v - lo) lsr 12) land 0xFFFFF in
                ins (Insn.Lui (r a, hi));
                ins (Insn.Alui (Insn.Add, r a, r a, lo))
            | "mv", [ a; b ] -> ins (Insn.Alui (Insn.Add, r a, r b, 0))
            | "not", [ a; b ] -> ins (Insn.Alui (Insn.Xor, r a, r b, -1))
            | "neg", [ a; b ] -> ins (Insn.Alu (Insn.Sub, r a, 0, r b))
            | "nop", [] -> ins (Insn.Alui (Insn.Add, 0, 0, 0))
            | "seqz", [ a; b ] -> ins (Insn.Alui (Insn.Sltu, r a, r b, 1))
            | "snez", [ a; b ] -> ins (Insn.Alu (Insn.Sltu, r a, 0, r b))
            | "sltz", [ a; b ] -> ins (Insn.Alu (Insn.Slt, r a, r b, 0))
            | "sgtz", [ a; b ] -> ins (Insn.Alu (Insn.Slt, r a, 0, r b))
            | "beqz", [ a; t ] ->
                ins (Insn.Branch (Insn.Beq, r a, 0, branch_off line pc (value line t)))
            | "bnez", [ a; t ] ->
                ins (Insn.Branch (Insn.Bne, r a, 0, branch_off line pc (value line t)))
            | "bltz", [ a; t ] ->
                ins (Insn.Branch (Insn.Blt, r a, 0, branch_off line pc (value line t)))
            | "bgez", [ a; t ] ->
                ins (Insn.Branch (Insn.Bge, r a, 0, branch_off line pc (value line t)))
            | "blez", [ a; t ] ->
                ins (Insn.Branch (Insn.Bge, 0, r a, branch_off line pc (value line t)))
            | "bgtz", [ a; t ] ->
                ins (Insn.Branch (Insn.Blt, 0, r a, branch_off line pc (value line t)))
            | "ble", [ a; b; t ] ->
                ins (Insn.Branch (Insn.Bge, r b, r a, branch_off line pc (value line t)))
            | "bgt", [ a; b; t ] ->
                ins (Insn.Branch (Insn.Blt, r b, r a, branch_off line pc (value line t)))
            | "bleu", [ a; b; t ] ->
                ins (Insn.Branch (Insn.Bgeu, r b, r a, branch_off line pc (value line t)))
            | "bgtu", [ a; b; t ] ->
                ins (Insn.Branch (Insn.Bltu, r b, r a, branch_off line pc (value line t)))
            | "j", [ t ] -> ins (Insn.Jal (0, jal_off line pc (value line t)))
            | "jr", [ b ] -> ins (Insn.Jalr (0, r b, 0))
            | "ret", [] -> ins (Insn.Jalr (0, 1, 0))
            | "call", [ t ] -> (
                (* fixed one-word pseudo: jal ra, target *)
                ins (Insn.Jal (1, jal_off line pc (value line t))))
            | "ecall", [] -> ins Insn.Ecall
            | "ebreak", [] -> ins Insn.Ebreak
            | "fence", _ -> ins Insn.Fence
            | _ -> fail line "unknown instruction %s with %d operands" mnem
                     (List.length ops)))
      items;
    let entry =
      match !entry with
      | Some e -> e
      | None -> (
          match Hashtbl.find_opt labels "_start" with Some e -> e | None -> 0)
    in
    Image.of_flat ~name ~base:0 ~entry (Buffer.contents buf)
    |> Result.map_error (fun e ->
           { line = 0; msg = Image.error_to_string e })
  with Fail e -> Error e
