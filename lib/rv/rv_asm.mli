(** A small RV32IM assembler, the committed-fixture front end.

    Mirrors {!Braid_isa.Asm}: mnemonic tables, typed line-numbered parse
    errors, two passes (addresses and labels, then encoding). Supports
    every RV32IM mnemonic, the usual pseudo-instructions ([li], [la],
    [mv], [not], [neg], [nop], [seqz]/[snez]/[sltz]/[sgtz], the [b*z]
    and swapped-operand branches, [j], [jr], [ret], [call]), ABI and xN
    register names, labels, and the [.word], [.space], [.entry]
    directives ([.globl]/[.text]/[.data] are accepted and ignored).
    Pseudo-instruction sizes are fixed in pass one so label addresses
    are exact: [li] is one or two words depending on its literal,
    [la]/[call] a fixed two/one.

    The image is based at 0; entry is [.entry label], else the [_start]
    label, else 0. *)

type error = { line : int; msg : string }

val error_to_string : error -> string

val parse : ?name:string -> string -> (Image.t, error) result
(** Never raises; every malformed line is a typed error. *)
