(* Lowering decisions, in brief:

   - RV architectural register xN lives in virtual integer register N
     (x0 is the IR zero register), so the standard two-pass allocator
     assigns the external file exactly as it does for synthetic
     workloads. Virtual 32 holds indirect-jump targets, virtual 33 the
     constant 0x8000_0000; lowering temporaries start at 34 and are
     reused per instruction.
   - Register values are kept as the sign-extended 64-bit image of the
     32-bit RV value; every def that can leave that form is
     re-normalised (zext + xor/sub 0x8000_0000).
   - IR byte address = 2x the RV byte address, so 4-aligned RV words
     land on the IR's 8-aligned 64-bit words, each holding the
     zero-extended 32-bit memory word. Sub-word accesses merge within
     the containing word.
   - jal/branch targets become block labels. jalr routes through a
     dispatcher chain comparing the target pc against every block
     leader (function entries and return points are all leaders);
     an unmatched target halts.
   - ecall/ebreak halt (HTIF-style: exit code in a0); fence is a nop. *)

type error =
  | Decode of { pc : int; err : Insn.error }
  | Bad_target of { pc : int; target : int; reason : string }

let error_to_string = function
  | Decode { pc; err } ->
      Printf.sprintf "at pc 0x%x: %s" pc (Insn.error_to_string err)
  | Bad_target { pc; target; reason } ->
      Printf.sprintf "at pc 0x%x: control target 0x%x %s" pc target reason

type t = {
  program : Program.t;
  init_mem : (int * int64) list;
  rv_count : int;
  ir_count : int;
  leaders : (int * int) list;
}

let reg_of_x n = if n = 0 then Reg.zero else Reg.virt Reg.Cint n
let jt_reg = Reg.virt Reg.Cint 32
let sign_reg = Reg.virt Reg.Cint 33
let first_temp = 34

let ir_addr_of a = 2 * a

exception Reject of error

let check_target ~pc target img =
  if target land 3 <> 0 then
    raise (Reject (Bad_target { pc; target; reason = "is not 4-byte aligned" }));
  if not (Image.in_range img target) then
    raise (Reject (Bad_target { pc; target; reason = "falls outside the image" }))

(* Successor pcs of one decoded instruction: (fallthrough, control targets). *)
let successors pc (i : Insn.t) =
  match i with
  | Insn.Branch (_, _, _, off) -> (Some (pc + 4), [ pc + off ])
  (* A link-writing jump is a call: its continuation pc+4 is reachable
     (through a later indirect jump) and must be a leader. With rd=x0
     (j / jr / ret) nothing records pc+4, so it may well be data. *)
  | Insn.Jal (rd, off) ->
      (None, (pc + off) :: (if rd <> 0 then [ pc + 4 ] else []))
  | Insn.Jalr (rd, _, _) -> (None, if rd <> 0 then [ pc + 4 ] else [])
  | Insn.Ecall | Insn.Ebreak -> (None, [])
  | _ -> (Some (pc + 4), [])

let decode_reachable img =
  let decoded : (int, Insn.t) Hashtbl.t = Hashtbl.create 256 in
  let leaders : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let mark_leader pc = Hashtbl.replace leaders pc () in
  mark_leader img.Image.entry;
  let work = Queue.create () in
  Queue.add img.Image.entry work;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    if not (Hashtbl.mem decoded pc) then begin
      check_target ~pc pc img;
      match Insn.decode (Image.word img pc) with
      | Error err -> raise (Reject (Decode { pc; err }))
      | Ok i ->
          Hashtbl.replace decoded pc i;
          let fall, targets = successors pc i in
          List.iter
            (fun t ->
              check_target ~pc t img;
              mark_leader t;
              Queue.add t work)
            targets;
          (match i with
          | Insn.Branch _ -> mark_leader (pc + 4)
          | _ -> ());
          Option.iter (fun t -> Queue.add t work) fall
    end
  done;
  (decoded, leaders)

(* --- per-block emission ----------------------------------------------- *)

type emitter = {
  buf : Instr.t list ref;
  mutable temp : int;
  mutable origin : string option;
}

let fresh e =
  let r = Reg.virt Reg.Cint e.temp in
  e.temp <- e.temp + 1;
  r

let emit e op =
  let ins = Instr.make op in
  let ins =
    match e.origin with None -> ins | Some o -> Instr.with_origin ins o
  in
  e.buf := ins :: !(e.buf)

(* d := zero-extended low 32 bits of s. *)
let zext e d s =
  emit e (Op.Ibini (Op.Shl, d, s, 32));
  emit e (Op.Ibini (Op.Shr, d, d, 32))

(* d := sign-extended low 32 bits of s (via the resident 0x8000_0000). *)
let sext32 e d s =
  zext e d s;
  emit e (Op.Ibin (Op.Xor, d, d, sign_reg));
  emit e (Op.Ibin (Op.Sub, d, d, sign_reg))

let mov e d s = emit e (Op.Ibini (Op.Add, d, s, 0))

(* Materialise a constant. Movi literals are bounded by the binary
   encoding's 31-bit immediate field, so 32-bit-sized values are built in
   two steps to keep translated programs encodable. *)
let const e d v =
  if v >= -0x4000_0000 && v < 0x4000_0000 then
    emit e (Op.Movi (d, Int64.of_int v))
  else begin
    emit e (Op.Movi (d, Int64.of_int (v asr 12)));
    emit e (Op.Ibini (Op.Shl, d, d, 12));
    if v land 0xFFF <> 0 then emit e (Op.Ibini (Op.Add, d, d, v land 0xFFF))
  end

let s32_of v = Insn.sext v 32

(* Effective address (zero-extended u32) of a load/store into a temp. *)
let eff_addr e a imm =
  let t = fresh e in
  emit e (Op.Ibini (Op.Add, t, a, imm));
  zext e t t;
  t

let region = Op.region_unknown

let lower_load e (w : Insn.width) d a imm =
  let ea = eff_addr e a imm in
  match w with
  | Insn.W ->
      let addr = fresh e in
      emit e (Op.Ibini (Op.Shl, addr, ea, 1));
      let v = fresh e in
      emit e (Op.Load (v, addr, 0, region));
      sext32 e d v
  | _ ->
      let addr = fresh e in
      emit e (Op.Ibini (Op.Andnot, addr, ea, 3));
      emit e (Op.Ibini (Op.Shl, addr, addr, 1));
      let v = fresh e in
      emit e (Op.Load (v, addr, 0, region));
      let sh = fresh e in
      let sub_mask = match w with Insn.H | Insn.Hu -> 2 | _ -> 3 in
      emit e (Op.Ibini (Op.And, sh, ea, sub_mask));
      emit e (Op.Ibini (Op.Shl, sh, sh, 3));
      emit e (Op.Ibin (Op.Shr, v, v, sh));
      (match w with
      | Insn.Bu -> emit e (Op.Ibini (Op.And, d, v, 0xFF))
      | Insn.Hu -> emit e (Op.Ibini (Op.And, d, v, 0xFFFF))
      | Insn.B ->
          emit e (Op.Ibini (Op.And, v, v, 0xFF));
          emit e (Op.Ibini (Op.Xor, v, v, 0x80));
          emit e (Op.Ibini (Op.Sub, d, v, 0x80))
      | Insn.H ->
          emit e (Op.Ibini (Op.And, v, v, 0xFFFF));
          emit e (Op.Ibini (Op.Xor, v, v, 0x8000));
          emit e (Op.Ibini (Op.Sub, d, v, 0x8000))
      | Insn.W -> assert false)

let lower_store e (w : Insn.width) src a imm =
  let ea = eff_addr e a imm in
  match w with
  | Insn.W ->
      let addr = fresh e in
      emit e (Op.Ibini (Op.Shl, addr, ea, 1));
      let v = fresh e in
      zext e v src;
      emit e (Op.Store (v, addr, 0, region))
  | _ ->
      let addr = fresh e in
      emit e (Op.Ibini (Op.Andnot, addr, ea, 3));
      emit e (Op.Ibini (Op.Shl, addr, addr, 1));
      let old = fresh e in
      emit e (Op.Load (old, addr, 0, region));
      let sh = fresh e in
      let bits, sub_mask =
        match w with Insn.H | Insn.Hu -> (0xFFFF, 2) | _ -> (0xFF, 3)
      in
      emit e (Op.Ibini (Op.And, sh, ea, sub_mask));
      emit e (Op.Ibini (Op.Shl, sh, sh, 3));
      let mask = fresh e in
      const e mask bits;
      emit e (Op.Ibin (Op.Shl, mask, mask, sh));
      emit e (Op.Ibin (Op.Andnot, old, old, mask));
      let v = fresh e in
      emit e (Op.Ibini (Op.And, v, src, bits));
      emit e (Op.Ibin (Op.Shl, v, v, sh));
      emit e (Op.Ibin (Op.Or, old, old, v));
      emit e (Op.Store (old, addr, 0, region))

let lower_alu e (o : Insn.alu) d a b =
  match o with
  | Insn.Add | Insn.Sub ->
      let t = fresh e in
      emit e (Op.Ibin ((if o = Insn.Add then Op.Add else Op.Sub), t, a, b));
      sext32 e d t
  | Insn.Xor -> emit e (Op.Ibin (Op.Xor, d, a, b))
  | Insn.Or -> emit e (Op.Ibin (Op.Or, d, a, b))
  | Insn.And -> emit e (Op.Ibin (Op.And, d, a, b))
  | Insn.Slt -> emit e (Op.Ibin (Op.Cmplt, d, a, b))
  | Insn.Sltu ->
      let ta = fresh e and tb = fresh e in
      zext e ta a;
      zext e tb b;
      emit e (Op.Ibin (Op.Cmplt, d, ta, tb))
  | Insn.Sll ->
      let sh = fresh e and t = fresh e in
      emit e (Op.Ibini (Op.And, sh, b, 31));
      emit e (Op.Ibin (Op.Shl, t, a, sh));
      sext32 e d t
  | Insn.Srl ->
      let ta = fresh e and sh = fresh e and t = fresh e in
      zext e ta a;
      emit e (Op.Ibini (Op.And, sh, b, 31));
      emit e (Op.Ibin (Op.Shr, t, ta, sh));
      sext32 e d t
  | Insn.Sra ->
      (* Logical shift of the sign-extended 64-bit image: the upper 32
         bits are copies of bit 31, so the low 32 bits of the result are
         exactly the arithmetic 32-bit shift. *)
      let sh = fresh e and t = fresh e in
      emit e (Op.Ibini (Op.And, sh, b, 31));
      emit e (Op.Ibin (Op.Shr, t, a, sh));
      sext32 e d t

let lower_alui e (o : Insn.alu) d a imm =
  match o with
  | Insn.Add ->
      let t = fresh e in
      emit e (Op.Ibini (Op.Add, t, a, imm));
      sext32 e d t
  | Insn.Xor -> emit e (Op.Ibini (Op.Xor, d, a, imm))
  | Insn.Or -> emit e (Op.Ibini (Op.Or, d, a, imm))
  | Insn.And -> emit e (Op.Ibini (Op.And, d, a, imm))
  | Insn.Slt -> emit e (Op.Ibini (Op.Cmplt, d, a, imm))
  | Insn.Sltu ->
      let ta = fresh e and ti = fresh e in
      zext e ta a;
      const e ti (Insn.mask32 imm);
      emit e (Op.Ibin (Op.Cmplt, d, ta, ti))
  | Insn.Sll ->
      if imm = 0 then mov e d a
      else begin
        let t = fresh e in
        emit e (Op.Ibini (Op.Shl, t, a, imm));
        sext32 e d t
      end
  | Insn.Srl ->
      if imm = 0 then mov e d a
      else begin
        (* Result of a nonzero logical shift of a u32 is below 2^31:
           already in sign-extended form. *)
        let t = fresh e in
        zext e t a;
        emit e (Op.Ibini (Op.Shr, d, t, imm))
      end
  | Insn.Sra ->
      if imm = 0 then mov e d a
      else begin
        let t = fresh e in
        emit e (Op.Ibini (Op.Shr, t, a, imm));
        sext32 e d t
      end
  | Insn.Sub -> assert false

let lower_muldiv e (o : Insn.muldiv) d a b =
  let binop op =
    let t = fresh e in
    emit e (Op.Ibin (op, t, a, b));
    sext32 e d t
  in
  let high signed_a =
    let t = fresh e in
    let ta =
      if signed_a then a
      else begin
        let ta = fresh e in
        zext e ta a;
        ta
      end
    in
    let tb = fresh e in
    zext e tb b;
    emit e (Op.Ibin (Op.Mul, t, ta, tb));
    emit e (Op.Ibini (Op.Shr, t, t, 32));
    sext32 e d t
  in
  let unsigned op =
    let ta = fresh e and tb = fresh e and t = fresh e in
    zext e ta a;
    zext e tb b;
    emit e (Op.Ibin (op, t, ta, tb));
    sext32 e d t
  in
  match o with
  | Insn.Mul -> binop Op.Mul
  | Insn.Div -> binop Op.Div
  | Insn.Rem -> binop Op.Rem
  | Insn.Mulh ->
      (* Both operands sign-extended: the 64-bit product is exact. *)
      let t = fresh e in
      emit e (Op.Ibin (Op.Mul, t, a, b));
      emit e (Op.Ibini (Op.Shr, t, t, 32));
      sext32 e d t
  | Insn.Mulhsu -> high true
  | Insn.Mulhu -> high false
  | Insn.Divu -> unsigned Op.Div
  | Insn.Remu -> unsigned Op.Rem

(* --- whole-image translation ------------------------------------------ *)

let run (img : Image.t) =
  try
    let decoded, leader_set = decode_reachable img in
    let leaders =
      Hashtbl.fold (fun pc () acc -> pc :: acc) leader_set []
      |> List.filter (Hashtbl.mem decoded)
      |> List.sort compare
    in
    let block_of_pc = Hashtbl.create 64 in
    List.iteri (fun i pc -> Hashtbl.replace block_of_pc pc i) leaders;
    let n_code = List.length leaders in
    let has_jalr =
      Hashtbl.fold (fun _ i acc -> acc || match i with Insn.Jalr _ -> true | _ -> false)
        decoded false
    in
    let prologue_id = n_code in
    (* Dispatcher chain ids follow the prologue; the halt block is last. *)
    let dispatch_id i = prologue_id + 1 + i in
    let halt_id = prologue_id + 1 + (if has_jalr then n_code else 0) in
    let block_label pc =
      match Hashtbl.find_opt block_of_pc pc with
      | Some b -> b
      | None -> raise (Reject (Bad_target { pc; target = pc; reason = "is not a block leader" }))
    in
    let lower_one e pc (i : Insn.t) =
      e.origin <- Some (Printf.sprintf "%04x %s" pc (Insn.to_string i));
      e.temp <- first_temp;
      let d_of rd = reg_of_x rd in
      (match i with
      | Insn.Lui (rd, imm) -> const e (d_of rd) (s32_of (imm lsl 12))
      | Insn.Auipc (rd, imm) ->
          const e (d_of rd) (s32_of (Insn.mask32 (pc + (imm lsl 12))))
      | Insn.Alui (o, rd, rs1, imm) -> lower_alui e o (d_of rd) (reg_of_x rs1) imm
      | Insn.Alu (o, rd, rs1, rs2) ->
          lower_alu e o (d_of rd) (reg_of_x rs1) (reg_of_x rs2)
      | Insn.Muldiv (o, rd, rs1, rs2) ->
          lower_muldiv e o (d_of rd) (reg_of_x rs1) (reg_of_x rs2)
      | Insn.Load (w, rd, rs1, imm) -> lower_load e w (d_of rd) (reg_of_x rs1) imm
      | Insn.Store (w, rs2, rs1, imm) ->
          lower_store e w (reg_of_x rs2) (reg_of_x rs1) imm
      | Insn.Branch (c, rs1, rs2, off) -> (
          let a = reg_of_x rs1 and b = reg_of_x rs2 in
          let target = block_label (pc + off) in
          let cmp_branch zext_ops op cond =
            if zext_ops then begin
              let ta = fresh e and tb = fresh e and t = fresh e in
              zext e ta a;
              zext e tb b;
              emit e (Op.Ibin (op, t, ta, tb));
              emit e (Op.Branch (cond, t, target))
            end
            else begin
              let t = fresh e in
              emit e (Op.Ibin (op, t, a, b));
              emit e (Op.Branch (cond, t, target))
            end
          in
          match c with
          | Insn.Beq -> cmp_branch false Op.Sub Op.Eq
          | Insn.Bne -> cmp_branch false Op.Sub Op.Ne
          | Insn.Blt -> cmp_branch false Op.Cmplt Op.Ne
          | Insn.Bge -> cmp_branch false Op.Cmplt Op.Eq
          | Insn.Bltu -> cmp_branch true Op.Cmplt Op.Ne
          | Insn.Bgeu -> cmp_branch true Op.Cmplt Op.Eq)
      | Insn.Jal (rd, off) ->
          if rd <> 0 then const e (d_of rd) (s32_of (Insn.mask32 (pc + 4)));
          emit e (Op.Jump (block_label (pc + off)))
      | Insn.Jalr (rd, rs1, imm) ->
          let t = fresh e in
          emit e (Op.Ibini (Op.Add, t, reg_of_x rs1, imm));
          emit e (Op.Ibini (Op.Andnot, t, t, 1));
          zext e jt_reg t;
          if rd <> 0 then const e (d_of rd) (s32_of (Insn.mask32 (pc + 4)));
          emit e (Op.Jump (dispatch_id 0))
      | Insn.Fence -> emit e Op.Nop
      | Insn.Ecall | Insn.Ebreak -> emit e Op.Halt)
    in
    let is_terminator (i : Insn.t) =
      match i with
      | Insn.Branch _ | Insn.Jal _ | Insn.Jalr _ | Insn.Ecall | Insn.Ebreak ->
          true
      | _ -> false
    in
    let rv_count = ref 0 in
    let code_block leader =
      let e = { buf = ref []; temp = first_temp; origin = None } in
      let pc = ref leader in
      let stop = ref false in
      while not !stop do
        let i = Hashtbl.find decoded !pc in
        incr rv_count;
        lower_one e !pc i;
        if is_terminator i then stop := true
        else begin
          pc := !pc + 4;
          if Hashtbl.mem block_of_pc !pc then stop := true
        end
      done;
      Array.of_list (List.rev !(e.buf))
    in
    let code_blocks = List.map code_block leaders in
    let prologue =
      let e = { buf = ref []; temp = first_temp; origin = Some "prologue" } in
      emit e (Op.Movi (sign_reg, 1L));
      emit e (Op.Ibini (Op.Shl, sign_reg, sign_reg, 31));
      emit e (Op.Jump (block_label img.Image.entry));
      Array.of_list (List.rev !(e.buf))
    in
    let dispatcher =
      if not has_jalr then []
      else
        List.map
          (fun pc ->
            let e =
              { buf = ref []; temp = first_temp;
                origin = Some (Printf.sprintf "dispatch 0x%04x" pc) }
            in
            let t = fresh e in
            emit e (Op.Ibini (Op.Sub, t, jt_reg, pc));
            emit e (Op.Branch (Op.Eq, t, block_label pc));
            Array.of_list (List.rev !(e.buf)))
          leaders
    in
    let halt_block =
      let halt = Instr.with_origin (Instr.make Op.Halt) "indirect target missed" in
      [| halt |]
    in
    let instr_arrays = code_blocks @ [ prologue ] @ dispatcher @ [ halt_block ] in
    assert (List.length instr_arrays = halt_id + 1);
    let blocks =
      List.mapi
        (fun id instrs ->
          let fallthrough =
            match instrs.(Array.length instrs - 1).Instr.op with
            | Op.Jump _ | Op.Halt -> None
            | _ -> Some (id + 1)
          in
          { Program.id; instrs; fallthrough })
        instr_arrays
    in
    let program = Program.make blocks ~entry:prologue_id in
    let init_mem = ref [] in
    Image.iter_words
      (fun addr w ->
        if w <> 0 then init_mem := (ir_addr_of addr, Int64.of_int w) :: !init_mem)
      img;
    let ir_count =
      List.fold_left (fun acc b -> acc + Array.length b) 0 instr_arrays
    in
    Ok
      {
        program;
        init_mem = List.rev !init_mem;
        rv_count = Hashtbl.length decoded;
        ir_count;
        leaders = List.map (fun pc -> (pc, Hashtbl.find block_of_pc pc)) leaders;
      }
  with Reject e -> Error e

(* --- observing translated runs ---------------------------------------- *)

let read_x st n =
  if n = 0 then 0
  else
    Int64.to_int (Int64.logand (Emulator.read_reg st (reg_of_x n)) 0xFFFFFFFFL)

let rv_image_of_state st =
  List.map
    (fun (addr, v) -> (addr / 2, Int64.to_int (Int64.logand v 0xFFFFFFFFL)))
    (Emulator.memory_image st)
