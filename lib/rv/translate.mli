(** Lowering RV32IM images into the internal IR.

    The translator decodes every reachable instruction from the entry pc
    (following branches, calls, and the continuation after each call),
    cuts the code at branch targets and return points into basic blocks,
    and lowers each RV instruction into a short sequence of IR
    operations tagged with its originating pc/mnemonic (see
    {!Instr.annot.origin}).

    Conventions shared with the reference emulator:

    - register xN maps to virtual integer register N (x0 to the IR zero
      register); after the standard two-pass allocation these become
      external-file registers like any synthetic workload's;
    - register values are the sign-extended 64-bit image of the 32-bit
      value; IR memory words hold zero-extended 32-bit words at IR
      address = 2x the RV byte address;
    - [jalr] jumps route through a dispatcher chain over all block
      leaders; an unmatched target halts;
    - [ecall]/[ebreak] lower to [Halt], [fence] to [Nop].

    Self-modifying code is unsupported (stores to fetched addresses
    change memory but not the translated program). *)

type error =
  | Decode of { pc : int; err : Insn.error }
  | Bad_target of { pc : int; target : int; reason : string }
      (** a branch/jump target or call continuation that is misaligned,
          outside the image, or not a block leader *)

val error_to_string : error -> string

type t = {
  program : Program.t;  (** virtual-register IR; run it through
                            {!Emulator}, {!Braid_core.Transform}, or the
                            cores unchanged *)
  init_mem : (int * int64) list;  (** the image, in IR address space *)
  rv_count : int;  (** reachable RV instructions decoded *)
  ir_count : int;  (** static IR instructions emitted *)
  leaders : (int * int) list;  (** block-leader pc -> block id *)
}

val run : Image.t -> (t, error) result
(** Total: returns a typed error for every untranslatable image, never
    raises. *)

val reg_of_x : int -> Reg.t
val ir_addr_of : int -> int

val read_x : Emulator.state -> int -> int
(** u32 image of xN after a run of the translated program. *)

val rv_image_of_state : Emulator.state -> (int * int) list
(** Final memory image of a translated run mapped back to RV addresses:
    sorted (word address, u32) pairs, directly comparable with
    {!Emu.outcome.image}. *)
