(* Basic-block-vector interval profiling over the compiled fast-forward
   engine. The program runs in fixed-size instruction intervals; each
   interval's per-block execution counts become an L1-normalised vector
   (random-projected down to [target_dim] when the program has more
   blocks), which is what k-means clusters to pick representatives. *)

type interval = {
  index : int;
  start : int;  (* dynamic instruction index of the interval's first instr *)
  length : int;  (* instructions executed; only the last may fall short *)
  vector : float array;
}

type profile = {
  intervals : interval array;
  total : int;  (* total dynamic instruction count of the profiled run *)
  dim : int;
}

let target_dim = 64

(* SimPoint-style projection: entries uniform in [-1, 1) from one seeded
   stream, built in block-major order — a pure function of
   (num_blocks, seed). *)
let projector ~seed ~num_blocks =
  let rng = Prng.create (Int64.of_int seed) in
  Array.init num_blocks (fun _ ->
      Array.init target_dim (fun _ -> (2.0 *. Prng.float rng 1.0) -. 1.0))

let profile ?init_mem ?(max_steps = 1_000_000) ~(spec : Spec.t) code =
  let nb = Emulator.Compiled.num_blocks code in
  let make_vector =
    if nb <= target_dim then fun counts ran ->
      let inv = 1.0 /. float_of_int ran in
      Array.map (fun c -> float_of_int c *. inv) counts
    else
      let proj = projector ~seed:spec.Spec.seed ~num_blocks:nb in
      fun counts ran ->
        let v = Array.make target_dim 0.0 in
        let inv = 1.0 /. float_of_int ran in
        Array.iteri
          (fun b c ->
            if c > 0 then begin
              let w = float_of_int c *. inv in
              let row = proj.(b) in
              for j = 0 to target_dim - 1 do
                v.(j) <- v.(j) +. (w *. row.(j))
              done
            end)
          counts;
        v
  in
  let run = Emulator.Compiled.start ?init_mem code in
  let counts = Array.make nb 0 in
  let intervals = ref [] in
  let idx = ref 0 and pos = ref 0 in
  let continue = ref true in
  while !continue do
    let fuel = min spec.Spec.interval (max_steps - !pos) in
    if fuel <= 0 then continue := false
    else begin
      Array.fill counts 0 nb 0;
      let ran = Emulator.Compiled.advance_bbv run ~fuel ~counts in
      if ran = 0 then continue := false
      else begin
        intervals :=
          { index = !idx; start = !pos; length = ran; vector = make_vector counts ran }
          :: !intervals;
        incr idx;
        pos := !pos + ran;
        if Emulator.Compiled.halted run then continue := false
      end
    end
  done;
  {
    intervals = Array.of_list (List.rev !intervals);
    total = !pos;
    dim = min nb target_dim;
  }
