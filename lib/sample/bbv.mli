(** Basic-block-vector interval profiling.

    One functional fast-forward pass over the program, chopped into
    fixed-size instruction intervals; each interval yields an
    L1-normalised per-block execution-frequency vector for clustering. *)

type interval = {
  index : int;
  start : int;  (** dynamic instruction index of the interval's first instr *)
  length : int;  (** instructions executed; only the last may fall short *)
  vector : float array;
}

type profile = {
  intervals : interval array;
  total : int;  (** total dynamic instructions — equals the sum of lengths *)
  dim : int;  (** vector dimensionality after any projection *)
}

val target_dim : int
(** Programs with more basic blocks than this (64) get a seeded random
    projection down to it, SimPoint-style. *)

val profile :
  ?init_mem:(int * int64) list ->
  ?max_steps:int ->
  spec:Spec.t ->
  Emulator.Compiled.code ->
  profile
(** Fast-forward the whole program (bounded by [max_steps], default
    1_000_000 to match the emulator's own default) collecting one vector
    per [spec.interval] instructions. Deterministic for fixed inputs. *)
