(* The sampled cycle-level driver.

   A run splits into two core-independent and core-dependent halves:

   [plan] fast-forwards the whole program once through the compiled
   emulator, collecting one BBV per interval, clusters them and picks
   weighted representative intervals. The plan depends only on the
   program, data image and spec — never on the core — so one plan serves
   every configuration in an experiment or sweep.

   [measure] walks the program forward once more per core: fast-forward
   to each representative, replay a bounded functional warm-up into the
   caches and predictor (untimed), then simulate a short detailed
   warm-up plus the interval with the full pipeline model, reporting
   only the interval's suffix (commit-to-commit, [measure_from]).
   Weighted CPI over the representatives extrapolates to a full-run
   [Pipeline.result] whose counters are per-instruction rates scaled to
   the whole run, so a sampled result drops into any consumer of full
   results. *)

module U = Braid_uarch

type plan = {
  spec : Spec.t;
  code : Emulator.Compiled.code;
  init_mem : (int * int64) list;
  profile : Bbv.profile;
  chosen : (Bbv.interval * float) array;
      (* ascending by start; weights sum to ~1 *)
}

type rep = {
  interval_index : int;
  start : int;
  length : int;
  weight : float;
  ipc : float;
}

type t = {
  spec : Spec.t;
  total_instrs : int;
  num_intervals : int;
  reps : rep list;
  ipc : float;  (* weighted-CPI harmonic aggregate *)
  result : U.Pipeline.result;  (* extrapolated to the full run *)
}

let position_weight = 0.5
let warm_history = 65_536

let plan ?(init_mem = []) ?max_steps ~spec code =
  let profile = Bbv.profile ~init_mem ?max_steps ~spec code in
  let ivs = profile.Bbv.intervals in
  let n = Array.length ivs in
  if n = 0 then invalid_arg "Driver.plan: program executed no instructions";
  let total = float_of_int profile.Bbv.total in
  let chosen =
    if n <= spec.Spec.max_k then
      (* every interval is its own representative: sampling is exact *)
      Array.map (fun iv -> (iv, float_of_int iv.Bbv.length /. total)) ivs
    else begin
      (* Cluster on the BBV plus a lightly-weighted position coordinate.
         Homogeneous code (one big loop) yields near-identical BBVs for
         every interval, yet per-interval cost still drifts as caches and
         predictors warm over the run; position breaks those ties so the
         representatives stratify the run in time, while genuinely
         distinct phases (BBV distance ≫ position term) still cluster by
         code signature. *)
      let fn = float_of_int (max 1 (n - 1)) in
      let points =
        Array.mapi
          (fun i iv ->
            Array.append iv.Bbv.vector
              [| position_weight *. (float_of_int i /. fn) |])
          ivs
      in
      let cl = Kmeans.cluster ~seed:spec.Spec.seed ~k:spec.Spec.max_k points in
      let reps = Kmeans.representatives cl points in
      (* a cluster weighs what its members execute, not how many there are *)
      let mass = Array.make cl.Kmeans.k 0 in
      Array.iteri
        (fun i iv ->
          let c = cl.Kmeans.assign.(i) in
          mass.(c) <- mass.(c) + iv.Bbv.length)
        ivs;
      let arr =
        Array.of_list
          (List.map
             (fun i ->
               (ivs.(i), float_of_int mass.(cl.Kmeans.assign.(i)) /. total))
             reps)
      in
      Array.sort
        (fun ((a : Bbv.interval), _) (b, _) -> compare a.Bbv.start b.Bbv.start)
        arr;
      arr
    end
  in
  { spec; code; init_mem; profile; chosen }

let measure ?(warm_data = []) (p : plan) (cfg : U.Config.t) =
  let run = Emulator.Compiled.start ~init_mem:p.init_mem p.code in
  let wsum = Array.fold_left (fun a (_, w) -> a +. w) 0.0 p.chosen in
  (* weighted per-instruction rates, accumulated over representatives *)
  let cpi = ref 0.0 in
  let occ_cycles = ref 0.0 in
  let r_lookups = ref 0.0
  and r_mispredicts = ref 0.0
  and r_l1i = ref 0.0
  and r_l1d = ref 0.0
  and r_l2 = ref 0.0
  and r_stall_regs = ref 0.0
  and r_faults = ref 0.0 in
  let r_ext_reads = ref 0.0
  and r_ext_writes = ref 0.0
  and r_int_reads = ref 0.0
  and r_int_writes = ref 0.0
  and r_bypass = ref 0.0 in
  let r_s_redirect = ref 0.0
  and r_s_icache = ref 0.0
  and r_s_core = ref 0.0
  and r_s_frontend = ref 0.0 in
  (* snapshot at the current window's functional-warm start, so the next
     window's warm-up may rewind into the region this window already
     executed *)
  let snap = ref None in
  let seek_to wstart =
    let pos = Emulator.Compiled.steps run in
    if wstart < pos then begin
      match !snap with
      | Some (sp, spos) when spos <= wstart -> Emulator.Compiled.restore run sp
      | _ -> assert false (* starts ascend, so the last snapshot is older *)
    end;
    let pos = Emulator.Compiled.steps run in
    if wstart > pos then ignore (Emulator.Compiled.advance run ~fuel:(wstart - pos));
    snap := Some (Emulator.Compiled.snapshot run, wstart)
  in
  let reps =
    Array.to_list
      (Array.map
         (fun ((iv : Bbv.interval), w) ->
           let w = w /. wsum in
           let wstart = max 0 (iv.Bbv.start - p.spec.Spec.warmup) in
           (* Functional warm-up: replay the [warm_history] instructions
              preceding the detailed window into the caches and predictor
              (untimed), so the window starts from the deep
              microarchitectural history its position implies — L2
              content and predictor tables remember far more than any
              affordable detailed warm-up covers. Bounded, so per-window
              cost stays constant however long the full run is. *)
           let pstart = max 0 (wstart - warm_history) in
           seek_to pstart;
           let prewarm =
             if wstart = pstart then None
             else
               Some (Emulator.Compiled.trace_window run ~max_steps:(wstart - pstart))
           in
           let wlen = iv.Bbv.start - wstart in
           (* Detailed warm-up: simulate warm-up + interval as one window
              and let the pipeline report only the interval's suffix
              ([measure_from]). The interval is then timed in a machine
              whose pipeline, caches, predictor and register lifetimes
              all carry the warm-up's real state. The first interval has
              no warm-up and keeps its cold-start transient: the full run
              starts cold there too. *)
           let window =
             Emulator.Compiled.trace_window run ~max_steps:(wlen + iv.Bbv.length)
           in
           let r =
             U.Pipeline.run ~warm_data ?prewarm
               ?measure_from:(if wlen = 0 then None else Some wlen)
               cfg window
           in
           let instrs = float_of_int r.U.Pipeline.instructions in
           let cycles = float_of_int (max 1 r.U.Pipeline.cycles) in
           let this_cpi = cycles /. instrs in
           let occ = r.U.Pipeline.avg_occupancy in
           let rate get = w *. (float_of_int (get r) /. instrs) in
           cpi := !cpi +. (w *. this_cpi);
           occ_cycles := !occ_cycles +. (w *. this_cpi *. occ);
           r_lookups := !r_lookups +. rate (fun r -> r.U.Pipeline.branch_lookups);
           r_mispredicts :=
             !r_mispredicts +. rate (fun r -> r.U.Pipeline.branch_mispredicts);
           r_l1i := !r_l1i +. rate (fun r -> r.U.Pipeline.l1i_misses);
           r_l1d := !r_l1d +. rate (fun r -> r.U.Pipeline.l1d_misses);
           r_l2 := !r_l2 +. rate (fun r -> r.U.Pipeline.l2_misses);
           r_stall_regs :=
             !r_stall_regs +. rate (fun r -> r.U.Pipeline.dispatch_stall_regs);
           r_faults := !r_faults +. rate (fun r -> r.U.Pipeline.faults);
           r_ext_reads :=
             !r_ext_reads
             +. rate (fun r -> r.U.Pipeline.activity.U.Machine.ext_rf_reads);
           r_ext_writes :=
             !r_ext_writes
             +. rate (fun r -> r.U.Pipeline.activity.U.Machine.ext_rf_writes);
           r_int_reads :=
             !r_int_reads
             +. rate (fun r -> r.U.Pipeline.activity.U.Machine.int_rf_reads);
           r_int_writes :=
             !r_int_writes
             +. rate (fun r -> r.U.Pipeline.activity.U.Machine.int_rf_writes);
           r_bypass :=
             !r_bypass
             +. rate (fun r -> r.U.Pipeline.activity.U.Machine.bypass_values);
           r_s_redirect :=
             !r_s_redirect
             +. rate (fun r -> r.U.Pipeline.stalls.U.Pipeline.fetch_redirect);
           r_s_icache :=
             !r_s_icache
             +. rate (fun r -> r.U.Pipeline.stalls.U.Pipeline.fetch_icache);
           r_s_core :=
             !r_s_core
             +. rate (fun r -> r.U.Pipeline.stalls.U.Pipeline.dispatch_core);
           r_s_frontend :=
             !r_s_frontend
             +. rate (fun r -> r.U.Pipeline.stalls.U.Pipeline.dispatch_frontend);
           {
             interval_index = iv.Bbv.index;
             start = iv.Bbv.start;
             length = iv.Bbv.length;
             weight = w;
             ipc = instrs /. cycles;
           })
         p.chosen)
  in
  let total = p.profile.Bbv.total in
  let ftotal = float_of_int total in
  let cycles = max 1 (int_of_float (Float.round (ftotal *. !cpi))) in
  let scale r = int_of_float (Float.round (ftotal *. !r)) in
  let result =
    {
      U.Pipeline.config_name = cfg.U.Config.name;
      instructions = total;
      cycles;
      ipc = ftotal /. float_of_int cycles;
      branch_lookups = scale r_lookups;
      branch_mispredicts = scale r_mispredicts;
      l1i_misses = scale r_l1i;
      l1d_misses = scale r_l1d;
      l2_misses = scale r_l2;
      dispatch_stall_regs = scale r_stall_regs;
      faults = scale r_faults;
      activity =
        {
          U.Machine.ext_rf_reads = scale r_ext_reads;
          ext_rf_writes = scale r_ext_writes;
          int_rf_reads = scale r_int_reads;
          int_rf_writes = scale r_int_writes;
          bypass_values = scale r_bypass;
        };
      stalls =
        {
          U.Pipeline.fetch_redirect = scale r_s_redirect;
          fetch_icache = scale r_s_icache;
          dispatch_core = scale r_s_core;
          dispatch_frontend = scale r_s_frontend;
        };
      avg_occupancy = (if !cpi > 0.0 then !occ_cycles /. !cpi else 0.0);
    }
  in
  {
    spec = p.spec;
    total_instrs = total;
    num_intervals = Array.length p.profile.Bbv.intervals;
    reps;
    ipc = result.U.Pipeline.ipc;
    result;
  }

let run ?(init_mem = []) ?(warm_data = []) ?max_steps ~spec cfg program =
  let code = Emulator.Compiled.compile program in
  let p = plan ~init_mem ?max_steps ~spec code in
  measure ~warm_data p cfg

let error_vs ~full (t : t) =
  let f = full.U.Pipeline.ipc in
  if f = 0.0 then 0.0 else Float.abs (t.ipc -. f) /. f
