(** The sampled cycle-level driver: fast-forward, profile, cluster, then
    simulate only representative intervals and extrapolate.

    The core-independent half ({!plan}) is computed once per (program,
    image, spec); the core-dependent half ({!measure}) runs once per
    configuration. Both are deterministic for fixed inputs. *)

type plan

type rep = {
  interval_index : int;
  start : int;  (** dynamic instruction index where the interval begins *)
  length : int;
  weight : float;  (** fraction of all executed instructions it stands for *)
  ipc : float;  (** measured on this interval alone *)
}

type t = {
  spec : Spec.t;
  total_instrs : int;  (** full-run dynamic instruction count *)
  num_intervals : int;
  reps : rep list;
  ipc : float;  (** weighted-CPI estimate of the full run's IPC *)
  result : Braid_uarch.Pipeline.result;
      (** the estimate extrapolated to a full-run result: [instructions]
          is the true dynamic count, [cycles] follows from the weighted
          CPI, and every counter is a weighted per-instruction rate
          scaled to the whole run — consumers of full results need not
          distinguish. *)
}

val plan :
  ?init_mem:(int * int64) list ->
  ?max_steps:int ->
  spec:Spec.t ->
  Emulator.Compiled.code ->
  plan
(** One compiled fast-forward pass: BBV profile ({!Bbv.profile}'s
    [max_steps] default applies), k-means clustering, representative
    selection with instruction-mass weights. Raises [Invalid_argument]
    if the program executes no instructions. *)

val measure :
  ?warm_data:int list -> plan -> Braid_uarch.Config.t -> t
(** Fast-forward to each representative; replay a bounded functional
    warm-up (the preceding ~64k instructions) into caches and predictor
    via [Pipeline.run ~prewarm]; simulate the spec's detailed warm-up
    plus the interval and report only the interval's commit-to-commit
    suffix ([Pipeline.run ~measure_from]); aggregate by weighted CPI.
    [warm_data] is passed through to every interval's pipeline run. *)

val run :
  ?init_mem:(int * int64) list ->
  ?warm_data:int list ->
  ?max_steps:int ->
  spec:Spec.t ->
  Braid_uarch.Config.t ->
  Program.t ->
  t
(** [measure (plan ...)] for a single configuration. *)

val error_vs : full:Braid_uarch.Pipeline.result -> t -> float
(** Relative IPC error against a full simulation of the same program:
    [|sampled - full| / full]. *)
