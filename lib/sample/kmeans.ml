(* Deterministic k-means for BBV clustering.

   Determinism is the whole point: the sampled driver's representative
   choice must be a pure function of (points, seed, k) so that reruns,
   different --jobs values and warm/cold sweep-cache passes all pick the
   same intervals. All randomness flows through one Prng stream seeded
   from [seed]; every tie (nearest centroid, farthest point) breaks to
   the lowest index; iteration order is array order throughout. *)

type clustering = {
  k : int;
  assign : int array;
  centroids : float array array;
}

let sq_dist a b =
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let x = a.(i) -. b.(i) in
    d := !d +. (x *. x)
  done;
  !d

let nearest centroids k p =
  let best = ref 0 and bestd = ref (sq_dist p centroids.(0)) in
  for c = 1 to k - 1 do
    let d = sq_dist p centroids.(c) in
    if d < !bestd then begin
      best := c;
      bestd := d
    end
  done;
  (!best, !bestd)

(* kmeans++ seeding: first centre uniform, each further centre drawn with
   probability proportional to its squared distance from the chosen set.
   When every remaining point coincides with a centre (total mass 0) the
   lowest-index point not yet chosen is taken. *)
let seed_centroids rng ~k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  let chosen = Array.make n false in
  let first = Prng.int rng n in
  centroids.(0) <- points.(first);
  chosen.(first) <- true;
  let d2 = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let idx =
      if total > 0.0 then begin
        let r = Prng.float rng total in
        let acc = ref 0.0 and pick = ref (-1) in
        Array.iteri
          (fun i d ->
            if !pick < 0 then begin
              acc := !acc +. d;
              if !acc > r then pick := i
            end)
          d2;
        if !pick < 0 then n - 1 else !pick
      end
      else begin
        let pick = ref 0 in
        (try
           for i = 0 to n - 1 do
             if not chosen.(i) then begin
               pick := i;
               raise Exit
             end
           done
         with Exit -> ());
        !pick
      end
    in
    centroids.(c) <- points.(idx);
    chosen.(idx) <- true;
    Array.iteri
      (fun i p ->
        let d = sq_dist p centroids.(c) in
        if d < d2.(i) then d2.(i) <- d)
      points
  done;
  centroids

let max_iters = 100

let cluster ~seed ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.cluster: no points";
  let k = max 1 (min k n) in
  let dim = Array.length points.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Kmeans.cluster: ragged point dimensions")
    points;
  let rng = Prng.create (Int64.of_int seed) in
  let centroids = seed_centroids rng ~k points in
  let assign = Array.make n (-1) in
  let iter = ref 0 and changed = ref true in
  while !changed && !iter < max_iters do
    changed := false;
    incr iter;
    (* assignment: strict [<] in [nearest] breaks ties to the lowest
       centroid index *)
    Array.iteri
      (fun i p ->
        let c, _ = nearest centroids k p in
        if c <> assign.(i) then begin
          assign.(i) <- c;
          changed := true
        end)
      points;
    if !changed then begin
      let sums = Array.init k (fun _ -> Array.make dim 0.0) in
      let counts = Array.make k 0 in
      Array.iteri
        (fun i p ->
          let c = assign.(i) in
          counts.(c) <- counts.(c) + 1;
          let s = sums.(c) in
          for j = 0 to dim - 1 do
            s.(j) <- s.(j) +. p.(j)
          done)
        points;
      Array.iteri
        (fun c count ->
          if count > 0 then begin
            let s = sums.(c) in
            for j = 0 to dim - 1 do
              s.(j) <- s.(j) /. float_of_int count
            done;
            centroids.(c) <- s
          end
          else begin
            (* an emptied cluster reseeds to the point farthest from its
               centroid (lowest index on ties), keeping k clusters live *)
            let far = ref 0 and fard = ref neg_infinity in
            Array.iteri
              (fun i p ->
                let d = sq_dist p centroids.(assign.(i)) in
                if d > !fard then begin
                  far := i;
                  fard := d
                end)
              points;
            centroids.(c) <- Array.copy points.(!far);
            assign.(!far) <- c
          end)
        counts
    end
  done;
  { k; assign; centroids }

let representatives { k; assign; centroids } points =
  (* the member closest to its cluster's centroid, lowest index on ties;
     empty clusters (possible only if reseeding was cut off by the
     iteration cap) yield no representative *)
  let best = Array.make k (-1) in
  let bestd = Array.make k infinity in
  Array.iteri
    (fun i p ->
      let c = assign.(i) in
      let d = sq_dist p centroids.(c) in
      if d < bestd.(c) then begin
        bestd.(c) <- d;
        best.(c) <- i
      end)
    points;
  let reps = ref [] in
  for c = k - 1 downto 0 do
    if best.(c) >= 0 then reps := best.(c) :: !reps
  done;
  !reps
