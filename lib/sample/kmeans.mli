(** Deterministic seeded k-means over float vectors (BBVs).

    The result is a pure function of (points, seed, k): one Prng stream,
    lowest-index tie-breaks, fixed iteration cap. Reruns, different
    [--jobs] values and warm/cold sweep-cache passes therefore agree on
    the clustering. *)

type clustering = {
  k : int;  (** effective cluster count, [min k (Array.length points)] *)
  assign : int array;  (** cluster index per point *)
  centroids : float array array;
}

val cluster : seed:int -> k:int -> float array array -> clustering
(** kmeans++ seeding then Lloyd iterations until assignments stabilise
    (capped). Raises [Invalid_argument] on an empty or ragged point set. *)

val representatives : clustering -> float array array -> int list
(** For each cluster, the index of the member closest to its centroid
    (lowest index on ties), in ascending cluster order. *)
