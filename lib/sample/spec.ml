(* The sampling specification: everything that determines which intervals
   get simulated. Two runs with equal specs (and equal programs) pick the
   same representatives, so the spec's digest is a sound cache-key
   component for the DSE sweep cache. *)

type t = {
  interval : int;
  max_k : int;
  warmup : int;
  seed : int;
}

let default = { interval = 2_000; max_k = 8; warmup = 2_000; seed = 1 }

let validate t =
  if t.interval < 100 then
    Error
      (Printf.sprintf "sample interval must be at least 100 (got %d)" t.interval)
  else if t.max_k < 1 then
    Error (Printf.sprintf "sample cluster budget must be positive (got %d)" t.max_k)
  else if t.warmup < 0 then
    Error (Printf.sprintf "sample warmup must be non-negative (got %d)" t.warmup)
  else Ok t

let digest t =
  Printf.sprintf "i%d-k%d-w%d-s%d" t.interval t.max_k t.warmup t.seed

let to_string t =
  Printf.sprintf "interval=%d max_k=%d warmup=%d seed=%d" t.interval t.max_k
    t.warmup t.seed
