(** The sampling specification: interval size, cluster budget, warmup
    length and clustering seed — everything that determines which
    intervals a sampled run simulates. *)

type t = {
  interval : int;  (** instructions per profiling interval *)
  max_k : int;  (** cluster (representative) budget *)
  warmup : int;  (** pre-interval instructions replayed into caches/predictor *)
  seed : int;  (** k-means seed *)
}

val default : t
(** interval 2000, max_k 8, warmup 2000, seed 1. *)

val validate : t -> (t, string) result
(** Rejects intervals under 100 instructions, non-positive cluster
    budgets and negative warmups, with a message naming the offender. *)

val digest : t -> string
(** A short string over every field, e.g. ["i2000-k8-w2000-s1"]: equal
    specs have equal digests. Used in memoisation and sweep-cache keys. *)

val to_string : t -> string
(** Human-readable rendering for report headers. *)
