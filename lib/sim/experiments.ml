module Spec = Braid_workload.Spec
module C = Braid_core
module U = Braid_uarch

type row_class = Int_row | Fp_row | Config_row
type row = { label : string; cls : row_class; values : float list }

type series = {
  s_title : string;
  columns : string list;
  rows : row list;
  averages : bool;
  decimals : int;
}

type metric = { m_label : string; value : float }

type result = {
  id : string;
  title : string;
  paper_expectation : string;
  series : series list;
  notes : string list;
  headline : metric list;
}

type cells = (Spec.profile * float array) list

type t = {
  id : string;
  title : string;
  paper_expectation : string;
  bench_job : Suite.ctx -> scale:int -> Spec.profile -> float array;
  assemble : Suite.ctx -> scale:int -> cells -> result;
}

let named name cfg = { cfg with U.Config.name }

(* Configuration variants go through the first-class override API —
   anonymous record-update literals on Config.t are deprecated in
   experiment code, so every variant stays inside the sweepable-field
   vocabulary `braidsim sweep` exposes. The field names are static, so a
   failure is a programming error, not an input error. *)
let variant cfg name kvs =
  match U.Config.override cfg kvs with
  | Ok c -> named name c
  | Error msg -> invalid_arg ("Experiments.variant: " ^ msg)

let ikv field v = (field, string_of_int v)
let is_fp (pr : Spec.profile) = pr.Spec.cls = Spec.Fp_bench
let metric m_label value = { m_label; value }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let bench_row (pr : Spec.profile) values =
  { label = pr.Spec.name; cls = (if is_fp pr then Fp_row else Int_row); values }

(* A per-benchmark series over the first [List.length cols] payload values;
   jobs may carry extra trailing floats for notes/headlines. *)
let bench_series ~title ~cols (cells : cells) =
  let n = List.length cols in
  {
    s_title = title;
    columns = cols;
    rows =
      List.map
        (fun (pr, vs) -> bench_row pr (List.init n (Array.get vs)))
        cells;
    averages = true;
    decimals = 3;
  }

let avg_at (cells : cells) i = mean (List.map (fun (_, vs) -> vs.(i)) cells)

let overall_avg cols (cells : cells) col =
  match List.find_index (String.equal col) cols with
  | Some i -> avg_at cells i
  | None -> invalid_arg "overall_avg: unknown column"

(* The common shape: one table whose columns are exactly the job payload,
   headline metrics picked from those columns. *)
let std ~id ~title ~expect ~table_title ~cols ?notes ?headline bench_job =
  let headline_of cells =
    match headline with
    | Some picks ->
        List.map (fun (lbl, col) -> metric lbl (overall_avg cols cells col)) picks
    | None -> List.map (fun col -> metric col (overall_avg cols cells col)) cols
  in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job;
    assemble =
      (fun _ctx ~scale:_ cells ->
        {
          id;
          title;
          paper_expectation = expect;
          series = [ bench_series ~title:table_title ~cols cells ];
          notes = (match notes with Some f -> f cells | None -> []);
          headline = headline_of cells;
        });
  }

(* ---------------------------------------------------------------- *)
(* §1.1: value fanout and lifetime                                   *)
(* ---------------------------------------------------------------- *)

let fanout_lifetime =
  let cols = [ "used-once%"; "used<=2x%"; "unused%"; "life<=32%" ] in
  std ~id:"fanout-lifetime" ~title:"Value fanout and lifetime (paper §1.1)"
    ~expect:
      "~70% of values used once, ~90% used at most twice, ~4% unused; \
       ~80% of values live <=32 instructions"
    ~table_title:"Value fanout and lifetime (dynamic, conventional binaries)"
    ~cols
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let vs = C.Value_stats.of_trace (p.Suite.conv_trace ()) in
      [|
        C.Value_stats.fanout_exactly vs 1 *. 100.0;
        C.Value_stats.fanout_at_most vs 2 *. 100.0;
        C.Value_stats.unused_fraction vs *. 100.0;
        C.Value_stats.lifetime_at_most vs 32 *. 100.0;
      |])

(* ---------------------------------------------------------------- *)
(* Workload characterisation: dynamic instruction mix                *)
(* ---------------------------------------------------------------- *)

let instruction_mix =
  let cols = [ "loads%"; "stores%"; "branches%"; "fp%"; "int-alu%" ] in
  std ~id:"instruction-mix"
    ~title:"Workload characterisation: dynamic instruction mix of the 26 stand-ins"
    ~expect:
      "SPEC-like mixes: ~20-30% memory operations, ~10% branches on the \
       integer side, substantial FP compute on the floating-point side"
    ~table_title:"Dynamic instruction mix (%)" ~cols
    ~headline:[ ("loads%", "loads%"); ("branches%", "branches%"); ("fp%", "fp%") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let trc = p.Suite.conv_trace () in
      let n = float_of_int (max 1 (Trace.length trc)) in
      let count f =
        100.0
        *. float_of_int
             (Array.fold_left
                (fun acc e -> if f e then acc + 1 else acc)
                0 trc.Trace.events)
        /. n
      in
      [|
        count (fun e -> e.Trace.is_load);
        count (fun e -> e.Trace.is_store);
        count Trace.branch_of;
        count (fun e -> Op.is_fp e.Trace.instr.Instr.op);
        count (fun (e : Trace.event) ->
            match e.Trace.instr.Instr.op with
            | Op.Ibin _ | Op.Ibini _ | Op.Movi _ | Op.Cmov _ -> true
            | _ -> false);
      |])

(* ---------------------------------------------------------------- *)
(* Tables 1-3: static braid statistics                               *)
(* ---------------------------------------------------------------- *)

let braid_summary ctx ~scale pr =
  let p = Suite.prepare ctx ~scale pr in
  C.Braid_stats.summarize
    (C.Braid_stats.of_program p.Suite.braid.C.Transform.program)

let table1 =
  let cols = [ "braids/block"; "excl-singles" ] in
  let id = "table1" in
  let title = "Table 1: braids per basic block" in
  let expect =
    "int 2.8 / fp 3.8 braids per block; 1.1 / 1.5 excluding single-instruction \
     braids; 20% of instructions are single-instruction braids, 56% of those \
     branches/nops"
  in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job =
      (fun ctx ~scale pr ->
        let s = braid_summary ctx ~scale pr in
        [|
          s.C.Braid_stats.braids_per_block;
          s.C.Braid_stats.braids_per_block_multi;
          s.C.Braid_stats.single_instr_fraction *. 100.0;
          s.C.Braid_stats.single_branch_nop_fraction *. 100.0;
        |]);
    assemble =
      (fun _ctx ~scale:_ cells ->
        let singles = avg_at cells 2 and branchy = avg_at cells 3 in
        {
          id;
          title;
          paper_expectation = expect;
          series =
            [ bench_series ~title:"Braids per basic block (static)" ~cols cells ];
          notes =
            [
              Printf.sprintf
                "single-instruction braids: %.1f%% of all instructions; %.1f%% \
                 of them are branches/jumps/nops"
                singles branchy;
            ];
          headline =
            [
              metric "braids/block" (overall_avg cols cells "braids/block");
              metric "excl-singles" (overall_avg cols cells "excl-singles");
              metric "single-instr%" singles;
              metric "single-branch%" branchy;
            ];
        });
  }

let table2 =
  let cols = [ "size"; "size*"; "width"; "width*" ] in
  std ~id:"table2"
    ~title:"Table 2: braid size and width (* = excluding single-instruction braids)"
    ~expect:"size 2.5 int / 3.6 fp (4.7 / 7.6 excl. singles); width ~1.1 for both"
    ~table_title:"Braid size and width (static)" ~cols
    ~headline:
      [ ("size", "size"); ("size-excl-singles", "size*"); ("width-excl-singles", "width*") ]
    (fun ctx ~scale pr ->
      let s = braid_summary ctx ~scale pr in
      [|
        s.C.Braid_stats.avg_size;
        s.C.Braid_stats.avg_size_multi;
        s.C.Braid_stats.avg_width;
        s.C.Braid_stats.avg_width_multi;
      |])

let table3 =
  let cols = [ "internals"; "int*"; "ext-in"; "in*"; "ext-out"; "out*" ] in
  std ~id:"table3"
    ~title:"Table 3: braid internals, external inputs and outputs (* = excl. singles)"
    ~expect:
      "internals 1.7 int / 3.0 fp (4.0 / 7.5 excl.); ext inputs 1.7 / 2.2; \
       ext outputs 0.7 / 0.8"
    ~table_title:"Braid dependencies (static)" ~cols
    ~headline:
      [ ("internals-excl", "int*"); ("ext-in-excl", "in*"); ("ext-out-excl", "out*") ]
    (fun ctx ~scale pr ->
      let s = braid_summary ctx ~scale pr in
      [|
        s.C.Braid_stats.avg_internals;
        s.C.Braid_stats.avg_internals_multi;
        s.C.Braid_stats.avg_ext_inputs;
        s.C.Braid_stats.avg_ext_inputs_multi;
        s.C.Braid_stats.avg_ext_outputs;
        s.C.Braid_stats.avg_ext_outputs_multi;
      |])

(* ---------------------------------------------------------------- *)
(* Fig 1: potential of wider issue (perfect front end)               *)
(* ---------------------------------------------------------------- *)

let fig1 =
  let cols = [ "8w/4w"; "16w/4w" ] in
  std ~id:"fig1"
    ~title:"Fig 1: potential performance of 8/16-wide over 4-wide OoO (perfect BP+caches)"
    ~expect:"average speedups 1.44x (8-wide) and 1.83x (16-wide)"
    ~table_title:"Speedup over 4-wide conventional OoO, perfect front end" ~cols
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let run w =
        let cfg =
          U.Config.perfect_frontend (U.Config.scale_width U.Config.ooo_8wide w)
        in
        Suite.run_conv ctx p (named (Printf.sprintf "ooo-perfect-%dw" w) cfg)
      in
      let r4 = run 4 and r8 = run 8 and r16 = run 16 in
      [| U.Pipeline.speedup r4 r8; U.Pipeline.speedup r4 r16 |])

(* ---------------------------------------------------------------- *)
(* Fig 5: OoO sensitivity to register count                          *)
(* ---------------------------------------------------------------- *)

let fig5 =
  let counts = [ 8; 16; 32; 64; 256 ] in
  let cols = List.map string_of_int counts in
  std ~id:"fig5"
    ~title:"Fig 5: conventional OoO performance vs register count (normalised to 256)"
    ~expect:"32 registers lose ~8%, 16 registers lose ~21%"
    ~table_title:"OoO normalised performance vs registers" ~cols
    ~headline:[ ("regs-32", "32"); ("regs-16", "16") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let run n =
        Suite.run_conv ctx p
          (variant U.Config.ooo_8wide
             (Printf.sprintf "ooo-regs-%d" n)
             [ ikv "ext_regs" n ])
      in
      let base = run 256 in
      Array.of_list (List.map (fun n -> U.Pipeline.speedup base (run n)) counts))

(* ---------------------------------------------------------------- *)
(* Fig 6: braid sensitivity to external register count               *)
(* ---------------------------------------------------------------- *)

let fig6 =
  let counts = [ 1; 2; 4; 8; 16; 32; 256 ] in
  let cols = List.map string_of_int counts in
  std ~id:"fig6"
    ~title:"Fig 6: braid performance vs external register count (normalised to 256)"
    ~expect:"flat until 4 external registers; 8 entries match 256"
    ~table_title:"Braid normalised performance vs external registers" ~cols
    ~headline:[ ("extregs-8", "8"); ("extregs-4", "4"); ("extregs-2", "2") ]
    (fun ctx ~scale pr ->
      let run n =
        let p =
          Suite.prepare ctx ~scale
            ~ext_usable:(min n C.Extalloc.usable_per_class) pr
        in
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide
             (Printf.sprintf "braid-extregs-%d" n)
             [ ikv "ext_regs" n ])
      in
      let base = run 256 in
      Array.of_list
        (List.map
           (fun n ->
             let r = run n in
             float_of_int base.U.Pipeline.cycles /. float_of_int r.U.Pipeline.cycles)
           counts))

(* ---------------------------------------------------------------- *)
(* Fig 7: external register file ports                               *)
(* ---------------------------------------------------------------- *)

let fig7 =
  let ports = [ (4, 2); (6, 3); (8, 4); (16, 8) ] in
  let cols = List.map (fun (r, w) -> Printf.sprintf "%dr%dw" r w) ports in
  std ~id:"fig7"
    ~title:"Fig 7: braid performance vs external RF ports (normalised to 16r/8w)"
    ~expect:"6r/3w within 0.5% of the full port count"
    ~table_title:"Braid normalised performance vs RF ports" ~cols
    ~headline:[ ("6r3w", "6r3w"); ("4r2w", "4r2w") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let run (r, w) =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide
             (Printf.sprintf "braid-ports-%d-%d" r w)
             [ ikv "rf_read_ports" r; ikv "rf_write_ports" w ])
      in
      let base = run (16, 8) in
      Array.of_list (List.map (fun pw -> U.Pipeline.speedup base (run pw)) ports))

(* ---------------------------------------------------------------- *)
(* Fig 8: bypass paths                                               *)
(* ---------------------------------------------------------------- *)

let fig8 =
  let paths = [ 1; 2; 4; 8 ] in
  let cols = List.map string_of_int paths in
  std ~id:"fig8"
    ~title:"Fig 8: braid performance vs bypass paths per cycle (normalised to full bypass)"
    ~expect:"2 bypass values per cycle within 1% of a full network"
    ~table_title:"Braid normalised performance vs bypass paths" ~cols
    ~headline:[ ("bypass-2", "2"); ("bypass-1", "1") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let run n =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide
             (Printf.sprintf "braid-bypass-%d" n)
             [ ikv "bypass_per_cycle" n ])
      in
      let base =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-bypass-full"
             [ ikv "bypass_per_cycle" 64 ])
      in
      Array.of_list (List.map (fun n -> U.Pipeline.speedup base (run n)) paths))

(* ---------------------------------------------------------------- *)
(* Figs 9-12: execution-core parameters (normalised to 8-wide OoO)   *)
(* ---------------------------------------------------------------- *)

let braid_sweep ~id ~title ~expect ~cols ~configs =
  std ~id ~title ~expect ~table_title:title ~cols
    ~headline:(List.map (fun c -> ("cfg-" ^ c, c)) cols)
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_conv ctx p U.Config.ooo_8wide in
      Array.of_list
        (List.map
           (fun cfg -> U.Pipeline.speedup base (Suite.run_braid ctx p cfg))
           configs))

let fig9 =
  let counts = [ 1; 2; 4; 8; 16 ] in
  braid_sweep ~id:"fig9"
    ~title:"Fig 9: braid performance vs number of BEUs (normalised to 8-wide OoO)"
    ~expect:"rising with BEU count: more ready braids than BEUs; 8 BEUs near OoO"
    ~cols:(List.map string_of_int counts)
    ~configs:
      (List.map
         (fun n ->
           variant U.Config.braid_8wide
             (Printf.sprintf "braid-beus-%d" n)
             [ ikv "clusters" n ])
         counts)

let fig10 =
  let sizes = [ 4; 8; 16; 32; 64 ] in
  braid_sweep ~id:"fig10"
    ~title:"Fig 10: braid performance vs FIFO queue entries (normalised to 8-wide OoO)"
    ~expect:"32 entries capture almost all performance (99% of braids are <=32 instructions)"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           variant U.Config.braid_8wide
             (Printf.sprintf "braid-fifo-%d" n)
             [ ikv "cluster_entries" n ])
         sizes)

let fig11 =
  let sizes = [ 1; 2; 4; 8 ] in
  braid_sweep ~id:"fig11"
    ~title:"Fig 11: braid performance vs FIFO scheduling window (normalised to 8-wide OoO)"
    ~expect:"steep rise from 1 to 2, plateau beyond: ready instructions sit at the head"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           variant U.Config.braid_8wide
             (Printf.sprintf "braid-window-%d" n)
             [ ikv "sched_window" n ])
         sizes)

let fig12 =
  let sizes = [ 1; 2; 4; 8 ] in
  braid_sweep ~id:"fig12"
    ~title:"Fig 12: braid performance vs window size = FUs per BEU (normalised to 8-wide OoO)"
    ~expect:"same trend as Fig 11: braid ILP is ~2, more FUs do not help"
    ~cols:(List.map string_of_int sizes)
    ~configs:
      (List.map
         (fun n ->
           variant U.Config.braid_8wide
             (Printf.sprintf "braid-winfu-%d" n)
             [ ikv "sched_window" n; ikv "fus_per_cluster" n ])
         sizes)

(* ---------------------------------------------------------------- *)
(* Fig 13: the four paradigms at 4/8/16-wide                         *)
(* ---------------------------------------------------------------- *)

let fig13 =
  let widths = [ 4; 8; 16 ] in
  let cols =
    List.concat_map
      (fun w ->
        List.map (fun k -> Printf.sprintf "%s-%d" k w) [ "io"; "dep"; "braid"; "ooo" ])
      widths
  in
  let id = "fig13" in
  let title =
    "Fig 13: in-order / dependence-steering / braid / OoO at 4, 8, 16-wide \
     (normalised to 8-wide OoO)"
  in
  let expect =
    "braid within ~9% of 8-wide OoO; significant gains remain at wider widths; \
     the braid-OoO gap closes as width grows"
  in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job =
      (fun ctx ~scale pr ->
        let p = Suite.prepare ctx ~scale pr in
        let base = Suite.run_conv ctx p U.Config.ooo_8wide in
        Array.of_list
          (List.concat_map
             (fun w ->
               let scale_of cfg = U.Config.scale_width cfg w in
               let io = Suite.run_conv ctx p (scale_of U.Config.in_order_8wide) in
               let dep = Suite.run_conv ctx p (scale_of U.Config.dep_steer_8wide) in
               let braid = Suite.run_braid ctx p (scale_of U.Config.braid_8wide) in
               let ooo = Suite.run_conv ctx p (scale_of U.Config.ooo_8wide) in
               List.map (U.Pipeline.speedup base) [ io; dep; braid; ooo ])
             widths));
    assemble =
      (fun _ctx ~scale:_ cells ->
        let avg c = overall_avg cols cells c in
        {
          id;
          title;
          paper_expectation = expect;
          series =
            [
              bench_series
                ~title:"Normalised performance, four paradigms x three widths"
                ~cols cells;
            ];
          notes = [];
          headline =
            [
              metric "braid8/ooo8" (avg "braid-8" /. avg "ooo-8");
              metric "braid4/ooo4" (avg "braid-4" /. avg "ooo-4");
              metric "braid16/ooo16" (avg "braid-16" /. avg "ooo-16");
              metric "io8/ooo8" (avg "io-8" /. avg "ooo-8");
              metric "dep8/ooo8" (avg "dep-8" /. avg "ooo-8");
            ];
        });
  }

(* ---------------------------------------------------------------- *)
(* Fig 14: equal functional-unit resources                           *)
(* ---------------------------------------------------------------- *)

let fig14 =
  let cols = [ "4beu-2fu"; "8beu-1fu" ] in
  std ~id:"fig14"
    ~title:"Fig 14: equal FU budget — 4 BEUx2FU vs 8 BEUx1FU (normalised to 8 BEUx2FU)"
    ~expect:"more BEUs with fewer FUs each beats fewer, wider BEUs"
    ~table_title:"Braid normalised performance at 8 total FUs" ~cols
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_braid ctx p U.Config.braid_8wide in
      let a =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-4x2"
             [ ikv "clusters" 4; ikv "fus_per_cluster" 2 ])
      in
      let b =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-8x1"
             [ ikv "clusters" 8; ikv "fus_per_cluster" 1 ])
      in
      [| U.Pipeline.speedup base a; U.Pipeline.speedup base b |])

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

(* A two-column "baseline vs variant" ablation whose headline is the
   average percentage gain of the variant. *)
let gain_ablation ~id ~title ~expect ~table_title ~variant_col ~note bench_job =
  let cols = [ "baseline"; variant_col ] in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job;
    assemble =
      (fun _ctx ~scale:_ cells ->
        let gain = (overall_avg cols cells variant_col -. 1.0) *. 100.0 in
        {
          id;
          title;
          paper_expectation = expect;
          series = [ bench_series ~title:table_title ~cols cells ];
          notes = [ Printf.sprintf "%s: %.2f%%" note gain ];
          headline = [ metric "gain%" gain ];
        });
  }

let pipeline_ablation =
  gain_ablation ~id:"pipeline-ablation"
    ~title:"§5.1 ablation: gain from the 4-stage-shorter braid pipeline (19 vs 23-cycle penalty)"
    ~expect:"the shorter pipeline is worth ~2.19% on average"
    ~table_title:"Braid speedup from the shorter pipeline (23-cycle baseline)"
    ~variant_col:"penalty-19" ~note:"average gain from shorter pipeline"
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let deep =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-deep"
             [ ikv "misprediction_penalty" 23 ])
      in
      let short = Suite.run_braid ctx p U.Config.braid_8wide in
      [| 1.0; U.Pipeline.speedup deep short |])

let split_ablation =
  (* the internal register file has 8 entries, so thresholds above 8 are
     not encodable; sweep below it *)
  let thresholds = [ 2; 4; 6; 8 ] in
  let cols = List.map (fun thr -> Printf.sprintf "wset-%d" thr) thresholds in
  let id = "split-ablation" in
  let title =
    "Ablation: internal working-set threshold (braids split when internals exceed it)"
  in
  let expect = "8 internal registers suffice; splitting at 8 affects ~2% of braids" in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job =
      (fun ctx ~scale pr ->
        let runs =
          List.map
            (fun thr ->
              let p = Suite.prepare ctx ~scale ~max_internal:thr pr in
              ( p,
                Suite.run_braid ctx p
                  (named (Printf.sprintf "braid-wset-%d" thr) U.Config.braid_8wide) ))
            thresholds
        in
        let p8, base = List.nth runs 3 (* threshold 8 *) in
        let split_frac =
          float_of_int p8.Suite.braid.C.Transform.splits_working_set
          /. float_of_int (max 1 p8.Suite.braid.C.Transform.braids)
        in
        Array.of_list
          (List.map (fun (_, r) -> U.Pipeline.speedup base r) runs @ [ split_frac ]));
    assemble =
      (fun _ctx ~scale:_ cells ->
        let split_pct = 100.0 *. avg_at cells 4 in
        {
          id;
          title;
          paper_expectation = expect;
          series =
            [
              bench_series
                ~title:"Braid performance vs working-set threshold (normalised to 8)"
                ~cols cells;
            ];
          notes =
            [ Printf.sprintf "braids split at threshold 8: %.2f%% (average)" split_pct ];
          headline =
            [
              metric "split%@8" split_pct;
              metric "wset-4" (overall_avg cols cells "wset-4");
              metric "wset-2" (overall_avg cols cells "wset-2");
            ];
        });
  }

let spill_ablation =
  let budgets = [ 4; 8; 16; 28 ] in
  let cols =
    List.concat_map
      (fun b -> [ Printf.sprintf "conv@%d" b; Printf.sprintf "braid@%d" b ])
      budgets
  in
  std ~id:"spill-ablation"
    ~title:
      "§5.2 ablation: static spill instructions, conventional vs braid compilation, \
       per register budget"
    ~expect:
      "braid register management reduces spill/fill code (fewer external values \
       competing for registers)"
    ~table_title:"Static spill instructions (loads+stores)" ~cols
    ~headline:[ ("conv@8", "conv@8"); ("braid@8", "braid@8") ]
    (fun _ctx ~scale pr ->
      Array.of_list
        (List.concat_map
           (fun budget ->
             let virtual_ir, _ = Spec.generate pr ~seed:1 ~scale in
             let conv = C.Extalloc.allocate ~usable:budget virtual_ir in
             let braid = C.Transform.run ~ext_usable:budget virtual_ir in
             [
               float_of_int
                 (conv.C.Extalloc.spill_loads + conv.C.Extalloc.spill_stores);
               float_of_int
                 (braid.C.Transform.alloc.C.Extalloc.spill_loads
                 + braid.C.Transform.alloc.C.Extalloc.spill_stores);
             ])
           budgets))

(* ---------------------------------------------------------------- *)
(* §5.1: complexity and switching-activity comparison                *)
(* ---------------------------------------------------------------- *)

let complexity_table =
  let static_configs =
    [ U.Config.in_order_8wide; U.Config.dep_steer_8wide; U.Config.braid_8wide;
      U.Config.ooo_8wide ]
  in
  let activity_cols =
    [ "ext RF acc/instr"; "int RF acc/instr"; "bypass/instr"; "wakeup work/instr" ]
  in
  let id = "complexity-table" in
  let title = "§5.1: static complexity indices and per-instruction switching activity" in
  let expect =
    "braid avoids large associative structures: tiny external RF, FIFO \
     schedulers without tag broadcast, 1-level bypass — complexity close to \
     in-order, far from out-of-order"
  in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job =
      (fun ctx ~scale pr ->
        let p = Suite.prepare ctx ~scale pr in
        let fields (e : U.Complexity.energy_proxy) =
          [
            e.U.Complexity.ext_rf_accesses_per_instr;
            e.U.Complexity.int_rf_accesses_per_instr;
            e.U.Complexity.bypass_values_per_instr;
            e.U.Complexity.broadcast_work_per_instr;
          ]
        in
        let ooo =
          U.Complexity.energy_of_run U.Config.ooo_8wide
            (Suite.run_conv ctx p U.Config.ooo_8wide)
        in
        let braid =
          U.Complexity.energy_of_run U.Config.braid_8wide
            (Suite.run_braid ctx p U.Config.braid_8wide)
        in
        Array.of_list (fields ooo @ fields braid));
    assemble =
      (fun _ctx ~scale:_ cells ->
        let static_series =
          {
            s_title = "Static area/complexity indices";
            columns =
              [ "RF area"; "scheduler"; "bypass"; "total"; "rename ports"; "wakeup/result" ];
            rows =
              List.map
                (fun cfg ->
                  let c = U.Complexity.of_config cfg in
                  {
                    label = cfg.U.Config.name;
                    cls = Config_row;
                    values =
                      [
                        c.U.Complexity.rf_area;
                        c.U.Complexity.scheduler_area;
                        c.U.Complexity.bypass_area;
                        c.U.Complexity.total;
                        c.U.Complexity.rename_ports;
                        c.U.Complexity.wakeup_broadcast_per_result;
                      ];
                  })
                static_configs;
            averages = false;
            decimals = 0;
          }
        in
        let activity_row label offset =
          {
            label;
            cls = Config_row;
            values = List.init 4 (fun i -> avg_at cells (offset + i));
          }
        in
        let activity_series =
          {
            s_title = "Dynamic activity (suite average)";
            columns = activity_cols;
            rows = [ activity_row "ooo-8" 0; activity_row "braid-8" 4 ];
            averages = false;
            decimals = 2;
          }
        in
        let ooo_c = U.Complexity.of_config U.Config.ooo_8wide in
        let braid_c = U.Complexity.of_config U.Config.braid_8wide in
        let io_c = U.Complexity.of_config U.Config.in_order_8wide in
        {
          id;
          title;
          paper_expectation = expect;
          series = [ static_series; activity_series ];
          notes = [];
          headline =
            [
              metric "ooo/braid-total" (U.Complexity.relative ooo_c braid_c);
              metric "braid/inorder-total" (U.Complexity.relative braid_c io_c);
            ];
        });
  }

(* ---------------------------------------------------------------- *)
(* §5.1: out-of-order scheduling inside the BEU                      *)
(* ---------------------------------------------------------------- *)

let beu_ooo_ablation =
  gain_ablation ~id:"beu-ooo-ablation"
    ~title:"§5.1 ablation: out-of-order selection inside each BEU (vs 2-entry FIFO window)"
    ~expect:
      "considered and rejected: braids are narrow, so an out-of-order BEU \
       scheduler buys almost nothing for its complexity"
    ~table_title:"Braid speedup from an OoO scheduler in the BEU"
    ~variant_col:"ooo-in-beu" ~note:"average gain"
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_braid ctx p U.Config.braid_8wide in
      let oooed =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-ooo-beu"
             [ ("beu_out_of_order", "true") ])
      in
      [| 1.0; U.Pipeline.speedup base oooed |])

(* ---------------------------------------------------------------- *)
(* §5.2: clustering BEUs                                             *)
(* ---------------------------------------------------------------- *)

let clustering_ablation =
  let variants =
    [ ("flat", 0, 0); ("2x4+2cyc", 4, 2); ("4x2+2cyc", 2, 2); ("2x4+4cyc", 4, 4) ]
  in
  let cols = List.map (fun (n, _, _) -> n) variants in
  std ~id:"clustering-ablation"
    ~title:"§5.2: clustered BEUs — inter-cluster values pay extra latency"
    ~expect:
      "clustering is orthogonal: fast intra-cluster communication preserves \
       most performance while easing wiring"
    ~table_title:"Braid performance under BEU clustering (normalised to flat)" ~cols
    ~headline:[ ("2x4+2cyc", "2x4+2cyc"); ("2x4+4cyc", "2x4+4cyc") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_braid ctx p U.Config.braid_8wide in
      Array.of_list
        (List.map
           (fun (n, size, lat) ->
             let r =
               Suite.run_braid ctx p
                 (variant U.Config.braid_8wide ("braid-clu-" ^ n)
                    [ ikv "beu_cluster_size" size; ikv "inter_cluster_latency" lat ])
             in
             U.Pipeline.speedup base r)
           variants))

(* ---------------------------------------------------------------- *)
(* Binary translation vs braid-aware compilation (§3.1 methodology)  *)
(* ---------------------------------------------------------------- *)

let binary_translation =
  let cols = [ "compiled"; "translated" ] in
  std ~id:"binary-translation"
    ~title:
      "Methodology ablation: braid-aware compilation vs binary translation of a \
       preexisting binary (both normalised to 8-wide OoO)"
    ~expect:
      "the paper braided preexisting Alpha binaries and notes a braid-aware \
       compiler would do better (more internal values, no translation \
       artifacts)"
    ~table_title:"Braid performance: compiled vs translated binary" ~cols
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_conv ctx p U.Config.ooo_8wide in
      let compiled = Suite.run_braid ctx p U.Config.braid_8wide in
      (* braid the already-allocated conventional binary, as the paper's
         profiling + binary-translation tools did *)
      let translated_prog =
        (C.Transform.run_binary p.Suite.conventional.C.Extalloc.program)
          .C.Transform.program
      in
      let out =
        Emulator.run ~max_steps:(50 * scale) ~init_mem:p.Suite.init_mem
          translated_prog
      in
      let translated =
        U.Pipeline.run ~warm_data:p.Suite.warm_data
          (named "braid-translated" U.Config.braid_8wide)
          (Option.get out.Emulator.trace)
      in
      [| U.Pipeline.speedup base compiled; U.Pipeline.speedup base translated |])

(* ---------------------------------------------------------------- *)
(* §3.4: checkpoints — braid checkpoints are small, so equal storage *)
(* buys more of them                                                 *)
(* ---------------------------------------------------------------- *)

let checkpoint_ablation =
  let counts = [ 1; 2; 4; 8; 16 ] in
  let cols =
    List.concat_map
      (fun n -> [ Printf.sprintf "ooo@%d" n; Printf.sprintf "braid@%d" n ])
      counts
  in
  (* equal checkpoint storage: a conventional checkpoint snapshots a
     256-entry map, a braid checkpoint the 8-entry external file and no
     internal state (§3.4) — call it 8x more checkpoints per byte *)
  let note _cells =
    [
      "equal-storage reading: compare ooo@2 against braid@16 — a braid \
       checkpoint carries ~1/8 the state (8-entry external file, no internal \
       values), so the same budget buys 8x more checkpoints.";
    ]
  in
  std ~id:"checkpoint-ablation"
    ~title:"§3.4 ablation: performance vs checkpoint count (unresolved branches in flight)"
    ~expect:
      "checkpoints require less state in the braid machine: internal values \
       are dead at braid boundaries and never checkpointed"
    ~table_title:
      "Performance vs checkpoint count (each normalised to its own unlimited machine)"
    ~cols ~notes:note
    ~headline:[ ("ooo@2", "ooo@2"); ("braid@2", "braid@2"); ("braid@16", "braid@16") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let ooo_base = Suite.run_conv ctx p U.Config.ooo_8wide in
      let braid_base = Suite.run_braid ctx p U.Config.braid_8wide in
      Array.of_list
        (List.concat_map
           (fun n ->
             let ooo =
               Suite.run_conv ctx p
                 (variant U.Config.ooo_8wide
                    (Printf.sprintf "ooo-ckpt-%d" n)
                    [ ikv "max_unresolved_branches" n ])
             in
             let braid =
               Suite.run_braid ctx p
                 (variant U.Config.braid_8wide
                    (Printf.sprintf "braid-ckpt-%d" n)
                    [ ikv "max_unresolved_branches" n ])
             in
             [ U.Pipeline.speedup ooo_base ooo; U.Pipeline.speedup braid_base braid ])
           counts))

(* ---------------------------------------------------------------- *)
(* Predictor ablation: Table 4's perceptron vs a gshare baseline     *)
(* ---------------------------------------------------------------- *)

let predictor_ablation =
  let cols = [ "gshare-perf"; "gshare-mpki"; "perceptron-mpki" ] in
  std ~id:"predictor-ablation"
    ~title:"Predictor ablation: perceptron (Table 4) vs gshare on the braid machine"
    ~expect:
      "the aggressive front end matters: the perceptron's long history should \
       beat a gshare baseline"
    ~table_title:"Gshare performance relative to perceptron, and MPKI" ~cols
    ~headline:
      [
        ("gshare-relative", "gshare-perf");
        ("gshare-mpki", "gshare-mpki");
        ("perceptron-mpki", "perceptron-mpki");
      ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let perceptron = Suite.run_braid ctx p U.Config.braid_8wide in
      let gshare =
        Suite.run_braid ctx p
          (variant U.Config.braid_8wide "braid-gshare"
             [ ("predictor", "gshare") ])
      in
      let mpki (r : U.Pipeline.result) =
        1000.0 *. float_of_int r.U.Pipeline.branch_mispredicts
        /. float_of_int r.U.Pipeline.instructions
      in
      [| U.Pipeline.speedup perceptron gshare; mpki gshare; mpki perceptron |])

(* ---------------------------------------------------------------- *)
(* Static vs dynamic braid statistics                                *)
(* ---------------------------------------------------------------- *)

let dynamic_braids =
  let cols = [ "static-b/blk"; "dyn-b/blk"; "static-size"; "dyn-size"; "dyn-single%" ] in
  std ~id:"dynamic-braids"
    ~title:"Static vs execution-weighted braid statistics"
    ~expect:
      "hot inner blocks dominate execution, so dynamic braids are slightly \
       larger and block occupancy higher than the static averages of Tables 1-2"
    ~table_title:"Braid statistics, static and dynamic" ~cols
    ~headline:[ ("dyn-braids/block", "dyn-b/blk"); ("dyn-size", "dyn-size") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let s =
        C.Braid_stats.summarize
          (C.Braid_stats.of_program p.Suite.braid.C.Transform.program)
      in
      let d = C.Braid_stats.dynamic_of_trace (p.Suite.braid_trace ()) in
      [|
        s.C.Braid_stats.braids_per_block;
        d.C.Braid_stats.dyn_braids_per_block;
        s.C.Braid_stats.avg_size;
        d.C.Braid_stats.dyn_avg_size;
        d.C.Braid_stats.dyn_single_fraction *. 100.0;
      |])

(* ---------------------------------------------------------------- *)
(* Front-end fidelity: wrong-path fetch pollution and a finite BTB    *)
(* ---------------------------------------------------------------- *)

let frontend_ablation =
  let cols = [ "baseline"; "wrong-path"; "btb-512"; "btb-64" ] in
  std ~id:"frontend-ablation"
    ~title:
      "Front-end fidelity ablation: wrong-path I-cache pollution and finite BTBs \
       (braid machine, normalised to the default front end)"
    ~expect:
      "the default model treats wrong-path work as a pure bubble and targets \
       as perfect; these options bound how much that flatters the results"
    ~table_title:"Braid performance under front-end fidelity options" ~cols
    ~headline:
      [ ("wrong-path", "wrong-path"); ("btb-512", "btb-512"); ("btb-64", "btb-64") ]
    (fun ctx ~scale pr ->
      let p = Suite.prepare ctx ~scale pr in
      let base = Suite.run_braid ctx p U.Config.braid_8wide in
      let run name kvs =
        Suite.run_braid ctx p (variant U.Config.braid_8wide name kvs)
      in
      let wp = run "braid-wrongpath" [ ("model_wrong_path_fetch", "true") ] in
      let btb n = run (Printf.sprintf "braid-btb%d" n) [ ikv "btb_entries" n ] in
      [|
        1.0;
        U.Pipeline.speedup base wp;
        U.Pipeline.speedup base (btb 512);
        U.Pipeline.speedup base (btb 64);
      |])

(* ---------------------------------------------------------------- *)
(* Seed robustness: the headline result across workload seeds        *)
(* ---------------------------------------------------------------- *)

let seed_robustness =
  let seeds = [ 1; 2; 3 ] in
  let cols = List.map (fun s -> Printf.sprintf "seed-%d" s) seeds in
  let id = "seed-robustness" in
  let title =
    "Robustness: braid/OoO performance ratio across three workload-generation seeds"
  in
  let expect =
    "the headline ratio should be a property of the workload shapes, not \
     of one particular random instance"
  in
  {
    id;
    title;
    paper_expectation = expect;
    bench_job =
      (fun ctx ~scale pr ->
        Array.of_list
          (List.map
             (fun seed ->
               let p = Suite.prepare ctx ~seed ~scale pr in
               let ooo = Suite.run_conv ctx p U.Config.ooo_8wide in
               let braid = Suite.run_braid ctx p U.Config.braid_8wide in
               U.Pipeline.speedup ooo braid)
             seeds));
    assemble =
      (fun _ctx ~scale:_ cells ->
        let per_seed = List.map (fun c -> overall_avg cols cells c) cols in
        let spread =
          List.fold_left max 0.0 per_seed -. List.fold_left min 2.0 per_seed
        in
        {
          id;
          title;
          paper_expectation = expect;
          series =
            [ bench_series ~title:"braid-8 relative to ooo-8, per seed" ~cols cells ];
          notes =
            [ Printf.sprintf "spread of the suite average across seeds: %.3f" spread ];
          headline =
            List.map2 (fun c v -> metric c v) cols per_seed
            @ [ metric "spread" spread ];
        });
  }

let all : t list =
  [
    fanout_lifetime;
    instruction_mix;
    table1;
    table2;
    table3;
    fig1;
    fig5;
    fig6;
    fig7;
    fig8;
    fig9;
    fig10;
    fig11;
    fig12;
    fig13;
    fig14;
    pipeline_ablation;
    split_ablation;
    spill_ablation;
    complexity_table;
    beu_ooo_ablation;
    clustering_ablation;
    binary_translation;
    checkpoint_ablation;
    predictor_ablation;
    dynamic_braids;
    frontend_ablation;
    seed_robustness;
  ]

let find id =
  match List.find_opt (fun e -> String.equal e.id id) all with
  | Some e -> e
  | None -> raise Not_found

let run ctx ~scale e =
  e.assemble ctx ~scale
    (List.map (fun pr -> (pr, e.bench_job ctx ~scale pr)) Spec.all)

(* --- observability counters (opt-in; braidsim experiment --counters) --- *)

module Obs = Braid_obs

type counters = (string * (string * Obs.Counters.value) list) list

let counters_report ctx ~scale =
  List.map
    (fun (profile : Spec.profile) ->
      let p = Suite.prepare ctx ~scale profile in
      let obs = Obs.Sink.create () in
      ignore
        (U.Pipeline.run ~obs ~warm_data:p.Suite.warm_data U.Config.braid_8wide
           (p.Suite.braid_trace ()));
      (profile.Spec.name, Obs.Counters.snapshot (Obs.Sink.counters obs)))
    Spec.all
