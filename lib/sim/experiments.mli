(** One experiment per table and figure of the paper's evaluation, plus the
    ablations DESIGN.md calls out. Each experiment produces a *typed* result
    — float-carrying rows, series and headline metrics — that downstream
    consumers (the {!Report} renderer, the JSON exporter, the bench harness)
    interpret; nothing here is pre-rendered text.

    An experiment decomposes into one pure job per benchmark
    ({!field:bench_job}) plus a cheap {!field:assemble} step that folds the
    per-benchmark payloads into the final result. {!Runner} exploits this to
    fan the (experiment × benchmark) job matrix out across domains; {!run}
    is the serial equivalent. Jobs are deterministic in
    [(ctx-independent inputs, scale)], so serial and parallel execution
    produce identical results. *)

type row_class =
  | Int_row  (** an integer benchmark — aggregated into "int avg" *)
  | Fp_row  (** a floating-point benchmark — aggregated into "fp avg" *)
  | Config_row  (** a configuration / non-benchmark label; never averaged *)

type row = { label : string; cls : row_class; values : float list }
(** One table row: a benchmark (or configuration) and one float per
    column of the enclosing {!series}. *)

type series = {
  s_title : string;
  columns : string list;
  rows : row list;
  averages : bool;
      (** append int/fp/overall average rows (and an average bar chart)
          when rendering *)
  decimals : int;  (** numeric precision when rendered as text *)
}

type metric = { m_label : string; value : float }
(** A headline number, e.g. ("braid8/ooo8", 0.91). *)

type result = {
  id : string;  (** e.g. "fig13" *)
  title : string;
  paper_expectation : string;
      (** the claim from the paper this experiment checks, for
          EXPERIMENTS.md *)
  series : series list;  (** the tables/figures, in print order *)
  notes : string list;  (** prose annotations printed after the tables *)
  headline : metric list;  (** numbers for the summary table *)
}

type cells = (Braid_workload.Spec.profile * float array) list
(** Per-benchmark job payloads, in {!Braid_workload.Spec.all} order. *)

type t = {
  id : string;
  title : string;
  paper_expectation : string;
  bench_job : Suite.ctx -> scale:int -> Braid_workload.Spec.profile -> float array;
      (** the pure per-benchmark unit of work: every simulation the
          experiment needs for that benchmark, reduced to a flat float
          payload *)
  assemble : Suite.ctx -> scale:int -> cells -> result;
      (** folds all payloads (one per benchmark, in suite order) into the
          typed result; cheap, no simulation *)
}

val all : t list
(** Every experiment, in paper order: stats, tables 1–3, figs 1 and 5–14,
    and the ablations. Ids are unique. *)

val find : string -> t
(** Look an experiment up by id. Raises [Not_found] for unknown ids. *)

val run : Suite.ctx -> scale:int -> t -> result
(** Run one experiment serially: every [bench_job], then [assemble]. *)

type counters = (string * (string * Braid_obs.Counters.value) list) list
(** Per-benchmark counter snapshots: [(benchmark name, registry alist)]
    in suite order. *)

val counters_report : Suite.ctx -> scale:int -> counters
(** Run every benchmark once on the 8-wide braid machine with a live
    observability sink and snapshot each run's counter registry —
    the Fig 6/Fig 7 explanatory metrics (external-file early releases,
    bypass overflows, BEU occupancy, ...). Separate from the memoised
    {!Suite.run_braid} results, which stay observability-free. *)
