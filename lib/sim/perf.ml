module Spec = Braid_workload.Spec
module U = Braid_uarch

(* Simulator-throughput harness behind `bench --perf`: times N repeated
   timing-model runs of a fixed benchmark subset on each core model and
   reports simulated cycles per wall-clock second. The trace is prepared
   once (generation, compilation and emulation are excluded from the timed
   region), so the numbers isolate the cycle-level hot path this repo keeps
   optimising — BENCH_sim.json files are its trajectory across PRs. *)

type entry = {
  bench : string;
  core : string;
  instructions : int;
  cycles : int;
  reps : int;
  wall_s : float;  (* total for all [reps] runs *)
}

let sim_cycles_per_s e =
  if e.wall_s <= 0.0 then 0.0
  else float_of_int e.cycles *. float_of_int e.reps /. e.wall_s

let sim_instrs_per_s e =
  if e.wall_s <= 0.0 then 0.0
  else float_of_int e.instructions *. float_of_int e.reps /. e.wall_s

(* Three int + three fp stand-ins spanning the simulator's behaviours:
   pointer chasing with far misses (mcf), hashing (gzip), branchy search
   (crafty), wide stencils (swim), gathers/reductions (art) and the deepest
   FP chains (mgrid) — plus two RV32IM fixtures through the frontend. *)
let rv_benches = [ "rv:fib"; "rv:crc32" ]

let default_benches =
  [ "gzip"; "mcf"; "crafty"; "swim"; "art"; "mgrid" ] @ rv_benches

let is_rv name = String.length name > 3 && String.sub name 0 3 = "rv:"

let cores =
  [
    ("in-order", U.Config.in_order_8wide, `Conv);
    ("ooo", U.Config.ooo_8wide, `Conv);
    ("braid", U.Config.braid_8wide, `Braid);
  ]

let timed reps run =
  (* one untimed warm-up run faults in code and sizes the heap *)
  let r = run () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (run ())
  done;
  (r, Unix.gettimeofday () -. t0)

(* An rv: fixture yields four entries: a "frontend" row timing the
   decode+lower pass itself (instructions = reachable RV instructions,
   cycles = static IR emitted, so sim_instrs_per_s is frontend throughput),
   then the usual three timing-core rows on the translated program. The
   fixture is fixed-size; [scale] does not apply. *)
let measure_rv ~reps name =
  let fixture = String.sub name 3 (String.length name - 3) in
  let img =
    match Braid_rv.Fixtures.image fixture with
    | Some img -> img
    | None -> raise Not_found
  in
  let translate () =
    match Braid_rv.Translate.run img with
    | Ok t -> t
    | Error e -> failwith (name ^ ": " ^ Braid_rv.Translate.error_to_string e)
  in
  let t, wall_s = timed reps translate in
  let frontend =
    {
      bench = name;
      core = "frontend";
      instructions = t.Braid_rv.Translate.rv_count;
      cycles = t.Braid_rv.Translate.ir_count;
      reps;
      wall_s;
    }
  in
  let program = t.Braid_rv.Translate.program in
  let init_mem = t.Braid_rv.Translate.init_mem in
  let conv =
    (Braid_core.Transform.conventional program).Braid_core.Extalloc.program
  in
  let braided = (Braid_core.Transform.run program).Braid_core.Transform.program in
  let trace_of p = Option.get (Emulator.run ~init_mem p).Emulator.trace in
  let conv_trace = trace_of conv and braid_trace = trace_of braided in
  let warm_data = List.map fst init_mem in
  frontend
  :: List.map
       (fun (core, cfg, binary) ->
         let trace =
           match binary with `Conv -> conv_trace | `Braid -> braid_trace
         in
         let r, wall_s =
           timed reps (fun () -> U.Pipeline.run ~warm_data cfg trace)
         in
         {
           bench = name;
           core;
           instructions = r.U.Pipeline.instructions;
           cycles = r.U.Pipeline.cycles;
           reps;
           wall_s;
         })
       cores

let measure ctx ~scale ~reps ~benches =
  if reps <= 0 then invalid_arg "Perf.measure: reps must be positive";
  List.concat_map
    (fun name ->
      if is_rv name then measure_rv ~reps name
      else
      let pr = Spec.find name in
      let p = Suite.prepare ctx ~scale pr in
      List.map
        (fun (core, cfg, binary) ->
          let trace =
            match binary with
            | `Conv -> p.Suite.conv_trace
            | `Braid -> p.Suite.braid_trace
          in
          let run () =
            U.Pipeline.run ~warm_data:p.Suite.warm_data cfg trace
          in
          (* one untimed warm-up run faults in code and sizes the heap *)
          let r = run () in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            ignore (run ())
          done;
          let wall_s = Unix.gettimeofday () -. t0 in
          {
            bench = name;
            core;
            instructions = r.U.Pipeline.instructions;
            cycles = r.U.Pipeline.cycles;
            reps;
            wall_s;
          })
        cores)
    benches

(* --- BENCH_*.json --- *)

let schema = "braidsim-perf/1"

(* Baseline lookup from a previous BENCH_*.json, parsed with the in-tree
   minimal JSON parser: (bench, core) -> sim_cycles_per_s. *)
type baseline = (string * string, float) Hashtbl.t

let load_baseline file : baseline =
  let ic = open_in file in
  let doc =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse doc with
  | Error msg -> failwith (Printf.sprintf "%s: not valid JSON: %s" file msg)
  | Ok j -> (
      let module J = Json in
      let tbl = Hashtbl.create 32 in
      let field name = function
        | J.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      let str = function Some (J.Str s) -> Some s | _ -> None in
      let num = function Some (J.Num x) -> Some x | _ -> None in
      match field "entries" j with
      | Some (J.Arr entries) ->
          List.iter
            (fun e ->
              match
                ( str (field "bench" e),
                  str (field "core" e),
                  num (field "sim_cycles_per_s" e) )
              with
              | Some b, Some c, Some v -> Hashtbl.replace tbl (b, c) v
              | _ -> ())
            entries;
          tbl
      | _ -> failwith (Printf.sprintf "%s: missing \"entries\" array" file))

let json_of_entry ?baseline e =
  let speedup =
    match baseline with
    | None -> []
    | Some tbl -> (
        match Hashtbl.find_opt tbl (e.bench, e.core) with
        | Some prev when prev > 0.0 ->
            [ ("speedup_vs_baseline", Json.float_lit (sim_cycles_per_s e /. prev)) ]
        | Some _ | None -> [])
  in
  Json.obj_lit
    ([
       ("bench", Json.escape_string e.bench);
       ("core", Json.escape_string e.core);
       ("instructions", string_of_int e.instructions);
       ("cycles", string_of_int e.cycles);
       ("reps", string_of_int e.reps);
       ("wall_s", Json.float_lit e.wall_s);
       ("sim_cycles_per_s", Json.float_lit (sim_cycles_per_s e));
       ("sim_instrs_per_s", Json.float_lit (sim_instrs_per_s e));
     ]
    @ speedup)

let to_json ?baseline ~scale ~reps entries =
  let total_wall =
    List.fold_left (fun acc e -> acc +. e.wall_s) 0.0 entries
  in
  let total_cycles =
    List.fold_left
      (fun acc e -> acc +. (float_of_int e.cycles *. float_of_int e.reps))
      0.0 entries
  in
  Json.obj_lit
    [
      ("schema", Json.escape_string schema);
      ("scale", string_of_int scale);
      ("reps", string_of_int reps);
      ("entries", Json.list_lit (json_of_entry ?baseline) entries);
      ( "totals",
        Json.obj_lit
          [
            ("wall_s", Json.float_lit total_wall);
            ( "sim_cycles_per_s",
              Json.float_lit
                (if total_wall <= 0.0 then 0.0 else total_cycles /. total_wall)
            );
          ] );
    ]
  ^ "\n"

let write_json ?baseline ~file ~scale ~reps entries =
  let doc = to_json ?baseline ~scale ~reps entries in
  if file = "-" then print_string doc
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
  end

let render entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-10s %-9s %11s %9s %9s %14s\n" "bench" "core" "cycles"
       "reps" "wall_s" "sim-cycles/s");
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%-10s %-9s %11d %9d %9.3f %14.0f\n" e.bench e.core
           e.cycles e.reps e.wall_s (sim_cycles_per_s e)))
    entries;
  Buffer.contents b
