module Spec = Braid_workload.Spec
module U = Braid_uarch

(* Simulator-throughput harness behind `bench --perf`: times N repeated
   timing-model runs of a fixed benchmark subset on each core model and
   reports simulated cycles per wall-clock second. The trace is prepared
   once (generation, compilation and emulation are excluded from the timed
   region), so the numbers isolate the cycle-level hot path this repo keeps
   optimising — BENCH_sim.json files are its trajectory across PRs.

   Besides the pipeline rows, the harness times the functional emulators
   (`emu:NAME` rows: interpreter, interpreter with tracing, compiled
   fast-forward — the sampled-simulation speedup base), the RV32IM
   emulators (`rvemu:FIXTURE` rows: interpreter vs threaded-code fast
   path), and sampled simulation itself (`sample:NAME` rows, carrying
   the sampled-vs-full IPC error). *)

type sample_info = {
  ipc_full : float;
  ipc_sampled : float;
  ipc_error : float;  (* |sampled - full| / full *)
}

type entry = {
  bench : string;
  core : string;
  scale : int;  (* dynamic-length target; 0 = fixed-size fixture *)
  instructions : int;
  cycles : int;  (* 0 for emulator rows: no timing model ran *)
  reps : int;
  wall_s : float;  (* total for all [reps] runs *)
  sample : sample_info option;  (* sample: rows only *)
}

let sim_cycles_per_s e =
  if e.wall_s <= 0.0 then 0.0
  else float_of_int e.cycles *. float_of_int e.reps /. e.wall_s

let sim_instrs_per_s e =
  if e.wall_s <= 0.0 then 0.0
  else float_of_int e.instructions *. float_of_int e.reps /. e.wall_s

(* Three int + three fp stand-ins spanning the simulator's behaviours:
   pointer chasing with far misses (mcf), hashing (gzip), branchy search
   (crafty), wide stencils (swim), gathers/reductions (art) and the deepest
   FP chains (mgrid) — plus two RV32IM fixtures through the frontend. *)
let rv_benches = [ "rv:fib"; "rv:crc32" ]

let default_benches =
  [ "gzip"; "mcf"; "crafty"; "swim"; "art"; "mgrid" ] @ rv_benches

let is_rv name = String.length name > 3 && String.sub name 0 3 = "rv:"

let cores =
  [
    ("in-order", U.Config.in_order_8wide, `Conv);
    ("ooo", U.Config.ooo_8wide, `Conv);
    ("braid", U.Config.braid_8wide, `Braid);
    ("cgooo", U.Config.cgooo_8wide, `Braid);
  ]

let timed reps run =
  (* one untimed warm-up run faults in code and sizes the heap *)
  let r = run () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (run ())
  done;
  (r, Unix.gettimeofday () -. t0)

(* Competing engines are timed interleaved (engine A rep 1, engine B rep 1,
   engine A rep 2, ...) and each keeps its best rep, so a scheduler hiccup
   penalises one rep of one engine rather than a whole engine's block.
   The reported wall_s normalises that best rep back to [reps] runs:
   throughput = instructions / best-rep seconds. *)
let interleaved_min ~reps fs =
  let k = List.length fs in
  let mins = Array.make k infinity in
  List.iter (fun f -> ignore (f ())) fs;
  for _ = 1 to reps do
    List.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        let d = Unix.gettimeofday () -. t0 in
        if d < mins.(i) then mins.(i) <- d)
      fs
  done;
  mins

(* Functional-emulator rows for one prepared benchmark: the interpreter
   (untraced), the interpreter building a full trace, and the compiled
   fast-forward engine — all on the conventional binary. The compiled/
   interpreted ratio is the sampled-simulation fast-forward speedup. *)
let measure_emu ~reps (p : Suite.prepared) name =
  let program = p.Suite.conventional.Braid_core.Extalloc.program in
  let init_mem = p.Suite.init_mem in
  let code = Emulator.Compiled.compile program in
  let interp () = Emulator.run ~trace:false ~init_mem program in
  let interp_traced () = Emulator.run ~trace:true ~init_mem program in
  let compiled () =
    let run = Emulator.Compiled.start ~init_mem code in
    Emulator.Compiled.advance run ~fuel:max_int
  in
  let n = (interp ()).Emulator.dynamic_count in
  let mins =
    interleaved_min ~reps
      [
        (fun () -> ignore (interp ()));
        (fun () -> ignore (interp_traced ()));
        (fun () -> ignore (compiled ()));
      ]
  in
  List.mapi
    (fun i core ->
      {
        bench = "emu:" ^ name;
        core;
        scale = p.Suite.scale;
        instructions = n;
        cycles = 0;
        reps;
        wall_s = mins.(i) *. float_of_int reps;
        sample = None;
      })
    [ "emu-interp"; "emu-interp-traced"; "emu-compiled" ]

(* An rv: fixture yields six entries: a "frontend" row timing the
   decode+lower pass itself (instructions = reachable RV instructions,
   cycles = static IR emitted, so sim_instrs_per_s is frontend throughput),
   two "rvemu:" rows timing the RV32IM emulators (interpreter vs
   threaded-code fast path), then the usual three timing-core rows on the
   translated program. The fixture is fixed-size; entry [scale] is 0. *)
let rv_emu_max_steps = 4_000_000

let measure_rv ~reps name =
  let fixture = String.sub name 3 (String.length name - 3) in
  let img =
    match Braid_rv.Fixtures.image fixture with
    | Some img -> img
    | None -> raise Not_found
  in
  let translate () =
    match Braid_rv.Translate.run img with
    | Ok t -> t
    | Error e -> failwith (name ^ ": " ^ Braid_rv.Translate.error_to_string e)
  in
  let t, wall_s = timed reps translate in
  let frontend =
    {
      bench = name;
      core = "frontend";
      scale = 0;
      instructions = t.Braid_rv.Translate.rv_count;
      cycles = 0;
      reps;
      wall_s;
      sample = None;
    }
  in
  let steps = (Braid_rv.Emu.run ~max_steps:rv_emu_max_steps img).Braid_rv.Emu.steps in
  (* rvemu rows only when the fixture runs long enough for per-run setup
     (decode, memory image) not to drown the per-instruction signal *)
  let rvemu =
    if steps < 10_000 then []
    else begin
      let mins =
        interleaved_min ~reps
          [
            (fun () -> ignore (Braid_rv.Emu.run ~max_steps:rv_emu_max_steps img));
            (fun () ->
              ignore (Braid_rv.Emu.run_fast ~max_steps:rv_emu_max_steps img));
          ]
      in
      List.mapi
        (fun i core ->
          {
            bench = "rvemu:" ^ fixture;
            core;
            scale = 0;
            instructions = steps;
            cycles = 0;
            reps;
            wall_s = mins.(i) *. float_of_int reps;
            sample = None;
          })
        [ "rv-interp"; "rv-compiled" ]
    end
  in
  let program = t.Braid_rv.Translate.program in
  let init_mem = t.Braid_rv.Translate.init_mem in
  let conv =
    (Braid_core.Transform.conventional program).Braid_core.Extalloc.program
  in
  let braided = (Braid_core.Transform.run program).Braid_core.Transform.program in
  let trace_of p = Option.get (Emulator.run ~init_mem p).Emulator.trace in
  let conv_trace = trace_of conv and braid_trace = trace_of braided in
  let warm_data = List.map fst init_mem in
  (frontend :: rvemu)
  @ List.map
      (fun (core, cfg, binary) ->
        let trace =
          match binary with `Conv -> conv_trace | `Braid -> braid_trace
        in
        let r, wall_s =
          timed reps (fun () -> U.Pipeline.run ~warm_data cfg trace)
        in
        {
          bench = name;
          core;
          scale = 0;
          instructions = r.U.Pipeline.instructions;
          cycles = r.U.Pipeline.cycles;
          reps;
          wall_s;
          sample = None;
        })
      cores

(* Sampled-simulation rows for one prepared benchmark: the plan (BBV
   profile + clustering) is core-independent and excluded from the timed
   region like trace preparation; each core's row times the per-core
   measurement (fast-forward, functional warm-up, representative windows)
   and carries the IPC error against the full simulation just timed. *)
let measure_sampled ~reps (p : Suite.prepared) name fulls =
  let spec = Braid_sample.Spec.default in
  let plan_of program =
    Braid_sample.Driver.plan ~init_mem:p.Suite.init_mem
      ~max_steps:(50 * p.Suite.scale) ~spec
      (Emulator.Compiled.compile program)
  in
  let conv_plan =
    plan_of p.Suite.conventional.Braid_core.Extalloc.program
  in
  let braid_plan =
    plan_of p.Suite.braid.Braid_core.Transform.program
  in
  List.map
    (fun (core, cfg, binary) ->
      let plan =
        match binary with `Conv -> conv_plan | `Braid -> braid_plan
      in
      let s, wall_s =
        timed reps (fun () ->
            Braid_sample.Driver.measure ~warm_data:p.Suite.warm_data plan cfg)
      in
      let full : U.Pipeline.result = List.assoc core fulls in
      let r = s.Braid_sample.Driver.result in
      {
        bench = "sample:" ^ name;
        core;
        scale = p.Suite.scale;
        instructions = r.U.Pipeline.instructions;
        cycles = r.U.Pipeline.cycles;
        reps;
        wall_s;
        sample =
          Some
            {
              ipc_full = full.U.Pipeline.ipc;
              ipc_sampled = s.Braid_sample.Driver.ipc;
              ipc_error = Braid_sample.Driver.error_vs ~full s;
            };
      })
    cores

let measure ctx ~scale ~reps ~benches =
  if reps <= 0 then invalid_arg "Perf.measure: reps must be positive";
  List.concat_map
    (fun name ->
      if is_rv name then measure_rv ~reps name
      else
        let pr = Spec.find name in
        let p = Suite.prepare ctx ~scale pr in
        let fulls = ref [] in
        let pipeline_entries =
          List.map
            (fun (core, cfg, binary) ->
              let trace =
                (match binary with
                | `Conv -> p.Suite.conv_trace
                | `Braid -> p.Suite.braid_trace)
                  ()
              in
              let run () =
                U.Pipeline.run ~warm_data:p.Suite.warm_data cfg trace
              in
              let r, wall_s = timed reps run in
              fulls := (core, r) :: !fulls;
              {
                bench = name;
                core;
                scale = p.Suite.scale;
                instructions = r.U.Pipeline.instructions;
                cycles = r.U.Pipeline.cycles;
                reps;
                wall_s;
                sample = None;
              })
            cores
        in
        pipeline_entries
        @ measure_emu ~reps p name
        @ measure_sampled ~reps p name !fulls)
    benches

(* --- BENCH_*.json --- *)

let schema = "braidsim-perf/2"

let accepted_schemas = [ "braidsim-perf/1"; schema ]

(* Baseline lookup from a previous BENCH_*.json, parsed with the in-tree
   minimal JSON parser: (bench, core) -> sim_cycles_per_s. Accepts both
   the current schema and /1 (whose entries simply lack the per-entry
   scale and sampling fields). *)
type baseline = (string * string, float) Hashtbl.t

let load_baseline file : baseline =
  let ic = open_in file in
  let doc =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse doc with
  | Error msg -> failwith (Printf.sprintf "%s: not valid JSON: %s" file msg)
  | Ok j -> (
      let module J = Json in
      let tbl = Hashtbl.create 32 in
      let field name = function
        | J.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      let str = function Some (J.Str s) -> Some s | _ -> None in
      let num = function Some (J.Num x) -> Some x | _ -> None in
      (match str (field "schema" j) with
      | Some s when not (List.mem s accepted_schemas) ->
          failwith
            (Printf.sprintf "%s: unsupported schema %S (accepted: %s)" file s
               (String.concat ", " accepted_schemas))
      | _ -> ());
      match field "entries" j with
      | Some (J.Arr entries) ->
          List.iter
            (fun e ->
              match
                ( str (field "bench" e),
                  str (field "core" e),
                  num (field "sim_cycles_per_s" e) )
              with
              | Some b, Some c, Some v -> Hashtbl.replace tbl (b, c) v
              | _ -> ())
            entries;
          tbl
      | _ -> failwith (Printf.sprintf "%s: missing \"entries\" array" file))

let json_of_entry ?baseline e =
  let speedup =
    match baseline with
    | None -> []
    | Some tbl -> (
        match Hashtbl.find_opt tbl (e.bench, e.core) with
        | Some prev when prev > 0.0 ->
            [ ("speedup_vs_baseline", Json.float_lit (sim_cycles_per_s e /. prev)) ]
        | Some _ | None -> [])
  in
  let sample =
    match e.sample with
    | None -> []
    | Some s ->
        [
          ("ipc_full", Json.float_lit s.ipc_full);
          ("ipc_sampled", Json.float_lit s.ipc_sampled);
          ("ipc_error", Json.float_lit s.ipc_error);
        ]
  in
  Json.obj_lit
    ([
       ("bench", Json.escape_string e.bench);
       ("core", Json.escape_string e.core);
       ("scale", string_of_int e.scale);
       ("instructions", string_of_int e.instructions);
       ("cycles", string_of_int e.cycles);
       ("reps", string_of_int e.reps);
       ("wall_s", Json.float_lit e.wall_s);
       ("sim_cycles_per_s", Json.float_lit (sim_cycles_per_s e));
       ("sim_instrs_per_s", Json.float_lit (sim_instrs_per_s e));
     ]
    @ sample @ speedup)

let to_json ?baseline ~scale ~reps entries =
  let total_wall =
    List.fold_left (fun acc e -> acc +. e.wall_s) 0.0 entries
  in
  let total_cycles =
    List.fold_left
      (fun acc e -> acc +. (float_of_int e.cycles *. float_of_int e.reps))
      0.0 entries
  in
  Json.obj_lit
    [
      ("schema", Json.escape_string schema);
      ("scale", string_of_int scale);
      ("reps", string_of_int reps);
      ("entries", Json.list_lit (json_of_entry ?baseline) entries);
      ( "totals",
        Json.obj_lit
          [
            ("wall_s", Json.float_lit total_wall);
            ( "sim_cycles_per_s",
              Json.float_lit
                (if total_wall <= 0.0 then 0.0 else total_cycles /. total_wall)
            );
          ] );
    ]
  ^ "\n"

let write_json ?baseline ~file ~scale ~reps entries =
  let doc = to_json ?baseline ~scale ~reps entries in
  if file = "-" then print_string doc
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
  end

let render entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-14s %-17s %11s %9s %9s %14s %9s\n" "bench" "core"
       "cycles" "reps" "wall_s" "sim-cycles/s" "ipc-err");
  List.iter
    (fun e ->
      let err =
        match e.sample with
        | None -> ""
        | Some s -> Printf.sprintf "%8.2f%%" (100.0 *. s.ipc_error)
      in
      Buffer.add_string b
        (Printf.sprintf "%-14s %-17s %11d %9d %9.3f %14.0f %9s\n" e.bench
           e.core e.cycles e.reps e.wall_s (sim_cycles_per_s e) err))
    entries;
  Buffer.contents b
