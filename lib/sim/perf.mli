(** Simulator-throughput harness (`bench --perf`).

    Times [reps] repeated timing-model runs ({!Braid_uarch.Pipeline.run})
    of a fixed benchmark subset on each of the three core models
    (in-order / ooo / braid) and reports simulated cycles per wall-clock
    second. Preparation (workload generation, compilation, emulation) is
    memoised outside the timed region, so the numbers isolate the
    cycle-level simulation hot path.

    Each synthetic benchmark additionally yields ["emu:NAME"] rows timing
    the functional emulators (interpreter, interpreter with tracing,
    compiled fast-forward — the sampled-simulation speedup base) and
    ["sample:NAME"] rows timing sampled simulation itself, carrying the
    sampled-vs-full IPC error. RV fixtures add ["rvemu:FIXTURE"] rows
    (interpreter vs threaded-code fast path).

    Results serialize to the BENCH_*.json trajectory format
    (["braidsim-perf/2"]): re-run the harness in a new tree and pass the
    old file as [baseline] to get per-entry ["speedup_vs_baseline"]
    ratios. *)

type sample_info = {
  ipc_full : float;  (** IPC of the full simulation just timed *)
  ipc_sampled : float;  (** the sampled estimate *)
  ipc_error : float;  (** |sampled - full| / full *)
}

type entry = {
  bench : string;
      (** workload name, or a prefixed row kind: ["emu:NAME"],
          ["sample:NAME"], ["rv:NAME"], ["rvemu:FIXTURE"] *)
  core : string;
      (** "in-order" | "ooo" | "braid"; emulator rows use engine names
          ("emu-interp", "emu-compiled", "rv-interp", ...); rv: fixtures
          add a "frontend" row whose timed region is the RV decode+lower
          pass itself *)
  scale : int;
      (** the dynamic-length target this row really ran at; 0 for
          fixed-size RV fixtures, where scale does not apply *)
  instructions : int;
  cycles : int;  (** simulated cycles of one run; 0 on emulator rows *)
  reps : int;
  wall_s : float;  (** wall-clock total for all [reps] timed runs *)
  sample : sample_info option;  (** ["sample:"] rows only *)
}

val sim_cycles_per_s : entry -> float
val sim_instrs_per_s : entry -> float

val rv_benches : string list
(** The RV32IM fixtures tracked by default: ["rv:fib"; "rv:crc32"]. *)

val is_rv : string -> bool
(** True for ["rv:NAME"] bench names. *)

val default_benches : string list
(** Six stand-ins spanning the simulator's behaviours (3 int + 3 fp),
    plus {!rv_benches}. *)

val measure :
  Suite.ctx -> scale:int -> reps:int -> benches:string list -> entry list
(** Entries in benchmark-major order. Each synthetic benchmark yields the
    three pipeline rows, three ["emu:NAME"] rows and three
    ["sample:NAME"] rows (measured with {!Braid_sample.Spec.default}
    against the full results just timed). Pipeline and sampled rows
    perform one untimed warm-up run, then [reps] timed runs; competing
    emulator engines are timed interleaved and report their best rep.
    An ["rv:NAME"] bench names a {!Braid_rv.Fixtures} program and yields
    a "frontend" row timing the decode+translate pass, two ["rvemu:"]
    rows when the fixture runs at least 10k dynamic instructions, then
    the three cores on the translated program ([scale] does not apply —
    fixtures are fixed-size). Raises
    [Not_found] on an unknown benchmark or fixture name and
    [Invalid_argument] when [reps <= 0]. *)

type baseline

val load_baseline : string -> baseline
(** Parse a previous BENCH_*.json (with {!Json}); accepts schemas
    ["braidsim-perf/1"] and ["braidsim-perf/2"]; fails on malformed
    documents or other schemas. *)

val to_json : ?baseline:baseline -> scale:int -> reps:int -> entry list -> string
(** The BENCH_*.json document: schema tag, parameters, per-entry rows
    (scale, cycles, wall-clock, simulated cycles/s, sampling error when
    present and, when a [baseline] is given, ["speedup_vs_baseline"]),
    and aggregate totals. *)

val write_json :
  ?baseline:baseline -> file:string -> scale:int -> reps:int -> entry list -> unit
(** [to_json] written to [file]; ["-"] writes to stdout. *)

val render : entry list -> string
(** Plain-text table of the same rows, for the terminal. *)
