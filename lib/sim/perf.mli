(** Simulator-throughput harness (`bench --perf`).

    Times [reps] repeated timing-model runs ({!Braid_uarch.Pipeline.run})
    of a fixed benchmark subset on each of the three core models
    (in-order / ooo / braid) and reports simulated cycles per wall-clock
    second. Preparation (workload generation, compilation, emulation) is
    memoised outside the timed region, so the numbers isolate the
    cycle-level simulation hot path.

    Results serialize to the BENCH_*.json trajectory format: re-run the
    harness in a new tree and pass the old file as [baseline] to get
    per-entry ["speedup_vs_baseline"] ratios. *)

type entry = {
  bench : string;
  core : string;
      (** "in-order" | "ooo" | "braid"; rv: fixtures add a "frontend" row
          whose timed region is the RV decode+lower pass itself *)
  instructions : int;
  cycles : int;  (** simulated cycles of one run *)
  reps : int;
  wall_s : float;  (** wall-clock total for all [reps] timed runs *)
}

val sim_cycles_per_s : entry -> float
val sim_instrs_per_s : entry -> float

val rv_benches : string list
(** The RV32IM fixtures tracked by default: ["rv:fib"; "rv:crc32"]. *)

val is_rv : string -> bool
(** True for ["rv:NAME"] bench names. *)

val default_benches : string list
(** Six stand-ins spanning the simulator's behaviours (3 int + 3 fp),
    plus {!rv_benches}. *)

val measure :
  Suite.ctx -> scale:int -> reps:int -> benches:string list -> entry list
(** One entry per (benchmark, core model), in benchmark-major order. Each
    measurement performs one untimed warm-up run, then [reps] timed runs.
    An ["rv:NAME"] bench names a {!Braid_rv.Fixtures} program and yields
    four entries: a "frontend" row timing the decode+translate pass, then
    the three cores on the translated program ([scale] does not apply —
    fixtures are fixed-size). Raises [Not_found] on an unknown benchmark
    or fixture name and [Invalid_argument] when [reps <= 0]. *)

type baseline

val load_baseline : string -> baseline
(** Parse a previous BENCH_*.json (with {!Json}); fails on
    malformed documents. *)

val to_json : ?baseline:baseline -> scale:int -> reps:int -> entry list -> string
(** The BENCH_*.json document: schema tag, parameters, per-entry rows
    (cycles, wall-clock, simulated cycles/s and, when a [baseline] is
    given, ["speedup_vs_baseline"]), and aggregate totals. *)

val write_json :
  ?baseline:baseline -> file:string -> scale:int -> reps:int -> entry list -> unit
(** [to_json] written to [file]; ["-"] writes to stdout. *)

val render : entry list -> string
(** Plain-text table of the same rows, for the terminal. *)
