module E = Experiments

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* int/fp/overall average rows over the benchmark rows of a series; classes
   with no rows contribute no average row. *)
let average_rows (s : E.series) =
  if not s.E.averages then []
  else
    let make label keep =
      match
        List.filter_map
          (fun (r : E.row) -> if keep r.E.cls then Some r.E.values else None)
          s.E.rows
      with
      | [] -> None
      | vss ->
          let n = List.length s.E.columns in
          Some
            {
              E.label;
              cls = E.Config_row;
              values = List.init n (fun i -> mean (List.map (fun vs -> List.nth vs i) vss));
            }
    in
    List.filter_map
      (fun x -> x)
      [
        make "int avg" (fun c -> c = E.Int_row);
        make "fp avg" (fun c -> c = E.Fp_row);
        make "average" (fun c -> c = E.Int_row || c = E.Fp_row);
      ]

let render_series (s : E.series) =
  let fmt v = Printf.sprintf "%.*f" s.E.decimals v in
  let tail = average_rows s in
  let table =
    Render.table
      ~header:("" :: s.E.columns)
      ~rows:
        (List.map
           (fun (r : E.row) -> r.E.label :: List.map fmt r.E.values)
           (s.E.rows @ tail))
  in
  (* the paper presents most of these as bar charts: chart the average row *)
  let chart =
    match List.find_opt (fun (r : E.row) -> r.E.label = "average") tail with
    | Some r when List.for_all (fun v -> v >= 0.0) r.E.values ->
        Render.bar_chart ~title:"(averages)"
          (List.combine s.E.columns r.E.values)
    | Some _ | None -> ""
  in
  s.E.s_title ^ "\n" ^ table ^ chart

let render (r : E.result) =
  String.concat "\n" (List.map render_series r.E.series)
  ^ String.concat "" (List.map (fun n -> "\n" ^ n ^ "\n") r.E.notes)

let eq_rule = String.make 66 '='
let dash_rule = String.make 66 '-'

let render_full (r : E.result) =
  Printf.sprintf "%s\n%s — %s\npaper: %s\n%s\n%s" eq_rule r.E.id r.E.title
    r.E.paper_expectation dash_rule (render r)

let headline_summary results =
  let b = Buffer.create 1024 in
  Buffer.add_string b (eq_rule ^ "\n");
  Buffer.add_string b "Headline summary (measured)\n";
  Buffer.add_string b (dash_rule ^ "\n");
  List.iter
    (fun (r : E.result) ->
      let cells =
        String.concat "  "
          (List.map
             (fun (m : E.metric) -> Printf.sprintf "%s=%.3f" m.E.m_label m.E.value)
             r.E.headline)
      in
      Buffer.add_string b (Printf.sprintf "%-18s %s\n" r.E.id cells))
    results;
  Buffer.contents b

let render_counter_value = function
  | Braid_obs.Counters.Count n -> string_of_int n
  | Braid_obs.Counters.Hist { counts; observations; sum; _ } ->
      Printf.sprintf "n=%d sum=%d buckets=[%s]" observations sum
        (String.concat ";" (Array.to_list (Array.map string_of_int counts)))

let render_counters (counters : Experiments.counters) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (eq_rule ^ "\n");
  Buffer.add_string b
    "Observability counters (braid 8-wide, one run per benchmark)\n";
  Buffer.add_string b (dash_rule ^ "\n");
  List.iter
    (fun (bench, snap) ->
      Buffer.add_string b (bench ^ "\n");
      List.iter
        (fun (name, v) ->
          Buffer.add_string b
            (Printf.sprintf "  %-26s %s\n" name (render_counter_value v)))
        snap)
    counters;
  Buffer.contents b

(* --- JSON (the shared Braid_util.Json emitters; this module only
   assembles documents) --- *)

let json_string = Json.escape_string (* local shorthands over the shared emitters *)
let json_float = Json.float_lit
let json_list = Json.list_lit
let json_obj = Json.obj_lit

let json_of_row (r : E.row) =
  json_obj
    [
      ("label", json_string r.E.label);
      ( "class",
        json_string
          (match r.E.cls with
          | E.Int_row -> "int"
          | E.Fp_row -> "fp"
          | E.Config_row -> "config") );
      ("values", json_list json_float r.E.values);
    ]

let json_of_series (s : E.series) =
  json_obj
    [
      ("title", json_string s.E.s_title);
      ("columns", json_list json_string s.E.columns);
      ("rows", json_list json_of_row s.E.rows);
    ]

let json_of_metric (m : E.metric) =
  json_obj [ ("label", json_string m.E.m_label); ("value", json_float m.E.value) ]

let json_of_telemetry (t : Runner.telemetry) =
  json_obj
    [
      ("job", json_string t.Runner.job_label);
      ("wall_s", json_float t.Runner.wall_s);
      ("wall_ms", json_float (1000.0 *. t.Runner.wall_s));
      ("domain", string_of_int t.Runner.domain);
    ]

let json_of_result ((r : E.result), (stats : Runner.stats option)) =
  let timing =
    match stats with
    | None -> []
    | Some s ->
        [
          ("wall_s", json_float s.Runner.wall_s);
          ("jobs", json_list json_of_telemetry s.Runner.jobs);
        ]
  in
  json_obj
    ([
       ("id", json_string r.E.id);
       ("title", json_string r.E.title);
       ("paper_expectation", json_string r.E.paper_expectation);
       ("series", json_list json_of_series r.E.series);
       ("notes", json_list json_string r.E.notes);
       ("headline", json_list json_of_metric r.E.headline);
     ]
    @ timing)

let json_of_counter_value = function
  | Braid_obs.Counters.Count n -> string_of_int n
  | Braid_obs.Counters.Hist { bounds; counts; observations; sum } ->
      json_obj
        [
          ("bounds", json_list string_of_int (Array.to_list bounds));
          ("counts", json_list string_of_int (Array.to_list counts));
          ("observations", string_of_int observations);
          ("sum", string_of_int sum);
        ]

let json_of_counters (cs : Experiments.counters) =
  json_obj
    (List.map
       (fun (bench, snap) ->
         ( bench,
           json_obj
             (List.map (fun (n, v) -> (n, json_of_counter_value v)) snap) ))
       cs)

(* the "counters" key exists only when requested, so default output is
   byte-identical with or without the observability build *)
let to_json ?counters ~scale ~jobs items =
  json_obj
    ([
       ("scale", string_of_int scale);
       ("jobs", string_of_int jobs);
       ("experiments", json_list json_of_result items);
     ]
    @
    match counters with
    | None -> []
    | Some cs -> [ ("counters", json_of_counters cs) ])
  ^ "\n"

let write_json ?counters ~file ~scale ~jobs items =
  let doc = to_json ?counters ~scale ~jobs items in
  if file = "-" then print_string doc
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
  end
