(** Rendering of typed experiment results: plain-text tables/charts for the
    terminal, and a machine-readable JSON serialization for diffing bench
    trajectories across PRs.

    This is the only layer that turns {!Experiments.result} floats into
    strings — the experiments themselves carry data, not text. *)

val render : Experiments.result -> string
(** Tables (with int/fp/overall average rows and an average bar chart where
    the series asks for them) followed by the result's notes. *)

val render_full : Experiments.result -> string
(** [render] preceded by the framed header (id, title, paper expectation)
    the bench harness prints for each experiment. *)

val headline_summary : Experiments.result list -> string
(** The framed "Headline summary (measured)" block: one line of
    [label=value] metrics per experiment. *)

val render_counters : Experiments.counters -> string
(** Framed per-benchmark dump of an observability counters report
    ({!Experiments.counters_report}): one line per counter, histograms as
    observation count / sum / bucket vector. *)

val to_json :
  ?counters:Experiments.counters ->
  scale:int ->
  jobs:int ->
  (Experiments.result * Runner.stats option) list ->
  string
(** Serialize a batch of results (with optional per-job telemetry) as one
    JSON document: experiment id, series with per-benchmark rows and
    columns, headline metrics, notes, and per-job wall-clock. When
    [counters] is given the document gains a top-level ["counters"]
    object (benchmark → counter name → value); without it the output is
    byte-for-byte what it was before observability existed. *)

val write_json :
  ?counters:Experiments.counters ->
  file:string ->
  scale:int ->
  jobs:int ->
  (Experiments.result * Runner.stats option) list ->
  unit
(** [to_json] written to [file]; ["-"] writes to stdout.

    All serialization goes through the shared {!Braid_util.Json}
    emitters ([escape_string] / [float_lit] / [list_lit] / [obj_lit]);
    this module holds no JSON implementation of its own. *)
