module Spec = Braid_workload.Spec

exception Job_failed of { label : string; error : exn }

type telemetry = { job_label : string; wall_s : float; domain : int }

type job_error = {
  e_label : string;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'a job_outcome = ('a * telemetry, job_error) result

let default_jobs () = Domain.recommended_domain_count ()

let run_one ~domain (label, f) : _ job_outcome =
  let t0 = Unix.gettimeofday () in
  match f () with
  | v -> Ok (v, { job_label = label; wall_s = Unix.gettimeofday () -. t0; domain })
  | exception error ->
      let bt = Printexc.get_raw_backtrace () in
      Error { e_label = label; error; backtrace = bt }

(* A failing job must reject only itself: the other slots keep running and
   the pool is left reusable (a long-lived daemon maps one request onto one
   batch, so a poisoned batch would poison every queued request behind it).
   [on_done] fires on the worker domain as each slot finishes; callers that
   stream progress must make the callback domain-safe. *)
let try_map_jobs ?(on_done = fun _ _ -> ()) ~jobs work =
  let n = Array.length work in
  let pool = max 1 (min jobs n) in
  let slots = Array.make n None in
  let finish i outcome =
    slots.(i) <- Some outcome;
    on_done i (fst work.(i))
  in
  (if pool <= 1 then
     Array.iteri (fun i job -> finish i (run_one ~domain:0 job)) work
   else
     (* Work-stealing from a shared counter: each index is claimed by exactly
        one domain, so every slot has a single writer. *)
     let next = Atomic.make 0 in
     let worker domain () =
       let rec loop () =
         let i = Atomic.fetch_and_add next 1 in
         if i < n then begin
           finish i (run_one ~domain work.(i));
           loop ()
         end
       in
       loop ()
     in
     let domains = List.init pool (fun d -> Domain.spawn (worker d)) in
     List.iter Domain.join domains);
  Array.map (function Some o -> o | None -> assert false) slots

let map_jobs ?on_done ~jobs work =
  Array.map
    (function
      | Ok cell -> cell
      | Error { e_label; error; backtrace } ->
          Printexc.raise_with_backtrace
            (Job_failed { label = e_label; error })
            backtrace)
    (try_map_jobs ?on_done ~jobs work)

type stats = { wall_s : float; jobs : telemetry list }

let experiment_work ~ctx ~scale exps =
  Array.of_list
    (List.concat_map
       (fun (e : Experiments.t) ->
         List.map
           (fun (pr : Spec.profile) ->
             ( e.Experiments.id ^ "/" ^ pr.Spec.name,
               fun () -> e.Experiments.bench_job ctx ~scale pr ))
           Spec.all)
       exps)

let run_experiments ?on_done ~ctx ~jobs ~scale exps =
  let work = experiment_work ~ctx ~scale exps in
  let out = map_jobs ?on_done ~jobs work in
  let nbench = List.length Spec.all in
  List.mapi
    (fun ei (e : Experiments.t) ->
      let slice = Array.sub out (ei * nbench) nbench in
      let cells = List.mapi (fun bi pr -> (pr, fst slice.(bi))) Spec.all in
      let telemetry = Array.to_list (Array.map snd slice) in
      let wall_s =
        List.fold_left (fun acc (t : telemetry) -> acc +. t.wall_s) 0.0 telemetry
      in
      (e.Experiments.assemble ctx ~scale cells, { wall_s; jobs = telemetry }))
    exps

let experiment_job_count exps =
  List.length exps * List.length Spec.all
