module Spec = Braid_workload.Spec

exception Job_failed of { label : string; error : exn }

type telemetry = { job_label : string; wall_s : float; domain : int }

let default_jobs () = Domain.recommended_domain_count ()

type 'a slot =
  | Done of 'a * telemetry
  | Failed of string * exn * Printexc.raw_backtrace

let run_one ~domain (label, f) =
  let t0 = Unix.gettimeofday () in
  match f () with
  | v -> Done (v, { job_label = label; wall_s = Unix.gettimeofday () -. t0; domain })
  | exception error ->
      let bt = Printexc.get_raw_backtrace () in
      Failed (label, error, bt)

let map_jobs ~jobs work =
  let n = Array.length work in
  let pool = max 1 (min jobs n) in
  let slots = Array.make n None in
  (if pool <= 1 then
     Array.iteri (fun i job -> slots.(i) <- Some (run_one ~domain:0 job)) work
   else
     (* Work-stealing from a shared counter: each index is claimed by exactly
        one domain, so every slot has a single writer. *)
     let next = Atomic.make 0 in
     let worker domain () =
       let rec loop () =
         let i = Atomic.fetch_and_add next 1 in
         if i < n then begin
           slots.(i) <- Some (run_one ~domain work.(i));
           loop ()
         end
       in
       loop ()
     in
     let domains = List.init pool (fun d -> Domain.spawn (worker d)) in
     List.iter Domain.join domains);
  Array.map
    (function
      | Some (Done (v, t)) -> (v, t)
      | Some (Failed (label, error, bt)) ->
          Printexc.raise_with_backtrace (Job_failed { label; error }) bt
      | None -> assert false)
    slots

type stats = { wall_s : float; jobs : telemetry list }

let run_experiments ~ctx ~jobs ~scale exps =
  let work =
    Array.of_list
      (List.concat_map
         (fun (e : Experiments.t) ->
           List.map
             (fun (pr : Spec.profile) ->
               ( e.Experiments.id ^ "/" ^ pr.Spec.name,
                 fun () -> e.Experiments.bench_job ctx ~scale pr ))
             Spec.all)
         exps)
  in
  let out = map_jobs ~jobs work in
  let nbench = List.length Spec.all in
  List.mapi
    (fun ei (e : Experiments.t) ->
      let slice = Array.sub out (ei * nbench) nbench in
      let cells = List.mapi (fun bi pr -> (pr, fst slice.(bi))) Spec.all in
      let telemetry = Array.to_list (Array.map snd slice) in
      let wall_s =
        List.fold_left (fun acc (t : telemetry) -> acc +. t.wall_s) 0.0 telemetry
      in
      (e.Experiments.assemble ctx ~scale cells, { wall_s; jobs = telemetry }))
    exps
