(** Parallel experiment engine: a fixed-size domain pool that fans
    simulation jobs out across cores.

    Jobs are handed out from a shared atomic counter; each result lands in
    the slot matching its input index, so output order is deterministic and
    independent of the number of domains or scheduling. Every job carries
    per-job wall-clock telemetry. With [jobs <= 1] (or a single-job input)
    the pool degrades gracefully to a plain serial loop on the calling
    domain — no domains are spawned.

    Jobs must not depend on shared mutable state except through
    domain-safe structures such as {!Suite.ctx}. *)

exception Job_failed of { label : string; error : exn }
(** Raised (on the calling domain) when a job raises. If several jobs fail,
    the one with the lowest input index is reported; its backtrace is the
    failing job's. *)

type telemetry = {
  job_label : string;
  wall_s : float;  (** wall-clock seconds spent in the job *)
  domain : int;  (** pool slot (0 = the calling domain when serial) *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when a front
    end passes [--jobs 0]. *)

val map_jobs :
  jobs:int -> (string * (unit -> 'a)) array -> ('a * telemetry) array
(** [map_jobs ~jobs work] runs every labelled thunk and returns the results
    in input order. At most [jobs] domains run concurrently; [jobs <= 1]
    runs serially on the calling domain. *)

type stats = {
  wall_s : float;  (** summed wall-clock of the experiment's jobs *)
  jobs : telemetry list;  (** per-benchmark telemetry, suite order *)
}

val run_experiments :
  ctx:Suite.ctx ->
  jobs:int ->
  scale:int ->
  Experiments.t list ->
  (Experiments.result * stats) list
(** Fan the (experiment × benchmark) job matrix out across the pool, then
    assemble each experiment's typed result. Results are returned in the
    order the experiments were given and are identical for every [jobs]
    value — parallelism only changes wall-clock, never output. *)
