(** Parallel experiment engine: a fixed-size domain pool that fans
    simulation jobs out across cores.

    Jobs are handed out from a shared atomic counter; each result lands in
    the slot matching its input index, so output order is deterministic and
    independent of the number of domains or scheduling. Every job carries
    per-job wall-clock telemetry. With [jobs <= 1] (or a single-job input)
    the pool degrades gracefully to a plain serial loop on the calling
    domain — no domains are spawned.

    A raising job never poisons the batch: {!try_map_jobs} captures the
    failure in that job's own slot while every other job still runs to
    completion, and the pool is immediately reusable — the property a
    long-lived daemon relies on to reject one request without taking the
    queue down with it. {!map_jobs} keeps the historical raise-on-failure
    contract on top of it.

    Jobs must not depend on shared mutable state except through
    domain-safe structures such as {!Suite.ctx}. *)

exception Job_failed of { label : string; error : exn }
(** Raised (on the calling domain) by {!map_jobs} when a job raises. If
    several jobs fail, the one with the lowest input index is reported;
    its backtrace is the failing job's. *)

type telemetry = {
  job_label : string;
  wall_s : float;  (** wall-clock seconds spent in the job *)
  domain : int;  (** pool slot (0 = the calling domain when serial) *)
}

type job_error = {
  e_label : string;  (** the failing job's label *)
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'a job_outcome = ('a * telemetry, job_error) result

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when a front
    end passes [--jobs 0]. *)

val try_map_jobs :
  ?on_done:(int -> string -> unit) ->
  jobs:int ->
  (string * (unit -> 'a)) array ->
  'a job_outcome array
(** Run every labelled thunk; a job that raises yields [Error] in its own
    slot and nothing else is affected. [on_done i label] fires as slot [i]
    finishes (success or failure) — on the worker domain, so the callback
    must be domain-safe if [jobs > 1]. *)

val map_jobs :
  ?on_done:(int -> string -> unit) ->
  jobs:int ->
  (string * (unit -> 'a)) array ->
  ('a * telemetry) array
(** [try_map_jobs] that re-raises the lowest-indexed failure as
    {!Job_failed} after the whole batch has drained. At most [jobs]
    domains run concurrently; [jobs <= 1] runs serially on the calling
    domain. *)

type stats = {
  wall_s : float;  (** summed wall-clock of the experiment's jobs *)
  jobs : telemetry list;  (** per-benchmark telemetry, suite order *)
}

val run_experiments :
  ?on_done:(int -> string -> unit) ->
  ctx:Suite.ctx ->
  jobs:int ->
  scale:int ->
  Experiments.t list ->
  (Experiments.result * stats) list
(** Fan the (experiment × benchmark) job matrix out across the pool, then
    assemble each experiment's typed result. Results are returned in the
    order the experiments were given and are identical for every [jobs]
    value — parallelism only changes wall-clock, never output. *)

val experiment_job_count : Experiments.t list -> int
(** Size of the job matrix {!run_experiments} will fan out — the progress
    total for an [on_done] stream. *)
