type prepared = {
  profile : Braid_workload.Spec.profile;
  init_mem : (int * int64) list;
  warm_data : int list;
  virtual_ir : Program.t;
  conventional : Braid_core.Extalloc.result;
  braid : Braid_core.Transform.report;
  scale : int;
  key : string;
  conv_trace : unit -> Trace.t;
  braid_trace : unit -> Trace.t;
}

let default_scale =
  match Sys.getenv_opt "BRAID_SCALE" with
  | None -> 12_000
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> max 1000 n
      | None ->
          Printf.eprintf
            "braid: ignoring malformed BRAID_SCALE=%S (expected an integer); \
             using %d\n%!"
            s 12_000;
          12_000)

type 'v slot = Ready of 'v | In_flight

type ctx = {
  lock : Mutex.t;
  done_ : Condition.t;
  prepared : (string, prepared slot) Hashtbl.t;
  traces : (string, Trace.t slot) Hashtbl.t;
  runs : (string, Braid_uarch.Pipeline.result slot) Hashtbl.t;
  plans : (string, Braid_sample.Driver.plan slot) Hashtbl.t;
  samples : (string, Braid_sample.Driver.t slot) Hashtbl.t;
  sample : Braid_sample.Spec.t option;
}

let create_ctx ?sample () =
  {
    lock = Mutex.create ();
    done_ = Condition.create ();
    prepared = Hashtbl.create 64;
    traces = Hashtbl.create 64;
    runs = Hashtbl.create 256;
    plans = Hashtbl.create 64;
    samples = Hashtbl.create 256;
    sample;
  }

let sampling ctx = ctx.sample

(* Look up under the lock; on a miss, mark the key in-flight and compute
   *outside* the lock (simulations are long and must overlap across
   domains). A domain that finds the key in-flight blocks on the condition
   variable rather than duplicating the work; every caller shares one
   physical value. Nesting only flows one way (runs force traces, samples
   force plans; never the reverse), so waiting cannot deadlock. If the
   computation raises, the in-flight marker is withdrawn and a waiter
   takes over. *)
let rec memoise : 'v. ctx -> (string, 'v slot) Hashtbl.t -> string -> (unit -> 'v) -> 'v =
  fun ctx tbl key compute ->
  Mutex.lock ctx.lock;
  match Hashtbl.find_opt tbl key with
  | Some (Ready v) ->
      Mutex.unlock ctx.lock;
      v
  | Some In_flight ->
      Condition.wait ctx.done_ ctx.lock;
      Mutex.unlock ctx.lock;
      memoise ctx tbl key compute
  | None -> (
      Hashtbl.replace tbl key In_flight;
      Mutex.unlock ctx.lock;
      match compute () with
      | v ->
          Mutex.lock ctx.lock;
          Hashtbl.replace tbl key (Ready v);
          Condition.broadcast ctx.done_;
          Mutex.unlock ctx.lock;
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock ctx.lock;
          Hashtbl.remove tbl key;
          Condition.broadcast ctx.done_;
          Mutex.unlock ctx.lock;
          Printexc.raise_with_backtrace e bt)

let trace_of ~init_mem ~scale program =
  let out = Emulator.run ~max_steps:(50 * scale) ~trace:true ~init_mem program in
  match out.Emulator.trace with Some t -> t | None -> assert false

let prepare ctx ?(seed = 1) ?(scale = default_scale)
    ?(max_internal = Reg.num_internal)
    ?(ext_usable = Braid_core.Extalloc.usable_per_class)
    (profile : Braid_workload.Spec.profile) =
  let key =
    Printf.sprintf "%s/%d/%d/%d/%d" profile.Braid_workload.Spec.name seed scale
      max_internal ext_usable
  in
  memoise ctx ctx.prepared key (fun () ->
      let virtual_ir, init_mem =
        Braid_workload.Spec.generate profile ~seed ~scale
      in
      let conventional = Braid_core.Transform.conventional virtual_ir in
      let braid =
        Braid_core.Transform.run ~max_internal
          ~ext_usable:(min ext_usable Braid_core.Extalloc.usable_per_class)
          virtual_ir
      in
      (* Traces are memoised thunks rather than eager fields: a sampled
         run never touches them, and full tracing is the expensive part
         of preparation (an order of magnitude slower than untraced
         emulation), so sampled contexts skip that cost entirely. *)
      let lazy_trace label program =
        let tkey = key ^ "/" ^ label in
        fun () ->
          memoise ctx ctx.traces tkey (fun () -> trace_of ~init_mem ~scale program)
      in
      {
        profile;
        init_mem;
        warm_data = List.map fst init_mem;
        virtual_ir;
        conventional;
        braid;
        scale;
        key;
        conv_trace =
          lazy_trace "conv" conventional.Braid_core.Extalloc.program;
        braid_trace = lazy_trace "braid" braid.Braid_core.Transform.program;
      })

let binary_of ~which p =
  match which with
  | `Conv -> p.conventional.Braid_core.Extalloc.program
  | `Braid -> p.braid.Braid_core.Transform.program

(* The plan (fast-forward + BBV + clustering) is core-independent: one
   per (preparation, binary, spec) serves every configuration. *)
let sample_plan ctx ~label ~which p (spec : Braid_sample.Spec.t) =
  let key =
    Printf.sprintf "plan/%s/%s/%s" p.key label (Braid_sample.Spec.digest spec)
  in
  memoise ctx ctx.plans key (fun () ->
      let code = Emulator.Compiled.compile (binary_of ~which p) in
      Braid_sample.Driver.plan ~init_mem:p.init_mem
        ~max_steps:(50 * p.scale) ~spec code)

let sample_on ctx ~label ~which p ~spec (cfg : Braid_uarch.Config.t) =
  let key =
    Printf.sprintf "sample/%s/%s/%s/%s" cfg.Braid_uarch.Config.name p.key label
      (Braid_sample.Spec.digest spec)
  in
  memoise ctx ctx.samples key (fun () ->
      let plan = sample_plan ctx ~label ~which p spec in
      Braid_sample.Driver.measure ~warm_data:p.warm_data plan cfg)

let sample_conv ctx p ~spec cfg = sample_on ctx ~label:"conv" ~which:`Conv p ~spec cfg
let sample_braid ctx p ~spec cfg = sample_on ctx ~label:"braid" ~which:`Braid p ~spec cfg

let run_on ctx ~label ~which p (cfg : Braid_uarch.Config.t) =
  match ctx.sample with
  | Some spec ->
      (sample_on ctx ~label ~which p ~spec cfg).Braid_sample.Driver.result
  | None ->
      let trace =
        (match which with `Conv -> p.conv_trace | `Braid -> p.braid_trace) ()
      in
      let key =
        Printf.sprintf "%s/%s/%s/%d" cfg.Braid_uarch.Config.name
          p.profile.Braid_workload.Spec.name label (Trace.length trace)
      in
      memoise ctx ctx.runs key (fun () ->
          Braid_uarch.Pipeline.run ~warm_data:p.warm_data cfg trace)

let run_conv ctx p cfg = run_on ctx ~label:"conv" ~which:`Conv p cfg
let run_braid ctx p cfg = run_on ctx ~label:"braid" ~which:`Braid p cfg
