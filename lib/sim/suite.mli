(** Prepared benchmarks: generated program, both compiled binaries
    (conventional and braid), and their execution traces — memoised in an
    explicit {!ctx}, since every experiment sweeps the same 26 programs.

    A [ctx] is safe to share across domains: lookups and insertions are
    mutex-guarded, and a cache miss runs the (deterministic) computation
    outside the lock so simulations overlap. Two domains racing on the same
    key may duplicate work, but every caller observes one canonical value.

    [scale] targets the dynamic trace length (the MinneSPEC-style reduced
    run); [ext_usable] recompiles the braid binary with a restricted
    external register budget (Fig 6); [max_internal] varies the braid
    working-set bound (splitting-threshold ablation). *)

type prepared = {
  profile : Braid_workload.Spec.profile;
  init_mem : (int * int64) list;
  warm_data : int list;  (** addresses of the initial data image *)
  virtual_ir : Program.t;
  conventional : Braid_core.Extalloc.result;
  braid : Braid_core.Transform.report;
  conv_trace : Trace.t;
  braid_trace : Trace.t;
}

type ctx
(** Memoisation context: prepared benchmarks plus simulation results.
    Create one per experiment batch and thread it through explicitly —
    there is no global mutable cache. *)

val create_ctx : unit -> ctx

val default_scale : int
(** 12_000 unless the BRAID_SCALE environment variable overrides it.
    A malformed override is reported on stderr and ignored. *)

val prepare :
  ctx ->
  ?seed:int ->
  ?scale:int ->
  ?max_internal:int ->
  ?ext_usable:int ->
  Braid_workload.Spec.profile ->
  prepared
(** Memoised on all parameters. *)

val run_conv :
  ctx -> prepared -> Braid_uarch.Config.t -> Braid_uarch.Pipeline.result
(** Runs the conventional binary's trace (in-order / dep-steer / OoO
    machines). Memoised on the configuration name, so configuration
    variants must carry distinct names. *)

val run_braid :
  ctx -> prepared -> Braid_uarch.Config.t -> Braid_uarch.Pipeline.result
(** Runs the braid binary's trace (braid machines). Memoised likewise. *)
