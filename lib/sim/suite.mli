(** Prepared benchmarks: generated program, both compiled binaries
    (conventional and braid), and their execution traces — memoised in an
    explicit {!ctx}, since every experiment sweeps the same 26 programs.

    A [ctx] is safe to share across domains: lookups and insertions are
    mutex-guarded, and a cache miss runs the (deterministic) computation
    outside the lock so simulations overlap. Two domains racing on the same
    key may duplicate work, but every caller observes one canonical value.

    A ctx optionally carries a sampling spec: {!run_conv} / {!run_braid}
    on a sampling ctx return SimPoint-style sampled results extrapolated
    to full-run shape instead of simulating every instruction, and full
    traces are never materialised unless something forces them.

    [scale] targets the dynamic trace length (the MinneSPEC-style reduced
    run); [ext_usable] recompiles the braid binary with a restricted
    external register budget (Fig 6); [max_internal] varies the braid
    working-set bound (splitting-threshold ablation). *)

type prepared = {
  profile : Braid_workload.Spec.profile;
  init_mem : (int * int64) list;
  warm_data : int list;  (** addresses of the initial data image *)
  virtual_ir : Program.t;
  conventional : Braid_core.Extalloc.result;
  braid : Braid_core.Transform.report;
  scale : int;  (** the dynamic-length target this was prepared at *)
  key : string;  (** memoisation key of this preparation *)
  conv_trace : unit -> Trace.t;
      (** full execution trace of the conventional binary; computed on
          first call, memoised in the ctx (thread-safe). Sampled runs
          never force it. *)
  braid_trace : unit -> Trace.t;  (** likewise for the braid binary *)
}

type ctx
(** Memoisation context: prepared benchmarks plus simulation results.
    Create one per experiment batch and thread it through explicitly —
    there is no global mutable cache. *)

val create_ctx : ?sample:Braid_sample.Spec.t -> unit -> ctx
(** With [sample], every {!run_conv} / {!run_braid} call on this ctx uses
    sampled simulation with that spec. *)

val sampling : ctx -> Braid_sample.Spec.t option

val default_scale : int
(** 12_000 unless the BRAID_SCALE environment variable overrides it.
    A malformed override is reported on stderr and ignored. *)

val prepare :
  ctx ->
  ?seed:int ->
  ?scale:int ->
  ?max_internal:int ->
  ?ext_usable:int ->
  Braid_workload.Spec.profile ->
  prepared
(** Memoised on all parameters. *)

val run_conv :
  ctx -> prepared -> Braid_uarch.Config.t -> Braid_uarch.Pipeline.result
(** Runs the conventional binary's trace (in-order / dep-steer / OoO
    machines). Memoised on the configuration name, so configuration
    variants must carry distinct names. On a sampling ctx this is the
    sampled estimate's extrapolated result ({!Braid_sample.Driver.t}). *)

val run_braid :
  ctx -> prepared -> Braid_uarch.Config.t -> Braid_uarch.Pipeline.result
(** Runs the braid binary's trace (braid machines). Memoised likewise. *)

val sample_conv :
  ctx ->
  prepared ->
  spec:Braid_sample.Spec.t ->
  Braid_uarch.Config.t ->
  Braid_sample.Driver.t
(** Sampled simulation of the conventional binary with full detail
    (representatives, weights, per-interval IPCs) regardless of the ctx's
    own sampling mode. The core-independent plan and the per-core
    measurement are both memoised. *)

val sample_braid :
  ctx ->
  prepared ->
  spec:Braid_sample.Spec.t ->
  Braid_uarch.Config.t ->
  Braid_sample.Driver.t
(** Likewise for the braid binary. *)
