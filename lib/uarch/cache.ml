module Obs = Braid_obs

type t = {
  sets : int;
  ways : int;
  line_bits : int;
  latency : int;
  tags : int array;  (* flat [set * ways + way], -1 = invalid *)
  stamps : int array;  (* LRU timestamps, same layout *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  (* observability handles; dummies (dead stores) when the sink is disabled *)
  c_hits : Obs.Counters.counter;
  c_misses : Obs.Counters.counter;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(obs = Obs.Sink.disabled) ?(name = "cache") (g : Config.cache_geometry) =
  let lines = g.Config.size_bytes / g.Config.line_bytes in
  let sets = max 1 (lines / g.Config.ways) in
  {
    sets;
    ways = g.Config.ways;
    line_bits = log2 g.Config.line_bytes;
    latency = g.Config.latency;
    tags = Array.make (sets * g.Config.ways) (-1);
    stamps = Array.make (sets * g.Config.ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    c_hits = Obs.Sink.counter obs (name ^ ".hits");
    c_misses = Obs.Sink.counter obs (name ^ ".misses");
  }

let access_gen ~count t addr =
  let line = addr lsr t.line_bits in
  let set = line mod t.sets in
  let tag = line / t.sets in
  t.tick <- t.tick + 1;
  let base = set * t.ways in
  let way = ref (-1) in
  for w = base to base + t.ways - 1 do
    if t.tags.(w) = tag then way := w
  done;
  if !way >= 0 then begin
    t.stamps.(!way) <- t.tick;
    if count then begin
      t.hits <- t.hits + 1;
      Obs.Counters.incr t.c_hits
    end;
    true
  end
  else begin
    if count then begin
      t.misses <- t.misses + 1;
      Obs.Counters.incr t.c_misses
    end;
    (* evict LRU *)
    let victim = ref base in
    for w = base + 1 to base + t.ways - 1 do
      if t.stamps.(w) < t.stamps.(!victim) then victim := w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.tick;
    false
  end

let access t addr = access_gen ~count:true t addr

let warm t addr = ignore (access_gen ~count:false t addr)

let latency t = t.latency
let line_bytes t = 1 lsl t.line_bits
let line_of t addr = addr lsr t.line_bits

(* Coherence probes never touch LRU state or hit/miss statistics: a
   back-invalidation or a legality scan must be invisible to the timing
   of the probed core beyond the invalidation itself. *)
let find_way t addr =
  let line = addr lsr t.line_bits in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let base = set * t.ways in
  let way = ref (-1) in
  for w = base to base + t.ways - 1 do
    if t.tags.(w) = tag then way := w
  done;
  !way

let probe t addr = find_way t addr >= 0

let invalidate_line t addr =
  let w = find_way t addr in
  if w >= 0 then begin
    t.tags.(w) <- -1;
    t.stamps.(w) <- 0;
    true
  end
  else false

let hits t = t.hits
let misses t = t.misses
let stats c = (c.hits, c.misses)
