module Obs = Braid_obs

type t = {
  sets : int;
  ways : int;
  line_bits : int;
  latency : int;
  tags : int array;  (* flat [set * ways + way], -1 = invalid *)
  stamps : int array;  (* LRU timestamps, same layout *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  (* observability handles; dummies (dead stores) when the sink is disabled *)
  c_hits : Obs.Counters.counter;
  c_misses : Obs.Counters.counter;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ?(obs = Obs.Sink.disabled) ?(name = "cache") (g : Config.cache_geometry) =
  let lines = g.Config.size_bytes / g.Config.line_bytes in
  let sets = max 1 (lines / g.Config.ways) in
  {
    sets;
    ways = g.Config.ways;
    line_bits = log2 g.Config.line_bytes;
    latency = g.Config.latency;
    tags = Array.make (sets * g.Config.ways) (-1);
    stamps = Array.make (sets * g.Config.ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    c_hits = Obs.Sink.counter obs (name ^ ".hits");
    c_misses = Obs.Sink.counter obs (name ^ ".misses");
  }

let access_gen ~count t addr =
  let line = addr lsr t.line_bits in
  let set = line mod t.sets in
  let tag = line / t.sets in
  t.tick <- t.tick + 1;
  let base = set * t.ways in
  let way = ref (-1) in
  for w = base to base + t.ways - 1 do
    if t.tags.(w) = tag then way := w
  done;
  if !way >= 0 then begin
    t.stamps.(!way) <- t.tick;
    if count then begin
      t.hits <- t.hits + 1;
      Obs.Counters.incr t.c_hits
    end;
    true
  end
  else begin
    if count then begin
      t.misses <- t.misses + 1;
      Obs.Counters.incr t.c_misses
    end;
    (* evict LRU *)
    let victim = ref base in
    for w = base + 1 to base + t.ways - 1 do
      if t.stamps.(w) < t.stamps.(!victim) then victim := w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.tick;
    false
  end

let access t addr = access_gen ~count:true t addr

let hits t = t.hits
let misses t = t.misses

type hierarchy = {
  l1i : t;
  l1d : t;
  l2 : t;
  memory_latency : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

let create_hierarchy ?(obs = Obs.Sink.disabled) (m : Config.memory) =
  {
    l1i = create ~obs ~name:"l1i" m.Config.l1i;
    l1d = create ~obs ~name:"l1d" m.Config.l1d;
    l2 = create ~obs ~name:"l2" m.Config.l2;
    memory_latency = m.Config.memory_latency;
    perfect_icache = m.Config.perfect_icache;
    perfect_dcache = m.Config.perfect_dcache;
  }

let through h l1 addr =
  let lat = ref l1.latency in
  if not (access l1 addr) then begin
    lat := !lat + h.l2.latency;
    if not (access h.l2 addr) then lat := !lat + h.memory_latency
  end;
  !lat

let instr_latency h addr = if h.perfect_icache then 1 else through h h.l1i addr

let data_latency h addr = if h.perfect_dcache then h.l1d.latency else through h h.l1d addr

let warm_instr h addr =
  ignore (access_gen ~count:false h.l1i addr);
  ignore (access_gen ~count:false h.l2 addr)

let warm_l2 h addr = ignore (access_gen ~count:false h.l2 addr)

let warm_data h addr =
  ignore (access_gen ~count:false h.l1d addr);
  ignore (access_gen ~count:false h.l2 addr)

let stats c = (c.hits, c.misses)
let l1i_stats h = stats h.l1i
let l1d_stats h = stats h.l1d
let l2_stats h = stats h.l2
