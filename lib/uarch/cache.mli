(** Set-associative caches with true LRU.

    The timing model charges the full latency chain at access time and
    fills all levels (non-blocking, unlimited MSHRs — adequate for
    relative comparisons across execution cores, which all share this
    model). The two-level hierarchy built from these caches lives in
    {!Mem_hier}. *)

type t

val create : ?obs:Braid_obs.Sink.t -> ?name:string -> Config.cache_geometry -> t
(** With a live [obs] sink, registers ["<name>.hits"] / ["<name>.misses"]
    counters that mirror {!hits} / {!misses} (warm-up fills stay
    uncounted, as before). *)

val access : t -> int -> bool
(** [access t addr] probes and updates state; returns hit. Fills on miss. *)

val warm : t -> int -> unit
(** Like {!access} but counts nothing: warm-up pre-fill. *)

val latency : t -> int
(** Access latency of this level (from the creating geometry). *)

val line_bytes : t -> int
val line_of : t -> int -> int
(** The line index of a byte address under this cache's line size. *)

val probe : t -> int -> bool
(** Presence check that touches neither LRU state nor statistics
    (coherence-legality scans). *)

val invalidate_line : t -> int -> bool
(** [invalidate_line t addr] drops the line holding [addr] if present
    (directory back-invalidation); returns whether a line was dropped.
    Touches no statistics and no LRU state of other lines. *)

val hits : t -> int
val misses : t -> int

val stats : t -> int * int
(** [(hits, misses)]. *)
