(** Set-associative caches with true LRU, and the two-level hierarchy plus
    main memory of Table 4.

    The timing model charges the full latency chain at access time and
    fills all levels (non-blocking, unlimited MSHRs — adequate for
    relative comparisons across execution cores, which all share this
    model). *)

type t

val create : ?obs:Braid_obs.Sink.t -> ?name:string -> Config.cache_geometry -> t
(** With a live [obs] sink, registers ["<name>.hits"] / ["<name>.misses"]
    counters that mirror {!hits} / {!misses} (warm-up fills stay
    uncounted, as before). *)

val access : t -> int -> bool
(** [access t addr] probes and updates state; returns hit. Fills on miss. *)

val hits : t -> int
val misses : t -> int

type hierarchy

val create_hierarchy : ?obs:Braid_obs.Sink.t -> Config.memory -> hierarchy
(** Level counters are registered as ["l1i.*"], ["l1d.*"], ["l2.*"]. *)

val instr_latency : hierarchy -> int -> int
(** Fetch latency for the line containing a byte address: the L1I latency
    on a hit, plus L2/memory on misses. 1 when the configuration has a
    perfect I-cache. *)

val data_latency : hierarchy -> int -> int
(** Load-to-use latency for a data access, analogous. *)

val warm_instr : hierarchy -> int -> unit
(** Pre-fills the L1I and L2 with the line of a code address, without
    touching hit/miss statistics (steady-state warm-up). *)

val warm_l2 : hierarchy -> int -> unit
(** Pre-fills the L2 with a data line, without touching statistics. *)

val warm_data : hierarchy -> int -> unit
(** Pre-fills the L1D and L2 with a data line, without touching
    statistics (sampled-simulation warm-up replay). *)

val l1i_stats : hierarchy -> int * int
val l1d_stats : hierarchy -> int * int
val l2_stats : hierarchy -> int * int
