type t = {
  rf_area : float;
  scheduler_area : float;
  bypass_area : float;
  rename_ports : float;
  wakeup_broadcast_per_result : float;
  total : float;
}

let word_bits = 64.0

let rf_area_of ~entries ~read_ports ~write_ports =
  let ports = float_of_int (read_ports + write_ports) in
  float_of_int entries *. ports *. ports *. word_bits

let of_config (cfg : Config.t) =
  let f = float_of_int in
  (* external register file *)
  let ext_rf =
    rf_area_of ~entries:cfg.Config.ext_regs ~read_ports:cfg.Config.rf_read_ports
      ~write_ports:cfg.Config.rf_write_ports
  in
  (* local (internal) register files: 8 entries, 4r/2w, one per BEU or
     per CG-OoO block window *)
  let int_rf =
    match cfg.Config.kind with
    | Config.Braid_exec ->
        f cfg.Config.clusters *. rf_area_of ~entries:8 ~read_ports:4 ~write_ports:2
    | Config.Cgooo ->
        f cfg.Config.block_windows
        *. rf_area_of ~entries:8 ~read_ports:4 ~write_ports:2
    | Config.In_order | Config.Dep_steer | Config.Ooo -> 0.0
  in
  let window = cfg.Config.clusters * cfg.Config.cluster_entries in
  let tag_bits = 8.0 in
  let scheduler_area, wakeup =
    match cfg.Config.kind with
    | Config.Ooo ->
        (* every entry holds tag comparators for each result broadcast *)
        let per_entry = tag_bits *. f (cfg.Config.clusters * cfg.Config.fus_per_cluster) in
        (f window *. per_entry, f window)
    | Config.Dep_steer | Config.In_order ->
        (* FIFO storage plus head comparators; results still wake the
           whole window's scoreboard, conservatively counted per FIFO
           head *)
        let heads = cfg.Config.clusters * cfg.Config.sched_window in
        (f window +. (tag_bits *. f heads), f heads)
    | Config.Braid_exec ->
        (* FIFO storage; readiness via the per-BEU busy-bit vector (8 bits)
           and the 2-entry head window *)
        let heads = cfg.Config.clusters * cfg.Config.sched_window in
        ( f window +. (tag_bits *. f heads) +. (8.0 *. f cfg.Config.clusters),
          f heads )
    | Config.Cgooo ->
        (* per-window FIFO storage; only the in-order head entries hold
           comparators and only they are woken — block-level selection is
           an age pick over [block_windows] windows (8 bits each) *)
        let bw_window = cfg.Config.block_windows * cfg.Config.cluster_entries in
        let heads = cfg.Config.block_windows * cfg.Config.block_head_window in
        ( f bw_window +. (tag_bits *. f heads)
          +. (8.0 *. f cfg.Config.block_windows),
          f heads )
  in
  let bypass_levels =
    match cfg.Config.kind with
    | Config.Braid_exec -> 1.0
    | Config.Cgooo -> 2.0
    | _ -> 3.0
  in
  let bypass_area =
    bypass_levels *. f cfg.Config.bypass_per_cycle *. f cfg.Config.bypass_per_cycle
    *. word_bits
  in
  let rename_ports = f (cfg.Config.rename_src_width + cfg.Config.rename_dst_width) in
  let total = ext_rf +. int_rf +. scheduler_area +. bypass_area in
  {
    rf_area = ext_rf +. int_rf;
    scheduler_area;
    bypass_area;
    rename_ports;
    wakeup_broadcast_per_result = wakeup;
    total;
  }

let relative a b = a.total /. b.total

let describe (cfg : Config.t) =
  let c = of_config cfg in
  Printf.sprintf
    "%s: RF %.0f, scheduler %.0f, bypass %.0f (total %.0f); %.0f rename ports, \
     %.0f window entries woken per result"
    cfg.Config.name c.rf_area c.scheduler_area c.bypass_area c.total c.rename_ports
    c.wakeup_broadcast_per_result

type energy_proxy = {
  ext_rf_accesses_per_instr : float;
  int_rf_accesses_per_instr : float;
  bypass_values_per_instr : float;
  broadcast_work_per_instr : float;
}

let energy_of_run (cfg : Config.t) (r : Pipeline.result) =
  let n = float_of_int (max 1 r.Pipeline.instructions) in
  let a = r.Pipeline.activity in
  let c = of_config cfg in
  {
    ext_rf_accesses_per_instr =
      float_of_int (a.Machine.ext_rf_reads + a.Machine.ext_rf_writes) /. n;
    int_rf_accesses_per_instr =
      float_of_int (a.Machine.int_rf_reads + a.Machine.int_rf_writes) /. n;
    bypass_values_per_instr = float_of_int a.Machine.bypass_values /. n;
    broadcast_work_per_instr =
      float_of_int a.Machine.ext_rf_writes
      *. c.wakeup_broadcast_per_result /. n;
  }
