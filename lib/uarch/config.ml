type core_kind = In_order | Dep_steer | Ooo | Braid_exec | Cgooo

type predictor_kind = Perceptron | Gshare | Perfect_prediction

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type memory = {
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  memory_latency : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

type t = {
  name : string;
  kind : core_kind;
  fetch_width : int;
  max_branches_per_cycle : int;
  fetch_buffer : int;
  predictor : predictor_kind;
  misprediction_penalty : int;
  alloc_width : int;
  rename_src_width : int;
  rename_dst_width : int;
  commit_width : int;
  ext_regs : int;
  inflight : int;
  clusters : int;
  cluster_entries : int;
  sched_window : int;
  fus_per_cluster : int;
  rf_read_ports : int;
  rf_write_ports : int;
  bypass_per_cycle : int;
  mem : memory;
  lsq_entries : int;
  (* braid-core variants (§5.1 / §5.2) *)
  beu_out_of_order : bool;
  beu_cluster_size : int;
  inter_cluster_latency : int;
  max_unresolved_branches : int;  (* checkpoint count; 0 = unlimited *)
  (* front-end fidelity options *)
  model_wrong_path_fetch : bool;  (* pollute the I-cache down the wrong path *)
  btb_entries : int;  (* 0 = perfect target prediction *)
  (* CG-OoO core axes *)
  block_windows : int;  (* block windows competing for selection *)
  block_head_window : int;  (* in-order issue window at each block head *)
}

let default_memory =
  {
    l1i = { size_bytes = 64 * 1024; ways = 4; line_bytes = 64; latency = 3 };
    l1d = { size_bytes = 64 * 1024; ways = 2; line_bytes = 64; latency = 3 };
    l2 = { size_bytes = 1024 * 1024; ways = 8; line_bytes = 64; latency = 6 };
    memory_latency = 400;
    perfect_icache = false;
    perfect_dcache = false;
  }

let ooo_8wide =
  {
    name = "ooo-8";
    kind = Ooo;
    fetch_width = 8;
    max_branches_per_cycle = 3;
    fetch_buffer = 32;
    predictor = Perceptron;
    misprediction_penalty = 23;
    alloc_width = 8;
    rename_src_width = 16;
    rename_dst_width = 8;
    commit_width = 8;
    ext_regs = 256;
    inflight = 256;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 32 (* full window: out-of-order select *);
    fus_per_cluster = 1;
    rf_read_ports = 16;
    rf_write_ports = 8;
    bypass_per_cycle = 8;
    mem = default_memory;
    lsq_entries = 64;
    beu_out_of_order = false;
    beu_cluster_size = 0;
    inter_cluster_latency = 2;
    max_unresolved_branches = 0;
    model_wrong_path_fetch = false;
    btb_entries = 0;
    block_windows = 8;
    block_head_window = 3;
  }

let braid_8wide =
  {
    name = "braid-8";
    kind = Braid_exec;
    fetch_width = 8;
    max_branches_per_cycle = 3;
    fetch_buffer = 32;
    predictor = Perceptron;
    misprediction_penalty = 19;
    (* instruction throughput matches the fetch width; Table 4's "4
       operands" is the external-destination allocation bandwidth
       (rename_dst_width) — internal destinations allocate nothing *)
    alloc_width = 8;
    rename_src_width = 8;
    rename_dst_width = 4;
    commit_width = 8;
    ext_regs = 8;
    inflight = 256;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 2;
    fus_per_cluster = 2;
    rf_read_ports = 6;
    rf_write_ports = 3;
    bypass_per_cycle = 2;
    mem = default_memory;
    lsq_entries = 64;
    beu_out_of_order = false;
    beu_cluster_size = 0;
    inter_cluster_latency = 2;
    max_unresolved_branches = 0;
    model_wrong_path_fetch = false;
    btb_entries = 0;
    block_windows = 8;
    block_head_window = 3;
  }

(* CG-OoO (arXiv 1606.01607): whole basic blocks steered to block windows
   that are selected out of order relative to each other while each window
   issues strictly in order from a small head. The paper's global/local
   register split maps onto the external/internal files, so the core runs
   the braid binary; the global file is a conventional commit-released
   file, mid-sized between the braid machine's 8 entries and the
   out-of-order machine's 256-entry rename file. *)
let cgooo_8wide =
  {
    braid_8wide with
    name = "cgooo-8";
    kind = Cgooo;
    (* block windows replace the BEUs; the FU pool is shared *)
    block_windows = 8;
    block_head_window = 3;
    clusters = 4;
    fus_per_cluster = 2;
    (* global register file: 64 entries, ported between the braid and
       out-of-order extremes; local values stay inside the windows *)
    ext_regs = 64;
    rf_read_ports = 8;
    rf_write_ports = 4;
    bypass_per_cycle = 4;
    (* block-level scheduling keeps rename narrow but the pipeline is a
       little deeper than the braid machine's *)
    misprediction_penalty = 21;
  }

let in_order_8wide =
  {
    ooo_8wide with
    name = "in-order-8";
    kind = In_order;
    clusters = 1;
    cluster_entries = 64;
    sched_window = 8;
    fus_per_cluster = 8;
    misprediction_penalty = 19;
    (* in-order issue keeps values briefly in flight: the architectural
       file plus a small completion buffer, not a 256-entry rename file *)
    ext_regs = 64;
  }

let dep_steer_8wide =
  {
    ooo_8wide with
    name = "dep-steer-8";
    kind = Dep_steer;
    clusters = 8;
    cluster_entries = 32;
    sched_window = 1;
    fus_per_cluster = 1;
    (* only the scheduler is simplified; rename and the register file stay
       conventional, so the pipeline keeps the conventional depth *)
    misprediction_penalty = 23;
  }

let scale_width cfg w =
  if w <= 0 then invalid_arg "Config.scale_width";
  let ratio_num = w and ratio_den = 8 in
  let scale x = max 1 (x * ratio_num / ratio_den) in
  {
    cfg with
    name = Printf.sprintf "%s@%dw" (List.hd (String.split_on_char '@' cfg.name)) w;
    fetch_width = w;
    alloc_width = scale cfg.alloc_width;
    rename_src_width = scale cfg.rename_src_width;
    rename_dst_width = scale cfg.rename_dst_width;
    commit_width = w;
    clusters = scale cfg.clusters;
    block_windows = scale cfg.block_windows;
    fus_per_cluster = cfg.fus_per_cluster;
    rf_read_ports = scale cfg.rf_read_ports;
    rf_write_ports = scale cfg.rf_write_ports;
    bypass_per_cycle = scale cfg.bypass_per_cycle;
    inflight = scale cfg.inflight;
    lsq_entries = scale cfg.lsq_entries;
    fetch_buffer = scale cfg.fetch_buffer;
  }

let perfect_frontend cfg =
  {
    cfg with
    predictor = Perfect_prediction;
    mem = { cfg.mem with perfect_icache = true; perfect_dcache = true };
  }

(* ------------------------------------------------------------------ *)
(* First-class configuration API: stable names, serialization, digest, *)
(* validation, and field-level overrides. One field table drives all   *)
(* of it, so the JSON shape, the sweepable-field vocabulary and the    *)
(* digest can never drift apart.                                       *)
(* ------------------------------------------------------------------ *)



(* The one place core-kind names live: every front end (CLI, api, DSE
   axes, fuzz) converts through this module, so an unknown kind produces
   the same typed error, listing the same valid names, everywhere. *)
module Core_kind = struct
  type t = core_kind = In_order | Dep_steer | Ooo | Braid_exec | Cgooo

  let all = [ In_order; Dep_steer; Ooo; Braid_exec; Cgooo ]

  let to_string = function
    | In_order -> "in-order"
    | Dep_steer -> "dep-steer"
    | Ooo -> "ooo"
    | Braid_exec -> "braid"
    | Cgooo -> "cgooo"

  let names = List.map to_string all

  let of_string s =
    let needle = String.lowercase_ascii (String.trim s) in
    match List.find_opt (fun k -> String.equal (to_string k) needle) all with
    | Some k -> Ok k
    | None ->
        Error
          (Printf.sprintf "unknown core kind %S (expected %s)" s
             (String.concat ", " names))
end

let kind_to_string = Core_kind.to_string
let kind_of_string = Core_kind.of_string

let predictor_to_string = function
  | Perceptron -> "perceptron"
  | Gshare -> "gshare"
  | Perfect_prediction -> "perfect"

let predictor_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "perceptron" -> Ok Perceptron
  | "gshare" -> Ok Gshare
  | "perfect" -> Ok Perfect_prediction
  | _ ->
      Error
        (Printf.sprintf
           "unknown predictor %S (expected perceptron, gshare or perfect)" s)

let preset_of_kind = function
  | In_order -> in_order_8wide
  | Dep_steer -> dep_steer_8wide
  | Ooo -> ooo_8wide
  | Braid_exec -> braid_8wide
  | Cgooo -> cgooo_8wide

let presets =
  [ in_order_8wide; dep_steer_8wide; braid_8wide; cgooo_8wide; ooo_8wide ]

(* Every field serializes to (and parses from) a canonical string; the
   class only decides how the value is rendered inside JSON. *)
type field_class = Jint | Jbool | Jstr

type field_spec = {
  f_name : string;
  f_class : field_class;
  get : t -> string;
  set : t -> string -> (t, string) result;
}

let int_field f_name get set =
  {
    f_name;
    f_class = Jint;
    get = (fun c -> string_of_int (get c));
    set =
      (fun c s ->
        match int_of_string_opt (String.trim s) with
        | Some v -> Ok (set c v)
        | None -> Error (Printf.sprintf "%s: expected an integer, got %S" f_name s));
  }

let bool_field f_name get set =
  {
    f_name;
    f_class = Jbool;
    get = (fun c -> if get c then "true" else "false");
    set =
      (fun c s ->
        match String.lowercase_ascii (String.trim s) with
        | "true" | "1" -> Ok (set c true)
        | "false" | "0" -> Ok (set c false)
        | _ -> Error (Printf.sprintf "%s: expected true or false, got %S" f_name s));
  }

let geometry_fields prefix get set =
  [
    int_field (prefix ^ ".size_bytes")
      (fun c -> (get c).size_bytes)
      (fun c v -> set c { (get c) with size_bytes = v });
    int_field (prefix ^ ".ways")
      (fun c -> (get c).ways)
      (fun c v -> set c { (get c) with ways = v });
    int_field (prefix ^ ".line_bytes")
      (fun c -> (get c).line_bytes)
      (fun c v -> set c { (get c) with line_bytes = v });
    int_field (prefix ^ ".latency")
      (fun c -> (get c).latency)
      (fun c v -> set c { (get c) with latency = v });
  ]

(* Declaration order is the canonical JSON field order; the digest hashes
   that document, so reordering this list invalidates result caches. *)
let fields : field_spec list =
  [
    {
      f_name = "kind";
      f_class = Jstr;
      get = (fun c -> Core_kind.to_string c.kind);
      set = (fun c s -> Result.map (fun kind -> { c with kind }) (Core_kind.of_string s));
    };
    int_field "fetch_width" (fun c -> c.fetch_width) (fun c v -> { c with fetch_width = v });
    int_field "max_branches_per_cycle"
      (fun c -> c.max_branches_per_cycle)
      (fun c v -> { c with max_branches_per_cycle = v });
    int_field "fetch_buffer" (fun c -> c.fetch_buffer) (fun c v -> { c with fetch_buffer = v });
    {
      f_name = "predictor";
      f_class = Jstr;
      get = (fun c -> predictor_to_string c.predictor);
      set =
        (fun c s ->
          Result.map (fun predictor -> { c with predictor }) (predictor_of_string s));
    };
    int_field "misprediction_penalty"
      (fun c -> c.misprediction_penalty)
      (fun c v -> { c with misprediction_penalty = v });
    int_field "alloc_width" (fun c -> c.alloc_width) (fun c v -> { c with alloc_width = v });
    int_field "rename_src_width"
      (fun c -> c.rename_src_width)
      (fun c v -> { c with rename_src_width = v });
    int_field "rename_dst_width"
      (fun c -> c.rename_dst_width)
      (fun c v -> { c with rename_dst_width = v });
    int_field "commit_width" (fun c -> c.commit_width) (fun c v -> { c with commit_width = v });
    int_field "ext_regs" (fun c -> c.ext_regs) (fun c v -> { c with ext_regs = v });
    int_field "inflight" (fun c -> c.inflight) (fun c v -> { c with inflight = v });
    int_field "clusters" (fun c -> c.clusters) (fun c v -> { c with clusters = v });
    int_field "cluster_entries"
      (fun c -> c.cluster_entries)
      (fun c v -> { c with cluster_entries = v });
    int_field "sched_window" (fun c -> c.sched_window) (fun c v -> { c with sched_window = v });
    int_field "fus_per_cluster"
      (fun c -> c.fus_per_cluster)
      (fun c v -> { c with fus_per_cluster = v });
    int_field "rf_read_ports"
      (fun c -> c.rf_read_ports)
      (fun c v -> { c with rf_read_ports = v });
    int_field "rf_write_ports"
      (fun c -> c.rf_write_ports)
      (fun c v -> { c with rf_write_ports = v });
    int_field "bypass_per_cycle"
      (fun c -> c.bypass_per_cycle)
      (fun c v -> { c with bypass_per_cycle = v });
    int_field "lsq_entries" (fun c -> c.lsq_entries) (fun c v -> { c with lsq_entries = v });
    bool_field "beu_out_of_order"
      (fun c -> c.beu_out_of_order)
      (fun c v -> { c with beu_out_of_order = v });
    int_field "beu_cluster_size"
      (fun c -> c.beu_cluster_size)
      (fun c v -> { c with beu_cluster_size = v });
    int_field "inter_cluster_latency"
      (fun c -> c.inter_cluster_latency)
      (fun c v -> { c with inter_cluster_latency = v });
    int_field "max_unresolved_branches"
      (fun c -> c.max_unresolved_branches)
      (fun c v -> { c with max_unresolved_branches = v });
    bool_field "model_wrong_path_fetch"
      (fun c -> c.model_wrong_path_fetch)
      (fun c v -> { c with model_wrong_path_fetch = v });
    int_field "btb_entries" (fun c -> c.btb_entries) (fun c v -> { c with btb_entries = v });
    int_field "block_windows"
      (fun c -> c.block_windows)
      (fun c v -> { c with block_windows = v });
    int_field "block_head_window"
      (fun c -> c.block_head_window)
      (fun c v -> { c with block_head_window = v });
  ]
  @ geometry_fields "l1i" (fun c -> c.mem.l1i) (fun c g -> { c with mem = { c.mem with l1i = g } })
  @ geometry_fields "l1d" (fun c -> c.mem.l1d) (fun c g -> { c with mem = { c.mem with l1d = g } })
  @ geometry_fields "l2" (fun c -> c.mem.l2) (fun c g -> { c with mem = { c.mem with l2 = g } })
  @ [
      int_field "memory_latency"
        (fun c -> c.mem.memory_latency)
        (fun c v -> { c with mem = { c.mem with memory_latency = v } });
      bool_field "perfect_icache"
        (fun c -> c.mem.perfect_icache)
        (fun c v -> { c with mem = { c.mem with perfect_icache = v } });
      bool_field "perfect_dcache"
        (fun c -> c.mem.perfect_dcache)
        (fun c v -> { c with mem = { c.mem with perfect_dcache = v } });
    ]

let sweepable_fields = List.map (fun f -> f.f_name) fields

let find_field name = List.find_opt (fun f -> String.equal f.f_name name) fields

let get c name =
  match find_field name with
  | Some f -> Ok (f.get c)
  | None -> Error (Printf.sprintf "unknown config field %S" name)

let override c kvs =
  List.fold_left
    (fun acc (k, v) ->
      Result.bind acc (fun c ->
          match find_field k with
          | Some f -> f.set c v
          | None ->
              Error
                (Printf.sprintf "unknown config field %S; sweepable fields: %s" k
                   (String.concat ", " sweepable_fields))))
    (Ok c) kvs

let to_json c =
  let field_json f =
    let v = f.get c in
    Json.escape_string f.f_name ^ ":"
    ^ (match f.f_class with Jint | Jbool -> v | Jstr -> Json.escape_string v)
  in
  "{"
  ^ String.concat ","
      ((Json.escape_string "name" ^ ":" ^ Json.escape_string c.name)
      :: List.map field_json fields)
  ^ "}"

let of_json s =
  match Json.parse s with
  | Error msg -> Error ("config JSON: " ^ msg)
  | Ok (Json.Obj members) ->
      let canonical_value name = function
        | Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
            Ok (Printf.sprintf "%.0f" f)
        | Json.Bool b -> Ok (if b then "true" else "false")
        | Json.Str s -> Ok s
        | Json.Num _ | Json.Null | Json.Arr _ | Json.Obj _ ->
            Error (Printf.sprintf "%s: expected a number, boolean or string" name)
      in
      let keys = List.map fst members in
      let expected = "name" :: sweepable_fields in
      let missing = List.filter (fun k -> not (List.mem k keys)) expected in
      if missing <> [] then
        Error ("config JSON: missing field(s): " ^ String.concat ", " missing)
      else if List.length (List.sort_uniq String.compare keys) <> List.length keys
      then Error "config JSON: duplicate field"
      else
        (* field order in the document is irrelevant: each member routes
           through the same setter the override API uses *)
        List.fold_left
          (fun acc (k, v) ->
            Result.bind acc (fun c ->
                if String.equal k "name" then
                  match v with
                  | Json.Str n -> Ok { c with name = n }
                  | _ -> Error "name: expected a string"
                else
                  match find_field k with
                  | None -> Error (Printf.sprintf "config JSON: unknown field %S" k)
                  | Some f -> Result.bind (canonical_value k v) (f.set c)))
          (Ok ooo_8wide) members
  | Ok _ -> Error "config JSON: expected an object"

(* The digest identifies the machine, not its label: two identically
   parameterised configs under different names hash alike, so sweep result
   caches are shared across runs that name their points differently. *)
let digest c = Digest.to_hex (Digest.string (to_json { c with name = "" }))

let validate c =
  let problems = ref [] in
  let check ok msg = if not ok then problems := msg :: !problems in
  let positive name v =
    check (v >= 1) (Printf.sprintf "%s must be positive (got %d)" name v)
  in
  let non_negative name v =
    check (v >= 0) (Printf.sprintf "%s must be non-negative (got %d)" name v)
  in
  check (c.name <> "") "name must be non-empty";
  positive "fetch_width" c.fetch_width;
  positive "max_branches_per_cycle" c.max_branches_per_cycle;
  positive "fetch_buffer" c.fetch_buffer;
  non_negative "misprediction_penalty" c.misprediction_penalty;
  positive "alloc_width" c.alloc_width;
  positive "rename_src_width" c.rename_src_width;
  positive "rename_dst_width" c.rename_dst_width;
  positive "commit_width" c.commit_width;
  positive "ext_regs" c.ext_regs;
  positive "inflight" c.inflight;
  check (c.clusters >= 1)
    (Printf.sprintf "clusters must be positive (got %d): the machine needs at least one scheduler/BEU"
       c.clusters);
  positive "cluster_entries" c.cluster_entries;
  positive "sched_window" c.sched_window;
  check (c.sched_window <= c.cluster_entries)
    (Printf.sprintf "sched_window (%d) must not exceed cluster_entries (%d)"
       c.sched_window c.cluster_entries);
  positive "fus_per_cluster" c.fus_per_cluster;
  positive "rf_read_ports" c.rf_read_ports;
  positive "rf_write_ports" c.rf_write_ports;
  positive "bypass_per_cycle" c.bypass_per_cycle;
  positive "lsq_entries" c.lsq_entries;
  non_negative "beu_cluster_size" c.beu_cluster_size;
  non_negative "inter_cluster_latency" c.inter_cluster_latency;
  non_negative "max_unresolved_branches" c.max_unresolved_branches;
  non_negative "btb_entries" c.btb_entries;
  positive "block_windows" c.block_windows;
  positive "block_head_window" c.block_head_window;
  check (c.block_head_window <= c.cluster_entries)
    (Printf.sprintf
       "block_head_window (%d) must not exceed cluster_entries (%d)"
       c.block_head_window c.cluster_entries);
  let geometry prefix (g : cache_geometry) =
    positive (prefix ^ ".size_bytes") g.size_bytes;
    positive (prefix ^ ".ways") g.ways;
    positive (prefix ^ ".line_bytes") g.line_bytes;
    positive (prefix ^ ".latency") g.latency;
    check
      (g.size_bytes >= g.ways * g.line_bytes)
      (Printf.sprintf "%s.size_bytes (%d) must hold at least one line per way (%d x %d)"
         prefix g.size_bytes g.ways g.line_bytes)
  in
  geometry "l1i" c.mem.l1i;
  geometry "l1d" c.mem.l1d;
  geometry "l2" c.mem.l2;
  positive "memory_latency" c.mem.memory_latency;
  match List.rev !problems with
  | [] -> Ok c
  | ps -> Error (String.concat "; " ps)

(* ------------------------------------------------------------------ *)
(* CMP section. Deliberately *not* part of the per-core field table:   *)
(* adding fields there would change every config digest and invalidate *)
(* every sweep cache. A CMP point is a per-core config plus this       *)
(* record; the sweep cache keys the pair separately.                   *)
(* ------------------------------------------------------------------ *)

module Cmp = struct
  type t = {
    cores : int;  (* cores tiled over the shared L2 *)
    workloads : string list;  (* benchmark names, assigned round-robin *)
    l2 : cache_geometry;  (* the shared L2 *)
  }

  let default_l2 cores =
    (* scale the solo L2 capacity with the core count so per-core
       capacity pressure stays comparable across the sweep axis *)
    let solo = default_memory.l2 in
    { solo with size_bytes = solo.size_bytes * max 1 cores }

  let make ?(l2 = None) ~cores ~workloads () =
    {
      cores;
      workloads;
      l2 = (match l2 with Some g -> g | None -> default_l2 cores);
    }

  let validate t =
    let problems = ref [] in
    let check ok msg = if not ok then problems := msg :: !problems in
    check (t.cores >= 1)
      (Printf.sprintf "cmp.cores must be positive (got %d)" t.cores);
    check (t.cores <= 64)
      (Printf.sprintf "cmp.cores must be at most 64 (got %d): the directory \
                       tracks sharers in one word" t.cores);
    check (t.workloads <> []) "cmp.workloads must name at least one benchmark";
    check (t.l2.size_bytes >= t.l2.ways * t.l2.line_bytes)
      (Printf.sprintf
         "cmp.l2.size_bytes (%d) must hold at least one line per way (%d x %d)"
         t.l2.size_bytes t.l2.ways t.l2.line_bytes);
    check (t.l2.ways >= 1 && t.l2.line_bytes >= 1 && t.l2.latency >= 1
           && t.l2.size_bytes >= 1)
      "cmp.l2 geometry fields must be positive";
    match List.rev !problems with
    | [] -> Ok t
    | ps -> Error (String.concat "; " ps)

  (* workload of core [i]: round-robin over the named benchmarks *)
  let workload_of t i = List.nth t.workloads (i mod List.length t.workloads)
end
