(** Simulator configurations (paper Table 4).

    One record drives the whole pipeline; the presets below are the paper's
    default 8-wide out-of-order and braid machines plus the in-order and
    dependence-steering baselines. Sensitivity experiments (Figs 5–12)
    start from a preset and override one field. *)

type core_kind =
  | In_order  (** one in-order issue queue *)
  | Dep_steer  (** Palacharla-style dependence-steered FIFOs *)
  | Ooo  (** distributed out-of-order schedulers *)
  | Braid_exec  (** braid execution units *)
  | Cgooo
      (** CG-OoO (arXiv 1606.01607): basic blocks steered whole to block
          windows scheduled out of order, in-order issue within a block *)

type predictor_kind =
  | Perceptron  (** Table 4: 512-entry weight table, 64-bit history *)
  | Gshare  (** comparison predictor: 4K 2-bit counters, 12-bit history *)
  | Perfect_prediction  (** the Fig 1 limit study *)

type cache_geometry = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  latency : int;
}

type memory = {
  l1i : cache_geometry;
  l1d : cache_geometry;
  l2 : cache_geometry;
  memory_latency : int;
  perfect_icache : bool;
  perfect_dcache : bool;
}

type t = {
  name : string;
  kind : core_kind;
  (* front end *)
  fetch_width : int;
  max_branches_per_cycle : int;
  fetch_buffer : int;
  predictor : predictor_kind;
  misprediction_penalty : int;
  (* allocate / rename *)
  alloc_width : int;
  rename_src_width : int;
  rename_dst_width : int;
  commit_width : int;
  ext_regs : int;  (** rename free-list size (external register file) *)
  inflight : int;  (** checkpoint/ROB-equivalent in-flight bound *)
  (* execution core *)
  clusters : int;  (** schedulers / FIFOs / BEUs *)
  cluster_entries : int;  (** entries per scheduler/FIFO *)
  sched_window : int;  (** FIFO scheduling window (braid, dep, in-order) *)
  fus_per_cluster : int;
  (* register file and bypass *)
  rf_read_ports : int;
  rf_write_ports : int;
  bypass_per_cycle : int;
  (* memory *)
  mem : memory;
  lsq_entries : int;
  (* braid-core variants *)
  beu_out_of_order : bool;
      (** §5.1: replace each BEU's FIFO window with full out-of-order
          selection over its queue (the considered-and-rejected design) *)
  beu_cluster_size : int;
      (** §5.2: group BEUs into clusters of this size (0 = unclustered);
          external values crossing clusters pay extra latency *)
  inter_cluster_latency : int;
  max_unresolved_branches : int;
      (** checkpoint count (§3.4): unresolved conditional branches in
          flight; dispatch stalls beyond it. 0 = unlimited. Braid
          checkpoints are far smaller (the 8-entry external file, no
          internal values), so equal checkpoint storage affords the braid
          machine several times more of them. *)
  model_wrong_path_fetch : bool;
      (** fetch down the mispredicted path while a redirect is pending,
          polluting the I-cache (default off: wrong-path work is a pure
          bubble, as DESIGN.md documents) *)
  btb_entries : int;
      (** finite branch-target buffer; a taken transfer missing in the BTB
          costs a one-cycle fetch bubble. 0 = perfect targets. *)
  block_windows : int;
      (** CG-OoO: block windows competing for out-of-order block-level
          selection (each holds one basic block, capacity
          [cluster_entries]) *)
  block_head_window : int;
      (** CG-OoO: instructions issuable per cycle from the strictly
          in-order head of each block window *)
}

val default_memory : memory

val ooo_8wide : t
(** Table 4 "Out-of-Order Parameters": 8-wide, 8×32 schedulers, 256
    registers, 16r/8w, 8 bypass values/cycle, 23-cycle penalty. *)

val braid_8wide : t
(** Table 4 "Braid Parameters": 8 BEUs with 32-entry FIFOs, 2-entry
    windows, 2 FUs each; 8-entry external RF with 6r/3w; 2 bypass
    values/cycle; 19-cycle penalty. *)

val in_order_8wide : t
val dep_steer_8wide : t

val cgooo_8wide : t
(** CG-OoO: 8 block windows over a shared 8-FU pool, 3-entry in-order
    block heads, a 64-entry commit-released global file (8r/4w) with the
    local (internal) files inside the windows. Runs the braid binary —
    the paper's global/local register split is the external/internal
    split. *)

val scale_width : t -> int -> t
(** [scale_width cfg w] rescales a preset to issue width [w] (4, 8 or 16):
    fetch/alloc/commit widths, cluster count and rename bandwidth scale
    proportionally; per-cluster shape is preserved. *)

val perfect_frontend : t -> t
(** Perfect branch prediction and perfect caches (Fig 1's machine). *)

(** {2 First-class configuration API}

    Configurations are named, serializable, diffable values: one internal
    field table drives JSON serialization, the content digest, validation
    and string-level overrides, so the vocabulary the sweep engine exposes
    ([--axis ext_regs=4,8,...]) can never drift from the record. *)

(** The one place core-kind names live. Every front end — CLI [--core],
    api requests, DSE axes, fuzz — converts through this module, so an
    unknown kind yields the same typed error listing the same valid
    names everywhere. *)
module Core_kind : sig
  type t = core_kind = In_order | Dep_steer | Ooo | Braid_exec | Cgooo

  val all : t list
  (** Every registered kind: in-order, dep-steer, ooo, braid, cgooo. *)

  val names : string list
  (** [List.map to_string all]. *)

  val to_string : t -> string
  (** ["in-order"], ["dep-steer"], ["ooo"], ["braid"] or ["cgooo"]. *)

  val of_string : string -> (t, string) result
  (** Inverse of {!to_string} (case-insensitive, trimmed); the error
      lists every valid name. *)
end

val kind_to_string : core_kind -> string
(** [Core_kind.to_string]. *)

val kind_of_string : string -> (core_kind, string) result
(** [Core_kind.of_string]. *)

val predictor_to_string : predictor_kind -> string
val predictor_of_string : string -> (predictor_kind, string) result

val preset_of_kind : core_kind -> t
(** The Table 4 preset for each paradigm ([braid_8wide] for [Braid_exec],
    …). *)

val presets : t list
(** The five presets, in complexity order (in-order, dep-steer, braid,
    cgooo, ooo). *)

val sweepable_fields : string list
(** Every field {!override} (and hence a sweep axis) can address, in
    canonical JSON order. Includes the flattened memory-hierarchy fields
    ([l1d.latency], [memory_latency], …). *)

val get : t -> string -> (string, string) result
(** [get c field] is the canonical string rendering of one sweepable
    field's current value. *)

val override : t -> (string * string) list -> (t, string) result
(** [override c [(field, value); ...]] applies field-name → value
    overrides left to right; this is the [--axis] parsing primitive.
    Unknown fields fail with a message listing every sweepable field;
    unparseable values name the offending field. The result is not
    implicitly {!validate}d. *)

val to_json : t -> string
(** Canonical flat JSON object: ["name"] first, then every sweepable field
    in {!sweepable_fields} order (memory fields flattened as
    [l1d.size_bytes] etc.). [of_json (to_json c) = Ok c]. *)

val of_json : string -> (t, string) result
(** Parses {!to_json}'s shape with {!Braid_util.Json}. Field order is
    irrelevant; missing, duplicate or unknown fields and malformed values
    are errors. *)

val digest : t -> string
(** Stable hex content digest of the canonical JSON with the [name]
    erased: identically parameterised machines hash alike whatever they
    are called, and any parameter change alters the digest. Keys the
    design-space-exploration result cache. *)

val validate : t -> (t, string) result
(** Rejects nonsense before it can crash (or silently skew) a simulation:
    non-positive widths/ports/window sizes, zero clusters,
    [sched_window > cluster_entries], degenerate cache geometries. The
    error aggregates every violated rule. All {!presets} validate. *)

(** The typed CMP section: core count, workload assignment and shared-L2
    geometry for a multicore rate-mode run.

    Deliberately {e not} part of the per-core field table — adding fields
    there would change every config {!digest} and invalidate every sweep
    cache. A CMP point is a per-core config plus this record. *)
module Cmp : sig
  type nonrec t = {
    cores : int;  (** cores tiled over the shared L2 *)
    workloads : string list;  (** benchmark names, assigned round-robin *)
    l2 : cache_geometry;  (** the shared L2 *)
  }

  val default_l2 : int -> cache_geometry
  (** The solo L2 geometry with capacity scaled by the core count, so
      per-core capacity pressure stays comparable across a cores sweep. *)

  val make :
    ?l2:cache_geometry option -> cores:int -> workloads:string list -> unit -> t
  (** [l2] defaults to [default_l2 cores]. *)

  val validate : t -> (t, string) result
  (** Positive core count (≤ 64: one-word sharer masks), at least one
      workload, sane L2 geometry. Aggregates every violated rule. *)

  val workload_of : t -> int -> string
  (** The benchmark assigned to core [i] (round-robin). *)
end
