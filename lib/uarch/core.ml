module Obs = Braid_obs

(* One core's whole pipeline — fetch, dispatch, execution core, commit —
   as a stepable value: [create] builds the machine and warms its
   caches, [step] advances exactly one cycle, [result] reads the
   counters off a finished run. [Pipeline.run] is [create] + a
   step-until-finished loop; a CMP interleaves [step]s of many cores
   under one global clock. *)

type stalls = {
  fetch_redirect : int;  (** cycles fetch waited on a mispredicted branch *)
  fetch_icache : int;  (** cycles fetch waited on an I-cache fill *)
  dispatch_core : int;  (** cycles the execution core refused dispatch *)
  dispatch_frontend : int;  (** cycles a front-end resource refused it *)
}

type result = {
  config_name : string;
  instructions : int;
  cycles : int;
  ipc : float;
  branch_lookups : int;
  branch_mispredicts : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  dispatch_stall_regs : int;
  faults : int;
  activity : Machine.activity;
  stalls : stalls;
  avg_occupancy : float;  (** mean instructions resident in the core *)
}

exception Deadlock of string

type redirect = {
  uid : int;  (** instruction whose resolution restarts fetch *)
  penalty : int;
  wrong_path : (int * int) option;  (** (block, offset) fetch runs down *)
}

(* Counter snapshot at the measurement boundary of a [measure_from] run:
   everything the result reports, captured the cycle the last warm-up
   instruction commits so the prefix can be subtracted out. Commit-to-
   commit deltas telescope — summed over contiguous intervals they equal
   the full run's cycle count — so windowed measurement has no systematic
   drain bias (a fetch-time boundary would charge every window the full
   end-of-trace pipeline drain that a real run overlaps with younger
   instructions). *)
type boundary = {
  b_cycle : int;
  b_lookups : int;
  b_mispredicts : int;
  b_l1i : int;
  b_l1d : int;
  b_l2 : int;
  b_stall_regs : int;
  b_faults : int;
  b_activity : Machine.activity;
  b_s_redirect : int;
  b_s_icache : int;
  b_s_core : int;
  b_s_frontend : int;
  b_occupancy_sum : int;
}

type t = {
  machine : Machine.t;
  step_fn : unit -> unit;
  result_fn : unit -> result;
}

let create ?(obs = Obs.Sink.disabled) ?(dbg = Debug.off) ?(warm_data = [])
    ?prewarm ?measure_from ?hier (cfg : Config.t) (trace : Trace.t) =
  let n = Array.length trace.Trace.events in
  if n = 0 then invalid_arg "Core.create: empty trace";
  (match measure_from with
  | Some mf when mf < 0 || mf >= n ->
      invalid_arg
        (Printf.sprintf "Core.create: measure_from %d outside trace [0, %d)" mf n)
  | _ -> ());
  let m = Machine.create ~obs ~dbg ?hier cfg trace in
  (* Warm-up: the measured window is a steady-state snapshot of a much
     longer run (MinneSPEC), so code lines are warm in L1I/L2 and the
     initial data image is warm in L2. *)
  let h = Machine.hierarchy m in
  Array.iter (fun line -> Mem_hier.warm_instr h line) (Trace.warm_lines trace);
  List.iter (fun addr -> Mem_hier.warm_l2 h addr) warm_data;
  let core = Exec_core.create m in
  let fetchq : int Ring.t = Ring.create ~dummy:(-1) ~capacity:cfg.Config.fetch_buffer in
  let fetch_idx = ref 0 in
  let blocked : redirect option ref = ref None in
  let icache_ready = ref 0 in
  let last_line = ref min_int in
  let faults = ref 0 in
  let hier = Machine.hierarchy m in
  let pred = Machine.predictor m in
  (* Sampled simulation: replay the warm-up window preceding the measured
     interval into caches and predictor (no statistics, no timing), so the
     interval starts from the microarchitectural state its position in the
     full run implies rather than from the steady-state approximation
     above alone. *)
  (match prewarm with
  | None -> ()
  | Some (w : Trace.t) ->
      let last = ref min_int in
      Array.iter
        (fun (e : Trace.event) ->
          let line = e.Trace.pc / 64 in
          if line <> !last then begin
            Mem_hier.warm_instr hier e.Trace.pc;
            last := line
          end;
          if e.Trace.is_load || e.Trace.is_store then
            Mem_hier.warm_data hier e.Trace.addr;
          if e.Trace.is_cond_branch then
            Predictor.warm pred ~pc:e.Trace.pc ~taken:e.Trace.taken)
        w.Trace.events);
  let guard = (200 * n) + 100_000 in
  let last_progress = ref 0 in
  let last_committed = ref 0 in
  let stall_redirect = ref 0 and stall_icache = ref 0 in
  let stall_core = ref 0 and stall_frontend = ref 0 in
  let occupancy_sum = ref 0 in
  let boundary = ref None in
  let capture_boundary () =
    boundary :=
      Some
        {
          b_cycle = Machine.now m;
          b_lookups = Predictor.lookups pred;
          b_mispredicts = Predictor.mispredicts pred;
          b_l1i = snd (Mem_hier.l1i_stats hier);
          b_l1d = snd (Mem_hier.l1d_stats hier);
          b_l2 = snd (Mem_hier.l2_stats hier);
          b_stall_regs = Machine.stall_dispatch_regs m;
          b_faults = !faults;
          b_activity = Machine.activity m;
          b_s_redirect = !stall_redirect;
          b_s_icache = !stall_icache;
          b_s_core = !stall_core;
          b_s_frontend = !stall_frontend;
          b_occupancy_sum = !occupancy_sum;
        }
  in
  (* observability: registered handles on a live sink, dummies otherwise;
     the tracer (if any) is attached before the run starts *)
  let c_fetch = Obs.Sink.counter obs "fetch.instrs" in
  let c_stall_redirect = Obs.Sink.counter obs "stall.fetch_redirect" in
  let c_stall_icache = Obs.Sink.counter obs "stall.fetch_icache" in
  let c_stall_core = Obs.Sink.counter obs "stall.dispatch_core" in
  let c_stall_frontend = Obs.Sink.counter obs "stall.dispatch_frontend" in
  let h_occupancy =
    Obs.Sink.histogram obs "core.occupancy"
      ~bounds:[| 0; 2; 4; 8; 16; 32; 64; 128; 256 |]
  in
  let tracer = Obs.Sink.tracer obs in
  let record_stall reason =
    match tracer with
    | None -> ()
    | Some tr ->
        Obs.Tracer.record tr
          (Obs.Tracer.Stall { cycle = Machine.now m; track = -1; reason })
  in
  (* finite BTB: direct-mapped table of transfer pcs *)
  let btb =
    if cfg.Config.btb_entries > 0 then Some (Array.make cfg.Config.btb_entries (-1))
    else None
  in
  let btb_hit pc =
    match btb with
    | None -> true
    | Some table ->
        let idx = (pc lsr 2) mod Array.length table in
        let hit = table.(idx) = pc in
        table.(idx) <- pc;
        hit
  in
  (* Wrong-path fetch: while a redirect is pending, walk the static
     program down the mispredicted direction, touching I-cache lines
     (polluting them) at fetch width per cycle. *)
  let program = trace.Trace.program in
  let wrong_path_of (e : Trace.event) =
    let b = program.Program.blocks.(e.Trace.block_id) in
    if e.Trace.taken then
      (* predicted not-taken: the wrong path falls through *)
      if e.Trace.offset + 1 < Array.length b.Program.instrs then
        Some (e.Trace.block_id, e.Trace.offset + 1)
      else Option.map (fun ft -> (ft, 0)) b.Program.fallthrough
    else
      (* predicted taken: the wrong path is the branch target *)
      match b.Program.instrs.(e.Trace.offset).Instr.op with
      | Op.Branch (_, _, target) -> Some (target, 0)
      | _ -> None
  in
  let advance_wrong_path loc =
    (* touch this cycle's wrong-path lines; return the next location *)
    let rec go (blk, off) k last_line =
      if k = 0 then Some (blk, off)
      else
        let b = program.Program.blocks.(blk) in
        if off >= Array.length b.Program.instrs then
          match b.Program.fallthrough with
          | Some ft -> go (ft, 0) k last_line
          | None -> None
        else begin
          let pc = Program.pc_of program ~block_id:blk ~offset:off in
          let line = pc / 64 in
          if line <> last_line then ignore (Mem_hier.instr_latency hier pc);
          (* wrong-path fetch assumes not-taken on conditionals and
             follows jumps *)
          match b.Program.instrs.(off).Instr.op with
          | Op.Jump target -> go (target, 0) (k - 1) line
          | Op.Halt -> None
          | _ -> go (blk, off + 1) (k - 1) line
        end
    in
    go loc cfg.Config.fetch_width (-1)
  in
  let step () =
    Machine.begin_cycle m;
    let now = Machine.now m in
    if now > guard then
      raise
        (Deadlock
           (Printf.sprintf "%s: no completion after %d cycles (%d/%d committed)"
              cfg.Config.name now (Machine.committed_count m) n));
    Machine.commit_stage m;
    (match measure_from with
    | Some mf when !boundary = None && Machine.committed_count m >= mf ->
        capture_boundary ()
    | _ -> ());
    Exec_core.cycle core;
    let occupancy = Exec_core.occupancy core in
    occupancy_sum := !occupancy_sum + occupancy;
    if Obs.Sink.enabled obs then Obs.Counters.observe h_occupancy occupancy;
    (* dispatch *)
    let continue_dispatch = ref true in
    while !continue_dispatch && not (Ring.is_empty fetchq) do
      let u = Ring.peek fetchq in
      if Machine.can_dispatch m u then
        if Exec_core.try_dispatch core u then begin
          Machine.note_dispatch m u;
          ignore (Ring.pop fetchq)
        end
        else begin
          incr stall_core;
          Obs.Counters.incr c_stall_core;
          record_stall "core-full";
          continue_dispatch := false
        end
      else begin
        incr stall_frontend;
        Obs.Counters.incr c_stall_frontend;
        if tracer <> None then
          record_stall (Machine.dispatch_block_name (Machine.dispatch_block_reason m u));
        continue_dispatch := false
      end
    done;
    (* resolve fetch redirects *)
    (match !blocked with
    | Some r ->
        incr stall_redirect;
        Obs.Counters.incr c_stall_redirect;
        record_stall "redirect";
        (if cfg.Config.model_wrong_path_fetch then
           match r.wrong_path with
           | Some loc ->
               blocked := Some { r with wrong_path = advance_wrong_path loc }
           | None -> ());
        if
          Machine.issued m r.uid
          && now >= Machine.complete_cycle m r.uid + r.penalty
        then blocked := None
    | None ->
        if now < !icache_ready then begin
          incr stall_icache;
          Obs.Counters.incr c_stall_icache;
          record_stall "icache"
        end);
    (* fetch *)
    if !blocked = None && now >= !icache_ready then begin
      let fetched = ref 0 and branches = ref 0 in
      let stop = ref false in
      while
        (not !stop)
        && !fetched < cfg.Config.fetch_width
        && !fetch_idx < n
        && not (Ring.is_full fetchq)
      do
        let e = trace.Trace.events.(!fetch_idx) in
        (* I-cache: charge per new line; a miss stalls fetch *)
        let line = e.Trace.pc / 64 in
        if line <> !last_line then begin
          let lat = Mem_hier.instr_latency hier e.Trace.pc in
          last_line := line;
          if lat > cfg.Config.mem.Config.l1i.Config.latency then begin
            icache_ready := now + lat;
            (match tracer with
            | None -> ()
            | Some tr ->
                Obs.Tracer.record tr
                  (Obs.Tracer.Span
                     { name = "L1I miss"; cat = "cache"; track = -1; start = now; dur = lat }));
            stop := true
          end
        end;
        if not !stop then begin
          let is_branch = Trace.branch_of e in
          if is_branch && !branches >= cfg.Config.max_branches_per_cycle then
            stop := true
          else begin
            Ring.push fetchq e.Trace.uid;
            incr fetched;
            Obs.Counters.incr c_fetch;
            Debug.on_fetch dbg ~cycle:now e;
            (match tracer with
            | None -> ()
            | Some tr ->
                Obs.Tracer.record tr
                  (Obs.Tracer.Stage
                     { cycle = now; uid = e.Trace.uid; stage = Obs.Tracer.Fetch; track = -1 }));
            if is_branch then incr branches;
            (* a taken transfer missing in the BTB costs a fetch bubble *)
            if is_branch && e.Trace.taken && not (btb_hit e.Trace.pc) then
              icache_ready := max !icache_ready (now + 2);
            if e.Trace.is_cond_branch then begin
              let correct =
                Predictor.predict_and_train pred ~pc:e.Trace.pc ~taken:e.Trace.taken
              in
              if not correct then begin
                blocked :=
                  Some
                    {
                      uid = e.Trace.uid;
                      penalty = cfg.Config.misprediction_penalty;
                      wrong_path =
                        (if cfg.Config.model_wrong_path_fetch then wrong_path_of e
                         else None);
                    };
                stop := true
              end
            end;
            (* arithmetic faults serialize: drain, handle, resume (§3.4) *)
            if e.Trace.faulting then begin
              incr faults;
              blocked :=
                Some
                  {
                    uid = e.Trace.uid;
                    penalty = 2 * cfg.Config.misprediction_penalty;
                    wrong_path = None;
                  };
              stop := true
            end;
            incr fetch_idx
          end
        end
      done
    end;
    (* coarse progress check to catch modeling deadlocks *)
    if Machine.committed_count m > !last_committed then begin
      last_committed := Machine.committed_count m;
      last_progress := now
    end
    else if now - !last_progress > 4 * cfg.Config.mem.Config.memory_latency + 4096
    then
      raise
        (Deadlock
           (Printf.sprintf "%s: stuck at %d/%d committed (cycle %d)"
              cfg.Config.name (Machine.committed_count m) n now))
  in
  let result () =
    (* With [measure_from], report only the measured suffix: every counter
       minus its value the cycle the last warm-up instruction committed.
       (Every event commits before the run can complete, so the boundary is
       always captured.) *)
    let b =
      match !boundary with
      | Some b -> b
      | None ->
          {
            b_cycle = 0;
            b_lookups = 0;
            b_mispredicts = 0;
            b_l1i = 0;
            b_l1d = 0;
            b_l2 = 0;
            b_stall_regs = 0;
            b_faults = 0;
            b_activity =
              {
                Machine.ext_rf_reads = 0;
                ext_rf_writes = 0;
                int_rf_reads = 0;
                int_rf_writes = 0;
                bypass_values = 0;
              };
            b_s_redirect = 0;
            b_s_icache = 0;
            b_s_core = 0;
            b_s_frontend = 0;
            b_occupancy_sum = 0;
          }
    in
    let instructions = n - Option.value measure_from ~default:0 in
    let cycles = Machine.now m - b.b_cycle in
    let act = Machine.activity m in
    {
      config_name = cfg.Config.name;
      instructions;
      cycles;
      ipc = float_of_int instructions /. float_of_int (max 1 cycles);
      branch_lookups = Predictor.lookups pred - b.b_lookups;
      branch_mispredicts = Predictor.mispredicts pred - b.b_mispredicts;
      l1i_misses = snd (Mem_hier.l1i_stats hier) - b.b_l1i;
      l1d_misses = snd (Mem_hier.l1d_stats hier) - b.b_l1d;
      l2_misses = snd (Mem_hier.l2_stats hier) - b.b_l2;
      dispatch_stall_regs = Machine.stall_dispatch_regs m - b.b_stall_regs;
      faults = !faults - b.b_faults;
      activity =
        {
          Machine.ext_rf_reads =
            act.Machine.ext_rf_reads - b.b_activity.Machine.ext_rf_reads;
          ext_rf_writes =
            act.Machine.ext_rf_writes - b.b_activity.Machine.ext_rf_writes;
          int_rf_reads =
            act.Machine.int_rf_reads - b.b_activity.Machine.int_rf_reads;
          int_rf_writes =
            act.Machine.int_rf_writes - b.b_activity.Machine.int_rf_writes;
          bypass_values =
            act.Machine.bypass_values - b.b_activity.Machine.bypass_values;
        };
      stalls =
        {
          fetch_redirect = !stall_redirect - b.b_s_redirect;
          fetch_icache = !stall_icache - b.b_s_icache;
          dispatch_core = !stall_core - b.b_s_core;
          dispatch_frontend = !stall_frontend - b.b_s_frontend;
        };
      avg_occupancy =
        float_of_int (!occupancy_sum - b.b_occupancy_sum)
        /. float_of_int (max 1 cycles);
    }
  in
  { machine = m; step_fn = step; result_fn = result }

let machine t = t.machine
let finished t = Machine.all_committed t.machine
let now t = Machine.now t.machine
let step t = t.step_fn ()

let result t =
  if not (finished t) then
    invalid_arg "Core.result: the core has not committed its whole trace";
  t.result_fn ()

let speedup base other =
  float_of_int base.cycles /. float_of_int (max 1 other.cycles)
