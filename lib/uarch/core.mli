(** One core's whole pipeline as a stepable value.

    {!create} builds the machine (over a private or a caller-supplied
    shared memory hierarchy) and warms its caches; {!step} advances
    exactly one cycle — fetch (I-cache + branch prediction), dispatch,
    the execution core ({!Exec_core}), in-order commit; {!result} reads
    the counters off a finished run.

    [Pipeline.run] is [create] followed by stepping until {!finished} —
    its semantics, including every counter, are defined here. A CMP
    ({!Braid_cmp.Cmp}) interleaves [step]s of many cores under one
    global clock, each over a hierarchy attached to a shared backside
    ({!Mem_hier}). *)

type stalls = {
  fetch_redirect : int;  (** cycles fetch waited on a mispredicted branch *)
  fetch_icache : int;  (** cycles fetch waited on an I-cache fill *)
  dispatch_core : int;  (** cycles the execution core refused dispatch *)
  dispatch_frontend : int;  (** cycles a front-end resource refused it *)
}

type result = {
  config_name : string;
  instructions : int;
  cycles : int;
  ipc : float;
  branch_lookups : int;
  branch_mispredicts : int;
  l1i_misses : int;
  l1d_misses : int;
  l2_misses : int;
  dispatch_stall_regs : int;
  faults : int;
  activity : Machine.activity;  (** structure-access counts (§5.1) *)
  stalls : stalls;
  avg_occupancy : float;  (** mean instructions resident in the core *)
}

exception Deadlock of string
(** Raised by {!step} when no forward progress happens for an implausibly
    long time — a simulator bug, surfaced loudly rather than silently
    looping. *)

type t

val create :
  ?obs:Braid_obs.Sink.t ->
  ?dbg:Debug.t ->
  ?warm_data:int list ->
  ?prewarm:Trace.t ->
  ?measure_from:int ->
  ?hier:Mem_hier.hierarchy ->
  Config.t ->
  Trace.t ->
  t
(** Parameters are those of [Pipeline.run] (see its documentation for
    [warm_data]/[prewarm]/[measure_from]/[obs]/[dbg]), plus [hier]: the
    memory hierarchy this core loads, stores and fetches through.
    Absent, a private one is built from the config (solo semantics,
    byte-identical to the pre-split pipeline); a CMP passes a hierarchy
    attached to a shared backside. Creation warms the trace's code lines
    and [warm_data] into the hierarchy. Raises [Invalid_argument] on an
    empty trace or an out-of-range [measure_from]. *)

val step : t -> unit
(** Advance one cycle. Call only while [not (finished t)]. *)

val finished : t -> bool
(** Every trace event has committed. *)

val now : t -> int
(** The core's clock: cycles stepped so far minus one (-1 before the
    first step). In a CMP every live core is stepped once per global
    cycle, so this equals the global clock. *)

val machine : t -> Machine.t

val result : t -> result
(** Counters of the finished run; raises [Invalid_argument] while
    [not (finished t)]. *)

val speedup : result -> result -> float
(** [speedup base other] = cycles(base) / cycles(other). *)
