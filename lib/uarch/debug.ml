(* Invariant monitor behind a default-off sink (see debug.mli). The [t =
   state option] representation keeps the disabled path to a single
   pattern match per hook, mirroring Obs.Sink. *)

type violation = {
  invariant : string;
  cycle : int;
  uid : int;
  detail : string;
}

type state = {
  cfg : Config.t;
  invariants : bool;
  mutable ext_alloc : int;  (* in-flight external-file allocations *)
  mutable last_commit_uid : int;
  mutable commit_uid : int array;
  mutable commit_pc : int array;
  mutable commits : int;
  mutable violations_rev : violation list;
  mutable violation_count : int;
  live_internal : (int, unit) Hashtbl.t array;
      (* per-BEU (or per-block-window) live internal-register indices;
         empty array for conventional cores (no internal file to track) *)
  last_issue_uid : int array;
      (* cgooo: last uid issued from each block window (-1 = none); issue
         within a window must be strictly in dispatch order *)
}

type t = state option

let max_recorded = 200
let off = None

let create ?(invariants = true) (cfg : Config.t) =
  let beus =
    match cfg.Config.kind with
    | Config.Braid_exec -> max 1 cfg.Config.clusters
    | Config.Cgooo -> max 1 cfg.Config.block_windows
    | _ -> 0
  in
  let windows =
    match cfg.Config.kind with
    | Config.Cgooo -> max 1 cfg.Config.block_windows
    | _ -> 0
  in
  Some
    {
      cfg;
      invariants;
      ext_alloc = 0;
      last_commit_uid = -1;
      commit_uid = Array.make 1024 0;
      commit_pc = Array.make 1024 0;
      commits = 0;
      violations_rev = [];
      violation_count = 0;
      live_internal = Array.init beus (fun _ -> Hashtbl.create 16);
      last_issue_uid = Array.make windows (-1);
    }

let enabled = function None -> false | Some _ -> true
let checking = function None -> false | Some s -> s.invariants

let report t ~invariant ~cycle ~uid detail =
  match t with
  | None -> ()
  | Some s ->
      s.violation_count <- s.violation_count + 1;
      if s.violation_count <= max_recorded then
        s.violations_rev <- { invariant; cycle; uid; detail } :: s.violations_rev

let violations = function None -> [] | Some s -> List.rev s.violations_rev
let violation_count = function None -> 0 | Some s -> s.violation_count
let committed = function None -> [||] | Some s -> Array.sub s.commit_uid 0 s.commits
let committed_pcs = function None -> [||] | Some s -> Array.sub s.commit_pc 0 s.commits

let pp_violation fmt v =
  Format.fprintf fmt "[%s] cycle %d, instr %d: %s" v.invariant v.cycle v.uid
    v.detail

(* ------------------------------------------------------------------ *)
(* Hooks                                                               *)
(* ------------------------------------------------------------------ *)

let internal_reads (ins : Instr.t) =
  List.fold_left
    (fun n (r : Reg.t) -> if r.Reg.space = Reg.Intern then n + 1 else n)
    0 (Instr.uses ins)

let on_fetch t ~cycle (e : Trace.event) =
  match t with
  | None -> ()
  | Some s when not s.invariants -> ()
  | Some s ->
      let ins = e.Trace.instr in
      let uid = e.Trace.uid in
      let bad invariant detail = report t ~invariant ~cycle ~uid detail in
      if e.Trace.writes_int <> Instr.writes_internal ins then
        bad "bits.I" "writes_int flag disagrees with the instruction's I bit";
      if e.Trace.writes_ext <> Instr.writes_external ins then
        bad "bits.E" "writes_ext flag disagrees with the instruction's E bit";
      if e.Trace.braid_start <> ins.Instr.annot.Instr.braid_start then
        bad "bits.S" "braid_start flag disagrees with the instruction's S bit";
      if e.Trace.ext_src_reads <> Instr.reads_external_count ins then
        bad "bits.T" "external source count disagrees with the T bits";
      let int_reads = internal_reads ins in
      if e.Trace.int_src_reads <> int_reads then
        bad "bits.T" "internal source count disagrees with the T bits";
      (match s.cfg.Config.kind with
      | Config.Braid_exec | Config.Cgooo ->
          if e.Trace.braid_start && e.Trace.braid_id < 0 then
            bad "bits.S" "S bit set on an instruction outside any braid"
      | _ ->
          if e.Trace.writes_int || int_reads > 0 then
            bad "bits.internal"
              "internal register reached a conventional (non-braid) binary")

let on_dispatch t ~cycle ~beu (e : Trace.event) =
  match t with
  | None -> ()
  | Some s ->
      if e.Trace.writes_ext then begin
        s.ext_alloc <- s.ext_alloc + 1;
        if s.invariants && s.ext_alloc > s.cfg.Config.ext_regs then
          report t ~invariant:"extfile.capacity" ~cycle ~uid:e.Trace.uid
            (Printf.sprintf
               "%d in-flight external values exceed the %d-entry file"
               s.ext_alloc s.cfg.Config.ext_regs)
      end;
      (* An S-bit instruction opens a fresh braid on its BEU: every internal
         value of the previous braid is architecturally dead here. (Braid
         core only: a BEU holds one braid at a time, so the previous braid
         has fully issued by dispatch. A cgooo block window can still hold
         unissued instructions of the previous braid, so the live set is
         cleared at issue instead — see [on_issue].) *)
      if
        e.Trace.braid_start
        && s.cfg.Config.kind = Config.Braid_exec
        && beu >= 0
        && beu < Array.length s.live_internal
      then Hashtbl.reset s.live_internal.(beu)

let on_ext_release t ~cycle ~uid =
  match t with
  | None -> ()
  | Some s ->
      s.ext_alloc <- s.ext_alloc - 1;
      if s.invariants && s.ext_alloc < 0 then
        report t ~invariant:"extfile.double-release" ~cycle ~uid
          "more external-file releases than allocations"

let internal_def (ins : Instr.t) =
  List.find_opt (fun (r : Reg.t) -> r.Reg.space = Reg.Intern) (Instr.defs ins)

let on_issue t ~cycle ~beu ~bypassed (e : Trace.event) =
  match t with
  | None -> ()
  | Some s when not s.invariants -> ()
  | Some s ->
      let uid = e.Trace.uid in
      if bypassed && not e.Trace.writes_ext then
        report t ~invariant:"bypass.internal" ~cycle ~uid
          "a value without the E bit rode the bypass network";
      (* cgooo in-block order: a block window issues strictly from its
         in-order head, so uids leaving one window only ever increase
         (blocks occupy a window one at a time, in dispatch order) *)
      if beu >= 0 && beu < Array.length s.last_issue_uid then begin
        if uid <= s.last_issue_uid.(beu) then
          report t ~invariant:"cgooo.block-order" ~cycle ~uid
            (Printf.sprintf
               "issued from block window %d after uid %d: in-block issue \
                must be in order"
               beu
               s.last_issue_uid.(beu));
        s.last_issue_uid.(beu) <- uid;
        (* a braid opening at issue: the previous braid in this window has
           fully issued, its internal values are architecturally dead *)
        if
          e.Trace.braid_start && beu < Array.length s.live_internal
        then Hashtbl.reset s.live_internal.(beu)
      end;
      if e.Trace.writes_int && beu >= 0 && beu < Array.length s.live_internal
      then
        match internal_def e.Trace.instr with
        | None -> ()
        | Some r ->
            if r.Reg.idx < 0 || r.Reg.idx >= Reg.num_internal then
              report t ~invariant:"internal.rf-range" ~cycle ~uid
                (Printf.sprintf "internal register index %d outside 0..%d"
                   r.Reg.idx (Reg.num_internal - 1))
            else begin
              Hashtbl.replace s.live_internal.(beu) r.Reg.idx ();
              if Hashtbl.length s.live_internal.(beu) > Reg.num_internal then
                report t ~invariant:"internal.rf-capacity" ~cycle ~uid
                  (Printf.sprintf
                     "%d live internal values on BEU %d exceed the %d-entry \
                      file"
                     (Hashtbl.length s.live_internal.(beu))
                     beu Reg.num_internal)
            end

let grow_commits s =
  if s.commits >= Array.length s.commit_uid then begin
    let n = 2 * Array.length s.commit_uid in
    let uid' = Array.make n 0 and pc' = Array.make n 0 in
    Array.blit s.commit_uid 0 uid' 0 s.commits;
    Array.blit s.commit_pc 0 pc' 0 s.commits;
    s.commit_uid <- uid';
    s.commit_pc <- pc'
  end

let on_commit t ~cycle (e : Trace.event) =
  match t with
  | None -> ()
  | Some s ->
      if s.invariants && e.Trace.uid <> s.last_commit_uid + 1 then
        report t ~invariant:"commit.order" ~cycle ~uid:e.Trace.uid
          (Printf.sprintf "committed uid %d directly after uid %d" e.Trace.uid
             s.last_commit_uid);
      s.last_commit_uid <- e.Trace.uid;
      grow_commits s;
      s.commit_uid.(s.commits) <- e.Trace.uid;
      s.commit_pc.(s.commits) <- e.Trace.pc;
      s.commits <- s.commits + 1
