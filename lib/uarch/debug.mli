(** Microarchitectural invariant monitor and commit recorder.

    A debug sink follows the same zero-cost discipline as {!Obs.Sink.t}:
    the default value {!off} is [None], every hook pattern-matches it away
    in one branch, and simulation results are byte-identical when the sink
    is off because the hooks only observe machine state, never mutate it.

    When enabled the sink records the committed instruction stream (uids
    and PCs, for the differential oracle) and — when [invariants] is set —
    checks the structural properties §3–§4 of the paper rely on:

    - ["commit.order"]: instructions commit in strict fetch order (the
      global BEU-FIFO commit discipline);
    - ["extfile.capacity"] / ["extfile.double-release"]: the number of
      in-flight external values never exceeds [ext_regs] and releases
      balance allocations (busy-bit consistency);
    - ["internal.rf-capacity"] / ["internal.rf-range"]: at most
      {!Reg.num_internal} live internal values per BEU, all with indices
      inside the 8-entry file;
    - ["internal.cross-beu"] / ["internal.cross-braid"]: an internal value
      is only ever consumed inside the braid (and on the BEU) that
      produced it;
    - ["bypass.internal"]: only external (E-bit) results ride the bypass
      network;
    - ["bits.*"]: the S/T/I/E bits carried on each fetched trace event
      agree with the instruction encoding, and conventional binaries carry
      no internal registers;
    - ["wakeup.premature"]: no instruction issues before all producers
      have issued and their values are visible;
    - ["beu.window"]: an in-order BEU never issues from beyond the
      [sched_window]-entry head of its FIFO;
    - ["cgooo.block-order"]: a CG-OoO block window issues strictly in
      dispatch order — uids leaving one window only ever increase. *)

type violation = {
  invariant : string;  (** dotted invariant name, e.g. ["commit.order"] *)
  cycle : int;
  uid : int;  (** instruction (trace uid) the violation was observed on *)
  detail : string;
}

type t
(** [None]-like when off; created per pipeline run, not shared. *)

val off : t
(** The default sink: all hooks are no-ops and cost one pattern match. *)

val create : ?invariants:bool -> Config.t -> t
(** A live sink. Always records the committed stream; checks invariants
    only when [invariants] (default [true]). *)

val enabled : t -> bool

val checking : t -> bool
(** [true] only for a live sink created with invariant checking on. Guard
    any non-trivial checking work with this. *)

val report : t -> invariant:string -> cycle:int -> uid:int -> string -> unit
(** Record a violation (no-op when off). Only the first 200 violations keep
    their details; the total count is always exact. *)

val violations : t -> violation list
val violation_count : t -> int

val committed : t -> int array
(** Uids in commit order. *)

val committed_pcs : t -> int array
(** PCs in commit order (parallel to {!committed}). *)

val pp_violation : Format.formatter -> violation -> unit

(** {2 Hooks} — called by [Machine]/[Pipeline]/[Exec_core]. *)

val on_fetch : t -> cycle:int -> Trace.event -> unit
(** S/T/I/E bit consistency at fetch. *)

val on_dispatch : t -> cycle:int -> beu:int -> Trace.event -> unit
(** External-file allocation; clears the BEU's internal live-set on an
    S-bit instruction. *)

val on_ext_release : t -> cycle:int -> uid:int -> unit
(** An external register returned to the free list (early release or
    commit). *)

val on_issue : t -> cycle:int -> beu:int -> bypassed:bool -> Trace.event -> unit
(** Bypass legality and internal-RF occupancy at issue. *)

val on_commit : t -> cycle:int -> Trace.event -> unit
(** Records the committed uid/PC and checks global commit order. *)
